#include "common/table.h"

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace sbd {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  SBD_CHECK_MSG(cells.size() <= header_.size(), "row wider than header");
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); i++) widths[i] = header_[i].size();
  for (const auto& row : rows_)
    for (size_t i = 0; i < row.size(); i++)
      if (row[i].size() > widths[i]) widths[i] = row[i].size();

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); i++) {
      os << row[i];
      for (size_t p = row[i].size(); p < widths[i] + 2; p++) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::fmt_pct(double frac, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, frac * 100.0);
  return buf;
}

std::string TextTable::fmt_count(uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lluk", static_cast<unsigned long long>(v / 1000));
  return buf;
}

std::string TextTable::fmt_bytes_k(uint64_t b) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lluk", static_cast<unsigned long long>(b / 1024));
  return buf;
}

}  // namespace sbd
