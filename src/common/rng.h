// Deterministic pseudo-random number generation for workloads.
//
// All SBD workload generators take an explicit seed so every benchmark
// and test run is reproducible. SplitMix64 seeds Xoshiro256**; both are
// the reference public-domain algorithms.
#pragma once

#include <cstdint>
#include <string_view>

namespace sbd {

// SplitMix64: used for seeding and for cheap stateless hashing.
inline uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless 64-bit mix of a single value.
inline uint64_t mix64(uint64_t x) {
  uint64_t s = x;
  return splitmix64(s);
}

// Xoshiro256** — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5bd1e995u) { reseed(seed); }

  void reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Unbiased-enough uniform in [0, bound) for workload generation.
  uint64_t below(uint64_t bound) { return bound ? next() % bound : 0; }

  // Uniform in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return unit() < p; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

// Zipf-distributed sampler over [0, n): models skewed access patterns
// (term frequencies, hot rows) used by the workload generators.
class Zipf {
 public:
  Zipf(uint64_t n, double theta, uint64_t seed);
  uint64_t next();
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

// FNV-1a hash of a string, for deterministic bucketing.
uint64_t fnv1a(std::string_view s);

}  // namespace sbd
