// Lightweight invariant checking for the SBD runtime.
//
// SBD_CHECK is always on (cheap invariants on slow paths); SBD_DCHECK
// compiles away outside debug builds and may sit on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sbd {

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "SBD_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace sbd

#define SBD_CHECK(cond)                                           \
  do {                                                            \
    if (!(cond)) ::sbd::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define SBD_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) ::sbd::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define SBD_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define SBD_DCHECK(cond) SBD_CHECK(cond)
#endif
