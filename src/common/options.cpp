#include "common/options.h"

#include <cstdlib>
#include <cstring>

namespace sbd {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    const char* a = argv[i];
    if (std::strncmp(a, "--", 2) != 0) continue;
    std::string body(a + 2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      kv_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      kv_[body] = argv[++i];
    } else {
      kv_[body] = "true";
    }
  }
}

bool Options::has(const std::string& name) const { return kv_.count(name) > 0; }

std::string Options::get_str(const std::string& name, const std::string& def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : it->second;
}

int64_t Options::get_int(const std::string& name, int64_t def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& name, double def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& name, bool def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace sbd
