// Minimal command-line option parsing for bench/example binaries.
//
// Usage:
//   Options opts(argc, argv);
//   int threads = opts.get_int("threads", 4);
//   bool quick  = opts.get_bool("quick", false);
// Accepts --name=value and --name value; --flag alone means true.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace sbd {

class Options {
 public:
  Options(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get_str(const std::string& name, const std::string& def) const;
  int64_t get_int(const std::string& name, int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace sbd
