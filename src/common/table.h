// Plain-text table formatting for the benchmark harnesses, so each
// bench binary can print rows in the same layout as the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace sbd {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Adds one row; missing cells print empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  std::string to_string() const;
  void print() const;

  // Formatting helpers.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_pct(double frac, int precision = 1);
  static std::string fmt_count(uint64_t v);   // e.g. 186639k style like the paper
  static std::string fmt_bytes_k(uint64_t b); // bytes -> "1280k"

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sbd
