// Wall-clock timing and steady-state measurement helpers.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace sbd {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  uint64_t nanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

inline uint64_t now_nanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Summary statistics over a sample window.
struct SampleStats {
  double mean = 0;
  double stddev = 0;
  double cov = 0;  // coefficient of variation
  double min = 0;
  double max = 0;
};

SampleStats summarize(const std::vector<double>& xs);

// Steady-state measurement in the spirit of Georges et al. (OOPSLA'07),
// which the paper uses: repeat the workload until the coefficient of
// variation over the trailing `window` iterations drops to `covLimit`
// (or `maxIters` is reached), then report the trailing-window mean.
struct SteadyStateConfig {
  int window = 5;
  int maxIters = 12;
  double covLimit = 0.02;
};

template <typename Fn>
SampleStats measure_steady_state(const SteadyStateConfig& cfg, Fn&& runOnce) {
  std::vector<double> times;
  for (int i = 0; i < cfg.maxIters; i++) {
    Stopwatch sw;
    runOnce();
    times.push_back(sw.seconds());
    if (static_cast<int>(times.size()) >= cfg.window) {
      std::vector<double> tail(times.end() - cfg.window, times.end());
      SampleStats st = summarize(tail);
      if (st.cov <= cfg.covLimit) return st;
    }
  }
  std::vector<double> tail(
      times.end() - std::min<size_t>(times.size(), static_cast<size_t>(cfg.window)),
      times.end());
  return summarize(tail);
}

}  // namespace sbd
