#include "common/timing.h"

#include <algorithm>
#include <cmath>

namespace sbd {

SampleStats summarize(const std::vector<double>& xs) {
  SampleStats st;
  if (xs.empty()) return st;
  double sum = 0;
  st.min = xs[0];
  st.max = xs[0];
  for (double x : xs) {
    sum += x;
    st.min = std::min(st.min, x);
    st.max = std::max(st.max, x);
  }
  st.mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - st.mean) * (x - st.mean);
  var /= static_cast<double>(xs.size());
  st.stddev = std::sqrt(var);
  st.cov = st.mean > 0 ? st.stddev / st.mean : 0;
  return st;
}

}  // namespace sbd
