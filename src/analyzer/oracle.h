// sbd::oracle — offline happens-before serializability checker over a
// drained obs trace (the valgrind-drd style of vector-clock propagation
// applied to SBD's visible-reader lock words).
//
// Input: the full trace recorded under obs::set_full_trace(true) —
// kAcquire / kRelease / kCommitOrder plus the always-on kBlocked /
// kDeadlock / kAborted / kThreadExit events. The checker proves, for
// one run:
//
//   1. Lock discipline (per-word replay, keyed on the raw word address,
//      which is stable within a run*): no write grant while the word is
//      held, no read grant under a writer, upgrades only from a sole
//      read holder, no double grants, no phantom or mode-mismatched
//      releases, and (for complete traces) nothing left held at the
//      end.
//   2. Serializability: commit sequence numbers (drawn while all locks
//      are held) form a total order that is a linear extension of the
//      happens-before order induced by committed releases — i.e. no
//      transaction observes state from a commit that is ordered after
//      its own. Verified with per-transaction vector clocks: a write
//      acquire joins the lock's full release clock, a read acquire
//      joins only its writer-release clock (so commuting readers stay
//      unordered), and the commit sweep checks seq order against the
//      clocks in O(n * kMaxIds).
//   3. Transaction lifecycle, keyed on (txn id, epoch): recycled txn
//      ids must not alias (epoch = Transaction::start_seq is globally
//      unique), no grant after the epoch's commit, at most one commit
//      per epoch, no abort after commit.
//   4. Deadlock events name a victim that actually participated: the
//      (victim id, victim epoch) pair carried by the event must have a
//      prior kBlocked.
//
// (*) Address keying is sound because the lock pool only recycles
// all-zero (fully released) arrays and held locks pin their objects as
// GC roots — so a recycled address's event stream is still a valid
// single-lock history, and the happens-before edges it induces are
// real. The symbolic name rides along for reporting only; hand-built
// test fixtures may use small integers as lock keys.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/obs.h"

namespace sbd::oracle {

// One trace event, decoupled from live runtime pointers.
struct Rec {
  obs::EventKind kind = obs::EventKind::kAborted;
  int txn = -1;        // transaction id (0..55), -1 if n/a
  uint64_t epoch = 0;  // Transaction::start_seq at record time (0 = unknown)
  int other = -1;      // kDeadlock: victim id; kAcquire: 1 = upgrade; kRelease: 1 = commit
  uint64_t seq = 0;    // kCommitOrder: commit seq; kDeadlock: victim epoch
  bool write = false;  // lock mode
  uint64_t lockKey = 0;  // per-run-stable lock identity (raw word address)
  std::string lockName;  // symbolic "Class.field" (diagnostics only)
  uint64_t ord = 0;      // global record ordinal (tie-break within equal ts)
  uint64_t ts = 0;       // timestampNanos
};

struct Violation {
  size_t index = 0;  // position of the offending event in the checked trace
  std::string rule;  // e.g. "conflicting-grant", "commit-order-inversion"
  std::string detail;
};

struct Report {
  std::vector<Violation> violations;
  uint64_t events = 0;
  uint64_t txns = 0;      // distinct (id, epoch) incarnations seen
  uint64_t acquires = 0;
  uint64_t releases = 0;
  uint64_t commits = 0;   // kCommitOrder events
  uint64_t threadExits = 0;
  uint64_t droppedEvents = 0;
  // False when events were dropped: the end-of-trace checks (unreleased
  // locks, balanced lifecycles) are skipped because absence of an event
  // no longer proves absence of the operation.
  bool complete = true;
  // True when the violation list was capped (cascades suppressed).
  bool truncated = false;
  bool ok() const { return violations.empty(); }
};

// Checks a trace. `trace` need not be sorted — events are ordered by
// (ts, ord) internally, the same order obs::drain() produces.
Report check(const std::vector<Rec>& trace, uint64_t droppedEvents = 0);

// Converts a drained obs trace (resolves symbolic lock names; requires
// the recording process's class registry, i.e. in-process use).
std::vector<Rec> from_obs(const std::vector<obs::Event>& events);

// Reads a "# sbd-trace v1" file written by obs::write_trace. Returns
// false on I/O or parse error (parse errors name the line on stderr).
bool read_trace(const std::string& path, std::vector<Rec>& out,
                uint64_t& droppedEvents);

// One-line rendering of an event (for reports and windows).
std::string format_event(const Rec& r);

// The offending event windows: for each violation, the surrounding
// `context` events with the offender marked. This is what a failing
// differential chaos run prints and what CI uploads as the artifact.
std::string format_windows(const std::vector<Rec>& trace, const Report& rep,
                           size_t context = 6);

// "oracle: OK ..." / "oracle: N violation(s) ..." one-liner.
std::string summary_line(const Report& rep);

}  // namespace sbd::oracle
