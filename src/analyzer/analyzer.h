// Mini static analyzer — the PMD benchmark analog. Lexes C-like source
// into tokens, derives a brace-nesting structure, and runs a rule set
// producing violations plus per-rule statistics counters. The
// statistics counters are the contended state the paper's Table 4 fixes
// with thread-local aggregation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sbd::analyzer {

enum class TokKind : uint8_t {
  kIdent,
  kNumber,
  kString,
  kPunct,
  kKeyword,
};

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

// Lexes C-like source; strips // and /* */ comments.
std::vector<Token> lex(std::string_view source);

struct Violation {
  std::string rule;
  int line;
  std::string message;
};

// One analysis rule over a token stream.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string name() const = 0;
  virtual void check(const std::vector<Token>& tokens,
                     std::vector<Violation>& out) const = 0;
};

// The shipped rule set:
//   LongFunction      — function body spans more than `maxLines` lines
//   TooManyParams     — parameter list longer than `maxParams`
//   MagicNumber       — numeric literal other than 0/1/2 outside decls
//   DeepNesting       — brace depth beyond `maxDepth`
//   UpperCamelType    — struct/class names must be UpperCamelCase
//   NoGoto            — flags goto statements
std::vector<std::unique_ptr<Rule>> default_rules();

// Runs every rule over one source file.
std::vector<Violation> analyze(std::string_view source,
                               const std::vector<std::unique_ptr<Rule>>& rules);

// Deterministic source-file generator: function definitions with
// seeded shapes, some of which violate each rule.
struct SourceGenConfig {
  uint64_t seed = 0xa11a;
  int functionsPerFile = 12;
};
std::string generate_source(const SourceGenConfig& cfg, uint64_t fileId);

}  // namespace sbd::analyzer
