#include "analyzer/analyzer.h"

#include <cctype>
#include <memory>
#include <sstream>

#include "common/rng.h"

namespace sbd::analyzer {

namespace {
const char* kKeywords[] = {"if",     "else",  "for",   "while", "return", "struct",
                           "class",  "int",   "long",  "void",  "char",   "double",
                           "goto",   "break", "switch", "case"};

bool is_keyword(const std::string& s) {
  for (const char* k : kKeywords)
    if (s == k) return true;
  return false;
}
}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> out;
  int line = 1;
  size_t i = 0;
  const size_t n = source.size();
  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      line++;
      i++;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') i++;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') line++;
        i++;
      }
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    if (c == '"') {
      std::string s;
      i++;
      while (i < n && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < n) {
          s.push_back(source[i + 1]);
          i += 2;
          continue;
        }
        s.push_back(source[i]);
        i++;
      }
      i = i < n ? i + 1 : n;
      out.push_back(Token{TokKind::kString, s, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '.'))
        num.push_back(source[i++]);
      out.push_back(Token{TokKind::kNumber, num, line});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string id;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_'))
        id.push_back(source[i++]);
      out.push_back(Token{is_keyword(id) ? TokKind::kKeyword : TokKind::kIdent, id, line});
      continue;
    }
    out.push_back(Token{TokKind::kPunct, std::string(1, c), line});
    i++;
  }
  return out;
}

namespace {

// --- Rules -----------------------------------------------------------------

class LongFunctionRule final : public Rule {
 public:
  explicit LongFunctionRule(int maxLines = 40) : maxLines_(maxLines) {}
  std::string name() const override { return "LongFunction"; }
  void check(const std::vector<Token>& toks, std::vector<Violation>& out) const override {
    int depth = 0, startLine = 0;
    for (const Token& t : toks) {
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "{") {
        if (depth == 0) startLine = t.line;
        depth++;
      } else if (t.text == "}") {
        depth--;
        if (depth == 0 && t.line - startLine > maxLines_)
          out.push_back(Violation{name(), startLine, "function body too long"});
      }
    }
  }

 private:
  int maxLines_;
};

class TooManyParamsRule final : public Rule {
 public:
  explicit TooManyParamsRule(int maxParams = 5) : maxParams_(maxParams) {}
  std::string name() const override { return "TooManyParams"; }
  void check(const std::vector<Token>& toks, std::vector<Violation>& out) const override {
    for (size_t i = 0; i + 1 < toks.size(); i++) {
      // ident '(' ... ')' '{' = a function definition header.
      if (toks[i].kind != TokKind::kIdent || toks[i + 1].text != "(") continue;
      int commas = 0;
      size_t j = i + 2;
      int depth = 1;
      bool any = false;
      for (; j < toks.size() && depth > 0; j++) {
        if (toks[j].text == "(") depth++;
        else if (toks[j].text == ")") depth--;
        else if (depth == 1 && toks[j].text == ",") commas++;
        else if (depth >= 1 && toks[j].kind != TokKind::kPunct) any = true;
      }
      if (j < toks.size() && toks[j].text == "{" && any && commas + 1 > maxParams_)
        out.push_back(Violation{name(), toks[i].line, "too many parameters"});
    }
  }

 private:
  int maxParams_;
};

class MagicNumberRule final : public Rule {
 public:
  std::string name() const override { return "MagicNumber"; }
  void check(const std::vector<Token>& toks, std::vector<Violation>& out) const override {
    for (const Token& t : toks) {
      if (t.kind != TokKind::kNumber) continue;
      if (t.text == "0" || t.text == "1" || t.text == "2") continue;
      out.push_back(Violation{name(), t.line, "magic number " + t.text});
    }
  }
};

class DeepNestingRule final : public Rule {
 public:
  explicit DeepNestingRule(int maxDepth = 4) : maxDepth_(maxDepth) {}
  std::string name() const override { return "DeepNesting"; }
  void check(const std::vector<Token>& toks, std::vector<Violation>& out) const override {
    int depth = 0;
    bool reported = false;
    for (const Token& t : toks) {
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "{") {
        depth++;
        if (depth > maxDepth_ && !reported) {
          out.push_back(Violation{name(), t.line, "nesting too deep"});
          reported = true;
        }
      } else if (t.text == "}") {
        depth--;
        if (depth <= maxDepth_) reported = false;
      }
    }
  }

 private:
  int maxDepth_;
};

class UpperCamelTypeRule final : public Rule {
 public:
  std::string name() const override { return "UpperCamelType"; }
  void check(const std::vector<Token>& toks, std::vector<Violation>& out) const override {
    for (size_t i = 0; i + 1 < toks.size(); i++) {
      if (toks[i].kind == TokKind::kKeyword &&
          (toks[i].text == "struct" || toks[i].text == "class") &&
          toks[i + 1].kind == TokKind::kIdent) {
        const char c = toks[i + 1].text[0];
        if (!std::isupper(static_cast<unsigned char>(c)))
          out.push_back(Violation{name(), toks[i + 1].line,
                                  "type " + toks[i + 1].text + " not UpperCamelCase"});
      }
    }
  }
};

class NoGotoRule final : public Rule {
 public:
  std::string name() const override { return "NoGoto"; }
  void check(const std::vector<Token>& toks, std::vector<Violation>& out) const override {
    for (const Token& t : toks)
      if (t.kind == TokKind::kKeyword && t.text == "goto")
        out.push_back(Violation{name(), t.line, "goto considered harmful"});
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<LongFunctionRule>());
  rules.push_back(std::make_unique<TooManyParamsRule>());
  rules.push_back(std::make_unique<MagicNumberRule>());
  rules.push_back(std::make_unique<DeepNestingRule>());
  rules.push_back(std::make_unique<UpperCamelTypeRule>());
  rules.push_back(std::make_unique<NoGotoRule>());
  return rules;
}

std::vector<Violation> analyze(std::string_view source,
                               const std::vector<std::unique_ptr<Rule>>& rules) {
  const auto toks = lex(source);
  std::vector<Violation> out;
  for (const auto& r : rules) r->check(toks, out);
  return out;
}

std::string generate_source(const SourceGenConfig& cfg, uint64_t fileId) {
  Rng rng(mix64(cfg.seed * 7919 + fileId));
  std::ostringstream os;
  os << "// generated file " << fileId << "\n";
  const char* typeNames[] = {"Widget", "gadget", "Parser", "engine", "Codec"};
  os << "struct " << typeNames[rng.below(5)] << " { int x; };\n";
  for (int fn = 0; fn < cfg.functionsPerFile; fn++) {
    const int params = static_cast<int>(rng.below(8));
    os << "int fn_" << fileId << "_" << fn << "(";
    for (int p = 0; p < params; p++) os << (p ? ", int p" : "int p") << p;
    os << ") {\n";
    const int stmts = 4 + static_cast<int>(rng.below(60));
    int depth = 1;
    for (int s = 0; s < stmts; s++) {
      for (int d = 0; d < depth; d++) os << "  ";
      switch (rng.below(6)) {
        case 0:
          os << "int v" << s << " = " << rng.below(100) << ";\n";
          break;
        case 1:
          os << "if (v0 > " << rng.below(10) << ") {\n";
          depth++;
          break;
        case 2:
          if (depth > 1) {
            os << "}\n";
            depth--;
          } else {
            os << "v0 = v0 + 1;\n";
          }
          break;
        case 3:
          os << "for (int i = 0; i < 2; i++) { v0 += i; }\n";
          break;
        case 4:
          if (rng.chance(0.1)) os << "goto done;\n";
          else os << "v0 = v0 * 2;\n";
          break;
        default:
          os << "// comment line\n";
          break;
      }
    }
    while (depth > 1) {
      os << "}\n";
      depth--;
    }
    os << "done: return 0;\n}\n\n";
  }
  return os.str();
}

}  // namespace sbd::analyzer
