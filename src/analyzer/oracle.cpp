#include "analyzer/oracle.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <sstream>

#include "core/fwd.h"

namespace sbd::oracle {

namespace {

// Clock dimensions: one per txn id. core::kMaxTxns is 56; 64 leaves
// headroom and keeps the arrays word-aligned.
constexpr int kMaxIds = 64;
constexpr size_t kMaxViolations = 32;

struct VClock {
  uint64_t c[kMaxIds] = {};
  void join(const VClock& o) {
    for (int i = 0; i < kMaxIds; i++)
      if (o.c[i] > c[i]) c[i] = o.c[i];
  }
};

// State of one (id, epoch) incarnation. The clock is carried ACROSS
// epoch transitions of the same id: the id-pool hand-off is a real
// happens-before edge, so the successor epoch inherits everything the
// predecessor knew.
struct TxnInfo {
  uint64_t epoch = 0;
  VClock vc;
  bool committed = false;
  int held = 0;  // locks currently granted to this incarnation
};

struct Holder {
  int id = -1;
  uint64_t epoch = 0;
  bool write = false;
  size_t acqIndex = 0;  // trace index of the grant (for reports)
};

struct LockState {
  std::vector<Holder> holders;
  VClock wClk;   // join of all WRITE releases: what a new reader must see
  VClock rwClk;  // join of ALL releases: what a new writer/upgrader must see
  std::string name;
};

struct CommitRec {
  int id = -1;
  uint64_t epoch = 0;
  uint64_t seq = 0;
  uint64_t ownTick = 0;  // the committing txn's clock component at commit
  VClock vc;
  size_t index = 0;
};

// The canonical event order: timestamp, with the global record ordinal
// breaking ties — identical to obs::drain()'s order, and the order in
// which conflicting lock operations really happened.
std::vector<size_t> sorted_order(const std::vector<Rec>& trace) {
  std::vector<size_t> idx(trace.size());
  for (size_t i = 0; i < idx.size(); i++) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    if (trace[a].ts != trace[b].ts) return trace[a].ts < trace[b].ts;
    return trace[a].ord < trace[b].ord;
  });
  return idx;
}

uint64_t fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char ch : s) {
    h ^= ch;
    h *= 1099511628211ull;
  }
  return h;
}

// Lock identity: the raw word address when present, else a hash of the
// symbolic name (hand-built fixtures), tagged so the two cannot collide.
uint64_t lock_key(const Rec& r) {
  if (r.lockKey != 0) return r.lockKey;
  return fnv1a(r.lockName) | (1ull << 63);
}

const char* mode_name(bool write) { return write ? "write" : "read"; }

struct Checker {
  Report rep;
  std::vector<LockState> locks;
  std::map<uint64_t, size_t> lockIndex;  // key -> locks[] slot
  TxnInfo cur[kMaxIds];
  uint64_t tick[kMaxIds] = {};
  std::set<std::pair<int, uint64_t>> blockedSet;  // (id, epoch) that ever blocked
  bool anyBlocked[kMaxIds] = {};
  bool seen[kMaxIds] = {};
  std::vector<CommitRec> commits;
  std::set<uint64_t> commitSeqs;

  void violate(size_t index, const char* rule, std::string detail) {
    if (rep.violations.size() >= kMaxViolations) {
      rep.truncated = true;
      return;
    }
    rep.violations.push_back({index, rule, std::move(detail)});
  }

  LockState& lock_for(const Rec& r) {
    const uint64_t key = lock_key(r);
    auto [it, fresh] = lockIndex.try_emplace(key, locks.size());
    if (fresh) locks.emplace_back();
    LockState& L = locks[it->second];
    if (L.name.empty() && !r.lockName.empty()) L.name = r.lockName;
    return L;
  }

  Holder* find_holder(LockState& L, int id) {
    for (Holder& h : L.holders)
      if (h.id == id) return &h;
    return nullptr;
  }

  // Epoch bookkeeping for an id-carrying event. Returns false when the
  // event belongs to a PAST incarnation (recycled-id aliasing) and must
  // not be applied to the current state.
  bool enter_epoch(const Rec& r, size_t index) {
    TxnInfo& t = cur[r.txn];
    if (!seen[r.txn]) {
      seen[r.txn] = true;
      rep.txns++;
    }
    // epoch 0 = "unknown" (epoch-less fixtures, non-txn diagnostics):
    // treated as the current incarnation.
    if (r.epoch == 0 || t.epoch == r.epoch) return true;
    if (r.epoch < t.epoch && t.epoch != 0) {
      std::ostringstream os;
      os << "event for txn " << r.txn << "@" << r.epoch
         << " arrives after epoch " << t.epoch
         << " of the same (recycled) id began";
      violate(index, "txn-epoch-alias", os.str());
      return false;
    }
    // New incarnation of this id.
    if (t.held != 0 && rep.complete) {
      std::ostringstream os;
      os << "txn " << r.txn << "@" << t.epoch << " still holds " << t.held
         << " lock(s) when epoch " << r.epoch << " begins";
      violate(index, "locks-held-at-txn-end", os.str());
    }
    if (t.held != 0) scrub_holders(r.txn, t.epoch);
    if (t.epoch != 0) rep.txns++;  // a genuinely NEW incarnation of a seen id
    t.epoch = r.epoch;
    t.committed = false;
    t.held = 0;
    return true;
  }

  void scrub_holders(int id, uint64_t epoch) {
    for (LockState& L : locks)
      L.holders.erase(std::remove_if(L.holders.begin(), L.holders.end(),
                                     [&](const Holder& h) {
                                       return h.id == id && h.epoch == epoch;
                                     }),
                      L.holders.end());
  }

  std::string holders_string(const LockState& L) {
    std::ostringstream os;
    for (size_t i = 0; i < L.holders.size(); i++)
      os << (i ? ", " : "") << "txn " << L.holders[i].id << "@"
         << L.holders[i].epoch << " (" << mode_name(L.holders[i].write) << ")";
    return os.str();
  }

  void on_acquire(const Rec& r, size_t index) {
    rep.acquires++;
    TxnInfo& t = cur[r.txn];
    if (t.committed) {
      std::ostringstream os;
      os << "txn " << r.txn << "@" << t.epoch << " granted " << r.lockName
         << " after its own commit";
      violate(index, "grant-after-commit", os.str());
    }
    LockState& L = lock_for(r);
    const bool upgrade = r.other == 1;
    Holder* mine = find_holder(L, r.txn);
    if (upgrade) {
      if (!mine) {
        std::ostringstream os;
        os << "txn " << r.txn << "@" << t.epoch << " upgrades " << r.lockName
           << " without holding a read lock";
        violate(index, "upgrade-without-read-hold", os.str());
        L.holders.push_back({r.txn, t.epoch, true, index});
        t.held++;
      } else {
        if (mine->write) {
          violate(index, "double-grant",
                  "upgrade of a lock already held for write: " + r.lockName);
        }
        if (L.holders.size() > 1) {
          std::ostringstream os;
          os << "upgrade of " << r.lockName
             << " granted while other holders remain: " << holders_string(L);
          violate(index, "conflicting-grant", os.str());
        }
        mine->write = true;
        mine->acqIndex = index;
      }
      t.vc.join(L.rwClk);
    } else {
      if (mine) {
        std::ostringstream os;
        os << "txn " << r.txn << "@" << t.epoch << " granted " << r.lockName
           << " which it already holds (" << mode_name(mine->write) << ")";
        violate(index, "double-grant", os.str());
        mine->write = mine->write || r.write;
      } else {
        if (r.write && !L.holders.empty()) {
          std::ostringstream os;
          os << "write grant of " << r.lockName
             << " while held by: " << holders_string(L);
          violate(index, "conflicting-grant", os.str());
        } else if (!r.write) {
          for (const Holder& h : L.holders)
            if (h.write) {
              std::ostringstream os;
              os << "read grant of " << r.lockName << " under writer txn "
                 << h.id << "@" << h.epoch;
              violate(index, "conflicting-grant", os.str());
              break;
            }
        }
        L.holders.push_back({r.txn, t.epoch, r.write, index});
        t.held++;
      }
      // Readers are ordered only after writers (commuting readers stay
      // concurrent); writers are ordered after every prior release.
      t.vc.join(r.write ? L.rwClk : L.wClk);
    }
  }

  void on_release(const Rec& r, size_t index) {
    rep.releases++;
    TxnInfo& t = cur[r.txn];
    LockState& L = lock_for(r);
    Holder* mine = find_holder(L, r.txn);
    if (!mine) {
      std::ostringstream os;
      os << "txn " << r.txn << "@" << t.epoch << " releases " << r.lockName
         << " which it does not hold";
      violate(index, "phantom-release", os.str());
      return;
    }
    if (mine->epoch != 0 && r.epoch != 0 && mine->epoch != r.epoch) {
      std::ostringstream os;
      os << "txn " << r.txn << "@" << r.epoch << " releases " << r.lockName
         << " granted to earlier incarnation @" << mine->epoch
         << " (recycled txn id aliasing)";
      violate(index, "release-epoch-mismatch", os.str());
    }
    if (mine->write != r.write) {
      std::ostringstream os;
      os << "release of " << r.lockName << " as " << mode_name(r.write)
         << " but the grant was " << mode_name(mine->write);
      violate(index, "release-mode-mismatch", os.str());
    }
    const bool wasWrite = mine->write;
    L.holders.erase(L.holders.begin() + (mine - L.holders.data()));
    if (t.held > 0) t.held--;
    // Publish the releaser's knowledge on the lock: everything it did
    // (including transitively-acquired clocks) is now visible to the
    // next conflicting acquirer. Abort-releases publish too — their
    // clocks only carry OTHER transactions' committed ticks, which are
    // real transitive edges.
    L.rwClk.join(t.vc);
    if (wasWrite) L.wClk.join(t.vc);
  }

  void on_commit_order(const Rec& r, size_t index) {
    rep.commits++;
    TxnInfo& t = cur[r.txn];
    if (t.committed) {
      std::ostringstream os;
      os << "txn " << r.txn << "@" << t.epoch << " commits twice";
      violate(index, "double-commit", os.str());
    }
    t.committed = true;
    if (r.seq == 0) {
      violate(index, "commit-without-seq",
              "kCommitOrder event carries no commit sequence number");
      return;
    }
    if (!commitSeqs.insert(r.seq).second) {
      std::ostringstream os;
      os << "commit sequence " << r.seq << " drawn twice";
      violate(index, "duplicate-commit-seq", os.str());
    }
    commits.push_back({r.txn, t.epoch, r.seq, t.vc.c[r.txn], t.vc, index});
  }

  // Versioned read-set validation: the section proved its entire read
  // snapshot (taken at version-clock value r.seq) still holds, which
  // orders it after every commit with seq <= the snapshot — those
  // kCommitOrder ticks were drawn before the snapshot was read, and the
  // validated words carry their stamps. Invisible readers produce no
  // kAcquire/kRelease edges, so this is their only happens-before input.
  void on_validate(const Rec& r) {
    if (r.seq == 0) return;  // snapshot predates every commit
    TxnInfo& t = cur[r.txn];
    for (const CommitRec& c : commits)
      if (c.seq <= r.seq) t.vc.join(c.vc);
  }

  void on_deadlock(const Rec& r, size_t index) {
    const int victim = r.other;
    if (victim < 0 || victim >= kMaxIds) {
      std::ostringstream os;
      os << "deadlock event names no valid victim (other=" << victim << ")";
      violate(index, "deadlock-no-victim", os.str());
      return;
    }
    const uint64_t vEpoch = r.seq;
    const bool participated = vEpoch != 0
                                  ? blockedSet.count({victim, vEpoch}) > 0
                                  : anyBlocked[victim];
    if (!participated) {
      std::ostringstream os;
      os << "deadlock names victim txn " << victim << "@" << vEpoch
         << " which never blocked (not in the cycle)";
      violate(index, "deadlock-victim-not-in-cycle", os.str());
    }
  }

  void run(const std::vector<Rec>& trace, const std::vector<size_t>& order) {
    rep.events = trace.size();
    for (size_t pos = 0; pos < order.size(); pos++) {
      const Rec& r = trace[order[pos]];
      const bool hasTxn = r.txn >= 0 && r.txn < kMaxIds;
      if (r.kind == obs::EventKind::kThreadExit) {
        rep.threadExits++;
        continue;
      }
      if (!hasTxn) continue;
      if (!enter_epoch(r, pos)) continue;
      // Tick the txn's own clock component on every event it performs.
      tick[r.txn]++;
      cur[r.txn].vc.c[r.txn] = tick[r.txn];
      switch (r.kind) {
        case obs::EventKind::kAcquire:
          on_acquire(r, pos);
          break;
        case obs::EventKind::kRelease:
          on_release(r, pos);
          break;
        case obs::EventKind::kCommitOrder:
          on_commit_order(r, pos);
          break;
        case obs::EventKind::kAborted:
          if (cur[r.txn].committed) {
            std::ostringstream os;
            os << "txn " << r.txn << "@" << cur[r.txn].epoch
               << " aborts after committing";
            violate(pos, "abort-after-commit", os.str());
          }
          break;
        case obs::EventKind::kBlocked:
          blockedSet.insert({r.txn, r.epoch != 0 ? r.epoch : cur[r.txn].epoch});
          anyBlocked[r.txn] = true;
          break;
        case obs::EventKind::kDeadlock:
          on_deadlock(r, pos);
          break;
        case obs::EventKind::kValidate:
          on_validate(r);
          break;
        default:
          break;  // kGranted, kVersionAbort etc.: diagnostic-only kinds
      }
    }
    finish();
  }

  void finish() {
    // Commit total order must be a linear extension of happens-before:
    // sweep commits in sequence order, carrying the join of all clocks
    // seen so far; if an earlier-sequence commit already knew about a
    // later-sequence commit's tick, the later one happens-before it —
    // an inversion. O(commits * kMaxIds).
    std::sort(commits.begin(), commits.end(), [](const CommitRec& a, const CommitRec& b) {
      if (a.seq != b.seq) return a.seq < b.seq;
      return a.index < b.index;
    });
    uint64_t maxSeen[kMaxIds] = {};
    for (const CommitRec& c : commits) {
      if (c.id >= 0 && c.id < kMaxIds && maxSeen[c.id] >= c.ownTick) {
        std::ostringstream os;
        os << "commit seq " << c.seq << " of txn " << c.id << "@" << c.epoch
           << " happens-before a commit with a smaller sequence number";
        violate(c.index, "commit-order-inversion", os.str());
      }
      for (int j = 0; j < kMaxIds; j++)
        if (c.vc.c[j] > maxSeen[j]) maxSeen[j] = c.vc.c[j];
    }
    // End-of-trace balance checks need a complete trace: a dropped
    // release would otherwise read as "still held".
    if (!rep.complete) return;
    for (const LockState& L : locks)
      for (const Holder& h : L.holders) {
        std::ostringstream os;
        os << "txn " << h.id << "@" << h.epoch << " never releases "
           << (L.name.empty() ? "<anonymous lock>" : L.name) << " ("
           << mode_name(h.write) << ")";
        violate(h.acqIndex, "unreleased-lock", os.str());
      }
  }
};

}  // namespace

Report check(const std::vector<Rec>& trace, uint64_t droppedEvents) {
  Checker ck;
  ck.rep.droppedEvents = droppedEvents;
  ck.rep.complete = droppedEvents == 0;
  ck.run(trace, sorted_order(trace));
  return ck.rep;
}

std::vector<Rec> from_obs(const std::vector<obs::Event>& events) {
  std::vector<Rec> out;
  out.reserve(events.size());
  for (const obs::Event& e : events) {
    Rec r;
    r.kind = e.kind;
    r.txn = e.txnId;
    r.epoch = e.epoch;
    r.other = e.other;
    r.seq = e.seq;
    r.write = e.wantWrite;
    r.lockKey = e.lockAddr;
    r.lockName = obs::lock_name(e);
    r.ord = e.ordinal;
    r.ts = e.timestampNanos;
    out.push_back(std::move(r));
  }
  return out;
}

bool read_trace(const std::string& path, std::vector<Rec>& out,
                uint64_t& droppedEvents) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return false;
  out.clear();
  droppedEvents = 0;
  char line[1024];
  size_t lineNo = 0;
  bool ok = true;
  while (std::fgets(line, sizeof line, f)) {
    lineNo++;
    if (line[0] == '#') {
      unsigned long long d = 0;
      if (const char* p = std::strstr(line, "dropped="))
        if (std::sscanf(p, "dropped=%llu", &d) == 1) droppedEvents = d;
      continue;
    }
    if (line[0] == '\n' || line[0] == '\0') continue;
    char kindName[64] = {0};
    int txn = -1, other = -1, w = 0;
    unsigned long long epoch = 0, seq = 0, ord = 0, ts = 0, dur = 0, addr = 0;
    const int got = std::sscanf(
        line,
        "%63s txn=%d epoch=%llu other=%d seq=%llu w=%d ord=%llu ts=%llu "
        "dur=%llu addr=%llx",
        kindName, &txn, &epoch, &other, &seq, &w, &ord, &ts, &dur, &addr);
    // addr is printed as 0x...; %llx after the literal mismatch — retry
    // with the 0x prefix consumed explicitly.
    bool parsed = got == 10;
    if (!parsed) {
      parsed = std::sscanf(line,
                           "%63s txn=%d epoch=%llu other=%d seq=%llu w=%d "
                           "ord=%llu ts=%llu dur=%llu addr=0x%llx",
                           kindName, &txn, &epoch, &other, &seq, &w, &ord, &ts,
                           &dur, &addr) == 10;
    }
    if (!parsed) {
      std::fprintf(stderr, "sbd_oracle: %s:%zu: unparseable line\n",
                   path.c_str(), lineNo);
      ok = false;
      continue;
    }
    Rec r;
    r.kind = obs::EventKind::kAborted;
    bool known = false;
    for (int k = 0; k <= static_cast<int>(obs::EventKind::kVersionAbort); k++) {
      const auto kk = static_cast<obs::EventKind>(k);
      if (std::strcmp(obs::event_kind_name(kk), kindName) == 0) {
        r.kind = kk;
        known = true;
        break;
      }
    }
    if (!known) continue;  // forward-compat: skip unknown kinds
    r.txn = txn;
    r.epoch = epoch;
    r.other = other;
    r.seq = seq;
    r.write = w != 0;
    r.lockKey = addr;
    r.ord = ord;
    r.ts = ts;
    if (const char* p = std::strstr(line, "name=")) {
      std::string name(p + 5);
      while (!name.empty() && (name.back() == '\n' || name.back() == '\r'))
        name.pop_back();
      r.lockName = std::move(name);
    }
    out.push_back(std::move(r));
  }
  std::fclose(f);
  return ok;
}

std::string format_event(const Rec& r) {
  std::ostringstream os;
  os << obs::event_kind_name(r.kind);
  if (r.txn >= 0) {
    os << " txn " << r.txn;
    if (r.epoch != 0) os << "@" << r.epoch;
  }
  switch (r.kind) {
    case obs::EventKind::kAcquire:
      os << (r.other == 1 ? " upgrade" : "") << " " << mode_name(r.write);
      break;
    case obs::EventKind::kRelease:
      os << " " << mode_name(r.write) << (r.other == 1 ? " (commit)" : " (abort)");
      break;
    case obs::EventKind::kCommitOrder:
      os << " seq=" << r.seq;
      break;
    case obs::EventKind::kDeadlock:
      os << " victim=" << r.other << "@" << r.seq;
      break;
    case obs::EventKind::kValidate:
      os << " snapshot=" << r.seq << " entries=" << r.other;
      break;
    default:
      break;
  }
  if (!r.lockName.empty() && r.lockName != "-") os << " lock=" << r.lockName;
  os << " [ord " << r.ord << "]";
  return os.str();
}

std::string format_windows(const std::vector<Rec>& trace, const Report& rep,
                           size_t context) {
  if (rep.violations.empty()) return "";
  const std::vector<size_t> order = sorted_order(trace);
  std::ostringstream os;
  for (const Violation& v : rep.violations) {
    os << "violation [" << v.rule << "]: " << v.detail << "\n";
    const size_t lo = v.index > context ? v.index - context : 0;
    const size_t hi = std::min(order.size(), v.index + context + 1);
    for (size_t i = lo; i < hi; i++)
      os << (i == v.index ? "  >> " : "     ") << "#" << i << " "
         << format_event(trace[order[i]]) << "\n";
  }
  if (rep.truncated)
    os << "(violation list truncated at " << rep.violations.size() << ")\n";
  return os.str();
}

std::string summary_line(const Report& rep) {
  std::ostringstream os;
  if (rep.ok())
    os << "oracle: OK";
  else
    os << "oracle: " << rep.violations.size() << (rep.truncated ? "+" : "")
       << " violation(s)";
  os << " — " << rep.events << " events, " << rep.txns << " txn incarnations, "
     << rep.acquires << " acquires, " << rep.releases << " releases, "
     << rep.commits << " ordered commits, " << rep.threadExits
     << " thread exits";
  if (!rep.complete)
    os << " [INCOMPLETE: " << rep.droppedEvents
       << " dropped events; end-of-trace checks skipped]";
  return os.str();
}

}  // namespace sbd::oracle
