// The shared lowering contract between the two execution backends.
//
// interp.cpp (tree walker) and compile.cpp (threaded code) must agree
// on every observable detail of IL execution — frame limits, arithmetic,
// the canSplit dynamic scope, and which runtime entry point each opcode
// maps to — because the differential suite asserts bit-identical
// results AND bit-identical StatsCounters deltas between them. Anything
// both backends need lives here; a semantic change made in only one
// backend is a bug the diff tests are designed to catch.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "core/transaction.h"
#include "il/ir.h"

namespace sbd::il {

// Frame limits (both backends allocate fixed-size C++ stack frames so
// the STM checkpoint/restore abort path rolls frames back for free).
inline constexpr int kMaxLocals = 128;
inline constexpr int kMaxDepth = 64;

inline int64_t eval_bin(BinOp op, int64_t l, int64_t r) {
  switch (op) {
    case BinOp::kAdd: return l + r;
    case BinOp::kSub: return l - r;
    case BinOp::kMul: return l * r;
    case BinOp::kDiv: return r ? l / r : 0;
    case BinOp::kMod: return r ? l % r : 0;
    case BinOp::kAnd: return l & r;
    case BinOp::kOr: return l | r;
    case BinOp::kXor: return l ^ r;
    case BinOp::kLt: return l < r;
    case BinOp::kLe: return l <= r;
    case BinOp::kEq: return l == r;
    case BinOp::kNe: return l != r;
  }
  return 0;
}

// The canSplit modifier as a dynamic scope (§2.2), entered on function
// entry and exited on return. canSplit functions require an armed
// allowSplit call site (or an already-open canSplit scope) and open a
// new one; non-canSplit functions mask splits entirely for their
// dynamic extent.
// `engaged = false` elides the bookkeeping entirely — sound only when
// the compiler has proven no split (and no canSplit entry check) can
// execute within the function's dynamic extent, making the depth
// save/restore unobservable (compile.cpp's needsScope analysis; canSplit
// functions are always engaged).
class CanSplitScope {
 public:
  CanSplitScope(core::ThreadContext& tc, bool canSplit, bool engaged = true)
      : tc_(tc), canSplit_(canSplit), engaged_(engaged) {
    if (!engaged_) return;
    if (canSplit_) {
      SBD_CHECK_MSG(tc_.canSplitDepth > 0 || tc_.allowSplitArmed,
                    "IL canSplit function invoked without allowSplit");
      tc_.allowSplitArmed = false;
      tc_.canSplitDepth++;
    } else {
      saved_ = tc_.canSplitDepth;
      tc_.canSplitDepth = 0;
    }
  }
  ~CanSplitScope() {
    if (!engaged_) return;
    if (canSplit_)
      tc_.canSplitDepth--;
    else
      tc_.canSplitDepth = saved_;
  }
  CanSplitScope(const CanSplitScope&) = delete;
  CanSplitScope& operator=(const CanSplitScope&) = delete;

 private:
  core::ThreadContext& tc_;
  bool canSplit_;
  bool engaged_;
  int saved_ = 0;
};

}  // namespace sbd::il
