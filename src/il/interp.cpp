#include "il/interp.h"

#include <string>

#include "api/sbd.h"
#include "common/check.h"
#include "il/lowering.h"
#include "tio/console.h"

namespace sbd::il {

namespace {

using runtime::ManagedObject;

ManagedObject* as_obj(int64_t v) { return reinterpret_cast<ManagedObject*>(v); }

int64_t exec_fn(const Module& m, const Function& f, const int64_t* args, int depth) {
  SBD_CHECK_MSG(depth < kMaxDepth, "IL call depth exceeded");
  SBD_CHECK_MSG(f.numLocals <= kMaxLocals, "IL function has too many locals");

  auto& tc = core::tls_context();
  // The canSplit modifier as a dynamic scope: canSplit functions open a
  // scope (arming is the caller's job via the allowSplit flag).
  CanSplitScope scope(tc, f.canSplit);

  int64_t locals[kMaxLocals] = {};
  for (int i = 0; i < f.numParams; i++) locals[i] = args[i];

  int64_t result = 0;
  int blockIdx = 0;
  for (;;) {
    const Block& b = f.blocks[static_cast<size_t>(blockIdx)];
    bool returned = false;
    for (const Instr& ins : b.instrs) {
      switch (ins.op) {
        case Op::kConst:
          locals[ins.a] = ins.imm;
          break;
        case Op::kMove:
          locals[ins.a] = locals[ins.b];
          break;
        case Op::kBin:
          locals[ins.a] = eval_bin(ins.bin, locals[ins.b], locals[ins.c]);
          break;
        case Op::kRet:
          result = ins.a >= 0 ? locals[ins.a] : 0;
          returned = true;
          break;
        case Op::kNew:
          locals[ins.a] = reinterpret_cast<int64_t>(
              runtime::Heap::instance().alloc_object(ins.cls));
          break;
        case Op::kNewArr:
          locals[ins.a] = reinterpret_cast<int64_t>(runtime::Heap::instance().alloc_array(
              ins.kind, static_cast<uint64_t>(locals[ins.b])));
          break;
        case Op::kLock: {
          ManagedObject* o = as_obj(locals[ins.a]);
          SBD_CHECK_MSG(o != nullptr, "IL null dereference in lock");
          if (ins.c >= 0) {
            const auto idx = static_cast<uint64_t>(locals[ins.c]);
            if (ins.mode == LockMode::kWrite)
              runtime::tx_lock_write(tc, o, idx, &o->array_data()[idx]);
            else
              runtime::tx_lock_read(tc, o, idx);
          } else {
            const auto slot = static_cast<uint32_t>(ins.b);
            if (ins.mode == LockMode::kWrite)
              runtime::tx_lock_write(tc, o, slot, &o->slots()[slot]);
            else
              runtime::tx_lock_read(tc, o, slot);
          }
          break;
        }
        case Op::kGetF: {
          ManagedObject* o = as_obj(locals[ins.b]);
          SBD_CHECK_MSG(o != nullptr, "IL null dereference");
          locals[ins.a] =
              static_cast<int64_t>(runtime::tx_read(tc, o, static_cast<uint32_t>(ins.c)));
          break;
        }
        case Op::kSetF: {
          ManagedObject* o = as_obj(locals[ins.a]);
          SBD_CHECK_MSG(o != nullptr, "IL null dereference");
          runtime::tx_write(tc, o, static_cast<uint32_t>(ins.b),
                            static_cast<uint64_t>(locals[ins.c]));
          break;
        }
        case Op::kGetFNl: {
          // No-lock accesses ride on a hoisted kLock. Under a versioned
          // map that lock is exclusive, but invisible readers still load
          // the word concurrently (and discard it on the stamp
          // re-check) — so the access itself must be atomic. Relaxed
          // 64-bit atomics cost nothing on the targets we build for.
          ManagedObject* o = as_obj(locals[ins.b]);
          locals[ins.a] = static_cast<int64_t>(
              reinterpret_cast<const std::atomic<uint64_t>*>(&o->slots()[ins.c])
                  ->load(std::memory_order_relaxed));
          break;
        }
        case Op::kSetFNl: {
          ManagedObject* o = as_obj(locals[ins.a]);
          reinterpret_cast<std::atomic<uint64_t>*>(&o->slots()[ins.b])
              ->store(static_cast<uint64_t>(locals[ins.c]), std::memory_order_relaxed);
          break;
        }
        case Op::kGetE: {
          ManagedObject* o = as_obj(locals[ins.b]);
          locals[ins.a] = static_cast<int64_t>(
              runtime::tx_read_elem(tc, o, static_cast<uint64_t>(locals[ins.c])));
          break;
        }
        case Op::kSetE: {
          ManagedObject* o = as_obj(locals[ins.a]);
          runtime::tx_write_elem(tc, o, static_cast<uint64_t>(locals[ins.b]),
                                 static_cast<uint64_t>(locals[ins.c]));
          break;
        }
        case Op::kGetENl: {
          ManagedObject* o = as_obj(locals[ins.b]);
          locals[ins.a] = static_cast<int64_t>(
              reinterpret_cast<const std::atomic<uint64_t>*>(
                  &o->array_data()[static_cast<uint64_t>(locals[ins.c])])
                  ->load(std::memory_order_relaxed));
          break;
        }
        case Op::kSetENl: {
          ManagedObject* o = as_obj(locals[ins.a]);
          reinterpret_cast<std::atomic<uint64_t>*>(
              &o->array_data()[static_cast<uint64_t>(locals[ins.b])])
              ->store(static_cast<uint64_t>(locals[ins.c]), std::memory_order_relaxed);
          break;
        }
        case Op::kLen: {
          ManagedObject* o = as_obj(locals[ins.b]);
          locals[ins.a] = static_cast<int64_t>(runtime::array_length(o));
          break;
        }
        case Op::kCall: {
          const Function* callee = m.get(ins.calleeName);
          SBD_CHECK_MSG(callee != nullptr, "IL call to unknown function");
          int64_t callArgs[kMaxLocals];
          for (size_t k = 0; k < ins.args.size(); k++) callArgs[k] = locals[ins.args[k]];
          if (ins.allowSplit) tc.allowSplitArmed = true;
          const int64_t rv = exec_fn(m, *callee, callArgs, depth + 1);
          tc.allowSplitArmed = false;
          if (ins.a >= 0) locals[ins.a] = rv;
          break;
        }
        case Op::kSplit:
          split();
          break;
        case Op::kPrint:
          tio::TxConsole::println(std::to_string(locals[ins.a]));
          break;
      }
      if (returned) break;
    }
    if (returned) break;
    if (b.condLocal >= 0)
      blockIdx = locals[b.condLocal] != 0 ? b.next : b.nextAlt;
    else if (b.next >= 0)
      blockIdx = b.next;
    else
      break;  // fell off the end: implicit void return
  }

  return result;  // CanSplitScope unwinds the canSplit dynamic scope
}

}  // namespace

int64_t execute(const Module& m, const std::string& fnName,
                const std::vector<int64_t>& args) {
  const Function* f = m.get(fnName);
  SBD_CHECK_MSG(f != nullptr, "IL entry function not found");
  SBD_CHECK_MSG(static_cast<int>(args.size()) == f->numParams, "IL arity mismatch");
  auto& tc = core::tls_context();
  SBD_CHECK_MSG(tc.txn.active(), "IL execution requires an active atomic section");
  int64_t a[kMaxLocals] = {};
  for (size_t i = 0; i < args.size(); i++) a[i] = args[i];
  if (f->canSplit) tc.allowSplitArmed = true;  // entry points are canSplit-callable
  return exec_fn(m, *f, a, 0);
}

}  // namespace sbd::il
