// A textual assembler for SBD-IL — the human-writable front end used by
// tests, the il_demo example, and anyone experimenting with the
// transformer/optimizer without writing builder code.
//
// Format (one instruction per line, '#' comments):
//
//   fn scale(x) {
//   entry:
//     two = 2
//     r = mul x two
//     ret r
//   }
//
//   fn hot(p, arr, n) canSplit {
//   entry:
//     i = 0
//     one = 1
//     br loop
//   loop:
//     sum = getf p.0
//     setf p.1 = sum
//     e = gete arr[i]
//     s = call scale(e)
//     sum = add sum s
//     setf p.0 = sum
//     i = add i one
//     c = lt i n
//     cbr c loop done
//   done:
//     split
//     ret sum
//   }
//
// Locals are named and allocated on first use (parameters first);
// blocks are labeled. Supported ops: constants, move (`x = y`),
// binops (add sub mul div mod and or xor lt le eq ne), getf/setf,
// gete/sete, len, new <Class>/<slots>, newarr[x], call f(args)
// [allowSplit], split, print, ret, br, cbr.
#pragma once

#include <stdexcept>
#include <string>

#include "il/ir.h"

namespace sbd::il {

class AsmError : public std::runtime_error {
 public:
  AsmError(int line, const std::string& msg)
      : std::runtime_error("IL asm line " + std::to_string(line) + ": " + msg),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

// Parses `source` and adds every function to `m`. Throws AsmError.
void assemble(Module& m, const std::string& source);

}  // namespace sbd::il
