// The paper's three intraprocedural compile-time optimizations (§3.3):
//
//   O1  Redundant-lock elimination: a Lock(base.field, mode) is removed
//       when every control-flow path to it already established a lock
//       of sufficient mode on the same location (must-locked forward
//       dataflow, intersection at merges). The analysis exploits the
//       canSplit property: calls to functions *without* canSplit cannot
//       split the section, so held locks survive them.
//   O2  Loop hoisting: a Lock in a loop whose base local is loop-
//       invariant moves to the preheader when the loop cannot split
//       (locking order is preserved because the hoisted lock is still
//       acquired before every access it covers).
//   O3  Inlining: small non-canSplit callees are spliced into the
//       caller (the paper drives this from HotSpot inline profiles; we
//       use a size threshold), widening the scope of O1/O2.
//
// All passes run after insert_locks() and preserve semantics: they only
// remove or move Lock operations that are provably redundant.
#pragma once

#include "il/ir.h"

namespace sbd::il {

struct OptStats {
  int locksEliminated = 0;
  int locksHoisted = 0;
  int callsInlined = 0;
};

// O3 — run first so O1/O2 see the widened scope.
OptStats inline_small(Module& m, int maxCalleeInstrs = 24);

// O1.
OptStats eliminate_redundant_locks(Module& m);
OptStats eliminate_redundant_locks(Function& f, const Module& m);

// O2.
OptStats hoist_loop_locks(Module& m);
OptStats hoist_loop_locks(Function& f, const Module& m);

// The full pipeline: O3, O1, O2, O1 again (hoisting exposes redundancy).
OptStats optimize(Module& m);

}  // namespace sbd::il
