// The paper's three intraprocedural compile-time optimizations (§3.3)
// plus the summary-based interprocedural extension of O1:
//
//   O1  Redundant-lock elimination: a Lock(base.field, mode) is removed
//       when every control-flow path to it already established a lock
//       of sufficient mode on the same location (must-locked forward
//       dataflow, intersection at merges). The analysis exploits the
//       canSplit property: calls to functions *without* canSplit cannot
//       split the section, so held locks survive them. With summaries
//       (summary.h) it goes further: facts survive any callee that
//       provably never splits, and a callee's must-held exit locks
//       become read coverage on the caller's argument locals —
//       eliminating covered re-locks *across* call boundaries.
//   O2  Loop hoisting: a Lock in a loop whose base local is loop-
//       invariant moves to the preheader when the loop cannot split
//       (locking order is preserved because the hoisted lock is still
//       acquired before every access it covers).
//   O3  Inlining: small non-canSplit callees are spliced into the
//       caller (the paper drives this from HotSpot inline profiles; we
//       use a size threshold), widening the scope of O1/O2.
//
// All passes run after insert_locks() and preserve semantics: they only
// remove or move Lock operations that are provably redundant.
#pragma once

#include "il/ir.h"
#include "il/summary.h"

namespace sbd::il {

struct OptStats {
  int locksEliminated = 0;
  // Subset of locksEliminated whose coverage arrived through a callee
  // LockSummary — the interprocedural pass's contribution.
  int crossCallEliminated = 0;
  int locksHoisted = 0;
  int callsInlined = 0;
  // O1+O2 rounds optimize() ran before reaching the fixed point (the
  // last round changes nothing, by construction).
  int rounds = 0;
};

// O3 — run first so O1/O2 see the widened scope.
OptStats inline_small(Module& m, int maxCalleeInstrs = 24);

// O1. With `sums` (from compute_summaries), kCall keeps facts across
// provably non-splitting callees and imports their exit locks as read
// coverage; without, every canSplit-or-unknown call clears the state.
OptStats eliminate_redundant_locks(Module& m, const Summaries* sums = nullptr);
OptStats eliminate_redundant_locks(Function& f, const Module& m,
                                   const Summaries* sums = nullptr);

// O2.
OptStats hoist_loop_locks(Module& m);
OptStats hoist_loop_locks(Function& f, const Module& m);

// The full pipeline: O3 once, then O1+O2 iterated to a fixed point
// (hoisting exposes elimination and vice versa), recomputing call-graph
// summaries each round when `interproc` is set.
// `inlineSmall = false` skips O3 — used where call boundaries must be
// preserved so lock-optimization effects can be attributed cleanly
// (bench_table7_lockops measures O1/interproc deltas, and inlining a
// callee would convert its cross-call eliminations into intraprocedural
// ones while also changing dispatch cost).
OptStats optimize(Module& m, bool interproc = true, bool inlineSmall = true);

}  // namespace sbd::il
