#include "il/asm.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "runtime/class_info.h"

namespace sbd::il {

namespace {

struct Tok {
  std::vector<std::string> words;
};

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',' || c == '(' ||
        c == ')' || c == '[' || c == ']' || c == '{' || c == '}' || c == '.' ||
        c == '=' || c == ':' || c == '/') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
      // Structural characters that later stages need are kept as words.
      if (c == '{' || c == '}' || c == '=' || c == ':' || c == '.' || c == '[' ||
          c == ']' || c == '(' || c == ')' || c == '/')
        out.emplace_back(1, c);
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool is_integer(const std::string& s) {
  if (s.empty()) return false;
  size_t i = s[0] == '-' ? 1 : 0;
  if (i >= s.size()) return false;
  for (; i < s.size(); i++)
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  return true;
}

BinOp parse_binop(const std::string& s, int line, bool& ok) {
  ok = true;
  if (s == "add") return BinOp::kAdd;
  if (s == "sub") return BinOp::kSub;
  if (s == "mul") return BinOp::kMul;
  if (s == "div") return BinOp::kDiv;
  if (s == "mod") return BinOp::kMod;
  if (s == "and") return BinOp::kAnd;
  if (s == "or") return BinOp::kOr;
  if (s == "xor") return BinOp::kXor;
  if (s == "lt") return BinOp::kLt;
  if (s == "le") return BinOp::kLe;
  if (s == "eq") return BinOp::kEq;
  if (s == "ne") return BinOp::kNe;
  ok = false;
  (void)line;
  return BinOp::kAdd;
}

// Per-function assembly state: named locals and labeled blocks.
class FnAsm {
 public:
  FnAsm(Module& m, const std::string& name, const std::vector<std::string>& params,
        bool canSplit, bool isCtor)
      : m_(m) {
    fn_ = m.add(name);
    fn_->canSplit = canSplit;
    fn_->isConstructor = isCtor;
    fn_->numParams = static_cast<int>(params.size());
    for (const auto& p : params) local(p, 0);
    fn_->blocks.emplace_back();  // block 0 until the first label
  }

  int local(const std::string& name, int line) {
    auto it = locals_.find(name);
    if (it != locals_.end()) return it->second;
    const int idx = static_cast<int>(locals_.size());
    if (idx >= 120) throw AsmError(line, "too many locals");
    locals_[name] = idx;
    fn_->numLocals = idx + 1;
    return idx;
  }

  int block(const std::string& label) {
    auto it = blocks_.find(label);
    if (it != blocks_.end()) return it->second;
    // First label names block 0 if it is still empty and unnamed.
    if (blocks_.empty() && fn_->blocks.size() == 1 && fn_->blocks[0].instrs.empty()) {
      blocks_[label] = 0;
      return 0;
    }
    fn_->blocks.emplace_back();
    const int idx = static_cast<int>(fn_->blocks.size()) - 1;
    blocks_[label] = idx;
    return idx;
  }

  void enter_block(const std::string& label) { cur_ = block(label); }

  Instr& emit(Op op) {
    auto& b = fn_->blocks[static_cast<size_t>(cur_)];
    b.instrs.emplace_back();
    b.instrs.back().op = op;
    return b.instrs.back();
  }

  Block& current() { return fn_->blocks[static_cast<size_t>(cur_)]; }
  Function* fn() { return fn_; }
  Module& module() { return m_; }

 private:
  Module& m_;
  Function* fn_;
  std::map<std::string, int> locals_;
  std::map<std::string, int> blocks_;
  int cur_ = 0;
};

// Parses "dst = ..." right-hand sides. `w` starts at the word after '='.
void parse_rhs(FnAsm& fa, int dst, const std::vector<std::string>& w, size_t i,
               int line) {
  if (i >= w.size()) throw AsmError(line, "missing right-hand side");
  const std::string& head = w[i];

  if (is_integer(head)) {
    auto& ins = fa.emit(Op::kConst);
    ins.a = dst;
    ins.imm = std::stoll(head);
    return;
  }
  bool isBin;
  const BinOp bop = parse_binop(head, line, isBin);
  if (isBin) {
    if (i + 2 >= w.size()) throw AsmError(line, "binop needs two operands");
    auto& ins = fa.emit(Op::kBin);
    ins.a = dst;
    ins.bin = bop;
    ins.b = fa.local(w[i + 1], line);
    ins.c = fa.local(w[i + 2], line);
    return;
  }
  if (head == "getf") {
    // x = getf base . field
    if (i + 3 >= w.size() || w[i + 2] != ".") throw AsmError(line, "getf base.field");
    auto& ins = fa.emit(Op::kGetF);
    ins.a = dst;
    ins.b = fa.local(w[i + 1], line);
    ins.c = std::stoi(w[i + 3]);
    return;
  }
  if (head == "gete") {
    // x = gete base [ idx ]
    if (i + 4 >= w.size() || w[i + 2] != "[") throw AsmError(line, "gete base[idx]");
    auto& ins = fa.emit(Op::kGetE);
    ins.a = dst;
    ins.b = fa.local(w[i + 1], line);
    ins.c = fa.local(w[i + 3], line);
    return;
  }
  if (head == "len") {
    auto& ins = fa.emit(Op::kLen);
    ins.a = dst;
    ins.b = fa.local(w[i + 1], line);
    return;
  }
  if (head == "new") {
    // x = new ClassName / slots
    if (i + 3 >= w.size() || w[i + 2] != "/") throw AsmError(line, "new Class/slots");
    const std::string clsName = "ilasm::" + w[i + 1];
    const int slots = std::stoi(w[i + 3]);
    auto& reg = fa.module();
    (void)reg;
    static std::map<std::string, runtime::ClassInfo*> cache;
    runtime::ClassInfo*& ci = cache[clsName + "/" + w[i + 3]];
    if (!ci) {
      std::vector<runtime::SlotDesc> descs(static_cast<size_t>(slots),
                                           runtime::SlotDesc{"slot", false, false});
      ci = runtime::register_class(clsName, descs);
    }
    auto& ins = fa.emit(Op::kNew);
    ins.a = dst;
    ins.cls = ci;
    return;
  }
  if (head == "newarr") {
    // x = newarr [ len ]
    if (i + 3 >= w.size() || w[i + 1] != "[") throw AsmError(line, "newarr [len]");
    auto& ins = fa.emit(Op::kNewArr);
    ins.a = dst;
    ins.b = fa.local(w[i + 2], line);
    ins.kind = runtime::ElemKind::kI64;
    return;
  }
  if (head == "call") {
    // x = call f ( args... ) [allowSplit]
    auto& ins = fa.emit(Op::kCall);
    ins.a = dst;
    ins.calleeName = w[i + 1];
    size_t k = i + 2;
    if (k < w.size() && w[k] == "(") {
      k++;
      while (k < w.size() && w[k] != ")") ins.args.push_back(fa.local(w[k++], line));
      k++;  // ')'
    }
    if (k < w.size() && w[k] == "allowSplit") ins.allowSplit = true;
    return;
  }
  // Plain move: x = y
  auto& ins = fa.emit(Op::kMove);
  ins.a = dst;
  ins.b = fa.local(head, line);
}

void parse_stmt(FnAsm& fa, const std::vector<std::string>& w, int line) {
  const std::string& head = w[0];

  // Label: "name :"
  if (w.size() >= 2 && w[1] == ":") {
    fa.enter_block(head);
    return;
  }
  if (head == "split") {
    fa.emit(Op::kSplit);
    return;
  }
  if (head == "print") {
    auto& ins = fa.emit(Op::kPrint);
    ins.a = fa.local(w[1], line);
    return;
  }
  if (head == "ret") {
    auto& ins = fa.emit(Op::kRet);
    ins.a = w.size() > 1 ? fa.local(w[1], line) : -1;
    return;
  }
  if (head == "br") {
    fa.current().condLocal = -1;
    fa.current().next = fa.block(w[1]);
    return;
  }
  if (head == "cbr") {
    if (w.size() < 4) throw AsmError(line, "cbr cond thenLabel elseLabel");
    fa.current().condLocal = fa.local(w[1], line);
    fa.current().next = fa.block(w[2]);
    fa.current().nextAlt = fa.block(w[3]);
    return;
  }
  if (head == "setf") {
    // setf base . field = src
    if (w.size() < 6 || w[2] != "." || w[4] != "=")
      throw AsmError(line, "setf base.field = src");
    auto& ins = fa.emit(Op::kSetF);
    ins.a = fa.local(w[1], line);
    ins.b = std::stoi(w[3]);
    ins.c = fa.local(w[5], line);
    return;
  }
  if (head == "sete") {
    // sete base [ idx ] = src
    if (w.size() < 7 || w[2] != "[" || w[4] != "]" || w[5] != "=")
      throw AsmError(line, "sete base[idx] = src");
    auto& ins = fa.emit(Op::kSetE);
    ins.a = fa.local(w[1], line);
    ins.b = fa.local(w[3], line);
    ins.c = fa.local(w[6], line);
    return;
  }
  if (head == "call") {
    // Void call statement.
    std::vector<std::string> rhs(w.begin(), w.end());
    parse_rhs(fa, -1, rhs, 0, line);
    return;
  }
  // Assignment: "dst = rhs..."
  if (w.size() >= 3 && w[1] == "=") {
    const int dst = fa.local(head, line);
    parse_rhs(fa, dst, w, 2, line);
    return;
  }
  throw AsmError(line, "unrecognized statement '" + head + "'");
}

}  // namespace

void assemble(Module& m, const std::string& source) {
  std::istringstream is(source);
  std::string lineText;
  int lineNo = 0;
  std::unique_ptr<FnAsm> fa;

  while (std::getline(is, lineText)) {
    lineNo++;
    auto w = split_words(lineText);
    if (w.empty()) continue;

    if (w[0] == "fn") {
      if (fa) throw AsmError(lineNo, "nested fn (missing closing '}')");
      if (w.size() < 2) throw AsmError(lineNo, "fn needs a name");
      const std::string name = w[1];
      std::vector<std::string> params;
      size_t i = 2;
      if (i < w.size() && w[i] == "(") {
        i++;
        while (i < w.size() && w[i] != ")") params.push_back(w[i++]);
        i++;  // ')'
      }
      bool canSplit = false, ctor = false;
      for (; i < w.size(); i++) {
        if (w[i] == "canSplit") canSplit = true;
        else if (w[i] == "constructor") ctor = true;
        else if (w[i] == "{") break;
      }
      fa = std::make_unique<FnAsm>(m, name, params, canSplit, ctor);
      continue;
    }
    if (w[0] == "}") {
      if (!fa) throw AsmError(lineNo, "'}' outside a function");
      fa.reset();
      continue;
    }
    if (!fa) throw AsmError(lineNo, "statement outside a function");
    parse_stmt(*fa, w, lineNo);
  }
  if (fa) throw AsmError(lineNo, "unterminated function (missing '}')");
}

}  // namespace sbd::il
