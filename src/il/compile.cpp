#include "il/compile.h"

#include <string>
#include <utility>

#include "api/sbd.h"
#include "common/check.h"
#include "il/lowering.h"
#include "tio/console.h"

// Direct threading needs GNU labels-as-values; elsewhere the same
// handler bodies run under a token switch (identical semantics, one
// more branch per dispatch).
#if defined(__GNUC__) || defined(__clang__)
#define SBD_IL_THREADED 1
#else
#define SBD_IL_THREADED 0
#endif

namespace sbd::il {

namespace {

using runtime::ManagedObject;

ManagedObject* as_obj(int64_t v) { return reinterpret_cast<ManagedObject*>(v); }

// The execution core. Called with `labelsOut` non-null (and f null)
// once at startup to harvest the handler label table for compile() —
// the null-function-call idiom that lets CInstrs carry their handler
// address directly.
int64_t exec_c(core::ThreadContext& tc, const CompiledFunction* f, const int64_t* args,
               int depth, const void* const** labelsOut) {
#if SBD_IL_THREADED
  // Order must match COp exactly.
  static const void* const labels[] = {
      &&H_kCConst,     &&H_kCMove,       &&H_kCBin,      &&H_kCNew,
      &&H_kCNewArr,    &&H_kCLockReadF,  &&H_kCLockWriteF, &&H_kCLockReadE,
      &&H_kCLockWriteE, &&H_kCGetF,      &&H_kCSetF,     &&H_kCGetFNl,
      &&H_kCSetFNl,    &&H_kCGetE,       &&H_kCSetE,     &&H_kCGetENl,
      &&H_kCSetENl,    &&H_kCLen,        &&H_kCCall,     &&H_kCSplit,
      &&H_kCPrint,     &&H_kCBr,         &&H_kCCbr,      &&H_kCCmpBr,
      &&H_kCRet,
  };
  static_assert(sizeof(labels) / sizeof(labels[0]) ==
                static_cast<size_t>(COp::kCCount));
  if (labelsOut) {
    *labelsOut = labels;
    return 0;
  }
#else
  if (labelsOut) {
    *labelsOut = nullptr;
    return 0;
  }
#endif

  SBD_CHECK_MSG(depth < kMaxDepth, "IL call depth exceeded");
  CanSplitScope scope(tc, f->canSplit, f->needsScope);

  // Calls run inline in this dispatch loop on an explicit frame stack
  // instead of recursing through exec_c: a call is a frame push (no
  // C++ prologue, no register spill of the dispatch state, no double
  // argument copy), a return is a pop. Frames are carved from a stack
  // arena so the STM checkpoint/restore abort path still rolls every
  // live IL frame back for free (checkpoint.h copies the stack segment)
  // and the conservative GC still sees managed refs held in locals.
  // The arena bound is exactly the interpreter's worst case: kMaxDepth
  // recursive frames of kMaxLocals slots. compile() validated every
  // local operand against numLocals, so each frame is numLocals slots
  // with only those zeroed (the interpreter allocates and zeroes all
  // kMaxLocals per call; unreferencable slots are unobservable).
  struct InlineFrame {
    const CompiledFunction* f;  // caller to resume
    const CInstr* retPc;        // its kCCall
    int64_t* locals;
    int32_t savedDepth;  // scope == 2: canSplitDepth to restore
    uint8_t scope;       // 0 = elided, 1 = canSplit, 2 = non-canSplit mask
  };
  InlineFrame frames[kMaxDepth];
  int fp = 0;
  int64_t arena[kMaxDepth * kMaxLocals];
  const CompiledFunction* cf = f;
  int64_t* locals = arena;
  int64_t* arenaTop = arena + cf->numLocals;
  for (int i = 0; i < cf->numLocals; i++) locals[i] = 0;
  for (int i = 0; i < cf->numParams; i++) locals[i] = args[i];

  int64_t result = 0;
  const CInstr* base = cf->code.data();
  const CInstr* pc = base;

#if SBD_IL_THREADED
#define HANDLER(n) H_##n:
#define DISPATCH() goto* const_cast<void*>(pc->handler)
#define NEXT()  \
  do {          \
    ++pc;       \
    DISPATCH(); \
  } while (0)
#define JUMP(t)      \
  do {               \
    pc = base + (t); \
    DISPATCH();      \
  } while (0)
  DISPATCH();
#else
#define DISPATCH()
#define HANDLER(n) case COp::n:
#define NEXT() \
  {            \
    ++pc;      \
    break;     \
  }
#define JUMP(t)      \
  {                  \
    pc = base + (t); \
    break;           \
  }
  for (;;) {
    switch (pc->op) {
#endif

  HANDLER(kCConst) {
    locals[pc->a] = pc->imm;
    NEXT();
  }
  HANDLER(kCMove) {
    locals[pc->a] = locals[pc->b];
    NEXT();
  }
  HANDLER(kCBin) {
    locals[pc->a] = eval_bin(static_cast<BinOp>(pc->sub), locals[pc->b], locals[pc->c]);
    NEXT();
  }
  HANDLER(kCNew) {
    locals[pc->a] =
        reinterpret_cast<int64_t>(runtime::Heap::instance().alloc_object(pc->cls));
    NEXT();
  }
  HANDLER(kCNewArr) {
    locals[pc->a] = reinterpret_cast<int64_t>(runtime::Heap::instance().alloc_array(
        static_cast<runtime::ElemKind>(pc->sub), static_cast<uint64_t>(locals[pc->b])));
    NEXT();
  }
  HANDLER(kCLockReadF) {
    ManagedObject* o = as_obj(locals[pc->a]);
    SBD_CHECK_MSG(o != nullptr, "IL null dereference in lock");
    runtime::tx_lock_read(tc, o, static_cast<uint32_t>(pc->b));
    NEXT();
  }
  HANDLER(kCLockWriteF) {
    ManagedObject* o = as_obj(locals[pc->a]);
    SBD_CHECK_MSG(o != nullptr, "IL null dereference in lock");
    const auto slot = static_cast<uint32_t>(pc->b);
    runtime::tx_lock_write(tc, o, slot, &o->slots()[slot]);
    NEXT();
  }
  HANDLER(kCLockReadE) {
    ManagedObject* o = as_obj(locals[pc->a]);
    SBD_CHECK_MSG(o != nullptr, "IL null dereference in lock");
    runtime::tx_lock_read(tc, o, static_cast<uint64_t>(locals[pc->c]));
    NEXT();
  }
  HANDLER(kCLockWriteE) {
    ManagedObject* o = as_obj(locals[pc->a]);
    SBD_CHECK_MSG(o != nullptr, "IL null dereference in lock");
    const auto idx = static_cast<uint64_t>(locals[pc->c]);
    runtime::tx_lock_write(tc, o, idx, &o->array_data()[idx]);
    NEXT();
  }
  HANDLER(kCGetF) {
    ManagedObject* o = as_obj(locals[pc->b]);
    SBD_CHECK_MSG(o != nullptr, "IL null dereference");
    locals[pc->a] =
        static_cast<int64_t>(runtime::tx_read(tc, o, static_cast<uint32_t>(pc->c)));
    NEXT();
  }
  HANDLER(kCSetF) {
    ManagedObject* o = as_obj(locals[pc->a]);
    SBD_CHECK_MSG(o != nullptr, "IL null dereference");
    runtime::tx_write(tc, o, static_cast<uint32_t>(pc->b),
                      static_cast<uint64_t>(locals[pc->c]));
    NEXT();
  }
  HANDLER(kCGetFNl) {
    // No-lock accesses ride on a hoisted kLock; relaxed atomics because
    // versioned-map invisible readers may overlap them (see interp.cpp).
    ManagedObject* o = as_obj(locals[pc->b]);
    locals[pc->a] = static_cast<int64_t>(
        reinterpret_cast<const std::atomic<uint64_t>*>(&o->slots()[pc->c])
            ->load(std::memory_order_relaxed));
    NEXT();
  }
  HANDLER(kCSetFNl) {
    ManagedObject* o = as_obj(locals[pc->a]);
    reinterpret_cast<std::atomic<uint64_t>*>(&o->slots()[pc->b])
        ->store(static_cast<uint64_t>(locals[pc->c]), std::memory_order_relaxed);
    NEXT();
  }
  HANDLER(kCGetE) {
    ManagedObject* o = as_obj(locals[pc->b]);
    locals[pc->a] = static_cast<int64_t>(
        runtime::tx_read_elem(tc, o, static_cast<uint64_t>(locals[pc->c])));
    NEXT();
  }
  HANDLER(kCSetE) {
    ManagedObject* o = as_obj(locals[pc->a]);
    runtime::tx_write_elem(tc, o, static_cast<uint64_t>(locals[pc->b]),
                           static_cast<uint64_t>(locals[pc->c]));
    NEXT();
  }
  HANDLER(kCGetENl) {
    ManagedObject* o = as_obj(locals[pc->b]);
    locals[pc->a] = static_cast<int64_t>(
        reinterpret_cast<const std::atomic<uint64_t>*>(
            &o->array_data()[static_cast<uint64_t>(locals[pc->c])])
            ->load(std::memory_order_relaxed));
    NEXT();
  }
  HANDLER(kCSetENl) {
    ManagedObject* o = as_obj(locals[pc->a]);
    reinterpret_cast<std::atomic<uint64_t>*>(
        &o->array_data()[static_cast<uint64_t>(locals[pc->b])])
        ->store(static_cast<uint64_t>(locals[pc->c]), std::memory_order_relaxed);
    NEXT();
  }
  HANDLER(kCLen) {
    locals[pc->a] = static_cast<int64_t>(runtime::array_length(as_obj(locals[pc->b])));
    NEXT();
  }
  HANDLER(kCCall) {
    const CallSite& cs = cf->calls[static_cast<size_t>(pc->aux)];
    const CompiledFunction* ce = cs.callee;
    SBD_CHECK_MSG(depth + fp + 1 < kMaxDepth, "IL call depth exceeded");
    if (cs.allowSplit) tc.allowSplitArmed = true;
    InlineFrame& fr = frames[fp++];
    fr.f = cf;
    fr.retPc = pc;
    fr.locals = locals;
    fr.scope = 0;
    if (ce->needsScope) {
      // Manual CanSplitScope entry (lowering.h); kCRet performs the exit.
      if (ce->canSplit) {
        SBD_CHECK_MSG(tc.canSplitDepth > 0 || tc.allowSplitArmed,
                      "IL canSplit function invoked without allowSplit");
        tc.allowSplitArmed = false;
        tc.canSplitDepth++;
        fr.scope = 1;
      } else {
        fr.savedDepth = tc.canSplitDepth;
        tc.canSplitDepth = 0;
        fr.scope = 2;
      }
    }
    int64_t* nl = arenaTop;
    arenaTop += ce->numLocals;
    const int16_t* as = cs.args.data();
    const int np = ce->numParams;
    for (int k = 0; k < np; k++) nl[k] = locals[as[k]];
    for (int k = np; k < ce->numLocals; k++) nl[k] = 0;
    cf = ce;
    locals = nl;
    base = cf->code.data();
    JUMP(0);
  }
  HANDLER(kCSplit) {
    split(tc);
    NEXT();
  }
  HANDLER(kCPrint) {
    tio::TxConsole::println(std::to_string(locals[pc->a]));
    NEXT();
  }
  HANDLER(kCBr) { JUMP(pc->aux); }
  HANDLER(kCCbr) {
    if (locals[pc->a] != 0) JUMP(pc->aux);
    NEXT();
  }
  HANDLER(kCCmpBr) {
    const int64_t v =
        eval_bin(static_cast<BinOp>(pc->sub), locals[pc->b], locals[pc->c]);
    locals[pc->a] = v;  // the fused kBin's store is preserved
    if (v != 0) JUMP(pc->aux);
    NEXT();
  }
  HANDLER(kCRet) {
    const int64_t rv = pc->a >= 0 ? locals[pc->a] : 0;
    if (fp == 0) {
      result = rv;
      goto done;
    }
    const InlineFrame& fr = frames[--fp];
    if (fr.scope == 1)
      tc.canSplitDepth--;
    else if (fr.scope == 2)
      tc.canSplitDepth = fr.savedDepth;
    // The interpreter clears the arming unconditionally after each call
    // returns, whether or not the callee consumed it.
    tc.allowSplitArmed = false;
    arenaTop = locals;  // pop the callee's arena slice
    cf = fr.f;
    locals = fr.locals;
    base = cf->code.data();
    pc = fr.retPc;
    if (pc->a >= 0) locals[pc->a] = rv;
    NEXT();
  }

#if !SBD_IL_THREADED
      default:
        SBD_CHECK_MSG(false, "IL compiled dispatch: bad opcode");
    }
  }
#endif
#undef HANDLER
#undef DISPATCH
#undef NEXT
#undef JUMP

done:
  return result;  // CanSplitScope unwinds the canSplit dynamic scope
}

const void* const* labels_table() {
  static const void* const* t = [] {
    const void* const* out = nullptr;
    exec_c(core::tls_context(), nullptr, nullptr, 0, &out);
    return out;
  }();
  return t;
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

void lower_fn(const Function& f, const std::map<std::string, CompiledFunction*>& fns,
              CompiledFunction& cf) {
  SBD_CHECK_MSG(!f.blocks.empty(), "IL compile: function has no blocks");
  SBD_CHECK_MSG(f.numLocals <= kMaxLocals, "IL function has too many locals");
  SBD_CHECK_MSG(f.numParams >= 0 && f.numParams <= f.numLocals,
                "IL compile: bad param count");

  auto chk_local = [&](int l) {
    SBD_CHECK_MSG(l >= 0 && l < f.numLocals, "IL compile: local out of range");
    return static_cast<int16_t>(l);
  };
  auto chk_block = [&](int b) {
    SBD_CHECK_MSG(b >= 0 && b < static_cast<int>(f.blocks.size()),
                  "IL compile: branch target out of range");
    return b;
  };

  std::vector<int32_t> blockStart(f.blocks.size(), -1);
  std::vector<std::pair<size_t, int>> patches;  // code index -> block id

  auto emit = [&](COp op) -> CInstr& {
    cf.code.emplace_back();
    cf.code.back().op = op;
    return cf.code.back();
  };
  auto emit_branch = [&](COp op, int block) -> CInstr& {
    CInstr& ci = emit(op);
    patches.emplace_back(cf.code.size() - 1, chk_block(block));
    return ci;
  };

  for (size_t b = 0; b < f.blocks.size(); b++) {
    const Block& blk = f.blocks[b];
    blockStart[b] = static_cast<int32_t>(cf.code.size());
    bool returned = false;
    for (const Instr& ins : blk.instrs) {
      switch (ins.op) {
        case Op::kConst: {
          CInstr& ci = emit(COp::kCConst);
          ci.a = chk_local(ins.a);
          ci.imm = ins.imm;
          break;
        }
        case Op::kMove: {
          CInstr& ci = emit(COp::kCMove);
          ci.a = chk_local(ins.a);
          ci.b = chk_local(ins.b);
          break;
        }
        case Op::kBin: {
          CInstr& ci = emit(COp::kCBin);
          ci.a = chk_local(ins.a);
          ci.b = chk_local(ins.b);
          ci.c = chk_local(ins.c);
          ci.sub = static_cast<uint8_t>(ins.bin);
          break;
        }
        case Op::kRet: {
          CInstr& ci = emit(COp::kCRet);
          ci.a = ins.a >= 0 ? chk_local(ins.a) : -1;
          returned = true;
          break;
        }
        case Op::kNew: {
          SBD_CHECK_MSG(ins.cls != nullptr, "IL compile: kNew without a class");
          CInstr& ci = emit(COp::kCNew);
          ci.a = chk_local(ins.a);
          ci.cls = ins.cls;
          break;
        }
        case Op::kNewArr: {
          CInstr& ci = emit(COp::kCNewArr);
          ci.a = chk_local(ins.a);
          ci.b = chk_local(ins.b);
          ci.sub = static_cast<uint8_t>(ins.kind);
          break;
        }
        case Op::kLock: {
          const bool isElem = ins.c >= 0;
          const bool write = ins.mode == LockMode::kWrite;
          CInstr& ci = emit(isElem ? (write ? COp::kCLockWriteE : COp::kCLockReadE)
                                   : (write ? COp::kCLockWriteF : COp::kCLockReadF));
          ci.a = chk_local(ins.a);
          if (isElem)
            ci.c = chk_local(ins.c);
          else
            ci.b = static_cast<int16_t>(ins.b);  // field index, not a local
          break;
        }
        case Op::kGetF:
        case Op::kGetFNl: {
          CInstr& ci = emit(ins.op == Op::kGetF ? COp::kCGetF : COp::kCGetFNl);
          ci.a = chk_local(ins.a);
          ci.b = chk_local(ins.b);
          ci.c = static_cast<int16_t>(ins.c);  // field index
          break;
        }
        case Op::kSetF:
        case Op::kSetFNl: {
          CInstr& ci = emit(ins.op == Op::kSetF ? COp::kCSetF : COp::kCSetFNl);
          ci.a = chk_local(ins.a);
          ci.b = static_cast<int16_t>(ins.b);  // field index
          ci.c = chk_local(ins.c);
          break;
        }
        case Op::kGetE:
        case Op::kGetENl: {
          CInstr& ci = emit(ins.op == Op::kGetE ? COp::kCGetE : COp::kCGetENl);
          ci.a = chk_local(ins.a);
          ci.b = chk_local(ins.b);
          ci.c = chk_local(ins.c);
          break;
        }
        case Op::kSetE:
        case Op::kSetENl: {
          CInstr& ci = emit(ins.op == Op::kSetE ? COp::kCSetE : COp::kCSetENl);
          ci.a = chk_local(ins.a);
          ci.b = chk_local(ins.b);
          ci.c = chk_local(ins.c);
          break;
        }
        case Op::kLen: {
          CInstr& ci = emit(COp::kCLen);
          ci.a = chk_local(ins.a);
          ci.b = chk_local(ins.b);
          break;
        }
        case Op::kCall: {
          auto it = fns.find(ins.calleeName);
          SBD_CHECK_MSG(it != fns.end(), "IL compile: call to unknown function");
          SBD_CHECK_MSG(static_cast<int>(ins.args.size()) == it->second->numParams,
                        "IL compile: call arity mismatch");
          CallSite cs;
          cs.callee = it->second;
          cs.allowSplit = ins.allowSplit;
          cs.args.reserve(ins.args.size());
          for (int arg : ins.args) cs.args.push_back(chk_local(arg));
          CInstr& ci = emit(COp::kCCall);
          ci.a = ins.a >= 0 ? chk_local(ins.a) : -1;
          ci.aux = static_cast<int32_t>(cf.calls.size());
          cf.calls.push_back(std::move(cs));
          break;
        }
        case Op::kSplit:
          emit(COp::kCSplit);
          break;
        case Op::kPrint: {
          CInstr& ci = emit(COp::kCPrint);
          ci.a = chk_local(ins.a);
          break;
        }
      }
      if (returned) break;  // the rest of the block is unreachable
    }
    if (returned) continue;
    // Terminator. Fallthrough to the next block in layout order needs
    // no instruction; everything else becomes an explicit branch.
    const int fallthrough = static_cast<int>(b) + 1;
    if (blk.condLocal >= 0) {
      // Fuse a block-terminating kBin that defines the branch condition
      // with the conditional branch itself (one dispatch instead of
      // two). The fused op still stores the comparison result, so any
      // later read of the condition local sees the same value.
      if (!cf.code.empty() &&
          static_cast<int32_t>(cf.code.size()) > blockStart[b] &&
          cf.code.back().op == COp::kCBin && cf.code.back().a == blk.condLocal) {
        const CInstr bin = cf.code.back();
        cf.code.pop_back();
        CInstr& ci = emit_branch(COp::kCCmpBr, blk.next);
        ci.a = bin.a;
        ci.b = bin.b;
        ci.c = bin.c;
        ci.sub = bin.sub;
      } else {
        CInstr& ci = emit_branch(COp::kCCbr, blk.next);
        ci.a = chk_local(blk.condLocal);
      }
      if (blk.nextAlt != fallthrough) emit_branch(COp::kCBr, blk.nextAlt);
      else chk_block(blk.nextAlt);
    } else if (blk.next >= 0) {
      if (blk.next != fallthrough) emit_branch(COp::kCBr, blk.next);
      else chk_block(blk.next);
    } else {
      emit(COp::kCRet);  // fell off the end: implicit void return (a = -1)
    }
  }

  for (const auto& [idx, blkId] : patches)
    cf.code[idx].aux = blockStart[static_cast<size_t>(blkId)];
}

}  // namespace

// needsScope: a function must maintain the canSplit dynamic scope iff
// it is canSplit itself (entry check + depth), contains a kSplit, or
// can transitively reach either through a call. Everything else only
// saves/zeroes/restores a depth no one reads — elided. Conservative
// over unknown callees (lower_fn rejects those anyway).
static std::map<std::string, bool> compute_needs_scope(const Module& m) {
  std::map<std::string, bool> needs;
  for (const auto& [name, f] : m.functions) {
    bool n = f->canSplit;
    for (const Block& b : f->blocks)
      for (const Instr& i : b.instrs)
        if (i.op == Op::kSplit) n = true;
    needs[name] = n;
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [name, f] : m.functions) {
      if (needs[name]) continue;
      for (const Block& b : f->blocks)
        for (const Instr& i : b.instrs)
          if (i.op == Op::kCall) {
            auto it = needs.find(i.calleeName);
            if (it == needs.end() || it->second) {
              needs[name] = true;
              changed = true;
            }
          }
    }
  }
  return needs;
}

CompiledModule compile(const Module& m) {
  CompiledModule cm;
  std::map<std::string, CompiledFunction*> fns;
  const auto needsScope = compute_needs_scope(m);
  for (const auto& [name, f] : m.functions) {
    auto cf = std::make_unique<CompiledFunction>();
    cf->name = name;
    cf->numParams = f->numParams;
    cf->numLocals = f->numLocals;
    cf->canSplit = f->canSplit;
    cf->needsScope = needsScope.at(name);
    fns[name] = cf.get();
    cm.functions[name] = std::move(cf);
  }
  for (const auto& [name, f] : m.functions) lower_fn(*f, fns, *fns[name]);

  // Bind handler addresses for direct threading (no-op on non-GNU
  // builds: the token switch reads `op` instead).
  const void* const* labels = labels_table();
  if (labels != nullptr)
    for (auto& [name, cf] : cm.functions)
      for (CInstr& ci : cf->code)
        ci.handler = labels[static_cast<size_t>(ci.op)];
  return cm;
}

int64_t execute(const CompiledModule& cm, const std::string& fnName,
                const std::vector<int64_t>& args) {
  const CompiledFunction* f = cm.get(fnName);
  SBD_CHECK_MSG(f != nullptr, "IL entry function not found");
  SBD_CHECK_MSG(static_cast<int>(args.size()) == f->numParams, "IL arity mismatch");
  auto& tc = core::tls_context();
  SBD_CHECK_MSG(tc.txn.active(), "IL execution requires an active atomic section");
  int64_t a[kMaxLocals] = {};
  for (size_t i = 0; i < args.size(); i++) a[i] = args[i];
  if (f->canSplit) tc.allowSplitArmed = true;  // entry points are canSplit-callable
  return exec_c(tc, f, a, 0, nullptr);
}

}  // namespace sbd::il
