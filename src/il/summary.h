// Interprocedural lock summaries and the shared must-locked dataflow.
//
// A LockSummary is the per-function fact base the paper's O1 pass was
// missing at call boundaries: "on every path to every return, this
// function holds a lock of mode M on word W of parameter P, and no
// split can follow that acquisition". Summaries are computed bottom-up
// over the SCCs of the call graph (callees before callers, in the
// Locksynth style of deriving per-callee synchronization obligations);
// recursive or mutually-recursive functions get the conservative top
// element (no facts, may split).
//
// Soundness hinges on two SBD properties (docs/SEMANTICS.md):
//   1. Locks are released only when the section ends (split/commit).
//      A lock that is must-held at a callee's exit — computed with
//      kSplit clearing all facts, so surviving facts were re-acquired
//      AFTER any split on every path — is therefore still held in the
//      caller when the call returns.
//   2. Only READ coverage is exported to callers. Eliminating a write
//      lock would also eliminate its undo logging, and under coarse
//      LockMaps an owned write re-hit must re-log the specific slot;
//      a callee's summary cannot guarantee that for the caller's slot.
//
// The must-locked dataflow (LockState/transfer/solve_must_locked) is
// shared verbatim by O1 (opt.cpp), the verifier's no-lock-coverage
// check (verify.cpp), and summary construction itself, so the three
// can never drift apart on what "covered" means.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "il/ir.h"

namespace sbd::il {

// One callee-side obligation: the callee must-locks `loc` of parameter
// `param` (both callee parameter indices for the element form) in
// `mode` on every path to every return, after any split. Parameters
// named here are stable: never reassigned inside the callee.
struct SummaryFact {
  int param = -1;  // base object: callee parameter index
  int loc = -1;    // field index, or — when isElem — the parameter index of the
                   // element-index local (also stable)
  bool isElem = false;
  LockMode mode = LockMode::kRead;

  bool operator<(const SummaryFact& o) const {
    if (param != o.param) return param < o.param;
    if (loc != o.loc) return loc < o.loc;
    if (isElem != o.isElem) return isElem < o.isElem;
    return mode < o.mode;
  }
};

// The LockMap-mapped form: the callee must-holds the lock WORD that
// `cls`'s (static) map assigns to `lockIdx` of parameter `param`.
struct MappedSummaryFact {
  int param = -1;
  uint32_t lockIdx = 0;
  bool write = false;
  runtime::ClassInfo* cls = nullptr;

  bool operator<(const MappedSummaryFact& o) const {
    if (param != o.param) return param < o.param;
    if (lockIdx != o.lockIdx) return lockIdx < o.lockIdx;
    if (write != o.write) return write < o.write;
    return cls < o.cls;
  }
};

struct LockSummary {
  bool top = true;       // unknown effects: recursion, SCC member, absent callee
  bool maySplit = true;  // may end the section, releasing every held lock
  bool returnsNew = false;  // every return yields a this-transaction-new object
  std::vector<SummaryFact> exitLocks;        // sorted; empty when top
  std::vector<MappedSummaryFact> exitMapped;  // sorted; empty when top
};

// Keyed by function name (the call instruction's `calleeName`).
using Summaries = std::map<std::string, LockSummary>;

// Bottom-up SCC traversal; O(total instructions) per function visit.
Summaries compute_summaries(const Module& m);

// Human-readable dumps (sbdil --dump-summaries, CI failure artifacts).
std::string to_string(const LockSummary& s);
std::string dump_summaries(const Module& m, const Summaries& s);

// --- Shared must-locked dataflow -------------------------------------------

// Facts keyed through a class's LockMap: "this transaction holds the
// lock WORD that cls's map assigns to mapped index `lockIdx` of the
// object in local `base`". These let locks on *different* slots that
// share a word dedupe statically — but only READ locks may be
// eliminated this way: eliminating a write lock would also skip its
// undo logging (the no-lock store never reaches the runtime's
// coarse-map owned-path re-log), and there is no covering undo entry
// for a slot that was never written before.
struct MappedFact {
  int base;
  uint32_t lockIdx;
  bool write;
  const runtime::ClassInfo* cls;
  bool operator<(const MappedFact& o) const {
    if (base != o.base) return base < o.base;
    if (lockIdx != o.lockIdx) return lockIdx < o.lockIdx;
    if (write != o.write) return write < o.write;
    return cls < o.cls;
  }
  bool operator==(const MappedFact& o) const {
    return base == o.base && lockIdx == o.lockIdx && write == o.write && cls == o.cls;
  }
};

// A class's LockMap may be consulted at analysis time only if it cannot
// change afterwards: any fixed SBD_LOCK_GRANULARITY mode, or a pinned
// class under adaptive (pins are permanent). A later
// set_lock_granularity() call invalidates modules optimized before it
// — the documented JIT-style contract (SEMANTICS.md).
bool map_is_static(const runtime::ClassInfo* cls);

// The must-locked lattice element flowing through one program point.
// `callFacts`/`callMapped` track which facts arrived via a callee
// summary — provenance for the interprocedural-elimination statistics
// only; they never affect coverage decisions.
struct LockState {
  bool top = true;  // "unvisited": identity of the intersection meet
  std::set<uint64_t> facts;
  std::set<MappedFact> mapped;
  std::set<int> newLocals;  // locals known to hold this-transaction-new objects
  std::set<uint64_t> callFacts;
  std::set<MappedFact> callMapped;

  bool meet(const LockState& other);  // returns true if changed
  void kill_local(int l);
  void clear_all();
  bool covers(int base, int fieldOrIdx, bool isElem, LockMode mode) const;
  // Read coverage through the LockMap: a held word — read- or
  // write-locked — covers any read it protects.
  bool covers_mapped(int base, uint32_t lockIdx, const runtime::ClassInfo* cls) const;
  // Whether the covering fact(s) for this location came from a callee
  // summary (for OptStats::crossCallEliminated attribution).
  bool covered_by_call(int base, int fieldOrIdx, bool isElem,
                       const runtime::ClassInfo* cls, int mappedIdx) const;

  bool operator==(const LockState& o) const {
    return top == o.top && facts == o.facts && mapped == o.mapped &&
           newLocals == o.newLocals && callFacts == o.callFacts &&
           callMapped == o.callMapped;
  }
};

uint64_t fact_key(int base, int fieldOrIdx, bool isElem, LockMode mode);

// The statically-determined mapped lock index of a kLock, or -1 when
// the class is unknown, its map may still change, or the element index
// is dynamic under a non-object map.
int mapped_lock_index(const Instr& i);

// Applies one instruction's transfer function. With `sums`, kCall uses
// the callee's LockSummary (facts survive non-splitting callees, and
// the callee's exit locks are translated onto the caller's argument
// locals as read coverage); without, kCall is handled with the
// intraprocedural canSplit approximation only. `coveredLock` is set for
// kLock instructions whose location is already covered.
void transfer(LockState& st, const Instr& i, const Module& m, const Summaries* sums,
              bool* coveredLock);

// Solves the forward must-locked dataflow and returns the block-entry
// states (in[0] is the entry block's, never top). Walk each block with
// transfer() to reconstruct intermediate points.
std::vector<LockState> solve_must_locked(const Function& f, const Module& m,
                                         const Summaries* sums);

// Intraprocedural approximation used when no summaries are available:
// unknown or canSplit callees may split the section.
bool call_may_split(const Instr& i, const Module& m);

}  // namespace sbd::il
