// The STM-interface insertion pass (§4.1): rewrites raw field/element
// accesses into an explicit Lock operation followed by the no-lock
// access form. This is the IL analog of the paper's bytecode
// transformation; the optimizer then removes redundant Lock operations.
#pragma once

#include "il/ir.h"

namespace sbd::il {

// Rewrites every kGetF/kSetF/kGetE/kSetE into (kLock, k*Nl).
// Accesses to final fields get no lock (Table 1); `finalMask` comes
// from the class metadata attached to... the IL is untyped per-local,
// so the transformer is conservative: it treats every field access as
// non-final unless the instruction's cls says otherwise.
void insert_locks(Function& f);
void insert_locks(Module& m);

}  // namespace sbd::il
