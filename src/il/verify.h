// Static checking of the paper's §2.2 modifier rules on SBD-IL:
//
//   V1  split may appear only in canSplit functions
//   V2  a call to a canSplit function must carry allowSplit
//   V3  allowSplit may appear only inside canSplit functions
//   V4  constructors cannot be canSplit (uninitialized instances must
//       not escape an atomic section)
//   V5  callees must exist with matching arity; local indices must be
//       in range; frames must fit the backends' limits
//   V6  (with summaries) every no-lock access is covered by a must-held
//       lock of sufficient mode at that point — computed with the SAME
//       dataflow the optimizer uses (summary.h), so anything O1 would
//       eliminate, V6 accepts, and nothing else. In particular a write
//       no-lock access whose only coverage is the read-mode fact
//       imported from a callee's LockSummary is a lock-mode mismatch
//       and is rejected.
//
// (The paper's override rule — canSplit can only override canSplit —
// has no analog here because SBD-IL has no inheritance.)
#pragma once

#include <string>
#include <vector>

#include "il/ir.h"
#include "il/summary.h"

namespace sbd::il {

// Structural checks V1–V5. Returns human-readable diagnostics; empty
// means the module verifies.
std::vector<std::string> verify(const Module& m);

// V1–V5 plus the V6 lock-coverage check against `sums` (typically
// compute_summaries(m)). V6 runs only when the structural checks are
// clean — the dataflow indexes blocks and locals the structural pass
// has validated. Intended for transformed modules (insert_locks output,
// optionally optimized), where every no-lock access must be provably
// covered; raw hand-built modules that never use the *Nl forms verify
// trivially.
std::vector<std::string> verify(const Module& m, const Summaries& sums);

}  // namespace sbd::il
