// Static checking of the paper's §2.2 modifier rules on SBD-IL:
//
//   V1  split may appear only in canSplit functions
//   V2  a call to a canSplit function must carry allowSplit
//   V3  allowSplit may appear only inside canSplit functions
//   V4  constructors cannot be canSplit (uninitialized instances must
//       not escape an atomic section)
//   V5  callees must exist; local indices must be in range
//
// (The paper's override rule — canSplit can only override canSplit —
// has no analog here because SBD-IL has no inheritance.)
#pragma once

#include <string>
#include <vector>

#include "il/ir.h"

namespace sbd::il {

// Returns human-readable diagnostics; empty means the module verifies.
std::vector<std::string> verify(const Module& m);

}  // namespace sbd::il
