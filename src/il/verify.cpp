#include "il/verify.h"

#include <sstream>

#include "il/lowering.h"
#include "il/summary.h"

namespace sbd::il {

namespace {
void check_local(const Function& f, int idx, bool allowNeg, const std::string& where,
                 std::vector<std::string>& out) {
  if (idx < 0 && allowNeg) return;
  if (idx < 0 || idx >= f.numLocals) {
    std::ostringstream os;
    os << f.name << ": local l" << idx << " out of range at " << where;
    out.push_back(os.str());
  }
}

// V6 — every no-lock access must be covered, at its program point, by a
// must-held lock of sufficient mode. The check reuses transfer()'s own
// kLock coverage logic on a synthetic probe, so the verifier accepts
// exactly the coverage the optimizer would have used to eliminate the
// access's lock — the two can never disagree.
void verify_coverage(const Module& m, const Summaries& sums,
                     std::vector<std::string>& diags) {
  for (const auto& [name, fptr] : m.functions) {
    const Function& f = *fptr;
    const auto in = solve_must_locked(f, m, &sums);
    for (size_t b = 0; b < f.blocks.size(); b++) {
      if (in[b].top) continue;  // unreachable
      LockState st = in[b];

      auto covered = [&](int base, int loc, bool isElem, LockMode mode,
                         runtime::ClassInfo* cls) {
        Instr probe;
        probe.op = Op::kLock;
        probe.a = base;
        probe.b = isElem ? -1 : loc;
        probe.c = isElem ? loc : -1;
        probe.mode = mode;
        probe.cls = cls;
        LockState copy = st;
        bool cov = false;
        transfer(copy, probe, m, &sums, &cov);
        return cov;
      };
      auto diag = [&](size_t blk, const char* what) {
        std::ostringstream os;
        os << f.name << ": " << what << " at b" << blk
           << " — not covered by a must-held lock of sufficient mode (V6)";
        diags.push_back(os.str());
      };

      for (const Instr& i : f.blocks[b].instrs) {
        switch (i.op) {
          case Op::kGetFNl:
            if (!covered(i.b, i.c, false, LockMode::kRead, i.cls))
              diag(b, "no-lock field read");
            break;
          case Op::kSetFNl:
            // Write coverage demands an exact write-mode fact (or a
            // this-transaction-new base): read facts — including every
            // fact imported from a callee summary — are a mode
            // mismatch, because the write's undo logging rides on the
            // eliminated lock.
            if (!covered(i.a, i.b, false, LockMode::kWrite, i.cls))
              diag(b, "no-lock field write");
            break;
          case Op::kGetENl:
            if (!covered(i.b, i.c, true, LockMode::kRead, i.cls))
              diag(b, "no-lock element read");
            break;
          case Op::kSetENl:
            if (!covered(i.a, i.b, true, LockMode::kWrite, i.cls))
              diag(b, "no-lock element write");
            break;
          default:
            break;
        }
        if (i.op == Op::kRet) break;  // the rest of the block is unreachable
        transfer(st, i, m, &sums, nullptr);
      }
    }
  }
}
}  // namespace

std::vector<std::string> verify(const Module& m) {
  std::vector<std::string> diags;
  for (const auto& [name, fptr] : m.functions) {
    const Function& f = *fptr;
    if (f.isConstructor && f.canSplit)
      diags.push_back(f.name + ": constructors cannot be canSplit (V4)");
    if (f.blocks.empty()) diags.push_back(f.name + ": function has no blocks (V5)");
    if (f.numLocals > kMaxLocals)
      diags.push_back(f.name + ": frame exceeds backend local limit (V5)");
    if (f.numParams < 0 || f.numParams > f.numLocals)
      diags.push_back(f.name + ": param count exceeds locals (V5)");
    for (size_t bi = 0; bi < f.blocks.size(); bi++) {
      const Block& b = f.blocks[bi];
      std::ostringstream osb;
      osb << "b" << bi;
      const std::string where = osb.str();
      if (b.condLocal >= 0) {
        check_local(f, b.condLocal, false, where + " terminator", diags);
        if (b.next < 0 || b.next >= static_cast<int>(f.blocks.size()) || b.nextAlt < 0 ||
            b.nextAlt >= static_cast<int>(f.blocks.size()))
          diags.push_back(f.name + ": branch target out of range in " + where);
      } else if (b.next >= static_cast<int>(f.blocks.size())) {
        diags.push_back(f.name + ": jump target out of range in " + where);
      }
      for (const Instr& i : b.instrs) {
        switch (i.op) {
          case Op::kSplit:
            if (!f.canSplit)
              diags.push_back(f.name + ": split in a function without canSplit (V1)");
            break;
          case Op::kCall: {
            const Function* callee = m.get(i.calleeName);
            if (!callee) {
              diags.push_back(f.name + ": call to unknown function " + i.calleeName +
                              " (V5)");
              break;
            }
            if (callee->canSplit && !i.allowSplit)
              diags.push_back(f.name + ": call to canSplit " + i.calleeName +
                              " without allowSplit (V2)");
            if (i.allowSplit && !f.canSplit)
              diags.push_back(f.name + ": allowSplit call in a function without canSplit (V3)");
            if (static_cast<int>(i.args.size()) != callee->numParams)
              diags.push_back(f.name + ": arity mismatch calling " + i.calleeName +
                              " (V5)");
            for (int a : i.args) check_local(f, a, false, where + " call arg", diags);
            check_local(f, i.a, true, where + " call dst", diags);
            break;
          }
          case Op::kConst:
            check_local(f, i.a, false, where, diags);
            break;
          case Op::kMove:
          case Op::kLen:
            check_local(f, i.a, false, where, diags);
            check_local(f, i.b, false, where, diags);
            break;
          case Op::kBin:
          case Op::kGetE:
          case Op::kSetE:
          case Op::kGetENl:
          case Op::kSetENl:
            check_local(f, i.a, false, where, diags);
            check_local(f, i.b, false, where, diags);
            check_local(f, i.c, false, where, diags);
            break;
          case Op::kGetF:
          case Op::kGetFNl:
            // a = dst, b = base object; c is a field index, not a local.
            check_local(f, i.a, false, where, diags);
            check_local(f, i.b, false, where, diags);
            break;
          case Op::kSetF:
          case Op::kSetFNl:
            // a = base object, c = source; b is a field index.
            check_local(f, i.a, false, where, diags);
            check_local(f, i.c, false, where, diags);
            break;
          case Op::kLock:
            check_local(f, i.a, false, where, diags);
            if (i.c >= 0) check_local(f, i.c, false, where, diags);
            break;
          case Op::kNew:
            check_local(f, i.a, false, where, diags);
            if (!i.cls) diags.push_back(f.name + ": new with null class (V5)");
            break;
          case Op::kNewArr:
            check_local(f, i.a, false, where, diags);
            check_local(f, i.b, false, where, diags);
            break;
          case Op::kRet:
            check_local(f, i.a, true, where, diags);
            break;
          case Op::kPrint:
            check_local(f, i.a, false, where, diags);
            break;
        }
      }
    }
  }
  return diags;
}

std::vector<std::string> verify(const Module& m, const Summaries& sums) {
  std::vector<std::string> diags = verify(m);
  // The dataflow indexes blocks and locals the structural pass
  // validates; only run it on structurally sound modules.
  if (diags.empty()) verify_coverage(m, sums, diags);
  return diags;
}

}  // namespace sbd::il
