#include "il/verify.h"

#include <sstream>

namespace sbd::il {

namespace {
void check_local(const Function& f, int idx, bool allowNeg, const std::string& where,
                 std::vector<std::string>& out) {
  if (idx < 0 && allowNeg) return;
  if (idx < 0 || idx >= f.numLocals) {
    std::ostringstream os;
    os << f.name << ": local l" << idx << " out of range at " << where;
    out.push_back(os.str());
  }
}
}  // namespace

std::vector<std::string> verify(const Module& m) {
  std::vector<std::string> diags;
  for (const auto& [name, fptr] : m.functions) {
    const Function& f = *fptr;
    if (f.isConstructor && f.canSplit)
      diags.push_back(f.name + ": constructors cannot be canSplit (V4)");
    for (size_t bi = 0; bi < f.blocks.size(); bi++) {
      const Block& b = f.blocks[bi];
      std::ostringstream osb;
      osb << "b" << bi;
      const std::string where = osb.str();
      if (b.condLocal >= 0) {
        check_local(f, b.condLocal, false, where + " terminator", diags);
        if (b.next < 0 || b.next >= static_cast<int>(f.blocks.size()) || b.nextAlt < 0 ||
            b.nextAlt >= static_cast<int>(f.blocks.size()))
          diags.push_back(f.name + ": branch target out of range in " + where);
      } else if (b.next >= static_cast<int>(f.blocks.size())) {
        diags.push_back(f.name + ": jump target out of range in " + where);
      }
      for (const Instr& i : b.instrs) {
        switch (i.op) {
          case Op::kSplit:
            if (!f.canSplit)
              diags.push_back(f.name + ": split in a function without canSplit (V1)");
            break;
          case Op::kCall: {
            const Function* callee = m.get(i.calleeName);
            if (!callee) {
              diags.push_back(f.name + ": call to unknown function " + i.calleeName +
                              " (V5)");
              break;
            }
            if (callee->canSplit && !i.allowSplit)
              diags.push_back(f.name + ": call to canSplit " + i.calleeName +
                              " without allowSplit (V2)");
            if (i.allowSplit && !f.canSplit)
              diags.push_back(f.name + ": allowSplit call in a function without canSplit (V3)");
            if (static_cast<int>(i.args.size()) != callee->numParams)
              diags.push_back(f.name + ": arity mismatch calling " + i.calleeName +
                              " (V5)");
            for (int a : i.args) check_local(f, a, false, where + " call arg", diags);
            check_local(f, i.a, true, where + " call dst", diags);
            break;
          }
          case Op::kConst:
            check_local(f, i.a, false, where, diags);
            break;
          case Op::kMove:
          case Op::kLen:
            check_local(f, i.a, false, where, diags);
            check_local(f, i.b, false, where, diags);
            break;
          case Op::kBin:
          case Op::kGetE:
          case Op::kSetE:
          case Op::kGetENl:
          case Op::kSetENl:
            check_local(f, i.a, false, where, diags);
            check_local(f, i.b, false, where, diags);
            check_local(f, i.c, false, where, diags);
            break;
          case Op::kGetF:
          case Op::kSetF:
          case Op::kGetFNl:
          case Op::kSetFNl:
            check_local(f, i.a, false, where, diags);
            check_local(f, i.c, false, where, diags);
            break;
          case Op::kLock:
            check_local(f, i.a, false, where, diags);
            if (i.c >= 0) check_local(f, i.c, false, where, diags);
            break;
          case Op::kNew:
            check_local(f, i.a, false, where, diags);
            if (!i.cls) diags.push_back(f.name + ": new with null class (V5)");
            break;
          case Op::kNewArr:
            check_local(f, i.a, false, where, diags);
            check_local(f, i.b, false, where, diags);
            break;
          case Op::kRet:
            check_local(f, i.a, true, where, diags);
            break;
          case Op::kPrint:
            check_local(f, i.a, false, where, diags);
            break;
        }
      }
    }
  }
  return diags;
}

}  // namespace sbd::il
