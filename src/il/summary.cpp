#include "il/summary.h"

#include <algorithm>
#include <sstream>

#include "runtime/lockplan.h"

namespace sbd::il {

// ---------------------------------------------------------------------------
// Must-locked dataflow state
// ---------------------------------------------------------------------------

// A fact encodes: base local | location (field index or element-index
// local) | field-vs-element | mode.
uint64_t fact_key(int base, int fieldOrIdx, bool isElem, LockMode mode) {
  return (static_cast<uint64_t>(base) << 32) |
         (static_cast<uint64_t>(static_cast<uint32_t>(fieldOrIdx)) << 2) |
         (isElem ? 2u : 0u) | (mode == LockMode::kWrite ? 1u : 0u);
}

bool map_is_static(const runtime::ClassInfo* cls) {
  using runtime::lockplan::Mode;
  return runtime::lockplan::mode() != Mode::kAdaptive ||
         cls->lockMapPinned.load(std::memory_order_relaxed);
}

// Versioned maps need no special casing in this analysis. Invisible
// reads exist only on the value paths (kGetF/kGetE -> tx_read*), which
// O1 never rewrites; a kLock on a versioned class acquires the covered
// word EXCLUSIVELY (runtime/field_access.h pins the IL path to
// versioned_acquire_write), so a held fact still means "this word
// cannot change until the section ends" — exactly the invariant
// redundant-lock elimination relies on. If kLock were ever lowered to
// an invisible read-set append instead, eliminating a covered re-lock
// would skip that read's stale check and admit zombie executions; any
// such change must add a versioned gate here.

namespace {

template <typename Set>
bool intersect_into(Set& dst, const Set& other) {
  bool changed = false;
  for (auto it = dst.begin(); it != dst.end();) {
    if (!other.count(*it)) {
      it = dst.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  return changed;
}

}  // namespace

bool LockState::meet(const LockState& other) {
  if (other.top) return false;
  if (top) {
    top = false;
    facts = other.facts;
    mapped = other.mapped;
    newLocals = other.newLocals;
    callFacts = other.callFacts;
    callMapped = other.callMapped;
    return true;
  }
  bool changed = false;
  changed |= intersect_into(facts, other.facts);
  changed |= intersect_into(mapped, other.mapped);
  changed |= intersect_into(newLocals, other.newLocals);
  // Provenance is attribution, not coverage: a surviving fact counts as
  // call-established if it was call-established on ANY path (union,
  // pruned to the surviving facts).
  for (uint64_t k : other.callFacts)
    if (facts.count(k) && callFacts.insert(k).second) changed = true;
  for (auto it = callFacts.begin(); it != callFacts.end();) {
    if (!facts.count(*it)) {
      it = callFacts.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  for (const MappedFact& mf : other.callMapped)
    if (mapped.count(mf) && callMapped.insert(mf).second) changed = true;
  for (auto it = callMapped.begin(); it != callMapped.end();) {
    if (!mapped.count(*it)) {
      it = callMapped.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  return changed;
}

void LockState::kill_local(int l) {
  newLocals.erase(l);
  for (auto it = facts.begin(); it != facts.end();) {
    const int base = static_cast<int>(*it >> 32);
    const bool isElem = (*it & 2u) != 0;
    const int loc = static_cast<int>((*it >> 2) & 0x3FFFFFFF);
    if (base == l || (isElem && loc == l)) {
      callFacts.erase(*it);
      it = facts.erase(it);
    } else {
      ++it;
    }
  }
  // Mapped facts never reference an index local (element form exists
  // only for object maps, where the index is irrelevant), so only
  // the base can die.
  for (auto it = mapped.begin(); it != mapped.end();) {
    if (it->base == l) {
      callMapped.erase(*it);
      it = mapped.erase(it);
    } else {
      ++it;
    }
  }
}

void LockState::clear_all() {
  facts.clear();
  mapped.clear();
  newLocals.clear();
  callFacts.clear();
  callMapped.clear();
}

bool LockState::covers(int base, int fieldOrIdx, bool isElem, LockMode mode) const {
  if (newLocals.count(base)) return true;  // new instances need no lock
  if (facts.count(fact_key(base, fieldOrIdx, isElem, LockMode::kWrite))) return true;
  if (mode == LockMode::kRead &&
      facts.count(fact_key(base, fieldOrIdx, isElem, LockMode::kRead)))
    return true;
  return false;
}

bool LockState::covers_mapped(int base, uint32_t lockIdx,
                              const runtime::ClassInfo* cls) const {
  return mapped.count(MappedFact{base, lockIdx, true, cls}) ||
         mapped.count(MappedFact{base, lockIdx, false, cls});
}

bool LockState::covered_by_call(int base, int fieldOrIdx, bool isElem,
                                const runtime::ClassInfo* cls, int mappedIdx) const {
  if (callFacts.count(fact_key(base, fieldOrIdx, isElem, LockMode::kWrite)) ||
      callFacts.count(fact_key(base, fieldOrIdx, isElem, LockMode::kRead)))
    return true;
  if (mappedIdx >= 0 && cls != nullptr) {
    const auto idx = static_cast<uint32_t>(mappedIdx);
    if (callMapped.count(MappedFact{base, idx, true, cls}) ||
        callMapped.count(MappedFact{base, idx, false, cls}))
      return true;
  }
  return false;
}

bool call_may_split(const Instr& i, const Module& m) {
  const Function* callee = m.get(i.calleeName);
  return callee == nullptr || callee->canSplit;
}

// Mapped lock index, when the static class annotation and its
// immutable LockMap determine it: any map kind for field locks
// (constant field index), object maps for element locks (every
// index hits word 0 regardless of the index local's value).
int mapped_lock_index(const Instr& i) {
  const bool isElem = i.c >= 0;
  if (i.cls == nullptr || !map_is_static(i.cls)) return -1;
  const runtime::LockMap map = i.cls->lock_map();
  if (!isElem) return static_cast<int>(map.index(static_cast<uint32_t>(i.b)));
  if (map.kind == runtime::LockMap::kObject) return 0;
  return -1;
}

void transfer(LockState& st, const Instr& i, const Module& m, const Summaries* sums,
              bool* coveredLock) {
  if (coveredLock) *coveredLock = false;
  switch (i.op) {
    case Op::kLock: {
      const bool isElem = i.c >= 0;
      const int loc = isElem ? i.c : i.b;
      const int mappedIdx = mapped_lock_index(i);
      bool covered = st.covers(i.a, loc, isElem, i.mode);
      if (!covered && mappedIdx >= 0 && i.mode == LockMode::kRead)
        covered = st.covers_mapped(i.a, static_cast<uint32_t>(mappedIdx), i.cls);
      if (covered) {
        if (coveredLock) *coveredLock = true;
        return;  // no new fact; the covering fact remains
      }
      st.facts.insert(fact_key(i.a, loc, isElem, i.mode));
      if (mappedIdx >= 0)
        st.mapped.insert(MappedFact{i.a, static_cast<uint32_t>(mappedIdx),
                                    i.mode == LockMode::kWrite, i.cls});
      return;
    }
    case Op::kSplit:
      st.clear_all();
      return;
    case Op::kCall: {
      const LockSummary* cs = nullptr;
      if (sums) {
        auto it = sums->find(i.calleeName);
        if (it != sums->end()) cs = &it->second;
      }
      // Translate the callee's exit locks onto the caller's argument
      // locals BEFORE killing the destination (the argument locals are
      // read at the call, before the return value lands).
      std::vector<std::pair<uint64_t, bool>> genPlain;  // key, (unused)
      std::vector<MappedFact> genMapped;
      if (cs != nullptr && !cs->top) {
        const int nargs = static_cast<int>(i.args.size());
        for (const SummaryFact& sf : cs->exitLocks) {
          if (sf.param < 0 || sf.param >= nargs) continue;
          const int base = i.args[static_cast<size_t>(sf.param)];
          int loc = sf.loc;
          if (sf.isElem) {
            if (sf.loc < 0 || sf.loc >= nargs) continue;
            loc = i.args[static_cast<size_t>(sf.loc)];
          }
          // READ coverage only, whatever the callee acquired: exporting
          // write coverage would let a later write lock (and its undo
          // logging) be eliminated across the call — unsound under
          // coarse maps (summary.h, soundness note 2).
          genPlain.emplace_back(fact_key(base, loc, sf.isElem, LockMode::kRead), false);
        }
        for (const MappedSummaryFact& mf : cs->exitMapped) {
          if (mf.param < 0 || mf.param >= nargs) continue;
          if (mf.cls == nullptr || !map_is_static(mf.cls)) continue;
          genMapped.push_back(MappedFact{i.args[static_cast<size_t>(mf.param)],
                                         mf.lockIdx, /*write=*/false, mf.cls});
        }
      }
      const bool clears =
          cs != nullptr ? (cs->top || cs->maySplit) : call_may_split(i, m);
      if (clears) st.clear_all();
      const int d = defined_local(i);
      if (d >= 0) st.kill_local(d);
      for (const auto& [key, unused] : genPlain) {
        (void)unused;
        const int base = static_cast<int>(key >> 32);
        const bool isElem = (key & 2u) != 0;
        const int loc = static_cast<int>((key >> 2) & 0x3FFFFFFF);
        if (base == d || (isElem && loc == d)) continue;  // clobbered by the result
        if (st.facts.insert(key).second) st.callFacts.insert(key);
      }
      for (const MappedFact& mf : genMapped) {
        if (mf.base == d) continue;
        if (st.mapped.insert(mf).second) st.callMapped.insert(mf);
      }
      if (cs != nullptr && !cs->top && cs->returnsNew && d >= 0)
        st.newLocals.insert(d);
      return;
    }
    case Op::kNew:
    case Op::kNewArr: {
      st.kill_local(i.a);
      st.newLocals.insert(i.a);
      return;
    }
    case Op::kMove: {
      // Copy propagation: after a = b both locals alias the same object,
      // so facts on b transfer to a. This is what lets the analysis see
      // through the argument moves the inliner introduces.
      const bool srcNew = st.newLocals.count(i.b) > 0;
      std::vector<std::pair<uint64_t, bool>> copied;  // key, call-provenance
      for (uint64_t k : st.facts) {
        if (static_cast<int>(k >> 32) == i.b)
          copied.emplace_back((k & 0xFFFFFFFFull) | (static_cast<uint64_t>(i.a) << 32),
                              st.callFacts.count(k) > 0);
      }
      std::vector<std::pair<MappedFact, bool>> copiedMapped;
      for (const MappedFact& mf : st.mapped) {
        if (mf.base == i.b) {
          MappedFact c = mf;
          c.base = i.a;
          copiedMapped.emplace_back(c, st.callMapped.count(mf) > 0);
        }
      }
      st.kill_local(i.a);
      if (i.a != i.b) {
        for (const auto& [k, viaCall] : copied) {
          st.facts.insert(k);
          if (viaCall) st.callFacts.insert(k);
        }
        for (const auto& [mf, viaCall] : copiedMapped) {
          st.mapped.insert(mf);
          if (viaCall) st.callMapped.insert(mf);
        }
        if (srcNew) st.newLocals.insert(i.a);
      }
      return;
    }
    default: {
      const int d = defined_local(i);
      if (d >= 0) st.kill_local(d);
      return;
    }
  }
}

std::vector<LockState> solve_must_locked(const Function& f, const Module& m,
                                         const Summaries* sums) {
  const size_t n = f.blocks.size();
  auto preds = predecessors(f);
  std::vector<LockState> in(n), out(n);
  if (n == 0) return in;
  in[0].top = false;  // entry starts with no facts

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b = 0; b < n; b++) {
      LockState cur = in[b];
      for (size_t p = 0; p < preds[b].size(); p++)
        cur.meet(out[static_cast<size_t>(preds[b][p])]);
      if (b == 0) cur.top = false;
      LockState o = cur;
      if (!o.top) {
        for (const Instr& i : f.blocks[b].instrs) {
          transfer(o, i, m, sums, nullptr);
          if (i.op == Op::kRet) break;  // the rest of the block is unreachable
        }
      }
      if (!(o == out[b])) {
        out[b] = std::move(o);
        changed = true;
      }
      in[b] = std::move(cur);
    }
  }
  return in;
}

// ---------------------------------------------------------------------------
// Summary computation: bottom-up over call-graph SCCs
// ---------------------------------------------------------------------------

namespace {

// Locals never reassigned anywhere in the function. Only facts rooted
// at stable parameters survive translation to a call site: a fact on a
// reassigned parameter local describes whatever object it held LAST,
// not the caller's argument.
std::vector<bool> stable_params(const Function& f) {
  std::vector<bool> stable(static_cast<size_t>(f.numParams), true);
  for (const Block& b : f.blocks)
    for (const Instr& i : b.instrs) {
      const int d = defined_local(i);
      if (d >= 0 && d < f.numParams) stable[static_cast<size_t>(d)] = false;
    }
  return stable;
}

LockSummary summarize_one(const Function& f, const Module& m, const Summaries& done) {
  LockSummary s;
  s.top = false;

  // maySplit: a split instruction, or any call whose callee may split.
  // (A non-canSplit function can never split transitively — V1/V2/V3 —
  // but the summary is computed from the code, not the modifier, so a
  // canSplit function that never actually splits keeps callers' facts.)
  s.maySplit = false;
  for (const Block& b : f.blocks) {
    for (const Instr& i : b.instrs) {
      if (i.op == Op::kSplit) s.maySplit = true;
      if (i.op == Op::kCall) {
        auto it = done.find(i.calleeName);
        if (it == done.end() || it->second.top || it->second.maySplit)
          s.maySplit = true;
      }
    }
  }

  // Exit state: intersection of the dataflow state at every return
  // point (kRet or falling off an exit block). kSplit clears facts
  // inside the walk, so surviving exit facts were (re)acquired after
  // any split on every path — still held when the caller resumes.
  const auto in = solve_must_locked(f, m, &done);
  LockState exitState;  // top: meet identity
  bool returnsNew = true;
  bool sawExit = false;
  for (size_t b = 0; b < f.blocks.size(); b++) {
    if (b >= in.size() || in[b].top) continue;  // unreachable
    LockState st = in[b];
    bool returned = false;
    for (const Instr& i : f.blocks[b].instrs) {
      if (i.op == Op::kRet) {
        sawExit = true;
        returnsNew &= i.a >= 0 && st.newLocals.count(i.a) > 0;
        exitState.meet(st);
        returned = true;
        break;
      }
      transfer(st, i, m, &done, nullptr);
    }
    if (!returned && f.blocks[b].is_exit()) {  // implicit void return
      sawExit = true;
      returnsNew = false;
      exitState.meet(st);
    }
  }
  if (!sawExit || exitState.top) return s;  // never returns: nothing to export
  s.returnsNew = returnsNew;

  const auto stable = stable_params(f);
  auto is_stable_param = [&](int l) {
    return l >= 0 && l < f.numParams && stable[static_cast<size_t>(l)];
  };
  std::set<SummaryFact> plain;
  for (uint64_t k : exitState.facts) {
    const int base = static_cast<int>(k >> 32);
    const bool isElem = (k & 2u) != 0;
    const int loc = static_cast<int>((k >> 2) & 0x3FFFFFFF);
    const LockMode mode = (k & 1u) ? LockMode::kWrite : LockMode::kRead;
    if (!is_stable_param(base)) continue;
    if (isElem && !is_stable_param(loc)) continue;
    plain.insert(SummaryFact{base, loc, isElem, mode});
  }
  std::set<MappedSummaryFact> mappedOut;
  for (const MappedFact& mf : exitState.mapped) {
    if (!is_stable_param(mf.base)) continue;
    mappedOut.insert(MappedSummaryFact{mf.base, mf.lockIdx, mf.write,
                                       const_cast<runtime::ClassInfo*>(mf.cls)});
  }
  s.exitLocks.assign(plain.begin(), plain.end());
  s.exitMapped.assign(mappedOut.begin(), mappedOut.end());
  return s;
}

// Tarjan SCC over the call graph (edges caller -> callee). SCCs pop
// callees-first, which is exactly the bottom-up order the summaries
// need; any SCC with more than one member or a self-edge is recursion
// and gets the conservative top element.
struct Tarjan {
  const Module& m;
  std::map<const Function*, int> index, low;
  std::map<const Function*, bool> onStack;
  std::vector<const Function*> stack;
  int next = 0;
  std::vector<std::vector<const Function*>> sccs;  // callees-first

  explicit Tarjan(const Module& mod) : m(mod) {}

  void strongconnect(const Function* f) {
    index[f] = low[f] = next++;
    stack.push_back(f);
    onStack[f] = true;
    for (const Block& b : f->blocks)
      for (const Instr& i : b.instrs) {
        if (i.op != Op::kCall) continue;
        const Function* callee = m.get(i.calleeName);
        if (callee == nullptr) continue;  // conservatively handled at transfer time
        if (!index.count(callee)) {
          strongconnect(callee);
          low[f] = std::min(low[f], low[callee]);
        } else if (onStack[callee]) {
          low[f] = std::min(low[f], index[callee]);
        }
      }
    if (low[f] == index[f]) {
      std::vector<const Function*> scc;
      const Function* w;
      do {
        w = stack.back();
        stack.pop_back();
        onStack[w] = false;
        scc.push_back(w);
      } while (w != f);
      sccs.push_back(std::move(scc));
    }
  }
};

bool has_self_call(const Function& f) {
  for (const Block& b : f.blocks)
    for (const Instr& i : b.instrs)
      if (i.op == Op::kCall && i.calleeName == f.name) return true;
  return false;
}

}  // namespace

Summaries compute_summaries(const Module& m) {
  Tarjan t(m);
  for (const auto& [name, f] : m.functions)
    if (!t.index.count(f.get())) t.strongconnect(f.get());

  Summaries out;
  for (const auto& scc : t.sccs) {
    if (scc.size() > 1 || has_self_call(*scc.front())) {
      for (const Function* f : scc) out[f->name] = LockSummary{};  // top
      continue;
    }
    const Function* f = scc.front();
    out[f->name] = summarize_one(*f, m, out);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Dumps
// ---------------------------------------------------------------------------

std::string to_string(const LockSummary& s) {
  if (s.top) return "TOP (recursive or unknown: may split, holds nothing)";
  std::ostringstream os;
  os << (s.maySplit ? "maySplit" : "noSplit");
  if (s.returnsNew) os << " returnsNew";
  os << " holds=[";
  bool first = true;
  for (const SummaryFact& f : s.exitLocks) {
    if (!first) os << ", ";
    first = false;
    if (f.isElem)
      os << "p" << f.param << "[p" << f.loc << "]";
    else
      os << "p" << f.param << ".f" << f.loc;
    os << (f.mode == LockMode::kWrite ? " W" : " R");
  }
  os << "]";
  if (!s.exitMapped.empty()) {
    os << " mapped=[";
    first = true;
    for (const MappedSummaryFact& f : s.exitMapped) {
      if (!first) os << ", ";
      first = false;
      os << "p" << f.param << " w" << f.lockIdx << (f.write ? " W" : " R") << " of "
         << (f.cls != nullptr ? f.cls->name : std::string("?"));
    }
    os << "]";
  }
  return os.str();
}

std::string dump_summaries(const Module& m, const Summaries& s) {
  std::ostringstream os;
  for (const auto& [name, fn] : m.functions) {
    (void)fn;
    auto it = s.find(name);
    os << name << ": "
       << (it == s.end() ? std::string("<no summary>") : to_string(it->second)) << "\n";
  }
  return os.str();
}

}  // namespace sbd::il
