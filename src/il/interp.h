// The SBD-IL interpreter: executes IL against the real STM runtime.
//
// Interpreter frames live on the C++ stack (a fixed locals array per
// recursive call), so the STM's checkpoint/restore abort path rolls the
// interpreter back together with everything else — the IL program gets
// the managed-language frame-rebuild semantics for free.
//
// Lock operations (kLock) run the Figure 5 fast path and therefore feed
// the same per-effect statistics as native code, which is what the
// optimizer ablation (bench_ablation_ilopt) measures.
#pragma once

#include <cstdint>
#include <vector>

#include "il/ir.h"

namespace sbd::il {

// Executes `fnName` with integer/ref arguments. Must run inside an SBD
// atomic section (e.g. under sbd::run_sbd or an SbdThread). References
// are passed/returned as ManagedObject* cast to int64_t.
int64_t execute(const Module& m, const std::string& fnName,
                const std::vector<int64_t>& args = {});

}  // namespace sbd::il
