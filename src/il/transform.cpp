#include "il/transform.h"

namespace sbd::il {

void insert_locks(Function& f) {
  for (Block& b : f.blocks) {
    std::vector<Instr> out;
    out.reserve(b.instrs.size() * 2);
    for (const Instr& i : b.instrs) {
      switch (i.op) {
        case Op::kGetF: {
          Instr lock;
          lock.op = Op::kLock;
          lock.a = i.b;  // base
          lock.b = i.c;  // field index
          lock.c = -1;   // field, not element
          lock.mode = LockMode::kRead;
          lock.cls = i.cls;  // static type annotation, for LockMap dedupe
          out.push_back(lock);
          Instr acc = i;
          acc.op = Op::kGetFNl;
          out.push_back(acc);
          break;
        }
        case Op::kSetF: {
          Instr lock;
          lock.op = Op::kLock;
          lock.a = i.a;  // base
          lock.b = i.b;  // field index
          lock.c = -1;
          lock.mode = LockMode::kWrite;
          lock.cls = i.cls;
          out.push_back(lock);
          Instr acc = i;
          acc.op = Op::kSetFNl;
          out.push_back(acc);
          break;
        }
        case Op::kGetE: {
          Instr lock;
          lock.op = Op::kLock;
          lock.a = i.b;  // base
          lock.b = -1;
          lock.c = i.c;  // index local
          lock.mode = LockMode::kRead;
          lock.cls = i.cls;
          out.push_back(lock);
          Instr acc = i;
          acc.op = Op::kGetENl;
          out.push_back(acc);
          break;
        }
        case Op::kSetE: {
          Instr lock;
          lock.op = Op::kLock;
          lock.a = i.a;  // base
          lock.b = -1;
          lock.c = i.b;  // index local
          lock.mode = LockMode::kWrite;
          lock.cls = i.cls;
          out.push_back(lock);
          Instr acc = i;
          acc.op = Op::kSetENl;
          out.push_back(acc);
          break;
        }
        default:
          out.push_back(i);
      }
    }
    b.instrs = std::move(out);
  }
}

void insert_locks(Module& m) {
  for (auto& [name, f] : m.functions) insert_locks(*f);
}

}  // namespace sbd::il
