// SBD-IL: a small typed intermediate representation standing in for the
// Java bytecode the paper's Soot-based transformer operates on (§4.1).
//
// Pipeline (mirroring the paper):
//   1. A front-end (the builder API) produces *raw* IL: field/element
//      accesses with no synchronization.
//   2. The transformer (transform.h) inserts an explicit Lock operation
//      before every non-final access and rewrites the access to its
//      no-lock form — the STM interface insertion.
//   3. The optimizer (opt.h) runs the paper's three intraprocedural
//      optimizations: redundant-lock elimination (must-locked dataflow,
//      exploiting canSplit absence), loop hoisting of lock operations,
//      and inlining (profile-style, by size) to widen their scope.
//   4. The interpreter (interp.h) executes IL against the real STM.
//
// The verifier (verify.h) enforces the paper's §2.2 modifier rules:
// split only in canSplit functions, canSplit callees require allowSplit
// call sites, constructors cannot be canSplit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/class_info.h"

namespace sbd::il {

enum class Op {
  kConst,    // local[a] = imm
  kMove,     // local[a] = local[b]
  kBin,      // local[a] = local[b] <binop> local[c]
  kRet,      // return local[a] (a = -1: void)
  kNew,      // local[a] = new cls
  kNewArr,   // local[a] = new kind[local[b]]
  kLock,     // lock local[a].field b (or element local[b] for arrays), mode
  kGetF,     // local[a] = local[b].field c       (checked access)
  kSetF,     // local[a].field b = local[c]
  kGetFNl,   // no-lock variants: a prior Lock covers the access
  kSetFNl,
  kGetE,     // local[a] = local[b][local[c]]
  kSetE,     // local[a][local[b]] = local[c]
  kGetENl,
  kSetENl,
  kLen,      // local[a] = length(local[b])
  kCall,     // local[a] = callee(locals in args); allowSplit per flag
  kSplit,    // the split operation
  kPrint,    // transactional console print of local[a]
};

enum class BinOp { kAdd, kSub, kMul, kDiv, kMod, kAnd, kOr, kXor, kLt, kLe, kEq, kNe };

enum class LockMode { kRead, kWrite };

struct Function;

struct Instr {
  Op op;
  int a = -1, b = -1, c = -1;
  int64_t imm = 0;
  BinOp bin = BinOp::kAdd;
  LockMode mode = LockMode::kRead;
  runtime::ClassInfo* cls = nullptr;
  runtime::ElemKind kind = runtime::ElemKind::kI64;
  std::string calleeName;
  std::vector<int> args;
  bool allowSplit = false;
};

// A basic block: straight-line instructions plus a terminator.
//   condLocal < 0 : unconditional jump to `next` (-1 = falls to kRet)
//   condLocal >= 0: if local != 0 goto next else nextAlt
struct Block {
  std::vector<Instr> instrs;
  int condLocal = -1;
  int next = -1;
  int nextAlt = -1;

  bool is_exit() const { return next < 0 && condLocal < 0; }
};

struct Function {
  std::string name;
  int numParams = 0;
  int numLocals = 0;  // includes params (locals [0, numParams) are params)
  bool canSplit = false;
  bool isConstructor = false;
  std::vector<Block> blocks;  // entry = block 0
};

struct Module {
  std::map<std::string, std::unique_ptr<Function>> functions;

  Function* get(const std::string& name) const {
    auto it = functions.find(name);
    return it == functions.end() ? nullptr : it->second.get();
  }
  Function* add(const std::string& name) {
    auto fn = std::make_unique<Function>();
    fn->name = name;
    Function* p = fn.get();
    functions[name] = std::move(fn);
    return p;
  }
};

// Fluent builder for one function.
class FnBuilder {
 public:
  FnBuilder(Module& m, const std::string& name, int numParams, int numLocals);

  FnBuilder& can_split(bool v = true);
  FnBuilder& constructor(bool v = true);

  // Starts a new block and returns its index.
  int block();
  // Switches the insertion point.
  void at(int blockIdx);
  int current() const { return cur_; }

  void cst(int dst, int64_t v);
  void mov(int dst, int src);
  void bin(int dst, BinOp op, int lhs, int rhs);
  void new_obj(int dst, runtime::ClassInfo* cls);
  void new_arr(int dst, runtime::ElemKind kind, int lenLocal);
  // Accessors take an optional static class annotation (the bytecode
  // transformer knows the declared type); it rides on the Lock the
  // transformer inserts and lets the optimizer dedupe locks through the
  // class's LockMap (two slots -> one mapped lock index).
  void getf(int dst, int base, int field, runtime::ClassInfo* cls = nullptr);
  void setf(int base, int field, int src, runtime::ClassInfo* cls = nullptr);
  void gete(int dst, int base, int idx, runtime::ClassInfo* cls = nullptr);
  void sete(int base, int idx, int src, runtime::ClassInfo* cls = nullptr);
  void len(int dst, int base);
  void call(int dst, const std::string& callee, std::vector<int> args,
            bool allowSplit = false);
  void split();
  void print(int src);
  void ret(int src = -1);

  // Terminators.
  void br(int target);
  void cbr(int condLocal, int ifTrue, int ifFalse);

  Function* fn() { return fn_; }

 private:
  Instr& emit(Op op);
  Function* fn_;
  int cur_ = 0;
};

// Textual dump (tests, debugging).
std::string to_string(const Function& f);
std::string to_string(const Instr& i);

// Counts instructions with a given opcode (test/ablation helper).
int count_ops(const Function& f, Op op);

// --- Shared lowering contract ----------------------------------------------
// The analyses (opt, summary, verify) and both execution backends
// (interp, compile) agree on these structural facts about IL; keeping
// them here is what lets a lock eliminated by the optimizer stay sound
// under either backend.

// The local an instruction assigns, or -1. (kCall may return -1: void.)
int defined_local(const Instr& i);

// CFG predecessors, indexed by block. Callers must have validated
// branch targets (the verifier's structural pass does).
std::vector<std::vector<int>> predecessors(const Function& f);

}  // namespace sbd::il
