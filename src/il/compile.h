// The threaded-code backend: lowers verified IL to arrays of
// pre-decoded handler ops executed by computed-goto dispatch.
//
// Why not a tree walker? Table 7's argument is about *lock operations*,
// and the interpreter's per-instruction costs — opcode switch, ~100-byte
// Instr decode, a std::map<std::string> lookup per kCall, a TLS lookup
// per frame — dwarf the Figure 5 fast path being measured. Compilation
// strips all four:
//
//   * each Instr is pre-decoded into a compact CInstr carrying its
//     handler address (direct threading; token-switch fallback on
//     non-GNU compilers),
//   * blocks are flattened into one code array with explicit branch
//     instructions, fallthroughs elided,
//   * kCall sites pre-resolve the callee to a CompiledFunction pointer,
//   * the cached-context runtime API (tx_read(tc, ...) and friends,
//     field_access.h) is bound directly into handlers, so a compiled
//     section pays one tls_context() at entry, not one per operation.
//
// The backend is intentionally NOT an optimizer: it executes exactly
// the instruction sequence the IL contains, calling exactly the same
// runtime entry points as the interpreter, in the same order. That is
// what makes the two backends bit-identical in results and in
// StatsCounters lock-op deltas (il_backend_diff_test), which in turn is
// what lets benchmarks attribute interp-vs-compiled deltas to dispatch
// cost and O1-vs-interproc deltas to eliminated lock ops, nothing else.
//
// compile() validates the structural invariants it depends on (operand
// locals in range, branch targets in range, callees resolvable, frame
// limits) and SBD_CHECK-fails on violation; run il::verify first for
// diagnosable errors.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "il/ir.h"

namespace sbd::il {

// Flattened opcodes. Lock and access forms are split per mode/shape so
// handlers are branch-free where the IL instruction wasn't.
enum class COp : uint8_t {
  kCConst,
  kCMove,
  kCBin,
  kCNew,
  kCNewArr,
  kCLockReadF,
  kCLockWriteF,
  kCLockReadE,
  kCLockWriteE,
  kCGetF,
  kCSetF,
  kCGetFNl,
  kCSetFNl,
  kCGetE,
  kCSetE,
  kCGetENl,
  kCSetENl,
  kCLen,
  kCCall,
  kCSplit,
  kCPrint,
  kCBr,     // unconditional jump to code index `aux`
  kCCbr,    // if locals[a] != 0 jump to `aux`, else fall through
  kCCmpBr,  // locals[a] = locals[b] <sub> locals[c]; if != 0 jump to `aux`
            // (a block-terminating kBin fused with its kCCbr — the
            //  store to locals[a] is kept, so semantics are unchanged)
  kCRet,    // return locals[a] (a < 0: return 0)
  kCCount,
};

// One pre-decoded op. 48 bytes vs sizeof(Instr) ≈ 100 with two
// out-of-line members; four CInstrs per cache line, no indirection on
// the hot fields.
struct CInstr {
  const void* handler = nullptr;  // direct-threaded dispatch target
  COp op = COp::kCRet;            // token fallback + label harvesting index
  uint8_t sub = 0;                // BinOp (kCBin) or ElemKind (kCNewArr)
  int16_t a = -1, b = -1, c = -1;
  int32_t aux = -1;  // branch target (code index) or call-site index
  int64_t imm = 0;   // kCConst payload
  runtime::ClassInfo* cls = nullptr;
};

// A call site with the callee resolved at compile time — the interp's
// per-call name lookup is the single largest dispatch cost it pays.
struct CallSite {
  const struct CompiledFunction* callee = nullptr;
  std::vector<int16_t> args;
  bool allowSplit = false;
};

struct CompiledFunction {
  std::string name;
  int numParams = 0;
  int numLocals = 0;
  bool canSplit = false;
  // Whether the canSplit dynamic scope must actually be maintained:
  // true for canSplit functions and for any function whose dynamic
  // extent can reach a kSplit or a canSplit entry check (computed
  // transitively over the call graph). For the rest the depth
  // save/zero/restore is unobservable and elided — the interpreter
  // keeps it unconditionally, which is fine: the bookkeeping has no
  // effect visible to results, lock ops, or traces.
  bool needsScope = true;
  std::vector<CInstr> code;
  std::vector<CallSite> calls;
};

struct CompiledModule {
  std::map<std::string, std::unique_ptr<CompiledFunction>> functions;

  const CompiledFunction* get(const std::string& name) const {
    auto it = functions.find(name);
    return it == functions.end() ? nullptr : it->second.get();
  }
};

// Lowers every function of `m`. The module must be execution-ready
// (locks inserted / optimized as desired): compilation is a snapshot,
// later mutations of `m` do not affect the compiled code.
CompiledModule compile(const Module& m);

// Executes `fnName`, mirroring il::execute() exactly: requires an
// active atomic section, arms allowSplit for a canSplit entry.
int64_t execute(const CompiledModule& cm, const std::string& fnName,
                const std::vector<int64_t>& args = {});

}  // namespace sbd::il
