#include "il/ir.h"

#include <sstream>

#include "common/check.h"

namespace sbd::il {

FnBuilder::FnBuilder(Module& m, const std::string& name, int numParams, int numLocals) {
  fn_ = m.add(name);
  fn_->numParams = numParams;
  fn_->numLocals = numLocals;
  SBD_CHECK(numLocals >= numParams);
  fn_->blocks.emplace_back();
}

FnBuilder& FnBuilder::can_split(bool v) {
  fn_->canSplit = v;
  return *this;
}

FnBuilder& FnBuilder::constructor(bool v) {
  fn_->isConstructor = v;
  return *this;
}

int FnBuilder::block() {
  fn_->blocks.emplace_back();
  return static_cast<int>(fn_->blocks.size()) - 1;
}

void FnBuilder::at(int blockIdx) {
  SBD_CHECK(blockIdx >= 0 && blockIdx < static_cast<int>(fn_->blocks.size()));
  cur_ = blockIdx;
}

Instr& FnBuilder::emit(Op op) {
  auto& b = fn_->blocks[static_cast<size_t>(cur_)];
  b.instrs.emplace_back();
  b.instrs.back().op = op;
  return b.instrs.back();
}

void FnBuilder::cst(int dst, int64_t v) {
  auto& i = emit(Op::kConst);
  i.a = dst;
  i.imm = v;
}

void FnBuilder::mov(int dst, int src) {
  auto& i = emit(Op::kMove);
  i.a = dst;
  i.b = src;
}

void FnBuilder::bin(int dst, BinOp op, int lhs, int rhs) {
  auto& i = emit(Op::kBin);
  i.a = dst;
  i.b = lhs;
  i.c = rhs;
  i.bin = op;
}

void FnBuilder::new_obj(int dst, runtime::ClassInfo* cls) {
  auto& i = emit(Op::kNew);
  i.a = dst;
  i.cls = cls;
}

void FnBuilder::new_arr(int dst, runtime::ElemKind kind, int lenLocal) {
  auto& i = emit(Op::kNewArr);
  i.a = dst;
  i.b = lenLocal;
  i.kind = kind;
}

void FnBuilder::getf(int dst, int base, int field, runtime::ClassInfo* cls) {
  auto& i = emit(Op::kGetF);
  i.a = dst;
  i.b = base;
  i.c = field;
  i.cls = cls;
}

void FnBuilder::setf(int base, int field, int src, runtime::ClassInfo* cls) {
  auto& i = emit(Op::kSetF);
  i.a = base;
  i.b = field;
  i.c = src;
  i.cls = cls;
}

void FnBuilder::gete(int dst, int base, int idx, runtime::ClassInfo* cls) {
  auto& i = emit(Op::kGetE);
  i.a = dst;
  i.b = base;
  i.c = idx;
  i.cls = cls;
}

void FnBuilder::sete(int base, int idx, int src, runtime::ClassInfo* cls) {
  auto& i = emit(Op::kSetE);
  i.a = base;
  i.b = idx;
  i.c = src;
  i.cls = cls;
}

void FnBuilder::len(int dst, int base) {
  auto& i = emit(Op::kLen);
  i.a = dst;
  i.b = base;
}

void FnBuilder::call(int dst, const std::string& callee, std::vector<int> args,
                     bool allowSplit) {
  auto& i = emit(Op::kCall);
  i.a = dst;
  i.calleeName = callee;
  i.args = std::move(args);
  i.allowSplit = allowSplit;
}

void FnBuilder::split() { emit(Op::kSplit); }

void FnBuilder::print(int src) {
  auto& i = emit(Op::kPrint);
  i.a = src;
}

void FnBuilder::ret(int src) {
  auto& i = emit(Op::kRet);
  i.a = src;
}

void FnBuilder::br(int target) {
  auto& b = fn_->blocks[static_cast<size_t>(cur_)];
  b.condLocal = -1;
  b.next = target;
}

void FnBuilder::cbr(int condLocal, int ifTrue, int ifFalse) {
  auto& b = fn_->blocks[static_cast<size_t>(cur_)];
  b.condLocal = condLocal;
  b.next = ifTrue;
  b.nextAlt = ifFalse;
}

std::string to_string(const Instr& i) {
  std::ostringstream os;
  switch (i.op) {
    case Op::kConst: os << "l" << i.a << " = " << i.imm; break;
    case Op::kMove: os << "l" << i.a << " = l" << i.b; break;
    case Op::kBin: os << "l" << i.a << " = l" << i.b << " bin" << static_cast<int>(i.bin)
                      << " l" << i.c; break;
    case Op::kRet: os << "ret l" << i.a; break;
    case Op::kNew: os << "l" << i.a << " = new " << (i.cls ? i.cls->name : "?"); break;
    case Op::kNewArr: os << "l" << i.a << " = newarr[l" << i.b << "]"; break;
    case Op::kLock: os << "lock l" << i.a << (i.c >= 0 ? ".e[l" : ".f") << i.b
                       << (i.c >= 0 ? "]" : "")
                       << (i.mode == LockMode::kWrite ? " W" : " R"); break;
    case Op::kGetF: os << "l" << i.a << " = l" << i.b << ".f" << i.c; break;
    case Op::kSetF: os << "l" << i.a << ".f" << i.b << " = l" << i.c; break;
    case Op::kGetFNl: os << "l" << i.a << " = l" << i.b << ".f" << i.c << " [nl]"; break;
    case Op::kSetFNl: os << "l" << i.a << ".f" << i.b << " = l" << i.c << " [nl]"; break;
    case Op::kGetE: os << "l" << i.a << " = l" << i.b << "[l" << i.c << "]"; break;
    case Op::kSetE: os << "l" << i.a << "[l" << i.b << "] = l" << i.c; break;
    case Op::kGetENl: os << "l" << i.a << " = l" << i.b << "[l" << i.c << "] [nl]"; break;
    case Op::kSetENl: os << "l" << i.a << "[l" << i.b << "] = l" << i.c << " [nl]"; break;
    case Op::kLen: os << "l" << i.a << " = len l" << i.b; break;
    case Op::kCall: os << "l" << i.a << " = call " << i.calleeName
                       << (i.allowSplit ? " [allowSplit]" : ""); break;
    case Op::kSplit: os << "split"; break;
    case Op::kPrint: os << "print l" << i.a; break;
  }
  return os.str();
}

std::string to_string(const Function& f) {
  std::ostringstream os;
  os << "fn " << f.name << (f.canSplit ? " canSplit" : "") << " params=" << f.numParams
     << " locals=" << f.numLocals << "\n";
  for (size_t b = 0; b < f.blocks.size(); b++) {
    os << " b" << b << ":\n";
    for (const auto& i : f.blocks[b].instrs) os << "   " << to_string(i) << "\n";
    const auto& blk = f.blocks[b];
    if (blk.condLocal >= 0)
      os << "   if l" << blk.condLocal << " -> b" << blk.next << " else b" << blk.nextAlt
         << "\n";
    else if (blk.next >= 0)
      os << "   -> b" << blk.next << "\n";
  }
  return os.str();
}

int count_ops(const Function& f, Op op) {
  int n = 0;
  for (const auto& b : f.blocks)
    for (const auto& i : b.instrs)
      if (i.op == op) n++;
  return n;
}

int defined_local(const Instr& i) {
  switch (i.op) {
    case Op::kConst:
    case Op::kMove:
    case Op::kBin:
    case Op::kNew:
    case Op::kNewArr:
    case Op::kGetF:
    case Op::kGetFNl:
    case Op::kGetE:
    case Op::kGetENl:
    case Op::kLen:
      return i.a;
    case Op::kCall:
      return i.a;  // may be -1 (void)
    default:
      return -1;
  }
}

std::vector<std::vector<int>> predecessors(const Function& f) {
  std::vector<std::vector<int>> preds(f.blocks.size());
  for (size_t b = 0; b < f.blocks.size(); b++) {
    const Block& blk = f.blocks[b];
    if (blk.next >= 0) preds[static_cast<size_t>(blk.next)].push_back(static_cast<int>(b));
    if (blk.condLocal >= 0 && blk.nextAlt >= 0)
      preds[static_cast<size_t>(blk.nextAlt)].push_back(static_cast<int>(b));
  }
  return preds;
}

}  // namespace sbd::il
