#include "il/opt.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"

namespace sbd::il {

// ---------------------------------------------------------------------------
// O1: redundant-lock elimination
// ---------------------------------------------------------------------------
// The must-locked dataflow itself (LockState/transfer/solve_must_locked)
// lives in summary.cpp, shared with the verifier and the summary
// builder; this pass only adds the rewrite.

OptStats eliminate_redundant_locks(Function& f, const Module& m,
                                   const Summaries* sums) {
  OptStats stats;
  const auto in = solve_must_locked(f, m, sums);

  // Rewrite: drop covered locks. Instructions after a kRet in the same
  // block are unreachable — copied verbatim, never eliminated (the
  // dataflow does not flow past the return either).
  for (size_t b = 0; b < f.blocks.size(); b++) {
    if (in[b].top) continue;  // unreachable
    LockState st = in[b];
    std::vector<Instr> kept;
    kept.reserve(f.blocks[b].instrs.size());
    bool returned = false;
    for (const Instr& i : f.blocks[b].instrs) {
      if (returned) {
        kept.push_back(i);
        continue;
      }
      if (i.op == Op::kRet) returned = true;
      // Attribution must be read before transfer() consumes the state.
      bool viaCall = false;
      if (i.op == Op::kLock) {
        const bool isElem = i.c >= 0;
        viaCall = st.covered_by_call(i.a, isElem ? i.c : i.b, isElem, i.cls,
                                     mapped_lock_index(i));
      }
      bool kill = false;
      transfer(st, i, m, sums, &kill);
      if (kill && i.op == Op::kLock) {
        stats.locksEliminated++;
        if (viaCall) stats.crossCallEliminated++;
        continue;
      }
      kept.push_back(i);
    }
    f.blocks[b].instrs = std::move(kept);
  }
  return stats;
}

OptStats eliminate_redundant_locks(Module& m, const Summaries* sums) {
  OptStats total;
  for (auto& [name, f] : m.functions) {
    OptStats s = eliminate_redundant_locks(*f, m, sums);
    total.locksEliminated += s.locksEliminated;
    total.crossCallEliminated += s.crossCallEliminated;
  }
  return total;
}

// ---------------------------------------------------------------------------
// O2: loop hoisting
// ---------------------------------------------------------------------------

namespace {

// Iterative dominator sets (CFGs here are tiny).
std::vector<std::set<int>> dominators(const Function& f) {
  const int n = static_cast<int>(f.blocks.size());
  auto preds = predecessors(f);
  std::set<int> all;
  for (int i = 0; i < n; i++) all.insert(i);
  std::vector<std::set<int>> dom(static_cast<size_t>(n), all);
  dom[0] = {0};
  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = 1; b < n; b++) {
      std::set<int> d = all;
      if (preds[static_cast<size_t>(b)].empty()) d = {b};
      for (int p : preds[static_cast<size_t>(b)]) {
        std::set<int> tmp;
        std::set_intersection(d.begin(), d.end(), dom[static_cast<size_t>(p)].begin(),
                              dom[static_cast<size_t>(p)].end(),
                              std::inserter(tmp, tmp.begin()));
        d = std::move(tmp);
      }
      d.insert(b);
      if (d != dom[static_cast<size_t>(b)]) {
        dom[static_cast<size_t>(b)] = std::move(d);
        changed = true;
      }
    }
  }
  return dom;
}

// Natural loop of back edge tail->head.
std::set<int> natural_loop(const Function& f, int tail, int head) {
  auto preds = predecessors(f);
  std::set<int> loop = {head, tail};
  std::vector<int> work = {tail};
  while (!work.empty()) {
    const int b = work.back();
    work.pop_back();
    if (b == head) continue;
    for (int p : preds[static_cast<size_t>(b)]) {
      if (loop.insert(p).second) work.push_back(p);
    }
  }
  return loop;
}

bool loop_assigns_local(const Function& f, const std::set<int>& loop, int local) {
  for (int b : loop)
    for (const Instr& i : f.blocks[static_cast<size_t>(b)].instrs)
      if (defined_local(i) == local) return true;
  return false;
}

// Whether calling `f` can acquire locks (directly or transitively):
// checked accesses, explicit Lock ops, splits, or calls to unknown
// functions all count. Memoized; recursion is treated conservatively.
bool fn_may_lock(const Function* f, const Module& m,
                 std::map<const Function*, int>& memo) {
  auto it = memo.find(f);
  if (it != memo.end()) return it->second != 0;
  memo[f] = 1;  // assume the worst while resolving cycles
  bool may = false;
  for (const Block& b : f->blocks) {
    for (const Instr& i : b.instrs) {
      switch (i.op) {
        case Op::kLock:
        case Op::kGetF:
        case Op::kSetF:
        case Op::kGetE:
        case Op::kSetE:
        case Op::kSplit:
          may = true;
          break;
        case Op::kCall: {
          const Function* callee = m.get(i.calleeName);
          if (!callee || fn_may_lock(callee, m, memo)) may = true;
          break;
        }
        default:
          break;
      }
      if (may) break;
    }
    if (may) break;
  }
  memo[f] = may ? 1 : 0;
  return may;
}

bool loop_may_split(const Function& f, const std::set<int>& loop, const Module& m) {
  for (int b : loop)
    for (const Instr& i : f.blocks[static_cast<size_t>(b)].instrs) {
      if (i.op == Op::kSplit) return true;
      if (i.op == Op::kCall && call_may_split(i, m)) return true;
    }
  return false;
}

}  // namespace

OptStats hoist_loop_locks(Function& f, const Module& m) {
  OptStats stats;
  auto dom = dominators(f);
  const int n = static_cast<int>(f.blocks.size());
  auto preds = predecessors(f);

  for (int tail = 0; tail < n; tail++) {
    const Block& tb = f.blocks[static_cast<size_t>(tail)];
    std::vector<int> succs;
    if (tb.next >= 0) succs.push_back(tb.next);
    if (tb.condLocal >= 0 && tb.nextAlt >= 0) succs.push_back(tb.nextAlt);
    for (int head : succs) {
      if (!dom[static_cast<size_t>(tail)].count(head)) continue;  // not a back edge
      auto loop = natural_loop(f, tail, head);
      if (loop_may_split(f, loop, m)) continue;

      // Preheader: the unique out-of-loop predecessor of the header with
      // an unconditional fallthrough into it.
      int pre = -1;
      bool clean = true;
      for (int p : preds[static_cast<size_t>(head)]) {
        if (loop.count(p)) continue;
        if (pre >= 0) clean = false;
        pre = p;
      }
      if (!clean || pre < 0) continue;
      const Block& pb = f.blocks[static_cast<size_t>(pre)];
      if (pb.condLocal >= 0 || pb.next != head) continue;

      // Hoist invariant kLock instructions from the header, preserving
      // their first-iteration order in the preheader. Scanning stops at
      // the first instruction that could itself acquire a lock (checked
      // access, call) or at a non-invariant lock — past those, moving a
      // lock would reorder acquisitions (§3.3 "if the locking order can
      // be preserved").
      Block& hb = f.blocks[static_cast<size_t>(head)];
      std::vector<size_t> hoistIdx;
      std::map<const Function*, int> lockMemo;
      for (size_t k = 0; k < hb.instrs.size(); k++) {
        const Instr& i = hb.instrs[k];
        if (i.op == Op::kLock) {
          if (loop_assigns_local(f, loop, i.a)) break;
          if (i.c >= 0 && loop_assigns_local(f, loop, i.c)) break;
          hoistIdx.push_back(k);
          continue;
        }
        if (i.op == Op::kGetF || i.op == Op::kSetF || i.op == Op::kGetE ||
            i.op == Op::kSetE || i.op == Op::kSplit)
          break;  // may acquire locks itself: stop to keep the order
        if (i.op == Op::kCall) {
          const Function* callee = m.get(i.calleeName);
          if (!callee || fn_may_lock(callee, m, lockMemo))
            break;  // unknown or locking callee: stop
          continue;  // provably lock-free call: locking order unaffected
        }
      }
      if (hoistIdx.empty()) continue;
      Block& pbm = f.blocks[static_cast<size_t>(pre)];
      for (size_t k : hoistIdx) pbm.instrs.push_back(hb.instrs[k]);
      for (auto it = hoistIdx.rbegin(); it != hoistIdx.rend(); ++it)
        hb.instrs.erase(hb.instrs.begin() + static_cast<long>(*it));
      stats.locksHoisted += static_cast<int>(hoistIdx.size());
    }
  }
  return stats;
}

OptStats hoist_loop_locks(Module& m) {
  OptStats total;
  for (auto& [name, f] : m.functions) {
    OptStats s = hoist_loop_locks(*f, m);
    total.locksHoisted += s.locksHoisted;
  }
  return total;
}

// ---------------------------------------------------------------------------
// O3: inlining
// ---------------------------------------------------------------------------

namespace {

int instr_count(const Function& f) {
  int n = 0;
  for (const auto& b : f.blocks) n += static_cast<int>(b.instrs.size());
  return n;
}

// Splices `callee` into `f` at (blockIdx, instrIdx). Returns true on
// success. The call instruction is replaced by argument moves, the
// callee body (blocks appended with remapped locals), and a join block
// holding the instructions after the call.
bool inline_call_at(Function& f, size_t blockIdx, size_t instrIdx,
                    const Function& callee) {
  const Instr call = f.blocks[blockIdx].instrs[instrIdx];
  const int localBase = f.numLocals;
  f.numLocals += callee.numLocals;
  const int blockBase = static_cast<int>(f.blocks.size());

  // Join block: tail of the caller block + original terminator.
  Block join;
  join.instrs.assign(f.blocks[blockIdx].instrs.begin() + static_cast<long>(instrIdx) + 1,
                     f.blocks[blockIdx].instrs.end());
  join.condLocal = f.blocks[blockIdx].condLocal;
  join.next = f.blocks[blockIdx].next;
  join.nextAlt = f.blocks[blockIdx].nextAlt;

  // Caller block: head + argument moves, then jump into the callee.
  Block& cb = f.blocks[blockIdx];
  cb.instrs.erase(cb.instrs.begin() + static_cast<long>(instrIdx), cb.instrs.end());
  for (size_t a = 0; a < call.args.size(); a++) {
    Instr mv;
    mv.op = Op::kMove;
    mv.a = localBase + static_cast<int>(a);
    mv.b = call.args[a];
    cb.instrs.push_back(mv);
  }
  cb.condLocal = -1;
  cb.next = blockBase;

  const int joinIdx = blockBase + static_cast<int>(callee.blocks.size());

  // Copy callee blocks, remapping locals and block targets; kRet turns
  // into a move to the call's destination plus a jump to the join.
  // Operand roles per opcode: `a`, `b`, `c` are locals except where a
  // field index is encoded (kLock field form: b; kGetF*: c; kSetF*: b).
  auto remap_instr = [&](Instr& ni) {
    auto rm = [&](int l) { return l < 0 ? l : l + localBase; };
    switch (ni.op) {
      case Op::kConst:
      case Op::kPrint:
        ni.a = rm(ni.a);
        break;
      case Op::kMove:
      case Op::kLen:
      case Op::kNewArr:
        ni.a = rm(ni.a);
        ni.b = rm(ni.b);
        break;
      case Op::kBin:
      case Op::kGetE:
      case Op::kSetE:
      case Op::kGetENl:
      case Op::kSetENl:
        ni.a = rm(ni.a);
        ni.b = rm(ni.b);
        ni.c = rm(ni.c);
        break;
      case Op::kNew:
        ni.a = rm(ni.a);
        break;
      case Op::kLock:
        ni.a = rm(ni.a);
        if (ni.c >= 0) ni.c = rm(ni.c);  // element form: c is an index local
        break;                           // field form: b is a field index
      case Op::kGetF:
      case Op::kGetFNl:
        ni.a = rm(ni.a);
        ni.b = rm(ni.b);  // c is a field index
        break;
      case Op::kSetF:
      case Op::kSetFNl:
        ni.a = rm(ni.a);  // b is a field index
        ni.c = rm(ni.c);
        break;
      case Op::kCall:
        ni.a = rm(ni.a);
        for (int& arg : ni.args) arg = rm(arg);
        break;
      case Op::kSplit:
      case Op::kRet:
        break;
    }
  };

  for (const Block& src : callee.blocks) {
    Block nb;
    bool terminated = false;
    for (const Instr& si : src.instrs) {
      if (si.op == Op::kRet) {
        if (call.a >= 0 && si.a >= 0) {
          Instr mv;
          mv.op = Op::kMove;
          mv.a = call.a;
          mv.b = si.a + localBase;
          nb.instrs.push_back(mv);
        }
        nb.condLocal = -1;
        nb.next = joinIdx;
        terminated = true;
        break;
      }
      Instr ni = si;
      remap_instr(ni);
      nb.instrs.push_back(ni);
    }
    if (!terminated) {
      nb.condLocal = src.condLocal < 0 ? -1 : src.condLocal + localBase;
      nb.next = src.next < 0 ? joinIdx : src.next + blockBase;
      nb.nextAlt = src.nextAlt < 0 ? -1 : src.nextAlt + blockBase;
    }
    f.blocks.push_back(std::move(nb));
  }
  f.blocks.push_back(std::move(join));
  return true;
}

}  // namespace

OptStats inline_small(Module& m, int maxCalleeInstrs) {
  OptStats stats;
  for (auto& [name, fp] : m.functions) {
    Function& f = *fp;
    bool again = true;
    int guard = 0;
    while (again && guard++ < 8) {
      again = false;
      for (size_t b = 0; b < f.blocks.size() && !again; b++) {
        for (size_t k = 0; k < f.blocks[b].instrs.size() && !again; k++) {
          const Instr& i = f.blocks[b].instrs[k];
          if (i.op != Op::kCall) continue;
          const Function* callee = m.get(i.calleeName);
          if (!callee || callee->canSplit || callee == &f) continue;
          if (instr_count(*callee) > maxCalleeInstrs) continue;
          if (inline_call_at(f, b, k, *callee)) {
            stats.callsInlined++;
            again = true;  // block structure changed; restart scan
          }
        }
      }
    }
  }
  return stats;
}

// ---------------------------------------------------------------------------
// The pipeline
// ---------------------------------------------------------------------------

OptStats optimize(Module& m, bool interproc, bool inlineSmall) {
  OptStats total = inlineSmall ? inline_small(m) : OptStats{};
  // O1 and O2 feed each other (a hoisted lock dominates the loop body;
  // an eliminated lock shrinks a callee and sharpens its summary), so
  // iterate the pair to a fixed point instead of the old hard-coded
  // O1,O2,O1 sequence. Termination: each round either removes a kLock
  // (finite supply) or moves one strictly outward (bounded nesting);
  // a round that does neither is the last.
  bool changed = true;
  while (changed) {
    total.rounds++;
    Summaries sums;
    const Summaries* sp = nullptr;
    if (interproc) {
      sums = compute_summaries(m);
      sp = &sums;
    }
    const OptStats e = eliminate_redundant_locks(m, sp);
    const OptStats h = hoist_loop_locks(m);
    total.locksEliminated += e.locksEliminated;
    total.crossCallEliminated += e.crossCallEliminated;
    total.locksHoisted += h.locksHoisted;
    changed = e.locksEliminated > 0 || h.locksHoisted > 0;
  }
  return total;
}

}  // namespace sbd::il
