#include "il/opt.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "runtime/lockplan.h"

namespace sbd::il {

namespace {

// ---------------------------------------------------------------------------
// Must-locked dataflow state
// ---------------------------------------------------------------------------

// A fact encodes: base local | location (field index or element-index
// local) | field-vs-element | mode.
uint64_t fact_key(int base, int fieldOrIdx, bool isElem, LockMode mode) {
  return (static_cast<uint64_t>(base) << 32) |
         (static_cast<uint64_t>(static_cast<uint32_t>(fieldOrIdx)) << 2) |
         (isElem ? 2u : 0u) | (mode == LockMode::kWrite ? 1u : 0u);
}

// Facts keyed through a class's LockMap: "this transaction holds the
// lock WORD that cls's map assigns to mapped index `lockIdx` of the
// object in local `base`". These let locks on *different* slots that
// share a word dedupe statically — but only READ locks may be
// eliminated this way: eliminating a write lock would also skip its
// undo logging (the no-lock store never reaches the runtime's
// coarse-map owned-path re-log), and there is no covering undo entry
// for a slot that was never written before.
struct MappedFact {
  int base;
  uint32_t lockIdx;
  bool write;
  const runtime::ClassInfo* cls;
  bool operator<(const MappedFact& o) const {
    if (base != o.base) return base < o.base;
    if (lockIdx != o.lockIdx) return lockIdx < o.lockIdx;
    if (write != o.write) return write < o.write;
    return cls < o.cls;
  }
  bool operator==(const MappedFact& o) const {
    return base == o.base && lockIdx == o.lockIdx && write == o.write && cls == o.cls;
  }
};

// A class's LockMap may be consulted at optimization time only if it
// cannot change afterwards: any fixed SBD_LOCK_GRANULARITY mode, or a
// pinned class under adaptive (pins are permanent). A later
// set_lock_granularity() call invalidates modules optimized before it
// — the documented JIT-style contract (SEMANTICS.md).
bool map_is_static(const runtime::ClassInfo* cls) {
  using runtime::lockplan::Mode;
  return runtime::lockplan::mode() != Mode::kAdaptive ||
         cls->lockMapPinned.load(std::memory_order_relaxed);
}

// Versioned maps need no special casing in this pass. Invisible reads
// exist only on the value paths (kGetF/kGetE -> tx_read*), which O1
// never rewrites; a kLock on a versioned class acquires the covered
// word EXCLUSIVELY (runtime/field_access.h pins the IL path to
// versioned_acquire_write), so a held fact still means "this word
// cannot change until the section ends" — exactly the invariant
// redundant-lock elimination relies on. If kLock were ever lowered to
// an invisible read-set append instead, eliminating a covered re-lock
// would skip that read's stale check and admit zombie executions; any
// such change must add a versioned gate here.

struct State {
  bool top = true;  // "unvisited": identity of the intersection meet
  std::set<uint64_t> facts;
  std::set<MappedFact> mapped;
  std::set<int> newLocals;  // locals known to hold this-transaction-new objects

  bool meet(const State& other) {  // returns true if changed
    if (other.top) return false;
    if (top) {
      top = false;
      facts = other.facts;
      mapped = other.mapped;
      newLocals = other.newLocals;
      return true;
    }
    bool changed = false;
    for (auto it = facts.begin(); it != facts.end();) {
      if (!other.facts.count(*it)) {
        it = facts.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
    for (auto it = mapped.begin(); it != mapped.end();) {
      if (!other.mapped.count(*it)) {
        it = mapped.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
    for (auto it = newLocals.begin(); it != newLocals.end();) {
      if (!other.newLocals.count(*it)) {
        it = newLocals.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
    return changed;
  }

  void kill_local(int l) {
    newLocals.erase(l);
    for (auto it = facts.begin(); it != facts.end();) {
      const int base = static_cast<int>(*it >> 32);
      const bool isElem = (*it & 2u) != 0;
      const int loc = static_cast<int>((*it >> 2) & 0x3FFFFFFF);
      if (base == l || (isElem && loc == l))
        it = facts.erase(it);
      else
        ++it;
    }
    // Mapped facts never reference an index local (element form exists
    // only for object maps, where the index is irrelevant), so only
    // the base can die.
    for (auto it = mapped.begin(); it != mapped.end();) {
      if (it->base == l)
        it = mapped.erase(it);
      else
        ++it;
    }
  }

  void clear_all() {
    facts.clear();
    mapped.clear();
    newLocals.clear();
  }

  bool covers(int base, int fieldOrIdx, bool isElem, LockMode mode) const {
    if (newLocals.count(base)) return true;  // new instances need no lock
    if (facts.count(fact_key(base, fieldOrIdx, isElem, LockMode::kWrite))) return true;
    if (mode == LockMode::kRead &&
        facts.count(fact_key(base, fieldOrIdx, isElem, LockMode::kRead)))
      return true;
    return false;
  }

  // Read coverage through the LockMap: a held word — read- or
  // write-locked — covers any read it protects.
  bool covers_mapped(int base, uint32_t lockIdx, const runtime::ClassInfo* cls) const {
    return mapped.count(MappedFact{base, lockIdx, true, cls}) ||
           mapped.count(MappedFact{base, lockIdx, false, cls});
  }
};

// The local an instruction assigns, or -1.
int defined_local(const Instr& i) {
  switch (i.op) {
    case Op::kConst:
    case Op::kMove:
    case Op::kBin:
    case Op::kNew:
    case Op::kNewArr:
    case Op::kGetF:
    case Op::kGetFNl:
    case Op::kGetE:
    case Op::kGetENl:
    case Op::kLen:
      return i.a;
    case Op::kCall:
      return i.a;  // may be -1 (void)
    default:
      return -1;
  }
}

bool call_may_split(const Instr& i, const Module& m) {
  const Function* callee = m.get(i.calleeName);
  return callee == nullptr || callee->canSplit;
}

// Applies one instruction's transfer function. `eliminate` is set for
// kLock instructions whose location is already covered.
void transfer(State& st, const Instr& i, const Module& m, bool* eliminate) {
  if (eliminate) *eliminate = false;
  switch (i.op) {
    case Op::kLock: {
      const bool isElem = i.c >= 0;
      const int loc = isElem ? i.c : i.b;
      // Mapped lock index, when the static class annotation and its
      // immutable LockMap determine it: any map kind for field locks
      // (constant field index), object maps for element locks (every
      // index hits word 0 regardless of the index local's value).
      int mappedIdx = -1;
      if (i.cls != nullptr && map_is_static(i.cls)) {
        const runtime::LockMap map = i.cls->lock_map();
        if (!isElem)
          mappedIdx = static_cast<int>(map.index(static_cast<uint32_t>(loc)));
        else if (map.kind == runtime::LockMap::kObject)
          mappedIdx = 0;
      }
      bool covered = st.covers(i.a, loc, isElem, i.mode);
      if (!covered && mappedIdx >= 0 && i.mode == LockMode::kRead)
        covered = st.covers_mapped(i.a, static_cast<uint32_t>(mappedIdx), i.cls);
      if (covered) {
        if (eliminate) *eliminate = true;
        return;  // no new fact; the covering fact remains
      }
      st.facts.insert(fact_key(i.a, loc, isElem, i.mode));
      if (mappedIdx >= 0)
        st.mapped.insert(MappedFact{i.a, static_cast<uint32_t>(mappedIdx),
                                    i.mode == LockMode::kWrite, i.cls});
      return;
    }
    case Op::kSplit:
      st.clear_all();
      return;
    case Op::kCall: {
      if (call_may_split(i, m)) st.clear_all();
      const int d = defined_local(i);
      if (d >= 0) st.kill_local(d);
      return;
    }
    case Op::kNew:
    case Op::kNewArr: {
      st.kill_local(i.a);
      st.newLocals.insert(i.a);
      return;
    }
    case Op::kMove: {
      // Copy propagation: after a = b both locals alias the same object,
      // so facts on b transfer to a. This is what lets the analysis see
      // through the argument moves the inliner introduces.
      const bool srcNew = st.newLocals.count(i.b) > 0;
      std::vector<uint64_t> copied;
      for (uint64_t k : st.facts) {
        if (static_cast<int>(k >> 32) == i.b)
          copied.push_back((k & 0xFFFFFFFFull) | (static_cast<uint64_t>(i.a) << 32));
      }
      std::vector<MappedFact> copiedMapped;
      for (const MappedFact& mf : st.mapped) {
        if (mf.base == i.b) {
          MappedFact c = mf;
          c.base = i.a;
          copiedMapped.push_back(c);
        }
      }
      st.kill_local(i.a);
      if (i.a != i.b) {
        for (uint64_t k : copied) st.facts.insert(k);
        for (const MappedFact& mf : copiedMapped) st.mapped.insert(mf);
        if (srcNew) st.newLocals.insert(i.a);
      }
      return;
    }
    default: {
      const int d = defined_local(i);
      if (d >= 0) st.kill_local(d);
      return;
    }
  }
}

std::vector<std::vector<int>> predecessors(const Function& f) {
  std::vector<std::vector<int>> preds(f.blocks.size());
  for (size_t b = 0; b < f.blocks.size(); b++) {
    const Block& blk = f.blocks[b];
    if (blk.next >= 0) preds[static_cast<size_t>(blk.next)].push_back(static_cast<int>(b));
    if (blk.condLocal >= 0 && blk.nextAlt >= 0)
      preds[static_cast<size_t>(blk.nextAlt)].push_back(static_cast<int>(b));
  }
  return preds;
}

}  // namespace

// ---------------------------------------------------------------------------
// O1: redundant-lock elimination
// ---------------------------------------------------------------------------

OptStats eliminate_redundant_locks(Function& f, const Module& m) {
  OptStats stats;
  const size_t n = f.blocks.size();
  auto preds = predecessors(f);
  std::vector<State> in(n), out(n);
  in[0].top = false;  // entry starts with no facts

  // Fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b = 0; b < n; b++) {
      State cur = in[b];
      for (size_t p = 0; p < preds[b].size(); p++)
        cur.meet(out[static_cast<size_t>(preds[b][p])]);
      if (b == 0) cur.top = false;
      // Recompute out.
      State o = cur;
      if (!o.top)
        for (const Instr& i : f.blocks[b].instrs) transfer(o, i, m, nullptr);
      // Detect change.
      if (o.top != out[b].top || o.facts != out[b].facts ||
          o.mapped != out[b].mapped || o.newLocals != out[b].newLocals) {
        out[b] = std::move(o);
        changed = true;
      }
      in[b] = std::move(cur);
    }
  }

  // Rewrite: drop covered locks.
  for (size_t b = 0; b < n; b++) {
    if (in[b].top) continue;  // unreachable
    State st = in[b];
    std::vector<Instr> kept;
    kept.reserve(f.blocks[b].instrs.size());
    for (const Instr& i : f.blocks[b].instrs) {
      bool kill = false;
      transfer(st, i, m, &kill);
      if (kill && i.op == Op::kLock) {
        stats.locksEliminated++;
        continue;
      }
      kept.push_back(i);
    }
    f.blocks[b].instrs = std::move(kept);
  }
  return stats;
}

OptStats eliminate_redundant_locks(Module& m) {
  OptStats total;
  for (auto& [name, f] : m.functions) {
    OptStats s = eliminate_redundant_locks(*f, m);
    total.locksEliminated += s.locksEliminated;
  }
  return total;
}

// ---------------------------------------------------------------------------
// O2: loop hoisting
// ---------------------------------------------------------------------------

namespace {

// Iterative dominator sets (CFGs here are tiny).
std::vector<std::set<int>> dominators(const Function& f) {
  const int n = static_cast<int>(f.blocks.size());
  auto preds = predecessors(f);
  std::set<int> all;
  for (int i = 0; i < n; i++) all.insert(i);
  std::vector<std::set<int>> dom(static_cast<size_t>(n), all);
  dom[0] = {0};
  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = 1; b < n; b++) {
      std::set<int> d = all;
      if (preds[static_cast<size_t>(b)].empty()) d = {b};
      for (int p : preds[static_cast<size_t>(b)]) {
        std::set<int> tmp;
        std::set_intersection(d.begin(), d.end(), dom[static_cast<size_t>(p)].begin(),
                              dom[static_cast<size_t>(p)].end(),
                              std::inserter(tmp, tmp.begin()));
        d = std::move(tmp);
      }
      d.insert(b);
      if (d != dom[static_cast<size_t>(b)]) {
        dom[static_cast<size_t>(b)] = std::move(d);
        changed = true;
      }
    }
  }
  return dom;
}

// Natural loop of back edge tail->head.
std::set<int> natural_loop(const Function& f, int tail, int head) {
  auto preds = predecessors(f);
  std::set<int> loop = {head, tail};
  std::vector<int> work = {tail};
  while (!work.empty()) {
    const int b = work.back();
    work.pop_back();
    if (b == head) continue;
    for (int p : preds[static_cast<size_t>(b)]) {
      if (loop.insert(p).second) work.push_back(p);
    }
  }
  return loop;
}

bool loop_assigns_local(const Function& f, const std::set<int>& loop, int local) {
  for (int b : loop)
    for (const Instr& i : f.blocks[static_cast<size_t>(b)].instrs)
      if (defined_local(i) == local) return true;
  return false;
}

// Whether calling `f` can acquire locks (directly or transitively):
// checked accesses, explicit Lock ops, splits, or calls to unknown
// functions all count. Memoized; recursion is treated conservatively.
bool fn_may_lock(const Function* f, const Module& m,
                 std::map<const Function*, int>& memo) {
  auto it = memo.find(f);
  if (it != memo.end()) return it->second != 0;
  memo[f] = 1;  // assume the worst while resolving cycles
  bool may = false;
  for (const Block& b : f->blocks) {
    for (const Instr& i : b.instrs) {
      switch (i.op) {
        case Op::kLock:
        case Op::kGetF:
        case Op::kSetF:
        case Op::kGetE:
        case Op::kSetE:
        case Op::kSplit:
          may = true;
          break;
        case Op::kCall: {
          const Function* callee = m.get(i.calleeName);
          if (!callee || fn_may_lock(callee, m, memo)) may = true;
          break;
        }
        default:
          break;
      }
      if (may) break;
    }
    if (may) break;
  }
  memo[f] = may ? 1 : 0;
  return may;
}

bool loop_may_split(const Function& f, const std::set<int>& loop, const Module& m) {
  for (int b : loop)
    for (const Instr& i : f.blocks[static_cast<size_t>(b)].instrs) {
      if (i.op == Op::kSplit) return true;
      if (i.op == Op::kCall && call_may_split(i, m)) return true;
    }
  return false;
}

}  // namespace

OptStats hoist_loop_locks(Function& f, const Module& m) {
  OptStats stats;
  auto dom = dominators(f);
  const int n = static_cast<int>(f.blocks.size());
  auto preds = predecessors(f);

  for (int tail = 0; tail < n; tail++) {
    const Block& tb = f.blocks[static_cast<size_t>(tail)];
    std::vector<int> succs;
    if (tb.next >= 0) succs.push_back(tb.next);
    if (tb.condLocal >= 0 && tb.nextAlt >= 0) succs.push_back(tb.nextAlt);
    for (int head : succs) {
      if (!dom[static_cast<size_t>(tail)].count(head)) continue;  // not a back edge
      auto loop = natural_loop(f, tail, head);
      if (loop_may_split(f, loop, m)) continue;

      // Preheader: the unique out-of-loop predecessor of the header with
      // an unconditional fallthrough into it.
      int pre = -1;
      bool clean = true;
      for (int p : preds[static_cast<size_t>(head)]) {
        if (loop.count(p)) continue;
        if (pre >= 0) clean = false;
        pre = p;
      }
      if (!clean || pre < 0) continue;
      const Block& pb = f.blocks[static_cast<size_t>(pre)];
      if (pb.condLocal >= 0 || pb.next != head) continue;

      // Hoist invariant kLock instructions from the header, preserving
      // their first-iteration order in the preheader. Scanning stops at
      // the first instruction that could itself acquire a lock (checked
      // access, call) or at a non-invariant lock — past those, moving a
      // lock would reorder acquisitions (§3.3 "if the locking order can
      // be preserved").
      Block& hb = f.blocks[static_cast<size_t>(head)];
      std::vector<size_t> hoistIdx;
      std::map<const Function*, int> lockMemo;
      for (size_t k = 0; k < hb.instrs.size(); k++) {
        const Instr& i = hb.instrs[k];
        if (i.op == Op::kLock) {
          if (loop_assigns_local(f, loop, i.a)) break;
          if (i.c >= 0 && loop_assigns_local(f, loop, i.c)) break;
          hoistIdx.push_back(k);
          continue;
        }
        if (i.op == Op::kGetF || i.op == Op::kSetF || i.op == Op::kGetE ||
            i.op == Op::kSetE || i.op == Op::kSplit)
          break;  // may acquire locks itself: stop to keep the order
        if (i.op == Op::kCall) {
          const Function* callee = m.get(i.calleeName);
          if (!callee || fn_may_lock(callee, m, lockMemo))
            break;  // unknown or locking callee: stop
          continue;  // provably lock-free call: locking order unaffected
        }
      }
      if (hoistIdx.empty()) continue;
      Block& pbm = f.blocks[static_cast<size_t>(pre)];
      for (size_t k : hoistIdx) pbm.instrs.push_back(hb.instrs[k]);
      for (auto it = hoistIdx.rbegin(); it != hoistIdx.rend(); ++it)
        hb.instrs.erase(hb.instrs.begin() + static_cast<long>(*it));
      stats.locksHoisted += static_cast<int>(hoistIdx.size());
    }
  }
  return stats;
}

OptStats hoist_loop_locks(Module& m) {
  OptStats total;
  for (auto& [name, f] : m.functions) {
    OptStats s = hoist_loop_locks(*f, m);
    total.locksHoisted += s.locksHoisted;
  }
  return total;
}

// ---------------------------------------------------------------------------
// O3: inlining
// ---------------------------------------------------------------------------

namespace {

int instr_count(const Function& f) {
  int n = 0;
  for (const auto& b : f.blocks) n += static_cast<int>(b.instrs.size());
  return n;
}

// Splices `callee` into `f` at (blockIdx, instrIdx). Returns true on
// success. The call instruction is replaced by argument moves, the
// callee body (blocks appended with remapped locals), and a join block
// holding the instructions after the call.
bool inline_call_at(Function& f, size_t blockIdx, size_t instrIdx,
                    const Function& callee) {
  const Instr call = f.blocks[blockIdx].instrs[instrIdx];
  const int localBase = f.numLocals;
  f.numLocals += callee.numLocals;
  const int blockBase = static_cast<int>(f.blocks.size());

  // Join block: tail of the caller block + original terminator.
  Block join;
  join.instrs.assign(f.blocks[blockIdx].instrs.begin() + static_cast<long>(instrIdx) + 1,
                     f.blocks[blockIdx].instrs.end());
  join.condLocal = f.blocks[blockIdx].condLocal;
  join.next = f.blocks[blockIdx].next;
  join.nextAlt = f.blocks[blockIdx].nextAlt;

  // Caller block: head + argument moves, then jump into the callee.
  Block& cb = f.blocks[blockIdx];
  cb.instrs.erase(cb.instrs.begin() + static_cast<long>(instrIdx), cb.instrs.end());
  for (size_t a = 0; a < call.args.size(); a++) {
    Instr mv;
    mv.op = Op::kMove;
    mv.a = localBase + static_cast<int>(a);
    mv.b = call.args[a];
    cb.instrs.push_back(mv);
  }
  cb.condLocal = -1;
  cb.next = blockBase;

  const int joinIdx = blockBase + static_cast<int>(callee.blocks.size());

  // Copy callee blocks, remapping locals and block targets; kRet turns
  // into a move to the call's destination plus a jump to the join.
  // Operand roles per opcode: `a`, `b`, `c` are locals except where a
  // field index is encoded (kLock field form: b; kGetF*: c; kSetF*: b).
  auto remap_instr = [&](Instr& ni) {
    auto rm = [&](int l) { return l < 0 ? l : l + localBase; };
    switch (ni.op) {
      case Op::kConst:
      case Op::kPrint:
        ni.a = rm(ni.a);
        break;
      case Op::kMove:
      case Op::kLen:
      case Op::kNewArr:
        ni.a = rm(ni.a);
        ni.b = rm(ni.b);
        break;
      case Op::kBin:
      case Op::kGetE:
      case Op::kSetE:
      case Op::kGetENl:
      case Op::kSetENl:
        ni.a = rm(ni.a);
        ni.b = rm(ni.b);
        ni.c = rm(ni.c);
        break;
      case Op::kNew:
        ni.a = rm(ni.a);
        break;
      case Op::kLock:
        ni.a = rm(ni.a);
        if (ni.c >= 0) ni.c = rm(ni.c);  // element form: c is an index local
        break;                           // field form: b is a field index
      case Op::kGetF:
      case Op::kGetFNl:
        ni.a = rm(ni.a);
        ni.b = rm(ni.b);  // c is a field index
        break;
      case Op::kSetF:
      case Op::kSetFNl:
        ni.a = rm(ni.a);  // b is a field index
        ni.c = rm(ni.c);
        break;
      case Op::kCall:
        ni.a = rm(ni.a);
        for (int& arg : ni.args) arg = rm(arg);
        break;
      case Op::kSplit:
      case Op::kRet:
        break;
    }
  };

  for (const Block& src : callee.blocks) {
    Block nb;
    bool terminated = false;
    for (const Instr& si : src.instrs) {
      if (si.op == Op::kRet) {
        if (call.a >= 0 && si.a >= 0) {
          Instr mv;
          mv.op = Op::kMove;
          mv.a = call.a;
          mv.b = si.a + localBase;
          nb.instrs.push_back(mv);
        }
        nb.condLocal = -1;
        nb.next = joinIdx;
        terminated = true;
        break;
      }
      Instr ni = si;
      remap_instr(ni);
      nb.instrs.push_back(ni);
    }
    if (!terminated) {
      nb.condLocal = src.condLocal < 0 ? -1 : src.condLocal + localBase;
      nb.next = src.next < 0 ? joinIdx : src.next + blockBase;
      nb.nextAlt = src.nextAlt < 0 ? -1 : src.nextAlt + blockBase;
    }
    f.blocks.push_back(std::move(nb));
  }
  f.blocks.push_back(std::move(join));
  return true;
}

}  // namespace

OptStats inline_small(Module& m, int maxCalleeInstrs) {
  OptStats stats;
  for (auto& [name, fp] : m.functions) {
    Function& f = *fp;
    bool again = true;
    int guard = 0;
    while (again && guard++ < 8) {
      again = false;
      for (size_t b = 0; b < f.blocks.size() && !again; b++) {
        for (size_t k = 0; k < f.blocks[b].instrs.size() && !again; k++) {
          const Instr& i = f.blocks[b].instrs[k];
          if (i.op != Op::kCall) continue;
          const Function* callee = m.get(i.calleeName);
          if (!callee || callee->canSplit || callee == &f) continue;
          if (instr_count(*callee) > maxCalleeInstrs) continue;
          if (inline_call_at(f, b, k, *callee)) {
            stats.callsInlined++;
            again = true;  // block structure changed; restart scan
          }
        }
      }
    }
  }
  return stats;
}

OptStats optimize(Module& m) {
  OptStats total = inline_small(m);
  OptStats e1 = eliminate_redundant_locks(m);
  OptStats h = hoist_loop_locks(m);
  OptStats e2 = eliminate_redundant_locks(m);
  total.locksEliminated = e1.locksEliminated + e2.locksEliminated;
  total.locksHoisted = h.locksHoisted;
  return total;
}

}  // namespace sbd::il
