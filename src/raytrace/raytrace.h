// Small ray tracer — the Sunflow benchmark analog: a CPU-bound, no-I/O
// workload whose threads read a shared scene and write a shared image
// buffer under a shared tile counter. In the paper this benchmark has
// the highest SBD overhead (~100%) because nearly every instruction is
// a managed memory access; the analog reproduces that access pattern.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sbd::raytrace {

struct Vec3 {
  double x = 0, y = 0, z = 0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  Vec3 mul(const Vec3& o) const { return {x * o.x, y * o.y, z * o.z}; }
  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const;
  Vec3 normalized() const;
};

struct Ray {
  Vec3 origin;
  Vec3 dir;  // normalized
};

struct Material {
  Vec3 color{1, 1, 1};
  double diffuse = 0.8;
  double specular = 0.2;
  double reflect = 0.0;
};

struct Sphere {
  Vec3 center;
  double radius = 1;
  Material mat;
};

struct Plane {
  Vec3 point;
  Vec3 normal;
  Material mat;
};

struct Light {
  Vec3 pos;
  Vec3 color{1, 1, 1};
};

struct Scene {
  std::vector<Sphere> spheres;
  std::vector<Plane> planes;
  std::vector<Light> lights;
  Vec3 background{0.05, 0.07, 0.1};
  Vec3 cameraPos{0, 1.5, -6};
  Vec3 cameraLookAt{0, 1, 0};
  double fov = 60.0;
};

// The deterministic demo scene used by the benchmark (seeded sphere
// grid + ground plane + two lights).
Scene demo_scene(uint64_t seed, int numSpheres = 24);

struct HitInfo {
  bool hit = false;
  double t = 0;
  Vec3 point;
  Vec3 normal;
  Material mat;
};

HitInfo intersect(const Scene& scene, const Ray& ray);

// Primitive intersection tests (exposed so alternative scene storages —
// e.g. the SBD benchmark's managed struct-of-arrays scene — can run the
// exact same math and produce bit-identical images).
bool hit_sphere(const Sphere& sp, const Ray& r, double& tOut);
bool hit_plane(const Plane& pl, const Ray& r, double& tOut);
// Applies the plane checkerboard used by intersect().
void apply_plane_pattern(HitInfo& hit);

// Full shading with shadows and up to `depth` reflection bounces.
Vec3 trace(const Scene& scene, const Ray& ray, int depth = 2);

// Generates the camera ray for pixel (px, py) of a width x height image.
Ray camera_ray(const Scene& scene, int px, int py, int width, int height);

// Packs a color into 0xRRGGBB with gamma 2.2.
uint32_t pack_color(const Vec3& c);

// Renders [yBegin, yEnd) rows into `out` (row-major, width*height).
// Threading is the caller's concern (tile queues in the benchmark).
void render_rows(const Scene& scene, int width, int height, int yBegin, int yEnd,
                 uint32_t* out);

// Deterministic checksum of an image (for cross-variant validation).
uint64_t image_checksum(const uint32_t* pixels, size_t n);

}  // namespace sbd::raytrace
