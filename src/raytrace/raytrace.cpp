#include "raytrace/raytrace.h"

#include <cmath>

#include "common/rng.h"

namespace sbd::raytrace {

double Vec3::norm() const { return std::sqrt(x * x + y * y + z * z); }

Vec3 Vec3::normalized() const {
  const double n = norm();
  return n > 0 ? Vec3{x / n, y / n, z / n} : Vec3{};
}

Scene demo_scene(uint64_t seed, int numSpheres) {
  Scene s;
  Rng rng(seed);
  for (int i = 0; i < numSpheres; i++) {
    Sphere sp;
    sp.center = {rng.unit() * 8 - 4, 0.3 + rng.unit() * 2.2, rng.unit() * 8 - 2};
    sp.radius = 0.25 + rng.unit() * 0.6;
    sp.mat.color = {0.3 + rng.unit() * 0.7, 0.3 + rng.unit() * 0.7, 0.3 + rng.unit() * 0.7};
    sp.mat.reflect = rng.chance(0.3) ? 0.4 : 0.0;
    sp.mat.diffuse = 0.6 + rng.unit() * 0.3;
    sp.mat.specular = 0.1 + rng.unit() * 0.4;
    s.spheres.push_back(sp);
  }
  Plane ground;
  ground.point = {0, 0, 0};
  ground.normal = {0, 1, 0};
  ground.mat.color = {0.8, 0.8, 0.85};
  ground.mat.reflect = 0.15;
  s.planes.push_back(ground);
  s.lights.push_back(Light{{-5, 8, -4}, {1.0, 0.95, 0.9}});
  s.lights.push_back(Light{{6, 5, -2}, {0.4, 0.45, 0.55}});
  return s;
}

bool hit_sphere(const Sphere& sp, const Ray& r, double& tOut) {
  const Vec3 oc = r.origin - sp.center;
  const double b = oc.dot(r.dir);
  const double c = oc.dot(oc) - sp.radius * sp.radius;
  const double disc = b * b - c;
  if (disc < 0) return false;
  const double sq = std::sqrt(disc);
  double t = -b - sq;
  if (t < 1e-4) t = -b + sq;
  if (t < 1e-4) return false;
  tOut = t;
  return true;
}

bool hit_plane(const Plane& pl, const Ray& r, double& tOut) {
  const double denom = pl.normal.dot(r.dir);
  if (std::fabs(denom) < 1e-9) return false;
  const double t = (pl.point - r.origin).dot(pl.normal) / denom;
  if (t < 1e-4) return false;
  tOut = t;
  return true;
}

void apply_plane_pattern(HitInfo& hit) {
  const int cx = static_cast<int>(std::floor(hit.point.x));
  const int cz = static_cast<int>(std::floor(hit.point.z));
  if (((cx + cz) & 1) != 0) hit.mat.color = hit.mat.color * 0.55;
}

HitInfo intersect(const Scene& scene, const Ray& ray) {
  HitInfo best;
  double bestT = 1e30;
  for (const Sphere& sp : scene.spheres) {
    double t;
    if (hit_sphere(sp, ray, t) && t < bestT) {
      bestT = t;
      best.hit = true;
      best.t = t;
      best.point = ray.origin + ray.dir * t;
      best.normal = (best.point - sp.center).normalized();
      best.mat = sp.mat;
    }
  }
  for (const Plane& pl : scene.planes) {
    double t;
    if (hit_plane(pl, ray, t) && t < bestT) {
      bestT = t;
      best.hit = true;
      best.t = t;
      best.point = ray.origin + ray.dir * t;
      best.normal = pl.normal.normalized();
      best.mat = pl.mat;
      apply_plane_pattern(best);  // checkerboard for visual structure
    }
  }
  return best;
}

Vec3 trace(const Scene& scene, const Ray& ray, int depth) {
  const HitInfo hit = intersect(scene, ray);
  if (!hit.hit) return scene.background;
  Vec3 color{0, 0, 0};
  for (const Light& light : scene.lights) {
    const Vec3 toLight = (light.pos - hit.point);
    const double dist = toLight.norm();
    const Vec3 l = toLight.normalized();
    // Shadow probe.
    Ray shadow{hit.point + hit.normal * 1e-3, l};
    const HitInfo sh = intersect(scene, shadow);
    if (sh.hit && sh.t < dist) continue;
    const double nDotL = hit.normal.dot(l);
    if (nDotL > 0)
      color = color + hit.mat.color.mul(light.color) * (hit.mat.diffuse * nDotL);
    // Blinn-Phong specular.
    const Vec3 h = (l - ray.dir).normalized();
    const double nDotH = hit.normal.dot(h);
    if (nDotH > 0)
      color = color + light.color * (hit.mat.specular * std::pow(nDotH, 32.0));
  }
  if (hit.mat.reflect > 0 && depth > 0) {
    const Vec3 r = ray.dir - hit.normal * (2.0 * ray.dir.dot(hit.normal));
    Ray refl{hit.point + hit.normal * 1e-3, r.normalized()};
    color = color + trace(scene, refl, depth - 1) * hit.mat.reflect;
  }
  return color;
}

Ray camera_ray(const Scene& scene, int px, int py, int width, int height) {
  const Vec3 forward = (scene.cameraLookAt - scene.cameraPos).normalized();
  const Vec3 right = forward.cross(Vec3{0, 1, 0}).normalized();
  const Vec3 up = right.cross(forward);
  const double aspect = static_cast<double>(width) / height;
  const double tanFov = std::tan(scene.fov * 0.5 * M_PI / 180.0);
  const double u = (2.0 * (px + 0.5) / width - 1.0) * tanFov * aspect;
  const double v = (1.0 - 2.0 * (py + 0.5) / height) * tanFov;
  return Ray{scene.cameraPos, (forward + right * u + up * v).normalized()};
}

uint32_t pack_color(const Vec3& c) {
  auto chan = [](double v) {
    if (v < 0) v = 0;
    if (v > 1) v = 1;
    return static_cast<uint32_t>(std::pow(v, 1.0 / 2.2) * 255.0 + 0.5);
  };
  return (chan(c.x) << 16) | (chan(c.y) << 8) | chan(c.z);
}

void render_rows(const Scene& scene, int width, int height, int yBegin, int yEnd,
                 uint32_t* out) {
  for (int y = yBegin; y < yEnd; y++)
    for (int x = 0; x < width; x++)
      out[static_cast<size_t>(y) * width + x] =
          pack_color(trace(scene, camera_ray(scene, x, y, width, height)));
}

uint64_t image_checksum(const uint32_t* pixels, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; i++) {
    h ^= pixels[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace sbd::raytrace
