// Inverted index + TF-IDF searcher (native data structures). The
// baseline (explicit-synchronization) benchmark variants use these
// directly under std::mutex; the SBD variants rebuild the same logic on
// managed collections (src/dacapo) so both variants run identical
// algorithms over identical corpora.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace sbd::text {

struct Posting {
  uint32_t docId;
  uint32_t termFreq;
};

struct SearchHit {
  uint32_t docId;
  double score;
};

class InvertedIndex {
 public:
  // Adds a document's tokens (already analyzed). Not thread-safe.
  void add_document(uint32_t docId, const std::vector<std::string>& tokens);

  const std::vector<Posting>* postings(const std::string& term) const;
  uint32_t doc_count() const { return static_cast<uint32_t>(docLens_.size()); }
  uint64_t doc_length(uint32_t docId) const;
  size_t term_count() const { return postings_.size(); }

  // TF-IDF top-k disjunctive query.
  std::vector<SearchHit> search(const std::vector<std::string>& terms, int k) const;

  // Serializes as text lines: "term docId:tf docId:tf ...\n" sorted by
  // term, so index files are byte-identical across variants.
  std::string serialize() const;
  static InvertedIndex deserialize(const std::string& data);

 private:
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::vector<uint64_t> docLens_;  // indexed by docId
};

// TF-IDF scoring shared by all index implementations: tf * ln(1 + N/df),
// normalized by document length.
double tfidf_score(uint32_t tf, uint32_t df, uint32_t numDocs, uint64_t docLen);

// Top-k selection over (docId, score) accumulators, deterministic
// tie-break by docId.
std::vector<SearchHit> top_k(const std::unordered_map<uint32_t, double>& acc, int k);

}  // namespace sbd::text
