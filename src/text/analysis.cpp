#include "text/analysis.h"

#include <cctype>
#include <sstream>

#include "common/rng.h"

namespace sbd::text {

std::vector<std::string> tokenize(std::string_view input) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : input) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!cur.empty()) {
      if (cur.size() >= 2) out.push_back(cur);
      cur.clear();
    }
  }
  if (cur.size() >= 2) out.push_back(cur);
  return out;
}

std::string stem(std::string_view token) {
  std::string t(token);
  auto ends_with = [&](std::string_view suf) {
    return t.size() >= suf.size() && std::string_view(t).substr(t.size() - suf.size()) == suf;
  };
  if (ends_with("ness") && t.size() > 6)
    t.resize(t.size() - 4);
  else if (ends_with("ing") && t.size() > 5)
    t.resize(t.size() - 3);
  else if (ends_with("ed") && t.size() > 4)
    t.resize(t.size() - 2);
  else if (ends_with("ly") && t.size() > 4)
    t.resize(t.size() - 2);
  else if (ends_with("es") && t.size() > 4)
    t.resize(t.size() - 2);
  else if (ends_with("s") && t.size() > 3 && !ends_with("ss"))
    t.resize(t.size() - 1);
  return t;
}

const std::vector<std::string>& vocabulary() {
  static const std::vector<std::string> words = {
      "time",    "year",    "people",  "way",     "day",     "man",     "thing",
      "woman",   "life",    "child",   "world",   "school",  "state",   "family",
      "student", "group",   "country", "problem", "hand",    "part",    "place",
      "case",    "week",    "company", "system",  "program", "question","work",
      "number",  "night",   "point",   "home",    "water",   "room",    "mother",
      "area",    "money",   "story",   "fact",    "month",   "lot",     "right",
      "study",   "book",    "eye",     "job",     "word",    "business","issue",
      "side",    "kind",    "head",    "house",   "service", "friend",  "father",
      "power",   "hour",    "game",    "line",    "end",     "member",  "law",
      "car",     "city",    "community","name",   "president","team",   "minute",
      "idea",    "kid",     "body",    "information","back", "parent",  "face",
      "others",  "level",   "office",  "door",    "health",  "person",  "art",
      "war",     "history", "party",   "result",  "change",  "morning", "reason",
      "research","girl",    "guy",     "moment",  "air",     "teacher", "force",
      "education","foot",   "boy",     "age",     "policy",  "process", "music",
      "market",  "sense",   "nation",  "plan",    "college", "interest","death",
      "experience","effect","use",     "class",   "control", "care",    "field",
      "development","role", "effort",  "rate",    "heart",   "drug",    "show",
      "leader",  "light",   "voice",   "wife",    "police",  "mind",    "price",
      "report",  "decision","son",     "view",    "relationship","town","road",
      "arm",     "difference","value", "building","action",  "model",   "season",
      "society", "tax",     "director","position","player",  "record",  "paper",
      "space",   "ground",  "form",    "event",   "official","matter",  "center",
      "couple",  "site",    "project", "activity","star",    "table",   "need",
      "court",   "american","oil",     "situation","cost",   "industry","figure",
      "street",  "image",   "phone",   "data",    "picture", "practice","piece",
      "land",    "product", "doctor",  "wall",    "patient", "worker",  "news",
      "test",    "movie",   "north",   "love",    "support", "technology","step",
      "baby",    "computer","type",    "attention","film",   "tree",    "source",
      "subject", "rule",    "question","structure","network","memory",  "cache",
      "thread",  "lock",    "atomic",  "section", "split",   "commit",  "abort",
      "runtime", "compiler","machine", "kernel",  "server",  "client",  "buffer",
  };
  return words;
}

std::vector<std::string> generate_document(const CorpusConfig& cfg, uint64_t docId) {
  const auto& vocab = vocabulary();
  Zipf zipf(vocab.size(), cfg.zipfTheta, mix64(cfg.seed * 1315423911u + docId));
  std::vector<std::string> words;
  words.reserve(cfg.wordsPerDoc);
  for (uint64_t i = 0; i < cfg.wordsPerDoc; i++) words.push_back(vocab[zipf.next()]);
  return words;
}

std::string generate_document_text(const CorpusConfig& cfg, uint64_t docId) {
  std::ostringstream os;
  bool first = true;
  for (const auto& w : generate_document(cfg, docId)) {
    if (!first) os << ' ';
    os << w;
    first = false;
  }
  return os.str();
}

std::vector<std::string> generate_query(const CorpusConfig& cfg, uint64_t qId,
                                        int terms) {
  const auto& vocab = vocabulary();
  Zipf zipf(vocab.size(), cfg.zipfTheta, mix64(cfg.seed * 2654435761u + qId));
  std::vector<std::string> out;
  for (int i = 0; i < terms; i++) out.push_back(vocab[zipf.next()]);
  return out;
}

}  // namespace sbd::text
