#include "text/index.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/check.h"

namespace sbd::text {

void InvertedIndex::add_document(uint32_t docId, const std::vector<std::string>& tokens) {
  if (docId >= docLens_.size()) docLens_.resize(docId + 1, 0);
  docLens_[docId] = tokens.size();
  std::unordered_map<std::string, uint32_t> tf;
  for (const auto& t : tokens) tf[t]++;
  for (const auto& [term, freq] : tf) {
    auto& plist = postings_[term];
    plist.push_back(Posting{docId, freq});
  }
}

const std::vector<Posting>* InvertedIndex::postings(const std::string& term) const {
  auto it = postings_.find(term);
  return it == postings_.end() ? nullptr : &it->second;
}

uint64_t InvertedIndex::doc_length(uint32_t docId) const {
  return docId < docLens_.size() ? docLens_[docId] : 0;
}

double tfidf_score(uint32_t tf, uint32_t df, uint32_t numDocs, uint64_t docLen) {
  if (df == 0 || docLen == 0) return 0;
  const double idf = std::log(1.0 + static_cast<double>(numDocs) / df);
  return static_cast<double>(tf) * idf / std::sqrt(static_cast<double>(docLen));
}

std::vector<SearchHit> top_k(const std::unordered_map<uint32_t, double>& acc, int k) {
  std::vector<SearchHit> hits;
  hits.reserve(acc.size());
  for (const auto& [doc, score] : acc) hits.push_back(SearchHit{doc, score});
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.docId < b.docId;
  });
  if (static_cast<int>(hits.size()) > k) hits.resize(static_cast<size_t>(k));
  return hits;
}

std::vector<SearchHit> InvertedIndex::search(const std::vector<std::string>& terms,
                                             int k) const {
  std::unordered_map<uint32_t, double> acc;
  for (const auto& term : terms) {
    const auto* plist = postings(term);
    if (!plist) continue;
    const auto df = static_cast<uint32_t>(plist->size());
    for (const Posting& p : *plist)
      acc[p.docId] += tfidf_score(p.termFreq, df, doc_count(), doc_length(p.docId));
  }
  return top_k(acc, k);
}

std::string InvertedIndex::serialize() const {
  // std::map for deterministic term order.
  std::map<std::string, const std::vector<Posting>*> sorted;
  for (const auto& [term, plist] : postings_) sorted[term] = &plist;
  std::ostringstream os;
  os << "#docs " << docLens_.size() << "\n";
  for (size_t i = 0; i < docLens_.size(); i++) os << "#len " << i << " " << docLens_[i] << "\n";
  for (const auto& [term, plist] : sorted) {
    os << term;
    std::vector<Posting> byDoc = *plist;
    std::sort(byDoc.begin(), byDoc.end(),
              [](const Posting& a, const Posting& b) { return a.docId < b.docId; });
    for (const Posting& p : byDoc) os << ' ' << p.docId << ':' << p.termFreq;
    os << '\n';
  }
  return os.str();
}

InvertedIndex InvertedIndex::deserialize(const std::string& data) {
  InvertedIndex idx;
  std::istringstream is(data);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "#docs") {
        size_t n;
        ls >> n;
        idx.docLens_.resize(n, 0);
      } else if (tag == "#len") {
        size_t i;
        uint64_t len;
        ls >> i >> len;
        if (i < idx.docLens_.size()) idx.docLens_[i] = len;
      }
      continue;
    }
    std::istringstream ls(line);
    std::string term;
    ls >> term;
    auto& plist = idx.postings_[term];
    std::string pair;
    while (ls >> pair) {
      const auto colon = pair.find(':');
      SBD_CHECK_MSG(colon != std::string::npos, "malformed index line");
      plist.push_back(Posting{static_cast<uint32_t>(std::stoul(pair.substr(0, colon))),
                              static_cast<uint32_t>(std::stoul(pair.substr(colon + 1)))});
    }
  }
  return idx;
}

}  // namespace sbd::text
