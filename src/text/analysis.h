// Text analysis for the LuIndex/LuSearch benchmark analogs: tokenizer,
// a light suffix-stripping stemmer, and a deterministic corpus/query
// generator (the stand-in for the Lucene benchmark's document set).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sbd::text {

// Lowercases and splits on non-alphanumeric characters; drops tokens
// shorter than 2 characters.
std::vector<std::string> tokenize(std::string_view input);

// Light stemmer: strips common English suffixes (ing, ed, es, s, ly,
// ness) with minimal-stem-length guards. Deterministic, not Porter.
std::string stem(std::string_view token);

// Embedded vocabulary used by the corpus generator.
const std::vector<std::string>& vocabulary();

// Deterministic document generator: document `docId` is a sequence of
// `wordsPerDoc` vocabulary words drawn from a Zipf distribution seeded
// by (seed, docId), so corpora are identical across runs and variants.
struct CorpusConfig {
  uint64_t numDocs = 1000;
  uint64_t wordsPerDoc = 120;
  double zipfTheta = 0.85;
  uint64_t seed = 0x5eed;
};

std::vector<std::string> generate_document(const CorpusConfig& cfg, uint64_t docId);
std::string generate_document_text(const CorpusConfig& cfg, uint64_t docId);

// Deterministic query generator: query `qId` holds `terms` vocabulary
// words (skewed like the corpus so most queries hit).
std::vector<std::string> generate_query(const CorpusConfig& cfg, uint64_t qId,
                                        int terms = 3);

}  // namespace sbd::text
