// Static fields and static-initialization guards (§4.1).
//
// Static slots live in a per-class managed "statics holder", so static
// accesses take the same field-granularity locks as instance accesses.
// Static initialization runs inside the accessing transaction behind a
// guard flag that is itself a transactional static slot: if the
// transaction aborts, the flag write rolls back and the next access
// re-runs the initializer — exactly the paper's re-executable static
// initialization.
#pragma once

#include <functional>

#include "runtime/field_access.h"
#include "runtime/ref.h"

namespace sbd::runtime {

inline int64_t static_read_i64(ClassInfo* cls, uint32_t slot) {
  return static_cast<int64_t>(tx_read(cls->statics, slot));
}

inline void static_write_i64(ClassInfo* cls, uint32_t slot, int64_t v) {
  tx_write(cls->statics, slot, static_cast<uint64_t>(v));
}

template <typename RefT>
RefT static_read_ref(ClassInfo* cls, uint32_t slot) {
  return RefT(reinterpret_cast<ManagedObject*>(tx_read(cls->statics, slot)));
}

template <typename RefT>
void static_write_ref(ClassInfo* cls, uint32_t slot, RefT v) {
  tx_write(cls->statics, slot, reinterpret_cast<uint64_t>(v.raw()));
}

// Static-initialization guard. `guardSlot` must be a dedicated static
// i64 slot of `cls` (0 = uninitialized, 1 = initialized). The guard
// performs the check-and-run transactionally: the write lock on the
// guard slot serializes competing initializers, and a rollback reverts
// the flag so the initializer re-runs (§4.1).
inline void ensure_static_init(ClassInfo* cls, uint32_t guardSlot,
                               const std::function<void()>& initializer) {
  // Read first: the common case is "already initialized" and takes only
  // a read lock on the guard slot.
  if (static_read_i64(cls, guardSlot) != 0) return;
  // Upgrade to a write lock; after the upgrade we are the only writer,
  // so re-check and initialize.
  static_write_i64(cls, guardSlot, 1);
  initializer();
}

}  // namespace sbd::runtime
