#include "runtime/lockpool.h"

#include <bit>
#include <cstring>

namespace sbd::runtime {

LockPool& LockPool::instance() {
  static LockPool pool;
  return pool;
}

int LockPool::class_for(uint32_t nWords) {
  if (nWords == 0 || nWords > kMaxPooledWords) return -1;
  return std::bit_width(nWords - 1);  // ceil(log2(nWords)), 0 for nWords == 1
}

core::LockWord* LockPool::acquire(uint32_t nWords) {
  const int cls = class_for(nWords);
  if (cls < 0) {
    allocs_.fetch_add(1, std::memory_order_relaxed);
    return new core::LockWord[nWords]();
  }
  SizeClass& sc = classes_[cls];
  core::LockWord* arr = nullptr;
  {
    std::lock_guard<std::mutex> lk(sc.mu);
    if (!sc.free.empty()) {
      arr = sc.free.back();
      sc.free.pop_back();
    }
  }
  if (arr) {
    reuses_.fetch_add(1, std::memory_order_relaxed);
    std::memset(arr, 0, nWords * sizeof(core::LockWord));
    return arr;
  }
  allocs_.fetch_add(1, std::memory_order_relaxed);
  return new core::LockWord[class_words(cls)]();
}

void LockPool::release(core::LockWord* arr, uint32_t nWords) {
  const int cls = class_for(nWords);
  if (cls >= 0) {
    SizeClass& sc = classes_[cls];
    std::lock_guard<std::mutex> lk(sc.mu);
    if (sc.free.size() < kMaxPerClass) {
      sc.free.push_back(arr);
      return;
    }
  }
  delete[] arr;
}

LockPool::Stats LockPool::stats() {
  Stats s;
  for (int c = 0; c < kNumClasses; c++) {
    std::lock_guard<std::mutex> lk(classes_[c].mu);
    s.pooledArrays += classes_[c].free.size();
    s.pooledBytes += classes_[c].free.size() * class_words(c) * sizeof(core::LockWord);
  }
  s.reuses = reuses_.load(std::memory_order_relaxed);
  s.allocs = allocs_.load(std::memory_order_relaxed);
  return s;
}

void LockPool::trim() {
  for (auto& sc : classes_) {
    std::lock_guard<std::mutex> lk(sc.mu);
    for (core::LockWord* arr : sc.free) delete[] arr;
    sc.free.clear();
  }
}

}  // namespace sbd::runtime
