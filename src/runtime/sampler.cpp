#include "runtime/sampler.h"

#include <thread>

#include "common/check.h"
#include "core/stats.h"
#include "core/transaction.h"
#include "runtime/heap.h"

namespace sbd::runtime {

void MemorySampler::start() {
  SBD_CHECK_MSG(!running_.load(), "sampler already running");
  stopRequested_.store(false, std::memory_order_release);
  sumHeap_ = sumLocks_ = sumStamps_ = samples_ = collections_ = 0;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

MemoryAverages MemorySampler::stop() {
  MemoryAverages avg;
  if (running_.load(std::memory_order_acquire)) {
    stopRequested_.store(true, std::memory_order_release);
    {
      // The sampler thread may be mid-collection, waiting for THIS
      // thread to reach a safepoint — join from a safe region.
      core::Safepoint::SafeScope safe(core::tls_context());
      thread_.join();
    }
    running_.store(false, std::memory_order_release);
  }
  if (samples_ > 0) {
    avg.liveHeapBytes = static_cast<double>(sumHeap_) / static_cast<double>(samples_);
    avg.lockStructBytes = static_cast<double>(sumLocks_) / static_cast<double>(samples_);
    avg.versionWordBytes = static_cast<double>(sumStamps_) / static_cast<double>(samples_);
  }
  avg.samples = samples_;
  avg.collections = collections_;
  return avg;
}

void MemorySampler::run() {
  Heap::instance().attach_current_thread_here();
  while (!stopRequested_.load(std::memory_order_acquire)) {
    Heap::instance().collect();
    collections_++;
    sumHeap_ += Heap::instance().stats().liveBytes;
    sumLocks_ += core::gauges().lockStructBytes.load(std::memory_order_relaxed);
    sumStamps_ += core::gauges().versionWordBytes.load(std::memory_order_relaxed);
    samples_++;
    {
      // Safe region: other threads' collections must not wait out the
      // sampling interval for this thread to reach a poll.
      core::Safepoint::SafeScope safe(core::tls_context());
      std::this_thread::sleep_for(std::chrono::milliseconds(intervalMs_));
    }
  }
}

}  // namespace sbd::runtime
