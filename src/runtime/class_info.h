// Class metadata for the managed object model.
//
// The SBD runtime needs, per class, exactly what the paper's bytecode
// transformer gets from Java class files: which slots are references
// (for GC tracing), which are final (no synchronization, Table 1), and
// how many slots an instance has (size of the lazy lock structure).
// Classes are registered once at startup; registration is not
// transactional.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/fwd.h"

namespace sbd::runtime {

struct ManagedObject;

enum class ElemKind : uint8_t {
  kNone = 0,  // not an array class
  kI8,        // byte arrays (strings, buffers); locks per 64-byte block
  kI64,       // word arrays; locks per element
  kF64,       // double arrays; locks per element
  kRef,       // reference arrays; locks per element
};

inline constexpr uint32_t kMaxSlots = 64;  // ref/final masks are single words

struct SlotDesc {
  const char* name;
  bool isRef = false;
  bool isFinal = false;
};

// LockMap — the slot→lock-index policy of a class: which lock word
// protects slot i (field index, array element index, or byte-array
// block index). The paper fixes this at identity (one lock per
// field/element, Fig. 4); making it a per-class policy turns the
// granularity into a seam the runtime/lockplan controller can tune.
//
//   field      identity map — the faithful Fig. 4 default
//   striped(k) natural index mod k — k lock words per instance
//   object     one lock word for the whole instance
//   versioned  identity-width map of *version stamps* (TL2-style
//              invisible readers): reads validate against the global
//              commit clock instead of writing reader bits, writes
//              still lock exclusively (see core/lockword.h)
//
// The map talks in *natural* lock indices (what lock_index() computed
// before this seam existed): fields and word-array elements map 1:1,
// byte arrays are first reduced to 64-byte blocks (kI8LockStride).
struct LockMap {
  enum Kind : uint8_t { kField = 0, kStriped = 1, kObject = 2, kVersioned = 3 };
  Kind kind = kField;
  uint32_t stripes = 1;  // meaningful for kStriped only; >= 1

  static LockMap field_map() { return LockMap{}; }
  static LockMap striped_map(uint32_t k) {
    return LockMap{kStriped, k < 1 ? 1u : k};
  }
  static LockMap object_map() { return LockMap{kObject, 1}; }
  static LockMap versioned_map() { return LockMap{kVersioned, 1}; }

  bool identity() const { return kind == kField; }
  bool versioned() const { return kind == kVersioned; }

  // Lock words an instance with `naturalCount` natural indices needs.
  // Versioned maps keep identity width: one stamp word per natural
  // index, so conflict detection stays per-field/per-element.
  uint32_t width(uint32_t naturalCount) const {
    switch (kind) {
      case kField:
      case kVersioned:
        return naturalCount;
      case kStriped:
        return naturalCount < stripes ? naturalCount : stripes;
      case kObject:
      default:
        return naturalCount > 0 ? 1 : 0;
    }
  }

  // Mapped index of natural index `i`; always < width(n) for i < n.
  uint32_t index(uint32_t naturalIndex) const {
    switch (kind) {
      case kField:
      case kVersioned:
        return naturalIndex;
      case kStriped:
        return naturalIndex % stripes;
      case kObject:
      default:
        return 0;
    }
  }

  // Packed form stored in ClassInfo::lockMapBits. field_map() packs to
  // 0 so a zero-initialized class starts at the faithful default.
  uint64_t bits() const {
    return static_cast<uint64_t>(kind) |
           (kind == kStriped ? static_cast<uint64_t>(stripes) << 8 : 0);
  }
  static LockMap from_bits(uint64_t b) {
    LockMap m;
    m.kind = static_cast<Kind>(b & 0xFF);
    m.stripes = m.kind == kStriped ? static_cast<uint32_t>(b >> 8) : 1;
    if (m.stripes < 1) m.stripes = 1;
    return m;
  }

  bool operator==(const LockMap& o) const {
    return kind == o.kind && (kind != kStriped || stripes == o.stripes);
  }
  bool operator!=(const LockMap& o) const { return !(*this == o); }

  std::string to_string() const {
    switch (kind) {
      case kField:
        return "field";
      case kStriped:
        return "striped:" + std::to_string(stripes);
      case kVersioned:
        return "versioned";
      case kObject:
      default:
        return "object";
    }
  }
};

// Sentinel for "no granularity hint set" (ClassInfo::lockMapHintBits).
inline constexpr uint64_t kNoLockHint = ~0ULL;

struct ClassInfo {
  std::string name;
  uint32_t slotCount = 0;
  uint64_t refMask = 0;    // bit i set: slot i holds a managed reference
  uint64_t finalMask = 0;  // bit i set: slot i is final -> no synchronization
  bool isArray = false;
  ElemKind elemKind = ElemKind::kNone;
  std::vector<std::string> slotNames;

  // Per-class statics live in a managed object so static accesses get
  // the same field-granularity locking as instance accesses.
  ManagedObject* statics = nullptr;
  uint32_t staticSlotCount = 0;
  uint64_t staticRefMask = 0;

  // --- Lock-granularity policy (runtime/lockplan) ---------------------
  // The current slot→lock map, packed (LockMap::bits). Mutated only
  // before any instance of the class exists or with the world stopped
  // (lockplan re-plan), so a relaxed load on the access fast path is
  // sound: no running transaction can ever observe the map mid-change.
  std::atomic<uint64_t> lockMapBits{0};  // 0 == LockMap::field_map().bits()
  // set_lock_granularity() pinned the map; the adaptive controller
  // keeps re-applying the pinned target and never overrides it.
  std::atomic<bool> lockMapPinned{false};
  // Preferred coarse map for the adaptive controller's cold-class
  // choice (hint_lock_granularity), or kNoLockHint.
  std::atomic<uint64_t> lockMapHintBits{kNoLockHint};
  // Bumped by the contended-acquire slow path; the adaptive
  // controller's contention signal (independent of obs tracing).
  std::atomic<uint64_t> contentionEvents{0};
  // Read/write breakdown of contentionEvents: the adaptive controller
  // selects versioned maps for read-mostly contended classes.
  std::atomic<uint64_t> contendedReads{0};
  std::atomic<uint64_t> contendedWrites{0};
  // Bumped when a deadlock resolution involved an instance of this
  // class; the controller never picks versioned for such classes.
  std::atomic<uint64_t> deadlockEvents{0};
  // Stale-read / validation aborts on versioned words of this class;
  // an abort storm scorches the class back to field granularity.
  std::atomic<uint64_t> versionAborts{0};

  LockMap lock_map() const {
    return LockMap::from_bits(lockMapBits.load(std::memory_order_relaxed));
  }

  bool slot_is_final(uint32_t slot) const { return (finalMask >> slot) & 1; }
  bool slot_is_ref(uint32_t slot) const { return (refMask >> slot) & 1; }
};

// Registers a class. Must happen before any instance is allocated;
// typically from a function-local static initializer (see SBD_DEFINE_CLASS
// in ref.h). `staticSlots` may be empty.
ClassInfo* register_class(const std::string& name, const std::vector<SlotDesc>& slots,
                          const std::vector<SlotDesc>& staticSlots = {});

// Built-in array classes (one per element kind).
ClassInfo* array_class(ElemKind kind);

// Enumerate all registered classes (GC roots: statics objects).
void for_each_class(const std::function<void(ClassInfo*)>& fn);

}  // namespace sbd::runtime
