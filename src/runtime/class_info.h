// Class metadata for the managed object model.
//
// The SBD runtime needs, per class, exactly what the paper's bytecode
// transformer gets from Java class files: which slots are references
// (for GC tracing), which are final (no synchronization, Table 1), and
// how many slots an instance has (size of the lazy lock structure).
// Classes are registered once at startup; registration is not
// transactional.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/fwd.h"

namespace sbd::runtime {

struct ManagedObject;

enum class ElemKind : uint8_t {
  kNone = 0,  // not an array class
  kI8,        // byte arrays (strings, buffers); locks per 64-byte block
  kI64,       // word arrays; locks per element
  kF64,       // double arrays; locks per element
  kRef,       // reference arrays; locks per element
};

inline constexpr uint32_t kMaxSlots = 64;  // ref/final masks are single words

struct SlotDesc {
  const char* name;
  bool isRef = false;
  bool isFinal = false;
};

struct ClassInfo {
  std::string name;
  uint32_t slotCount = 0;
  uint64_t refMask = 0;    // bit i set: slot i holds a managed reference
  uint64_t finalMask = 0;  // bit i set: slot i is final -> no synchronization
  bool isArray = false;
  ElemKind elemKind = ElemKind::kNone;
  std::vector<std::string> slotNames;

  // Per-class statics live in a managed object so static accesses get
  // the same field-granularity locking as instance accesses.
  ManagedObject* statics = nullptr;
  uint32_t staticSlotCount = 0;
  uint64_t staticRefMask = 0;

  bool slot_is_final(uint32_t slot) const { return (finalMask >> slot) & 1; }
  bool slot_is_ref(uint32_t slot) const { return (refMask >> slot) & 1; }
};

// Registers a class. Must happen before any instance is allocated;
// typically from a function-local static initializer (see SBD_DEFINE_CLASS
// in ref.h). `staticSlots` may be empty.
ClassInfo* register_class(const std::string& name, const std::vector<SlotDesc>& slots,
                          const std::vector<SlotDesc>& staticSlots = {});

// Built-in array classes (one per element kind).
ClassInfo* array_class(ElemKind kind);

// Enumerate all registered classes (GC roots: statics objects).
void for_each_class(const std::function<void(ClassInfo*)>& fn);

}  // namespace sbd::runtime
