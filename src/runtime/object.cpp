#include "runtime/object.h"

#include "common/check.h"
#include "core/stats.h"
#include "runtime/lockpool.h"

namespace sbd::runtime {

namespace {

// Natural (pre-LockMap) lock count: one per slot, arrays one per
// element, byte arrays one per 64-byte block.
uint32_t natural_lock_count(const ManagedObject* o) {
  const ClassInfo* cls = o->h.cls;
  if (!cls->isArray) return cls->slotCount;
  const uint64_t len = o->array_length();
  if (cls->elemKind == ElemKind::kI8)
    return static_cast<uint32_t>((len + kI8LockStride - 1) / kI8LockStride);
  return static_cast<uint32_t>(len);
}

uint32_t natural_lock_index(const ManagedObject* o, uint64_t slot) {
  if (o->h.cls->isArray && o->h.cls->elemKind == ElemKind::kI8)
    return static_cast<uint32_t>(slot / kI8LockStride);
  return static_cast<uint32_t>(slot);
}

}  // namespace

uint32_t lock_count(const ManagedObject* o) {
  return o->h.cls->lock_map().width(natural_lock_count(o));
}

uint32_t lock_index(const ManagedObject* o, uint64_t slot) {
  return o->h.cls->lock_map().index(natural_lock_index(o, slot));
}

core::LockWord* materialize_locks(ManagedObject* o) {
  const uint32_t n = lock_count(o);
  SBD_CHECK_MSG(n > 0, "materializing locks for a lock-free instance");
  auto* fresh = LockPool::instance().acquire(n);
  core::LockWord* expected = kUnalloc;
  if (o->locks.compare_exchange_strong(expected, fresh, std::memory_order_acq_rel)) {
    // The gauge counts the semantic size (one word per MAPPED lock, so
    // coarse LockMaps report their real footprint) of LIVE structures
    // only — class rounding and pooled-free arrays are invisible,
    // keeping Table 8 byte-exact across the pool change. Versioned
    // stamp words are metadata of a different kind (no queues, no
    // member bits) and get their own Table 8 column.
    auto& gauge = o->h.cls->lock_map().versioned() ? core::gauges().versionWordBytes
                                                   : core::gauges().lockStructBytes;
    gauge.fetch_add(n * sizeof(core::LockWord), std::memory_order_relaxed);
    return fresh;
  }
  LockPool::instance().release(fresh, n);  // lost the race; use the winner's array
  return expected;
}

void publish_new_object(ManagedObject* o) {
  core::LockWord* expected = nullptr;
  o->locks.compare_exchange_strong(expected, kUnalloc, std::memory_order_acq_rel);
}

void release_locks(ManagedObject* o) {
  core::LockWord* lp = o->locks.load(std::memory_order_acquire);
  if (lp != nullptr && lp != kUnalloc) {
    const uint32_t n = lock_count(o);
    auto& gauge = o->h.cls->lock_map().versioned() ? core::gauges().versionWordBytes
                                                   : core::gauges().lockStructBytes;
    gauge.fetch_sub(n * sizeof(core::LockWord), std::memory_order_relaxed);
    LockPool::instance().release(lp, n);
  }
  o->locks.store(kUnalloc, std::memory_order_release);
}

}  // namespace sbd::runtime
