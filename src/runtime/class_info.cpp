#include "runtime/class_info.h"

#include <mutex>

#include "common/check.h"
#include "runtime/heap.h"
#include "runtime/lockplan.h"
#include "runtime/object.h"

namespace sbd::runtime {

namespace {
std::mutex gClassMu;
std::vector<ClassInfo*>& class_list() {
  static std::vector<ClassInfo*> list;
  return list;
}
}  // namespace

ClassInfo* register_class(const std::string& name, const std::vector<SlotDesc>& slots,
                          const std::vector<SlotDesc>& staticSlots) {
  SBD_CHECK_MSG(slots.size() <= kMaxSlots, "too many instance slots");
  SBD_CHECK_MSG(staticSlots.size() <= kMaxSlots, "too many static slots");
  auto* ci = new ClassInfo();
  ci->name = name;
  ci->slotCount = static_cast<uint32_t>(slots.size());
  for (uint32_t i = 0; i < ci->slotCount; i++) {
    if (slots[i].isRef) ci->refMask |= 1ULL << i;
    if (slots[i].isFinal) ci->finalMask |= 1ULL << i;
    ci->slotNames.emplace_back(slots[i].name);
  }
  ci->staticSlotCount = static_cast<uint32_t>(staticSlots.size());
  for (uint32_t i = 0; i < ci->staticSlotCount; i++)
    if (staticSlots[i].isRef) ci->staticRefMask |= 1ULL << i;

  if (ci->staticSlotCount > 0) {
    // The statics holder is itself a managed object so static accesses
    // get field-granularity locking. It is registered pre-transactionally.
    // (Its synthetic ::statics class is not in the class list, so it
    // keeps the default field map forever.)
    ci->statics = Heap::instance().alloc_statics_holder(ci);
  }
  // Applies the SBD_LOCK_GRANULARITY initial map; must precede
  // publication — no instance may be allocated under the default map.
  lockplan::on_class_registered(ci);
  std::lock_guard<std::mutex> lk(gClassMu);
  class_list().push_back(ci);
  return ci;
}

void for_each_class(const std::function<void(ClassInfo*)>& fn) {
  std::lock_guard<std::mutex> lk(gClassMu);
  for (ClassInfo* ci : class_list()) fn(ci);
}

ClassInfo* array_class(ElemKind kind) {
  // Array classes go through the same registration hook and class list
  // as named classes: the lockplan controller must see them (array
  // singletons are its most profitable coarsening targets), and the GC
  // statics walk tolerates their statics == nullptr.
  auto make = [](const char* name, ElemKind k) {
    auto* c = new ClassInfo();
    c->name = name;
    c->isArray = true;
    c->elemKind = k;
    lockplan::on_class_registered(c);
    std::lock_guard<std::mutex> lk(gClassMu);
    class_list().push_back(c);
    return c;
  };
  static ClassInfo* i8 = make("byte[]", ElemKind::kI8);
  static ClassInfo* i64 = make("long[]", ElemKind::kI64);
  static ClassInfo* f64 = make("double[]", ElemKind::kF64);
  static ClassInfo* ref = make("Object[]", ElemKind::kRef);
  switch (kind) {
    case ElemKind::kI8:
      return i8;
    case ElemKind::kI64:
      return i64;
    case ElemKind::kF64:
      return f64;
    case ElemKind::kRef:
      return ref;
    default:
      SBD_CHECK_MSG(false, "not an array kind");
      return nullptr;
  }
}

}  // namespace sbd::runtime
