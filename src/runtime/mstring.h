// Managed strings: immutable byte arrays with final content.
//
// Java strings are immutable with final fields, so the paper's SBD
// variant reads them without synchronization. We model that: MString
// content is written only at construction (init writes) and read
// directly — the "final field" row of Table 1. Mutable text goes
// through ByteArray instead.
#pragma once

#include <string>
#include <string_view>

#include "runtime/ref.h"

namespace sbd::runtime {

class MString : public TypedRef<MString> {
 public:
  using TypedRef::TypedRef;

  static MString make(std::string_view s) {
    ManagedObject* a = Heap::instance().alloc_array(ElemKind::kI8, s.size());
    int8_t* data = a->array_data_i8();
    for (size_t i = 0; i < s.size(); i++) data[i] = static_cast<int8_t>(s[i]);
    return MString(a);
  }

  uint64_t length() const { return o_ ? array_length(o_) : 0; }

  // Immutable content: direct reads, no locking (final semantics).
  char at(uint64_t i) const { return static_cast<char>(o_->array_data_i8()[i]); }

  std::string str() const {
    if (!o_) return {};
    return std::string(reinterpret_cast<const char*>(o_->array_data_i8()),
                       array_length(o_));
  }

  std::string_view view() const {
    if (!o_) return {};
    return std::string_view(reinterpret_cast<const char*>(o_->array_data_i8()),
                            array_length(o_));
  }

  bool equals(std::string_view s) const { return view() == s; }
  bool equals(MString other) const { return o_ == other.o_ || view() == other.view(); }

  uint64_t hash() const;

  static ClassInfo* klass() { return array_class(ElemKind::kI8); }
};

inline uint64_t MString::hash() const {
  uint64_t h = 1469598103934665603ULL;
  for (uint64_t i = 0, n = length(); i < n; i++) {
    h ^= static_cast<unsigned char>(at(i));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace sbd::runtime
