#include "runtime/heap.h"

#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/timing.h"
#include "core/fault.h"
#include "core/obs.h"
#include "core/queue.h"
#include "core/stats.h"
#include "core/transaction.h"

namespace sbd::runtime {

namespace {
constexpr size_t align_up(size_t v, size_t a) { return (v + a - 1) & ~(a - 1); }

inline void* sp_from_ctx(const ucontext_t& ctx) {
#if defined(__x86_64__)
  return reinterpret_cast<void*>(ctx.uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  return reinterpret_cast<void*>(ctx.uc_mcontext.sp);
#endif
}
}  // namespace

// ---------------------------------------------------------------------------
// Chunk bitmap
// ---------------------------------------------------------------------------

void Heap::Chunk::set_start(size_t offset) {
  const size_t g = offset / kGranule;
  startBits[g / 64] |= 1ULL << (g % 64);
}

void Heap::Chunk::clear_start(size_t offset) {
  const size_t g = offset / kGranule;
  startBits[g / 64] &= ~(1ULL << (g % 64));
}

bool Heap::Chunk::is_start(size_t offset) const {
  if (offset % kGranule) return false;
  const size_t g = offset / kGranule;
  return (startBits[g / 64] >> (g % 64)) & 1;
}

size_t Heap::Chunk::find_start_at_or_before(size_t offset) const {
  size_t g = offset / kGranule;
  size_t word = g / 64;
  uint64_t bits = startBits[word] & (~0ULL >> (63 - (g % 64)));
  for (;;) {
    if (bits) {
      const size_t bit = 63 - static_cast<size_t>(__builtin_clzll(bits));
      return (word * 64 + bit) * kGranule;
    }
    if (word == 0) return SIZE_MAX;
    bits = startBits[--word];
  }
}

// ---------------------------------------------------------------------------
// Heap
// ---------------------------------------------------------------------------

Heap& Heap::instance() {
  static Heap* h = new Heap();  // intentionally leaked: outlives all threads
  return *h;
}

Heap::Heap() : smallFree_(kMaxSmallClass / 16 + 1) {}

size_t Heap::object_size(const ClassInfo* cls) {
  return align_up(sizeof(ManagedObject) + cls->slotCount * 8, Chunk::kGranule);
}

size_t Heap::array_size(ElemKind kind, uint64_t length) {
  size_t payload = 8;  // length word
  switch (kind) {
    case ElemKind::kI8:
      payload += align_up(length, 8);
      break;
    default:
      payload += length * 8;
      break;
  }
  return align_up(sizeof(ManagedObject) + payload, Chunk::kGranule);
}

std::byte* Heap::allocate_block(size_t size) {
  // Small sizes: exact-fit free list.
  if (size <= kMaxSmallClass) {
    auto& list = smallFree_[size / 16];
    if (!list.empty()) {
      std::byte* p = list.back();
      list.pop_back();
      Chunk* c = chunk_of(p);
      c->set_start(static_cast<size_t>(p - c->base));
      return p;
    }
  } else if (size < kLargeThreshold) {
    auto it = midFree_.find(size);
    if (it != midFree_.end() && !it->second.empty()) {
      std::byte* p = it->second.back();
      it->second.pop_back();
      Chunk* c = chunk_of(p);
      c->set_start(static_cast<size_t>(p - c->base));
      return p;
    }
  } else {
    // Large object: dedicated chunk rounded to 1 MiB multiples, aligned
    // so the per-MiB chunk map covers its whole span.
    const size_t mapped = align_up(size, Chunk::kSize);
    auto* base = static_cast<std::byte*>(std::aligned_alloc(Chunk::kSize, mapped));
    SBD_CHECK_MSG(base != nullptr, "managed heap: large allocation failed");
    auto* c = new Chunk();
    c->base = base;
    c->large = true;
    c->byteSize = mapped;
    c->bump = size;
    c->set_start(0);
    allChunks_.push_back(c);
    for (size_t off = 0; off < mapped; off += Chunk::kSize)
      chunks_[(reinterpret_cast<uintptr_t>(base) + off) >> Chunk::kSizeLog2] = c;
    return base;
  }
  // Bump allocation.
  if (!bumpChunk_ || bumpChunk_->bump + size > Chunk::kSize) {
    auto* base = static_cast<std::byte*>(std::aligned_alloc(Chunk::kSize, Chunk::kSize));
    SBD_CHECK_MSG(base != nullptr, "managed heap: chunk allocation failed");
    auto* c = new Chunk();
    c->base = base;
    allChunks_.push_back(c);
    chunks_[reinterpret_cast<uintptr_t>(base) >> Chunk::kSizeLog2] = c;
    bumpChunk_ = c;
  }
  std::byte* p = bumpChunk_->base + bumpChunk_->bump;
  bumpChunk_->set_start(bumpChunk_->bump);
  bumpChunk_->bump += size;
  return p;
}

Heap::Chunk* Heap::chunk_of(const void* p) {
  auto it = chunks_.find(reinterpret_cast<uintptr_t>(p) >> Chunk::kSizeLog2);
  return it == chunks_.end() ? nullptr : it->second;
}

ManagedObject* Heap::alloc_raw(ClassInfo* cls, size_t size, bool bornEscaped,
                               uint64_t arrayLength, bool isArray) {
  core::ThreadContext& tc = core::tls_context();
  core::Safepoint::poll(tc);  // allocation is a GC-cooperation point
  ManagedObject* o;
  {
    std::unique_lock<std::mutex> lk(heapMu_);
    allocatedSinceGc_ += size;
    stats_.allocatedBytes += size;
    // Fault plan: force a full stop-the-world collection at this
    // allocation safepoint, regardless of the threshold.
    const bool wantGc = allocatedSinceGc_ >= gcThreshold_ ||
                        fault::should_fire(fault::Site::kGcSafepoint);
    std::byte* p = allocate_block(size);
    std::memset(p, 0, size);
    o = reinterpret_cast<ManagedObject*>(p);
    o->h.cls = cls;
    o->h.sizeBytes = static_cast<uint32_t>(size);
    o->h.flags = 0;
    if (isArray) o->slots()[0] = arrayLength;
    new (&o->locks) std::atomic<core::LockWord*>(bornEscaped ? kUnalloc : nullptr);
    if (wantGc) {
      lk.unlock();
      // Keep the fresh object reachable across the collection: the
      // conservative scan sees `o` in this frame, but be explicit.
      ManagedObject* volatile keep = o;
      collect();
      o = keep;
    }
  }
  core::gauges().heapBytes.fetch_add(size, std::memory_order_relaxed);
  if (!bornEscaped) tc.txn.log_new(o);
  return o;
}

ManagedObject* Heap::alloc_object(ClassInfo* cls) {
  core::ThreadContext& tc = core::tls_context();
  const bool inTxn = tc.txn.active();
  return alloc_raw(cls, object_size(cls), /*bornEscaped=*/!inTxn, 0, false);
}

ManagedObject* Heap::alloc_array(ElemKind kind, uint64_t length) {
  core::ThreadContext& tc = core::tls_context();
  const bool inTxn = tc.txn.active();
  return alloc_raw(array_class(kind), array_size(kind, length), !inTxn, length, true);
}

ManagedObject* Heap::alloc_statics_holder(ClassInfo* cls) {
  // Statics use a synthetic class describing the static slots.
  auto* holderCls = new ClassInfo();
  holderCls->name = cls->name + "::statics";
  holderCls->slotCount = cls->staticSlotCount;
  holderCls->refMask = cls->staticRefMask;
  return alloc_raw(holderCls, object_size(holderCls), /*bornEscaped=*/true, 0, false);
}

void Heap::add_root(ManagedObject** slot) {
  std::lock_guard<std::mutex> lk(heapMu_);
  roots_.push_back(slot);
}

void Heap::remove_root(ManagedObject** slot) {
  std::lock_guard<std::mutex> lk(heapMu_);
  for (auto it = roots_.begin(); it != roots_.end(); ++it) {
    if (*it == slot) {
      roots_.erase(it);
      return;
    }
  }
}

void Heap::set_gc_threshold(uint64_t bytes) {
  std::lock_guard<std::mutex> lk(heapMu_);
  gcThreshold_ = bytes;
}

void Heap::attach_current_thread_here() {
  // Records the upper bound for the conservative stack scan. The GC
  // only READS up to this address, so rounding up into the caller's
  // frame is harmless (unlike the checkpoint anchor, which is a write
  // bound and owns its pad — see run_sections_with_anchor).
  core::ThreadContext& tc = core::tls_context();
  if (!tc.stackAnchor) {
    volatile char probe = 0;
    tc.stackAnchor = reinterpret_cast<void*>(
        (reinterpret_cast<uintptr_t>(&probe) + 1024) & ~uintptr_t{15});
  }
}

HeapStats Heap::stats() {
  std::lock_guard<std::mutex> lk(heapMu_);
  return stats_;
}

ManagedObject* Heap::find_object(const void* p) {
  Chunk* c = chunk_of(p);
  if (!c) return nullptr;
  const auto off = static_cast<size_t>(static_cast<const std::byte*>(p) - c->base);
  if (c->large) {
    // Large chunks hold a single object at offset 0 (the start bitmap
    // only covers the first MiB, so don't consult it for deep offsets).
    if (off >= c->bump || !c->is_start(0)) return nullptr;
    return reinterpret_cast<ManagedObject*>(c->base);
  }
  if (off >= c->bump) return nullptr;
  const size_t start = c->find_start_at_or_before(off);
  if (start == SIZE_MAX) return nullptr;
  auto* o = reinterpret_cast<ManagedObject*>(c->base + start);
  if (off >= start + o->h.sizeBytes) return nullptr;  // points into a freed gap
  return o;
}

void Heap::for_each_object(const std::function<void(ManagedObject*)>& fn) {
  // The caller has the world stopped; the lock is cheap insurance
  // against non-SBD threads poking at allocation state.
  std::lock_guard<std::mutex> lk(heapMu_);
  for (Chunk* c : allChunks_) {
    const size_t limit = c->bump;
    for (size_t w = 0; w < Chunk::kBitmapWords; w++) {
      uint64_t bits = c->startBits[w];
      while (bits) {
        const int bit = __builtin_ctzll(bits);
        bits &= bits - 1;
        const size_t off = (w * 64 + static_cast<size_t>(bit)) * Chunk::kGranule;
        if (off >= limit) break;
        fn(reinterpret_cast<ManagedObject*>(c->base + off));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Collection
// ---------------------------------------------------------------------------

void Heap::collect() {
  core::ThreadContext& tc = core::tls_context();
  const uint64_t t0 = obs::enabled() ? now_nanos() : 0;
  core::Safepoint::stop_world(tc);
  {
    std::lock_guard<std::mutex> lk(heapMu_);
    mark_from_roots();
    sweep();
    allocatedSinceGc_ = 0;
    if (gcThreshold_ < 2 * stats_.liveBytes) gcThreshold_ = 2 * stats_.liveBytes;
    stats_.collections++;
    core::gauges().gcRuns.fetch_add(1, std::memory_order_relaxed);
    core::gauges().heapBytes.store(stats_.liveBytes, std::memory_order_relaxed);
  }
  core::Safepoint::resume_world(tc);
  if (t0 != 0)
    obs::record(obs::EventKind::kGcPause, tc.txn.id(), -1, nullptr, nullptr,
                obs::kNoIndex, false, now_nanos() - t0);
}

void Heap::mark_object(ManagedObject* o) {
  if (!o || o->marked()) return;
  o->set_mark();
  markStack_.push_back(o);
}

void Heap::trace(ManagedObject* o) {
  const ClassInfo* cls = o->h.cls;
  if (cls->isArray) {
    if (cls->elemKind == ElemKind::kRef) {
      const uint64_t len = o->array_length();
      const uint64_t* data = o->array_data();
      for (uint64_t i = 0; i < len; i++)
        mark_object(reinterpret_cast<ManagedObject*>(data[i]));
    }
    return;
  }
  uint64_t mask = cls->refMask;
  const uint64_t* slots = o->slots();
  while (mask) {
    const int i = __builtin_ctzll(mask);
    mask &= mask - 1;
    mark_object(reinterpret_cast<ManagedObject*>(slots[i]));
  }
}

void Heap::scan_words(const void* begin, const void* end) {
  auto* p = reinterpret_cast<const uintptr_t*>(
      align_up(reinterpret_cast<uintptr_t>(begin), sizeof(uintptr_t)));
  auto* e = reinterpret_cast<const uintptr_t*>(end);
  for (; p < e; p++) {
    ManagedObject* o = find_object(reinterpret_cast<const void*>(*p));
    if (o) mark_object(o);
  }
}

void Heap::mark_from_roots() {
  markStack_.clear();

  // 1. Global roots and class statics.
  for (ManagedObject** slot : roots_) mark_object(*slot);
  for_each_class([&](ClassInfo* ci) {
    if (ci->statics) mark_object(ci->statics);
  });

  // 2. Per-thread roots: stacks, registers, checkpoints, transaction logs.
  auto& mgr = core::TxnManager::instance();
  core::ThreadContext& self = core::tls_context();
  mgr.for_each_thread([&](core::ThreadContext* t) {
    if (t == &self) {
      volatile char probe = 0;
      const void* sp = const_cast<const char*>(&probe);
      if (t->stackAnchor) scan_words(sp, t->stackAnchor);
    } else if (t->stackAnchor && t->spillSp) {
      scan_words(t->spillSp, t->stackAnchor);
      scan_words(&t->spillCtx, reinterpret_cast<const std::byte*>(&t->spillCtx) +
                                   sizeof(ucontext_t));
    }
    // Section checkpoint: saved stack bytes + register file (raw,
    // unmangled — reg_area() covers the fast-context or ucontext form).
    const core::Checkpoint& cp = t->sectionStart;
    if (cp.valid()) {
      const auto& buf = cp.stack_copy();
      scan_words(buf.data(), buf.data() + buf.size());
      scan_words(cp.reg_area(), reinterpret_cast<const std::byte*>(cp.reg_area()) +
                                    cp.reg_area_bytes());
    }
    // Transaction-held references.
    t->txn.lock_records().for_each(
        [&](const core::LockRecord& lr) { mark_object(lr.obj); });
    // Versioned read sets pin their objects too: commit-time validation
    // dereferences vr.word, which lives in the object's lock array.
    t->txn.read_set().for_each(
        [&](const core::VersionedRead& vr) { mark_object(vr.obj); });
    t->txn.undo_log().for_each([&](const core::UndoEntry& ue) {
      mark_object(ue.obj);
      // Old values of reference slots must stay alive for rollback.
      ManagedObject* old = find_object(reinterpret_cast<void*>(ue.oldValue));
      if (old) mark_object(old);
    });
    t->txn.init_log().for_each([&](ManagedObject* o) { mark_object(o); });
    // Thread-local cells may hold references.
    for (uint64_t v : t->txLocalSlots) {
      ManagedObject* o = find_object(reinterpret_cast<void*>(v));
      if (o) mark_object(o);
    }
    std::vector<ManagedObject*> rr;
    for (const core::TxResource* r : t->txn.resources()) r->collect_roots(rr);
    for (ManagedObject* o : rr) mark_object(o);
    if (t->waitingObj) mark_object(t->waitingObj);
  });

  // 3. Parking-lot waiter bindings: every parked node pins the object
  // whose lock word it waits on (nodes live on waiter stacks, but the
  // boundObj reference must keep the object — and its lock word — alive
  // independently of whether the waiter's own stack scan finds it).
  core::ParkingLot::instance().for_each_bound(
      [&](runtime::ManagedObject* o) { mark_object(o); });

  // Drain.
  while (!markStack_.empty()) {
    ManagedObject* o = markStack_.back();
    markStack_.pop_back();
    trace(o);
  }
}

void Heap::sweep() {
  stats_.liveBytes = 0;
  stats_.liveObjects = 0;
  std::vector<Chunk*> keep;
  keep.reserve(allChunks_.size());
  for (Chunk* c : allChunks_) {
    const size_t limit = c->bump;
    bool anyLive = false;
    for (size_t w = 0; w < Chunk::kBitmapWords; w++) {
      uint64_t bits = c->startBits[w];
      while (bits) {
        const int bit = __builtin_ctzll(bits);
        bits &= bits - 1;
        const size_t off = (w * 64 + static_cast<size_t>(bit)) * Chunk::kGranule;
        if (off >= limit) break;
        auto* o = reinterpret_cast<ManagedObject*>(c->base + off);
        if (o->marked()) {
          o->clear_mark();
          anyLive = true;
          stats_.liveBytes += o->h.sizeBytes;
          stats_.liveObjects++;
        } else {
          release_locks(o);
          c->clear_start(off);
          const size_t size = o->h.sizeBytes;
          if (!c->large) {
            if (size <= kMaxSmallClass)
              smallFree_[size / 16].push_back(c->base + off);
            else
              midFree_[size].push_back(c->base + off);
          }
        }
      }
    }
    if (c->large && !anyLive) {
      for (size_t off = 0; off < c->byteSize; off += Chunk::kSize)
        chunks_.erase((reinterpret_cast<uintptr_t>(c->base) + off) >> Chunk::kSizeLog2);
      std::free(c->base);
      delete c;
      continue;
    }
    keep.push_back(c);
  }
  allChunks_.swap(keep);
}

}  // namespace sbd::runtime
