// Managed instance layout — Figure 4(a) of the paper.
//
//   +-----------------+
//   | header (class,  |
//   |  size, flags)   |
//   +-----------------+
//   | locks  ---------+--> lazily allocated array of 64-bit lock words,
//   +-----------------+    one per non-final field / array element group
//   | slot 0          |
//   | slot 1          |
//   | ...             |
//   +-----------------+
//
// locks == nullptr  : instance is new in the current transaction —
//                     accesses need no locking, only the null check.
// locks == kUnalloc : instance escaped its creating transaction but no
//                     lock structure has been needed yet (lazy alloc).
// otherwise         : pointer to the lock-word array.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/fwd.h"
#include "runtime/class_info.h"

namespace sbd::runtime {

// Sentinel for "escaped but lock structures not yet allocated".
// A constant non-null, non-dereferenceable pointer (paper Fig. 5).
inline core::LockWord* const kUnalloc = reinterpret_cast<core::LockWord*>(0x8);

inline constexpr uint32_t kFlagMark = 1u << 0;
// Byte arrays: one lock word per 8 data bytes, so the lock granule and
// the 8-byte undo granule coincide (a coarser stride would need
// multi-word undo logging on repeat writes under an owned lock).
inline constexpr uint32_t kI8LockStride = 8;

struct ObjHeader {
  ClassInfo* cls;
  uint32_t sizeBytes;  // total allocation size including the header
  uint32_t flags;
};

struct ManagedObject {
  ObjHeader h;
  std::atomic<core::LockWord*> locks;
  // payload follows:
  //   plain object: uint64_t slots[cls->slotCount]
  //   array:        uint64_t length; then elements

  uint64_t* slots() { return reinterpret_cast<uint64_t*>(this + 1); }
  const uint64_t* slots() const { return reinterpret_cast<const uint64_t*>(this + 1); }

  bool is_array() const { return h.cls->isArray; }

  uint64_t array_length() const { return slots()[0]; }
  uint64_t* array_data() { return slots() + 1; }
  const uint64_t* array_data() const { return slots() + 1; }
  int8_t* array_data_i8() { return reinterpret_cast<int8_t*>(slots() + 1); }
  const int8_t* array_data_i8() const {
    return reinterpret_cast<const int8_t*>(slots() + 1);
  }

  bool marked() const { return (h.flags & kFlagMark) != 0; }
  void set_mark() { h.flags |= kFlagMark; }
  void clear_mark() { h.flags &= ~kFlagMark; }
};

static_assert(sizeof(ManagedObject) == 24, "layout assumption of the lock fast path");

// Number of lock words the instance needs when its lock structure is
// materialized: the class's LockMap width over the natural count (one
// per slot; arrays one per element, byte arrays one per 64-byte
// block). Under the default field map this is the natural count.
uint32_t lock_count(const ManagedObject* o);

// Lock-word index covering `slot` (field index or array element
// index): the class's LockMap image of the natural index.
uint32_t lock_index(const ManagedObject* o, uint64_t slot);

// Lazily allocates the lock structure of `o` (paper Fig. 5 step 2).
// Returns the winning pointer; increments the Table 8 "Locks" gauge.
core::LockWord* materialize_locks(ManagedObject* o);

// Called by the STM commit for each init-log entry (§3.3): flips
// locks from nullptr (new in this txn) to kUnalloc (escaped, lazy).
void publish_new_object(ManagedObject* o);

// Frees the lock structure (GC sweep); adjusts the gauge.
void release_locks(ManagedObject* o);

}  // namespace sbd::runtime
