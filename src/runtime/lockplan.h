// Lock-granularity planning — the policy side of the LockMap seam.
//
// The paper hard-wires one lock per field (Fig. 4). This layer decides,
// per class, which LockMap the instances use, from three sources:
//
//   1. SBD_LOCK_GRANULARITY=field|striped:<k>|object|versioned|adaptive
//      — the process-wide mode, parsed once. Fixed modes apply their
//      map at class registration and never change it; `field` (the
//      default) is bit-for-bit the pre-LockMap behaviour; `versioned`
//      runs every class on the invisible-reader protocol (per-word
//      version stamps, commit-time read validation).
//   2. set_lock_granularity() — a per-class pin from user code.
//   3. The adaptive controller: a background thread that periodically
//      coarsens cold classes (fewer lock words -> fewer acquire/release
//      pairs, "On the Cost of Concurrency in TM"'s uncontended-cost
//      argument), reverts classes that show contention back to field
//      granularity using ClassInfo::contentionEvents as the signal, and
//      promotes contended-but-read-mostly, deadlock-free classes to the
//      versioned map (scorching back to field on version-abort storms).
//
// Re-plan safety: a map change swaps the width and indexing of every
// instance's lock array, so it happens only under stop-the-world, and
// only for classes with no live lock state (see replan_now below). The
// Fig. 5 fast path is preserved untouched: mutators poll *before*
// loading the locks pointer, so the load-to-use window contains no
// safepoint and no mutator can ever act on a mixed map.
#pragma once

#include <cstdint>

#include "runtime/class_info.h"

namespace sbd::runtime {

// User-facing granularity names (re-exported by api/sbd.h).
enum class LockGranularity : uint8_t { kField, kStriped, kObject, kVersioned };

namespace lockplan {

enum class Mode : uint8_t { kField, kStriped, kObject, kAdaptive, kVersioned };

// Process-wide mode from SBD_LOCK_GRANULARITY (parsed once, cached).
Mode mode();
const char* mode_name();
uint32_t mode_stripes();  // <k> of striped:<k> (default 4)

// The map a freshly registered class starts with under mode().
// Adaptive starts at field (faithful) and coarsens from data.
LockMap initial_map();

LockMap make_map(LockGranularity g, uint32_t stripes);

// register_class()/array_class() hook: applies initial_map() and, in
// adaptive mode, lazily starts the controller thread.
void on_class_registered(ClassInfo* ci);

// Pins `ci` to `m` and applies it (stop-the-world if needed). Returns
// false if the change was vetoed by live lock state; the pin sticks
// either way, and in adaptive mode the controller retries each cycle.
bool set_class_map(ClassInfo* ci, LockMap m);

// Preference for the adaptive controller's cold-class coarsening (used
// instead of the default `object` map). No effect under fixed modes.
void hint_class_map(ClassInfo* ci, LockMap m);

// Contention signal from the contended-acquire slow path. `wantWrite`
// splits the per-class counters the adaptive versioned promotion needs
// (read-mostly classes are the invisible-reader win case).
void note_contention(ManagedObject* obj, bool wantWrite = false);

// Deadlock-resolution signal (Dreadlocks victim chosen on a queue bound
// to `obj`). A class that has EVER deadlocked is never promoted to the
// versioned map: versioned words bypass the detector entirely, so the
// promotion must not hide cycles the workload actually produces.
void note_deadlock(ManagedObject* obj);

// One decision + apply cycle; returns how many class maps changed.
// The controller calls this periodically; tests call it directly.
// Skipped (returns 0) while core::degrade::replan_quarantined().
uint64_t replan_now();

// --- Re-plan wedge recovery -------------------------------------------------
// A re-plan stops the world; a mutator that never reaches a safepoint
// would wedge it forever. Every re-plan stop therefore runs under a
// budget (SBD_REPLAN_BUDGET_MS, default 2000ms, 0 = unlimited) and a
// cancel flag the watchdog can raise. An abandoned stop counts as
// `wedged`, feeds core::degrade::note_replan_wedged(), and leaves the
// current lock maps untouched.

// Heartbeat: nanosecond timestamp (now_nanos clock) of when the
// currently-running re-plan cycle began, or 0 when idle. The watchdog
// polls this to spot a wedged stop-the-world.
uint64_t replan_busy_since();

// Raises the cancel flag for the in-flight re-plan (no-op when idle).
// Called by the watchdog once a re-plan exceeds its stall threshold.
void cancel_current_replan();

// Overrides the SBD_REPLAN_BUDGET_MS stop-the-world budget (tests).
// 0 = unlimited (then only cancel_current_replan can unwedge).
void set_replan_budget_nanos(uint64_t nanos);

// Adaptive controller thread lifecycle. start is idempotent; stop
// joins and may be called from atexit teardown.
void start_controller();
void stop_controller();

struct Counters {
  uint64_t cycles = 0;   // replan_now() invocations
  uint64_t replans = 0;  // class maps actually changed
  uint64_t vetoed = 0;   // per-class changes skipped due to live lock state
  uint64_t stops = 0;    // cycles that stopped the world
  uint64_t wedged = 0;   // stop-the-worlds abandoned (timeout or cancel)
};
Counters counters();

}  // namespace lockplan
}  // namespace sbd::runtime
