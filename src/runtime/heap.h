// The managed heap: bump/free-list allocation out of 1 MiB chunks plus
// a conservative stop-the-world mark–sweep collector.
//
// Why conservative: the SBD abort path restores raw stack bytes
// (core/checkpoint.h), so precise root bookkeeping tied to C++ object
// lifetimes would desynchronize on abort. A conservative scan of
// [sp, anchor] per thread — plus the saved checkpoint buffers and
// spilled register files — is oblivious to restores, which is exactly
// what we need. This substitutes for the JVM garbage collector the
// paper assumes (§3.1).
//
// Roots:
//   - every attached thread's stack segment and spilled registers
//   - every section checkpoint's saved stack bytes and register file
//   - class statics objects and explicitly registered globals
//   - per-transaction lock records, undo entries (old reference
//     values!), init logs, resource-held objects, wait records
//   - lock wait-queue bindings
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/fwd.h"
#include "runtime/class_info.h"
#include "runtime/object.h"

namespace sbd::runtime {

struct HeapStats {
  uint64_t liveBytes = 0;        // after the last collection
  uint64_t allocatedBytes = 0;   // cumulative
  uint64_t collections = 0;
  uint64_t liveObjects = 0;
};

class Heap {
 public:
  static Heap& instance();

  // Allocates a plain object of `cls`. Inside a transaction the object
  // is born "new" (locks == nullptr, init-logged); outside (bootstrap
  // code) it is born escaped (locks == kUnalloc).
  ManagedObject* alloc_object(ClassInfo* cls);

  // Allocates an array of `length` elements of `kind`.
  ManagedObject* alloc_array(ElemKind kind, uint64_t length);

  // Statics holder for class registration (pre-transactional).
  ManagedObject* alloc_statics_holder(ClassInfo* cls);

  // Registers/unregisters a global root slot.
  void add_root(ManagedObject** slot);
  void remove_root(ManagedObject** slot);

  // Forces a stop-the-world collection from the calling thread.
  void collect();

  // GC trigger threshold: collect when this many bytes were allocated
  // since the last collection (adapted upward to 2x live size).
  void set_gc_threshold(uint64_t bytes);

  // Attaches the calling thread's stack for conservative scanning;
  // must be called near the top of any non-SBD thread (e.g. main) that
  // holds managed references in locals. SBD threads are attached by
  // their entry trampoline.
  void attach_current_thread_here();

  HeapStats stats();

  // True if `p` points to (possibly into) a live managed object;
  // returns the object start, else nullptr. Used by the GC scan and by
  // tests.
  ManagedObject* find_object(const void* p);

  // Enumerates every allocated object — live or dead-but-unswept (the
  // lock-granularity re-plan must migrate garbage too, so the sweep's
  // release width always matches the map the array was sized under).
  // Caller must have the world stopped.
  void for_each_object(const std::function<void(ManagedObject*)>& fn);

  // Total payload+header size a (cls) instance needs.
  static size_t object_size(const ClassInfo* cls);
  static size_t array_size(ElemKind kind, uint64_t length);

 private:
  Heap();

  struct Chunk {
    static constexpr size_t kSizeLog2 = 20;
    static constexpr size_t kSize = 1ULL << kSizeLog2;  // 1 MiB
    static constexpr size_t kGranule = 16;
    static constexpr size_t kBitmapWords = kSize / kGranule / 64;

    std::byte* base = nullptr;
    size_t bump = 0;         // next free offset (bump area)
    bool large = false;      // single-object chunk (possibly spanning > 1 MiB)
    size_t byteSize = kSize; // actual mapped size (large chunks)
    uint64_t startBits[kBitmapWords] = {};

    void set_start(size_t offset);
    void clear_start(size_t offset);
    bool is_start(size_t offset) const;
    // Largest marked start offset <= offset, or SIZE_MAX.
    size_t find_start_at_or_before(size_t offset) const;
  };

  static constexpr size_t kLargeThreshold = 128 * 1024;
  static constexpr size_t kMaxSmallClass = 2048;  // free lists in 16B classes below this

  ManagedObject* alloc_raw(ClassInfo* cls, size_t size, bool bornEscaped,
                           uint64_t arrayLength, bool isArray);
  std::byte* allocate_block(size_t size);       // heapMu_ must be held
  Chunk* chunk_of(const void* p);               // heapMu_ or stopped world
  void maybe_collect_locked_exit(std::unique_lock<std::mutex>& lk);

  void mark_from_roots();
  void mark_object(ManagedObject* o);
  void trace(ManagedObject* o);
  void scan_words(const void* begin, const void* end);
  void sweep();

  std::mutex heapMu_;
  std::unordered_map<uintptr_t, Chunk*> chunks_;  // key: base >> 20 (per MiB page)
  std::vector<Chunk*> allChunks_;
  Chunk* bumpChunk_ = nullptr;
  std::vector<std::vector<std::byte*>> smallFree_;  // by size class (16B steps)
  std::unordered_map<size_t, std::vector<std::byte*>> midFree_;

  std::vector<ManagedObject**> roots_;
  std::vector<ManagedObject*> markStack_;

  uint64_t gcThreshold_ = 48ULL << 20;
  uint64_t allocatedSinceGc_ = 0;
  HeapStats stats_;
};

// Convenience: attach the calling thread (main, test driver) for
// conservative scanning. Must be invoked in a frame that encloses all
// uses of managed references on this thread.
#define SBD_ATTACH_THREAD() ::sbd::runtime::Heap::instance().attach_current_thread_here()

}  // namespace sbd::runtime
