// Size-classed pool for lock-word arrays (paper Fig. 4(a) "locks").
//
// materialize_locks runs on the access fast path the first time an
// escaped instance is touched (Fig. 5 step 2), and the GC sweep frees
// the array of every dead instance — under churny workloads that is
// one global-allocator round trip per object lifetime. The pool keeps
// freed arrays on per-size-class freelists instead:
//
//   - classes are powers of two from 1 to 1024 lock words; larger
//     arrays (huge arrays' element locks) bypass the pool,
//   - acquire() zeroes the words it hands out (lock words must start
//     free), release() just pushes,
//   - each class is capped; beyond the cap arrays go back to the
//     allocator, so a mass death cannot pin unbounded memory.
//
// Table 8 accounting is unchanged by design: the "Locks" gauge keeps
// counting lock_count(o) * 8 bytes per LIVE materialized instance
// (object.cpp adjusts it on materialize/release); pooled-but-free
// arrays are invisible to the gauge. lock_count is the MAPPED width
// (the class's LockMap), so coarse-grained classes draw smaller size
// classes from the pool and report their real mapped footprint.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/fwd.h"

namespace sbd::runtime {

class LockPool {
 public:
  static LockPool& instance();

  // Returns an array with at least `nWords` zeroed lock words.
  core::LockWord* acquire(uint32_t nWords);

  // Returns an array obtained from acquire(nWords) to the pool.
  void release(core::LockWord* arr, uint32_t nWords);

  struct Stats {
    uint64_t pooledArrays = 0;  // arrays currently parked on freelists
    uint64_t pooledBytes = 0;   // their total class-rounded size
    uint64_t reuses = 0;        // acquires served from a freelist
    uint64_t allocs = 0;        // acquires that hit the allocator
  };
  Stats stats();

  // Frees every parked array (tests and low-memory escape hatch).
  void trim();

 private:
  LockPool() = default;

  static constexpr int kNumClasses = 11;         // 2^0 .. 2^10 words
  static constexpr uint32_t kMaxPooledWords = 1u << (kNumClasses - 1);
  static constexpr size_t kMaxPerClass = 1024;   // freelist length cap

  // Class index for nWords, or -1 when the request bypasses the pool.
  static int class_for(uint32_t nWords);
  static uint32_t class_words(int cls) { return 1u << cls; }

  struct SizeClass {
    std::mutex mu;
    std::vector<core::LockWord*> free;
  };
  SizeClass classes_[kNumClasses];
  std::atomic<uint64_t> reuses_{0};
  std::atomic<uint64_t> allocs_{0};
};

}  // namespace sbd::runtime
