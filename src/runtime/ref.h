// Typed handles over managed objects and the class-definition macros
// that stand in for the paper's bytecode transformer: a benchmark class
// declares its slots once and gets synchronized accessors generated.
//
//   class Account : public sbd::runtime::TypedRef<Account> {
//    public:
//     SBD_CLASS(Account, SBD_SLOT("balance"), SBD_SLOT_REF("owner"))
//     SBD_FIELD_I64(0, balance)
//     SBD_FIELD_REF(1, owner, Person)
//     static Account make() { return alloc(); }
//   };
//
// Handles are raw ManagedObject pointers; the conservative GC sees them
// in stack frames and registers, so no registration is needed.
#pragma once

#include <utility>

#include "runtime/field_access.h"
#include "runtime/heap.h"

namespace sbd::runtime {

template <typename Derived>
class TypedRef {
 public:
  TypedRef() = default;
  explicit TypedRef(ManagedObject* o) : o_(o) {}

  ManagedObject* raw() const { return o_; }
  explicit operator bool() const { return o_ != nullptr; }
  bool operator==(const TypedRef& other) const { return o_ == other.o_; }
  bool operator!=(const TypedRef& other) const { return o_ != other.o_; }
  bool is_null() const { return o_ == nullptr; }

  static Derived alloc() {
    return Derived(Heap::instance().alloc_object(Derived::klass()));
  }
  static Derived from_raw(ManagedObject* o) { return Derived(o); }

 protected:
  ManagedObject* o_ = nullptr;
};

// Typed array views.
class I64Array : public TypedRef<I64Array> {
 public:
  using TypedRef::TypedRef;
  static I64Array make(uint64_t len) {
    return I64Array(Heap::instance().alloc_array(ElemKind::kI64, len));
  }
  uint64_t length() const { return array_length(o_); }
  int64_t get(uint64_t i) const { return static_cast<int64_t>(tx_read_elem(o_, i)); }
  void set(uint64_t i, int64_t v) { tx_write_elem(o_, i, static_cast<uint64_t>(v)); }
  // Cached-context variants for hot loops (one TLS lookup per batch).
  int64_t get(core::ThreadContext& tc, uint64_t i) const {
    return static_cast<int64_t>(tx_read_elem(tc, o_, i));
  }
  void set(core::ThreadContext& tc, uint64_t i, int64_t v) {
    tx_write_elem(tc, o_, i, static_cast<uint64_t>(v));
  }
  void init_set(uint64_t i, int64_t v) { init_write_elem(o_, i, static_cast<uint64_t>(v)); }
  static ClassInfo* klass() { return array_class(ElemKind::kI64); }
};

class F64Array : public TypedRef<F64Array> {
 public:
  using TypedRef::TypedRef;
  static F64Array make(uint64_t len) {
    return F64Array(Heap::instance().alloc_array(ElemKind::kF64, len));
  }
  uint64_t length() const { return array_length(o_); }
  double get(uint64_t i) const {
    const uint64_t bits = tx_read_elem(o_, i);
    double d;
    __builtin_memcpy(&d, &bits, 8);
    return d;
  }
  void set(uint64_t i, double v) {
    uint64_t bits;
    __builtin_memcpy(&bits, &v, 8);
    tx_write_elem(o_, i, bits);
  }
  double get(core::ThreadContext& tc, uint64_t i) const {
    const uint64_t bits = tx_read_elem(tc, o_, i);
    double d;
    __builtin_memcpy(&d, &bits, 8);
    return d;
  }
  void set(core::ThreadContext& tc, uint64_t i, double v) {
    uint64_t bits;
    __builtin_memcpy(&bits, &v, 8);
    tx_write_elem(tc, o_, i, bits);
  }
  static ClassInfo* klass() { return array_class(ElemKind::kF64); }
};

class ByteArray : public TypedRef<ByteArray> {
 public:
  using TypedRef::TypedRef;
  static ByteArray make(uint64_t len) {
    return ByteArray(Heap::instance().alloc_array(ElemKind::kI8, len));
  }
  uint64_t length() const { return array_length(o_); }
  int8_t get(uint64_t i) const { return tx_read_i8(o_, i); }
  void set(uint64_t i, int8_t v) { tx_write_i8(o_, i, v); }
  int8_t get(core::ThreadContext& tc, uint64_t i) const { return tx_read_i8(tc, o_, i); }
  void set(core::ThreadContext& tc, uint64_t i, int8_t v) { tx_write_i8(tc, o_, i, v); }
  void init_set(uint64_t i, int8_t v) { init_write_i8(o_, i, v); }
  static ClassInfo* klass() { return array_class(ElemKind::kI8); }
};

template <typename T>
class RefArray : public TypedRef<RefArray<T>> {
 public:
  using TypedRef<RefArray<T>>::TypedRef;
  static RefArray make(uint64_t len) {
    return RefArray(Heap::instance().alloc_array(ElemKind::kRef, len));
  }
  uint64_t length() const { return array_length(this->o_); }
  T get(uint64_t i) const {
    return T(reinterpret_cast<ManagedObject*>(tx_read_elem(this->o_, i)));
  }
  void set(uint64_t i, T v) {
    tx_write_elem(this->o_, i, reinterpret_cast<uint64_t>(v.raw()));
  }
  T get(core::ThreadContext& tc, uint64_t i) const {
    return T(reinterpret_cast<ManagedObject*>(tx_read_elem(tc, this->o_, i)));
  }
  void set(core::ThreadContext& tc, uint64_t i, T v) {
    tx_write_elem(tc, this->o_, i, reinterpret_cast<uint64_t>(v.raw()));
  }
  void init_set(uint64_t i, T v) {
    init_write_elem(this->o_, i, reinterpret_cast<uint64_t>(v.raw()));
  }
  static ClassInfo* klass() { return array_class(ElemKind::kRef); }
};

// --- Class definition macros -------------------------------------------------

#define SBD_SLOT(nm) \
  ::sbd::runtime::SlotDesc { nm, false, false }
#define SBD_SLOT_REF(nm) \
  ::sbd::runtime::SlotDesc { nm, true, false }
#define SBD_SLOT_FINAL(nm) \
  ::sbd::runtime::SlotDesc { nm, false, true }
#define SBD_SLOT_FINAL_REF(nm) \
  ::sbd::runtime::SlotDesc { nm, true, true }

// Declares the class's metadata singleton. Registration happens on
// first use, before any instance exists.
#define SBD_CLASS(Cls, ...)                                             \
  static ::sbd::runtime::ClassInfo* klass() {                           \
    static ::sbd::runtime::ClassInfo* ci =                              \
        ::sbd::runtime::register_class(#Cls, {__VA_ARGS__});            \
    return ci;                                                          \
  }                                                                     \
  using TypedRef::TypedRef;

#define SBD_CLASS_WITH_STATICS(Cls, slots, staticSlots)                       \
  static ::sbd::runtime::ClassInfo* klass() {                                 \
    static ::sbd::runtime::ClassInfo* ci =                                    \
        ::sbd::runtime::register_class(#Cls, slots, staticSlots);             \
    return ci;                                                                \
  }                                                                           \
  using TypedRef::TypedRef;

// Synchronized accessors per slot kind. Each non-final accessor has a
// cached-context overload taking the caller's ThreadContext&, so hot
// loops pay one TLS lookup per batch instead of one per field access.
#define SBD_FIELD_I64(idx, nm)                                                     \
  int64_t nm() const { return static_cast<int64_t>(::sbd::runtime::tx_read(o_, idx)); } \
  void set_##nm(int64_t v) { ::sbd::runtime::tx_write(o_, idx, static_cast<uint64_t>(v)); } \
  int64_t nm(::sbd::core::ThreadContext& tc) const {                               \
    return static_cast<int64_t>(::sbd::runtime::tx_read(tc, o_, idx));             \
  }                                                                                \
  void set_##nm(::sbd::core::ThreadContext& tc, int64_t v) {                       \
    ::sbd::runtime::tx_write(tc, o_, idx, static_cast<uint64_t>(v));               \
  }                                                                                \
  void init_##nm(int64_t v) { ::sbd::runtime::init_write(o_, idx, static_cast<uint64_t>(v)); }

#define SBD_FIELD_F64(idx, nm)                                       \
  double nm() const {                                                \
    const uint64_t bits = ::sbd::runtime::tx_read(o_, idx);          \
    double d;                                                        \
    __builtin_memcpy(&d, &bits, 8);                                  \
    return d;                                                        \
  }                                                                  \
  void set_##nm(double v) {                                          \
    uint64_t bits;                                                   \
    __builtin_memcpy(&bits, &v, 8);                                  \
    ::sbd::runtime::tx_write(o_, idx, bits);                         \
  }                                                                  \
  double nm(::sbd::core::ThreadContext& tc) const {                  \
    const uint64_t bits = ::sbd::runtime::tx_read(tc, o_, idx);      \
    double d;                                                        \
    __builtin_memcpy(&d, &bits, 8);                                  \
    return d;                                                        \
  }                                                                  \
  void set_##nm(::sbd::core::ThreadContext& tc, double v) {          \
    uint64_t bits;                                                   \
    __builtin_memcpy(&bits, &v, 8);                                  \
    ::sbd::runtime::tx_write(tc, o_, idx, bits);                     \
  }                                                                  \
  void init_##nm(double v) {                                         \
    uint64_t bits;                                                   \
    __builtin_memcpy(&bits, &v, 8);                                  \
    ::sbd::runtime::init_write(o_, idx, bits);                       \
  }

#define SBD_FIELD_REF(idx, nm, RefT)                                            \
  RefT nm() const {                                                             \
    return RefT(reinterpret_cast<::sbd::runtime::ManagedObject*>(               \
        ::sbd::runtime::tx_read(o_, idx)));                                     \
  }                                                                             \
  void set_##nm(RefT v) {                                                       \
    ::sbd::runtime::tx_write(o_, idx, reinterpret_cast<uint64_t>(v.raw()));     \
  }                                                                             \
  RefT nm(::sbd::core::ThreadContext& tc) const {                               \
    return RefT(reinterpret_cast<::sbd::runtime::ManagedObject*>(               \
        ::sbd::runtime::tx_read(tc, o_, idx)));                                 \
  }                                                                             \
  void set_##nm(::sbd::core::ThreadContext& tc, RefT v) {                       \
    ::sbd::runtime::tx_write(tc, o_, idx, reinterpret_cast<uint64_t>(v.raw())); \
  }                                                                             \
  void init_##nm(RefT v) {                                                      \
    ::sbd::runtime::init_write(o_, idx, reinterpret_cast<uint64_t>(v.raw()));   \
  }

#define SBD_FIELD_FINAL_I64(idx, nm)                                                 \
  int64_t nm() const { return static_cast<int64_t>(::sbd::runtime::read_final(o_, idx)); } \
  void init_##nm(int64_t v) { ::sbd::runtime::init_write(o_, idx, static_cast<uint64_t>(v)); }

#define SBD_FIELD_FINAL_REF(idx, nm, RefT)                                      \
  RefT nm() const {                                                             \
    return RefT(reinterpret_cast<::sbd::runtime::ManagedObject*>(               \
        ::sbd::runtime::read_final(o_, idx)));                                  \
  }                                                                             \
  void init_##nm(RefT v) {                                                      \
    ::sbd::runtime::init_write(o_, idx, reinterpret_cast<uint64_t>(v.raw()));   \
  }

// A global root holding a managed reference across GC (for statics-like
// globals in examples/benchmarks that are not class statics).
template <typename T>
class GlobalRoot {
 public:
  GlobalRoot() { Heap::instance().add_root(&obj_); }
  ~GlobalRoot() { Heap::instance().remove_root(&obj_); }
  GlobalRoot(const GlobalRoot&) = delete;
  GlobalRoot& operator=(const GlobalRoot&) = delete;

  T get() const { return T(obj_); }
  void set(T v) { obj_ = v.raw(); }

 private:
  ManagedObject* obj_ = nullptr;
};

}  // namespace sbd::runtime
