// The synchronized field/array-element access fast path — the C++
// rendering of the paper's Figure 5 locking operation, with the Table 1
// synchronization matrix:
//
//   access type                         check  lock  undo
//   non-final field / array element       x      x     x
//   final field                           -      -     -
//   new (this-txn) field / element        x      -     -
//   local variable (canSplit)             -      -     x   (via checkpoint)
//   local variable (no canSplit)          -      -     -
//
// Steps (Fig. 5): (1) locks == nullptr -> instance is new, access
// directly; (2) locks == UNALLOC -> lazily materialize the lock array;
// (3) lock word & txn mask != 0 -> already owned; (4) otherwise acquire
// (CAS fast path, fair queue slow path) and log undo on writes.
//
// Every accessor comes in two forms: the primary one takes the caller's
// cached ThreadContext& (one tls_context() per operation batch, the way
// the paper's JIT pins the environment pointer in a register), and a
// thin compatibility wrapper that resolves the TLS itself.
#pragma once

#include "common/check.h"
#include "core/lockword.h"
#include "core/transaction.h"
#include "runtime/object.h"

namespace sbd::runtime {

namespace detail {

// Periodic GC-cooperation poll folded into the access fast path (the
// JVM the paper builds on has the same polls emitted by its JIT).
inline void maybe_poll(core::ThreadContext& tc) {
  if (tc.pollCountdown-- == 0) {
    tc.pollCountdown = 8192;
    core::Safepoint::poll(tc);
  }
}

// Fig. 5 step 2: lazily materialize the lock array if `lp` (the loaded
// locks pointer) still says UNALLOC. Shared by the read and write paths.
inline core::LockWord* locks_or_materialize(core::ThreadContext& tc, ManagedObject* o,
                                            core::LockWord* lp) {
  if (lp == kUnalloc) {
    tc.stats.lockInit++;
    lp = materialize_locks(o);
  }
  return lp;
}

}  // namespace detail

// Ensures the current transaction may read `slot` of `o` (Fig. 5 path).
// Returns after the read lock is held (or no lock is needed).
inline void tx_lock_read(core::ThreadContext& tc, ManagedObject* o, uint64_t slot) {
  detail::maybe_poll(tc);
  if (!tc.txn.active()) return;  // bootstrap / teardown code
  core::LockWord* lp = o->locks.load(std::memory_order_acquire);
  if (lp == nullptr) {  // (1) new in this transaction
    tc.stats.checkNew++;
    return;
  }
  lp = detail::locks_or_materialize(tc, o, lp);  // (2)
  core::LockWord* word = lp + lock_index(o, slot);
  const core::LockWord w =
      reinterpret_cast<std::atomic<core::LockWord>*>(word)->load(std::memory_order_acquire);
  if (core::is_member(w, tc.txn.mask())) {  // (3) already locked by us
    tc.stats.checkOwned++;
    return;
  }
  core::LockEngine::acquire_read(tc, o, word);  // (4) acquire or enqueue
}

// Ensures a write lock on `slot` of `o` and logs the old value for the
// eager undo log. Call before the store.
inline void tx_lock_write(core::ThreadContext& tc, ManagedObject* o, uint64_t slot,
                          uint64_t* valueSlot) {
  detail::maybe_poll(tc);
  if (!tc.txn.active()) return;
  core::LockWord* lp = o->locks.load(std::memory_order_acquire);
  if (lp == nullptr) {
    tc.stats.checkNew++;
    return;  // new instance: no locking, no undo (discarded on abort)
  }
  lp = detail::locks_or_materialize(tc, o, lp);  // (2)
  core::LockWord* word = lp + lock_index(o, slot);
  const core::LockWord w =
      reinterpret_cast<std::atomic<core::LockWord>*>(word)->load(std::memory_order_acquire);
  if (core::is_member(w, tc.txn.mask()) && core::has_writer(w)) {
    tc.stats.checkOwned++;
    // Identity map: an owned write lock implies THIS slot's old value
    // was logged when the lock was acquired. Coarse maps break that
    // implication (the word covers several slots), so log the slot on
    // every owned hit — duplicates are safe, the undo replay is
    // newest-first and re-applies the oldest value last.
    if (!o->h.cls->lock_map().identity()) tc.txn.log_undo(o, valueSlot, *valueSlot);
    return;
  }
  core::LockEngine::acquire_write(tc, o, word);
  tc.txn.log_undo(o, valueSlot, *valueSlot);
}

// --- Field access -----------------------------------------------------------

inline uint64_t tx_read(core::ThreadContext& tc, ManagedObject* o, uint32_t slot) {
  SBD_DCHECK(!o->is_array() && slot < o->h.cls->slotCount);
  SBD_DCHECK(!o->h.cls->slot_is_final(slot));
  tx_lock_read(tc, o, slot);
  return o->slots()[slot];
}

inline void tx_write(core::ThreadContext& tc, ManagedObject* o, uint32_t slot,
                     uint64_t v) {
  SBD_DCHECK(!o->is_array() && slot < o->h.cls->slotCount);
  SBD_DCHECK(!o->h.cls->slot_is_final(slot));
  tx_lock_write(tc, o, slot, &o->slots()[slot]);
  o->slots()[slot] = v;
}

inline uint64_t tx_read(ManagedObject* o, uint32_t slot) {
  return tx_read(core::tls_context(), o, slot);
}

inline void tx_write(ManagedObject* o, uint32_t slot, uint64_t v) {
  tx_write(core::tls_context(), o, slot, v);
}

// Final fields: initialized in the constructor (which cannot split), so
// other transactions only ever see the initialized value — no
// synchronization (Table 1).
inline uint64_t read_final(const ManagedObject* o, uint32_t slot) {
  SBD_DCHECK(o->h.cls->slot_is_final(slot));
  return o->slots()[slot];
}

// Constructor-time initialization: the instance must be new in the
// current transaction (or pre-transactional bootstrap).
inline void init_write(ManagedObject* o, uint32_t slot, uint64_t v) {
  SBD_DCHECK(o->locks.load(std::memory_order_relaxed) == nullptr ||
             !core::tls_context().txn.active());
  o->slots()[slot] = v;
}

// --- Array element access ----------------------------------------------------

inline uint64_t tx_read_elem(core::ThreadContext& tc, ManagedObject* a, uint64_t idx) {
  SBD_DCHECK(a->is_array() && idx < a->array_length());
  tx_lock_read(tc, a, idx);
  return a->array_data()[idx];
}

inline void tx_write_elem(core::ThreadContext& tc, ManagedObject* a, uint64_t idx,
                          uint64_t v) {
  SBD_DCHECK(a->is_array() && idx < a->array_length());
  tx_lock_write(tc, a, idx, &a->array_data()[idx]);
  a->array_data()[idx] = v;
}

inline uint64_t tx_read_elem(ManagedObject* a, uint64_t idx) {
  return tx_read_elem(core::tls_context(), a, idx);
}

inline void tx_write_elem(ManagedObject* a, uint64_t idx, uint64_t v) {
  tx_write_elem(core::tls_context(), a, idx, v);
}

inline int8_t tx_read_i8(core::ThreadContext& tc, ManagedObject* a, uint64_t idx) {
  SBD_DCHECK(a->is_array() && a->h.cls->elemKind == ElemKind::kI8 &&
             idx < a->array_length());
  tx_lock_read(tc, a, idx);
  return a->array_data_i8()[idx];
}

// Byte arrays share one lock word per 64-byte block, so undo logging is
// done at 8-byte granularity on the containing word.
inline void tx_write_i8(core::ThreadContext& tc, ManagedObject* a, uint64_t idx,
                        int8_t v) {
  SBD_DCHECK(a->is_array() && a->h.cls->elemKind == ElemKind::kI8 &&
             idx < a->array_length());
  uint64_t* wordSlot = a->array_data() + idx / 8;
  tx_lock_write(tc, a, idx, wordSlot);
  a->array_data_i8()[idx] = v;
}

inline int8_t tx_read_i8(ManagedObject* a, uint64_t idx) {
  return tx_read_i8(core::tls_context(), a, idx);
}

inline void tx_write_i8(ManagedObject* a, uint64_t idx, int8_t v) {
  tx_write_i8(core::tls_context(), a, idx, v);
}

inline void init_write_elem(ManagedObject* a, uint64_t idx, uint64_t v) {
  SBD_DCHECK(a->locks.load(std::memory_order_relaxed) == nullptr ||
             !core::tls_context().txn.active());
  a->array_data()[idx] = v;
}

inline void init_write_i8(ManagedObject* a, uint64_t idx, int8_t v) {
  SBD_DCHECK(a->locks.load(std::memory_order_relaxed) == nullptr ||
             !core::tls_context().txn.active());
  a->array_data_i8()[idx] = v;
}

// Array length is immutable, like a final field.
inline uint64_t array_length(const ManagedObject* a) { return a->array_length(); }

}  // namespace sbd::runtime
