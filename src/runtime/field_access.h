// The synchronized field/array-element access fast path — the C++
// rendering of the paper's Figure 5 locking operation, with the Table 1
// synchronization matrix:
//
//   access type                         check  lock  undo
//   non-final field / array element       x      x     x
//   final field                           -      -     -
//   new (this-txn) field / element        x      -     -
//   local variable (canSplit)             -      -     x   (via checkpoint)
//   local variable (no canSplit)          -      -     -
//
// Steps (Fig. 5): (1) locks == nullptr -> instance is new, access
// directly; (2) locks == UNALLOC -> lazily materialize the lock array;
// (3) lock word & txn mask != 0 -> already owned; (4) otherwise acquire
// (CAS fast path, fair queue slow path) and log undo on writes.
//
// Every accessor comes in two forms: the primary one takes the caller's
// cached ThreadContext& (one tls_context() per operation batch, the way
// the paper's JIT pins the environment pointer in a register), and a
// thin compatibility wrapper that resolves the TLS itself.
#pragma once

#include <cstring>

#include "common/check.h"
#include "core/lockword.h"
#include "core/transaction.h"
#include "runtime/object.h"

namespace sbd::runtime {

namespace detail {

// Periodic GC-cooperation poll folded into the access fast path (the
// JVM the paper builds on has the same polls emitted by its JIT).
inline void maybe_poll(core::ThreadContext& tc) {
  if (tc.pollCountdown-- == 0) {
    tc.pollCountdown = 8192;
    core::Safepoint::poll(tc);
  }
}

// Fig. 5 step 2: lazily materialize the lock array if `lp` (the loaded
// locks pointer) still says UNALLOC. Shared by the read and write paths.
inline core::LockWord* locks_or_materialize(core::ThreadContext& tc, ManagedObject* o,
                                            core::LockWord* lp) {
  if (lp == kUnalloc) {
    tc.stats.lockInit++;
    lp = materialize_locks(o);
  }
  return lp;
}

// --- Versioned (invisible-reader) access, LockMap::kVersioned ----------
// The stamp granule is the natural index (identity width), so every
// stamp word covers exactly one 64-bit data word: a field slot, an
// array element, or an 8-byte byte-array block (kI8LockStride == 8).
// All data accesses go through std::atomic (relaxed): an invisible
// reader's load may physically overlap a locked writer's store — the
// seqlock re-check discards such values, but the accesses themselves
// must be data-race-free.

// The 64-bit data word covered by natural index `slot`.
inline const uint64_t* covered_word(ManagedObject* o, uint64_t slot) {
  if (!o->is_array()) return &o->slots()[slot];
  if (o->h.cls->elemKind == ElemKind::kI8) return o->array_data() + slot / kI8LockStride;
  return o->array_data() + slot;
}

// Versioned maps are identity by construction (one stamp per natural
// index), so the stamp index skips the generic lock_map() decode that
// lock_index() pays — on the invisible-read fast path that decode and
// its out-of-line call are measurable.
inline uint32_t versioned_lock_index(const ManagedObject* o, uint64_t slot) {
  if (o->h.cls->isArray && o->h.cls->elemKind == ElemKind::kI8)
    return static_cast<uint32_t>(slot / kI8LockStride);
  return static_cast<uint32_t>(slot);
}

// Invisible read of the covered word: load stamp, load value, fence,
// re-check stamp, append to the read set (validated at split/commit).
// The one-shot seqlock attempt is inlined; a locked or stale stamp, a
// torn re-check, or an inevitable section falls back to the engine,
// which re-runs the protocol from scratch (spin, abort, promote).
inline uint64_t versioned_read_word(core::ThreadContext& tc, ManagedObject* o,
                                    uint64_t slot, const uint64_t* slotPtr) {
  maybe_poll(tc);
  const auto* aslot = reinterpret_cast<const std::atomic<uint64_t>*>(slotPtr);
  if (!tc.txn.active()) return aslot->load(std::memory_order_relaxed);
  core::LockWord* lp = o->locks.load(std::memory_order_acquire);
  if (lp == nullptr) {  // (1) new in this transaction
    tc.stats.checkNew++;
    return aslot->load(std::memory_order_relaxed);
  }
  lp = locks_or_materialize(tc, o, lp);  // (2)
  core::LockWord* word = lp + versioned_lock_index(o, slot);
  auto* aw = reinterpret_cast<std::atomic<core::LockWord>*>(word);
  const core::LockWord v1 = aw->load(std::memory_order_acquire);
  if (!core::version_locked(v1) && core::version_of(v1) <= tc.txn.readVersion_ &&
      !tc.txn.inevitable()) [[likely]] {
    const uint64_t value = aslot->load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (aw->load(std::memory_order_relaxed) == v1) [[likely]] {
      tc.stats.versionedReads++;
      tc.txn.record_versioned_read(o, word, v1);
      return value;
    }
  }
  return core::LockEngine::versioned_read(tc, o, word, aslot);
}

// Exclusive write lock on the covered word + undo log on first
// acquisition. Returns the atomic slot the caller stores through.
inline std::atomic<uint64_t>* versioned_write_word(core::ThreadContext& tc,
                                                   ManagedObject* o, uint64_t slot,
                                                   uint64_t* slotPtr) {
  maybe_poll(tc);
  auto* aslot = reinterpret_cast<std::atomic<uint64_t>*>(slotPtr);
  if (!tc.txn.active()) return aslot;
  core::LockWord* lp = o->locks.load(std::memory_order_acquire);
  if (lp == nullptr) {
    tc.stats.checkNew++;
    return aslot;  // new instance: no locking, no undo
  }
  lp = locks_or_materialize(tc, o, lp);
  core::LockWord* word = lp + versioned_lock_index(o, slot);
  // The stamp granule and the undo granule coincide (one covered word),
  // so only the first acquisition needs to log — owned re-hits are
  // check-only even for byte-array blocks.
  if (core::LockEngine::versioned_acquire_write(tc, o, word))
    tc.txn.log_undo(o, slotPtr, aslot->load(std::memory_order_relaxed));
  return aslot;
}

}  // namespace detail

// Ensures the current transaction may read `slot` of `o` (Fig. 5 path).
// Returns after the read lock is held (or no lock is needed).
inline void tx_lock_read(core::ThreadContext& tc, ManagedObject* o, uint64_t slot) {
  detail::maybe_poll(tc);
  if (!tc.txn.active()) return;  // bootstrap / teardown code
  core::LockWord* lp = o->locks.load(std::memory_order_acquire);
  if (lp == nullptr) {  // (1) new in this transaction
    tc.stats.checkNew++;
    return;
  }
  lp = detail::locks_or_materialize(tc, o, lp);  // (2)
  if (o->h.cls->lock_map().versioned()) {
    // Direct kLock callers (the IL interpreter) follow up with raw
    // non-atomic slot accesses (kGetFNl/kSetFNl) that an invisible
    // read cannot make safe, so a versioned kLock takes the covered
    // word exclusively. Undo is logged even for reads: a later owned
    // write hit then never needs a re-log.
    auto* vs = const_cast<uint64_t*>(detail::covered_word(o, slot));
    if (core::LockEngine::versioned_acquire_write(
            tc, o, lp + detail::versioned_lock_index(o, slot)))
      tc.txn.log_undo(o, vs,
                      reinterpret_cast<std::atomic<uint64_t>*>(vs)->load(
                          std::memory_order_relaxed));
    return;
  }
  core::LockWord* word = lp + lock_index(o, slot);
  const core::LockWord w =
      reinterpret_cast<std::atomic<core::LockWord>*>(word)->load(std::memory_order_acquire);
  if (core::is_member(w, tc.txn.mask())) {  // (3) already locked by us
    tc.stats.checkOwned++;
    return;
  }
  core::LockEngine::acquire_read(tc, o, word);  // (4) acquire or enqueue
}

// Ensures a write lock on `slot` of `o` and logs the old value for the
// eager undo log. Call before the store.
inline void tx_lock_write(core::ThreadContext& tc, ManagedObject* o, uint64_t slot,
                          uint64_t* valueSlot) {
  detail::maybe_poll(tc);
  if (!tc.txn.active()) return;
  core::LockWord* lp = o->locks.load(std::memory_order_acquire);
  if (lp == nullptr) {
    tc.stats.checkNew++;
    return;  // new instance: no locking, no undo (discarded on abort)
  }
  lp = detail::locks_or_materialize(tc, o, lp);  // (2)
  if (o->h.cls->lock_map().versioned()) {
    if (core::LockEngine::versioned_acquire_write(
            tc, o, lp + detail::versioned_lock_index(o, slot)))
      tc.txn.log_undo(o, valueSlot,
                      reinterpret_cast<std::atomic<uint64_t>*>(valueSlot)->load(
                          std::memory_order_relaxed));
    return;
  }
  core::LockWord* word = lp + lock_index(o, slot);
  const core::LockWord w =
      reinterpret_cast<std::atomic<core::LockWord>*>(word)->load(std::memory_order_acquire);
  if (core::is_member(w, tc.txn.mask()) && core::has_writer(w)) {
    tc.stats.checkOwned++;
    // Identity map: an owned write lock implies THIS slot's old value
    // was logged when the lock was acquired. Coarse maps break that
    // implication (the word covers several slots), so log the slot on
    // every owned hit — duplicates are safe, the undo replay is
    // newest-first and re-applies the oldest value last.
    if (!o->h.cls->lock_map().identity()) tc.txn.log_undo(o, valueSlot, *valueSlot);
    return;
  }
  core::LockEngine::acquire_write(tc, o, word);
  tc.txn.log_undo(o, valueSlot, *valueSlot);
}

// --- Field access -----------------------------------------------------------

inline uint64_t tx_read(core::ThreadContext& tc, ManagedObject* o, uint32_t slot) {
  SBD_DCHECK(!o->is_array() && slot < o->h.cls->slotCount);
  SBD_DCHECK(!o->h.cls->slot_is_final(slot));
  if (o->h.cls->lock_map().versioned())
    return detail::versioned_read_word(tc, o, slot, &o->slots()[slot]);
  tx_lock_read(tc, o, slot);
  return o->slots()[slot];
}

inline void tx_write(core::ThreadContext& tc, ManagedObject* o, uint32_t slot,
                     uint64_t v) {
  SBD_DCHECK(!o->is_array() && slot < o->h.cls->slotCount);
  SBD_DCHECK(!o->h.cls->slot_is_final(slot));
  if (o->h.cls->lock_map().versioned()) {
    detail::versioned_write_word(tc, o, slot, &o->slots()[slot])
        ->store(v, std::memory_order_relaxed);
    return;
  }
  tx_lock_write(tc, o, slot, &o->slots()[slot]);
  o->slots()[slot] = v;
}

inline uint64_t tx_read(ManagedObject* o, uint32_t slot) {
  return tx_read(core::tls_context(), o, slot);
}

inline void tx_write(ManagedObject* o, uint32_t slot, uint64_t v) {
  tx_write(core::tls_context(), o, slot, v);
}

// Final fields: initialized in the constructor (which cannot split), so
// other transactions only ever see the initialized value — no
// synchronization (Table 1).
inline uint64_t read_final(const ManagedObject* o, uint32_t slot) {
  SBD_DCHECK(o->h.cls->slot_is_final(slot));
  return o->slots()[slot];
}

// Constructor-time initialization: the instance must be new in the
// current transaction (or pre-transactional bootstrap).
inline void init_write(ManagedObject* o, uint32_t slot, uint64_t v) {
  SBD_DCHECK(o->locks.load(std::memory_order_relaxed) == nullptr ||
             !core::tls_context().txn.active());
  o->slots()[slot] = v;
}

// --- Array element access ----------------------------------------------------

inline uint64_t tx_read_elem(core::ThreadContext& tc, ManagedObject* a, uint64_t idx) {
  SBD_DCHECK(a->is_array() && idx < a->array_length());
  if (a->h.cls->lock_map().versioned())
    return detail::versioned_read_word(tc, a, idx, &a->array_data()[idx]);
  tx_lock_read(tc, a, idx);
  return a->array_data()[idx];
}

inline void tx_write_elem(core::ThreadContext& tc, ManagedObject* a, uint64_t idx,
                          uint64_t v) {
  SBD_DCHECK(a->is_array() && idx < a->array_length());
  if (a->h.cls->lock_map().versioned()) {
    detail::versioned_write_word(tc, a, idx, &a->array_data()[idx])
        ->store(v, std::memory_order_relaxed);
    return;
  }
  tx_lock_write(tc, a, idx, &a->array_data()[idx]);
  a->array_data()[idx] = v;
}

inline uint64_t tx_read_elem(ManagedObject* a, uint64_t idx) {
  return tx_read_elem(core::tls_context(), a, idx);
}

inline void tx_write_elem(ManagedObject* a, uint64_t idx, uint64_t v) {
  tx_write_elem(core::tls_context(), a, idx, v);
}

inline int8_t tx_read_i8(core::ThreadContext& tc, ManagedObject* a, uint64_t idx) {
  SBD_DCHECK(a->is_array() && a->h.cls->elemKind == ElemKind::kI8 &&
             idx < a->array_length());
  if (a->h.cls->lock_map().versioned()) {
    // The validated value is the whole covered 64-bit word; extract the
    // byte from the local copy (memcpy reproduces memory byte order, so
    // this matches array_data_i8()[idx] on any endianness).
    const uint64_t w = detail::versioned_read_word(
        tc, a, idx, a->array_data() + idx / kI8LockStride);
    int8_t b;
    std::memcpy(&b, reinterpret_cast<const char*>(&w) + (idx % kI8LockStride), 1);
    return b;
  }
  tx_lock_read(tc, a, idx);
  return a->array_data_i8()[idx];
}

// Byte arrays share one lock word per 64-byte block, so undo logging is
// done at 8-byte granularity on the containing word.
inline void tx_write_i8(core::ThreadContext& tc, ManagedObject* a, uint64_t idx,
                        int8_t v) {
  SBD_DCHECK(a->is_array() && a->h.cls->elemKind == ElemKind::kI8 &&
             idx < a->array_length());
  uint64_t* wordSlot = a->array_data() + idx / 8;
  if (a->h.cls->lock_map().versioned()) {
    // Exclusive lock + undo on the containing word; then a byte-wide
    // atomic store (invisible readers load the word atomically, so the
    // store must be atomic too — the mixed widths are fine, readers
    // that overlap it are discarded by their seqlock re-check).
    detail::versioned_write_word(tc, a, idx, wordSlot);
    reinterpret_cast<std::atomic<int8_t>*>(a->array_data_i8() + idx)
        ->store(v, std::memory_order_relaxed);
    return;
  }
  tx_lock_write(tc, a, idx, wordSlot);
  a->array_data_i8()[idx] = v;
}

inline int8_t tx_read_i8(ManagedObject* a, uint64_t idx) {
  return tx_read_i8(core::tls_context(), a, idx);
}

inline void tx_write_i8(ManagedObject* a, uint64_t idx, int8_t v) {
  tx_write_i8(core::tls_context(), a, idx, v);
}

inline void init_write_elem(ManagedObject* a, uint64_t idx, uint64_t v) {
  SBD_DCHECK(a->locks.load(std::memory_order_relaxed) == nullptr ||
             !core::tls_context().txn.active());
  a->array_data()[idx] = v;
}

inline void init_write_i8(ManagedObject* a, uint64_t idx, int8_t v) {
  SBD_DCHECK(a->locks.load(std::memory_order_relaxed) == nullptr ||
             !core::tls_context().txn.active());
  a->array_data_i8()[idx] = v;
}

// Array length is immutable, like a final field.
inline uint64_t array_length(const ManagedObject* a) { return a->array_length(); }

}  // namespace sbd::runtime
