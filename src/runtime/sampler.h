// The paper's §5.5 memory-measurement methodology: "a separate thread
// triggers a GC run every 50 ms. The thread samples the memory usage
// after each GC run. The reported numbers are the average of the
// samples."
//
// MemorySampler runs that thread: each tick it forces a collection and
// records the live heap plus the SBD-specific gauges; stop() returns
// the averaged samples for the Table 8 columns.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace sbd::runtime {

struct MemorySample {
  uint64_t liveHeapBytes = 0;
  uint64_t lockStructBytes = 0;
  uint64_t versionWordBytes = 0;
};

struct MemoryAverages {
  double liveHeapBytes = 0;
  double lockStructBytes = 0;
  double versionWordBytes = 0;  // stamp arrays (versioned granularity)
  uint64_t samples = 0;
  uint64_t collections = 0;
};

class MemorySampler {
 public:
  explicit MemorySampler(int intervalMs = 50) : intervalMs_(intervalMs) {}
  ~MemorySampler() { stop(); }
  MemorySampler(const MemorySampler&) = delete;
  MemorySampler& operator=(const MemorySampler&) = delete;

  // Starts the sampling thread. The sampled workload must only block
  // through SBD-provided waits (the GC stops the world each tick).
  void start();

  // Stops the thread and returns the averages over all samples.
  MemoryAverages stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void run();

  int intervalMs_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopRequested_{false};
  std::thread thread_;
  // Accumulated under the sampler thread only.
  uint64_t sumHeap_ = 0;
  uint64_t sumLocks_ = 0;
  uint64_t sumStamps_ = 0;
  uint64_t samples_ = 0;
  uint64_t collections_ = 0;
};

}  // namespace sbd::runtime
