#include "runtime/lockplan.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/timing.h"
#include "core/degrade.h"
#include "core/fault.h"
#include "core/stats.h"
#include "core/transaction.h"
#include "runtime/heap.h"
#include "runtime/lockpool.h"
#include "runtime/object.h"

namespace sbd::runtime::lockplan {

namespace {

struct Config {
  Mode mode = Mode::kField;
  uint32_t stripes = 4;
};

Config parse_env() {
  Config cfg;
  const char* e = std::getenv("SBD_LOCK_GRANULARITY");
  if (!e || !*e) return cfg;
  const std::string s(e);
  if (s == "field") {
    cfg.mode = Mode::kField;
  } else if (s == "object") {
    cfg.mode = Mode::kObject;
  } else if (s == "versioned") {
    cfg.mode = Mode::kVersioned;
  } else if (s == "adaptive") {
    cfg.mode = Mode::kAdaptive;
  } else if (s.rfind("striped", 0) == 0) {
    cfg.mode = Mode::kStriped;
    const auto colon = s.find(':');
    if (colon != std::string::npos) {
      const long k = std::strtol(s.c_str() + colon + 1, nullptr, 10);
      if (k >= 1 && k <= (1 << 20)) cfg.stripes = static_cast<uint32_t>(k);
    }
  } else {
    std::fprintf(stderr, "sbd: unknown SBD_LOCK_GRANULARITY '%s'; using field\n", e);
  }
  return cfg;
}

const Config& config() {
  static const Config cfg = parse_env();
  return cfg;
}

uint64_t interval_ms() {
  static const uint64_t v = [] {
    const char* e = std::getenv("SBD_LOCKPLAN_INTERVAL_MS");
    const long x = e ? std::strtol(e, nullptr, 10) : 0;
    return x > 0 ? static_cast<uint64_t>(x) : uint64_t{10};
  }();
  return v;
}

std::atomic<uint64_t> gCycles{0};
std::atomic<uint64_t> gReplans{0};
std::atomic<uint64_t> gVetoed{0};
std::atomic<uint64_t> gStops{0};
std::atomic<uint64_t> gWedged{0};

// Wedge-recovery state: the heartbeat the watchdog polls, the cancel
// flag it raises, and the stop-the-world budget.
std::atomic<uint64_t> gReplanBusySince{0};
std::atomic<bool> gReplanCancel{false};
std::atomic<uint64_t> gReplanBudgetNanos{[] {
  const char* e = std::getenv("SBD_REPLAN_BUDGET_MS");
  const long x = e ? std::strtol(e, nullptr, 10) : -1;
  if (x < 0) return uint64_t{2'000'000'000};  // default 2s
  return static_cast<uint64_t>(x) * 1'000'000;
}()};

// RAII heartbeat for one re-plan cycle (scoped under gReplanMu, so at
// most one episode is live). The ctor clears any cancel left over from
// a race with the watchdog cancelling the *previous* episode; a cancel
// that slips in right after only costs one spuriously-skipped cycle.
struct ReplanEpisode {
  ReplanEpisode() {
    gReplanCancel.store(false, std::memory_order_release);
    gReplanBusySince.store(now_nanos(), std::memory_order_release);
  }
  ~ReplanEpisode() { gReplanBusySince.store(0, std::memory_order_release); }
};

// Bounded stop-the-world for a re-plan. False = wedged (budget elapsed
// or watchdog cancel): counted, reported to degrade, maps untouched.
bool stop_world_for_replan(core::ThreadContext& tc) {
  const bool stopped = core::Safepoint::try_stop_world(
      tc, gReplanBudgetNanos.load(std::memory_order_relaxed), &gReplanCancel);
  if (stopped) {
    gStops.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  gWedged.fetch_add(1, std::memory_order_relaxed);
  core::degrade::note_replan_wedged();
  return false;
}

// Serializes re-planners (controller thread, set_class_map, tests).
// Waiters block in a safe region — the holder may be about to stop the
// world, and a waiter that looks "running" would deadlock it.
std::mutex gReplanMu;

// Controller memory, guarded by gReplanMu. "scorched" = the class has
// shown contention at least once; it is reverted to field granularity
// and never re-coarsened (hysteresis against coarsen/revert flapping).
// "versionScorched" = the class stormed version aborts while running
// the versioned map; it is never promoted to versioned again.
struct AdaptState {
  uint64_t lastContention = 0;
  uint64_t lastVersionAborts = 0;
  bool scorched = false;
  bool versionScorched = false;
};
std::unordered_map<ClassInfo*, AdaptState> gAdapt;

// Versioned-promotion thresholds: a class is "read-mostly" once its
// contended reads clear a floor AND outnumber contended writes 4:1; a
// versioned class that burns this many validation/stale aborts in one
// controller cycle is losing more work than invisible readers save.
constexpr uint64_t kReadMostlyFloor = 16;
constexpr uint64_t kReadMostlyRatio = 4;
constexpr uint64_t kVersionAbortStormPerCycle = 128;

std::unique_lock<std::mutex> lock_replan_safely(core::ThreadContext& tc) {
  std::unique_lock<std::mutex> lk(gReplanMu, std::try_to_lock);
  if (!lk.owns_lock()) {
    core::Safepoint::SafeScope safe(tc);
    lk.lock();
  }
  return lk;
}

// The map the adaptive policy wants `ci` at, given its current signal.
LockMap desired_map(ClassInfo* ci, AdaptState& st) {
  const uint64_t hint = ci->lockMapHintBits.load(std::memory_order_relaxed);
  if (ci->lockMapPinned.load(std::memory_order_relaxed))
    return hint != kNoLockHint ? LockMap::from_bits(hint) : ci->lock_map();
  const uint64_t events = ci->contentionEvents.load(std::memory_order_relaxed);
  const uint64_t vAborts = ci->versionAborts.load(std::memory_order_relaxed);
  const bool hot = events != st.lastContention;
  const uint64_t abortDelta = vAborts - st.lastVersionAborts;
  st.lastContention = events;
  st.lastVersionAborts = vAborts;
  if (hot) st.scorched = true;
  // Version-abort storm: invisible readers are re-executing more work
  // than their missing acquire/release pairs save. Scorch back to field
  // granularity and never retry the promotion.
  if (ci->lock_map().versioned() && abortDelta >= kVersionAbortStormPerCycle) {
    st.versionScorched = true;
    return LockMap::field_map();
  }
  if (!st.versionScorched &&
      ci->deadlockEvents.load(std::memory_order_relaxed) == 0) {
    // Sticky: a versioned class that is neither storming nor
    // deadlocking stays versioned (its own write conflicts keep the
    // contention signal "hot", which must not bounce it to field).
    if (ci->lock_map().versioned()) return LockMap::versioned_map();
    // Promotion: contended but read-mostly — the invisible-reader
    // protocol removes the read-side lock traffic entirely.
    const uint64_t reads = ci->contendedReads.load(std::memory_order_relaxed);
    const uint64_t writes = ci->contendedWrites.load(std::memory_order_relaxed);
    if (reads >= kReadMostlyFloor && reads >= kReadMostlyRatio * (writes + 1))
      return LockMap::versioned_map();
  }
  if (st.scorched) return LockMap::field_map();
  if (hint != kNoLockHint) return LockMap::from_bits(hint);
  return LockMap::object_map();
}

struct Candidate {
  LockMap target;
  bool vetoed = false;
  std::vector<ManagedObject*> materialized;
};

// World stopped: veto classes with live lock state, release the
// survivors' lock arrays under the OLD map, then swap the maps. Walks
// every allocated object — including dead-but-unswept garbage — so no
// array sized under the old map outlives the swap; the later sweep
// then releases exactly the width it re-materialized with, keeping the
// Table 8 "Locks" gauge byte-exact across re-plans.
uint64_t apply_stopped(std::unordered_map<ClassInfo*, Candidate>& cand) {
  // Fault site: stretch the veto scan while the world is stopped, so
  // chaos can observe long re-plan pauses (and the watchdog heartbeat).
  if (const uint64_t d = sbd::fault::fire_delay_nanos(sbd::fault::Site::kReplanVeto))
    std::this_thread::sleep_for(std::chrono::nanoseconds(d));
  // Versioned read sets hold raw pointers into lock-word arrays (the
  // invisible reader touches no word, so nothing on the object records
  // its interest). Releasing such an array mid-transaction would leave
  // the parked reader's commit validation chasing pool-recycled memory
  // — veto every candidate class any live read set references.
  core::TxnManager::instance().for_each_thread([&](core::ThreadContext* t) {
    if (!t->txn.active()) return;  // idle threads clear the set on begin
    t->txn.read_set().for_each([&](const core::VersionedRead& vr) {
      auto it = cand.find(vr.obj->h.cls);
      if (it != cand.end()) it->second.vetoed = true;
    });
  });
  Heap::instance().for_each_object([&](ManagedObject* o) {
    auto it = cand.find(o->h.cls);
    if (it == cand.end() || it->second.vetoed) return;
    core::LockWord* lp = o->locks.load(std::memory_order_acquire);
    // nullptr = new in a (parked) transaction, kUnalloc = lazy: neither
    // has lock words to migrate; both materialize under the new map.
    if (lp == nullptr || lp == kUnalloc) return;
    const bool versioned = o->h.cls->lock_map().versioned();
    const uint32_t n = lock_count(o);  // width under the CURRENT map
    for (uint32_t i = 0; i < n; i++) {
      // Any nonzero word — held lock (member bits), writer/upgrader
      // flag, or a bound wait queue (threads parked in slow_acquire
      // leave their queue id in the word) — vetoes the class. Under a
      // versioned map a nonzero word is usually just a version stamp;
      // only the LSB (write-locked) marks live state there.
      const bool live = versioned ? core::version_locked(lp[i]) : lp[i] != 0;
      if (live) {
        it->second.vetoed = true;
        it->second.materialized.clear();
        return;
      }
    }
    it->second.materialized.push_back(o);
  });
  // Fault site: delay between the veto scan and the swap. The world is
  // still stopped, so this cannot invalidate the scan — it only widens
  // the pause the recovery machinery must tolerate.
  if (const uint64_t d = sbd::fault::fire_delay_nanos(sbd::fault::Site::kReplanSwap))
    std::this_thread::sleep_for(std::chrono::nanoseconds(d));
  uint64_t applied = 0;
  for (auto& [ci, c] : cand) {
    if (c.vetoed) {
      gVetoed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    for (ManagedObject* o : c.materialized) release_locks(o);
    ci->lockMapBits.store(c.target.bits(), std::memory_order_relaxed);
    applied++;
  }
  return applied;
}

// --- Controller thread ------------------------------------------------------

std::mutex gCtlMu;
std::thread gCtlThread;
bool gCtlRunning = false;  // guarded by gCtlMu
std::atomic<bool> gCtlStop{false};

void controller_main() {
  // SBD-attached background thread (the MemorySampler pattern): it
  // both requests stop-the-world and must look "safe" to concurrent
  // stoppers (GC, sampler) while it sleeps.
  Heap::instance().attach_current_thread_here();
  core::ThreadContext& tc = core::tls_context();
  while (!gCtlStop.load(std::memory_order_acquire)) {
    replan_now();
    core::Safepoint::SafeScope safe(tc);
    // Sleep in short slices so stop_controller() (atexit) is not held
    // hostage by a long replan interval.
    for (uint64_t slept = 0; slept < interval_ms(); slept += 50) {
      if (gCtlStop.load(std::memory_order_acquire)) break;
      const uint64_t slice = std::min<uint64_t>(50, interval_ms() - slept);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    }
  }
}

}  // namespace

Mode mode() { return config().mode; }

uint32_t mode_stripes() { return config().stripes; }

const char* mode_name() {
  switch (config().mode) {
    case Mode::kField:
      return "field";
    case Mode::kStriped:
      return "striped";
    case Mode::kObject:
      return "object";
    case Mode::kVersioned:
      return "versioned";
    case Mode::kAdaptive:
    default:
      return "adaptive";
  }
}

LockMap initial_map() {
  switch (config().mode) {
    case Mode::kStriped:
      return LockMap::striped_map(config().stripes);
    case Mode::kObject:
      return LockMap::object_map();
    case Mode::kVersioned:
      return LockMap::versioned_map();
    case Mode::kField:
    case Mode::kAdaptive:  // starts faithful; coarsens from data
    default:
      return LockMap::field_map();
  }
}

LockMap make_map(LockGranularity g, uint32_t stripes) {
  switch (g) {
    case LockGranularity::kStriped:
      return LockMap::striped_map(stripes);
    case LockGranularity::kObject:
      return LockMap::object_map();
    case LockGranularity::kVersioned:
      return LockMap::versioned_map();
    case LockGranularity::kField:
    default:
      return LockMap::field_map();
  }
}

void on_class_registered(ClassInfo* ci) {
  // Called before the class is published (no instance can exist yet),
  // so a plain store is enough.
  ci->lockMapBits.store(initial_map().bits(), std::memory_order_relaxed);
  if (config().mode == Mode::kAdaptive) start_controller();
}

void note_contention(ManagedObject* obj, bool wantWrite) {
  ClassInfo* cls = obj->h.cls;
  cls->contentionEvents.fetch_add(1, std::memory_order_relaxed);
  (wantWrite ? cls->contendedWrites : cls->contendedReads)
      .fetch_add(1, std::memory_order_relaxed);
}

void note_deadlock(ManagedObject* obj) {
  if (obj == nullptr) return;
  obj->h.cls->deadlockEvents.fetch_add(1, std::memory_order_relaxed);
}

void hint_class_map(ClassInfo* ci, LockMap m) {
  ci->lockMapHintBits.store(m.bits(), std::memory_order_relaxed);
}

bool set_class_map(ClassInfo* ci, LockMap m) {
  core::ThreadContext& tc = core::tls_context();
  auto lk = lock_replan_safely(tc);
  ci->lockMapPinned.store(true, std::memory_order_relaxed);
  // The hint doubles as the pin target: if the apply below is vetoed,
  // the adaptive controller keeps retrying it each cycle.
  ci->lockMapHintBits.store(m.bits(), std::memory_order_relaxed);
  if (ci->lock_map() == m) return true;
  std::unordered_map<ClassInfo*, Candidate> cand;
  cand[ci].target = m;
  ReplanEpisode episode;
  if (!stop_world_for_replan(tc)) return false;  // wedged: pin retried later
  const uint64_t applied = apply_stopped(cand);
  core::Safepoint::resume_world(tc);
  gReplans.fetch_add(applied, std::memory_order_relaxed);
  return applied == 1;
}

uint64_t replan_now() {
  // Quarantine: repeated wedges mean some mutator reliably never
  // reaches a safepoint — stop burning stop-the-world attempts and run
  // with the lock maps we have.
  if (core::degrade::replan_quarantined()) return 0;
  core::ThreadContext& tc = core::tls_context();
  auto lk = lock_replan_safely(tc);
  gCycles.fetch_add(1, std::memory_order_relaxed);
  // Phase 1 (world running): compute the change set cheaply. The
  // signal may go stale before the stop below — benign, the next
  // cycle reverts any class that turned hot in the window.
  std::unordered_map<ClassInfo*, Candidate> cand;
  const bool adaptive = config().mode == Mode::kAdaptive;
  for_each_class([&](ClassInfo* ci) {
    LockMap want = ci->lock_map();
    if (adaptive) {
      want = desired_map(ci, gAdapt[ci]);
    } else if (ci->lockMapPinned.load(std::memory_order_relaxed)) {
      // Fixed modes re-plan only vetoed set_class_map pins.
      const uint64_t hint = ci->lockMapHintBits.load(std::memory_order_relaxed);
      if (hint != kNoLockHint) want = LockMap::from_bits(hint);
    }
    if (want != ci->lock_map()) cand[ci].target = want;
  });
  if (cand.empty()) return 0;
  // Phase 2: stop the world (bounded), migrate, resume.
  ReplanEpisode episode;
  if (!stop_world_for_replan(tc)) return 0;  // wedged: retried next cycle
  const uint64_t applied = apply_stopped(cand);
  core::Safepoint::resume_world(tc);
  gReplans.fetch_add(applied, std::memory_order_relaxed);
  return applied;
}

Counters counters() {
  Counters c;
  c.cycles = gCycles.load(std::memory_order_relaxed);
  c.replans = gReplans.load(std::memory_order_relaxed);
  c.vetoed = gVetoed.load(std::memory_order_relaxed);
  c.stops = gStops.load(std::memory_order_relaxed);
  c.wedged = gWedged.load(std::memory_order_relaxed);
  return c;
}

uint64_t replan_busy_since() {
  return gReplanBusySince.load(std::memory_order_acquire);
}

void cancel_current_replan() {
  if (gReplanBusySince.load(std::memory_order_acquire) != 0)
    gReplanCancel.store(true, std::memory_order_release);
}

void set_replan_budget_nanos(uint64_t nanos) {
  gReplanBudgetNanos.store(nanos, std::memory_order_relaxed);
}

void start_controller() {
  std::lock_guard<std::mutex> lk(gCtlMu);
  if (gCtlRunning) return;
  // Everything the controller touches must be constructed BEFORE the
  // atexit handler below registers: a function-local singleton
  // constructed later would be destroyed before the handler runs,
  // under the controller's feet.
  (void)core::tls_context();
  (void)Heap::instance();
  (void)core::gauges();
  (void)LockPool::instance();
  gCtlStop.store(false, std::memory_order_release);
  gCtlThread = std::thread(controller_main);
  gCtlRunning = true;
  static const bool atexitOnce = [] {
    std::atexit([] { stop_controller(); });
    return true;
  }();
  (void)atexitOnce;
}

void stop_controller() {
  std::thread t;
  {
    std::lock_guard<std::mutex> lk(gCtlMu);
    if (!gCtlRunning) return;
    gCtlStop.store(true, std::memory_order_release);
    t = std::move(gCtlThread);
    gCtlRunning = false;
  }
  if (core::ThreadContext* tc = core::tls_context_if_present()) {
    // The controller may be stopping the world and waiting for this
    // thread to park — join from a safe region.
    core::Safepoint::SafeScope safe(*tc);
    t.join();
  } else {
    // Process teardown: this thread's context is already destroyed and
    // unregistered, so the controller's stop never waits on us.
    t.join();
  }
}

}  // namespace sbd::runtime::lockplan
