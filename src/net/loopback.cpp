#include "net/loopback.h"

#include <map>

#include "common/check.h"
#include "core/fault.h"

namespace sbd::net {

// ---------------------------------------------------------------------------
// Pipe
// ---------------------------------------------------------------------------

size_t Pipe::read(void* out, size_t n) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !buf_.empty() || writeClosed_; });
  if (buf_.empty()) return 0;  // EOF
  const size_t take = std::min(n, buf_.size());
  auto* p = static_cast<uint8_t*>(out);
  for (size_t i = 0; i < take; i++) {
    p[i] = buf_.front();
    buf_.pop_front();
  }
  cv_.notify_all();  // writers waiting for space
  return take;
}

void Pipe::write(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  size_t written = 0;
  while (written < n) {
    std::function<void()> fire;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return buf_.size() < capacity_ || readClosed_; });
      if (readClosed_) return;  // peer is gone; drop (like EPIPE w/o signal)
      const size_t room = capacity_ - buf_.size();
      const size_t take = std::min(room, n - written);
      buf_.insert(buf_.end(), p + written, p + written + take);
      written += take;
      cv_.notify_all();
      fire = std::move(notify_);  // one-shot: consume the armed edge
      notify_ = nullptr;
    }
    if (fire) fire();  // outside the lock: the callback may take others
  }
}

void Pipe::close_write() {
  std::function<void()> fire;
  {
    std::lock_guard<std::mutex> lk(mu_);
    writeClosed_ = true;
    cv_.notify_all();
    fire = std::move(notify_);  // EOF is a readiness edge too
    notify_ = nullptr;
  }
  if (fire) fire();
}

void Pipe::close_read() {
  std::lock_guard<std::mutex> lk(mu_);
  readClosed_ = true;
  cv_.notify_all();
}

size_t Pipe::available() const {
  std::lock_guard<std::mutex> lk(mu_);
  return buf_.size();
}

bool Pipe::wait_readable() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !buf_.empty() || writeClosed_; });
  return !buf_.empty();
}

void Pipe::arm_notify(std::function<void()> fn) {
  bool fireNow = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!buf_.empty() || writeClosed_) {
      fireNow = true;  // already readable: the edge fires immediately
    } else {
      notify_ = std::move(fn);
    }
  }
  if (fireNow) fn();
}

void Pipe::disarm_notify() {
  std::function<void()> drop;
  {
    std::lock_guard<std::mutex> lk(mu_);
    drop = std::move(notify_);
    notify_ = nullptr;
  }
  // `drop` destroyed outside the lock (its captures may own locks).
}

// ---------------------------------------------------------------------------
// Socket
// ---------------------------------------------------------------------------

void Socket::close() {
  if (out_) out_->close_write();
  if (in_) in_->close_read();
}

// ---------------------------------------------------------------------------
// Listener / Network
// ---------------------------------------------------------------------------

struct Listener::State {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Socket> pending;
  bool closed = false;
};

Socket Listener::accept() {
  std::unique_lock<std::mutex> lk(state_->mu);
  state_->cv.wait(lk, [&] { return !state_->pending.empty() || state_->closed; });
  if (state_->pending.empty()) return Socket();
  Socket s = std::move(state_->pending.front());
  state_->pending.pop_front();
  return s;
}

void Listener::close() {
  std::lock_guard<std::mutex> lk(state_->mu);
  state_->closed = true;
  state_->cv.notify_all();
}

struct Network::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::map<int, std::shared_ptr<Listener::State>> ports;
};

std::shared_ptr<Network::Impl> Network::init() { return std::make_shared<Impl>(); }

Network& Network::instance() {
  static Network* net = new Network();
  return *net;
}

Listener Network::listen(int port) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  SBD_CHECK_MSG(impl_->ports.find(port) == impl_->ports.end() ||
                    impl_->ports[port]->closed,
                "port already bound");
  auto state = std::make_shared<Listener::State>();
  impl_->ports[port] = state;
  impl_->cv.notify_all();
  Listener l;
  l.state_ = state;
  return l;
}

Socket Network::connect(int port, uint64_t timeoutMs) {
  std::shared_ptr<Listener::State> state;
  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->cv.wait_for(lk, std::chrono::milliseconds(timeoutMs), [&] {
      auto it = impl_->ports.find(port);
      return it != impl_->ports.end() && !it->second->closed;
    });
    auto it = impl_->ports.find(port);
    if (it == impl_->ports.end() || it->second->closed) {
      // No listener within the wait: hand back a dead socket (EOF on
      // read, writes dropped) — the same shape as the kSocketReset
      // fault below — so the caller can retry or degrade. The old
      // SBD_CHECK_MSG here turned a peer that was merely slow to bind
      // into a whole-process abort.
      auto* c2s = new Pipe();
      auto* s2c = new Pipe();
      Socket clientEnd(s2c, c2s);
      s2c->close_write();
      c2s->close_read();
      return clientEnd;
    }
    state = it->second;
  }
  // Connection pipes are network-owned (never freed): socket handles
  // must stay trivially destructible for checkpoint-restore safety, so
  // no handle can carry ownership. An in-memory connection costs two
  // drained deques — the moral equivalent of kernel socket buffers.
  auto* c2s = new Pipe();
  auto* s2c = new Pipe();
  // Fault plan: connection reset by peer. The client gets a socket that
  // is already dead — reads see EOF, writes are dropped — and the
  // server never learns the connection existed. Client code must cope
  // with the short read, exactly like a real RST.
  if (fault::should_fire(fault::Site::kSocketReset)) {
    Socket client(s2c, c2s);
    s2c->close_write();
    c2s->close_read();
    return client;
  }
  Socket client(s2c, c2s);
  Socket server(c2s, s2c);
  {
    std::lock_guard<std::mutex> lk(state->mu);
    state->pending.push_back(std::move(server));
    state->cv.notify_all();
  }
  return client;
}

void Network::reset() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (auto& [port, state] : impl_->ports) {
    std::lock_guard<std::mutex> slk(state->mu);
    state->closed = true;
    state->cv.notify_all();
  }
  impl_->ports.clear();
}

}  // namespace sbd::net
