#include "net/http.h"

#include <sstream>

#include "common/check.h"
#include "core/transaction.h"

namespace sbd::net {

namespace {

// Reads a CRLF- (or LF-) terminated line byte-by-byte from `readFn`.
bool read_line(const std::function<size_t(void*, size_t)>& readFn, std::string& out) {
  out.clear();
  char c;
  while (readFn(&c, 1) == 1) {
    if (c == '\n') {
      if (!out.empty() && out.back() == '\r') out.pop_back();
      return true;
    }
    out.push_back(c);
  }
  return false;
}

void parse_headers(const std::function<size_t(void*, size_t)>& readFn,
                   std::map<std::string, std::string>& headers) {
  std::string line;
  while (read_line(readFn, line) && !line.empty()) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string key = line.substr(0, colon);
    size_t v = colon + 1;
    while (v < line.size() && line[v] == ' ') v++;
    headers[key] = line.substr(v);
  }
}

std::string read_body(const std::function<size_t(void*, size_t)>& readFn,
                      const std::map<std::string, std::string>& headers) {
  auto it = headers.find("Content-Length");
  if (it == headers.end()) return {};
  const size_t len = static_cast<size_t>(std::stoul(it->second));
  std::string body(len, '\0');
  size_t got = 0;
  while (got < len) {
    const size_t n = readFn(body.data() + got, len - got);
    if (n == 0) break;
    got += n;
  }
  body.resize(got);
  return body;
}

}  // namespace

bool read_request(const std::function<size_t(void*, size_t)>& readFn, HttpRequest& out) {
  std::string line;
  if (!read_line(readFn, line) || line.empty()) return false;
  std::istringstream ls(line);
  std::string version;
  ls >> out.method >> out.path >> version;
  parse_headers(readFn, out.headers);
  out.body = read_body(readFn, out.headers);
  return true;
}

bool read_response(const std::function<size_t(void*, size_t)>& readFn,
                   HttpResponse& out) {
  std::string line;
  if (!read_line(readFn, line) || line.empty()) return false;
  std::istringstream ls(line);
  std::string version;
  ls >> version >> out.status;
  parse_headers(readFn, out.headers);
  out.body = read_body(readFn, out.headers);
  return true;
}

std::string serialize(const HttpRequest& req) {
  std::ostringstream os;
  os << req.method << ' ' << req.path << " HTTP/1.1\r\n";
  for (const auto& [k, v] : req.headers) os << k << ": " << v << "\r\n";
  if (!req.body.empty()) os << "Content-Length: " << req.body.size() << "\r\n";
  os << "\r\n" << req.body;
  return os.str();
}

std::string serialize(const HttpResponse& resp) {
  std::ostringstream os;
  os << "HTTP/1.1 " << resp.status << (resp.status == 200 ? " OK" : " ERR") << "\r\n";
  for (const auto& [k, v] : resp.headers) os << k << ": " << v << "\r\n";
  os << "Content-Length: " << resp.body.size() << "\r\n\r\n" << resp.body;
  return os.str();
}

// ---------------------------------------------------------------------------
// TxSocket
// ---------------------------------------------------------------------------

void TxSocket::connect(int port) {
  auto* tc = core::tls_context_if_present();
  if (tc && tc->txn.active()) {
    tc->txn.defer([this, port] { sock_ = Network::instance().connect(port); });
  } else {
    sock_ = Network::instance().connect(port);
  }
}

size_t TxSocket::read(void* out, size_t n) {
  // Loop shape matters for abort/retry: a retry resumes just after the
  // blocking split below and must serve the (rearmed) replay buffer
  // before touching the wire again, so every pass starts from the top.
  for (;;) {
    const bool inTxn = tio::register_with_txn(this);
    if (inTxn) {
      const size_t got = replay_.serve(out, n);
      if (got > 0) return got;
    }
    auto& tc = core::tls_context();
    if (inTxn && sock_.available() == 0) {
      // Reading from an empty stream is waiting for another thread's
      // update: per §3.5 the waiter must end its section and release
      // its transaction id, or id-starved peers could never produce the
      // data (the 2N-threads > 56-ids case of the Tomcat benchmark).
      // Such a read is a REQUIRED split: composing it into a noSplit
      // block (§3.7) would deadlock, so it is rejected outright — the
      // paper's splitOptional rule.
      SBD_CHECK_MSG(tc.noSplitDepth == 0,
                    "blocking socket read inside a noSplit block (§3.7: this "
                    "operation must be able to split)");
      bool readable = true;
      core::split_section_releasing_id(tc, [&] {
        core::Safepoint::SafeScope safe(tc);
        readable = sock_.wait_readable();
      });
      if (!readable) return 0;  // peer closed with nothing buffered: EOF
      continue;  // fresh section: re-register and serve replay first
    }
    size_t fresh;
    {
      core::Safepoint::SafeScope safe(tc);
      fresh = sock_.read(static_cast<uint8_t*>(out), n);
    }
    if (inTxn && fresh) replay_.consumed(static_cast<uint8_t*>(out), fresh);
    return fresh;
  }
}

void TxSocket::write(std::string_view data) {
  if (tio::register_with_txn(this)) {
    writeBuf_.append(data);
  } else {
    sock_.write(data.data(), data.size());
  }
}

void TxSocket::on_commit() {
  if (!writeBuf_.empty()) {
    sock_.write(writeBuf_.bytes().data(), writeBuf_.size());
    writeBuf_.clear();
  }
  replay_.on_commit();
}

void TxSocket::on_abort() {
  writeBuf_.clear();
  replay_.on_abort();
}

// ---------------------------------------------------------------------------
// SessionStore / StringManager
// ---------------------------------------------------------------------------

int64_t SessionStore::bump(const std::string& sid) { return ++counters_[sid]; }

int64_t SessionStore::lookup(const std::string& sid) const {
  auto it = counters_.find(sid);
  return it == counters_.end() ? 0 : it->second;
}

std::string StringManager::status_message(int code, const std::string& detail) {
  const std::string key = std::to_string(code) + ":" + detail;
  if (cacheEnabled_) {
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  std::string msg = "status " + std::to_string(code) + " (" + detail + ")";
  if (cacheEnabled_) cache_[key] = msg;
  return msg;
}

}  // namespace sbd::net
