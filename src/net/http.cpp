#include "net/http.h"

#include <cstdint>
#include <sstream>

#include "common/check.h"
#include "core/transaction.h"

namespace sbd::net {

namespace {

// Reads a CRLF- (or LF-) terminated line byte-by-byte from `readFn`.
bool read_line(const std::function<size_t(void*, size_t)>& readFn, std::string& out) {
  out.clear();
  char c;
  while (readFn(&c, 1) == 1) {
    if (c == '\n') {
      if (!out.empty() && out.back() == '\r') out.pop_back();
      return true;
    }
    out.push_back(c);
  }
  return false;
}

// Returns true iff the header section terminated with its blank line.
// EOF mid-headers is a truncated (unframeable) message, not a shorter
// one — treating it as complete made a response cut off mid-write look
// parseable to the peer.
bool parse_headers(const std::function<size_t(void*, size_t)>& readFn,
                   HeaderMap& headers) {
  std::string line;
  while (read_line(readFn, line)) {
    if (line.empty()) return true;
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string key = line.substr(0, colon);
    size_t v = colon + 1;
    while (v < line.size() && line[v] == ' ') v++;
    // HeaderMap compares case-insensitively, so "content-length" and
    // "Content-Length" land in (and are found at) the same slot.
    headers[key] = line.substr(v);
  }
  return false;
}

// Parses a Content-Length value defensively: digits only, no sign, no
// overflow, bounded by `cap`. The old std::stoul call would throw
// std::invalid_argument on "banana" (remote-triggered process abort)
// and happily return SIZE_MAX-scale values that the body read then
// tried to allocate.
bool parse_content_length(const std::string& s, size_t& out) {
  if (s.empty()) return false;
  size_t len = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;  // rejects "-1", "1e9", "banana"
    const size_t digit = static_cast<size_t>(c - '0');
    if (len > (SIZE_MAX - digit) / 10) return false;  // numeric overflow
    len = len * 10 + digit;
  }
  out = len;
  return true;
}

// Reads the declared body. kTooLarge/kBadRequest mean the connection
// can no longer be framed; a body cut short by EOF is returned as-is
// (the caller sees fewer bytes than Content-Length promised).
ReadStatus read_body(const std::function<size_t(void*, size_t)>& readFn,
                     const HeaderMap& headers, size_t maxBody, std::string& body) {
  body.clear();
  auto it = headers.find("Content-Length");
  if (it == headers.end()) return ReadStatus::kOk;
  size_t len = 0;
  if (!parse_content_length(it->second, len)) return ReadStatus::kBadRequest;
  if (len > maxBody) return ReadStatus::kTooLarge;
  body.resize(len);
  size_t got = 0;
  while (got < len) {
    const size_t n = readFn(body.data() + got, len - got);
    if (n == 0) break;
    got += n;
  }
  body.resize(got);
  return ReadStatus::kOk;
}

}  // namespace

ReadStatus read_request_status(const std::function<size_t(void*, size_t)>& readFn,
                               HttpRequest& out, size_t maxBody) {
  std::string line;
  if (!read_line(readFn, line) || line.empty()) return ReadStatus::kEof;
  std::istringstream ls(line);
  std::string version;
  ls >> out.method >> out.path >> version;
  if (out.method.empty() || out.path.empty() || version.empty())
    return ReadStatus::kBadRequest;  // truncated start-line ("GET /x")
  if (!parse_headers(readFn, out.headers)) return ReadStatus::kBadRequest;
  return read_body(readFn, out.headers, maxBody, out.body);
}

ReadStatus read_response_status(const std::function<size_t(void*, size_t)>& readFn,
                                HttpResponse& out, size_t maxBody) {
  std::string line;
  if (!read_line(readFn, line) || line.empty()) return ReadStatus::kEof;
  std::istringstream ls(line);
  std::string version;
  ls >> version >> out.status;
  if (version.empty() || out.status <= 0) return ReadStatus::kBadRequest;
  if (!parse_headers(readFn, out.headers)) return ReadStatus::kBadRequest;
  return read_body(readFn, out.headers, maxBody, out.body);
}

bool read_request(const std::function<size_t(void*, size_t)>& readFn, HttpRequest& out) {
  return read_request_status(readFn, out) == ReadStatus::kOk;
}

bool read_response(const std::function<size_t(void*, size_t)>& readFn,
                   HttpResponse& out) {
  return read_response_status(readFn, out) == ReadStatus::kOk;
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: break;
  }
  if (status >= 200 && status < 300) return "OK";
  if (status >= 300 && status < 400) return "Redirect";
  if (status >= 400 && status < 500) return "Client Error";
  return "Error";
}

std::string serialize(const HttpRequest& req) {
  std::ostringstream os;
  os << req.method << ' ' << req.path << " HTTP/1.1\r\n";
  for (const auto& [k, v] : req.headers) os << k << ": " << v << "\r\n";
  // A caller-set Content-Length (any spelling) is authoritative; only
  // synthesize one when the body needs framing and none was given.
  if (!req.body.empty() && req.headers.find("Content-Length") == req.headers.end())
    os << "Content-Length: " << req.body.size() << "\r\n";
  os << "\r\n" << req.body;
  return os.str();
}

std::string serialize(const HttpResponse& resp) {
  std::ostringstream os;
  os << "HTTP/1.1 " << resp.status << ' ' << reason_phrase(resp.status) << "\r\n";
  // The serializer owns body framing: a stale caller-set Content-Length
  // would desynchronize keep-alive connections, so it is dropped in
  // favor of the actual body size.
  for (const auto& [k, v] : resp.headers)
    if (resp.headers.key_comp()(k, "Content-Length") ||
        resp.headers.key_comp()("Content-Length", k))
      os << k << ": " << v << "\r\n";
  os << "Content-Length: " << resp.body.size() << "\r\n\r\n" << resp.body;
  return os.str();
}

// ---------------------------------------------------------------------------
// TxSocket
// ---------------------------------------------------------------------------

void TxSocket::connect(int port) {
  auto* tc = core::tls_context_if_present();
  if (tc && tc->txn.active()) {
    tc->txn.defer([this, port] { sock_ = Network::instance().connect(port); });
  } else {
    sock_ = Network::instance().connect(port);
  }
}

size_t TxSocket::read(void* out, size_t n) {
  // Loop shape matters for abort/retry: a retry resumes just after the
  // blocking split below and must serve the (rearmed) replay buffer
  // before touching the wire again, so every pass starts from the top.
  for (;;) {
    const bool inTxn = tio::register_with_txn(this);
    if (inTxn) {
      const size_t got = replay_.serve(out, n);
      if (got > 0) return got;
    }
    auto& tc = core::tls_context();
    if (inTxn && sock_.available() == 0) {
      // Reading from an empty stream is waiting for another thread's
      // update: per §3.5 the waiter must end its section and release
      // its transaction id, or id-starved peers could never produce the
      // data (the 2N-threads > 56-ids case of the Tomcat benchmark).
      // Such a read is a REQUIRED split: composing it into a noSplit
      // block (§3.7) would deadlock, so it is rejected outright — the
      // paper's splitOptional rule.
      SBD_CHECK_MSG(tc.noSplitDepth == 0,
                    "blocking socket read inside a noSplit block (§3.7: this "
                    "operation must be able to split)");
      bool readable = true;
      core::split_section_releasing_id(tc, [&] {
        core::Safepoint::SafeScope safe(tc);
        readable = sock_.wait_readable();
      });
      if (!readable) return 0;  // peer closed with nothing buffered: EOF
      continue;  // fresh section: re-register and serve replay first
    }
    size_t fresh;
    {
      core::Safepoint::SafeScope safe(tc);
      fresh = sock_.read(static_cast<uint8_t*>(out), n);
    }
    if (inTxn && fresh) replay_.consumed(static_cast<uint8_t*>(out), fresh);
    return fresh;
  }
}

void TxSocket::write(std::string_view data) {
  if (tio::register_with_txn(this)) {
    writeBuf_.append(data);
  } else {
    sock_.write(data.data(), data.size());
  }
}

void TxSocket::on_commit() {
  if (!writeBuf_.empty()) {
    sock_.write(writeBuf_.bytes().data(), writeBuf_.size());
    writeBuf_.clear();
  }
  replay_.on_commit();
}

void TxSocket::on_abort() {
  writeBuf_.clear();
  replay_.on_abort();
}

// ---------------------------------------------------------------------------
// SessionStore / StringManager
// ---------------------------------------------------------------------------

int64_t SessionStore::bump(const std::string& sid) { return ++counters_[sid]; }

int64_t SessionStore::lookup(const std::string& sid) const {
  auto it = counters_.find(sid);
  return it == counters_.end() ? 0 : it->second;
}

std::string StringManager::status_message(int code, const std::string& detail) {
  const std::string key = std::to_string(code) + ":" + detail;
  if (cacheEnabled_) {
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  std::string msg = "status " + std::to_string(code) + " (" + detail + ")";
  if (cacheEnabled_) cache_[key] = msg;
  return msg;
}

}  // namespace sbd::net
