// Minimal HTTP/1.1 framing over the loopback network, plus the
// transactional socket wrapper and server-side helpers (sessions,
// string manager) used by the Tomcat benchmark analog.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "core/resource.h"
#include "net/loopback.h"
#include "tio/deferred.h"

namespace sbd::net {

struct HttpRequest {
  std::string method;
  std::string path;
  std::map<std::string, std::string> headers;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::string body;
};

// Reads one request from `readFn` (a blocking byte source). Returns
// false on clean EOF before the first byte.
bool read_request(const std::function<size_t(void*, size_t)>& readFn, HttpRequest& out);
bool read_response(const std::function<size_t(void*, size_t)>& readFn, HttpResponse& out);

std::string serialize(const HttpRequest& req);
std::string serialize(const HttpResponse& resp);

// Transactional socket wrapper (§4.4's worked example): reads consumed
// inside an atomic section are recorded in B_R and replayed after an
// abort; writes go to B_W and reach the wire only at commit.
//
// PLACEMENT RULE: like every TxResource with internal buffers, a
// TxSocket must live OFF the SBD stack (heap, or a frame above the
// anchor). A checkpoint restore would roll a stack-resident wrapper's
// buffers back and lose consumed input that only the replay buffer can
// re-serve. Benchmarks heap-allocate per-connection wrappers.
class TxSocket final : public core::TxResource {
 public:
  TxSocket() = default;
  explicit TxSocket(Socket s) : sock_(s) {}

  // Defers establishing the connection to the current section's commit
  // (like a thread start, §3.5): an aborted section never half-opens a
  // connection, and a retry re-defers instead of connecting twice. The
  // socket is usable from the next section on. Immediate outside
  // sections.
  void connect(int port);

  size_t read(void* out, size_t n);
  void write(std::string_view data);

  void on_commit() override;
  void on_abort() override;
  size_t buffered_bytes() const override { return writeBuf_.size() + replay_.size(); }

  void close() { sock_.close(); }
  Socket& raw() { return sock_; }

 private:
  Socket sock_;
  tio::ReplayBuffer replay_;
  tio::DeferBuffer writeBuf_;
};

// Session store keyed by session id (the Tomcat analog's per-client
// state). Thread-safety is the caller's concern: the baseline variant
// wraps it in a mutex, the SBD variant rebuilds it on managed state.
class SessionStore {
 public:
  // Returns the session id's counter after incrementing (the workload's
  // per-session state mutation).
  int64_t bump(const std::string& sid);
  int64_t lookup(const std::string& sid) const;
  size_t size() const { return counters_.size(); }

 private:
  std::map<std::string, int64_t> counters_;
};

// The string manager of the Tomcat analog: formats status messages with
// an optional memoization cache. The paper *disables* this cache in the
// SBD variant because every cache hit is a shared-map read-write
// conflict (Table 4 "Remove" row) — keep the flag so the ablation bench
// can measure exactly that.
class StringManager {
 public:
  explicit StringManager(bool enableCache) : cacheEnabled_(enableCache) {}

  std::string status_message(int code, const std::string& detail);
  size_t cache_size() const { return cache_.size(); }

 private:
  bool cacheEnabled_;
  std::map<std::string, std::string> cache_;
};

}  // namespace sbd::net
