// Minimal HTTP/1.1 framing over the loopback network, plus the
// transactional socket wrapper and server-side helpers (sessions,
// string manager) used by the Tomcat benchmark analog and sbd::serve.
#pragma once

#include <cctype>
#include <functional>
#include <map>
#include <string>

#include "core/resource.h"
#include "net/loopback.h"
#include "tio/deferred.h"

namespace sbd::net {

// HTTP header field names are case-insensitive (RFC 9110 §5.1): a peer
// sending "content-length: 5" frames its body exactly like one sending
// "Content-Length: 5". The map compares keys case-insensitively so
// inserts AND lookups normalize without rewriting callers; the
// originally-inserted spelling is preserved for serialization.
struct HeaderLess {
  bool operator()(const std::string& a, const std::string& b) const noexcept {
    const size_t n = a.size() < b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; i++) {
      const int ca = std::tolower(static_cast<unsigned char>(a[i]));
      const int cb = std::tolower(static_cast<unsigned char>(b[i]));
      if (ca != cb) return ca < cb;
    }
    return a.size() < b.size();
  }
};
using HeaderMap = std::map<std::string, std::string, HeaderLess>;

// Hard cap on the body bytes a Content-Length header may request: a
// malicious peer must not be able to make the parser allocate
// arbitrarily (or crash std::stoul). Callers with tighter budgets pass
// their own cap to read_request_status.
inline constexpr size_t kMaxBodyBytes = 1u << 20;  // 1 MiB

struct HttpRequest {
  std::string method;
  std::string path;
  HeaderMap headers;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  HeaderMap headers;
  std::string body;
};

// Why one request failed to parse — the serving layer turns these into
// 4xx responses instead of tearing the process down.
enum class ReadStatus {
  kOk,          // a complete request/response was framed
  kEof,         // clean EOF before the first byte (peer closed)
  kBadRequest,  // malformed start-line or Content-Length (non-numeric,
                // negative, overflow): connection framing is lost
  kTooLarge,    // Content-Length exceeded the body cap
};

// Reads one request from `readFn` (a blocking byte source), enforcing
// `maxBody` on the declared Content-Length. Never throws on malformed
// input; a non-kOk status means the connection must be closed (the
// byte stream can no longer be framed).
ReadStatus read_request_status(const std::function<size_t(void*, size_t)>& readFn,
                               HttpRequest& out, size_t maxBody = kMaxBodyBytes);
ReadStatus read_response_status(const std::function<size_t(void*, size_t)>& readFn,
                                HttpResponse& out, size_t maxBody = kMaxBodyBytes);

// Legacy bool forms (kOk => true). Callers that only distinguish
// "got one" from "stop reading this connection" keep using these.
bool read_request(const std::function<size_t(void*, size_t)>& readFn, HttpRequest& out);
bool read_response(const std::function<size_t(void*, size_t)>& readFn,
                   HttpResponse& out);

// Standard reason phrase for a status code ("Not Found", ...); a
// best-effort class default ("Error") for codes not in the table.
const char* reason_phrase(int status);

std::string serialize(const HttpRequest& req);
std::string serialize(const HttpResponse& resp);

// Transactional socket wrapper (§4.4's worked example): reads consumed
// inside an atomic section are recorded in B_R and replayed after an
// abort; writes go to B_W and reach the wire only at commit.
//
// PLACEMENT RULE: like every TxResource with internal buffers, a
// TxSocket must live OFF the SBD stack (heap, or a frame above the
// anchor). A checkpoint restore would roll a stack-resident wrapper's
// buffers back and lose consumed input that only the replay buffer can
// re-serve. Benchmarks heap-allocate per-connection wrappers.
class TxSocket final : public core::TxResource {
 public:
  TxSocket() = default;
  explicit TxSocket(Socket s) : sock_(s) {}

  // Defers establishing the connection to the current section's commit
  // (like a thread start, §3.5): an aborted section never half-opens a
  // connection, and a retry re-defers instead of connecting twice. The
  // socket is usable from the next section on. Immediate outside
  // sections.
  void connect(int port);

  size_t read(void* out, size_t n);
  void write(std::string_view data);

  void on_commit() override;
  void on_abort() override;
  size_t buffered_bytes() const override { return writeBuf_.size() + replay_.size(); }

  void close() { sock_.close(); }
  Socket& raw() { return sock_; }

 private:
  Socket sock_;
  tio::ReplayBuffer replay_;
  tio::DeferBuffer writeBuf_;
};

// Session store keyed by session id (the Tomcat analog's per-client
// state). Thread-safety is the caller's concern: the baseline variant
// wraps it in a mutex, the SBD variant rebuilds it on managed state.
class SessionStore {
 public:
  // Returns the session id's counter after incrementing (the workload's
  // per-session state mutation).
  int64_t bump(const std::string& sid);
  int64_t lookup(const std::string& sid) const;
  size_t size() const { return counters_.size(); }

 private:
  std::map<std::string, int64_t> counters_;
};

// The string manager of the Tomcat analog: formats status messages with
// an optional memoization cache. The paper *disables* this cache in the
// SBD variant because every cache hit is a shared-map read-write
// conflict (Table 4 "Remove" row) — keep the flag so the ablation bench
// can measure exactly that.
class StringManager {
 public:
  explicit StringManager(bool enableCache) : cacheEnabled_(enableCache) {}

  std::string status_message(int code, const std::string& detail);
  size_t cache_size() const { return cache_.size(); }

 private:
  bool cacheEnabled_;
  std::map<std::string, std::string> cache_;
};

}  // namespace sbd::net
