// In-memory loopback network — the paper's network I/O substitute.
// Provides blocking stream sockets and listeners with close semantics,
// so the HTTP substrate exercises real request/response framing and the
// transactional socket wrappers exercise real replay/deferral, without
// a kernel network stack.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <type_traits>

namespace sbd::net {

// One direction of a connection: a bounded byte pipe.
class Pipe {
 public:
  explicit Pipe(size_t capacity = 256 * 1024) : capacity_(capacity) {}

  // Blocks until at least one byte is available or the writer closed.
  // Returns bytes read (0 = clean EOF).
  size_t read(void* out, size_t n);

  // Blocks if the pipe is full; drops the data if the reader closed.
  void write(const void* data, size_t n);

  void close_write();
  void close_read();
  size_t available() const;

  // Blocks until data is readable or the writer closed; true if data.
  bool wait_readable();

  // One-shot readiness edge (the EPOLLONESHOT idiom): `fn` fires once,
  // from the writer's thread, when the pipe becomes readable or the
  // writer closes — or immediately from this call if it already is.
  // After firing the pipe is disarmed; the consumer re-arms after it
  // drains. `fn` is invoked with no pipe lock held and must be cheap
  // and non-blocking (sbd::serve pushes the connection onto a ready
  // queue). This is what lets one dispatcher thread multiplex N
  // connections onto a worker pool instead of parking a thread per
  // connection.
  void arm_notify(std::function<void()> fn);
  void disarm_notify();

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<uint8_t> buf_;
  size_t capacity_;
  bool writeClosed_ = false;
  bool readClosed_ = false;
  std::function<void()> notify_;  // armed = non-null; one-shot
};

// A bidirectional endpoint (one side of a socket pair).
//
// Restore-safety: Socket is TRIVIALLY DESTRUCTIBLE on purpose — socket
// handles live on SBD stacks that the abort path restores byte-wise,
// so they must not own heap state through destructors. The pipes
// behind a connection are owned by the network (never freed while the
// process runs, like kernel socket buffers); close() is idempotent.
class Socket {
 public:
  Socket() = default;
  Socket(Pipe* in, Pipe* out) : in_(in), out_(out) {}

  bool valid() const { return in_ != nullptr; }

  // Blocking; returns 0 at EOF (peer closed).
  size_t read(void* out, size_t n) { return in_->read(out, n); }
  void write(const void* data, size_t n) { out_->write(data, n); }
  void write(std::string_view s) { write(s.data(), s.size()); }

  size_t available() const { return in_->available(); }
  bool wait_readable() { return in_->wait_readable(); }

  // Edge-notify on the read side (see Pipe::arm_notify).
  void arm_read_notify(std::function<void()> fn) { in_->arm_notify(std::move(fn)); }
  void disarm_read_notify() { in_->disarm_notify(); }

  // shutdown(SHUT_RD): forces local reads to EOF once buffered data is
  // drained and WAKES a reader blocked in read()/wait_readable() — the
  // graceful-drain lever for unsticking a worker mid-request. The
  // peer's writes still complete (and are discarded by nobody reading).
  void shutdown_read() {
    if (in_) in_->close_write();
  }

  void close();

 private:
  Pipe* in_ = nullptr;
  Pipe* out_ = nullptr;
};
static_assert(std::is_trivially_destructible_v<Socket>,
              "socket handles must survive checkpoint restores");

// A listening port: accept() blocks for the next incoming connection.
class Listener {
 public:
  // Returns an invalid socket when the listener is closed.
  Socket accept();
  void close();

 private:
  friend class Network;
  struct State;
  std::shared_ptr<State> state_;
};

// The process-wide virtual network.
class Network {
 public:
  static Network& instance();

  // Binds a port; throws if already bound.
  Listener listen(int port);

  // Blocks until the port has a listener (up to `timeoutMs`), then
  // returns the client end of a fresh socket pair. When the wait
  // expires with no listener the returned socket is valid but DEAD —
  // reads see EOF, writes are dropped, exactly like the kSocketReset
  // fault — so callers can retry or degrade instead of the process
  // aborting (ECONNREFUSED semantics, not a crash).
  Socket connect(int port, uint64_t timeoutMs = 5000);

  // Unbinds everything (test isolation).
  void reset();

 private:
  Network() = default;
  struct Impl;
  std::shared_ptr<Impl> impl_ = init();
  static std::shared_ptr<Impl> init();
};

}  // namespace sbd::net
