#include "vtm/vtm.h"

#include <algorithm>
#include <unordered_map>

#include "core/transaction.h"

namespace sbd::vtm {

ModelResult estimate(const ModelInput& in, int cores) {
  ModelResult r;
  uint64_t work = 0, critical = 0, blockedTotal = 0;
  for (const ThreadWork& t : in.threads) {
    const uint64_t mine = t.busyNanos + t.abortedNanos;
    work += mine;
    critical = std::max(critical, mine);
    blockedTotal += t.blockedNanos;
  }
  r.workSeconds = static_cast<double>(work) * 1e-9;
  r.criticalPathSeconds = static_cast<double>(critical) * 1e-9;

  // Serialization estimate: while one thread holds a contended lock,
  // each blocked thread contributes blocked time that cannot overlap
  // with its own work. Dividing the aggregate blocked time by the
  // number of *other* threads approximates the wall-clock span during
  // which progress was limited by one lock holder.
  const size_t n = in.threads.size();
  r.serialSeconds =
      n > 1 ? static_cast<double>(blockedTotal) * 1e-9 / static_cast<double>(n - 1) : 0;

  const double workBound = r.workSeconds / std::max(1, cores);
  r.makespanSeconds = std::max({workBound, r.criticalPathSeconds, r.serialSeconds});
  r.utilization = r.makespanSeconds > 0
                      ? r.workSeconds / (cores * r.makespanSeconds)
                      : 0;
  return r;
}

std::vector<double> speedup_curve(const ModelInput& in,
                                  const std::vector<int>& coreCounts) {
  std::vector<double> out;
  const double t1 = estimate(in, 1).makespanSeconds;
  for (int c : coreCounts) {
    const double tp = estimate(in, c).makespanSeconds;
    out.push_back(tp > 0 ? t1 / tp : 0);
  }
  return out;
}

ModelInput snapshot_all_threads() {
  // Live threads plus every retired worker (workers joined before the
  // measurement window closed must still contribute their intervals).
  ModelInput in;
  auto& mgr = core::TxnManager::instance();
  mgr.for_each_retired_work([&](const core::TxnManager::RetiredWork& r) {
    in.threads.push_back(ThreadWork{r.uid, r.busyNanos, r.abortedNanos, r.blockedNanos});
  });
  mgr.for_each_thread([&](core::ThreadContext* tc) {
    in.threads.push_back(
        ThreadWork{tc->uid, tc->busyNanosCommitted, tc->abortedWorkNanos, tc->blockedNanos});
  });
  return in;
}

ModelInput diff(const ModelInput& after, const ModelInput& before) {
  // Match threads by uid; threads absent from `before` pass through,
  // threads whose counters did not move are dropped (they did no work
  // in the window).
  std::unordered_map<uint64_t, const ThreadWork*> base;
  for (const ThreadWork& t : before.threads) base[t.uid] = &t;
  ModelInput out;
  for (const ThreadWork& t : after.threads) {
    ThreadWork w = t;
    auto it = base.find(t.uid);
    if (it != base.end()) {
      w.busyNanos -= std::min(w.busyNanos, it->second->busyNanos);
      w.abortedNanos -= std::min(w.abortedNanos, it->second->abortedNanos);
      w.blockedNanos -= std::min(w.blockedNanos, it->second->blockedNanos);
    }
    if (w.busyNanos + w.abortedNanos + w.blockedNanos > 0) out.threads.push_back(w);
  }
  return out;
}

}  // namespace sbd::vtm
