// Virtual-time model: estimates the P-core makespan of an SBD run from
// per-thread interval accounting, so Figure 7's speedup *shape* can be
// reproduced on a host with fewer cores than the paper's 32-core Xeon.
//
// The STM already tracks, per thread:
//   busyNanosCommitted — useful work inside committed sections
//   abortedWorkNanos   — work thrown away by aborts (re-executed)
//   blockedNanos       — time spent waiting for locks / ids / joins
//
// The model combines them with Brent's-theorem-style bounds:
//   T_P >= W / P            (work bound: W = committed + aborted work)
//   T_P >= max_thread busy  (critical-path bound: the longest thread
//                            cannot be sliced across cores)
//   T_P >= serial           (serialization bound: time the run spent
//                            with at most one thread runnable, estimated
//                            from blocked-time overlap)
// The estimate is the max of the three. On a 1-core host the measured
// wall time approximates W directly (threads time-share one core), so
// speedup(P) = T_1 / T_P reproduces who scales and where the curves
// flatten (lock contention, abort waste, the 56-txn-id ceiling) even
// though no real parallelism is available.
#pragma once

#include <cstdint>
#include <vector>

namespace sbd::vtm {

struct ThreadWork {
  uint64_t uid = 0;           // stable thread identity (diffing across snapshots)
  uint64_t busyNanos = 0;     // committed useful work
  uint64_t abortedNanos = 0;  // discarded (re-executed) work
  uint64_t blockedNanos = 0;  // lock/id/join waits
};

struct ModelInput {
  std::vector<ThreadWork> threads;
};

struct ModelResult {
  double workSeconds = 0;         // total work W
  double criticalPathSeconds = 0; // max per-thread busy+aborted
  double serialSeconds = 0;       // estimated non-overlappable time
  double makespanSeconds = 0;     // T_P estimate
  double utilization = 0;         // W / (P * T_P)
};

// Estimates the makespan on `cores` ideal cores.
ModelResult estimate(const ModelInput& in, int cores);

// Convenience: speedup curve T_1 / T_P for each entry of `coreCounts`.
std::vector<double> speedup_curve(const ModelInput& in,
                                  const std::vector<int>& coreCounts);

// Snapshot collector: captures the per-thread counters of all SBD
// threads registered with the TxnManager (call after joining workers,
// diff two snapshots around the measured region).
ModelInput snapshot_all_threads();
ModelInput diff(const ModelInput& after, const ModelInput& before);

}  // namespace sbd::vtm
