// Stack checkpointing: the C++ substitute for the managed-language
// property the paper relies on — that a transaction abort can rebuild a
// thread's frames and resume from the start of the atomic section.
//
// A checkpoint is taken at every section boundary (thread start and
// every split). It stores the machine context (getcontext) plus a raw
// copy of the stack segment between the current stack pointer and a
// per-thread anchor recorded at SBD-thread entry. An abort restores the
// bytes and the context from a small trampoline stack (the restoring
// code must not run on the stack it is overwriting) and execution
// resumes as if the checkpoint-taking call had just returned again.
//
// Constraints this imposes on SBD-managed code are documented in
// DESIGN.md: locals that live across a potential abort must be trivially
// restorable (managed refs, arithmetic types); heap state is rolled back
// separately by the undo log.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/fastctx.h"

namespace sbd::core {

enum class CheckpointResult {
  kTaken,    // first return: checkpoint captured, continue the section
  kRestored  // returned again after an abort: re-execute the section
};

class Checkpoint {
 public:
  Checkpoint() = default;
  // The ucontext_t embeds a pointer to its own FP-state storage; the
  // object must stay put once captured.
  Checkpoint(const Checkpoint&) = delete;
  Checkpoint& operator=(const Checkpoint&) = delete;

  bool valid() const { return sp_ != nullptr; }
  size_t saved_bytes() const { return stackCopy_.size(); }

  // Drops the capture. Called when the episode ends: a checkpoint that
  // can never be restored again must not stay a GC root, or its stack
  // snapshot pins every object the final section could see.
  void invalidate() {
    sp_ = nullptr;
    stackCopy_.clear();
    stackCopy_.shrink_to_fit();
  }

  // Conservative-GC access: the saved stack bytes and register file may
  // hold the only references to managed objects. The register area is
  // either a FastContext (raw, unmangled callee-saved registers) or a
  // full ucontext_t on the fallback path — both scan as raw words.
  const std::vector<std::byte>& stack_copy() const { return stackCopy_; }
#if SBD_FASTCTX
  const void* reg_area() const { return &fctx_; }
  size_t reg_area_bytes() const { return sizeof(fctx_); }
#else
  const void* reg_area() const { return &ctx_; }
  size_t reg_area_bytes() const { return sizeof(ctx_); }
#endif

 private:
  friend class CheckpointEngine;
#if SBD_FASTCTX
  FastContext fctx_{};
#else
  ucontext_t ctx_{};
#endif
  std::vector<std::byte> stackCopy_;
  void* sp_ = nullptr;  // low address of the saved segment
};

class CheckpointEngine {
 public:
  CheckpointEngine();
  ~CheckpointEngine();
  CheckpointEngine(const CheckpointEngine&) = delete;
  CheckpointEngine& operator=(const CheckpointEngine&) = delete;

  // Sets the upper bound of the checkpointed stack region. The address
  // must live in stack memory owned by a frame that (a) encloses every
  // frame that will take or restore checkpoints and (b) stays alive for
  // the whole SBD episode — in practice: inside a padding buffer local
  // to an anchor-owning wrapper function (see run_sbd). Restores write
  // bytes up to (exclusive) this address, so memory above it is never
  // touched.
  void set_anchor_at(void* anchor);
  bool has_anchor() const { return anchor_ != nullptr; }
  void clear_anchor() { anchor_ = nullptr; }

  // Captures the current continuation into `cp`. Returns kTaken on the
  // initial call and kRestored when an abort later jumps back here.
  // Must not be inlined into a frame that is destroyed before restore
  // cannot happen anymore — in SBD it is only called from split()/begin.
  CheckpointResult take(Checkpoint& cp);

  // Rolls the thread back to `cp`: restores the stack segment and the
  // machine context. Never returns. Heap/lock rollback must already be
  // done by the caller.
  [[noreturn]] void restore(Checkpoint& cp);

 private:
  static void trampoline_entry();

  void* anchor_ = nullptr;           // high end of the checkpointed region
  std::vector<std::byte> trampolineStack_;
  ucontext_t trampolineCtx_{};
  Checkpoint* restoring_ = nullptr;  // set before jumping to the trampoline
  volatile bool resumedFromRestore_ = false;
};

}  // namespace sbd::core
