// Graceful degradation (robustness layer): a section that keeps
// aborting is thrashing — each retry redoes the same work and loses the
// same conflict. After a bounded retry budget the runtime escalates the
// section to *serialized* execution: the thread takes a global
// serialization token before re-executing and keeps it (across further
// aborts) until the section finally commits. Escalated retries
// therefore never run concurrently with each other, which drains abort
// storms instead of letting them feed on themselves.
//
// Deadlock-freedom: the token is acquired only in the abort path, after
// LockEngine::release_all — a thread blocked on the token holds no SBD
// locks, so the token can never appear in a lock-wait cycle. The token
// holder may still block on (and be aborted by) ordinary locks; it
// keeps the token across those aborts and releases it at commit.
//
// This is deliberately NOT the inevitable-section mechanism
// (core/inevitable.h): an inevitable section must never abort, but an
// escalated section still can (e.g. losing a dueling upgrade), so it
// must stay an ordinary, abortable transaction.
#pragma once

#include <cstdint>

namespace sbd::core {

struct ThreadContext;

namespace degrade {

// Consecutive aborts of one logical section before escalation.
// 0 disables escalation entirely. Default: 64.
void set_retry_budget(uint64_t aborts);
uint64_t retry_budget();

// Process-wide escalation count since start (monotonic; also kept per
// thread in StatsCounters::escalations).
uint64_t escalations();

// True while the calling thread's section runs under the token.
bool serialized(const ThreadContext& tc);

// Called by abort_and_restart after locks are released: bumps the
// consecutive-abort count and, over budget, blocks for the token.
void on_abort(ThreadContext& tc);

// Called by commit_section: resets the abort count and releases the
// token if held.
void on_commit(ThreadContext& tc);

// --- Lock re-plan wedge accounting -----------------------------------------
// The adaptive lockplan controller stops the world to swap lock maps; a
// mutator that never reaches a safepoint wedges that stop. The
// controller reports each abandoned (timed-out or watchdog-cancelled)
// re-plan here, and after `wedge budget` wedges the controller is
// quarantined: further re-plans are skipped so the process degrades to
// its current lock map instead of hanging or thrashing stop-the-worlds.

// Called by runtime/lockplan when a re-plan stop-the-world is abandoned.
void note_replan_wedged();

// Abandoned re-plans since process start (monotonic).
uint64_t replans_wedged();

// Wedges tolerated before quarantine; 0 disables quarantine. Default: 3.
void set_replan_wedge_budget(uint64_t wedges);
uint64_t replan_wedge_budget();

// True once replans_wedged() >= the (non-zero) wedge budget; re-plans
// are skipped while true. Raising the budget lifts the quarantine.
bool replan_quarantined();

}  // namespace degrade
}  // namespace sbd::core
