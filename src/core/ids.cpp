#include "core/ids.h"

#include <bit>
#include <chrono>
#include <sstream>

#include "common/check.h"

namespace sbd::core {

TxnIdPool::TxnIdPool() : freeBits_((1ULL << kMaxTxns) - 1) {}

int TxnIdPool::pop_free_locked() {
  const int id = std::countr_zero(freeBits_);
  freeBits_ &= ~(1ULL << id);
  return id;
}

int TxnIdPool::acquire() {
  std::unique_lock<std::mutex> lk(mu_);
  waiters_++;
  cv_.wait(lk, [&] { return freeBits_ != 0; });
  waiters_--;
  return pop_free_locked();
}

int TxnIdPool::acquire_for(uint64_t timeoutNanos) {
  std::unique_lock<std::mutex> lk(mu_);
  waiters_++;
  const bool got = cv_.wait_for(lk, std::chrono::nanoseconds(timeoutNanos),
                                [&] { return freeBits_ != 0; });
  waiters_--;
  if (!got) return -1;
  return pop_free_locked();
}

int TxnIdPool::try_acquire() {
  std::lock_guard<std::mutex> lk(mu_);
  if (freeBits_ == 0) return -1;
  return pop_free_locked();
}

void TxnIdPool::release(int id) {
  SBD_CHECK(id >= 0 && id < kMaxTxns);
  {
    std::lock_guard<std::mutex> lk(mu_);
    SBD_CHECK_MSG((freeBits_ & (1ULL << id)) == 0, "double release of txn id");
    freeBits_ |= 1ULL << id;
  }
  cv_.notify_one();
}

int TxnIdPool::available() const {
  std::lock_guard<std::mutex> lk(mu_);
  return std::popcount(freeBits_);
}

int TxnIdPool::waiters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return waiters_;
}

std::string TxnIdPool::diagnose() const {
  int free, waiting;
  {
    std::lock_guard<std::mutex> lk(mu_);
    free = std::popcount(freeBits_);
    waiting = waiters_;
  }
  std::ostringstream os;
  os << "txn-id pool: " << free << "/" << kMaxTxns << " free, " << waiting
     << " waiting";
  return os.str();
}

}  // namespace sbd::core
