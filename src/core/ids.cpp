#include "core/ids.h"

#include <bit>
#include <chrono>
#include <sstream>

#include "common/check.h"
#include "core/queue.h"

namespace sbd::core {

namespace {
// Home-shard assignment: round-robin per thread, so concurrently active
// threads start their claim sweep on different shard words.
std::atomic<unsigned> gHomeGen{0};
unsigned home_shard() {
  static thread_local const unsigned home = gHomeGen.fetch_add(1, std::memory_order_relaxed);
  return home;
}

// One park slice while over-subscribed. Short enough that a wake lost
// to barging (a never-parked thread stealing the freed id) costs
// bounded latency, long enough that 100+ parked threads do not turn
// into a polling herd.
constexpr uint64_t kParkSliceNanos = 10'000'000;
}  // namespace

TxnIdPool::TxnIdPool() {
  for (int s = 0; s < kShards; s++)
    shards_[s].store((1ULL << kIdsPerShard) - 1, std::memory_order_relaxed);
}

int TxnIdPool::try_acquire() {
  const unsigned home = home_shard();
  for (int i = 0; i < kShards; i++) {
    const int s = static_cast<int>((home + i) % kShards);
    uint64_t bits = shards_[s].load(std::memory_order_seq_cst);
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      if (shards_[s].compare_exchange_weak(bits, bits & ~(1ULL << bit),
                                           std::memory_order_acq_rel))
        return s * kIdsPerShard + bit;
    }
  }
  return -1;
}

int TxnIdPool::acquire_for(uint64_t timeoutNanos) {
  int id = try_acquire();
  if (id >= 0) return id;

  auto& lot = ParkingLot::instance();
  WaitNode node;
  node.word = &parkSentinel_;
  node.idPool = true;
  // Order matters against release(): the waiter count rises BEFORE the
  // re-check below, and release() frees the id BEFORE reading the
  // count — so either the releaser sees us (and wakes), or our re-check
  // sees the freed id. Both seq_cst RMWs, a store-load fence apart.
  waiters_.fetch_add(1, std::memory_order_seq_cst);
  lot.publish(node);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(timeoutNanos);
  for (;;) {
    // Consume a pending signal first: if it raced in between the last
    // try_acquire and here, the freed bit is already visible below.
    uint32_t st = kNodeSignaled;
    node.state.compare_exchange_strong(st, kNodeWaiting, std::memory_order_relaxed);
    id = try_acquire();
    if (id >= 0) break;
    const auto left = deadline - std::chrono::steady_clock::now();
    if (left <= std::chrono::nanoseconds::zero()) break;
    const uint64_t slice =
        std::min<uint64_t>(static_cast<uint64_t>(left.count()), kParkSliceNanos);
    lot.park(node, slice);
  }
  waiters_.fetch_sub(1, std::memory_order_seq_cst);
  lot.remove(node);
  // Pass the baton: we may have absorbed a wake we did not use (we
  // timed out, or barged an id a signal was not meant for). If ids are
  // free and someone still waits, hand the wake on.
  if (waiters_.load(std::memory_order_seq_cst) > 0 && available() > 0)
    lot.unpark_one(&parkSentinel_);
  return id;
}

int TxnIdPool::acquire() {
  for (;;) {
    const int id = acquire_for(1'000'000'000);
    if (id >= 0) return id;
  }
}

void TxnIdPool::release(int id) {
  SBD_CHECK(id >= 0 && id < kMaxTxns);
  const int s = id / kIdsPerShard;
  const uint64_t bit = 1ULL << (id % kIdsPerShard);
  const uint64_t prev = shards_[s].fetch_or(bit, std::memory_order_seq_cst);
  SBD_CHECK_MSG((prev & bit) == 0, "double release of txn id");
  if (waiters_.load(std::memory_order_seq_cst) > 0)
    ParkingLot::instance().unpark_one(&parkSentinel_);
}

int TxnIdPool::available() const {
  int n = 0;
  for (int s = 0; s < kShards; s++)
    n += std::popcount(shards_[s].load(std::memory_order_acquire));
  return n;
}

int TxnIdPool::waiters() const { return waiters_.load(std::memory_order_acquire); }

std::string TxnIdPool::diagnose() const {
  std::ostringstream os;
  os << "txn-id pool: " << available() << "/" << kMaxTxns << " free, " << waiters()
     << " waiting";
  return os.str();
}

}  // namespace sbd::core
