#include "core/watchdog.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/timing.h"
#include "core/obs.h"
#include "core/queue.h"
#include "core/transaction.h"
#include "runtime/lockplan.h"

namespace sbd::core {

namespace {

std::mutex gCtlMu;  // serializes start/stop
std::thread gThread;
Watchdog::Options gOpts;

std::mutex gSleepMu;
std::condition_variable gSleepCv;
bool gRun = false;  // under gSleepMu

std::atomic<uint64_t> gStalls{0};
std::atomic<uint64_t> gVictims{0};

// One record per (thread, wait episode): a new wait start timestamp
// means a new episode, reported (and possibly aborted) at most once.
struct StallRec {
  uint64_t waitSince = 0;
  bool reported = false;
  bool abortSent = false;
};

// Everything the act phase needs, copied out of the ThreadContext while
// the registry lock is held. No ThreadContext pointer survives the scan:
// the thread may unregister (and free its context) the moment the lock
// drops. The lock-word pointer is used only as a parking-lot hash key
// unless the waiter's node (which pins boundObj on the waiter's stack)
// is still linked — ParkingLot::with_waiter revalidates under the
// bucket lock before we dereference anything.
struct WaitSnap {
  uint64_t uid;
  uint64_t since;  // episode start (nonzero)
  bool idPool;
  int txnId;
  uint64_t startSeq;
  uint64_t consecAborts;
  const LockWord* word;
};

// Examines one stalled wait. Runs WITHOUT the thread-registry lock; the
// cross-thread values in `s` are diagnostic-only racy copies, and the
// abort fallback goes through TxnManager::request_abort, which
// re-validates the victim by (id, seq).
void check_wait(const WaitSnap& s, uint64_t now, std::map<uint64_t, StallRec>& recs) {
  if (now <= s.since) return;
  const uint64_t waited = now - s.since;
  if (waited < gOpts.stallThresholdNanos) return;
  StallRec& rec = recs[s.uid];
  if (rec.waitSince != s.since) rec = StallRec{s.since, false, false};

  if (!rec.reported) {
    rec.reported = true;
    gStalls.fetch_add(1, std::memory_order_relaxed);
    const void* lockAddr = nullptr;
    size_t queueDepth = 0;
    obs::LockSym sym{};
    if (!s.idPool && s.word) {
      // Symbolize under the parking-lot bucket lock: the waiter's node
      // (and the boundObj it pins) is stable only while the bucket
      // mutex holds it linked. If the waiter was granted or cancelled
      // since the scan, with_waiter finds nothing and we report the
      // bare address.
      lockAddr = s.word;
      ParkingLot::instance().with_waiter(
          s.word, s.txnId, [&](const WaitNode& n, size_t depth) {
            queueDepth = depth;
            sym = obs::symbolize(n.boundObj, s.word);
          });
    }
    obs::record(s.idPool ? obs::EventKind::kIdPoolStall
                         : obs::EventKind::kWatchdogStall,
                s.txnId, -1, lockAddr, sym.cls, sym.index, false);
    if (gOpts.logToStderr) {
      if (s.idPool) {
        std::fprintf(stderr, "[sbd-watchdog] thread %llu blocked %.1f ms for a txn id; %s\n",
                     static_cast<unsigned long long>(s.uid), waited / 1e6,
                     TxnManager::instance().id_pool().diagnose().c_str());
      } else {
        std::fprintf(stderr,
                     "[sbd-watchdog] txn %d blocked %.1f ms on lock %s (queue depth %zu, "
                     "%llu consecutive aborts)\n",
                     s.txnId, waited / 1e6,
                     obs::lock_name(sym.cls, sym.index,
                                    reinterpret_cast<uint64_t>(lockAddr))
                         .c_str(),
                     queueDepth,
                     static_cast<unsigned long long>(s.consecAborts));
        // Hottest locks so far — points straight at the contended
        // class:field when the stall is contention, not a bug.
        const std::string hot = obs::hot_report(5);
        if (!hot.empty())
          std::fprintf(stderr, "[sbd-watchdog] %s\n", hot.c_str());
      }
    }
  }

  // Abort-victim fallback: only lock waits — an id-pool waiter has no
  // active section to abort, it is *between* sections.
  if (!s.idPool && gOpts.abortVictimAfterNanos != 0 && !rec.abortSent &&
      waited >= gOpts.abortVictimAfterNanos) {
    rec.abortSent = true;
    if (s.txnId >= 0 && TxnManager::instance().request_abort(s.txnId, s.startSeq)) {
      gVictims.fetch_add(1, std::memory_order_relaxed);
      if (gOpts.logToStderr)
        std::fprintf(stderr, "[sbd-watchdog] aborting stalled txn %d (timeout fallback)\n",
                     s.txnId);
    }
  }
}

// Lockplan-controller heartbeat: spot a stop-the-world re-plan that has
// been busy past the threshold and pull the plug on it. One report +
// cancel per episode (keyed on the episode's start timestamp).
void check_replan(uint64_t now, uint64_t& lastEpisode) {
  if (gOpts.replanStallThresholdNanos == 0) return;
  const uint64_t since = runtime::lockplan::replan_busy_since();
  if (since == 0 || since == lastEpisode || now <= since) return;
  const uint64_t busy = now - since;
  if (busy < gOpts.replanStallThresholdNanos) return;
  lastEpisode = since;
  gStalls.fetch_add(1, std::memory_order_relaxed);
  obs::record(obs::EventKind::kWatchdogStall, -1, -1, nullptr, nullptr,
              obs::kNoIndex, false, busy);
  if (gOpts.logToStderr)
    std::fprintf(stderr,
                 "[sbd-watchdog] lock re-plan wedged for %.1f ms; cancelling "
                 "(a mutator is not reaching its safepoint)\n",
                 busy / 1e6);
  runtime::lockplan::cancel_current_replan();
}

void run() {
  std::map<uint64_t, StallRec> lockRecs, idRecs;
  std::vector<WaitSnap> snaps;
  uint64_t lastReplanEpisode = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(gSleepMu);
      gSleepCv.wait_for(lk, std::chrono::nanoseconds(gOpts.pollIntervalNanos),
                        [] { return !gRun; });
      if (!gRun) return;
    }
    const uint64_t now = now_nanos();
    check_replan(now, lastReplanEpisode);
    std::set<uint64_t> live;
    snaps.clear();
    // Scan phase: the registry lock is held, so ONLY lock-free reads are
    // allowed here. In particular no parking-lot bucket mutex may be
    // taken: a worker can wait out a stop-the-world (SafeScope) at any
    // point, the GC's root scan needs the registry lock AND every
    // bucket lock, and blocking on a bucket from inside the registry
    // would close that chain into a three-party deadlock.
    TxnManager::instance().for_each_thread([&](ThreadContext* tc) {
      live.insert(tc->uid);
      const uint64_t ls = tc->lockWaitSinceNanos.load(std::memory_order_acquire);
      const uint64_t is = tc->idWaitSinceNanos.load(std::memory_order_acquire);
      if (ls != 0)
        snaps.push_back({tc->uid, ls, /*idPool=*/false, tc->txn.id_, tc->txn.startSeq_,
                         tc->consecutiveAborts.load(std::memory_order_relaxed),
                         tc->txn.waiting_on()});
      if (is != 0)
        snaps.push_back({tc->uid, is, /*idPool=*/true, -1, 0, 0, nullptr});
    });
    // Act phase: registry lock released; bucket locks are now safe.
    for (const WaitSnap& s : snaps)
      check_wait(s, now, s.idPool ? idRecs : lockRecs);
    // Prune records of threads that have exited.
    for (auto* recs : {&lockRecs, &idRecs})
      for (auto it = recs->begin(); it != recs->end();)
        it = live.count(it->first) ? std::next(it) : recs->erase(it);
  }
}

}  // namespace

void Watchdog::start(const Options& opts) {
  std::lock_guard<std::mutex> ctl(gCtlMu);
  if (gThread.joinable()) return;
  gOpts = opts;
  {
    std::lock_guard<std::mutex> lk(gSleepMu);
    gRun = true;
  }
  gThread = std::thread(run);
}

void Watchdog::stop() {
  std::lock_guard<std::mutex> ctl(gCtlMu);
  if (!gThread.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(gSleepMu);
    gRun = false;
  }
  gSleepCv.notify_all();
  gThread.join();
}

bool Watchdog::running() {
  std::lock_guard<std::mutex> ctl(gCtlMu);
  return gThread.joinable();
}

uint64_t Watchdog::stalls_detected() {
  return gStalls.load(std::memory_order_relaxed);
}

uint64_t Watchdog::victims_aborted() {
  return gVictims.load(std::memory_order_relaxed);
}

}  // namespace sbd::core
