#include "core/transaction.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/check.h"
#include "common/timing.h"
#include "core/degrade.h"
#include "core/fault.h"
#include "core/inject.h"
#include "core/obs.h"
#include "runtime/object.h"

namespace sbd::runtime {
// Defined in runtime/object.cpp: flips a freshly committed instance's
// lock pointer from nullptr (new in this transaction) to UNALLOC (lock
// structures not yet allocated) — the init-log commit action of §3.3.
void publish_new_object(ManagedObject* obj);
namespace lockplan {
// Defined in runtime/lockplan.cpp: per-class contention/deadlock
// signals for the adaptive lock-granularity controller (independent of
// obs tracing).
void note_contention(ManagedObject* obj, bool wantWrite);
void note_deadlock(ManagedObject* obj);
}  // namespace lockplan
}  // namespace sbd::runtime

namespace sbd::core {

namespace {
inline std::atomic<LockWord>* as_atomic(LockWord* w) {
  static_assert(sizeof(std::atomic<LockWord>) == sizeof(LockWord));
  return reinterpret_cast<std::atomic<LockWord>*>(w);
}
}  // namespace

// ---------------------------------------------------------------------------
// The global version/commit clock (LockMap::kVersioned + obs commit seqs)
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> gVersionClock{0};
}  // namespace

uint64_t version_clock() { return gVersionClock.load(std::memory_order_acquire); }

uint64_t advance_version_clock() {
  return gVersionClock.fetch_add(1, std::memory_order_acq_rel) + 1;
}

// ---------------------------------------------------------------------------
// Transaction
// ---------------------------------------------------------------------------

void Transaction::add_resource(TxResource* r) {
  for (TxResource* e : resources_)
    if (e == r) return;
  resources_.push_back(r);
}

size_t Transaction::buffer_bytes() const {
  size_t sum = 0;
  for (const TxResource* r : resources_) sum += r->buffered_bytes();
  return sum;
}

// ---------------------------------------------------------------------------
// ThreadContext / tls
// ---------------------------------------------------------------------------

ThreadContext::ThreadContext() { TxnManager::instance().register_thread(this); }

ThreadContext::~ThreadContext() { TxnManager::instance().unregister_thread(this); }

namespace {
struct TlsHolder {
  ThreadContext* tc = nullptr;
  ~TlsHolder() {
    delete tc;
    tc = nullptr;
  }
};
thread_local TlsHolder tTls;
}  // namespace

ThreadContext& tls_context() {
  if (!tTls.tc) tTls.tc = new ThreadContext();
  return *tTls.tc;
}

ThreadContext* tls_context_if_present() { return tTls.tc; }

// ---------------------------------------------------------------------------
// TxnManager
// ---------------------------------------------------------------------------

TxnManager& TxnManager::instance() {
  static TxnManager mgr;
  return mgr;
}

bool TxnManager::request_abort(int victimId, uint64_t expectedSeq) {
  Transaction* t = lookup(victimId);
  if (!t || t->start_seq() != expectedSeq) return false;
  if (!t->is_waiting()) return false;  // only waiting victims can be aborted remotely
  t->request_abort();
  // Kick the victim's parked node so it notices the flag now instead of
  // at its next timed-park tick. Callers hold no bucket lock here (the
  // deadlock resolver probes and resolves in separate critical
  // sections), so taking the victim's bucket lock cannot self-deadlock.
  // The word pointer is a pure hash key — unpark_txn never dereferences
  // it — so a victim that raced out of the wait costs nothing. A lost
  // wake costs at most one timeout tick: victims always park timed and
  // re-check abort_requested() on every probe.
  if (const LockWord* w = t->waiting_on()) ParkingLot::instance().unpark_txn(w, victimId);
  return true;
}

void TxnManager::register_thread(ThreadContext* tc) {
  std::lock_guard<std::mutex> lk(registryMu_);
  tc->uid = uidGen_.fetch_add(1, std::memory_order_relaxed);
  threads_.push_back(tc);
}

void TxnManager::unregister_thread(ThreadContext* tc) {
  std::lock_guard<std::mutex> lk(registryMu_);
  retired_.add(tc->stats);
  retiredWork_.push_back(RetiredWork{tc->uid, tc->busyNanosCommitted,
                                     tc->abortedWorkNanos, tc->blockedNanos});
  for (auto it = threads_.begin(); it != threads_.end(); ++it) {
    if (*it == tc) {
      threads_.erase(it);
      break;
    }
  }
}

StatsCounters TxnManager::snapshot_stats() {
  std::lock_guard<std::mutex> lk(registryMu_);
  StatsCounters sum = retired_;
  for (ThreadContext* tc : threads_) sum.add(tc->stats);
  return sum;
}

// ---------------------------------------------------------------------------
// Section control
// ---------------------------------------------------------------------------

namespace {

void account_section_end(ThreadContext& tc, bool committed) {
  const uint64_t now = now_nanos();
  const uint64_t busy = now - tc.sectionStartNanos - tc.sectionBlockedNanos;
  if (committed)
    tc.busyNanosCommitted += busy;
  else
    tc.abortedWorkNanos += busy;
  tc.stats.rwSetBytesSum += tc.txn.rw_set_bytes();
  tc.stats.bufferBytesSum += tc.txn.buffer_bytes();
  tc.stats.initLogBytesSum += tc.txn.init_log_bytes();
  tc.stats.txnFootprints++;
}

void clear_section_state(ThreadContext& tc) {
  tc.txn.lockRecords_.clear();
  tc.txn.undoLog_.clear();
  tc.txn.initLog_.clear();
  tc.txn.resources_.clear();
  tc.txn.deferred_.clear();
  tc.txn.readSet_.clear();
  tc.txn.readVersion_ = version_clock();  // the new section's read snapshot
  tc.txn.commitVersion_ = 0;
  tc.txn.hasVersionedWrite_ = false;
  tc.txn.clear_abort_request();
  tc.txn.set_inevitable(false);
  tc.sectionStartNanos = now_nanos();
  tc.sectionBlockedNanos = 0;
}

// How long one id-pool wait slice lasts before the wait is reported as
// a stall (timeout-and-diagnose, §3.3 pressure) and re-entered.
constexpr uint64_t kIdAcquireSliceNanos = 250'000'000;

void acquire_txn_id(ThreadContext& tc) {
  auto& mgr = TxnManager::instance();
  int id = mgr.id_pool().try_acquire();
  if (id < 0) {
    tc.idWaitSinceNanos.store(now_nanos(), std::memory_order_release);
    Safepoint::SafeScope safe(tc);
    bool reported = false;
    for (;;) {
      id = mgr.id_pool().acquire_for(kIdAcquireSliceNanos);
      if (id >= 0) break;
      // Timed out: diagnose, then keep waiting. The pool guarantees
      // eventual progress (every id holder commits or aborts), so the
      // loop is the fallback path, not a spin.
      obs::record(obs::EventKind::kIdPoolStall, -1, -1, nullptr, nullptr,
                  obs::kNoIndex, false);
      if (!reported) {
        reported = true;
        std::fprintf(stderr, "[sbd] txn-id acquire stalled; %s\n",
                     mgr.id_pool().diagnose().c_str());
      }
    }
    tc.idWaitSinceNanos.store(0, std::memory_order_release);
  }
  tc.txn.id_ = id;
  tc.txn.mask_ = txn_mask(id);
  mgr.publish(id, &tc.txn);
}

void release_txn_id(ThreadContext& tc) {
  auto& mgr = TxnManager::instance();
  mgr.digest_slot(tc.txn.id()).store(0, std::memory_order_release);
  mgr.unpublish(tc.txn.id());
  mgr.id_pool().release(tc.txn.id());
  tc.txn.id_ = -1;
  tc.txn.mask_ = 0;
}

// Takes the section checkpoint; on an abort-restore arrival it resets
// the per-section bookkeeping so the retry starts clean.
void checkpoint_section(ThreadContext& tc) {
  tc.ckCanSplitDepth = tc.canSplitDepth;
  tc.ckNoSplitDepth = tc.noSplitDepth;
  tc.ckAllowSplitArmed = tc.allowSplitArmed;
  if (tc.engine.take(tc.sectionStart) == CheckpointResult::kRestored) {
    // Re-arrived after abort_and_restart: logs were already cleared and
    // locks released by the abort path; restore the off-stack scope
    // depths to their checkpoint-time values and reset timing.
    tc.canSplitDepth = tc.ckCanSplitDepth;
    tc.noSplitDepth = tc.ckNoSplitDepth;
    tc.allowSplitArmed = tc.ckAllowSplitArmed;
    tc.txn.clear_abort_request();
    // The abort path cleared the section state before the backoff sleep;
    // refresh the read snapshot so the retry does not start pre-staled.
    tc.txn.readVersion_ = version_clock();
    tc.sectionStartNanos = now_nanos();
    tc.sectionBlockedNanos = 0;
  }
}

}  // namespace

void begin_initial_section(ThreadContext& tc) {
  SBD_CHECK_MSG(!tc.txn.active(), "nested atomic sections are not allowed");
  SBD_CHECK_MSG(tc.engine.has_anchor(), "SBD thread entry must set the stack anchor");
  acquire_txn_id(tc);
  tc.txn.startSeq_ = TxnManager::instance().next_seq();
  clear_section_state(tc);
  tc.inSbd = true;
  checkpoint_section(tc);
}

void commit_section(ThreadContext& tc) {
  SBD_CHECK(tc.txn.active());
  // -1. Versioned read validation, BEFORE anything externally visible:
  //     a section whose invisible reads were overwritten must abort, so
  //     neither its resource commits nor its footprint sample happen.
  LockEngine::versioned_validate(tc);
  // Sampled commit-duration tracing (1-in-kDurationSamplePeriod): one
  // relaxed load + a TLS tick on the unsampled path, cheap enough to
  // stay enabled under the perf-smoke run.
  const uint64_t traceStart = obs::sample_duration() ? now_nanos() : 0;
  // 0. Sample the transaction footprint BEFORE resources flush their
  //    buffers (Table 8 accounting measures the section's peak state).
  account_section_end(tc, /*committed=*/true);
  // 1. Apply deferred external effects while memory locks are held, so a
  //    successor section acquiring our locks observes them (§3.4).
  for (TxResource* r : tc.txn.resources_) r->on_commit();
  // 2. Publish new instances: locks pointer null -> UNALLOC (§3.3).
  tc.txn.initLog_.for_each([](runtime::ManagedObject* o) { runtime::publish_new_object(o); });
  // 2b. Draw the global commit sequence number while every lock is
  //     still held, so the per-lock release->acquire order implies
  //     commit-sequence order — the linearization fact the sbd::oracle
  //     checker verifies offline. The commit seq IS the version stamp
  //     this section's versioned writes publish (one clock), so it is
  //     drawn whenever a versioned write lock is held, full trace or
  //     not.
  const bool fullTrace = obs::full_trace();
  if (fullTrace || tc.txn.hasVersionedWrite_)
    tc.txn.commitVersion_ = advance_version_clock();
  if (fullTrace)
    obs::record(obs::EventKind::kCommitOrder, tc.txn.id(), -1, nullptr, nullptr,
                obs::kNoIndex, false, 0, tc.txn.start_seq(), tc.txn.commitVersion_);
  // 3. Release all field/element locks and wake waiters.
  LockEngine::release_all(tc, /*committed=*/true);
  TxnManager::instance().digest_slot(tc.txn.id()).store(0, std::memory_order_release);
  // 4. Run deferred actions (thread starts, notifies) after locks are
  //    free, so the released condition is observable (§3.5).
  auto deferred = std::move(tc.txn.deferred_);
  tc.txn.deferred_.clear();
  for (auto& action : deferred) action();
  tc.stats.commits++;
  tc.retrySleepNanos = 0;
  // 5. Graceful degradation: the section made it through — reset the
  //    retry budget and give up the serialization token if escalated.
  degrade::on_commit(tc);
  if (traceStart != 0)
    obs::record(obs::EventKind::kCommit, tc.txn.id(), -1, nullptr, nullptr,
                obs::kNoIndex, false, now_nanos() - traceStart, tc.txn.start_seq());
}

void split_section(ThreadContext& tc) {
  // Failure injection (core/inject.h): abort instead of committing.
  if (!tc.txn.inevitable() && should_inject_abort()) abort_and_restart(tc);
  const uint64_t traceStart = obs::sample_duration() ? now_nanos() : 0;
  commit_section(tc);
  Safepoint::poll(tc);
  tc.txn.startSeq_ = TxnManager::instance().next_seq();
  clear_section_state(tc);
  // Recorded BEFORE the checkpoint: an abort-restore re-arrival in
  // checkpoint_section must not replay the record.
  if (traceStart != 0)
    obs::record(obs::EventKind::kSplit, tc.txn.id(), -1, nullptr, nullptr,
                obs::kNoIndex, false, now_nanos() - traceStart);
  checkpoint_section(tc);
}

void commit_and_release_id(ThreadContext& tc) {
  commit_section(tc);
  release_txn_id(tc);
  Safepoint::poll(tc);
}

void reacquire_id_and_checkpoint(ThreadContext& tc) {
  acquire_txn_id(tc);
  tc.txn.startSeq_ = TxnManager::instance().next_seq();
  clear_section_state(tc);
  checkpoint_section(tc);
}

void end_final_section(ThreadContext& tc) {
  commit_section(tc);
  release_txn_id(tc);
  clear_section_state(tc);
  // The episode is over: this checkpoint can never be restored, so it
  // must stop acting as a GC root (its snapshot pins the episode stack).
  tc.sectionStart.invalidate();
  tc.inSbd = false;
}

void abort_and_restart(ThreadContext& tc) {
  SBD_CHECK(tc.txn.active());
  account_section_end(tc, /*committed=*/false);  // sample before buffers drop
  // 1. Discard deferred external effects and rearm replay buffers.
  for (auto it = tc.txn.resources_.rbegin(); it != tc.txn.resources_.rend(); ++it)
    (*it)->on_abort();
  // 2. Eager version management: restore old values, newest first. The
  //    store is atomic(relaxed): under a versioned map an invisible
  //    reader may load the slot concurrently (its seqlock re-check
  //    discards the value, but the load itself must not be a data race).
  tc.txn.undoLog_.for_each_reverse([](UndoEntry& ue) {
    reinterpret_cast<std::atomic<uint64_t>*>(ue.slot)->store(ue.oldValue,
                                                             std::memory_order_relaxed);
  });
  // 3. Release locks; instances in the init log become garbage.
  LockEngine::release_all(tc, /*committed=*/false);
  TxnManager::instance().digest_slot(tc.txn.id()).store(0, std::memory_order_release);
  clear_section_state(tc);
  tc.stats.aborts++;
  obs::record(obs::EventKind::kAborted, tc.txn.id(), -1, nullptr, nullptr,
              obs::kNoIndex, false, 0, tc.txn.start_seq());
  // 4. Graceful degradation: over the retry budget this blocks for the
  //    global serialization token (we hold no locks here) so the retry
  //    runs serialized instead of feeding the abort storm.
  degrade::on_abort(tc);
  if (tc.holdsSerialToken) {
    // Serialized retry: the token holder cannot race other escalated
    // sections, so it skips the backoff and restarts immediately.
    // restore() rebuilds the stack and never returns — steps 5 and 6
    // below are unreachable on this path.
    Safepoint::poll(tc);
    tc.engine.restore(tc.sectionStart);
  }
  // 5. Back off a little so the conflict winner can finish.
  if (tc.retrySleepNanos == 0)
    tc.retrySleepNanos = 20'000;
  else if (tc.retrySleepNanos < 1'000'000)
    tc.retrySleepNanos *= 2;
  {
    Safepoint::SafeScope safe(tc);
    std::this_thread::sleep_for(std::chrono::nanoseconds(tc.retrySleepNanos));
  }
  Safepoint::poll(tc);
  // 6. Rebuild the stack and re-execute from the section start.
  tc.engine.restore(tc.sectionStart);
}

// ---------------------------------------------------------------------------
// LockEngine
// ---------------------------------------------------------------------------

namespace {

// Computes and publishes this transaction's Dreadlocks digest while it
// waits for `word`; resolves any detected cycle by aborting the
// youngest waiting member. `direct` is the blocker set gathered by the
// grant probe (word members + same-word waiters ahead of us) inside the
// bucket critical section; this runs OUTSIDE any bucket lock, so the
// resolver's wake of the victim (unpark_txn takes the victim's bucket
// lock) cannot deadlock. Returns true if the caller itself must abort.
bool update_digest_and_resolve(ThreadContext& tc, uint64_t direct,
                               runtime::ManagedObject* obj, LockWord* word) {
  auto& mgr = TxnManager::instance();
  const int myId = tc.txn.id();
  const LockWord myBit = tc.txn.mask();

  uint64_t digest = direct;
  uint64_t scan = direct;
  while (scan) {
    const int d = std::countr_zero(scan);
    scan &= scan - 1;
    digest |= mgr.digest_slot(d).load(std::memory_order_acquire);
  }
  mgr.digest_slot(myId).store(digest, std::memory_order_release);
  if ((digest & myBit) == 0) return false;  // no cycle through us

  // Cycle: abort the youngest *waiting* member (deterministic policy —
  // the oldest transaction always makes progress, §3.2).
  tc.stats.deadlocksResolved++;
  int victim = -1;
  uint64_t victimSeq = 0;
  if (!tc.txn.inevitable()) {
    victim = myId;
    victimSeq = tc.txn.start_seq();
  }
  uint64_t cand = digest & ~myBit;
  while (cand) {
    const int d = std::countr_zero(cand);
    cand &= cand - 1;
    Transaction* t = mgr.lookup(d);
    if (!t || !t->is_waiting()) continue;
    if (t->inevitable()) continue;  // inevitable sections are never victims
    if (victim < 0 || t->start_seq() > victimSeq) {
      victimSeq = t->start_seq();
      victim = d;
    }
  }
  if (victim < 0) return false;  // all waiters inevitable (transient view)
  // Recorded AFTER victim selection, so the event carries the chosen
  // victim and the contended lock (the DebugEvent::other contract) —
  // the §6 workflow needs to know who lost, not just that a cycle
  // happened. obj is stable here: our parked node pins it as a GC root
  // while we are enqueued. The victim's epoch (start_seq) rides in
  // `seq` so the offline oracle can verify the victim actually
  // participated (it must have a prior kBlocked with the same id +
  // epoch).
  obs::record_lock_event(obs::EventKind::kDeadlock, myId, victim, obj, word,
                         false, 0, tc.txn.start_seq(), victimSeq);
  // Deadlock involvement disqualifies the class from the adaptive
  // controller's versioned (invisible-reader) auto-selection.
  runtime::lockplan::note_deadlock(obj);
  if (victim == myId) return true;
  mgr.request_abort(victim, victimSeq);
  return false;
}

// The contended path: publish a waiter node in the parking lot and wait
// (local spin, then timed futex park) until the lock is handed off or
// self-grantable. `upgrader` implies the caller already holds a read
// lock and set the U bit. Returns with the lock held (recorded by the
// caller for upgrades, here otherwise) or aborts the transaction.
void slow_acquire(ThreadContext& tc, runtime::ManagedObject* obj, LockWord* word,
                  bool wantWrite, bool upgrader) {
  auto& mgr = TxnManager::instance();
  auto* aw = as_atomic(word);
  const int myId = tc.txn.id();
  const LockWord myBit = tc.txn.mask();
  tc.stats.contendedAcquires++;
  runtime::lockplan::note_contention(obj, wantWrite || upgrader);
  obs::record_lock_event(obs::EventKind::kBlocked, myId, -1, obj, word,
                         wantWrite || upgrader, 0, tc.txn.start_seq());
  const uint64_t blockStart = now_nanos();
  tc.lockWaitSinceNanos.store(blockStart, std::memory_order_release);

  // `granted` is false on the paths that leave the wait to abort: those
  // record kAborted downstream, and a kGranted there would claim a lock
  // acquisition that never happened.
  auto finish_blocked_accounting = [&](bool granted) {
    tc.lockWaitSinceNanos.store(0, std::memory_order_release);
    const uint64_t dt = now_nanos() - blockStart;
    tc.blockedNanos += dt;
    tc.sectionBlockedNanos += dt;
    // The granted event carries the wait latency, so the trace answers
    // "how long did this lock make us wait", not only "how often".
    if (granted) {
      obs::record_lock_event(obs::EventKind::kGranted, myId, -1, obj, word,
                             wantWrite || upgrader, dt, tc.txn.start_seq());
      // Full trace: every grant path funnels through here, and each one
      // records AFTER its successful CAS — so the acquire event is
      // ordered after the matching release on the same word.
      if (obs::full_trace())
        obs::record_lock_event(obs::EventKind::kAcquire, myId, upgrader ? 1 : 0,
                               obj, word, wantWrite || upgrader, 0,
                               tc.txn.start_seq());
    }
  };

  // Direct attempts first: the lock may have freed between the fast
  // path and here, and an enqueue round trip for a now-grabbable word
  // would cost two bucket-lock sections for nothing.
  for (;;) {
    LockWord w = aw->load(std::memory_order_acquire);
    if (upgrader) {
      if (!(sole_member(w, myBit) && !has_writer(w))) break;
      LockWord target = without_upgrader(with_writer(w));
      if (aw->compare_exchange_weak(w, target, std::memory_order_acq_rel)) {
        finish_blocked_accounting(/*granted=*/true);
        return;
      }
    } else if (!wantWrite) {
      if (!read_grabbable(w)) break;
      if (aw->compare_exchange_weak(w, with_member(w, myBit), std::memory_order_acq_rel)) {
        tc.txn.record_lock(obj, word, false);
        tc.stats.acqRls++;
        finish_blocked_accounting(/*granted=*/true);
        return;
      }
    } else {
      if (!(is_free(w) && write_grabbable(w, myBit))) break;
      if (aw->compare_exchange_weak(w, with_writer(with_member(w, myBit)),
                                    std::memory_order_acq_rel)) {
        tc.txn.record_lock(obj, word, true);
        tc.stats.acqRls++;
        finish_blocked_accounting(/*granted=*/true);
        return;
      }
    }
    tc.stats.casFailures++;
  }

  // Enqueue: publish the node, then raise the has-waiters bit, then
  // probe. EXACTLY this order — the no-lost-wakeup argument
  // (docs/SEMANTICS.md) needs the node visible before the bit and the
  // probe's word re-read after the bit.
  auto& lot = ParkingLot::instance();
  WaitNode node;
  node.word = word;
  node.boundObj = obj;
  node.txnId = myId;
  node.mask = myBit;
  node.wantWrite = wantWrite || upgrader;
  node.upgrader = upgrader;
  lot.publish(node);
  tc.waitingObj = obj;
  tc.txn.set_waiting(word);
  {
    LockWord w = aw->load(std::memory_order_acquire);
    while (!has_waiters(w)) {
      if (aw->compare_exchange_weak(w, with_waiters(w), std::memory_order_acq_rel))
        break;
    }
  }

  auto leave_waiting = [&] {
    // Clear the published digest: a stale digest would make other
    // transactions that later wait on us see phantom cycles.
    mgr.digest_slot(myId).store(0, std::memory_order_release);
    tc.txn.set_waiting(nullptr);
    tc.waitingObj = nullptr;
  };

  // Leaves the wait to abort. cancel() can lose the race against a
  // concurrent handoff — then the lock is OURS and must be recorded so
  // the abort's release_all frees it (and the trace shows the grant the
  // handoff already performed).
  auto abort_from_wait = [&]() {
    const bool won = lot.cancel(tc, node) == CancelResult::kWasGranted;
    if (won) {
      if (!upgrader) {
        tc.txn.record_lock(obj, word, wantWrite);
        tc.stats.acqRls++;
      } else if (auto* rec = tc.txn.lockRecords_.find_last_if(
                     [&](const LockRecord& r) { return r.word == word; })) {
        rec->write = true;       // the handoff completed the upgrade:
        rec->setUpgrader = false;  // W is ours, U is already cleared
      }
    }
    leave_waiting();
    finish_blocked_accounting(/*granted=*/won);
    abort_and_restart(tc);
  };

  // Timed parks double from 200us to ~3.2ms: each tick re-publishes the
  // Dreadlocks digest (stale digests delay cycle detection) and
  // re-checks the abort flag, but direct handoff means ticks are the
  // backstop, not the grant path.
  uint64_t parkNanos = 200'000;
  for (;;) {
    const GrantProbe probe = lot.try_grant_self(tc, node);
    if (probe.granted) {
      leave_waiting();
      if (!upgrader) {
        tc.txn.record_lock(obj, word, wantWrite);
        tc.stats.acqRls++;
      }
      finish_blocked_accounting(/*granted=*/true);
      return;
    }
    if (tc.txn.abort_requested()) abort_from_wait();
    if (update_digest_and_resolve(tc, probe.blockers, obj, word)) abort_from_wait();
    if (tc.txn.abort_requested()) abort_from_wait();
    {
      // The SafeScope covers the park: the collector may scan our stack
      // (the node and boundObj live on it) while we sleep. No bucket
      // lock is held here, so the GC's own bucket sweep
      // (ParkingLot::for_each_bound) cannot deadlock against us.
      Safepoint::SafeScope safe(tc);
      lot.park(node, parkNanos);
    }
    if (parkNanos < 3'200'000) parkNanos *= 2;
  }
}

}  // namespace

void LockEngine::acquire_read(ThreadContext& tc, runtime::ManagedObject* obj,
                              LockWord* word) {
  auto* aw = as_atomic(word);
  // Fault plan: pretend one CAS lost a race (at most once per call, so
  // rate 1.0 still terminates). Exercises the retry edge of the fast path.
  bool injectCasFail = fault::should_fire(fault::Site::kLockCas);
  for (;;) {
    LockWord w = aw->load(std::memory_order_acquire);
    if (is_member(w, tc.txn.mask())) return;  // owned
    if (read_grabbable(w)) {
      if (injectCasFail) {
        injectCasFail = false;
        tc.stats.casFailures++;
        continue;
      }
      if (aw->compare_exchange_weak(w, with_member(w, tc.txn.mask()),
                                    std::memory_order_acq_rel)) {
        tc.txn.record_lock(obj, word, false);
        tc.stats.acqRls++;
        if (obs::full_trace())
          obs::record_lock_event(obs::EventKind::kAcquire, tc.txn.id(), 0, obj,
                                 word, false, 0, tc.txn.start_seq());
        return;
      }
      tc.stats.casFailures++;
      continue;
    }
    slow_acquire(tc, obj, word, /*wantWrite=*/false, /*upgrader=*/false);
    return;
  }
}

void LockEngine::acquire_write(ThreadContext& tc, runtime::ManagedObject* obj,
                               LockWord* word) {
  auto* aw = as_atomic(word);
  const LockWord myBit = tc.txn.mask();
  // See acquire_read: one injected CAS failure per call at most.
  bool injectCasFail = fault::should_fire(fault::Site::kLockCas);
  for (;;) {
    LockWord w = aw->load(std::memory_order_acquire);
    if (is_member(w, myBit)) {
      if (has_writer(w)) return;  // already the writer
      // Upgrade a held read lock.
      for (;;) {
        if (sole_member(w, myBit)) {
          if (aw->compare_exchange_weak(w, with_writer(w), std::memory_order_acq_rel)) {
            // Flip the existing record so release/GC accounting sees a write.
            if (auto* rec = tc.txn.lockRecords_.find_last_if(
                    [&](const LockRecord& r) { return r.word == word; }))
              rec->write = true;
            if (obs::full_trace())
              obs::record_lock_event(obs::EventKind::kAcquire, tc.txn.id(), 1,
                                     obj, word, true, 0, tc.txn.start_seq());
            return;
          }
          tc.stats.casFailures++;
          w = aw->load(std::memory_order_acquire);
          continue;
        }
        if (has_upgrader(w)) {
          // Dueling write-upgrade (§3.2): two readers both want to
          // write. The U holder wins; we abort and retry. An inevitable
          // section cannot lose a duel — it must order its accesses so
          // writes come first (documented constraint).
          SBD_CHECK_MSG(!tc.txn.inevitable(),
                        "inevitable section lost a dueling write-upgrade");
          abort_and_restart(tc);
        }
        if (aw->compare_exchange_weak(w, with_upgrader(w), std::memory_order_acq_rel)) {
          // Arena entries never move, so the record pointer stays valid
          // across the pushes slow_acquire may perform.
          auto* rec = tc.txn.lockRecords_.find_last_if(
              [&](const LockRecord& r) { return r.word == word; });
          if (rec) rec->setUpgrader = true;
          slow_acquire(tc, obj, word, /*wantWrite=*/true, /*upgrader=*/true);
          // Upgrade succeeded: U is cleared, we hold the write lock.
          if (rec) {
            rec->write = true;
            rec->setUpgrader = false;
          }
          return;
        }
        tc.stats.casFailures++;
        w = aw->load(std::memory_order_acquire);
      }
    }
    if (write_grabbable(w, myBit) && is_free(w)) {
      if (injectCasFail) {
        injectCasFail = false;
        tc.stats.casFailures++;
        continue;
      }
      if (aw->compare_exchange_weak(w, with_writer(with_member(w, myBit)),
                                    std::memory_order_acq_rel)) {
        tc.txn.record_lock(obj, word, true);
        tc.stats.acqRls++;
        if (obs::full_trace())
          obs::record_lock_event(obs::EventKind::kAcquire, tc.txn.id(), 0, obj,
                                 word, true, 0, tc.txn.start_seq());
        return;
      }
      tc.stats.casFailures++;
      continue;
    }
    slow_acquire(tc, obj, word, /*wantWrite=*/true, /*upgrader=*/false);
    return;
  }
}

void LockEngine::release_all(ThreadContext& tc, bool committed) {
  const LockWord myBit = tc.txn.mask();
  const bool fullTrace = obs::full_trace();
  // Batched wake: clear every word first, remembering which words had
  // the has-waiters bit set, then run one grant pass per distinct word.
  // A waiter that needs several of our locks is handed its lock once
  // all of them are free instead of probing once per word. The list is
  // a fixed stack array: a transaction rarely holds more than a handful
  // of contended words; on overflow we grant inline (correct, just one
  // extra bucket-lock section mid-release).
  constexpr size_t kMaxWake = 64;
  const LockWord* wakeWords[kMaxWake];
  size_t numWake = 0;
  auto& lot = ParkingLot::instance();
  tc.txn.lockRecords_.for_each_reverse([&](LockRecord& rec) {
    // Full trace: the release is recorded BEFORE the word is cleared,
    // so any conflicting acquire (recorded after its CAS) draws a later
    // ordinal — the happens-before edge the oracle replays.
    if (fullTrace)
      obs::record_lock_event(obs::EventKind::kRelease, tc.txn.id(),
                             committed ? 1 : 0, rec.obj, rec.word, rec.write, 0,
                             tc.txn.start_seq());
    if (rec.versioned) {
      // Versioned word: release = publish a fresh stamp. On commit the
      // stamp is the commit seq; on abort it is a fresh clock draw too —
      // the data was undone, but re-stamping with the OLD version would
      // let a concurrent reader's seqlock re-check pass after it loaded
      // the aborted (since-undone) value. No queues to wake.
      if (tc.txn.commitVersion_ == 0) tc.txn.commitVersion_ = advance_version_clock();
      as_atomic(rec.word)->store(version_stamp(tc.txn.commitVersion_),
                                 std::memory_order_release);
      return;
    }
    auto* aw = as_atomic(rec.word);
    LockWord w = aw->load(std::memory_order_acquire);
    LockWord target;
    do {
      target = without_member(w, myBit);
      if (sole_member(w, myBit)) target = without_writer(target);
      if (rec.setUpgrader) target = without_upgrader(target);
    } while (!aw->compare_exchange_weak(w, target, std::memory_order_acq_rel));
    if (has_waiters(target)) {
      bool seen = false;
      for (size_t i = 0; i < numWake; i++)
        if (wakeWords[i] == rec.word) { seen = true; break; }
      if (seen) return;
      if (numWake < kMaxWake)
        wakeWords[numWake++] = rec.word;
      else
        lot.unpark_word(tc, rec.word);
    }
  });
  for (size_t i = 0; i < numWake; i++) lot.unpark_word(tc, wakeWords[i]);
}

// ---------------------------------------------------------------------------
// Versioned (invisible-reader) paths — LockMap::kVersioned
// ---------------------------------------------------------------------------

namespace {

// A foreign writer holds a versioned word only between its acquire and
// its commit/abort release; spin this long for it to pass, then abort.
// Versioned waiters never enqueue, so these words contribute no
// deadlock edges — bounded spin + abort keeps that property.
constexpr int kVersionedSpinLimit = 64;

[[noreturn]] void version_abort(ThreadContext& tc, runtime::ManagedObject* obj,
                                LockWord* word, int reason) {
  tc.stats.versionAborts++;
  if (obj && obj->h.cls)
    obj->h.cls->versionAborts.fetch_add(1, std::memory_order_relaxed);
  obs::record_lock_event(obs::EventKind::kVersionAbort, tc.txn.id(), reason, obj,
                         word, false, 0, tc.txn.start_seq());
  abort_and_restart(tc);
}

}  // namespace

uint64_t LockEngine::versioned_read(ThreadContext& tc, runtime::ManagedObject* obj,
                                    LockWord* word, const std::atomic<uint64_t>* slot) {
  auto* aw = as_atomic(word);
  if (tc.txn.inevitable()) {
    // Inevitable sections must never abort, so they cannot carry a
    // revocable read set: read through an exclusive lock instead.
    versioned_acquire_write(tc, obj, word);
    return slot->load(std::memory_order_relaxed);
  }
  const uint64_t rv = tc.txn.readVersion_;
  int spins = 0;
  for (;;) {
    const LockWord v1 = aw->load(std::memory_order_acquire);
    if (version_locked(v1)) {
      if (version_owner(v1) == tc.txn.id()) {
        tc.stats.checkOwned++;
        return slot->load(std::memory_order_relaxed);  // reading our own write
      }
      if (++spins <= kVersionedSpinLimit) {
        Safepoint::poll(tc);
        std::this_thread::yield();
        continue;
      }
      version_abort(tc, obj, word, obs::kVersionAbortWriteConflict);
    }
    // Sandboxing: a stamp later than our snapshot aborts the read BEFORE
    // the value can influence control flow — a zombie section never gets
    // to observe state inconsistent with readVersion_.
    if (version_of(v1) > rv) version_abort(tc, obj, word, obs::kVersionAbortStale);
    const uint64_t value = slot->load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    // Seqlock re-check: an unchanged word proves no writer overlapped
    // the data load; on change the loaded value is discarded unseen.
    if (aw->load(std::memory_order_relaxed) != v1) {
      spins = 0;
      continue;
    }
    tc.stats.versionedReads++;
    tc.txn.record_versioned_read(obj, word, v1);
    return value;
  }
}

bool LockEngine::versioned_acquire_write(ThreadContext& tc, runtime::ManagedObject* obj,
                                         LockWord* word) {
  auto* aw = as_atomic(word);
  const int myId = tc.txn.id();
  const LockWord lockedWord = version_locked_word(myId);
  // Fault plan parity with acquire_read/acquire_write: at most one
  // injected CAS failure per call.
  bool injectCasFail = fault::should_fire(fault::Site::kLockCas);
  int spins = 0;
  bool contended = false;
  for (;;) {
    LockWord w = aw->load(std::memory_order_acquire);
    if (version_locked(w)) {
      if (version_owner(w) == myId) {
        tc.stats.checkOwned++;
        return false;  // already ours
      }
      if (!contended) {
        contended = true;
        tc.stats.contendedAcquires++;
        runtime::lockplan::note_contention(obj, true);
        obs::record_lock_event(obs::EventKind::kBlocked, myId, -1, obj, word,
                               true, 0, tc.txn.start_seq());
        if (tc.txn.inevitable())
          tc.lockWaitSinceNanos.store(now_nanos(), std::memory_order_release);
      }
      ++spins;
      if (!tc.txn.inevitable()) {
        if (spins > kVersionedSpinLimit)
          version_abort(tc, obj, word, obs::kVersionAbortWriteConflict);
      } else if ((spins & 0x3FF) == 0) {
        // Inevitable sections cannot abort themselves; if the owner is
        // parked in some wait queue, ask IT to abort and release.
        auto& mgr = TxnManager::instance();
        const int owner = version_owner(w);
        if (Transaction* t = mgr.lookup(owner))
          mgr.request_abort(owner, t->start_seq());
      }
      Safepoint::poll(tc);
      std::this_thread::yield();
      continue;
    }
    // A stamp past our snapshot means a commit overtook this section; a
    // lock on top would make validation wrongly accept any read-set
    // entry for the same word (locked-by-self passes unconditionally).
    if (version_of(w) > tc.txn.readVersion_ && !tc.txn.inevitable())
      version_abort(tc, obj, word, obs::kVersionAbortStale);
    if (injectCasFail) {
      injectCasFail = false;
      tc.stats.casFailures++;
      continue;
    }
    if (aw->compare_exchange_weak(w, lockedWord, std::memory_order_acq_rel)) {
      if (contended && tc.txn.inevitable())
        tc.lockWaitSinceNanos.store(0, std::memory_order_release);
      tc.txn.record_versioned_lock(obj, word);
      tc.txn.hasVersionedWrite_ = true;
      tc.stats.acqRls++;
      if (obs::full_trace())
        obs::record_lock_event(obs::EventKind::kAcquire, myId, 0, obj, word, true,
                               0, tc.txn.start_seq());
      return true;
    }
    tc.stats.casFailures++;
  }
}

void LockEngine::versioned_validate(ThreadContext& tc) {
  auto& txn = tc.txn;
  const size_t n = txn.readSet_.size();
  if (n == 0) return;
  tc.stats.validations += n;
  bool ok = true;
  runtime::ManagedObject* failObj = nullptr;
  LockWord* failWord = nullptr;
  // Clock unchanged since the snapshot -> no commit can have re-stamped
  // anything; skip the per-entry sweep (the common read-only case).
  if (version_clock() != txn.readVersion_) {
    const int myId = txn.id();
    txn.readSet_.for_each([&](const VersionedRead& vr) {
      if (!ok) return;
      const LockWord w = as_atomic(vr.word)->load(std::memory_order_acquire);
      if (w == vr.observed) return;                            // stamp unchanged
      if (version_locked(w) && version_owner(w) == myId) return;  // we wrote it
      ok = false;
      failObj = vr.obj;
      failWord = vr.word;
    });
  }
  if (!ok) version_abort(tc, failObj, failWord, obs::kVersionAbortValidation);
  // The validation event carries the snapshot (seq = readVersion_): the
  // oracle joins the clocks of every commit with seq <= readVersion_ —
  // the happens-before edges invisible reads otherwise leave untraced.
  if (obs::full_trace())
    obs::record(obs::EventKind::kValidate, txn.id(), static_cast<int>(n), nullptr,
                nullptr, obs::kNoIndex, false, 0, txn.start_seq(), txn.readVersion_);
}

void LockEngine::versioned_promote_for_inevitable(ThreadContext& tc) {
  auto& txn = tc.txn;
  if (txn.readSet_.size() == 0) return;
  // Lock every read-set word: each acquire re-checks the stamp against
  // the snapshot (any post-read committer re-stamped past readVersion_
  // and aborts us here, while the section is still revocable). Once all
  // entries are exclusively ours, no later committer can invalidate the
  // read set, so the section can safely become unabortable.
  txn.readSet_.for_each([&](const VersionedRead& vr) {
    versioned_acquire_write(tc, vr.obj, vr.word);
  });
  versioned_validate(tc);
}

}  // namespace sbd::core
