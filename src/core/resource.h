// Transactional-resource hook: anything with external side effects that
// participates in an atomic section (I/O wrappers, the embedded DB's
// connections, deferred thread starts) registers a TxResource with the
// current transaction. On section end the transaction either commits
// (apply deferred effects, discard undo data) or aborts (discard
// deferred effects, rearm replay buffers) every registered resource —
// the paper's transactional-wrapper protocol (§4.4).
#pragma once

#include <cstddef>
#include <vector>

#include "core/fwd.h"

namespace sbd::core {

class TxResource {
 public:
  virtual ~TxResource() = default;

  // Applies deferred irreversible effects; called with the section's
  // memory locks still held, before they are released.
  virtual void on_commit() = 0;

  // Discards deferred effects; consumed-input buffers must be rearmed
  // for replay by the retry.
  virtual void on_abort() = 0;

  // Bytes currently buffered on behalf of the transaction (Table 8
  // "Buffers" accounting).
  virtual size_t buffered_bytes() const { return 0; }

  // Managed objects the resource keeps alive (GC roots).
  virtual void collect_roots(std::vector<runtime::ManagedObject*>& out) const {}
};

}  // namespace sbd::core
