// The SBD transaction: one per active atomic section per thread.
//
// Properties fixed by the paper's memory-access semantics (§3.2):
//   - pessimistic concurrency control, eager conflict detection
//   - eager version management: writes go in place, old values to an undo log
//   - visible readers: a reader's bit is set in the lock word
//   - field / array-element conflict granularity
//   - deterministic deadlock resolution (blocking Dreadlocks variant,
//     abort the youngest member of the cycle)
//   - fair FIFO wait queues, upgrading readers jump to the front
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <type_traits>
#include <vector>

#include "core/checkpoint.h"
#include "core/fwd.h"
#include "core/ids.h"
#include "core/lockword.h"
#include "core/logarena.h"
#include "core/queue.h"
#include "core/resource.h"
#include "core/stats.h"

namespace sbd::core {

// One acquired field/element lock (the visible R-W set, Table 8).
struct LockRecord {
  runtime::ManagedObject* obj;  // keeps the instance alive for the GC
  LockWord* word;
  bool write;
  bool setUpgrader;  // we set U during an upgrade and must clear it
  // The word is a versioned stamp word (LockMap::kVersioned): held
  // exclusively via version_locked_word(), released by storing a fresh
  // commit stamp instead of clearing member bits.
  bool versioned = false;
};

// One eager-versioning undo entry: old value of a 64-bit slot.
struct UndoEntry {
  runtime::ManagedObject* obj;  // object the slot belongs to (GC root for old ref values)
  uint64_t* slot;
  uint64_t oldValue;
};

// One invisible read of a versioned word: the stamp observed when the
// value was read. Re-validated at split/commit — the section may only
// commit if every observed stamp is still current (or the word is now
// write-locked by this very transaction).
struct VersionedRead {
  runtime::ManagedObject* obj;  // keeps the instance alive for the GC
  LockWord* word;
  LockWord observed;  // full word value at read time (a stamp, LSB 0)
};

// The global version/commit clock backing LockMap::kVersioned stamps
// and obs commit sequence numbers (they are the same counter, so a
// stamp IS the commit seq of the write that produced it). version_clock
// reads the current value; advance_version_clock returns the new,
// strictly positive value (first advance returns 1).
uint64_t version_clock();
uint64_t advance_version_clock();

class Transaction {
 public:
  Transaction() = default;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  bool active() const { return id_ >= 0; }
  int id() const { return id_; }
  LockWord mask() const { return mask_; }
  uint64_t start_seq() const { return startSeq_; }

  void log_undo(runtime::ManagedObject* obj, uint64_t* slot, uint64_t oldValue) {
    undoLog_.push_back(UndoEntry{obj, slot, oldValue});
  }
  void record_lock(runtime::ManagedObject* obj, LockWord* word, bool write) {
    lockRecords_.push_back(LockRecord{obj, word, write, false, false});
  }
  void record_versioned_lock(runtime::ManagedObject* obj, LockWord* word) {
    lockRecords_.push_back(LockRecord{obj, word, true, false, true});
  }
  void record_versioned_read(runtime::ManagedObject* obj, LockWord* word, LockWord observed) {
    readSet_.push_back(VersionedRead{obj, word, observed});
  }
  // New instances created in this section: on commit their lock pointer
  // flips null -> UNALLOC; on abort they are garbage (init log, §3.3).
  void log_new(runtime::ManagedObject* obj) { initLog_.push_back(obj); }

  // Registers a transactional resource for this section (idempotent).
  void add_resource(TxResource* r);

  // Defers an action (thread start, notify) to successful commit (§3.5).
  void defer(std::function<void()> action) { deferred_.push_back(std::move(action)); }

  // Abort signalling: set by the deadlock resolver on a *waiting*
  // victim; the victim notices in its park loop. Relaxed is enough: the
  // flag is advisory (the victim re-checks on every grant probe / park
  // tick) and carries no data dependency.
  bool abort_requested() const { return abortRequested_.load(std::memory_order_relaxed); }
  void request_abort() { abortRequested_.store(true, std::memory_order_relaxed); }
  void clear_abort_request() { abortRequested_.store(false, std::memory_order_relaxed); }

  // Inevitable sections (core/inevitable.h) must never be aborted: the
  // deadlock resolver skips them when picking victims.
  bool inevitable() const { return inevitable_.load(std::memory_order_acquire); }
  void set_inevitable(bool v) { inevitable_.store(v, std::memory_order_release); }

  // Published while the transaction is parked on a lock word, so the
  // deadlock resolver can pick only waiting victims and wake them
  // (ParkingLot::unpark_txn uses the word as the bucket key). The
  // pointer is a key, not a dereference target, for remote readers.
  bool is_waiting() const { return waiting_.load(std::memory_order_acquire); }
  const LockWord* waiting_on() const { return waitingOn_.load(std::memory_order_acquire); }
  void set_waiting(const LockWord* w) {
    waitingOn_.store(w, std::memory_order_release);
    waiting_.store(w != nullptr, std::memory_order_release);
  }

  size_t rw_set_bytes() const {
    return lockRecords_.size() * sizeof(LockRecord) + undoLog_.size() * sizeof(UndoEntry) +
           readSet_.size() * sizeof(VersionedRead);
  }
  size_t init_log_bytes() const { return initLog_.size() * sizeof(void*); }
  size_t buffer_bytes() const;

  size_t num_locks() const { return lockRecords_.size(); }
  size_t undo_entries() const { return undoLog_.size(); }
  const SegmentedLog<LockRecord>& lock_records() const { return lockRecords_; }
  const SegmentedLog<UndoEntry>& undo_log() const { return undoLog_; }
  const SegmentedLog<VersionedRead>& read_set() const { return readSet_; }
  const SegmentedLog<runtime::ManagedObject*>& init_log() const { return initLog_; }
  const std::vector<TxResource*>& resources() const { return resources_; }

  // Internal to the STM engine (section control and lock engine).
  // User code must treat everything below as private.
  int id_ = -1;
  LockWord mask_ = 0;
  uint64_t startSeq_ = 0;
  std::atomic<bool> abortRequested_{false};
  std::atomic<bool> inevitable_{false};
  std::atomic<bool> waiting_{false};
  std::atomic<const LockWord*> waitingOn_{nullptr};

  // Segmented arenas, not vectors: entries never move (the upgrade path
  // and the GC hold entry pointers across pushes) and clear() keeps the
  // chunks, so steady-state sections allocate nothing.
  SegmentedLog<LockRecord> lockRecords_;
  SegmentedLog<UndoEntry> undoLog_;
  SegmentedLog<runtime::ManagedObject*> initLog_;
  std::vector<TxResource*> resources_;
  std::vector<std::function<void()>> deferred_;

  // Versioned (invisible-reader) state. readVersion_ is the snapshot
  // the section reads at: the clock value when the section began. Every
  // versioned read with stamp <= readVersion_ is consistent with that
  // snapshot; a higher stamp aborts the read before the value can be
  // used (sandboxing). commitVersion_ is the stamp this section's
  // versioned writes publish, drawn once per section.
  SegmentedLog<VersionedRead> readSet_;
  uint64_t readVersion_ = 0;
  uint64_t commitVersion_ = 0;
  bool hasVersionedWrite_ = false;
};

// Thread-local allocation buffer handed out by the managed heap.
struct Tlab {
  std::byte* cur = nullptr;
  std::byte* end = nullptr;
};

// Safepoint states for the stop-the-world GC.
enum class ThreadState : int {
  kRunning = 0,
  kSafe = 1,    // blocked in a runtime-controlled wait; stack is stable
  kParked = 2,  // parked at a safepoint poll
};

// Everything the runtime keeps per OS thread participating in SBD.
struct ThreadContext {
  ThreadContext();
  ~ThreadContext();

  uint64_t uid = 0;  // stable identity for interval accounting

  Transaction txn;
  CheckpointEngine engine;
  Checkpoint sectionStart;

  StatsCounters stats;
  Tlab tlab;

  // canSplit enforcement (dynamic analog of the paper's modifiers).
  int noSplitDepth = 0;    // §3.7 composability: splits ignored while > 0
  int canSplitDepth = 0;   // >0 while inside a canSplit-capable scope
  bool allowSplitArmed = false;  // next canSplit call is allowed (allowSplit)
  // Values at the last checkpoint: these live off-stack, so an abort
  // must restore them explicitly alongside the stack bytes.
  int ckNoSplitDepth = 0;
  int ckCanSplitDepth = 0;
  bool ckAllowSplitArmed = false;

  // Safepoint machinery.
  std::atomic<int> state{static_cast<int>(ThreadState::kRunning)};
  ucontext_t spillCtx{};   // registers at park/safe-enter, for the GC scan
  void* spillSp = nullptr; // SP at park/safe-enter (low end of scannable stack)
  void* stackAnchor = nullptr;
  uint32_t pollCountdown = 0;

  // Virtual-time accounting (Figure 7 on the 1-core host).
  uint64_t blockedNanos = 0;
  uint64_t busyNanosCommitted = 0;
  uint64_t abortedWorkNanos = 0;
  uint64_t sectionStartNanos = 0;
  uint64_t sectionBlockedNanos = 0;

  // The instance this thread's parked lock wait pins (GC root; the
  // word pointer itself lives in txn.waiting_on()).
  runtime::ManagedObject* waitingObj = nullptr;

  bool inSbd = false;  // between enter_thread and leave_thread
  uint64_t retrySleepNanos = 0;

  // Robustness bookkeeping (core/degrade.h, core/watchdog.h).
  // consecutiveAborts: aborts of the current logical section without an
  // intervening commit; read by the watchdog, so atomic (relaxed).
  std::atomic<uint64_t> consecutiveAborts{0};
  // True while this thread holds the global serialization token after
  // retry-budget escalation; owner-thread-only, released at commit.
  bool holdsSerialToken = false;
  // now_nanos() when this thread started blocking for a transaction id,
  // 0 otherwise (watchdog visibility into §3.3 pool starvation).
  std::atomic<uint64_t> idWaitSinceNanos{0};
  // now_nanos() when this thread entered a lock wait queue, 0 otherwise
  // (watchdog visibility into blocked transactions).
  std::atomic<uint64_t> lockWaitSinceNanos{0};

  // Thread-local memory with undo (§3.5): values live in a deque so
  // undo-log slot pointers stay stable; scanned conservatively by GC.
  std::deque<uint64_t> txLocalSlots;
};

// Returns the calling thread's context, creating it on first use.
ThreadContext& tls_context();
// Returns nullptr if the thread never touched SBD.
ThreadContext* tls_context_if_present();

// Process-wide transaction bookkeeping.
class TxnManager {
 public:
  static TxnManager& instance();

  TxnIdPool& id_pool() { return idPool_; }

  uint64_t next_seq() { return seq_.fetch_add(1, std::memory_order_relaxed); }

  void publish(int id, Transaction* txn) {
    byId_[id].store(txn, std::memory_order_release);
  }
  void unpublish(int id) { byId_[id].store(nullptr, std::memory_order_release); }
  Transaction* lookup(int id) { return byId_[id].load(std::memory_order_acquire); }

  std::atomic<uint64_t>& digest_slot(int id) { return digests_[id]; }

  // Asks the transaction currently holding `victimId` to abort, if it is
  // still the one with `expectedSeq` (guards against id reuse).
  bool request_abort(int victimId, uint64_t expectedSeq);

  // Thread registry (stats aggregation, safepoints, GC root scan).
  void register_thread(ThreadContext* tc);
  void unregister_thread(ThreadContext* tc);
  template <typename Fn>
  void for_each_thread(Fn&& fn) {
    std::lock_guard<std::mutex> lk(registryMu_);
    for (ThreadContext* tc : threads_) fn(tc);
  }

  StatsCounters snapshot_stats();
  // Zeroes the aggregate baseline so the next snapshot measures a window.
  StatsCounters retired_stats_unlocked() const { return retired_; }

  // Finished threads' interval accounting, kept so the virtual-time
  // model still sees workers that were joined before the measurement
  // window closed.
  struct RetiredWork {
    uint64_t uid;
    uint64_t busyNanos;
    uint64_t abortedNanos;
    uint64_t blockedNanos;
  };
  template <typename Fn>
  void for_each_retired_work(Fn&& fn) {
    std::lock_guard<std::mutex> lk(registryMu_);
    for (const RetiredWork& w : retiredWork_) fn(w);
  }

 private:
  TxnManager() = default;

  TxnIdPool idPool_;
  std::atomic<uint64_t> seq_{1};
  std::atomic<Transaction*> byId_[kMaxTxns] = {};
  std::atomic<uint64_t> digests_[kMaxTxns] = {};

  std::mutex registryMu_;
  std::vector<ThreadContext*> threads_;
  StatsCounters retired_;
  std::vector<RetiredWork> retiredWork_;
  std::atomic<uint64_t> uidGen_{1};
};

// ---------------------------------------------------------------------------
// Section control (begin / split / end) and the abort path.
// ---------------------------------------------------------------------------

// Begins the initial atomic section of the calling thread. The caller
// must already have called tc.engine.set_anchor_at() higher up the
// same stack. Acquires a transaction id (may block).
void begin_initial_section(ThreadContext& tc);

// Ends the active section: commits resources, flips the init log,
// releases locks, runs deferred actions.
void commit_section(ThreadContext& tc);

// Ends the active section and starts the next one (the split operation,
// §2.1). Reuses the transaction id. Takes a fresh checkpoint so an
// abort of the *next* section restarts here.
void split_section(ThreadContext& tc);

// Halves of the id-releasing split (join/wait/blocking-read paths,
// §3.5): commit and give the transaction id back, run the blocking
// operation, then re-acquire an id and take the next checkpoint.
void commit_and_release_id(ThreadContext& tc);
void reacquire_id_and_checkpoint(ThreadContext& tc);

// As split_section, but releases the transaction id between sections
// (used by join and condition waits, §3.5) and runs `blocked` without
// holding an id; then re-acquires an id and checkpoints.
//
// RESTORE-SAFETY: the checkpoint is taken INSIDE this call, in the
// caller's frame. If the new section later aborts, the retry resumes
// here and re-unwinds the caller's scopes — any non-trivially-
// destructible local (std::function, shared_ptr, std::string) between
// this call and the abort would be destroyed twice. The template +
// static_assert keeps at least the callback itself safe; callers must
// hold only trivially-destructible locals across this call.
template <typename Fn>
void split_section_releasing_id(ThreadContext& tc, Fn&& blocked) {
  static_assert(
      std::is_trivially_destructible_v<std::remove_reference_t<Fn>>,
      "blocked callback must be trivially destructible: an abort of the next "
      "section re-unwinds this frame (capture by reference, not by value)");
  commit_and_release_id(tc);
  blocked();
  reacquire_id_and_checkpoint(tc);
}

// Ends the final section of the thread (thread end).
void end_final_section(ThreadContext& tc);

// Aborts the active section and restarts it from its checkpoint.
// Never returns to the caller.
[[noreturn]] void abort_and_restart(ThreadContext& tc);

// ---------------------------------------------------------------------------
// The lock engine: the Figure 5 slow path behind the field-access fast path.
// ---------------------------------------------------------------------------

class LockEngine {
 public:
  // Ensures the current transaction holds a read lock on `word`.
  // Pre: the fast path already established that our bit is not set.
  static void acquire_read(ThreadContext& tc, runtime::ManagedObject* obj, LockWord* word);

  // Ensures a write lock, upgrading a held read lock if needed.
  static void acquire_write(ThreadContext& tc, runtime::ManagedObject* obj, LockWord* word);

  // Releases every lock in the transaction's record list (commit/abort)
  // and wakes each distinct wait queue once, after all words cleared.
  // `committed` distinguishes commit-time from abort-time release in
  // the full trace (the oracle derives happens-before edges only from
  // committed releases).
  static void release_all(ThreadContext& tc, bool committed);

  // --- Versioned (invisible-reader) paths, LockMap::kVersioned ----------
  // Invisible read of the 64-bit value behind `slot`, covered by the
  // versioned stamp `word`: load stamp, load value, fence, re-check the
  // stamp, append to the read set. Aborts the section (never returns)
  // on a stale stamp or a foreign write lock that outlasts the bounded
  // spin — versioned words never block, so they add no deadlock edges.
  static uint64_t versioned_read(ThreadContext& tc, runtime::ManagedObject* obj,
                                 LockWord* word, const std::atomic<uint64_t>* slot);

  // Exclusive write lock on a versioned word. Returns true on first
  // acquisition in this section (caller must log undo), false when the
  // word was already ours. Aborts on conflict unless inevitable.
  static bool versioned_acquire_write(ThreadContext& tc, runtime::ManagedObject* obj,
                                      LockWord* word);

  // Re-validates the whole read set; aborts the section on any changed
  // stamp. Called at the top of commit/split, before external effects.
  static void versioned_validate(ThreadContext& tc);

  // Called by become_inevitable() before the section turns unabortable:
  // validates the read set and promotes every entry to an exclusive
  // write lock, so no later committer can invalidate it (inevitable
  // sections must never abort). May abort — the section is still
  // revocable at this point.
  static void versioned_promote_for_inevitable(ThreadContext& tc);
};

// ---------------------------------------------------------------------------
// Safepoints (stop-the-world support for the conservative GC).
// ---------------------------------------------------------------------------

class Safepoint {
 public:
  // Cheap poll: parks the thread if a stop-the-world is requested.
  static void poll(ThreadContext& tc) {
    if (stopRequested_.load(std::memory_order_relaxed)) park(tc);
  }

  // RAII safe region around any blocking OS wait. While inside, the GC
  // may scan the thread's stack above the entry point; the enclosed code
  // must not hold the only reference to a managed object in locals
  // (runtime-internal waits satisfy this by keeping side records).
  class SafeScope {
   public:
    explicit SafeScope(ThreadContext& tc);
    ~SafeScope();

   private:
    ThreadContext& tc_;
  };

  // Stops all registered threads except the caller. Only one stopper at
  // a time; nested stops are programmer error.
  static void stop_world(ThreadContext& requester);
  static void resume_world(ThreadContext& requester);

  // Bounded stop_world: gives up and restores the running world when
  // `timeoutNanos` elapses (0 = unlimited) or `cancel` (may be null)
  // becomes true — e.g. a mutator that never reaches a poll, or the
  // watchdog pulling the plug on a wedged re-plan. Returns true when
  // the world is stopped (caller must resume_world), false when it
  // gave up (world keeps running; do NOT resume).
  static bool try_stop_world(ThreadContext& requester, uint64_t timeoutNanos,
                             const std::atomic<bool>* cancel = nullptr);

  static bool stop_requested() {
    return stopRequested_.load(std::memory_order_relaxed);
  }

 private:
  static void park(ThreadContext& tc);
  static std::atomic<bool> stopRequested_;
};

}  // namespace sbd::core
