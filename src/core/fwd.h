// Shared forward declarations and compile-time constants of the SBD STM.
#pragma once

#include <cstdint>

namespace sbd {

class Transaction;
struct ThreadContext;

namespace runtime {
struct ManagedObject;  // defined in runtime/object.h; core treats it opaquely
}

namespace core {

// The lock structure is one 64-bit word (the largest CAS the paper's
// platform supports): 56 owner bits, the writer flag W, the upgrader
// bit U, and a 6-bit wait-queue id (paper §4.2 / Fig. 4b).
inline constexpr int kMaxTxns = 56;          // bit-set size -> max concurrent txns
inline constexpr int kQueueIdBits = 6;       // 6-bit queue id
inline constexpr int kNumQueues = 63;        // ids 1..63; 0 means "no queue"

using LockWord = uint64_t;

}  // namespace core
}  // namespace sbd
