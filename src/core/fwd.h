// Shared forward declarations and compile-time constants of the SBD STM.
#pragma once

#include <cstdint>

namespace sbd {

class Transaction;
struct ThreadContext;

namespace runtime {
struct ManagedObject;  // defined in runtime/object.h; core treats it opaquely
}

namespace core {

// The lock structure is one 64-bit word (the largest CAS the paper's
// platform supports): 56 owner bits, the writer flag W, the upgrader
// bit U, and a has-waiters bit (paper §4.2 / Fig. 4b, with the 6-bit
// queue-id field of the original design collapsed to one bit — waiters
// live in the parking lot's stripe table, keyed by word address).
inline constexpr int kMaxTxns = 56;          // bit-set size -> max concurrent txns

using LockWord = uint64_t;

}  // namespace core
}  // namespace sbd
