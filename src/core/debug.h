// The paper's §6 debug mode: "We implemented a small debug mode in our
// runtime system that logs the blocked threads, and deadlock
// situations. This information together with the fact that SBD allows
// a programmer to incrementally add concurrency allows to resolve
// these issues mechanically by looking through this log."
//
// When enabled, the STM records an event for every contended lock wait
// and every resolved deadlock, with the transaction ids involved — the
// raw material for deciding where to put the next split.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sbd::core {

enum class DebugEventKind : uint8_t {
  kBlocked,    // a transaction entered a wait queue
  kGranted,    // ...and eventually got the lock
  kDeadlock,   // a cycle was detected; `other` is the chosen victim
  kAborted,    // a transaction rolled back and will retry
  kWatchdogStall,  // watchdog saw a transaction blocked past the threshold
  kIdPoolStall,    // id-pool acquire exceeded a timeout slice (§3.3 pressure)
  kEscalated,      // retry budget exhausted; section now runs serialized
};

struct DebugEvent {
  DebugEventKind kind;
  int txnId;            // who the event happened to
  int other;            // victim id (kDeadlock), -1 otherwise
  uint64_t lockAddr;    // identity of the contended lock word (0 if n/a)
  bool wantWrite;
  uint64_t timestampNanos;
};

class DebugLog {
 public:
  static void enable(bool on);
  static bool enabled();

  static void record(DebugEventKind kind, int txnId, int other, const void* lock,
                     bool wantWrite);

  // Drains and returns all recorded events (oldest first).
  static std::vector<DebugEvent> drain();
  static size_t size();

  // Renders events into the per-lock contention summary the paper's
  // workflow needs: "which locks block whom, how often".
  static std::string summarize(const std::vector<DebugEvent>& events);
};

}  // namespace sbd::core
