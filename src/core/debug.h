// The paper's §6 debug mode: "We implemented a small debug mode in our
// runtime system that logs the blocked threads, and deadlock
// situations. This information together with the fact that SBD allows
// a programmer to incrementally add concurrency allows to resolve
// these issues mechanically by looking through this log."
//
// This is now a thin compatibility wrapper over the sbd::obs tracing +
// metrics layer (core/obs.h), the way core/inject.h wraps core/fault.h.
// Events go into per-thread lock-free ring buffers, carry symbolic lock
// identity (class:field via the runtime class registry, stable under
// lock-pool address recycling), and aggregate into the obs metrics
// snapshot. The original DebugLog API is preserved for callers and
// tests; new call sites should use sbd::obs directly.
#pragma once

#include <string>
#include <vector>

#include "core/obs.h"

namespace sbd::core {

using DebugEventKind = obs::EventKind;
using DebugEvent = obs::Event;

class DebugLog {
 public:
  static void enable(bool on) { obs::set_enabled(on); }
  static bool enabled() { return obs::enabled(); }

  // Records an unsymbolized event (identity by raw address only).
  // Engine-internal call sites use obs::record_lock_event instead,
  // which captures the class:field identity at record time.
  static void record(DebugEventKind kind, int txnId, int other, const void* lock,
                     bool wantWrite) {
    obs::record(kind, txnId, other, lock, nullptr, obs::kNoIndex, wantWrite);
  }

  // Drains and returns all recorded events (oldest first, merged across
  // threads by timestamp).
  static std::vector<DebugEvent> drain() { return obs::drain(); }
  static size_t size() { return obs::approx_size(); }

  // Renders events into the per-lock contention summary the paper's
  // workflow needs: "which locks block whom, how often".
  static std::string summarize(const std::vector<DebugEvent>& events) {
    return obs::summarize(events);
  }
};

}  // namespace sbd::core
