#include "core/degrade.h"

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "core/obs.h"
#include "core/transaction.h"

namespace sbd::core::degrade {

namespace {

std::atomic<uint64_t> gRetryBudget{64};
std::atomic<uint64_t> gEscalations{0};

// The serialization token. A plain bool under a mutex (not a
// std::mutex held across the section) because the holder keeps it
// across aborts — i.e. across setcontext stack restores, which a held
// std::unique_lock would not survive.
std::mutex gTokenMu;
std::condition_variable gTokenCv;
bool gTokenHeld = false;

std::atomic<uint64_t> gReplanWedges{0};
std::atomic<uint64_t> gReplanWedgeBudget{3};

}  // namespace

void set_retry_budget(uint64_t aborts) {
  gRetryBudget.store(aborts, std::memory_order_relaxed);
}

uint64_t retry_budget() { return gRetryBudget.load(std::memory_order_relaxed); }

uint64_t escalations() { return gEscalations.load(std::memory_order_relaxed); }

bool serialized(const ThreadContext& tc) { return tc.holdsSerialToken; }

void on_abort(ThreadContext& tc) {
  const uint64_t aborts =
      tc.consecutiveAborts.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t budget = gRetryBudget.load(std::memory_order_relaxed);
  if (budget == 0 || tc.holdsSerialToken || aborts < budget) return;
  {
    // The wait can be long (another escalated section is running); let
    // the GC scan us meanwhile. We hold no SBD locks here (pre: caller
    // already ran LockEngine::release_all).
    Safepoint::SafeScope safe(tc);
    std::unique_lock<std::mutex> lk(gTokenMu);
    gTokenCv.wait(lk, [] { return !gTokenHeld; });
    gTokenHeld = true;
  }
  tc.holdsSerialToken = true;
  tc.stats.escalations++;
  gEscalations.fetch_add(1, std::memory_order_relaxed);
  obs::record(obs::EventKind::kEscalated, tc.txn.id(), -1, nullptr, nullptr,
              obs::kNoIndex, false);
}

void on_commit(ThreadContext& tc) {
  tc.consecutiveAborts.store(0, std::memory_order_relaxed);
  if (!tc.holdsSerialToken) return;
  tc.holdsSerialToken = false;
  {
    std::lock_guard<std::mutex> lk(gTokenMu);
    gTokenHeld = false;
  }
  gTokenCv.notify_one();
}

void note_replan_wedged() {
  gReplanWedges.fetch_add(1, std::memory_order_relaxed);
}

uint64_t replans_wedged() { return gReplanWedges.load(std::memory_order_relaxed); }

void set_replan_wedge_budget(uint64_t wedges) {
  gReplanWedgeBudget.store(wedges, std::memory_order_relaxed);
}

uint64_t replan_wedge_budget() {
  return gReplanWedgeBudget.load(std::memory_order_relaxed);
}

bool replan_quarantined() {
  const uint64_t budget = gReplanWedgeBudget.load(std::memory_order_relaxed);
  return budget != 0 && gReplanWedges.load(std::memory_order_relaxed) >= budget;
}

}  // namespace sbd::core::degrade
