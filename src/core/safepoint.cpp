#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/timing.h"
#include "core/fault.h"
#include "core/obs.h"
#include "core/transaction.h"

namespace sbd::core {

std::atomic<bool> Safepoint::stopRequested_{false};

namespace {
std::mutex gSpMu;
std::condition_variable gSpCv;
ThreadContext* gStopper = nullptr;

inline void* sp_from(const ucontext_t& ctx) {
#if defined(__x86_64__)
  return reinterpret_cast<void*>(ctx.uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  return reinterpret_cast<void*>(ctx.uc_mcontext.sp);
#endif
}

// Spills the register file into the context so a conservative scan sees
// references that currently live only in registers.
inline void spill(ThreadContext& tc) {
  getcontext(&tc.spillCtx);
  tc.spillSp = sp_from(tc.spillCtx);
}
}  // namespace

Safepoint::SafeScope::SafeScope(ThreadContext& tc) : tc_(tc) {
  spill(tc_);
  tc_.state.store(static_cast<int>(ThreadState::kSafe), std::memory_order_release);
  // The stopper polls with a timeout, so a lost wakeup only delays it.
  gSpCv.notify_all();
}

Safepoint::SafeScope::~SafeScope() {
  if (stopRequested_.load(std::memory_order_acquire)) {
    std::unique_lock<std::mutex> lk(gSpMu);
    gSpCv.wait(lk, [] { return !stopRequested_.load(std::memory_order_acquire); });
  }
  tc_.state.store(static_cast<int>(ThreadState::kRunning), std::memory_order_release);
}

void Safepoint::park(ThreadContext& tc) {
  // Fault site: a mutator slow to reach its safepoint. This is what a
  // wedged stop-the-world looks like from the stopper's side, so chaos
  // can drive the re-plan budget/watchdog recovery path.
  if (const uint64_t d = fault::fire_delay_nanos(fault::Site::kReplanPoll))
    std::this_thread::sleep_for(std::chrono::nanoseconds(d));
  spill(tc);
  std::unique_lock<std::mutex> lk(gSpMu);
  if (!stopRequested_.load(std::memory_order_acquire)) return;
  tc.state.store(static_cast<int>(ThreadState::kParked), std::memory_order_release);
  gSpCv.notify_all();
  gSpCv.wait(lk, [] { return !stopRequested_.load(std::memory_order_acquire); });
  tc.state.store(static_cast<int>(ThreadState::kRunning), std::memory_order_release);
}

void Safepoint::stop_world(ThreadContext& requester) {
  const bool stopped = try_stop_world(requester, /*timeoutNanos=*/0, nullptr);
  SBD_CHECK(stopped);  // unbounded: can only return true
}

bool Safepoint::try_stop_world(ThreadContext& requester, uint64_t timeoutNanos,
                               const std::atomic<bool>* cancel) {
  const uint64_t t0 = now_nanos();
  const uint64_t deadline = timeoutNanos == 0 ? 0 : t0 + timeoutNanos;
  const auto give_up = [&] {
    if (cancel && cancel->load(std::memory_order_acquire)) return true;
    return deadline != 0 && now_nanos() >= deadline;
  };
  // While queueing behind another stopper (GC, sampler, lock re-plan),
  // the requester must count as stopped, or the incumbent waits on us
  // forever while we wait on it: spill and go safe for the wait.
  spill(requester);
  requester.state.store(static_cast<int>(ThreadState::kSafe),
                        std::memory_order_release);
  std::unique_lock<std::mutex> lk(gSpMu);
  gSpCv.notify_all();
  // The incumbent's stop counts against our budget too: a wedged GC or
  // re-plan ahead of us must not wedge us as well.
  while (gStopper != nullptr) {
    if (give_up()) {
      requester.state.store(static_cast<int>(ThreadState::kRunning),
                            std::memory_order_release);
      return false;
    }
    gSpCv.wait_for(lk, std::chrono::microseconds(100));
  }
  requester.state.store(static_cast<int>(ThreadState::kRunning),
                        std::memory_order_release);
  gStopper = &requester;
  stopRequested_.store(true, std::memory_order_release);
  // Wait until every other registered thread is parked or in a safe
  // region. Poll with a timeout: threads that were already blocked in a
  // SafeScope never signal again.
  for (;;) {
    bool allStopped = true;
    TxnManager::instance().for_each_thread([&](ThreadContext* tc) {
      if (tc == &requester) return;
      if (tc->state.load(std::memory_order_acquire) ==
          static_cast<int>(ThreadState::kRunning))
        allStopped = false;
    });
    if (allStopped) break;  // gSpMu releases; world stays stopped via flag
    if (give_up()) {
      // Abandon the stop: un-request it and release whoever already
      // parked. The world keeps running; the caller must NOT resume.
      gStopper = nullptr;
      stopRequested_.store(false, std::memory_order_release);
      gSpCv.notify_all();
      return false;
    }
    gSpCv.wait_for(lk, std::chrono::microseconds(100));
  }
  if (obs::enabled())
    obs::record(obs::EventKind::kSafepointStop, requester.txn.id(), -1, nullptr,
                nullptr, obs::kNoIndex, false, now_nanos() - t0);
  return true;
}

void Safepoint::resume_world(ThreadContext& requester) {
  std::lock_guard<std::mutex> lk(gSpMu);
  SBD_CHECK(gStopper == &requester);
  gStopper = nullptr;
  stopRequested_.store(false, std::memory_order_release);
  gSpCv.notify_all();
}

}  // namespace sbd::core
