// Inevitable (irrevocable) transactions — the §3.4 alternative to
// transactional wrappers that the paper evaluates and rejects: "At most
// one transaction can be inevitable at any given moment in time", so
// I/O-performing sections serialize even across independent devices.
//
// We implement it anyway, for two reasons: (i) completeness — a section
// that truly cannot buffer its effect (foreign code with opaque side
// effects) needs an escape hatch; (ii) the ablation bench
// (bench_ablation_inevitable) reproduces the paper's scalability
// argument by measuring wrapper-based I/O against inevitable I/O.
//
// Semantics:
//   - become_inevitable() blocks until the calling section holds THE
//     global inevitability token (single-owner).
//   - while inevitable, the section cannot be chosen as a deadlock
//     victim and abort_and_restart() on it is a programming error;
//     external effects may be performed directly.
//   - the token releases automatically at the section's end (commit or
//     split), via a TxResource hook.
#pragma once

#include "core/fwd.h"

namespace sbd::core {

// Makes the current atomic section inevitable. Blocks (releasing no
// locks) until the global token is free. Idempotent within a section.
void become_inevitable();

// True while the calling thread's active section is inevitable.
bool is_inevitable();

// Number of token acquisitions so far (tests/benches).
uint64_t inevitable_acquisitions();

}  // namespace sbd::core
