// STM statistics: the per-effect lock-operation counters of Table 7,
// the conflict counters of Table 9 (aborts, contended acquires, CAS
// failures), and the memory accounting of Table 8.
//
// Counters are kept per thread (plain uint64_t increments on the fast
// path) and aggregated on demand by the TxnManager.
#pragma once

#include <atomic>
#include <cstdint>

namespace sbd::core {

// Lock-operation effects exactly as the paper subdivides them (§5.3):
//   Init        — initialize the locks field of a new instance (lazy alloc)
//   CheckNew    — instance is new in this transaction, check only
//   CheckOwned  — lock already held, check only
//   AcqRls      — lock acquire + (deferred) release incl. undo logging
struct StatsCounters {
  uint64_t lockInit = 0;
  uint64_t checkNew = 0;
  uint64_t checkOwned = 0;
  uint64_t acqRls = 0;

  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t contendedAcquires = 0;  // went through a wait queue
  uint64_t casFailures = 0;        // lost a CAS race on a lock word
  uint64_t deadlocksResolved = 0;
  uint64_t escalations = 0;        // retry budget exhausted -> serialized retry

  // Versioned (invisible-reader) granularity, LockMap::kVersioned:
  uint64_t versionedReads = 0;  // stamp-validated reads (no lock-word store)
  uint64_t validations = 0;     // read-set entries re-validated at split/commit
  uint64_t versionAborts = 0;   // stale read / write conflict / validation fail

  // Transaction-footprint accounting (Table 8): peak bytes per
  // transaction, summed over committed/aborted transactions, plus the
  // count, so the harness can report averages.
  uint64_t rwSetBytesSum = 0;   // lock records + undo entries (old values)
  uint64_t bufferBytesSum = 0;  // transactional I/O buffers
  uint64_t initLogBytesSum = 0; // new-instance log
  uint64_t txnFootprints = 0;   // number of transactions sampled

  void add(const StatsCounters& o) {
    lockInit += o.lockInit;
    checkNew += o.checkNew;
    checkOwned += o.checkOwned;
    acqRls += o.acqRls;
    commits += o.commits;
    aborts += o.aborts;
    contendedAcquires += o.contendedAcquires;
    casFailures += o.casFailures;
    deadlocksResolved += o.deadlocksResolved;
    escalations += o.escalations;
    versionedReads += o.versionedReads;
    validations += o.validations;
    versionAborts += o.versionAborts;
    rwSetBytesSum += o.rwSetBytesSum;
    bufferBytesSum += o.bufferBytesSum;
    initLogBytesSum += o.initLogBytesSum;
    txnFootprints += o.txnFootprints;
  }

  StatsCounters diff(const StatsCounters& earlier) const {
    StatsCounters d = *this;
    d.lockInit -= earlier.lockInit;
    d.checkNew -= earlier.checkNew;
    d.checkOwned -= earlier.checkOwned;
    d.acqRls -= earlier.acqRls;
    d.commits -= earlier.commits;
    d.aborts -= earlier.aborts;
    d.contendedAcquires -= earlier.contendedAcquires;
    d.casFailures -= earlier.casFailures;
    d.deadlocksResolved -= earlier.deadlocksResolved;
    d.escalations -= earlier.escalations;
    d.versionedReads -= earlier.versionedReads;
    d.validations -= earlier.validations;
    d.versionAborts -= earlier.versionAborts;
    d.rwSetBytesSum -= earlier.rwSetBytesSum;
    d.bufferBytesSum -= earlier.bufferBytesSum;
    d.initLogBytesSum -= earlier.initLogBytesSum;
    d.txnFootprints -= earlier.txnFootprints;
    return d;
  }
};

// Field-completeness guard: add(), diff(), and obs::metrics_json()
// enumerate every counter by hand. Adding a field without updating all
// three silently loses data — trip this assert instead.
static_assert(sizeof(StatsCounters) == 17 * sizeof(uint64_t),
              "StatsCounters changed: update add(), diff(), and "
              "obs::metrics_json() to cover the new field(s), then bump "
              "this count");

// Globally shared gauges that are not per-thread.
struct GlobalGauges {
  std::atomic<uint64_t> lockStructBytes{0};  // live lock structures (Table 8 "Locks")
  std::atomic<uint64_t> heapBytes{0};        // live managed heap (Table 8 "Baseline")
  std::atomic<uint64_t> gcRuns{0};
  // Live version-stamp words of versioned-mapped classes. These are not
  // reader bit-sets, so Table 8 reports them in their own column rather
  // than inflating "Locks".
  std::atomic<uint64_t> versionWordBytes{0};
};

GlobalGauges& gauges();

}  // namespace sbd::core
