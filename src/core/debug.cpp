#include "core/debug.h"

#include <atomic>
#include <map>
#include <mutex>
#include <sstream>

#include "common/timing.h"

namespace sbd::core {

namespace {
std::atomic<bool> gEnabled{false};
std::mutex gLogMu;
std::vector<DebugEvent> gEvents;
}  // namespace

void DebugLog::enable(bool on) { gEnabled.store(on, std::memory_order_release); }

bool DebugLog::enabled() { return gEnabled.load(std::memory_order_acquire); }

void DebugLog::record(DebugEventKind kind, int txnId, int other, const void* lock,
                      bool wantWrite) {
  if (!enabled()) return;
  DebugEvent e;
  e.kind = kind;
  e.txnId = txnId;
  e.other = other;
  e.lockAddr = reinterpret_cast<uint64_t>(lock);
  e.wantWrite = wantWrite;
  e.timestampNanos = now_nanos();
  std::lock_guard<std::mutex> lk(gLogMu);
  gEvents.push_back(e);
}

std::vector<DebugEvent> DebugLog::drain() {
  std::lock_guard<std::mutex> lk(gLogMu);
  std::vector<DebugEvent> out;
  out.swap(gEvents);
  return out;
}

size_t DebugLog::size() {
  std::lock_guard<std::mutex> lk(gLogMu);
  return gEvents.size();
}

std::string DebugLog::summarize(const std::vector<DebugEvent>& events) {
  struct LockStats {
    int blocks = 0;
    int writes = 0;
  };
  std::map<uint64_t, LockStats> byLock;
  int deadlocks = 0, aborts = 0, stalls = 0, idStalls = 0, escalations = 0;
  for (const DebugEvent& e : events) {
    switch (e.kind) {
      case DebugEventKind::kBlocked: {
        auto& s = byLock[e.lockAddr];
        s.blocks++;
        if (e.wantWrite) s.writes++;
        break;
      }
      case DebugEventKind::kDeadlock:
        deadlocks++;
        break;
      case DebugEventKind::kAborted:
        aborts++;
        break;
      case DebugEventKind::kWatchdogStall:
        stalls++;
        break;
      case DebugEventKind::kIdPoolStall:
        idStalls++;
        break;
      case DebugEventKind::kEscalated:
        escalations++;
        break;
      default:
        break;
    }
  }
  std::ostringstream os;
  os << "debug log: " << events.size() << " events, " << deadlocks << " deadlocks, "
     << aborts << " aborts";
  if (stalls || idStalls || escalations)
    os << ", " << stalls << " stalls, " << idStalls << " id-pool stalls, "
       << escalations << " escalations";
  os << "\n";
  for (const auto& [addr, s] : byLock) {
    os << "  lock 0x" << std::hex << addr << std::dec << ": blocked " << s.blocks
       << "x (" << s.writes << " writes)\n";
  }
  return os.str();
}

}  // namespace sbd::core
