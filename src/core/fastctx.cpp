#include "core/fastctx.h"

#if SBD_FASTCTX

#if defined(__x86_64__)

// Offsets match FastContext in fastctx.h. The resume transfer uses
// push+ret instead of an indirect jmp so it stays valid under CET/IBT
// (return addresses are not indirect-branch targets and carry no
// endbr64 marker). The push writes to the word just below the restored
// stack pointer, which is dead by construction: nothing below the
// capture-time rsp was saved.
asm(R"(
        .text
        .globl  sbd_ctx_save
        .hidden sbd_ctx_save
        .type   sbd_ctx_save, @function
sbd_ctx_save:
        endbr64
        movq    (%rsp), %rax
        movq    %rax,  0(%rdi)
        leaq    8(%rsp), %rax
        movq    %rax,  8(%rdi)
        movq    %rbx, 16(%rdi)
        movq    %rbp, 24(%rdi)
        movq    %r12, 32(%rdi)
        movq    %r13, 40(%rdi)
        movq    %r14, 48(%rdi)
        movq    %r15, 56(%rdi)
        stmxcsr 64(%rdi)
        fnstcw  68(%rdi)
        xorl    %eax, %eax
        ret
        .size   sbd_ctx_save, .-sbd_ctx_save

        .globl  sbd_ctx_jump
        .hidden sbd_ctx_jump
        .type   sbd_ctx_jump, @function
sbd_ctx_jump:
        endbr64
        movq    16(%rdi), %rbx
        movq    24(%rdi), %rbp
        movq    32(%rdi), %r12
        movq    40(%rdi), %r13
        movq    48(%rdi), %r14
        movq    56(%rdi), %r15
        ldmxcsr 64(%rdi)
        fldcw   68(%rdi)
        movq     8(%rdi), %rsp
        pushq    0(%rdi)
        movl    $1, %eax
        ret
        .size   sbd_ctx_jump, .-sbd_ctx_jump
)");

#elif defined(__aarch64__)

asm(R"(
        .text
        .globl  sbd_ctx_save
        .hidden sbd_ctx_save
        .type   sbd_ctx_save, %function
sbd_ctx_save:
        mov     x1, sp
        str     x30, [x0, #0]
        str     x1,  [x0, #8]
        stp     x19, x20, [x0, #16]
        stp     x21, x22, [x0, #32]
        stp     x23, x24, [x0, #48]
        stp     x25, x26, [x0, #64]
        stp     x27, x28, [x0, #80]
        str     x29, [x0, #96]
        stp     d8,  d9,  [x0, #104]
        stp     d10, d11, [x0, #120]
        stp     d12, d13, [x0, #136]
        stp     d14, d15, [x0, #152]
        mov     w0, #0
        ret
        .size   sbd_ctx_save, .-sbd_ctx_save

        .globl  sbd_ctx_jump
        .hidden sbd_ctx_jump
        .type   sbd_ctx_jump, %function
sbd_ctx_jump:
        ldp     x19, x20, [x0, #16]
        ldp     x21, x22, [x0, #32]
        ldp     x23, x24, [x0, #48]
        ldp     x25, x26, [x0, #64]
        ldp     x27, x28, [x0, #80]
        ldr     x29, [x0, #96]
        ldp     d8,  d9,  [x0, #104]
        ldp     d10, d11, [x0, #120]
        ldp     d12, d13, [x0, #136]
        ldp     d14, d15, [x0, #152]
        ldr     x1,  [x0, #8]
        mov     sp, x1
        ldr     x30, [x0, #0]
        mov     w0, #1
        ret
        .size   sbd_ctx_jump, .-sbd_ctx_jump
)");

#endif

#endif  // SBD_FASTCTX
