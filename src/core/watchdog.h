// Liveness watchdog (robustness layer): a background OS thread that
// periodically scans every registered SBD thread and flags transactions
// that have been blocked — in a lock wait queue or on the §3.3
// transaction-id pool — beyond a threshold. A detected stall is
//   1. recorded in the §6 debug log (DebugEventKind::kWatchdogStall /
//      kIdPoolStall), so the per-lock contention summary
//      (DebugLog::summarize) shows where the system seized up, and
//   2. optionally broken by the abort-victim fallback: after a second,
//      larger timeout the watchdog asks the stalled transaction to
//      abort (TxnManager::request_abort — the same safe path the
//      deadlock resolver uses, so only *waiting* victims are touched).
//
// The watchdog is not an SBD thread: it never touches the managed heap
// and never parks at safepoints, so it keeps running while the world is
// stopped and while every worker is wedged — which is the point.
#pragma once

#include <cstdint>

namespace sbd::core {

class Watchdog {
 public:
  struct Options {
    // A transaction blocked longer than this is a stall.
    uint64_t stallThresholdNanos = 2'000'000'000;
    // Scan period.
    uint64_t pollIntervalNanos = 100'000'000;
    // Abort-victim fallback: a transaction still blocked after this
    // (>= stallThresholdNanos) is asked to abort. 0 disables.
    uint64_t abortVictimAfterNanos = 8'000'000'000;
    // Lockplan-controller heartbeat: a stop-the-world re-plan busy
    // longer than this is wedged — recorded as a stall and cancelled
    // via runtime::lockplan::cancel_current_replan(), tripping the
    // core/degrade wedge accounting instead of hanging the process.
    // 0 disables.
    uint64_t replanStallThresholdNanos = 5'000'000'000;
    // Also print one diagnostic line per stall to stderr.
    bool logToStderr = true;
  };

  // Starts the watchdog thread (no-op if already running).
  static void start(const Options& opts);
  static void start() { start(Options()); }
  // Stops and joins the watchdog thread (no-op if not running).
  static void stop();
  static bool running();

  // Monotonic counters since process start.
  static uint64_t stalls_detected();
  static uint64_t victims_aborted();
};

}  // namespace sbd::core
