// sbd::fault — the deterministic fault-plan registry.
//
// A fault plan names every place the runtime can be made to misbehave
// on purpose — CAS failures in the lock fast path, delays around wait
// queues, forced GCs at allocation safepoints, transient I/O errors and
// short writes, socket resets, DB commit faults, and the original
// abort-at-split injector — and gives each site an independent,
// seeded decision stream plus fired/evaluated counters. One plan is
// active per process; tests and the chaos driver install plans through
// PlanScope, which snapshots and RESTORES the previous plan (including
// its RNG streams and counters), so nested scopes are invisible to the
// enclosing one.
//
// Determinism: each site draws from its own Rng seeded from
// mix64(plan.seed ^ site), so the decision sequence at a site depends
// only on the plan and the number of decision points reached at that
// site — not on what other sites did.
#pragma once

#include <cstdint>

namespace sbd::fault {

enum class Site : int {
  kSplitAbort = 0,   // abort instead of committing at a split (core/transaction.cpp)
  kLockCas,          // fail one lock-word CAS in the fast path (core/transaction.cpp)
  kQueueEnqueue,     // delay before publishing a waiter node (ParkingLot::publish)
  kQueueWakeup,      // delay before a release-side grant pass / id wake (ParkingLot::unpark_*)
  kGcSafepoint,      // force a stop-the-world GC at an allocation safepoint (runtime/heap.cpp)
  kFileError,        // transient (EINTR-style) I/O error, retried in tio/file.cpp
  kFileShortWrite,   // short write at file commit, continued in tio/file.cpp
  kSocketReset,      // connection reset by peer on the loopback network (net/loopback.cpp)
  kDbCommit,         // transient commit-fence fault in the embedded DB (db/db.cpp)
  kDbLockTimeout,    // spurious lock-wait timeout (DbDeadlock) in the embedded DB (db/db.cpp)
  kReplanVeto,       // delay the re-plan veto scan while the world is stopped (runtime/lockplan.cpp)
  kReplanSwap,       // delay the re-plan lock-map swap while the world is stopped (runtime/lockplan.cpp)
  kReplanPoll,       // delay a mutator reaching its safepoint park (core/safepoint.cpp)
  kServeAcceptFail,  // accept() returns a dead connection to the server (src/serve/serve.cpp)
  kServeWriteShort,  // response write cut short mid-flight, connection dropped (src/serve/serve.cpp)
};
inline constexpr int kNumSites = 15;

const char* site_name(Site s);

struct FaultPlan {
  uint64_t seed = 0xfa11;
  double rate[kNumSites] = {};   // per-site fire probability in [0,1]; 0 disables
  uint64_t delayNanos = 50'000;  // sleep injected by the delay sites

  bool enabled() const {
    for (double r : rate)
      if (r > 0) return true;
    return false;
  }
  FaultPlan& with(Site s, double r) {
    rate[static_cast<int>(s)] = r;
    return *this;
  }
};

// Builds a plan with a single enabled site (the legacy injector shape).
inline FaultPlan single_site(Site s, double rate, uint64_t seed = 0xfa11) {
  FaultPlan p;
  p.seed = seed;
  return p.with(s, rate);
}

// Installs `plan`, reseeds every site's decision stream, and zeroes all
// counters. Thread-safe; a plan with all rates zero disables the fast
// path entirely.
void set_plan(const FaultPlan& plan);
FaultPlan plan();
void clear_plan();

// One decision point at `site`: true if the fault should fire. Advances
// the site's stream (and counts) only while the site is enabled;
// disabled sites cost one relaxed atomic load.
bool should_fire(Site site);

// Decision + delay in one call for the delay sites: returns the plan's
// delayNanos if the site fires, else 0.
uint64_t fire_delay_nanos(Site site);

uint64_t fired(Site site);      // faults injected at `site` since set_plan
uint64_t evaluated(Site site);  // decision points reached at `site` since set_plan

// RAII plan installer. Unlike a naive set/clear pair, the destructor
// restores the complete previous registry state — plan, per-site RNG
// streams, and counters — so an inner scope cannot clobber an outer
// one (the AbortInjectionScope bug this subsystem replaces).
class PlanScope {
 public:
  explicit PlanScope(const FaultPlan& p);
  ~PlanScope();
  PlanScope(const PlanScope&) = delete;
  PlanScope& operator=(const PlanScope&) = delete;

 private:
  struct Saved;
  Saved* saved_;
};

}  // namespace sbd::fault
