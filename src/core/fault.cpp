#include "core/fault.h"

#include <atomic>
#include <mutex>

#include "common/check.h"
#include "common/rng.h"

namespace sbd::fault {

namespace {

struct SiteState {
  Rng rng{0};
  uint64_t fired = 0;
  uint64_t evaluated = 0;
};

struct Registry {
  std::mutex mu;
  FaultPlan plan;
  SiteState sites[kNumSites];
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives all threads
  return *r;
}

// Fast-path gate: bit i set <=> site i enabled. Decision points sit on
// the lock fast path and the allocator, so the disabled case must not
// take a mutex.
std::atomic<uint32_t> gEnabledMask{0};

uint32_t mask_of(const FaultPlan& p) {
  uint32_t m = 0;
  for (int i = 0; i < kNumSites; i++)
    if (p.rate[i] > 0) m |= 1u << i;
  return m;
}

void install_locked(Registry& r, const FaultPlan& p) {
  r.plan = p;
  for (int i = 0; i < kNumSites; i++) {
    r.sites[i].rng.reseed(mix64(p.seed ^ (0x517eULL + static_cast<uint64_t>(i))));
    r.sites[i].fired = 0;
    r.sites[i].evaluated = 0;
  }
  gEnabledMask.store(mask_of(p), std::memory_order_release);
}

}  // namespace

const char* site_name(Site s) {
  switch (s) {
    case Site::kSplitAbort:    return "split-abort";
    case Site::kLockCas:       return "lock-cas";
    case Site::kQueueEnqueue:  return "queue-enqueue-delay";
    case Site::kQueueWakeup:   return "queue-wakeup-delay";
    case Site::kGcSafepoint:   return "gc-safepoint";
    case Site::kFileError:     return "file-io-error";
    case Site::kFileShortWrite:return "file-short-write";
    case Site::kSocketReset:   return "socket-reset";
    case Site::kDbCommit:      return "db-commit-fault";
    case Site::kDbLockTimeout: return "db-lock-timeout";
    case Site::kReplanVeto:    return "replan-veto-delay";
    case Site::kReplanSwap:    return "replan-swap-delay";
    case Site::kReplanPoll:    return "replan-poll-delay";
    case Site::kServeAcceptFail: return "serve-accept-fail";
    case Site::kServeWriteShort: return "serve-write-short";
  }
  return "?";
}

void set_plan(const FaultPlan& p) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  install_locked(r, p);
}

FaultPlan plan() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.plan;
}

void clear_plan() { set_plan(FaultPlan{}); }

bool should_fire(Site site) {
  const int i = static_cast<int>(site);
  if ((gEnabledMask.load(std::memory_order_acquire) & (1u << i)) == 0) return false;
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  const double rate = r.plan.rate[i];
  if (rate <= 0) return false;  // raced with a plan change
  SiteState& st = r.sites[i];
  st.evaluated++;
  if (!st.rng.chance(rate)) return false;
  st.fired++;
  return true;
}

uint64_t fire_delay_nanos(Site site) {
  if (!should_fire(site)) return 0;
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.plan.delayNanos;
}

uint64_t fired(Site site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.sites[static_cast<int>(site)].fired;
}

uint64_t evaluated(Site site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.sites[static_cast<int>(site)].evaluated;
}

// ---------------------------------------------------------------------------
// PlanScope
// ---------------------------------------------------------------------------

struct PlanScope::Saved {
  FaultPlan plan;
  SiteState sites[kNumSites];
};

PlanScope::PlanScope(const FaultPlan& p) : saved_(new Saved()) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  saved_->plan = r.plan;
  for (int i = 0; i < kNumSites; i++) saved_->sites[i] = r.sites[i];
  install_locked(r, p);
}

PlanScope::~PlanScope() {
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lk(r.mu);
    r.plan = saved_->plan;
    for (int i = 0; i < kNumSites; i++) r.sites[i] = saved_->sites[i];
    gEnabledMask.store(mask_of(r.plan), std::memory_order_release);
  }
  delete saved_;
}

}  // namespace sbd::fault
