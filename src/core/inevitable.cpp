#include "core/inevitable.h"

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "common/check.h"
#include "core/transaction.h"

namespace sbd::core {

namespace {

std::mutex gTokenMu;
std::condition_variable gTokenCv;
ThreadContext* gHolder = nullptr;
std::atomic<uint64_t> gAcquisitions{0};

// Releases the token when the inevitable section ends.
class InevitabilityToken final : public TxResource {
 public:
  void on_commit() override { release(); }
  void on_abort() override {
    // An inevitable section must never abort: its effects may already
    // be externally visible.
    SBD_CHECK_MSG(false, "abort of an inevitable section");
  }

  static InevitabilityToken& instance() {
    static InevitabilityToken tok;
    return tok;
  }

 private:
  static void release() {
    {
      std::lock_guard<std::mutex> lk(gTokenMu);
      gHolder = nullptr;
    }
    gTokenCv.notify_all();
  }
};

}  // namespace

void become_inevitable() {
  auto& tc = tls_context();
  SBD_CHECK_MSG(tc.txn.active(), "become_inevitable outside an atomic section");
  {
    std::lock_guard<std::mutex> lk(gTokenMu);
    if (gHolder == &tc) return;  // already inevitable
  }
  {
    Safepoint::SafeScope safe(tc);
    std::unique_lock<std::mutex> lk(gTokenMu);
    gTokenCv.wait(lk, [] { return gHolder == nullptr; });
    gHolder = &tc;
  }
  gAcquisitions.fetch_add(1, std::memory_order_relaxed);
  tc.txn.set_inevitable(true);
  tc.txn.add_resource(&InevitabilityToken::instance());
}

bool is_inevitable() {
  auto* tc = tls_context_if_present();
  if (!tc) return false;
  std::lock_guard<std::mutex> lk(gTokenMu);
  return gHolder == tc;
}

uint64_t inevitable_acquisitions() {
  return gAcquisitions.load(std::memory_order_relaxed);
}

}  // namespace sbd::core
