#include "core/inevitable.h"

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "common/check.h"
#include "core/transaction.h"

namespace sbd::core {

namespace {

std::mutex gTokenMu;
std::condition_variable gTokenCv;
ThreadContext* gHolder = nullptr;
std::atomic<uint64_t> gAcquisitions{0};

// Releases the token when the inevitable section ends.
class InevitabilityToken final : public TxResource {
 public:
  void on_commit() override { release(); }
  void on_abort() override {
    // Past the point of no return (set_inevitable) an abort is fatal:
    // the section's effects may already be externally visible. Before
    // it — the versioned read-set promotion between taking the token
    // and setting the flag can still abort on a stale snapshot — the
    // abort is ordinary and must hand the token back (the checkpoint
    // restore does not unwind the stack, so this resource hook is the
    // only cleanup that runs).
    SBD_CHECK_MSG(!tls_context().txn.inevitable(),
                  "abort of an inevitable section");
    release();
  }

  static InevitabilityToken& instance() {
    static InevitabilityToken tok;
    return tok;
  }

 private:
  static void release() {
    {
      std::lock_guard<std::mutex> lk(gTokenMu);
      gHolder = nullptr;
    }
    gTokenCv.notify_all();
  }
};

}  // namespace

void become_inevitable() {
  auto& tc = tls_context();
  SBD_CHECK_MSG(tc.txn.active(), "become_inevitable outside an atomic section");
  {
    std::lock_guard<std::mutex> lk(gTokenMu);
    if (gHolder == &tc) return;  // already inevitable
  }
  {
    Safepoint::SafeScope safe(tc);
    std::unique_lock<std::mutex> lk(gTokenMu);
    gTokenCv.wait(lk, [] { return gHolder == nullptr; });
    gHolder = &tc;
  }
  gAcquisitions.fetch_add(1, std::memory_order_relaxed);
  // Register the release hook BEFORE anything below can abort, then pin
  // down the invisible reads: an inevitable section can never abort,
  // and versioned reads settle conflicts by aborting the reader — so
  // every versioned read-set entry is locked exclusively and the
  // snapshot validated NOW, while this transaction is still revocable.
  tc.txn.add_resource(&InevitabilityToken::instance());
  LockEngine::versioned_promote_for_inevitable(tc);
  tc.txn.set_inevitable(true);
}

bool is_inevitable() {
  auto* tc = tls_context_if_present();
  if (!tc) return false;
  std::lock_guard<std::mutex> lk(gTokenMu);
  return gHolder == tc;
}

uint64_t inevitable_acquisitions() {
  return gAcquisitions.load(std::memory_order_relaxed);
}

}  // namespace sbd::core
