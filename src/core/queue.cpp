#include "core/queue.h"

#include <chrono>
#include <thread>

#include "common/check.h"
#include "core/fault.h"
#include "core/transaction.h"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#endif

namespace sbd::core {

namespace {

inline std::atomic<LockWord>* as_atomic(const LockWord* w) {
  static_assert(sizeof(std::atomic<LockWord>) == sizeof(LockWord));
  return reinterpret_cast<std::atomic<LockWord>*>(const_cast<LockWord*>(w));
}

// Injected scheduling perturbation: a bounded sleep at a queue
// transition. Holding the bucket mutex across the sleep is intentional —
// it is exactly the perturbation (a descheduled publisher/waker) the
// fault site models, and it widens the window in which the lock word
// and the lot disagree.
inline void maybe_delay(fault::Site site) {
  if (const uint64_t ns = fault::fire_delay_nanos(site))
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

// Local-spin budget before a waiter pays for a futex park. Small on
// purpose: on few-core hosts the grantor cannot run while we spin, so
// the budget only needs to cover the "releaser is mid-handoff on
// another core" window.
constexpr int kSpinBudget = 64;

std::atomic<uint64_t> gParked{0};
std::atomic<uint64_t> gSpunGranted{0};
std::atomic<uint64_t> gFutexWakes{0};
std::atomic<uint64_t> gHandoffs{0};
std::atomic<uint64_t> gIdWakes{0};

#if defined(__linux__)
void futex_wait(std::atomic<uint32_t>* addr, uint32_t expected, uint64_t timeoutNanos) {
  timespec ts;
  timespec* tsp = nullptr;
  if (timeoutNanos != 0) {
    ts.tv_sec = static_cast<time_t>(timeoutNanos / 1'000'000'000);
    ts.tv_nsec = static_cast<long>(timeoutNanos % 1'000'000'000);
    tsp = &ts;
  }
  // EAGAIN (value changed), EINTR, ETIMEDOUT are all fine: the caller
  // re-checks node state / word state in a loop.
  syscall(SYS_futex, reinterpret_cast<uint32_t*>(addr), FUTEX_WAIT_PRIVATE, expected,
          tsp, nullptr, 0);
}

void futex_wake_one(std::atomic<uint32_t>* addr) {
  syscall(SYS_futex, reinterpret_cast<uint32_t*>(addr), FUTEX_WAKE_PRIVATE, 1, nullptr,
          nullptr, 0);
}
#endif

}  // namespace

ParkingLot& ParkingLot::instance() {
  static ParkingLot lot;
  return lot;
}

ParkingLot::Bucket& ParkingLot::bucket_for(const LockWord* w) {
  // Fibonacci hash of the word address; low bits are alignment noise.
  uint64_t h = reinterpret_cast<uint64_t>(w) >> 3;
  h *= 0x9E3779B97F4A7C15ULL;
  return buckets_[(h >> 58) & (kBuckets - 1)];
}

void ParkingLot::link_locked(Bucket& b, WaitNode& n) {
  if (n.upgrader) {
    // Upgrading readers enter at the FRONT of their word's queue (§3.2).
    // Bucket lists interleave words, so "front" = before the word's
    // first node; relative order of other words is untouched.
    for (WaitNode* m = b.head; m; m = m->next) {
      if (m->word != n.word) continue;
      n.prev = m->prev;
      n.next = m;
      if (m->prev)
        m->prev->next = &n;
      else
        b.head = &n;
      m->prev = &n;
      return;
    }
  }
  n.prev = b.tail;
  n.next = nullptr;
  if (b.tail)
    b.tail->next = &n;
  else
    b.head = &n;
  b.tail = &n;
}

void ParkingLot::unlink_locked(Bucket& b, WaitNode& n) {
  if (n.prev)
    n.prev->next = n.next;
  else
    b.head = n.next;
  if (n.next)
    n.next->prev = n.prev;
  else
    b.tail = n.prev;
  n.prev = nullptr;
  n.next = nullptr;
}

void ParkingLot::wake(WaitNode& n) {
  gFutexWakes.fetch_add(1, std::memory_order_relaxed);
#if defined(__linux__)
  futex_wake_one(&n.state);
#else
  // The node outlives this call: wakes happen under the bucket lock and
  // the waiter re-takes that lock before it can unlink and return.
  std::lock_guard<std::mutex> lk(n.mu);
  n.cv.notify_one();
#endif
}

void ParkingLot::publish(WaitNode& n) {
  SBD_DCHECK(n.word != nullptr);
  Bucket& b = bucket_for(n.word);
  std::lock_guard<std::mutex> lk(b.mu);
  maybe_delay(fault::Site::kQueueEnqueue);
  n.state.store(kNodeWaiting, std::memory_order_relaxed);
  link_locked(b, n);
}

void ParkingLot::grant_pass_locked(Bucket& b, const LockWord* word, ThreadContext& tc) {
  auto* aw = as_atomic(word);
  for (;;) {
    WaitNode* front = nullptr;
    size_t total = 0;
    for (WaitNode* n = b.head; n; n = n->next) {
      if (n->word != word || n->idPool) continue;
      if (!front) front = n;
      total++;
    }
    LockWord w = aw->load(std::memory_order_acquire);
    if (!front) {
      // Queue drained: the has-waiters bit must drop with it, or every
      // future acquirer slow-paths into an empty lot forever. Failed
      // detach CASes count — they are contention like any other
      // (the accounting gap the old maybe_detach had).
      while (has_waiters(w)) {
        if (aw->compare_exchange_weak(w, without_waiters(w), std::memory_order_acq_rel))
          break;
        tc.stats.casFailures++;
      }
      return;
    }
    // The grantable prefix: one upgrader (sole member), one writer
    // (free word), or every leading reader up to the first writer.
    WaitNode* grant[kMaxTxns];
    size_t ng = 0;
    LockWord target = w;
    if (front->upgrader) {
      if (sole_member(w, front->mask) && !has_writer(w)) {
        grant[ng++] = front;
        target = without_upgrader(with_writer(w));
      }
    } else if (front->wantWrite) {
      if (is_free(w) && !has_upgrader(w)) {
        grant[ng++] = front;
        target = with_writer(with_member(w, front->mask));
      }
    } else if (!has_writer(w) && !has_upgrader(w)) {
      for (WaitNode* n = front; n; n = n->next) {
        if (n->word != word || n->idPool) continue;
        if (n->wantWrite || n->upgrader) break;
        grant[ng++] = n;
        target = with_member(target, n->mask);
      }
    }
    if (ng == 0) return;
    if (ng == total) target = without_waiters(target);
    if (aw->compare_exchange_strong(w, target, std::memory_order_acq_rel)) {
      gHandoffs.fetch_add(ng, std::memory_order_relaxed);
      for (size_t i = 0; i < ng; i++) {
        unlink_locked(b, *grant[i]);
        // The release store publishes the handoff; the waiter's acquire
        // load of kNodeGranted is the happens-before edge that carries
        // lock ownership (TSan sees this even though the futex syscall
        // itself is invisible to it).
        grant[i]->state.store(kNodeGranted, std::memory_order_release);
        wake(*grant[i]);
      }
      return;
    }
    tc.stats.casFailures++;  // a racing release/upgrade moved the word; retry
  }
}

GrantProbe ParkingLot::try_grant_self(ThreadContext& tc, WaitNode& n) {
  Bucket& b = bucket_for(n.word);
  std::lock_guard<std::mutex> lk(b.mu);
  if (n.state.load(std::memory_order_acquire) == kNodeGranted)
    return {true, 0};  // handoff already unlinked us and CASed the word
  auto* aw = as_atomic(n.word);
  for (;;) {
    // Same-word waiters ahead of us: digest bits + eligibility.
    uint64_t ahead = 0;
    bool aheadWriter = false;
    bool isFront = true;
    size_t total = 1;
    for (WaitNode* m = b.head; m && m != &n; m = m->next) {
      if (m->word != n.word || m->idPool) continue;
      isFront = false;
      if (m->txnId >= 0) ahead |= 1ULL << m->txnId;
      if (m->wantWrite || m->upgrader) aheadWriter = true;
    }
    for (WaitNode* m = n.next; m; m = m->next)
      if (m->word == n.word && !m->idPool) total++;
    if (!isFront) total++;  // at least one ahead (exact count not needed)

    LockWord w = aw->load(std::memory_order_acquire);
    bool eligible;
    LockWord target;
    if (n.upgrader) {
      eligible = sole_member(w, n.mask) && !has_writer(w);
      target = without_upgrader(with_writer(w));
    } else if (n.wantWrite) {
      eligible = isFront && is_free(w) && !has_upgrader(w);
      target = with_writer(with_member(w, n.mask));
    } else {
      eligible = !aheadWriter && !has_writer(w) && !has_upgrader(w);
      target = with_member(w, n.mask);
    }
    if (!eligible) {
      // Consume an advisory signal so the next park actually sleeps.
      uint32_t st = kNodeSignaled;
      n.state.compare_exchange_strong(st, kNodeWaiting, std::memory_order_relaxed);
      return {false, (members(w) & ~n.mask) | ahead};
    }
    const bool lastNode = isFront && total == 1;
    if (lastNode) target = without_waiters(target);
    if (aw->compare_exchange_strong(w, target, std::memory_order_acq_rel)) {
      unlink_locked(b, n);
      return {true, 0};
    }
    tc.stats.casFailures++;
  }
}

CancelResult ParkingLot::cancel(ThreadContext& tc, WaitNode& n) {
  Bucket& b = bucket_for(n.word);
  std::lock_guard<std::mutex> lk(b.mu);
  if (n.state.load(std::memory_order_acquire) == kNodeGranted)
    return CancelResult::kWasGranted;
  unlink_locked(b, n);
  // Our departure can unblock successors (a leaving front writer frees
  // the readers behind it) and must drop the has-waiters bit if the
  // queue emptied; the grant pass handles both.
  grant_pass_locked(b, n.word, tc);
  return CancelResult::kRemoved;
}

void ParkingLot::park(WaitNode& n, uint64_t timeoutNanos) {
  for (int i = 0; i < kSpinBudget; i++) {
    if (n.state.load(std::memory_order_acquire) != kNodeWaiting) {
      gSpunGranted.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    cpu_relax();
  }
  gParked.fetch_add(1, std::memory_order_relaxed);
#if defined(__linux__)
  futex_wait(&n.state, kNodeWaiting, timeoutNanos);
#else
  std::unique_lock<std::mutex> lk(n.mu);
  n.cv.wait_for(lk, std::chrono::nanoseconds(timeoutNanos), [&] {
    return n.state.load(std::memory_order_acquire) != kNodeWaiting;
  });
#endif
}

void ParkingLot::unpark_word(ThreadContext& tc, const LockWord* word) {
  Bucket& b = bucket_for(word);
  std::lock_guard<std::mutex> lk(b.mu);
  maybe_delay(fault::Site::kQueueWakeup);
  grant_pass_locked(b, word, tc);
}

void ParkingLot::unpark_txn(const LockWord* word, int txnId) {
  Bucket& b = bucket_for(word);
  std::lock_guard<std::mutex> lk(b.mu);
  for (WaitNode* n = b.head; n; n = n->next) {
    if (n->word != word || n->idPool || n->txnId != txnId) continue;
    uint32_t st = kNodeWaiting;
    if (n->state.compare_exchange_strong(st, kNodeSignaled, std::memory_order_release))
      wake(*n);
    return;
  }
}

void ParkingLot::remove(WaitNode& n) {
  Bucket& b = bucket_for(n.word);
  std::lock_guard<std::mutex> lk(b.mu);
  unlink_locked(b, n);
}

bool ParkingLot::unpark_one(const LockWord* key) {
  Bucket& b = bucket_for(key);
  std::lock_guard<std::mutex> lk(b.mu);
  maybe_delay(fault::Site::kQueueWakeup);
  for (WaitNode* n = b.head; n; n = n->next) {
    if (n->word != key || !n->idPool) continue;
    uint32_t st = kNodeWaiting;
    if (!n->state.compare_exchange_strong(st, kNodeSignaled, std::memory_order_release))
      continue;  // already signaled: do not burn the wake, try the next waiter
    gIdWakes.fetch_add(1, std::memory_order_relaxed);
    wake(*n);
    return true;
  }
  return false;
}

ParkingLot::Counters ParkingLot::counters() {
  return Counters{gParked.load(std::memory_order_relaxed),
                  gSpunGranted.load(std::memory_order_relaxed),
                  gFutexWakes.load(std::memory_order_relaxed),
                  gHandoffs.load(std::memory_order_relaxed),
                  gIdWakes.load(std::memory_order_relaxed)};
}

size_t ParkingLot::approx_waiters() {
  ParkingLot& lot = instance();
  size_t depth = 0;
  for (size_t i = 0; i < kBuckets; i++) {
    std::lock_guard<std::mutex> lk(lot.buckets_[i].mu);
    for (WaitNode* n = lot.buckets_[i].head; n; n = n->next) depth++;
  }
  return depth;
}

}  // namespace sbd::core
