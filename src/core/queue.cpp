#include "core/queue.h"

#include <bit>
#include <chrono>
#include <thread>

#include "common/check.h"
#include "core/fault.h"

namespace sbd::core {

namespace {
// Injected scheduling perturbation: a bounded sleep at a queue
// transition. Holding the queue mutex across the sleep is intentional —
// it is exactly the perturbation (a descheduled enqueuer/waker) the
// fault site models.
inline void maybe_delay(fault::Site site) {
  if (const uint64_t ns = fault::fire_delay_nanos(site))
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}
}  // namespace

int WaitQueue::position_of(int txnId) const {
  for (size_t i = 0; i < waiters.size(); i++)
    if (waiters[i].txnId == txnId) return static_cast<int>(i);
  return -1;
}

bool WaitQueue::only_readers_ahead(int pos) const {
  for (int i = 0; i < pos; i++)
    if (waiters[static_cast<size_t>(i)].wantWrite || waiters[static_cast<size_t>(i)].upgrader)
      return false;
  return true;
}

void WaitQueue::enqueue(const Waiter& w) {
  maybe_delay(fault::Site::kQueueEnqueue);
  if (w.upgrader)
    waiters.push_front(w);  // upgrading readers enter at the front (§3.2)
  else
    waiters.push_back(w);
}

void WaitQueue::notify_waiters() {
  maybe_delay(fault::Site::kQueueWakeup);
  cv.notify_all();
}

void WaitQueue::remove(int txnId) {
  for (auto it = waiters.begin(); it != waiters.end(); ++it) {
    if (it->txnId == txnId) {
      waiters.erase(it);
      return;
    }
  }
}

QueuePool::QueuePool() : freeBits_((kNumQueues >= 64) ? ~0ULL : ((1ULL << kNumQueues) - 1)) {}

// Lock-order note: alloc takes poolMu_, releases it, and only then binds
// the queue under its own mutex; free takes only poolMu_. Callers detach
// (clear fields) under q.mu *before* calling free, so the two mutexes
// are never held together and there is no ordering cycle with the
// enqueue path (q.mu only).
int QueuePool::alloc(LockWord* word, runtime::ManagedObject* obj) {
  int qid;
  {
    std::lock_guard<std::mutex> lk(poolMu_);
    SBD_CHECK_MSG(freeBits_ != 0, "wait-queue pool exhausted");
    const int idx = std::countr_zero(freeBits_);
    freeBits_ &= ~(1ULL << idx);
    qid = idx + 1;
  }
  WaitQueue& q = queues_[qid];
  std::lock_guard<std::mutex> qlk(q.mu);
  SBD_CHECK(q.waiters.empty());
  q.boundWord = word;
  q.boundObj = obj;
  q.detached = false;
  return qid;
}

WaitQueue& QueuePool::get(int qid) {
  SBD_CHECK(qid >= 1 && qid <= kNumQueues);
  return queues_[qid];
}

void QueuePool::free(int qid) {
  std::lock_guard<std::mutex> lk(poolMu_);
  SBD_CHECK(((freeBits_ >> (qid - 1)) & 1) == 0);
  freeBits_ |= 1ULL << (qid - 1);
}

}  // namespace sbd::core
