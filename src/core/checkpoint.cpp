#include "core/checkpoint.h"

#include <cstring>

#include "common/check.h"

namespace sbd::core {

namespace {
// The trampoline has no way to receive arguments through makecontext
// portably (int-sized args only), so the engine parks itself here.
thread_local CheckpointEngine* tActiveEngine = nullptr;
thread_local Checkpoint* tActiveCheckpoint = nullptr;

#if !SBD_FASTCTX
inline void* current_sp_from(const ucontext_t& ctx) {
#if defined(__x86_64__)
  return reinterpret_cast<void*>(ctx.uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  return reinterpret_cast<void*>(ctx.uc_mcontext.sp);
#else
#error "unsupported architecture for SBD checkpointing"
#endif
}
#endif
}  // namespace

CheckpointEngine::CheckpointEngine() : trampolineStack_(64 * 1024) {}

CheckpointEngine::~CheckpointEngine() = default;

void CheckpointEngine::set_anchor_at(void* anchor) {
  anchor_ = reinterpret_cast<void*>(reinterpret_cast<uintptr_t>(anchor) & ~uintptr_t{15});
}

CheckpointResult CheckpointEngine::take(Checkpoint& cp) {
  SBD_CHECK_MSG(anchor_ != nullptr, "set_anchor_at() not called on this thread");
#if SBD_FASTCTX
  // Control reaches this point twice: sbd_ctx_save returns 0 on the
  // initial capture and 1 when the restore trampoline jumps back after
  // copying the captured stack bytes back in place.
  if (sbd_ctx_save(&cp.fctx_) != 0) return CheckpointResult::kRestored;
  void* sp = fastctx_sp(cp.fctx_);
#else
  resumedFromRestore_ = false;
  getcontext(&cp.ctx_);
  // Control reaches this point twice: right after getcontext (initial
  // capture) and again after restore() jumps back. The flag lives in
  // the engine (heap), not on the restored stack, so it distinguishes
  // the two arrivals.
  if (resumedFromRestore_) {
    resumedFromRestore_ = false;
    return CheckpointResult::kRestored;
  }
  void* sp = current_sp_from(cp.ctx_);
#endif
  SBD_CHECK_MSG(sp < anchor_, "stack pointer above anchor — anchor taken too low");
  const size_t len = static_cast<size_t>(static_cast<std::byte*>(anchor_) -
                                         static_cast<std::byte*>(sp));
  cp.sp_ = sp;
  cp.stackCopy_.resize(len);
  std::memcpy(cp.stackCopy_.data(), sp, len);
  return CheckpointResult::kTaken;
}

void CheckpointEngine::restore(Checkpoint& cp) {
  SBD_CHECK_MSG(cp.valid(), "restoring an empty checkpoint");
  resumedFromRestore_ = true;
  restoring_ = &cp;
  tActiveEngine = this;
  tActiveCheckpoint = &cp;
  // The copy-back must not run on the stack it overwrites: hop onto the
  // trampoline stack first.
  getcontext(&trampolineCtx_);
  trampolineCtx_.uc_stack.ss_sp = trampolineStack_.data();
  trampolineCtx_.uc_stack.ss_size = trampolineStack_.size();
  trampolineCtx_.uc_link = nullptr;
  makecontext(&trampolineCtx_, reinterpret_cast<void (*)()>(&trampoline_entry), 0);
  setcontext(&trampolineCtx_);
  SBD_CHECK_MSG(false, "setcontext returned");
  __builtin_unreachable();
}

void CheckpointEngine::trampoline_entry() {
  CheckpointEngine* eng = tActiveEngine;
  Checkpoint* cp = tActiveCheckpoint;
  std::memcpy(cp->sp_, cp->stackCopy_.data(), cp->stackCopy_.size());
  (void)eng;
#if SBD_FASTCTX
  sbd_ctx_jump(&cp->fctx_);
#else
  setcontext(&cp->ctx_);
#endif
}

}  // namespace sbd::core
