// Minimal continuation capture for the section checkpoint hot path.
//
// glibc's getcontext() makes a rt_sigprocmask syscall on every call
// (~200ns), and SBD takes a checkpoint at every section boundary —
// begin and every split — so the syscall dominates the per-section
// bookkeeping cost (bench_table6_micro, Acq&Rls effect). SBD never
// changes the signal mask between capture and restore, so the mask
// save/restore is pure waste.
//
// FastContext captures exactly what a resume needs: the callee-saved
// registers, the stack pointer, the resume address, and the FP control
// state. Restore jumps back with the stack bytes already copied in by
// the trampoline (see CheckpointEngine::restore). Unlike jmp_buf, the
// saved words are NOT pointer-mangled, so the conservative GC can scan
// the structure for managed references held only in callee-saved
// registers at capture time.
//
// Under sanitizers (TSan tracks longjmp-style transfers through its
// interceptors, which raw asm would bypass) and on architectures
// without an asm implementation, the engine falls back to the original
// ucontext path — slower, but identical semantics.
#pragma once

#include <cstdint>

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SBD_FASTCTX_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SBD_FASTCTX_SANITIZED 1
#endif

#if !defined(SBD_FASTCTX_SANITIZED) && (defined(__x86_64__) || defined(__aarch64__))
#define SBD_FASTCTX 1
#else
#define SBD_FASTCTX 0
#endif

#if SBD_FASTCTX

namespace sbd::core {

#if defined(__x86_64__)
// Field order is fixed by the assembly in fastctx.cpp.
struct FastContext {
  uint64_t rip;    // 0: resume address (return address of sbd_ctx_save)
  uint64_t rsp;    // 8: stack pointer after sbd_ctx_save returns
  uint64_t rbx;    // 16
  uint64_t rbp;    // 24
  uint64_t r12;    // 32
  uint64_t r13;    // 40
  uint64_t r14;    // 48
  uint64_t r15;    // 56
  uint32_t mxcsr;  // 64
  uint32_t fcw;    // 68 (x87 control word in the low 16 bits)
};

inline void* fastctx_sp(const FastContext& c) {
  return reinterpret_cast<void*>(c.rsp);
}
#elif defined(__aarch64__)
struct FastContext {
  uint64_t pc;      // 0: resume address (lr at capture)
  uint64_t sp;      // 8
  uint64_t x[10];   // 16: x19..x28
  uint64_t fp;      // 96: x29
  uint64_t d[8];    // 104: d8..d15
};

inline void* fastctx_sp(const FastContext& c) {
  return reinterpret_cast<void*>(c.sp);
}
#endif

}  // namespace sbd::core

extern "C" {
// Captures the calling continuation. Returns 0 on capture; returns 1
// when sbd_ctx_jump later resumes it. The caller's stack frame must be
// intact (or restored byte-for-byte) at jump time.
int sbd_ctx_save(sbd::core::FastContext* ctx);

// Resumes a captured continuation: never returns. May be called from a
// foreign stack (the restore trampoline); the target stack must already
// hold the capture-time bytes.
[[noreturn]] void sbd_ctx_jump(sbd::core::FastContext* ctx);
}

#endif  // SBD_FASTCTX
