// The transaction-id pool: at most kMaxTxns (56) transactions run
// concurrently, one bit each in every lock word. If no id is free a
// starting transaction blocks until one is released (paper §3.3 — safe
// because sections never nest and waiting threads release their id).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "core/fwd.h"

namespace sbd::core {

class TxnIdPool {
 public:
  TxnIdPool();

  // Blocks until an id is available. Returns id in [0, kMaxTxns).
  // The caller must publish the owning Transaction via TxnManager before
  // taking any lock.
  int acquire();

  // Non-blocking variant; returns -1 if the pool is exhausted.
  int try_acquire();

  // Timeout-and-diagnose variant: blocks at most timeoutNanos, returns
  // -1 on timeout so the caller can report the stall (core/watchdog.h)
  // and keep waiting in bounded slices instead of blocking invisibly.
  int acquire_for(uint64_t timeoutNanos);

  void release(int id);

  int available() const;

  // Number of threads currently blocked in acquire/acquire_for.
  int waiters() const;

  // One-line snapshot ("txn-id pool: 0/56 free, 6 waiting") for stall
  // diagnostics; safe to call from any thread.
  std::string diagnose() const;

 private:
  int pop_free_locked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t freeBits_;   // bit i set <=> id i free
  int waiters_ = 0;     // threads blocked waiting for an id
};

}  // namespace sbd::core
