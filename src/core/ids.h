// The transaction-id pool: at most kMaxTxns (56) transactions run
// concurrently, one bit each in every lock word. The free set is split
// into shards claimed by lock-free CAS (each thread starts at a hashed
// home shard, so uncontended acquire/release never meet); when every
// shard is empty the acquirer parks in the parking lot (core/queue.h)
// on the pool's sentinel key, and release wakes exactly ONE waiter —
// >56 threads queue cheaply instead of convoying on a central mutex +
// condvar (paper §3.3 — safe because sections never nest and waiting
// threads hold no locks).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/fwd.h"

namespace sbd::core {

class TxnIdPool {
 public:
  TxnIdPool();

  // Blocks until an id is available. Returns id in [0, kMaxTxns).
  // The caller must publish the owning Transaction via TxnManager before
  // taking any lock.
  int acquire();

  // Non-blocking variant; returns -1 if the pool is exhausted.
  int try_acquire();

  // Timeout-and-diagnose variant: blocks at most timeoutNanos, returns
  // -1 on timeout so the caller can report the stall (core/watchdog.h)
  // and keep waiting in bounded slices instead of blocking invisibly.
  int acquire_for(uint64_t timeoutNanos);

  void release(int id);

  int available() const;

  // Number of threads currently blocked in acquire/acquire_for.
  int waiters() const;

  // One-line snapshot ("txn-id pool: 0/56 free, 6 waiting") for stall
  // diagnostics; safe to call from any thread.
  std::string diagnose() const;

 private:
  // 4 shards x 14 ids: few enough that an exhausted-pool sweep is
  // cheap, enough that disjoint threads rarely CAS the same word.
  static constexpr int kShards = 4;
  static constexpr int kIdsPerShard = kMaxTxns / kShards;
  static_assert(kShards * kIdsPerShard == kMaxTxns, "ids must split evenly");

  std::atomic<uint64_t> shards_[kShards];
  std::atomic<int> waiters_{0};
  // Parking-lot key for over-subscribed acquirers. Only its ADDRESS is
  // used (bucket hash + node filter); it is never read or CASed as a
  // lock word.
  LockWord parkSentinel_ = 0;
};

}  // namespace sbd::core
