// Bit-level operations on the 64-bit lock structure of Figure 4(b).
//
// Layout (LSB to MSB):
//   bits  0..55  owner bit-set: bit i set <=> transaction id i holds the lock
//   bit   56     W: the members hold a write lock (then exactly one bit is set)
//   bit   57     U: an upgrading reader is present (early dueling-upgrade detection)
//   bit   58     has-waiters: at least one waiter node is (or is about to
//                be) published in the parking lot for this word
//   bits 59..63  unused, always zero
//
// The has-waiters bit replaced the paper's 6-bit queue-id field when the
// 63-queue global pool became the parking lot (core/queue.h): waiters
// are found by hashing the word's ADDRESS into the lot's stripe table,
// so the word itself only needs one bit of "someone is waiting" — the
// fairness barrier that stops newcomers from barging past the queue.
//
// All functions are pure and constexpr so both the runtime fast path and
// the tests can reason about words symbolically.
#pragma once

#include "core/fwd.h"

namespace sbd::core {

inline constexpr LockWord kMemberMask = (1ULL << kMaxTxns) - 1;  // bits 0..55
inline constexpr LockWord kWriterBit = 1ULL << 56;
inline constexpr LockWord kUpgraderBit = 1ULL << 57;
inline constexpr int kWaitersShift = 58;
inline constexpr LockWord kWaitersBit = 1ULL << kWaitersShift;

// The parking lot (core/queue.h) assumes exactly this layout: the
// waiters bit sits directly above U, overlaps nothing, and leaves the
// top five bits clear for future use.
static_assert(kWaitersShift == kMaxTxns + 2, "waiters bit must sit directly above W and U");
static_assert((kWaitersBit & (kMemberMask | kWriterBit | kUpgraderBit)) == 0,
              "waiters bit overlaps the member/W/U fields");
static_assert((kMemberMask | kWriterBit | kUpgraderBit | kWaitersBit) < (1ULL << 59),
              "bits 59..63 must stay unused");

// The per-transaction mask: one bit in the owner bit-set.
constexpr LockWord txn_mask(int txnId) { return 1ULL << txnId; }

constexpr LockWord members(LockWord w) { return w & kMemberMask; }
constexpr bool has_writer(LockWord w) { return (w & kWriterBit) != 0; }
constexpr bool has_upgrader(LockWord w) { return (w & kUpgraderBit) != 0; }
constexpr bool has_waiters(LockWord w) { return (w & kWaitersBit) != 0; }
constexpr bool is_member(LockWord w, LockWord mask) { return (w & mask) != 0; }
constexpr bool is_free(LockWord w) { return members(w) == 0; }
constexpr bool sole_member(LockWord w, LockWord mask) { return members(w) == mask; }

constexpr LockWord with_member(LockWord w, LockWord mask) { return w | mask; }
constexpr LockWord without_member(LockWord w, LockWord mask) { return w & ~mask; }
constexpr LockWord with_writer(LockWord w) { return w | kWriterBit; }
constexpr LockWord without_writer(LockWord w) { return w & ~kWriterBit; }
constexpr LockWord with_upgrader(LockWord w) { return w | kUpgraderBit; }
constexpr LockWord without_upgrader(LockWord w) { return w & ~kUpgraderBit; }
constexpr LockWord with_waiters(LockWord w) { return w | kWaitersBit; }
constexpr LockWord without_waiters(LockWord w) { return w & ~kWaitersBit; }

// A transaction may take a read lock directly (no parking-lot round
// trip) when nobody writes, no upgrader is pending, and no waiters are
// parked (fairness: once waiters exist, newcomers must line up, §3.2).
constexpr bool read_grabbable(LockWord w) {
  return !has_writer(w) && !has_upgrader(w) && !has_waiters(w);
}

// A transaction may take a write lock directly when the lock is free and
// nobody waits, or when it is the sole (reading) member — the
// sole-reader upgrade (no other reader can race it in).
constexpr bool write_grabbable(LockWord w, LockWord mask) {
  if (has_waiters(w)) return false;
  if (is_free(w)) return !has_upgrader(w);
  return sole_member(w, mask) && !has_writer(w);
}

// --- Versioned words (LockMap::kVersioned, TL2-style invisible readers) ---
//
// Under a versioned map the word is NOT the Fig. 4(b) bit-set; it is
// either a version stamp or a write-lock marker, discriminated by the
// LSB:
//
//   stamp:       (version << 1)       LSB 0 — last committed version of
//                                     the data this word covers. A fresh
//                                     zeroed word is stamp 0 = "version
//                                     0", valid against every snapshot.
//   write-locked (txnId << 1) | 1     LSB 1 — exactly one exclusive
//                                     writer; no members, upgraders, or
//                                     wait queues ever appear.
//
// Readers never store to the word: read = load stamp, load data, fence,
// re-load stamp (Boehm seqlock pattern), append to the txn read set.
// Versions are drawn from the global commit clock (version_clock()).
constexpr bool version_locked(LockWord w) { return (w & 1) != 0; }
constexpr uint64_t version_of(LockWord w) { return w >> 1; }
constexpr LockWord version_stamp(uint64_t version) { return version << 1; }
constexpr LockWord version_locked_word(int txnId) {
  return (static_cast<LockWord>(txnId) << 1) | 1;
}
constexpr int version_owner(LockWord w) { return static_cast<int>(w >> 1); }

}  // namespace sbd::core
