#include "core/stats.h"

namespace sbd::core {

GlobalGauges& gauges() {
  static GlobalGauges g;
  return g;
}

}  // namespace sbd::core
