// sbd::obs — the always-on tracing + metrics layer grown out of the
// paper's §6 debug mode ("log the blocked threads, and deadlock
// situations ... resolve these issues mechanically by looking through
// this log").
//
// Design constraints, in order:
//
//   1. The record path must be cheap enough to leave enabled under the
//      chaos and perf-smoke runs: no global lock, no allocation. Each
//      thread appends to its own bounded SPSC ring buffer; on overflow
//      events are dropped and counted, never blocked on.
//   2. Lock identity must be symbolic. runtime/lockpool recycles
//      lock-word arrays across unrelated objects, so a raw word address
//      misattributes contention the moment an array is reused. Events
//      capture (ClassInfo*, lock index) at record time — while the
//      object is pinned by the wait queue — and summaries key on
//      "Class.field" / "Class[index]", which stays stable forever.
//   3. Everything aggregates into one metrics snapshot: StatsCounters,
//      GlobalGauges, lock-pool stats, watchdog/degrade counters, and a
//      top-N hot-lock contention table, exported as JSON via the
//      SBD_METRICS_JSON env var or the API below.
//
// core/debug.h remains as a thin compatibility wrapper over this
// header (the way core/inject.h wraps core/fault.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/fwd.h"

namespace sbd::runtime {
struct ClassInfo;  // defined in runtime/class_info.h
}

namespace sbd::obs {

// The first seven kinds mirror the original §6 debug mode (and keep
// their order: core/debug.h aliases this enum); the rest are the
// duration events of the always-on tracer.
enum class EventKind : uint8_t {
  kBlocked,        // a transaction entered a wait queue
  kGranted,        // ...and eventually got the lock (duration = wait latency)
  kDeadlock,       // a cycle was resolved; `other` is the chosen victim
  kAborted,        // a transaction rolled back and will retry
  kWatchdogStall,  // watchdog saw a transaction blocked past the threshold
  kIdPoolStall,    // id-pool acquire exceeded a timeout slice (§3.3 pressure)
  kEscalated,      // retry budget exhausted; section now runs serialized
  kCommit,         // sampled: one commit_section, duration = commit work
  kSplit,          // sampled: one split_section, duration incl. the commit
  kGcPause,        // one GC stop-the-world, duration = full pause
  kSafepointStop,  // one stop_world, duration = time to stop all threads
};

// Marks "lock index unknown" in symbolized events (e.g. an event that
// only carries a raw address, or a word outside its object's array).
inline constexpr uint32_t kNoIndex = 0xFFFFFFFFu;

struct Event {
  EventKind kind;
  bool wantWrite;
  int txnId;   // who the event happened to (-1 if n/a)
  int other;   // victim id (kDeadlock), -1 otherwise
  uint32_t lockIndex;                // lock-word index in the instance, or kNoIndex
  const runtime::ClassInfo* cls;     // symbolic identity; null if unknown
  uint64_t lockAddr;                 // raw word address (0 if n/a); NOT stable
  uint64_t timestampNanos;
  uint64_t durationNanos;            // kGranted: wait latency; k*Pause/kCommit/kSplit
};

// Symbolic identity of one lock word, resolved against the instance
// that owns it (the runtime class registry supplies the names).
struct LockSym {
  const runtime::ClassInfo* cls = nullptr;
  uint32_t index = kNoIndex;
};

namespace detail {
extern std::atomic<bool> gEnabled;
extern thread_local uint32_t tDurTick;
}  // namespace detail

// Duration events (kCommit/kSplit) are sampled 1-in-64 so the per-split
// tracer cost stays within the perf-smoke budget; contention events are
// never sampled (they live on the slow path already).
inline constexpr uint32_t kDurationSamplePeriod = 64;

// Enable/disable recording. Also auto-enabled at startup when the
// SBD_TRACE environment variable is set to a non-"0" value.
void set_enabled(bool on);
inline bool enabled() { return detail::gEnabled.load(std::memory_order_relaxed); }

// True on every kDurationSamplePeriod-th call per thread while enabled;
// callers bracket their duration measurement with it.
inline bool sample_duration() {
  if (!enabled()) return false;
  if (++detail::tDurTick < kDurationSamplePeriod) return false;
  detail::tDurTick = 0;
  return true;
}

// Resolves word -> (class, lock index) against the owning instance.
// Safe to call wherever the object is pinned (lock held, wait queue
// bound, or single-threaded); returns an address-free identity.
LockSym symbolize(const runtime::ManagedObject* obj, const core::LockWord* word);

// Records one event into the calling thread's ring (lock-free; drops
// and counts on overflow). No-op while disabled.
void record(EventKind kind, int txnId, int other, const void* lockAddr,
            const runtime::ClassInfo* cls, uint32_t lockIndex, bool wantWrite,
            uint64_t durationNanos = 0);

// Convenience: record + symbolize in one step for lock-carrying events.
void record_lock_event(EventKind kind, int txnId, int other,
                       const runtime::ManagedObject* obj, const core::LockWord* word,
                       bool wantWrite, uint64_t durationNanos = 0);

// Drains every thread's ring and returns the merged trace, oldest
// first (merged by timestamp).
std::vector<Event> drain();

// Events currently buffered across all rings (approximate: producers
// keep appending while we sum).
size_t approx_size();

// Totals since process start: events recorded into rings, and events
// dropped to ring overflow (the bounded-buffer "never block" policy).
uint64_t recorded();
uint64_t dropped();

// Human-readable identity of an event's lock: "Class.field",
// "Class[index]", or the raw address when no symbol was captured.
std::string lock_name(const runtime::ClassInfo* cls, uint32_t index, uint64_t addr);
std::string lock_name(const Event& e);

// Renders events into the per-lock contention summary the paper's
// workflow needs: "which locks block whom, how often" — keyed on
// symbolic identity, with average granted-wait latency when available.
std::string summarize(const std::vector<Event>& events);

// --- Hot-lock contention table ---------------------------------------------
// A small fixed-size concurrent table bumped on every kBlocked record,
// independent of the rings (surviving drains), so the watchdog and the
// metrics export can rank contended locks without consuming the trace.

struct HotLock {
  std::string name;
  uint64_t blocks = 0;
  uint64_t writes = 0;
};

// Top `n` contended locks, most blocked first.
std::vector<HotLock> top_contended(size_t n);

// One-line report ("top contended: A.x 12x(8w), B[3] 5x") or "" when
// the table is empty; the watchdog appends this to stall diagnoses.
std::string hot_report(size_t n);

// Clears the contention table (tests, measurement windows).
void reset_contention();

// --- Metrics snapshot --------------------------------------------------------

// Aggregates StatsCounters + GlobalGauges + lock-pool, watchdog,
// degradation, and tracer counters, plus the top-10 hot locks, into a
// JSON object.
std::string metrics_json();

// Writes metrics_json() to `path`; returns false on I/O error.
bool export_metrics(const std::string& path);

// Honors the SBD_METRICS_JSON environment variable if set (called by
// tools/sbd_chaos and the benches at exit). Returns true if a file was
// written.
bool export_metrics_if_requested();

}  // namespace sbd::obs
