// sbd::obs — the always-on tracing + metrics layer grown out of the
// paper's §6 debug mode ("log the blocked threads, and deadlock
// situations ... resolve these issues mechanically by looking through
// this log").
//
// Design constraints, in order:
//
//   1. The record path must be cheap enough to leave enabled under the
//      chaos and perf-smoke runs: no global lock, no allocation. Each
//      thread appends to its own bounded SPSC ring buffer; on overflow
//      events are dropped and counted, never blocked on.
//   2. Lock identity must be symbolic. runtime/lockpool recycles
//      lock-word arrays across unrelated objects, so a raw word address
//      misattributes contention the moment an array is reused. Events
//      capture (ClassInfo*, lock index) at record time — while the
//      object is pinned by the wait queue — and summaries key on
//      "Class.field" / "Class[index]", which stays stable forever.
//   3. Everything aggregates into one metrics snapshot: StatsCounters,
//      GlobalGauges, lock-pool stats, watchdog/degrade counters, and a
//      top-N hot-lock contention table, exported as JSON via the
//      SBD_METRICS_JSON env var or the API below.
//
// core/debug.h remains as a thin compatibility wrapper over this
// header (the way core/inject.h wraps core/fault.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/fwd.h"

namespace sbd::runtime {
struct ClassInfo;  // defined in runtime/class_info.h
}

namespace sbd::obs {

// The first seven kinds mirror the original §6 debug mode (and keep
// their order: core/debug.h aliases this enum); the rest are the
// duration events of the always-on tracer and (after kSafepointStop)
// the full-trace events consumed by the sbd::oracle happens-before
// checker. New kinds must be APPENDED: the order is pinned.
enum class EventKind : uint8_t {
  kBlocked,        // a transaction entered a wait queue
  kGranted,        // ...and eventually got the lock (duration = wait latency)
  kDeadlock,       // a cycle was resolved; `other` is the chosen victim
  kAborted,        // a transaction rolled back and will retry
  kWatchdogStall,  // watchdog saw a transaction blocked past the threshold
  kIdPoolStall,    // id-pool acquire exceeded a timeout slice (§3.3 pressure)
  kEscalated,      // retry budget exhausted; section now runs serialized
  kCommit,         // sampled: one commit_section, duration = commit work
  kSplit,          // sampled: one split_section, duration incl. the commit
  kGcPause,        // one GC stop-the-world, duration = full pause
  kSafepointStop,  // one stop_world, duration = time to stop all threads
  kAcquire,        // full-trace: a lock was granted (`other` 1 = read->write upgrade)
  kRelease,        // full-trace: a lock was released (`other` 1 = commit, 0 = abort)
  kCommitOrder,    // full-trace: commit sequence drawn while locks held (`seq`)
  kThreadExit,     // the recording thread retired its ring (end of its stream)
  kValidate,       // full-trace: versioned read set validated (`seq` = read
                   // snapshot, `other` = entries) — the oracle joins the
                   // clocks of every commit with seq <= snapshot
  kVersionAbort,   // a versioned section aborted (`other` = reason below);
                   // always-on like kAborted, bumps the hot-lock table
};

const char* event_kind_name(EventKind k);

// DebugEvent::other reason codes carried by kVersionAbort.
inline constexpr int kVersionAbortStale = 0;          // read saw a stamp past the snapshot
inline constexpr int kVersionAbortWriteConflict = 1;  // foreign write lock outlasted the spin
inline constexpr int kVersionAbortValidation = 2;     // split/commit re-validation failed

// Marks "lock index unknown" in symbolized events (e.g. an event that
// only carries a raw address, or a word outside its object's array).
inline constexpr uint32_t kNoIndex = 0xFFFFFFFFu;

struct Event {
  EventKind kind;
  bool wantWrite;
  int txnId;   // who the event happened to (-1 if n/a)
  int other;   // victim id (kDeadlock), upgrade/commit flag (kAcquire/kRelease), -1 otherwise
  uint32_t lockIndex;                // lock-word index in the instance, or kNoIndex
  const runtime::ClassInfo* cls;     // symbolic identity; null if unknown
  uint64_t lockAddr;                 // raw word address (0 if n/a); NOT stable
  uint64_t timestampNanos;
  uint64_t durationNanos;            // kGranted: wait latency; k*Pause/kCommit/kSplit
  // Transaction epoch: Transaction::start_seq() at record time, so the
  // oracle can tell recycled txn ids apart (0 = no transaction).
  uint64_t epoch;
  // kCommitOrder: the global commit sequence number; kDeadlock: the
  // victim's epoch (start_seq); 0 otherwise.
  uint64_t seq;
  // Global record ordinal: the modification order of one atomic counter,
  // drawn inside record(). For two conflicting lock operations (release
  // recorded BEFORE the word is cleared, acquire recorded AFTER the CAS)
  // ordinal order is guaranteed to match real-time order even when the
  // clock ties — the tie-break the oracle's replay relies on.
  uint64_t ordinal;
};

// Symbolic identity of one lock word, resolved against the instance
// that owns it (the runtime class registry supplies the names).
struct LockSym {
  const runtime::ClassInfo* cls = nullptr;
  uint32_t index = kNoIndex;
};

namespace detail {
extern std::atomic<bool> gEnabled;
extern std::atomic<bool> gFullTrace;
extern std::atomic<bool> gLossless;
extern thread_local uint32_t tDurTick;
}  // namespace detail

// Duration events (kCommit/kSplit) are sampled 1-in-64 so the per-split
// tracer cost stays within the perf-smoke budget; contention events are
// never sampled (they live on the slow path already).
inline constexpr uint32_t kDurationSamplePeriod = 64;

// Enable/disable recording. Also auto-enabled at startup when the
// SBD_TRACE environment variable is set to a non-"0" value.
void set_enabled(bool on);
inline bool enabled() { return detail::gEnabled.load(std::memory_order_relaxed); }

// Full-trace mode: additionally record kAcquire/kRelease/kCommitOrder
// on every lock grant, release, and commit — the input the sbd::oracle
// happens-before checker needs. Costs one relaxed load per hot-path
// site while off. Implies enabled(). Auto-enabled at startup by
// SBD_TRACE=full or SBD_TRACE_FULL=1.
void set_full_trace(bool on);
inline bool full_trace() { return detail::gFullTrace.load(std::memory_order_relaxed); }

// Lossless mode: on ring overflow record() blocks (polling the ring
// tail) until a drainer makes room, instead of dropping. Only safe with
// a concurrent drain() loop on a non-SBD thread; as a liveness backstop
// a producer gives up after ~5s of no progress and falls back to
// drop-and-count. Default off (the bounded-buffer "never block" policy
// stands). Auto-enabled at startup by SBD_TRACE_LOSSLESS=1.
void set_lossless(bool on);
inline bool lossless() { return detail::gLossless.load(std::memory_order_relaxed); }

// Draws the next global commit sequence number (first call returns 1).
// commit_section draws it while every lock is still held, so the
// per-lock release->acquire order implies commit-sequence order — the
// linearization fact the oracle verifies. Since the versioned-
// granularity work this delegates to core::advance_version_clock():
// commit seqs and version stamps are the SAME counter, so a stamp on a
// versioned word IS the commit seq of the write that produced it.
uint64_t next_commit_seq();

// True on every kDurationSamplePeriod-th call per thread while enabled;
// callers bracket their duration measurement with it.
inline bool sample_duration() {
  if (!enabled()) return false;
  if (++detail::tDurTick < kDurationSamplePeriod) return false;
  detail::tDurTick = 0;
  return true;
}

// Resolves word -> (class, lock index) against the owning instance.
// Safe to call wherever the object is pinned (lock held, wait queue
// bound, or single-threaded); returns an address-free identity.
LockSym symbolize(const runtime::ManagedObject* obj, const core::LockWord* word);

// Records one event into the calling thread's ring (lock-free; drops
// and counts on overflow unless lossless() — see above). No-op while
// disabled. `epoch` is the recording transaction's start_seq (0 = no
// txn); `seq` is the commit sequence (kCommitOrder) or victim epoch
// (kDeadlock).
void record(EventKind kind, int txnId, int other, const void* lockAddr,
            const runtime::ClassInfo* cls, uint32_t lockIndex, bool wantWrite,
            uint64_t durationNanos = 0, uint64_t epoch = 0, uint64_t seq = 0);

// Convenience: record + symbolize in one step for lock-carrying events.
void record_lock_event(EventKind kind, int txnId, int other,
                       const runtime::ManagedObject* obj, const core::LockWord* word,
                       bool wantWrite, uint64_t durationNanos = 0,
                       uint64_t epoch = 0, uint64_t seq = 0);

// Drains every thread's ring and returns the merged trace, oldest
// first (merged by timestamp).
std::vector<Event> drain();

// Events currently buffered across all rings (approximate: producers
// keep appending while we sum).
size_t approx_size();

// Totals since process start: events recorded into rings, and events
// dropped to ring overflow (the bounded-buffer "never block" policy).
uint64_t recorded();
uint64_t dropped();

// Human-readable identity of an event's lock: "Class.field",
// "Class[index]", or the raw address when no symbol was captured.
std::string lock_name(const runtime::ClassInfo* cls, uint32_t index, uint64_t addr);
std::string lock_name(const Event& e);

// Renders events into the per-lock contention summary the paper's
// workflow needs: "which locks block whom, how often" — keyed on
// symbolic identity, with average granted-wait latency when available.
std::string summarize(const std::vector<Event>& events);

// Writes a drained trace as the "# sbd-trace v1" text format that
// tools/sbd_oracle reads back (one event per line, symbolic lock name
// last). `droppedEvents` goes into the header so the oracle knows
// whether the trace is complete. Returns false on I/O error.
bool write_trace(const std::string& path, const std::vector<Event>& events,
                 uint64_t droppedEvents);

// --- Hot-lock contention table ---------------------------------------------
// A small fixed-size concurrent table bumped on every kBlocked record,
// independent of the rings (surviving drains), so the watchdog and the
// metrics export can rank contended locks without consuming the trace.

struct HotLock {
  std::string name;
  uint64_t blocks = 0;
  uint64_t writes = 0;
};

// Top `n` contended locks, most blocked first.
std::vector<HotLock> top_contended(size_t n);

// One-line report ("top contended: A.x 12x(8w), B[3] 5x") or "" when
// the table is empty; the watchdog appends this to stall diagnoses.
std::string hot_report(size_t n);

// Clears the contention table (tests, measurement windows).
void reset_contention();

// --- Metrics snapshot --------------------------------------------------------

// Aggregates StatsCounters + GlobalGauges + lock-pool, watchdog,
// degradation, and tracer counters, plus the top-10 hot locks, into a
// JSON object.
std::string metrics_json();

// Registers an extra top-level metrics section: metrics_json() appends
// `"name": <provider()>` for each registration, letting subsystems the
// core cannot link against (sbd::serve) contribute without a dependency
// cycle. `provider` must return a complete JSON value and stay callable
// for the life of the process (register function pointers or lambdas
// over process-lifetime state, not over short-lived objects).
// Re-registering a name replaces the previous provider.
void register_metrics_section(const char* name, std::string (*provider)());

// Writes metrics_json() to `path`; returns false on I/O error.
bool export_metrics(const std::string& path);

// Honors the SBD_METRICS_JSON environment variable if set (called by
// tools/sbd_chaos and the benches at exit). Returns true if a file was
// written.
bool export_metrics_if_requested();

}  // namespace sbd::obs
