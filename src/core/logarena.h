// Segmented per-thread log arenas for the transaction's undo log, lock
// records, and init log.
//
// The paper's per-section bookkeeping (§3.2/§3.3) appends to these logs
// on every first access and truncates them at every commit/abort. A
// std::vector pays a reallocate-and-copy on growth and invalidates
// entry pointers; the arena instead chains fixed-size chunks:
//
//   - push_back never moves existing entries (entry pointers are stable
//     for the lifetime of the section — the GC and the upgrade path
//     hold LockRecord pointers across pushes),
//   - clear() resets the write cursor to the first chunk WITHOUT
//     freeing, so a thread running many sections reuses the same memory
//     with zero allocator traffic after warm-up,
//   - a high-water decay policy returns excess chunks to the allocator
//     when a burst section inflated the arena far beyond what recent
//     sections use (so one huge transaction does not pin memory for the
//     rest of the thread's life).
//
// Iteration is forward (GC root scan, init-log publish) or reverse
// (undo replay and lock release walk newest-first).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace sbd::core {

template <typename T, size_t kChunkEntries = 256>
class SegmentedLog {
  static_assert(kChunkEntries > 0);

 public:
  SegmentedLog() = default;
  SegmentedLog(const SegmentedLog&) = delete;
  SegmentedLog& operator=(const SegmentedLog&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void push_back(const T& v) { *advance() = v; }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    T* slot = advance();
    *slot = T{std::forward<Args>(args)...};
    return *slot;
  }

  // Resets the cursor to the start, keeping chunks for reuse. Decay:
  // when the arena holds more than twice the chunks the largest section
  // since the last decay actually used, for kDecayPeriod consecutive
  // clears, the excess chunks are freed (the first chunk always stays).
  void clear() {
    if (size_ > peak_) peak_ = size_;
    if (chunks_.size() > 1) {
      const size_t usedChunks = (peak_ + kChunkEntries - 1) / kChunkEntries;
      if (chunks_.size() > 2 * (usedChunks ? usedChunks : 1)) {
        if (++decayTicks_ >= kDecayPeriod) {
          const size_t keep = usedChunks ? usedChunks : 1;
          chunks_.resize(keep);
          decayTicks_ = 0;
          peak_ = 0;
        }
      } else {
        decayTicks_ = 0;
        peak_ = 0;
      }
    }
    size_ = 0;
    chunkIdx_ = 0;
    cur_ = chunks_.empty() ? nullptr : chunks_[0]->entries;
    end_ = chunks_.empty() ? nullptr : chunks_[0]->entries + kChunkEntries;
  }

  // Bytes of chunk storage currently reserved (tests/introspection).
  size_t capacity_bytes() const { return chunks_.size() * sizeof(Chunk); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    size_t remaining = size_;
    for (size_t c = 0; remaining > 0; c++) {
      const size_t n = remaining < kChunkEntries ? remaining : kChunkEntries;
      const T* e = chunks_[c]->entries;
      for (size_t i = 0; i < n; i++) fn(e[i]);
      remaining -= n;
    }
  }

  // Newest-first walk with mutable access (undo replay, lock release).
  template <typename Fn>
  void for_each_reverse(Fn&& fn) {
    if (size_ == 0) return;
    size_t c = (size_ - 1) / kChunkEntries;
    size_t inLast = size_ - c * kChunkEntries;  // entries in the last chunk
    for (;; c--) {
      T* e = chunks_[c]->entries;
      for (size_t i = inLast; i-- > 0;) fn(e[i]);
      if (c == 0) break;
      inLast = kChunkEntries;
    }
  }

  // Newest entry matching `pred`, or nullptr (upgrade-path record fix-up).
  template <typename Pred>
  T* find_last_if(Pred&& pred) {
    if (size_ == 0) return nullptr;
    size_t c = (size_ - 1) / kChunkEntries;
    size_t inLast = size_ - c * kChunkEntries;
    for (;; c--) {
      T* e = chunks_[c]->entries;
      for (size_t i = inLast; i-- > 0;)
        if (pred(e[i])) return &e[i];
      if (c == 0) break;
      inLast = kChunkEntries;
    }
    return nullptr;
  }

 private:
  struct Chunk {
    T entries[kChunkEntries];
  };

  static constexpr size_t kDecayPeriod = 64;

  T* advance() {
    if (cur_ == end_) grow();
    size_++;
    return cur_++;
  }

  void grow() {
    chunkIdx_ = size_ / kChunkEntries;
    if (chunkIdx_ == chunks_.size()) chunks_.push_back(std::make_unique<Chunk>());
    cur_ = chunks_[chunkIdx_]->entries;
    end_ = cur_ + kChunkEntries;
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  T* cur_ = nullptr;
  T* end_ = nullptr;
  size_t size_ = 0;
  size_t chunkIdx_ = 0;
  size_t peak_ = 0;        // max size() since the last decay window reset
  size_t decayTicks_ = 0;  // consecutive clears with >2x over-reservation
};

}  // namespace sbd::core
