// Failure injection: probabilistically abort sections at their split
// points instead of committing. This drives the complete rollback
// machinery — heap undo, lock release, I/O buffer discard/replay, DB
// rollback, deferred-action discard, stack restore — through every
// substrate, under test control.
//
// This is now a thin compatibility wrapper over the fault-plan registry
// (core/fault.h), which generalizes the same idea to named injection
// sites across the whole stack. The legacy API maps onto the
// Site::kSplitAbort site; injection remains deterministic (seeded) and
// per-process, and inevitable sections remain exempt.
#pragma once

#include <cstdint>

#include "core/fault.h"

namespace sbd::core {

// Installs a fresh fault plan whose only enabled site is the split
// abort (rate in [0,1]; 0 disables everything). Counts reset.
inline void set_abort_injection(double rate, uint64_t seed = 0xfa11) {
  if (rate > 0)
    fault::set_plan(fault::single_site(fault::Site::kSplitAbort, rate, seed));
  else
    fault::clear_plan();
}

// Number of aborts injected since the last plan installation.
inline uint64_t injected_aborts() { return fault::fired(fault::Site::kSplitAbort); }

// Internal: called by split_section; returns true if this split should
// abort instead of committing.
inline bool should_inject_abort() { return fault::should_fire(fault::Site::kSplitAbort); }

// RAII guard for tests. Restores the PREVIOUS fault plan (rates, seed,
// RNG streams, and counters) on destruction instead of zeroing the
// registry, so nested scopes compose.
class AbortInjectionScope {
 public:
  explicit AbortInjectionScope(double rate, uint64_t seed = 0xfa11)
      : scope_(fault::single_site(fault::Site::kSplitAbort, rate, seed)) {}
  AbortInjectionScope(const AbortInjectionScope&) = delete;
  AbortInjectionScope& operator=(const AbortInjectionScope&) = delete;

 private:
  fault::PlanScope scope_;
};

}  // namespace sbd::core
