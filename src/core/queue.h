// The parking lot behind the paper's §3.2 fair wait queues: per-waiter
// nodes live on the waiter's OWN stack and are linked into a bucket of a
// hashed stripe table keyed by lock-word address. A waiter spins locally
// on its node's state flag for a bounded budget, then parks on a futex
// (condvar fallback off Linux). Release performs a DIRECT HANDOFF: the
// releaser CASes the grantable prefix of the word's FIFO — readers up to
// the first writer, or one writer — into the lock word under the bucket
// lock, dequeues exactly those nodes, and wakes exactly them. Nobody
// else stirs, which is what replaced the old 63-queue global pool's
// notify_all thundering herd (and the pool's central alloc/free mutex).
//
// The lock word carries one has-waiters bit instead of the old 6-bit
// queue id (core/lockword.h): the word's address, not a pool index, maps
// to the waiters. Fairness (strict FIFO, upgraders at the front), the
// Dreadlocks digest inputs, and the GC boundObj root all ride in the
// waiter node.
//
// Lost-wakeup protocol (proved in docs/SEMANTICS.md): a waiter publishes
// its node under the bucket lock, THEN sets the has-waiters bit, THEN
// re-checks the word (try_grant_self) before parking. A releaser that
// missed the bit is therefore ordered before the waiter's re-check; a
// releaser that saw the bit runs its grant pass under the same bucket
// lock the node was published under. Either way the waiter is granted,
// never forgotten. Parks are additionally timed (the waiter re-publishes
// its deadlock digest each tick), so even a reasoning bug here degrades
// to latency, not a hang.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

#if !defined(__linux__)
#include <condition_variable>
#endif

#include "core/fwd.h"
#include "core/lockword.h"

namespace sbd::core {

struct ThreadContext;  // defined in core/transaction.h

// Waiter-node states (the futex word). Transitions:
//   kWaiting -> kGranted   direct handoff (unpark path CASed the word for us)
//   kWaiting -> kSignaled  advisory wake (abort request, id released): re-check
//   kSignaled -> kWaiting  the signal was consumed without a grant
// kGranted is terminal: the node is already unlinked and the lock is ours.
inline constexpr uint32_t kNodeWaiting = 0;
inline constexpr uint32_t kNodeSignaled = 1;
inline constexpr uint32_t kNodeGranted = 2;

// One waiter. Allocated on the waiting thread's stack frame inside
// slow_acquire / TxnIdPool::acquire_for; never heap-allocated, never
// copied. While linked into a bucket it is a GC root for boundObj and
// the source of the "waiters ahead of me" Dreadlocks digest bits.
struct WaitNode {
  const LockWord* word = nullptr;              // bucket key (id pool: sentinel)
  runtime::ManagedObject* boundObj = nullptr;  // pins the instance while we wait
  int txnId = -1;
  LockWord mask = 0;        // txn_mask(txnId)
  bool wantWrite = false;   // true for writers AND upgraders
  bool upgrader = false;    // holds a read lock + the U bit already
  bool idPool = false;      // txn-id over-subscription waiter (no word handoff)

  std::atomic<uint32_t> state{kNodeWaiting};
  WaitNode* prev = nullptr;  // intrusive bucket list, guarded by the bucket lock
  WaitNode* next = nullptr;

#if !defined(__linux__)
  std::mutex mu;                // portable park fallback (no futex syscall)
  std::condition_variable cv;
#endif
};

// Result of one grant probe by the waiter itself.
struct GrantProbe {
  bool granted = false;
  // Dreadlocks digest input gathered in the same bucket critical
  // section: current members of the word minus ourselves, plus the txn
  // bits of every same-word waiter ahead of us.
  uint64_t blockers = 0;
};

enum class CancelResult {
  kRemoved,     // node unlinked; the caller holds nothing
  kWasGranted,  // lost the race against a handoff: the lock is OURS
};

class ParkingLot {
 public:
  static ParkingLot& instance();

  // --- lock waiters (core/transaction.cpp slow_acquire) --------------------

  // Links `n` into its word's bucket: upgraders in front of the word's
  // first waiter (§3.2), everyone else at the tail. Applies the fault
  // plan's kQueueEnqueue delay inside the bucket lock, before the node
  // becomes visible — the widened publish window seeded plans perturb.
  void publish(WaitNode& n);

  // Re-checks the word and self-grants if this waiter is at the front of
  // the grantable prefix (CASing the word under the bucket lock), or
  // absorbs a kNodeGranted handoff that already happened. Failed CASes
  // count into tc.stats.casFailures. On kNotYet the probe carries the
  // blocker set for the caller's digest update, and a pending kSignaled
  // is consumed back to kWaiting so the next park is not a no-op.
  GrantProbe try_grant_self(ThreadContext& tc, WaitNode& n);

  // Leaves the wait (abort path). If a handoff already granted the lock,
  // returns kWasGranted and the caller MUST treat the lock as held
  // (record it so release_all frees it). Otherwise unlinks the node and
  // re-runs the grant pass — removing a front writer can unblock the
  // readers parked behind it — clearing the has-waiters bit when the
  // word's queue emptied.
  CancelResult cancel(ThreadContext& tc, WaitNode& n);

  // Local spin (bounded), then park until granted/signaled or
  // `timeoutNanos` elapses. Called WITHOUT the bucket lock; the caller
  // wraps it in a Safepoint::SafeScope. Spurious returns are fine — the
  // caller loops through try_grant_self.
  void park(WaitNode& n, uint64_t timeoutNanos);

  // --- release / abort side -------------------------------------------------

  // The releaser's wake: grant the word's grantable prefix by direct
  // handoff and wake exactly those nodes. Applies the fault plan's
  // kQueueWakeup delay inside the bucket lock, before the handoff.
  void unpark_word(ThreadContext& tc, const LockWord* word);

  // Advisory wake of one specific waiter (deadlock victim, watchdog
  // abort): flips its node kWaiting -> kSignaled and wakes it so it
  // notices its abort flag now instead of at the next timed-park tick.
  // `word` is used purely as a hash key and list filter, never
  // dereferenced — safe even if the victim already left.
  void unpark_txn(const LockWord* word, int txnId);

  // --- id-pool waiters (core/ids.cpp) ---------------------------------------

  // Unlinks an id-pool node (no grant pass, no word bit — the sentinel
  // word is never a real lock).
  void remove(WaitNode& n);

  // Wakes the first still-kWaiting id-pool node parked on `key` (skipping
  // already-signaled ones, so one release never burns its wake on a
  // waiter that is already up). Returns true if someone was signaled.
  bool unpark_one(const LockWord* key);

  // --- GC / watchdog --------------------------------------------------------

  // Enumerates the boundObj of every parked lock waiter (stop-the-world
  // root scan). Mutators never hold a bucket lock across a safepoint, so
  // taking every bucket lock here cannot deadlock against a stopped
  // thread.
  template <typename Fn>
  void for_each_bound(Fn&& fn) {
    for (size_t i = 0; i < kBuckets; i++) {
      std::lock_guard<std::mutex> lk(buckets_[i].mu);
      for (WaitNode* n = buckets_[i].head; n; n = n->next)
        if (n->boundObj) fn(n->boundObj);
    }
  }

  // Finds txnId's node for `word` and calls fn(node, queueDepth) under
  // the bucket lock (queueDepth = same-word waiters). Returns false if
  // the waiter already left. Watchdog stall symbolization.
  template <typename Fn>
  bool with_waiter(const LockWord* word, int txnId, Fn&& fn) {
    Bucket& b = bucket_for(word);
    std::lock_guard<std::mutex> lk(b.mu);
    WaitNode* me = nullptr;
    size_t depth = 0;
    for (WaitNode* n = b.head; n; n = n->next) {
      if (n->word != word || n->idPool) continue;
      depth++;
      if (n->txnId == txnId) me = n;
    }
    if (!me) return false;
    fn(static_cast<const WaitNode&>(*me), depth);
    return true;
  }

  // --- metrics --------------------------------------------------------------

  struct Counters {
    uint64_t parked = 0;       // futex/condvar parks entered (spin budget missed)
    uint64_t spunGranted = 0;  // grants/signals observed during the local spin
    uint64_t futexWakes = 0;   // wake syscalls issued (handoffs + signals)
    uint64_t handoffs = 0;     // nodes granted by direct handoff (unpark side)
    uint64_t idWakes = 0;      // unpark_one signals (id-pool wake-one discipline)
  };
  static Counters counters();

  // Live waiter-node count across all buckets (lock + id-pool waiters)
  // — the instantaneous parked-waiter depth the serving metrics report.
  // Takes each bucket lock briefly; export-path only, never hot.
  static size_t approx_waiters();

 private:
  ParkingLot() = default;

  struct Bucket {
    std::mutex mu;
    WaitNode* head = nullptr;
    WaitNode* tail = nullptr;
  };

  // 64 buckets: the working set of distinct CONTENDED words at any
  // instant is bounded by the live-waiter count (<= a few dozen threads),
  // so collisions are rare and a collision only shares a mutex, never
  // semantics (every list op filters on n->word).
  static constexpr size_t kBuckets = 64;

  Bucket& bucket_for(const LockWord* w);
  void link_locked(Bucket& b, WaitNode& n);
  void unlink_locked(Bucket& b, WaitNode& n);
  // Hands the grantable prefix of `word` its locks. Pre: b.mu held.
  void grant_pass_locked(Bucket& b, const LockWord* word, ThreadContext& tc);
  static void wake(WaitNode& n);

  Bucket buckets_[kBuckets];
};

}  // namespace sbd::core
