// Fair wait queues (paper §3.2 "progress guarantees"): when a
// transaction cannot acquire a field lock directly it lines up at the
// end of the lock's queue regardless of read/write — except upgrading
// readers, which enter at the front to shorten the window for dueling
// upgrades. The queue id stored in the lock word points into a global
// pool; the pool size (63) covers the worst case of every concurrently
// active transaction waiting on a distinct lock.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "core/fwd.h"

namespace sbd::core {

struct Waiter {
  int txnId = -1;
  bool wantWrite = false;
  bool upgrader = false;
};

class WaitQueue {
 public:
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Waiter> waiters;

  // Identity checks so a late enqueuer can detect that the queue was
  // detached from the lock word (and possibly rebound) between its read
  // of the word and taking mu.
  LockWord* boundWord = nullptr;
  runtime::ManagedObject* boundObj = nullptr;  // keeps the instance alive (GC root)
  bool detached = true;

  // Position of txnId in the queue, or -1.
  int position_of(int txnId) const;
  // True if every waiter strictly ahead of position `pos` is a reader.
  bool only_readers_ahead(int pos) const;
  void remove(int txnId);

  // Enqueues a waiter (upgraders at the front, §3.2). Pre: mu held.
  // Applies the fault plan's enqueue delay (fault::Site::kQueueEnqueue)
  // before publishing the waiter, widening the window in which the lock
  // word and the queue disagree.
  void enqueue(const Waiter& w);
  // Wakes every waiter. Pre: mu held. Applies the fault plan's wakeup
  // delay (fault::Site::kQueueWakeup) before notifying, so waiters see
  // stale grants and must re-validate.
  void notify_waiters();
};

class QueuePool {
 public:
  QueuePool();

  // Allocates a queue and binds it to (word, obj); returns its 1-based
  // id for the lock word's queue-id field. Never fails given the pool
  // invariant (waiting txns <= 56 < 63 queues).
  int alloc(LockWord* word, runtime::ManagedObject* obj);

  WaitQueue& get(int qid);

  // Returns a queue to the free list. Caller must hold q.mu, have set
  // q.detached, and have cleared the queue id from the lock word.
  void free(int qid);

  // GC support: enumerate bound objects of live queues. Takes each
  // queue's own mutex (binding happens under q.mu, not poolMu_).
  template <typename Fn>
  void for_each_bound(Fn&& fn) {
    for (int i = 1; i <= kNumQueues; i++) {
      std::lock_guard<std::mutex> lk(queues_[i].mu);
      if (!queues_[i].detached && queues_[i].boundObj) fn(queues_[i].boundObj);
    }
  }

 private:
  std::mutex poolMu_;
  uint64_t freeBits_;            // bit (i-1) set <=> queue id i free
  WaitQueue queues_[kNumQueues + 1];  // index 0 unused
};

}  // namespace sbd::core
