#include "core/obs.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/timing.h"
#include "core/degrade.h"
#include "core/queue.h"
#include "core/stats.h"
#include "core/transaction.h"
#include "core/watchdog.h"
#include "runtime/class_info.h"
#include "runtime/lockplan.h"
#include "runtime/lockpool.h"
#include "runtime/object.h"

namespace sbd::obs {

namespace detail {
std::atomic<bool> gEnabled{[] {
  const char* e = std::getenv("SBD_TRACE");
  return e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0;
}()};
std::atomic<bool> gFullTrace{[] {
  const char* e = std::getenv("SBD_TRACE");
  if (e != nullptr && std::strcmp(e, "full") == 0) return true;
  const char* f = std::getenv("SBD_TRACE_FULL");
  return f != nullptr && *f != '\0' && std::strcmp(f, "0") != 0;
}()};
std::atomic<bool> gLossless{[] {
  const char* e = std::getenv("SBD_TRACE_LOSSLESS");
  return e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0;
}()};
thread_local uint32_t tDurTick = 0;
}  // namespace detail

namespace {

// ---------------------------------------------------------------------------
// Per-thread SPSC ring buffers
// ---------------------------------------------------------------------------
//
// One producer (the owning thread), one consumer at a time (drain holds
// the registry mutex). The producer publishes a slot with a release
// store of head; the consumer retires slots with a release store of
// tail, which the producer acquires before overwriting — the standard
// bounded SPSC protocol, so the record path takes no lock ever.

constexpr size_t kRingEntries = 4096;  // power of two; ~320 KiB per thread

struct Ring {
  std::atomic<uint64_t> head{0};     // next slot to write (producer)
  std::atomic<uint64_t> tail{0};     // next slot to read (consumer)
  std::atomic<uint64_t> dropped{0};  // overflow count (producer)
  Event slots[kRingEntries];
};

// Global record ordinal. A relaxed fetch_add suffices for the oracle's
// ordering guarantee: for two records separated by a happens-before
// edge (the release record is sequenced before the word-clearing CAS,
// which synchronizes with the acquiring CAS sequenced before the
// acquire record), write-write coherence forces the earlier record to
// draw the smaller ordinal.
std::atomic<uint64_t> gOrdinal{0};

// Lossless mode gives up after this long without drain progress so a
// missing drainer degrades to drop-and-count instead of a hang.
constexpr uint64_t kLosslessMaxWaitNanos = 5'000'000'000ull;

// Appends one fully-formed event to `r`, dropping on overflow. Split
// out of record() so ~RingHolder can stamp kThreadExit into its ring
// directly (my_ring() must not run during TLS destruction).
void append_event(Ring& r, EventKind kind, int txnId, int other, uint64_t lockAddr,
                  const runtime::ClassInfo* cls, uint32_t lockIndex, bool wantWrite,
                  uint64_t durationNanos, uint64_t epoch, uint64_t seq) {
  const uint64_t h = r.head.load(std::memory_order_relaxed);
  if (h - r.tail.load(std::memory_order_acquire) >= kRingEntries) {
    r.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event& e = r.slots[h & (kRingEntries - 1)];
  e.kind = kind;
  e.wantWrite = wantWrite;
  e.txnId = txnId;
  e.other = other;
  e.lockIndex = lockIndex;
  e.cls = cls;
  e.lockAddr = lockAddr;
  e.ordinal = gOrdinal.fetch_add(1, std::memory_order_relaxed) + 1;
  e.timestampNanos = now_nanos();
  e.durationNanos = durationNanos;
  e.epoch = epoch;
  e.seq = seq;
  r.head.store(h + 1, std::memory_order_release);
}

std::mutex gRingMu;                // registration + drain only, never record
// Both registries are leaked on purpose: threads joined from atexit
// handlers (e.g. the adaptive lock-plan controller) run their TLS
// ~RingHolder after static destruction has begun, and a function-local
// static vector would already be gone by then.
std::vector<Ring*>& all_rings() {
  static auto& v = *new std::vector<Ring*>();
  return v;
}
std::vector<Ring*>& free_rings() {  // retired by exited threads, adoptable
  static auto& v = *new std::vector<Ring*>();
  return v;
}

// The TLS holder retires the ring on thread exit so its buffered events
// stay drainable and the ring itself is adopted by the next new thread
// (memory stays bounded by the peak thread count).
struct RingHolder {
  Ring* r = nullptr;
  ~RingHolder() {
    if (!r) return;
    // End-of-stream marker: once this ring is adopted by another thread
    // the oracle needs to distinguish "the original thread's trace
    // ends here" from "events were lost". Drops (never blocks) on a
    // full ring — TLS destruction must not wait on a drainer.
    if (enabled())
      append_event(*r, EventKind::kThreadExit, -1, -1, 0, nullptr, kNoIndex,
                   false, 0, 0, 0);
    std::lock_guard<std::mutex> lk(gRingMu);
    free_rings().push_back(r);
    r = nullptr;
  }
};
thread_local RingHolder tRing;

Ring& my_ring() {
  if (!tRing.r) {
    std::lock_guard<std::mutex> lk(gRingMu);
    if (!free_rings().empty()) {
      tRing.r = free_rings().back();
      free_rings().pop_back();
    } else {
      tRing.r = new Ring();
      all_rings().push_back(tRing.r);
    }
  }
  return *tRing.r;
}

// ---------------------------------------------------------------------------
// Hot-lock contention table
// ---------------------------------------------------------------------------
//
// Fixed-size open-addressed table of (class, lock index) -> blocked
// counts, bumped on every kBlocked record. Lock-free: a slot's key is
// claimed once by CAS and never changes. Class pointers fit in 48 bits
// (canonical user-space addresses), so key = cls << 16 | min(index,
// 0xFFFF) is exact for every field and for array indices < 65535.

constexpr size_t kHotSlots = 512;  // power of two
constexpr int kHotProbes = 8;

struct HotSlot {
  std::atomic<uint64_t> key{0};
  std::atomic<uint64_t> blocks{0};
  std::atomic<uint64_t> writes{0};
};
HotSlot gHot[kHotSlots];
std::atomic<uint64_t> gHotOverflow{0};  // bumps that found no free slot

uint64_t hot_key(const runtime::ClassInfo* cls, uint32_t index) {
  const uint64_t idx = index == kNoIndex ? 0xFFFF : std::min<uint64_t>(index, 0xFFFF);
  return (reinterpret_cast<uint64_t>(cls) << 16) | idx;
}

void bump_hot(const runtime::ClassInfo* cls, uint32_t index, bool write) {
  if (!cls) return;  // only symbolized identities are rankable
  const uint64_t key = hot_key(cls, index);
  uint64_t h = key * 0x9E3779B97F4A7C15ull;
  for (int p = 0; p < kHotProbes; p++) {
    HotSlot& s = gHot[(h + static_cast<uint64_t>(p)) & (kHotSlots - 1)];
    uint64_t k = s.key.load(std::memory_order_acquire);
    if (k == 0) {
      uint64_t expected = 0;
      if (s.key.compare_exchange_strong(expected, key, std::memory_order_acq_rel))
        k = key;
      else
        k = expected;  // someone else claimed it; maybe with our key
    }
    if (k == key) {
      s.blocks.fetch_add(1, std::memory_order_relaxed);
      if (write) s.writes.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  gHotOverflow.fetch_add(1, std::memory_order_relaxed);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // class names are printable
    out.push_back(c);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Control + record
// ---------------------------------------------------------------------------

void set_enabled(bool on) { detail::gEnabled.store(on, std::memory_order_release); }

void set_full_trace(bool on) {
  detail::gFullTrace.store(on, std::memory_order_release);
  if (on) detail::gEnabled.store(true, std::memory_order_release);
}

void set_lossless(bool on) { detail::gLossless.store(on, std::memory_order_release); }

uint64_t next_commit_seq() {
  // One clock for commit seqs AND versioned stamps (core/transaction.h):
  // a stamp on a versioned word is the commit seq of its writer.
  return core::advance_version_clock();
}

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kBlocked: return "blocked";
    case EventKind::kGranted: return "granted";
    case EventKind::kDeadlock: return "deadlock";
    case EventKind::kAborted: return "aborted";
    case EventKind::kWatchdogStall: return "watchdog-stall";
    case EventKind::kIdPoolStall: return "idpool-stall";
    case EventKind::kEscalated: return "escalated";
    case EventKind::kCommit: return "commit";
    case EventKind::kSplit: return "split";
    case EventKind::kGcPause: return "gc-pause";
    case EventKind::kSafepointStop: return "safepoint-stop";
    case EventKind::kAcquire: return "acquire";
    case EventKind::kRelease: return "release";
    case EventKind::kCommitOrder: return "commit-order";
    case EventKind::kThreadExit: return "thread-exit";
    case EventKind::kValidate: return "validate";
    case EventKind::kVersionAbort: return "version-abort";
  }
  return "?";
}

LockSym symbolize(const runtime::ManagedObject* obj, const core::LockWord* word) {
  LockSym sym;
  if (!obj) return sym;
  sym.cls = obj->h.cls;
  const core::LockWord* base = obj->locks.load(std::memory_order_acquire);
  if (base != nullptr && base != runtime::kUnalloc && word >= base) {
    const uint64_t idx = static_cast<uint64_t>(word - base);
    if (idx < runtime::lock_count(obj)) sym.index = static_cast<uint32_t>(idx);
  }
  return sym;
}

void record(EventKind kind, int txnId, int other, const void* lockAddr,
            const runtime::ClassInfo* cls, uint32_t lockIndex, bool wantWrite,
            uint64_t durationNanos, uint64_t epoch, uint64_t seq) {
  if (!enabled()) return;
  // kVersionAbort feeds the hot table too: an invisible-reader class
  // that keeps aborting is contended even though nothing ever blocks.
  if (kind == EventKind::kBlocked || kind == EventKind::kVersionAbort)
    bump_hot(cls, lockIndex, wantWrite);
  Ring& r = my_ring();
  uint64_t h = r.head.load(std::memory_order_relaxed);
  if (h - r.tail.load(std::memory_order_acquire) >= kRingEntries) {
    if (!lossless()) {
      r.dropped.fetch_add(1, std::memory_order_relaxed);  // bounded: never block
      return;
    }
    // Lossless: poll for drain progress. Bounded by kLosslessMaxWaitNanos
    // so a run without a drainer thread stalls, then degrades to a
    // counted drop rather than hanging forever.
    const uint64_t t0 = now_nanos();
    for (;;) {
      std::this_thread::sleep_for(std::chrono::microseconds(10));
      if (h - r.tail.load(std::memory_order_acquire) < kRingEntries) break;
      if (now_nanos() - t0 >= kLosslessMaxWaitNanos || !lossless()) {
        r.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }
  append_event(r, kind, txnId, other, reinterpret_cast<uint64_t>(lockAddr), cls,
               lockIndex, wantWrite, durationNanos, epoch, seq);
}

void record_lock_event(EventKind kind, int txnId, int other,
                       const runtime::ManagedObject* obj, const core::LockWord* word,
                       bool wantWrite, uint64_t durationNanos, uint64_t epoch,
                       uint64_t seq) {
  if (!enabled()) return;
  const LockSym sym = symbolize(obj, word);
  record(kind, txnId, other, word, sym.cls, sym.index, wantWrite, durationNanos,
         epoch, seq);
}

// ---------------------------------------------------------------------------
// Drain + summaries
// ---------------------------------------------------------------------------

std::vector<Event> drain() {
  std::vector<Event> out;
  {
    std::lock_guard<std::mutex> lk(gRingMu);
    for (Ring* r : all_rings()) {
      uint64_t t = r->tail.load(std::memory_order_relaxed);
      const uint64_t h = r->head.load(std::memory_order_acquire);
      for (; t != h; t++) out.push_back(r->slots[t & (kRingEntries - 1)]);
      r->tail.store(t, std::memory_order_release);
    }
  }
  // Timestamp primary (human-readable traces stay chronological), the
  // global ordinal breaking ties — which is exactly the ambiguous case
  // the oracle needs resolved for conflicting lock operations.
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.timestampNanos != b.timestampNanos) return a.timestampNanos < b.timestampNanos;
    return a.ordinal < b.ordinal;
  });
  return out;
}

size_t approx_size() {
  std::lock_guard<std::mutex> lk(gRingMu);
  size_t n = 0;
  for (Ring* r : all_rings())
    n += static_cast<size_t>(r->head.load(std::memory_order_acquire) -
                             r->tail.load(std::memory_order_acquire));
  return n;
}

uint64_t recorded() {
  std::lock_guard<std::mutex> lk(gRingMu);
  uint64_t n = 0;
  for (Ring* r : all_rings()) n += r->head.load(std::memory_order_acquire);
  return n;
}

uint64_t dropped() {
  std::lock_guard<std::mutex> lk(gRingMu);
  uint64_t n = 0;
  for (Ring* r : all_rings()) n += r->dropped.load(std::memory_order_relaxed);
  return n;
}

std::string lock_name(const runtime::ClassInfo* cls, uint32_t index, uint64_t addr) {
  if (cls) {
    std::ostringstream os;
    os << cls->name;
    if (index == kNoIndex) {
      os << ".?";
    } else if (cls->isArray) {
      os << "[" << index << "]";
    } else if (index < cls->slotNames.size()) {
      os << "." << cls->slotNames[index];
    } else {
      os << ".slot" << index;  // statics holder / out-of-registry slots
    }
    return os.str();
  }
  if (addr != 0) {
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
  }
  return "-";
}

std::string lock_name(const Event& e) { return lock_name(e.cls, e.lockIndex, e.lockAddr); }

std::string summarize(const std::vector<Event>& events) {
  struct LockStats {
    uint64_t blocks = 0;
    uint64_t writes = 0;
    uint64_t grants = 0;
    uint64_t waitNanos = 0;
  };
  // Keyed on the symbolic name, so contention attribution is stable
  // even when the lock pool recycles the underlying array address.
  std::map<std::string, LockStats> byLock;
  uint64_t deadlocks = 0, aborts = 0, stalls = 0, idStalls = 0, escalations = 0;
  uint64_t commits = 0, splits = 0, gcPauses = 0, spStops = 0;
  uint64_t acquires = 0, releases = 0, commitOrders = 0, threadExits = 0;
  uint64_t validates = 0, versionAborts = 0;
  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kBlocked: {
        LockStats& s = byLock[lock_name(e)];
        s.blocks++;
        if (e.wantWrite) s.writes++;
        break;
      }
      case EventKind::kGranted: {
        LockStats& s = byLock[lock_name(e)];
        s.grants++;
        s.waitNanos += e.durationNanos;
        break;
      }
      case EventKind::kDeadlock:
        deadlocks++;
        break;
      case EventKind::kAborted:
        aborts++;
        break;
      case EventKind::kWatchdogStall:
        stalls++;
        break;
      case EventKind::kIdPoolStall:
        idStalls++;
        break;
      case EventKind::kEscalated:
        escalations++;
        break;
      case EventKind::kCommit:
        commits++;
        break;
      case EventKind::kSplit:
        splits++;
        break;
      case EventKind::kGcPause:
        gcPauses++;
        break;
      case EventKind::kSafepointStop:
        spStops++;
        break;
      case EventKind::kAcquire:
        acquires++;
        break;
      case EventKind::kRelease:
        releases++;
        break;
      case EventKind::kCommitOrder:
        commitOrders++;
        break;
      case EventKind::kThreadExit:
        threadExits++;
        break;
      case EventKind::kValidate:
        validates++;
        break;
      case EventKind::kVersionAbort: {
        versionAborts++;
        LockStats& s = byLock[lock_name(e)];
        s.blocks++;
        if (e.wantWrite) s.writes++;
        break;
      }
    }
  }
  std::ostringstream os;
  os << "debug log: " << events.size() << " events, " << deadlocks << " deadlocks, "
     << aborts << " aborts";
  if (stalls || idStalls || escalations)
    os << ", " << stalls << " stalls, " << idStalls << " id-pool stalls, "
       << escalations << " escalations";
  if (commits || splits)
    os << ", " << commits << " commit / " << splits << " split samples";
  if (gcPauses || spStops)
    os << ", " << gcPauses << " gc pauses, " << spStops << " safepoint stops";
  if (acquires || releases || commitOrders)
    os << ", full trace: " << acquires << " acquires / " << releases
       << " releases / " << commitOrders << " ordered commits";
  if (validates || versionAborts)
    os << ", versioned: " << validates << " validations / " << versionAborts
       << " version aborts";
  if (threadExits) os << ", " << threadExits << " thread exits";
  os << "\n";
  for (const auto& [name, s] : byLock) {
    os << "  lock " << name << ": blocked " << s.blocks << "x (" << s.writes
       << " writes)";
    if (s.grants > 0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f",
                    static_cast<double>(s.waitNanos) / static_cast<double>(s.grants) / 1e6);
      os << ", avg wait " << buf << "ms";
    }
    os << "\n";
  }
  return os.str();
}

bool write_trace(const std::string& path, const std::vector<Event>& events,
                 uint64_t droppedEvents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  bool ok = std::fprintf(f, "# sbd-trace v1\n# dropped=%llu recorded=%zu\n",
                         static_cast<unsigned long long>(droppedEvents),
                         events.size()) > 0;
  for (const Event& e : events) {
    // The symbolic lock name goes last so it may contain spaces.
    ok = ok && std::fprintf(
                   f,
                   "%s txn=%d epoch=%llu other=%d seq=%llu w=%d ord=%llu "
                   "ts=%llu dur=%llu addr=0x%llx name=%s\n",
                   event_kind_name(e.kind), e.txnId,
                   static_cast<unsigned long long>(e.epoch), e.other,
                   static_cast<unsigned long long>(e.seq), e.wantWrite ? 1 : 0,
                   static_cast<unsigned long long>(e.ordinal),
                   static_cast<unsigned long long>(e.timestampNanos),
                   static_cast<unsigned long long>(e.durationNanos),
                   static_cast<unsigned long long>(e.lockAddr),
                   lock_name(e).c_str()) > 0;
  }
  return std::fclose(f) == 0 && ok;
}

// ---------------------------------------------------------------------------
// Hot-lock reports
// ---------------------------------------------------------------------------

std::vector<HotLock> top_contended(size_t n) {
  struct Raw {
    uint64_t key;
    uint64_t blocks;
    uint64_t writes;
  };
  std::vector<Raw> raw;
  for (HotSlot& s : gHot) {
    const uint64_t k = s.key.load(std::memory_order_acquire);
    if (k == 0) continue;
    raw.push_back({k, s.blocks.load(std::memory_order_relaxed),
                   s.writes.load(std::memory_order_relaxed)});
  }
  std::sort(raw.begin(), raw.end(),
            [](const Raw& a, const Raw& b) { return a.blocks > b.blocks; });
  if (raw.size() > n) raw.resize(n);
  std::vector<HotLock> out;
  out.reserve(raw.size());
  for (const Raw& r : raw) {
    const auto* cls = reinterpret_cast<const runtime::ClassInfo*>(r.key >> 16);
    const uint32_t idx = static_cast<uint32_t>(r.key & 0xFFFF);
    out.push_back({lock_name(cls, idx == 0xFFFF ? kNoIndex : idx, 0), r.blocks, r.writes});
  }
  return out;
}

std::string hot_report(size_t n) {
  const std::vector<HotLock> top = top_contended(n);
  if (top.empty()) return "";
  std::ostringstream os;
  os << "top contended:";
  for (const HotLock& h : top)
    os << " " << h.name << " " << h.blocks << "x(" << h.writes << "w)";
  return os.str();
}

void reset_contention() {
  for (HotSlot& s : gHot) {
    s.key.store(0, std::memory_order_relaxed);
    s.blocks.store(0, std::memory_order_relaxed);
    s.writes.store(0, std::memory_order_relaxed);
  }
  gHotOverflow.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Metrics snapshot
// ---------------------------------------------------------------------------

namespace {
// Extension sections (e.g. sbd::serve). Intentionally leaked singleton,
// like the ring registries: providers may be queried from atexit paths.
struct ExtraSections {
  std::mutex mu;
  std::vector<std::pair<std::string, std::string (*)()>> entries;
};
ExtraSections& extra_sections() {
  static ExtraSections* s = new ExtraSections();
  return *s;
}
}  // namespace

void register_metrics_section(const char* name, std::string (*provider)()) {
  ExtraSections& s = extra_sections();
  std::lock_guard<std::mutex> lk(s.mu);
  for (auto& [n, p] : s.entries) {
    if (n == name) {
      p = provider;
      return;
    }
  }
  s.entries.emplace_back(name, provider);
}

std::string metrics_json() {
  const core::StatsCounters c = core::TxnManager::instance().snapshot_stats();
  // Field-completeness: the static_assert in core/stats.h points here —
  // every StatsCounters field must be listed below.
  const core::GlobalGauges& g = core::gauges();
  const runtime::LockPool::Stats lp = runtime::LockPool::instance().stats();
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  os << "\"lockInit\": " << c.lockInit << ", \"checkNew\": " << c.checkNew
     << ", \"checkOwned\": " << c.checkOwned << ", \"acqRls\": " << c.acqRls
     << ", \"commits\": " << c.commits << ", \"aborts\": " << c.aborts
     << ", \"contendedAcquires\": " << c.contendedAcquires
     << ", \"casFailures\": " << c.casFailures
     << ", \"deadlocksResolved\": " << c.deadlocksResolved
     << ", \"escalations\": " << c.escalations
     << ", \"versionedReads\": " << c.versionedReads
     << ", \"validations\": " << c.validations
     << ", \"versionAborts\": " << c.versionAborts
     << ", \"rwSetBytesSum\": " << c.rwSetBytesSum
     << ", \"bufferBytesSum\": " << c.bufferBytesSum
     << ", \"initLogBytesSum\": " << c.initLogBytesSum
     << ", \"txnFootprints\": " << c.txnFootprints;
  os << "},\n  \"gauges\": {";
  os << "\"lockStructBytes\": " << g.lockStructBytes.load(std::memory_order_relaxed)
     << ", \"versionWordBytes\": " << g.versionWordBytes.load(std::memory_order_relaxed)
     << ", \"heapBytes\": " << g.heapBytes.load(std::memory_order_relaxed)
     << ", \"gcRuns\": " << g.gcRuns.load(std::memory_order_relaxed);
  os << "},\n  \"lockpool\": {";
  os << "\"pooledArrays\": " << lp.pooledArrays << ", \"pooledBytes\": " << lp.pooledBytes
     << ", \"reuses\": " << lp.reuses << ", \"allocs\": " << lp.allocs;
  os << "},\n  \"lockplan\": {";
  const runtime::lockplan::Counters lpc = runtime::lockplan::counters();
  os << "\"mode\": \"" << runtime::lockplan::mode_name() << "\""
     << ", \"cycles\": " << lpc.cycles << ", \"replans\": " << lpc.replans
     << ", \"vetoed\": " << lpc.vetoed << ", \"stops\": " << lpc.stops
     << ", \"wedged\": " << lpc.wedged;
  os << "},\n  \"parking\": {";
  const core::ParkingLot::Counters pk = core::ParkingLot::counters();
  os << "\"parked\": " << pk.parked << ", \"spun_granted\": " << pk.spunGranted
     << ", \"futex_wakes\": " << pk.futexWakes << ", \"handoffs\": " << pk.handoffs
     << ", \"id_wakes\": " << pk.idWakes;
  os << "},\n  \"watchdog\": {";
  os << "\"stalls\": " << core::Watchdog::stalls_detected()
     << ", \"victims\": " << core::Watchdog::victims_aborted();
  os << "},\n  \"degrade\": {";
  os << "\"escalations\": " << core::degrade::escalations()
     << ", \"retryBudget\": " << core::degrade::retry_budget();
  os << "},\n  \"trace\": {";
  os << "\"enabled\": " << (enabled() ? "true" : "false")
     << ", \"full\": " << (full_trace() ? "true" : "false")
     << ", \"lossless\": " << (lossless() ? "true" : "false")
     << ", \"recorded\": " << recorded() << ", \"dropped\": " << dropped()
     << ", \"pending\": " << approx_size()
     << ", \"hotTableOverflow\": " << gHotOverflow.load(std::memory_order_relaxed);
  os << "},\n  \"hotLocks\": [";
  const std::vector<HotLock> top = top_contended(10);
  for (size_t i = 0; i < top.size(); i++) {
    os << (i == 0 ? "" : ", ") << "{\"lock\": \"" << json_escape(top[i].name)
       << "\", \"blocks\": " << top[i].blocks << ", \"writes\": " << top[i].writes << "}";
  }
  os << "]";
  {
    ExtraSections& s = extra_sections();
    std::lock_guard<std::mutex> lk(s.mu);
    for (const auto& [name, provider] : s.entries)
      os << ",\n  \"" << json_escape(name) << "\": " << provider();
  }
  os << "\n}\n";
  return os.str();
}

bool export_metrics(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = metrics_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

bool export_metrics_if_requested() {
  const char* path = std::getenv("SBD_METRICS_JSON");
  if (!path || !*path) return false;
  if (!export_metrics(path)) {
    std::fprintf(stderr, "[sbd-obs] cannot write metrics to %s\n", path);
    return false;
  }
  return true;
}

}  // namespace sbd::obs
