// SQL-subset parser for the embedded database.
//
// Grammar (case-insensitive keywords):
//   CREATE TABLE t (col INT [PRIMARY KEY] | col TEXT, ...)
//   INSERT INTO t VALUES (expr, ...)
//   SELECT cols|*|COUNT(*)|SUM(col) FROM t [WHERE conj]
//   UPDATE t SET col = expr [, col = expr]* [WHERE conj]
//   DELETE FROM t [WHERE conj]
//   conj := cmp (AND cmp)*      cmp := col (=|<|>|<=|>=|<>) expr
//   expr := integer | 'string' | ?   (? binds positionally)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "db/db.h"

namespace sbd::db {

enum class StmtKind { kCreate, kInsert, kSelect, kUpdate, kDelete };
enum class CmpOp { kEq, kLt, kGt, kLe, kGe, kNe };
enum class AggKind { kNone, kCount, kSum };

struct Expr {
  bool isParam = false;
  int paramIndex = -1;  // filled during parse, in encounter order
  Value literal;
};

struct Predicate {
  std::string column;
  CmpOp op = CmpOp::kEq;
  Expr value;
};

struct SetClause {
  std::string column;
  Expr value;
};

struct Statement {
  StmtKind kind = StmtKind::kSelect;
  std::string table;
  Schema createSchema;                 // kCreate
  std::vector<Expr> insertValues;      // kInsert
  std::vector<std::string> selectCols; // kSelect ("*" = all)
  AggKind agg = AggKind::kNone;
  std::string aggColumn;
  std::vector<SetClause> sets;         // kUpdate
  std::vector<Predicate> where;
  int paramCount = 0;
};

// Throws DbError on syntax errors.
Statement parse_sql(const std::string& sql);

// Resolves an expression against bound parameters.
const Value& resolve(const Expr& e, const std::vector<Value>& params);

bool compare(const Value& lhs, CmpOp op, const Value& rhs);

}  // namespace sbd::db
