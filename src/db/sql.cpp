#include "db/sql.h"

#include <cctype>

namespace sbd::db {

namespace {

struct Lexer {
  std::string src;
  size_t pos = 0;

  void skip_ws() {
    while (pos < src.size() && std::isspace(static_cast<unsigned char>(src[pos]))) pos++;
  }

  bool done() {
    skip_ws();
    return pos >= src.size();
  }

  char peek() {
    skip_ws();
    return pos < src.size() ? src[pos] : '\0';
  }

  // Next token: identifier/keyword (uppercased), number, quoted string
  // marker "'", punctuation char, or "?".
  std::string next() {
    skip_ws();
    if (pos >= src.size()) return {};
    const char c = src[pos];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string id;
      while (pos < src.size() && (std::isalnum(static_cast<unsigned char>(src[pos])) ||
                                  src[pos] == '_')) {
        id.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(src[pos]))));
        pos++;
      }
      return id;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[pos + 1])))) {
      std::string num(1, c);
      pos++;
      while (pos < src.size() && std::isdigit(static_cast<unsigned char>(src[pos])))
        num.push_back(src[pos++]);
      return num;
    }
    if (c == '<' && pos + 1 < src.size() && (src[pos + 1] == '=' || src[pos + 1] == '>')) {
      pos += 2;
      return src[pos - 1] == '=' ? "<=" : "<>";
    }
    if (c == '>' && pos + 1 < src.size() && src[pos + 1] == '=') {
      pos += 2;
      return ">=";
    }
    pos++;
    return std::string(1, c);
  }

  std::string peek_token() {
    const size_t save = pos;
    std::string t = next();
    pos = save;
    return t;
  }

  std::string quoted_string() {
    // Caller consumed the opening quote token "'".
    std::string s;
    while (pos < src.size() && src[pos] != '\'') s.push_back(src[pos++]);
    if (pos < src.size()) pos++;  // closing quote
    return s;
  }

  void expect(const std::string& tok) {
    const std::string t = next();
    if (t != tok) throw DbError("SQL: expected '" + tok + "', got '" + t + "'");
  }
};

bool is_number(const std::string& t) {
  if (t.empty()) return false;
  size_t i = t[0] == '-' ? 1 : 0;
  if (i >= t.size()) return false;
  for (; i < t.size(); i++)
    if (!std::isdigit(static_cast<unsigned char>(t[i]))) return false;
  return true;
}

Expr parse_expr(Lexer& lx, Statement& st) {
  Expr e;
  const std::string t = lx.next();
  if (t == "?") {
    e.isParam = true;
    e.paramIndex = st.paramCount++;
  } else if (t == "'") {
    e.literal = lx.quoted_string();
  } else if (is_number(t)) {
    e.literal = static_cast<int64_t>(std::stoll(t));
  } else {
    throw DbError("SQL: expected value, got '" + t + "'");
  }
  return e;
}

CmpOp parse_op(const std::string& t) {
  if (t == "=") return CmpOp::kEq;
  if (t == "<") return CmpOp::kLt;
  if (t == ">") return CmpOp::kGt;
  if (t == "<=") return CmpOp::kLe;
  if (t == ">=") return CmpOp::kGe;
  if (t == "<>") return CmpOp::kNe;
  throw DbError("SQL: unknown comparison '" + t + "'");
}

void parse_where(Lexer& lx, Statement& st) {
  if (lx.done()) return;
  lx.expect("WHERE");
  for (;;) {
    Predicate p;
    p.column = lx.next();
    p.op = parse_op(lx.next());
    p.value = parse_expr(lx, st);
    st.where.push_back(std::move(p));
    if (lx.done() || lx.peek_token() != "AND") break;
    lx.expect("AND");
  }
}

}  // namespace

Statement parse_sql(const std::string& sql) {
  Lexer lx{sql};
  Statement st;
  const std::string head = lx.next();

  if (head == "CREATE") {
    st.kind = StmtKind::kCreate;
    lx.expect("TABLE");
    st.createSchema.table = lx.next();
    st.createSchema.pkColumn = -1;
    lx.expect("(");
    for (;;) {
      Column col;
      col.name = lx.next();
      const std::string type = lx.next();
      if (type == "TEXT") {
        col.isText = true;
      } else if (type != "INT") {
        throw DbError("SQL: unknown type '" + type + "'");
      }
      if (lx.peek_token() == "PRIMARY") {
        lx.expect("PRIMARY");
        lx.expect("KEY");
        st.createSchema.pkColumn = static_cast<int>(st.createSchema.columns.size());
      }
      st.createSchema.columns.push_back(col);
      const std::string sep = lx.next();
      if (sep == ")") break;
      if (sep != ",") throw DbError("SQL: expected ',' or ')'");
    }
    if (st.createSchema.pkColumn < 0) throw DbError("SQL: table needs a PRIMARY KEY");
    return st;
  }

  if (head == "INSERT") {
    st.kind = StmtKind::kInsert;
    lx.expect("INTO");
    st.table = lx.next();
    lx.expect("VALUES");
    lx.expect("(");
    for (;;) {
      st.insertValues.push_back(parse_expr(lx, st));
      const std::string sep = lx.next();
      if (sep == ")") break;
      if (sep != ",") throw DbError("SQL: expected ',' or ')'");
    }
    return st;
  }

  if (head == "SELECT") {
    st.kind = StmtKind::kSelect;
    const std::string first = lx.next();
    if (first == "COUNT") {
      lx.expect("(");
      lx.expect("*");
      lx.expect(")");
      st.agg = AggKind::kCount;
    } else if (first == "SUM") {
      lx.expect("(");
      st.aggColumn = lx.next();
      lx.expect(")");
      st.agg = AggKind::kSum;
    } else if (first == "*") {
      // all columns
    } else {
      st.selectCols.push_back(first);
      while (lx.peek_token() == ",") {
        lx.expect(",");
        st.selectCols.push_back(lx.next());
      }
    }
    lx.expect("FROM");
    st.table = lx.next();
    parse_where(lx, st);
    return st;
  }

  if (head == "UPDATE") {
    st.kind = StmtKind::kUpdate;
    st.table = lx.next();
    lx.expect("SET");
    for (;;) {
      SetClause sc;
      sc.column = lx.next();
      lx.expect("=");
      sc.value = parse_expr(lx, st);
      st.sets.push_back(std::move(sc));
      if (lx.peek_token() != ",") break;
      lx.expect(",");
    }
    parse_where(lx, st);
    return st;
  }

  if (head == "DELETE") {
    st.kind = StmtKind::kDelete;
    lx.expect("FROM");
    st.table = lx.next();
    parse_where(lx, st);
    return st;
  }

  throw DbError("SQL: unknown statement '" + head + "'");
}

const Value& resolve(const Expr& e, const std::vector<Value>& params) {
  if (!e.isParam) return e.literal;
  if (e.paramIndex < 0 || static_cast<size_t>(e.paramIndex) >= params.size())
    throw DbError("SQL: missing bound parameter");
  return params[static_cast<size_t>(e.paramIndex)];
}

bool compare(const Value& lhs, CmpOp op, const Value& rhs) {
  int cmp;
  if (std::holds_alternative<int64_t>(lhs) && std::holds_alternative<int64_t>(rhs)) {
    const int64_t a = as_int(lhs), b = as_int(rhs);
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else if (std::holds_alternative<std::string>(lhs) &&
             std::holds_alternative<std::string>(rhs)) {
    cmp = as_str(lhs).compare(as_str(rhs));
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  } else {
    return op == CmpOp::kNe;  // mismatched/null types are never equal
  }
  switch (op) {
    case CmpOp::kEq: return cmp == 0;
    case CmpOp::kLt: return cmp < 0;
    case CmpOp::kGt: return cmp > 0;
    case CmpOp::kLe: return cmp <= 0;
    case CmpOp::kGe: return cmp >= 0;
    case CmpOp::kNe: return cmp != 0;
  }
  return false;
}

}  // namespace sbd::db
