// Embedded relational database — the H2 benchmark substitute.
//
// Scope (what the TPC-C-lite workload needs, done properly):
//   - typed tables (INT / TEXT columns) with an integer primary key
//   - a SQL subset: CREATE TABLE, INSERT, SELECT, UPDATE, DELETE with
//     ?-parameters, WHERE conjunctions, COUNT/SUM aggregates
//   - ACID transactions: strict two-phase row locking for point
//     operations (pk equality), table locks for scans, undo-log
//     rollback, deadlock detection by timeout
//   - a JDBC-like Connection/ResultSet API
//
// The SBD integration (TxDbConnection in txwrapper.h) maps an atomic
// section onto a DB transaction, exactly as the paper integrates JDBC
// via transactional wrappers (§5.3: "As databases use transactions we
// integrated the JDBC classes using transactional wrappers").
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

namespace sbd::db {

using Value = std::variant<std::monostate, int64_t, std::string>;

inline bool is_null(const Value& v) { return std::holds_alternative<std::monostate>(v); }
inline int64_t as_int(const Value& v) { return std::get<int64_t>(v); }
inline const std::string& as_str(const Value& v) { return std::get<std::string>(v); }

struct Column {
  std::string name;
  bool isText = false;
};

struct Schema {
  std::string table;
  std::vector<Column> columns;
  int pkColumn = 0;  // must be an INT column

  int column_index(const std::string& name) const;
};

struct Row {
  std::vector<Value> values;
};

struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
  int64_t updateCount = 0;

  size_t size() const { return rows.size(); }
  int64_t int_at(size_t row, size_t col) const { return as_int(rows[row][col]); }
  const std::string& str_at(size_t row, size_t col) const {
    return as_str(rows[row][col]);
  }
};

class DbError : public std::runtime_error {
 public:
  explicit DbError(const std::string& msg) : std::runtime_error(msg) {}
};

class DbDeadlock : public DbError {
 public:
  DbDeadlock() : DbError("transaction deadlock (lock wait timeout)") {}
};

class Database;

// One client session. Statements run in autocommit mode unless begin()
// opened an explicit transaction. Not thread-safe; use one per thread.
class Connection {
 public:
  explicit Connection(Database& db);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  ResultSet execute(const std::string& sql, const std::vector<Value>& params = {});

  void begin();
  void commit();
  void rollback();
  bool in_transaction() const { return inTxn_; }

  // Bytes of undo state buffered by the open transaction (Table 8).
  size_t undo_bytes() const;

 private:
  friend class Database;
  Database& db_;
  uint64_t txnId_;
  bool inTxn_ = false;

  struct UndoRecord {
    std::string table;
    int64_t pk;
    std::optional<Row> before;  // nullopt = row was inserted (undo = delete)
  };
  std::vector<UndoRecord> undo_;
  std::vector<std::pair<std::string, int64_t>> rowLocks_;  // held until txn end
  std::vector<std::pair<std::string, bool>> tableLocks_;   // (table, exclusive)

  void end_txn(bool commit);
};

class Database {
 public:
  Database();
  ~Database();

  void create_table(const Schema& schema);
  bool has_table(const std::string& name) const;
  const Schema& schema(const std::string& name) const;

  std::unique_ptr<Connection> connect() { return std::make_unique<Connection>(*this); }

  // Row-lock wait timeout before declaring a deadlock.
  void set_lock_timeout_ms(int ms) { lockTimeoutMs_ = ms; }

  // Total committed row count across tables (tests/stats).
  size_t total_rows() const;

 private:
  friend class Connection;

  struct TableData {
    Schema schema;
    std::deque<Row> rows;                     // stable row storage
    std::unordered_map<int64_t, size_t> pk;   // pk -> row index
    std::vector<bool> alive;                  // tombstones for deletes
  };

  // Strict-2PL lock manager. Row locks are exclusive (point updates and
  // the reads TPC-C performs before writing); table locks are
  // shared/exclusive for scans and inserts.
  struct LockKeyHash {
    size_t operator()(const std::pair<std::string, int64_t>& k) const {
      return std::hash<std::string>()(k.first) * 1315423911u ^
             std::hash<int64_t>()(k.second);
    }
  };
  struct LockState {
    uint64_t owner = 0;  // 0 = free
    int waiters = 0;
  };
  struct TableLockState {
    uint64_t xOwner = 0;
    std::unordered_map<uint64_t, int> sOwners;
    int waiters = 0;
  };

  void lock_row(Connection& c, const std::string& table, int64_t pk);
  void lock_table(Connection& c, const std::string& table, bool exclusive);
  void release_locks(Connection& c);

  ResultSet exec_parsed(Connection& c, const struct Statement& st,
                        const std::vector<Value>& params);

  mutable std::mutex mu_;  // guards tables_ metadata and lock tables
  std::condition_variable lockCv_;
  std::map<std::string, std::unique_ptr<TableData>> tables_;
  std::unordered_map<std::pair<std::string, int64_t>, LockState, LockKeyHash> rowLocks_;
  std::map<std::string, TableLockState> tableLocks_;
  std::atomic<uint64_t> txnIdGen_{1};
  int lockTimeoutMs_ = 100;
};

}  // namespace sbd::db
