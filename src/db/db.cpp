#include "db/db.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.h"
#include "core/fault.h"
#include "db/sql.h"

namespace sbd::db {

int Schema::column_index(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); i++) {
    // Parsed SQL uppercases identifiers; schemas may use any case.
    if (columns[i].name.size() == name.size()) {
      bool eq = true;
      for (size_t k = 0; k < name.size(); k++)
        if (std::toupper(static_cast<unsigned char>(columns[i].name[k])) !=
            std::toupper(static_cast<unsigned char>(name[k]))) {
          eq = false;
          break;
        }
      if (eq) return static_cast<int>(i);
    }
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

Database::Database() = default;
Database::~Database() = default;

namespace {
std::string upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}
}  // namespace

void Database::create_table(const Schema& schema) {
  std::lock_guard<std::mutex> lk(mu_);
  auto td = std::make_unique<TableData>();
  td->schema = schema;
  td->schema.table = upper(schema.table);
  SBD_CHECK_MSG(tables_.find(td->schema.table) == tables_.end(), "table exists");
  SBD_CHECK_MSG(!td->schema.columns[static_cast<size_t>(td->schema.pkColumn)].isText,
                "primary key must be an INT column");
  tables_[td->schema.table] = std::move(td);
}

bool Database::has_table(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  return tables_.find(upper(name)) != tables_.end();
}

const Schema& Database::schema(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = tables_.find(upper(name));
  SBD_CHECK_MSG(it != tables_.end(), "unknown table");
  return it->second->schema;
}

size_t Database::total_rows() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = 0;
  for (const auto& [name, td] : tables_)
    for (size_t i = 0; i < td->rows.size(); i++)
      if (td->alive[i]) n++;
  return n;
}

void Database::lock_row(Connection& c, const std::string& table, int64_t pk) {
  const auto key = std::make_pair(table, pk);
  std::unique_lock<std::mutex> lk(mu_);
  // NB: rowLocks_ is an unordered_map; references do not survive the cv
  // wait (other threads insert entries), so every iteration re-looks-up.
  if (rowLocks_[key].owner == c.txnId_) return;  // already ours
  // Fault plan: a spurious lock-wait timeout, indistinguishable from a
  // real one — drives the caller's deadlock-retry path.
  if (fault::should_fire(fault::Site::kDbLockTimeout)) throw DbDeadlock();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(lockTimeoutMs_);
  rowLocks_[key].waiters++;
  for (;;) {
    if (rowLocks_[key].owner == 0) break;
    if (lockCv_.wait_until(lk, deadline) == std::cv_status::timeout) {
      if (rowLocks_[key].owner == 0) break;
      rowLocks_[key].waiters--;
      throw DbDeadlock();
    }
  }
  LockState& ls = rowLocks_[key];
  ls.owner = c.txnId_;
  ls.waiters--;
  c.rowLocks_.push_back(key);
}

void Database::lock_table(Connection& c, const std::string& table, bool exclusive) {
  std::unique_lock<std::mutex> lk(mu_);
  TableLockState& ts = tableLocks_[table];
  // Re-entrancy.
  if (ts.xOwner == c.txnId_) return;
  if (!exclusive && ts.sOwners.count(c.txnId_)) return;
  // Fault plan: spurious lock-wait timeout (see lock_row).
  if (fault::should_fire(fault::Site::kDbLockTimeout)) throw DbDeadlock();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(lockTimeoutMs_);
  ts.waiters++;
  auto compatible = [&] {
    TableLockState& t = tableLocks_[table];
    if (exclusive)
      return t.xOwner == 0 && (t.sOwners.empty() ||
                               (t.sOwners.size() == 1 && t.sOwners.count(c.txnId_)));
    return t.xOwner == 0;
  };
  while (!compatible()) {
    if (lockCv_.wait_until(lk, deadline) == std::cv_status::timeout && !compatible()) {
      tableLocks_[table].waiters--;
      throw DbDeadlock();
    }
  }
  TableLockState& ts2 = tableLocks_[table];
  ts2.waiters--;
  if (exclusive) {
    ts2.sOwners.erase(c.txnId_);  // upgrade
    ts2.xOwner = c.txnId_;
  } else {
    ts2.sOwners[c.txnId_]++;
  }
  c.tableLocks_.push_back({table, exclusive});
}

void Database::release_locks(Connection& c) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& key : c.rowLocks_) {
    auto it = rowLocks_.find(key);
    if (it != rowLocks_.end() && it->second.owner == c.txnId_) {
      it->second.owner = 0;
      if (it->second.waiters == 0) rowLocks_.erase(it);
    }
  }
  c.rowLocks_.clear();
  for (const auto& [table, exclusive] : c.tableLocks_) {
    auto it = tableLocks_.find(table);
    if (it == tableLocks_.end()) continue;
    if (exclusive && it->second.xOwner == c.txnId_) it->second.xOwner = 0;
    it->second.sOwners.erase(c.txnId_);
    if (it->second.xOwner == 0 && it->second.sOwners.empty() && it->second.waiters == 0)
      tableLocks_.erase(it);
  }
  c.tableLocks_.clear();
  lockCv_.notify_all();
}

// ---------------------------------------------------------------------------
// Statement execution
// ---------------------------------------------------------------------------

namespace {
// Returns the pk value if the WHERE clause pins the primary key with
// equality (the point-operation fast path).
std::optional<int64_t> pk_equality(const Statement& st, const Schema& schema,
                                   const std::vector<Value>& params) {
  for (const Predicate& p : st.where) {
    if (p.op != CmpOp::kEq) continue;
    const int col = schema.column_index(p.column);
    if (col == schema.pkColumn) {
      const Value& v = resolve(p.value, params);
      if (std::holds_alternative<int64_t>(v)) return as_int(v);
    }
  }
  return std::nullopt;
}

bool row_matches(const Row& row, const Statement& st, const Schema& schema,
                 const std::vector<Value>& params) {
  for (const Predicate& p : st.where) {
    const int col = schema.column_index(p.column);
    if (col < 0) throw DbError("unknown column " + p.column);
    if (!compare(row.values[static_cast<size_t>(col)], p.op, resolve(p.value, params)))
      return false;
  }
  return true;
}
}  // namespace

ResultSet Database::exec_parsed(Connection& c, const Statement& st,
                                const std::vector<Value>& params) {
  ResultSet rs;
  if (st.kind == StmtKind::kCreate) {
    create_table(st.createSchema);
    return rs;
  }

  const std::string tname = upper(st.table);
  TableData* td;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = tables_.find(tname);
    if (it == tables_.end()) throw DbError("unknown table " + st.table);
    td = it->second.get();
  }
  const Schema& schema = td->schema;

  switch (st.kind) {
    case StmtKind::kInsert: {
      if (st.insertValues.size() != schema.columns.size())
        throw DbError("insert arity mismatch");
      Row row;
      for (const Expr& e : st.insertValues) row.values.push_back(resolve(e, params));
      const Value& pkv = row.values[static_cast<size_t>(schema.pkColumn)];
      if (!std::holds_alternative<int64_t>(pkv)) throw DbError("pk must be INT");
      const int64_t pk = as_int(pkv);
      lock_row(c, tname, pk);
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (td->pk.count(pk) && td->alive[td->pk[pk]])
          throw DbError("duplicate primary key");
        td->rows.push_back(row);
        td->alive.push_back(true);
        td->pk[pk] = td->rows.size() - 1;
      }
      c.undo_.push_back(Connection::UndoRecord{tname, pk, std::nullopt});
      rs.updateCount = 1;
      return rs;
    }

    case StmtKind::kSelect: {
      const auto pk = pk_equality(st, schema, params);
      std::vector<size_t> matches;
      if (pk) {
        lock_row(c, tname, *pk);
        std::lock_guard<std::mutex> lk(mu_);
        auto it = td->pk.find(*pk);
        if (it != td->pk.end() && td->alive[it->second] &&
            row_matches(td->rows[it->second], st, schema, params))
          matches.push_back(it->second);
      } else {
        lock_table(c, tname, /*exclusive=*/false);
        std::lock_guard<std::mutex> lk(mu_);
        for (size_t i = 0; i < td->rows.size(); i++)
          if (td->alive[i] && row_matches(td->rows[i], st, schema, params))
            matches.push_back(i);
      }
      std::lock_guard<std::mutex> lk(mu_);
      if (st.agg == AggKind::kCount) {
        rs.columns = {"COUNT"};
        rs.rows.push_back({Value{static_cast<int64_t>(matches.size())}});
        return rs;
      }
      if (st.agg == AggKind::kSum) {
        const int col = schema.column_index(st.aggColumn);
        if (col < 0) throw DbError("unknown column " + st.aggColumn);
        int64_t sum = 0;
        for (size_t i : matches) sum += as_int(td->rows[i].values[static_cast<size_t>(col)]);
        rs.columns = {"SUM"};
        rs.rows.push_back({Value{sum}});
        return rs;
      }
      std::vector<int> cols;
      if (st.selectCols.empty()) {
        for (size_t i = 0; i < schema.columns.size(); i++) {
          cols.push_back(static_cast<int>(i));
          rs.columns.push_back(schema.columns[i].name);
        }
      } else {
        for (const auto& name : st.selectCols) {
          const int col = schema.column_index(name);
          if (col < 0) throw DbError("unknown column " + name);
          cols.push_back(col);
          rs.columns.push_back(name);
        }
      }
      for (size_t i : matches) {
        std::vector<Value> out;
        for (int col : cols) out.push_back(td->rows[i].values[static_cast<size_t>(col)]);
        rs.rows.push_back(std::move(out));
      }
      return rs;
    }

    case StmtKind::kUpdate:
    case StmtKind::kDelete: {
      const auto pk = pk_equality(st, schema, params);
      std::vector<size_t> matches;
      if (pk) {
        lock_row(c, tname, *pk);
        std::lock_guard<std::mutex> lk(mu_);
        auto it = td->pk.find(*pk);
        if (it != td->pk.end() && td->alive[it->second] &&
            row_matches(td->rows[it->second], st, schema, params))
          matches.push_back(it->second);
      } else {
        lock_table(c, tname, /*exclusive=*/true);
        std::lock_guard<std::mutex> lk(mu_);
        for (size_t i = 0; i < td->rows.size(); i++)
          if (td->alive[i] && row_matches(td->rows[i], st, schema, params))
            matches.push_back(i);
      }
      std::lock_guard<std::mutex> lk(mu_);
      for (size_t i : matches) {
        Row& row = td->rows[i];
        const int64_t rowPk = as_int(row.values[static_cast<size_t>(schema.pkColumn)]);
        c.undo_.push_back(Connection::UndoRecord{tname, rowPk, row});
        if (st.kind == StmtKind::kUpdate) {
          for (const SetClause& sc : st.sets) {
            const int col = schema.column_index(sc.column);
            if (col < 0) throw DbError("unknown column " + sc.column);
            row.values[static_cast<size_t>(col)] = resolve(sc.value, params);
          }
        } else {
          td->alive[i] = false;
        }
      }
      rs.updateCount = static_cast<int64_t>(matches.size());
      return rs;
    }

    default:
      throw DbError("unsupported statement");
  }
}

// ---------------------------------------------------------------------------
// Connection
// ---------------------------------------------------------------------------

Connection::Connection(Database& db)
    : db_(db), txnId_(db.txnIdGen_.fetch_add(1, std::memory_order_relaxed)) {}

Connection::~Connection() {
  if (inTxn_) rollback();
  db_.release_locks(*this);
}

ResultSet Connection::execute(const std::string& sql, const std::vector<Value>& params) {
  const Statement st = parse_sql(sql);
  const bool autocommit = !inTxn_;
  if (autocommit) begin();
  try {
    ResultSet rs = db_.exec_parsed(*this, st, params);
    if (autocommit) commit();
    return rs;
  } catch (...) {
    if (autocommit) rollback();
    throw;
  }
}

void Connection::begin() {
  SBD_CHECK_MSG(!inTxn_, "nested DB transaction");
  inTxn_ = true;
  // Each transaction gets a fresh id so the lock manager's ownership
  // checks never confuse two transactions of the same connection.
  txnId_ = db_.txnIdGen_.fetch_add(1, std::memory_order_relaxed);
}

void Connection::commit() { end_txn(true); }

void Connection::rollback() { end_txn(false); }

void Connection::end_txn(bool commit) {
  SBD_CHECK_MSG(inTxn_, "no open DB transaction");
  if (commit) {
    // Fault plan: transient commit-fence faults (a stalled journal
    // flush). A real engine retries the fence until it clears; commit
    // never fails upward — the STM layer has already decided to commit.
    for (int transient = 0; transient < 3; transient++) {
      const uint64_t ns = fault::fire_delay_nanos(fault::Site::kDbCommit);
      if (ns == 0) break;
      std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    }
  }
  if (!commit) {
    std::lock_guard<std::mutex> lk(db_.mu_);
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
      auto& td = db_.tables_[it->table];
      auto pkIt = td->pk.find(it->pk);
      if (pkIt == td->pk.end()) continue;
      const size_t idx = pkIt->second;
      if (it->before) {
        td->rows[idx] = *it->before;
        td->alive[idx] = true;  // deleted rows come back
      } else {
        td->alive[idx] = false;  // inserted rows disappear
        td->pk.erase(pkIt);
      }
    }
  }
  undo_.clear();
  inTxn_ = false;
  db_.release_locks(*this);
}

size_t Connection::undo_bytes() const {
  size_t sum = 0;
  for (const auto& u : undo_) {
    sum += sizeof(UndoRecord);
    if (u.before)
      for (const Value& v : u.before->values)
        sum += std::holds_alternative<std::string>(v) ? as_str(v).size() + 16 : 16;
  }
  return sum;
}

}  // namespace sbd::db
