// The SBD transactional wrapper for database connections: maps the
// enclosing atomic section onto a DB transaction. Statements executed
// inside a section join one DB transaction that commits/rolls back with
// the section; a DB-level deadlock aborts and retries the whole atomic
// section (the STM owns conflict resolution end-to-end).
#pragma once

#include "core/transaction.h"
#include "db/db.h"
#include "tio/deferred.h"

namespace sbd::db {

class TxDbConnection final : public core::TxResource {
 public:
  explicit TxDbConnection(Database& db) : conn_(db.connect()) {}

  // Executes transactionally: inside an atomic section the statement
  // joins the section's DB transaction; outside it autocommits.
  ResultSet execute(const std::string& sql, const std::vector<Value>& params = {}) {
    if (tio::register_with_txn(this)) {
      if (!conn_->in_transaction()) conn_->begin();
      try {
        return conn_->execute(sql, params);
      } catch (const DbDeadlock&) {
        // The DB chose us as the deadlock victim: roll back and retry
        // the enclosing atomic section (its memory effects roll back
        // through the STM undo log, the DB effects through ours).
        conn_->rollback();
        core::abort_and_restart(core::tls_context());
      }
    }
    return conn_->execute(sql, params);
  }

  void on_commit() override {
    if (conn_->in_transaction()) conn_->commit();
  }

  void on_abort() override {
    if (conn_->in_transaction()) conn_->rollback();
  }

  size_t buffered_bytes() const override { return conn_->undo_bytes(); }

  Connection& raw() { return *conn_; }

 private:
  std::unique_ptr<Connection> conn_;
};

}  // namespace sbd::db
