// SBD thread operations (§3.5).
//
//   start  — deferred until the starting atomic section commits; an
//            aborted starter never launches the thread, and locks the
//            starter holds on the child's input data are released first.
//   join   — issues a split before waiting (so the child has actually
//            started) and releases the transaction id while blocked.
//
// The thread body runs entirely inside atomic sections: an initial one
// begins at entry, splits partition the rest, the last one commits at
// return (SBD: no code runs outside a transaction).
#pragma once

#include <functional>
#include <memory>

namespace sbd::threads {

class SbdThread {
 public:
  explicit SbdThread(std::function<void()> body);
  ~SbdThread();
  SbdThread(SbdThread&&) noexcept;
  SbdThread& operator=(SbdThread&&) noexcept;
  SbdThread(const SbdThread&) = delete;
  SbdThread& operator=(const SbdThread&) = delete;

  // Inside a transaction: deferred to commit. Outside: immediate.
  void start();

  // Splits the caller's section, releases its transaction id, waits for
  // the thread to finish, reaps the OS thread, and begins a new section.
  void join();

  bool finished() const;

  struct Impl;  // exposed for the launch trampoline in the .cpp

 private:
  std::shared_ptr<Impl> impl_;
};

// Runs `body` as the initial SBD context of the calling thread: attaches
// the stack for GC, begins the initial atomic section, runs body (which
// may split), and commits the final section. This is how main() enters
// the SBD world.
void run_sbd(const std::function<void()>& body);

// True while the calling thread executes inside an SBD atomic section.
bool in_sbd();

}  // namespace sbd::threads
