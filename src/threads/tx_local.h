// Thread-local memory with undo (§3.5): per-thread cells that need no
// locking (stacks/threads are isolated) but must be rolled back on
// abort, so writes go through the undo log.
//
// This is the building block of the paper's Table 4 scalability fixes:
// thread-local statistics counters aggregated on read, thread-local
// output aggregation, thread-local object caches.
#pragma once

#include <atomic>

#include "common/check.h"
#include "core/transaction.h"
#include "runtime/heap.h"

namespace sbd::threads {

namespace detail {
inline uint64_t& local_slot(core::ThreadContext& tc, uint32_t index) {
  while (tc.txLocalSlots.size() <= index) tc.txLocalSlots.push_back(0);
  return tc.txLocalSlots[index];
}
inline uint64_t& local_slot(uint32_t index) {
  return local_slot(core::tls_context(), index);
}
inline uint32_t next_local_index() {
  static std::atomic<uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

// A per-thread 64-bit cell. Reads are free; writes cost one undo-log
// entry (no lock word, no CAS).
class TxLocalI64 {
 public:
  TxLocalI64() : index_(detail::next_local_index()) {}

  int64_t get() const { return static_cast<int64_t>(detail::local_slot(index_)); }

  void set(int64_t v) {
    auto& tc = core::tls_context();  // one TLS lookup for slot + undo log
    uint64_t& slot = detail::local_slot(tc, index_);
    if (tc.txn.active()) tc.txn.log_undo(nullptr, &slot, slot);
    slot = static_cast<uint64_t>(v);
  }

  void add(int64_t delta) { set(get() + delta); }

  // Aggregates the cell's value across all live threads (the paper's
  // "thread local update of statistic counters, aggregate on read").
  int64_t aggregate() const {
    int64_t sum = 0;
    core::TxnManager::instance().for_each_thread([&](core::ThreadContext* tc) {
      if (tc->txLocalSlots.size() > index_)
        sum += static_cast<int64_t>(tc->txLocalSlots[index_]);
    });
    return sum;
  }

 private:
  uint32_t index_;
};

// A per-thread managed reference cell (thread-local object caches).
template <typename RefT>
class TxLocalRef {
 public:
  TxLocalRef() : index_(detail::next_local_index()) {}

  RefT get() const {
    return RefT(reinterpret_cast<runtime::ManagedObject*>(detail::local_slot(index_)));
  }

  void set(RefT v) {
    auto& tc = core::tls_context();  // one TLS lookup for slot + undo log
    uint64_t& slot = detail::local_slot(tc, index_);
    if (tc.txn.active()) tc.txn.log_undo(nullptr, &slot, slot);
    slot = reinterpret_cast<uint64_t>(v.raw());
  }

  // Returns the cached per-thread instance, creating it via `make` on
  // first use in this thread.
  template <typename MakeFn>
  RefT get_or_create(MakeFn&& make) {
    RefT cur = get();
    if (cur) return cur;
    RefT fresh = make();
    set(fresh);
    return fresh;
  }

 private:
  uint32_t index_;
};

}  // namespace sbd::threads
