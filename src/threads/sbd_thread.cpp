#include "threads/sbd_thread.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "core/transaction.h"
#include "runtime/heap.h"

namespace sbd::threads {

struct SbdThread::Impl {
  std::function<void()> body;
  std::thread osThread;
  std::mutex mu;
  std::condition_variable cv;
  bool launched = false;
  bool finished = false;
};

namespace {

// Zeroes the dead stack region below the caller before an SBD episode
// starts. The GC scans thread stacks and checkpoint stack snapshots
// conservatively, so a stale pointer left in frame slack by a PREVIOUS
// episode can resurrect an object that is otherwise garbage — and once
// such a pointer is captured into a checkpoint's stack copy, no number
// of re-collections can drop it. Clearing the region the episode's
// frames will occupy makes retention independent of frame layout.
__attribute__((noinline)) void scrub_dead_stack() {
  char scrub[128 * 1024];
  __builtin_memset(scrub, 0, sizeof(scrub));
  asm volatile("" ::"r"(scrub) : "memory");  // keep the memset
}

// Owns the stack bytes the checkpoint anchor points into: every frame
// that takes or restores checkpoints is a callee of this function, so
// restores never write beyond the pad (which is dead data).
//
// The pad must be fully zeroed: the bytes below the anchor are captured
// into every checkpoint's stack snapshot, and an uninitialized pad can
// hold a stale pointer spilled there by a previous episode's frames.
__attribute__((noinline)) void run_sections_with_anchor(
    core::ThreadContext& tc, const std::function<void()>& body) {
  volatile char pad[1024];
  for (size_t i = 0; i < sizeof(pad); i++) pad[i] = 0;
  tc.engine.set_anchor_at(const_cast<char*>(&pad[512]));
  core::begin_initial_section(tc);
  const int savedDepth = tc.canSplitDepth;
  tc.canSplitDepth = 1;  // entry points are canSplit by default (§2.2)
  body();
  tc.canSplitDepth = savedDepth;
  core::end_final_section(tc);
  tc.engine.clear_anchor();
}

void thread_entry(const std::shared_ptr<SbdThread::Impl>& impl) {
  auto& tc = core::tls_context();
  runtime::Heap::instance().attach_current_thread_here();  // GC scan bound
  scrub_dead_stack();
  run_sections_with_anchor(tc, impl->body);
  {
    std::lock_guard<std::mutex> lk(impl->mu);
    impl->finished = true;
  }
  impl->cv.notify_all();
}

void launch(const std::shared_ptr<SbdThread::Impl>& impl) {
  std::lock_guard<std::mutex> lk(impl->mu);
  SBD_CHECK_MSG(!impl->launched, "SbdThread started twice");
  impl->launched = true;
  impl->osThread = std::thread([impl] { thread_entry(impl); });
}

}  // namespace

SbdThread::SbdThread(std::function<void()> body) : impl_(std::make_shared<Impl>()) {
  impl_->body = std::move(body);
}

SbdThread::~SbdThread() {
  if (impl_ && impl_->osThread.joinable()) impl_->osThread.join();
}

SbdThread::SbdThread(SbdThread&&) noexcept = default;
SbdThread& SbdThread::operator=(SbdThread&&) noexcept = default;

void SbdThread::start() {
  auto* tc = core::tls_context_if_present();
  if (tc && tc->txn.active()) {
    // Deferred thread start (§3.5): the child launches only when the
    // starting section commits.
    auto impl = impl_;
    tc->txn.defer([impl] { launch(impl); });
  } else {
    launch(impl_);
  }
}

void SbdThread::join() {
  // Raw pointer only: this frame is re-unwound if the section that
  // starts inside split_section_releasing_id aborts, so it must not
  // hold a shared_ptr copy (double release on restore). `impl_` in the
  // SbdThread object keeps the Impl alive across the wait.
  Impl* impl = impl_.get();
  auto blocked = [impl] {
    auto& tc = core::tls_context();
    {
      core::Safepoint::SafeScope safe(tc);
      std::unique_lock<std::mutex> lk(impl->mu);
      impl->cv.wait(lk, [&] { return impl->finished; });
    }
    if (impl->osThread.joinable()) impl->osThread.join();
  };
  auto* tc = core::tls_context_if_present();
  if (tc && tc->txn.active()) {
    // Join always splits first (§3.5): the split commits this section,
    // which runs the deferred start, and releases our transaction id so
    // the child can get one.
    core::split_section_releasing_id(*tc, blocked);
  } else {
    blocked();
  }
}

bool SbdThread::finished() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->finished;
}

void run_sbd(const std::function<void()>& body) {
  auto& tc = core::tls_context();
  SBD_CHECK_MSG(!tc.txn.active(), "run_sbd cannot nest");
  runtime::Heap::instance().attach_current_thread_here();
  scrub_dead_stack();
  run_sections_with_anchor(tc, body);
}

bool in_sbd() {
  auto* tc = core::tls_context_if_present();
  return tc && tc->txn.active();
}

}  // namespace sbd::threads
