// The barrier of the paper's Figure 6, built from managed fields,
// wait_on and notify_all — a library component and a living example of
// the signalling protocol.
//
//   notify_all releases the lock on `arrived` at the signaller's commit
//   so waiters can re-test the condition; wait_on splits so other
//   threads can update `arrived`.
#pragma once

#include "api/sbd.h"

namespace sbd::threads {

class Barrier : public runtime::TypedRef<Barrier> {
 public:
  SBD_CLASS(Barrier, SBD_SLOT_FINAL("expected"), SBD_SLOT("arrived"))
  SBD_FIELD_FINAL_I64(0, expected)
  SBD_FIELD_I64(1, arrived)

  static Barrier make(int64_t expected) {
    Barrier b = alloc();
    b.init_expected(expected);
    b.init_arrived(0);
    return b;
  }

  // canSplit: waits (splitting) until all parties arrived.
  void sync() {
    CanSplitScope canSplit;
    set_arrived(arrived() + 1);
    if (arrived() < expected()) {
      while (arrived() < expected()) {
        wait_on(raw());  // splits the atomic section
      }
    } else {
      notify_all(raw());
      split();  // make the arrival visible and deliver the signal
    }
  }

  // Resets the barrier for reuse (callers must ensure quiescence).
  void reset() { set_arrived(0); }
};

}  // namespace sbd::threads
