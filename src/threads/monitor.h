// Condition signaling over managed objects (§3.5, Figure 6).
//
//   wait_on(obj)     — splits (committing the section and releasing all
//                      locks including the ones on the waited condition,
//                      plus the transaction id), blocks until a signal,
//                      then begins a new section. The caller re-checks
//                      the condition in a loop, as with Java monitors.
//   notify_all(obj)  — deferred until the signalling section commits, so
//                      an aborted section never signals and the
//                      condition's locks are already released when
//                      waiters wake (no thundering-herd reconvoy).
//
// The lost-wakeup protocol relies on the SBD locking discipline: the
// waiter still holds a read lock on the condition when it takes its
// ticket, so a signaller — which needs the write lock — can only commit
// (and bump the ticket) after the waiter's split released it.
#pragma once

#include "core/fwd.h"

namespace sbd::threads {

// Must be called inside an atomic section.
void wait_on(runtime::ManagedObject* obj);

// Deferred to commit when inside a section; immediate otherwise.
void notify_all(runtime::ManagedObject* obj);
void notify_one(runtime::ManagedObject* obj);

}  // namespace sbd::threads
