#include "threads/monitor.h"

#include <condition_variable>
#include <mutex>
#include <unordered_map>

#include "common/check.h"
#include "core/transaction.h"

namespace sbd::threads {

namespace {

struct WaitSet {
  std::mutex mu;
  std::condition_variable cv;
  uint64_t allTicket = 0;  // bumped by every delivered notify_all
  uint64_t singles = 0;    // pending notify_one credits
  int waiters = 0;
};

std::mutex gTableMu;
// WaitSets are leaked deliberately: an entry may be observed by a waker
// after its last waiter left, and the table is small (one per object
// ever waited on concurrently). Entries are pruned when empty.
std::unordered_map<const void*, WaitSet*> gTable;

WaitSet* get_or_create(const void* key) {
  std::lock_guard<std::mutex> lk(gTableMu);
  auto it = gTable.find(key);
  if (it != gTable.end()) return it->second;
  auto* ws = new WaitSet();
  gTable.emplace(key, ws);
  return ws;
}

WaitSet* find(const void* key) {
  std::lock_guard<std::mutex> lk(gTableMu);
  auto it = gTable.find(key);
  return it == gTable.end() ? nullptr : it->second;
}

void prune_if_idle(const void* key, WaitSet* ws) {
  std::scoped_lock lk(gTableMu, ws->mu);
  if (ws->waiters == 0) {
    auto it = gTable.find(key);
    if (it != gTable.end() && it->second == ws) gTable.erase(it);
    // ws itself leaks (tiny) — a waker may still hold the pointer.
  }
}

void deliver(WaitSet* ws, bool all) {
  {
    std::lock_guard<std::mutex> lk(ws->mu);
    if (all)
      ws->allTicket++;
    else
      ws->singles++;
  }
  if (all)
    ws->cv.notify_all();
  else
    ws->cv.notify_one();
}

}  // namespace

void wait_on(runtime::ManagedObject* obj) {
  auto& tc = core::tls_context();
  SBD_CHECK_MSG(tc.txn.active(), "wait_on outside an atomic section");
  SBD_CHECK_MSG(tc.noSplitDepth == 0, "wait_on inside a noSplit block");
  WaitSet* ws = get_or_create(obj);

  // Take the ticket *before* the split commits: we still hold locks on
  // the condition here, so no signal for the current condition state
  // can have been delivered yet.
  uint64_t allTicket0;
  {
    std::lock_guard<std::mutex> lk(ws->mu);
    allTicket0 = ws->allTicket;
    ws->waiters++;
  }

  auto blocked = [&] {
    auto& tc2 = core::tls_context();
    tc2.waitingObj = obj;  // GC root while blocked
    {
      core::Safepoint::SafeScope safe(tc2);
      std::unique_lock<std::mutex> lk(ws->mu);
      ws->cv.wait(lk, [&] {
        if (ws->allTicket != allTicket0) return true;  // broadcast
        if (ws->singles > 0) {  // notify_one: consume one credit
          ws->singles--;
          return true;
        }
        return false;
      });
      ws->waiters--;
    }
    tc2.waitingObj = nullptr;
  };
  core::split_section_releasing_id(tc, blocked);
  prune_if_idle(obj, ws);
}

namespace {
void signal(runtime::ManagedObject* obj, bool all) {
  auto* tc = core::tls_context_if_present();
  if (tc && tc->txn.active()) {
    // Deferred signal (§3.5): delivered only if this section commits,
    // after its locks are released.
    tc->txn.defer([obj, all] {
      if (WaitSet* ws = find(obj)) deliver(ws, all);
    });
  } else {
    if (WaitSet* ws = find(obj)) deliver(ws, all);
  }
}
}  // namespace

void notify_all(runtime::ManagedObject* obj) { signal(obj, true); }
void notify_one(runtime::ManagedObject* obj) { signal(obj, false); }

}  // namespace sbd::threads
