#include "jcl/collections.h"

#include "common/check.h"
#include "common/rng.h"

using sbd::fnv1a;
using sbd::mix64;

namespace sbd::jcl {

using runtime::ManagedObject;
using runtime::RefArray;
using runtime::I64Array;
using runtime::MString;

// Every public method resolves the thread context ONCE and threads it
// through the tc-taking accessor overloads — collection operations are
// many field/element accesses back to back, so this is the Table 4
// "cache the environment pointer" fix applied library-wide.

namespace {
struct AnyRef : runtime::TypedRef<AnyRef> {
  using TypedRef::TypedRef;
};
}  // namespace

// ---------------------------------------------------------------------------
// MVector
// ---------------------------------------------------------------------------

// Slot indices.
namespace vec {
constexpr uint32_t kData = 0, kSize = 1;
}

MVector MVector::make(int64_t capacity) {
  // Header slots (data, size) are read/written together in every
  // operation: when the adaptive planner finds the class cold, a single
  // object lock halves the acquire/release traffic. A hint is a no-op
  // under the fixed modes, so default builds stay bit-for-bit faithful.
  static const bool kHinted =
      (hint_lock_granularity(klass(), LockGranularity::kObject), true);
  (void)kHinted;
  MVector v = alloc();
  if (capacity < 4) capacity = 4;
  auto arr = RefArray<AnyRef>::make(static_cast<uint64_t>(capacity));
  runtime::init_write(v.raw(), vec::kData, reinterpret_cast<uint64_t>(arr.raw()));
  runtime::init_write(v.raw(), vec::kSize, 0);
  return v;
}

int64_t MVector::size() const {
  return static_cast<int64_t>(runtime::tx_read(o_, vec::kSize));
}

ManagedObject* MVector::get(int64_t i) const {
  auto& tc = core::tls_context();
  auto* data = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, vec::kData));
  SBD_CHECK_MSG(i >= 0 && static_cast<uint64_t>(i) < runtime::array_length(data),
                "MVector index out of range");
  return reinterpret_cast<ManagedObject*>(
      runtime::tx_read_elem(tc, data, static_cast<uint64_t>(i)));
}

void MVector::set(int64_t i, ManagedObject* v) {
  auto& tc = core::tls_context();
  auto* data = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, vec::kData));
  SBD_CHECK_MSG(i >= 0 && static_cast<uint64_t>(i) < runtime::array_length(data),
                "MVector index out of range");
  runtime::tx_write_elem(tc, data, static_cast<uint64_t>(i),
                         reinterpret_cast<uint64_t>(v));
}

void MVector::push(ManagedObject* v) {
  auto& tc = core::tls_context();
  const auto n = static_cast<int64_t>(runtime::tx_read(tc, o_, vec::kSize));
  auto* data = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, vec::kData));
  const auto cap = runtime::array_length(data);
  if (static_cast<uint64_t>(n) == cap) {
    auto bigger = RefArray<AnyRef>::make(cap * 2);
    for (uint64_t i = 0; i < cap; i++)
      bigger.init_set(i, AnyRef(reinterpret_cast<ManagedObject*>(
                             runtime::tx_read_elem(tc, data, i))));
    runtime::tx_write(tc, o_, vec::kData, reinterpret_cast<uint64_t>(bigger.raw()));
    data = bigger.raw();
  }
  runtime::tx_write_elem(tc, data, static_cast<uint64_t>(n),
                         reinterpret_cast<uint64_t>(v));
  runtime::tx_write(tc, o_, vec::kSize, static_cast<uint64_t>(n + 1));
}

ManagedObject* MVector::pop() {
  auto& tc = core::tls_context();
  const auto n = static_cast<int64_t>(runtime::tx_read(tc, o_, vec::kSize));
  if (n == 0) return nullptr;
  auto* data = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, vec::kData));
  auto* v = reinterpret_cast<ManagedObject*>(
      runtime::tx_read_elem(tc, data, static_cast<uint64_t>(n - 1)));
  runtime::tx_write(tc, o_, vec::kSize, static_cast<uint64_t>(n - 1));
  return v;
}

void MVector::clear() { runtime::tx_write(o_, vec::kSize, 0); }

// ---------------------------------------------------------------------------
// MIntMap
// ---------------------------------------------------------------------------

namespace imap {
constexpr uint32_t kKeys = 0, kVals = 1, kUsed = 2, kSize = 3, kCap = 4;
}

MIntMap MIntMap::make(int64_t capacity) {
  // All five header slots travel together through get/put/rehash.
  static const bool kHinted =
      (hint_lock_granularity(klass(), LockGranularity::kObject), true);
  (void)kHinted;
  MIntMap m = alloc();
  if (capacity < 8) capacity = 8;
  // Round to a power of two for mask probing.
  int64_t cap = 8;
  while (cap < capacity) cap *= 2;
  runtime::init_write(m.raw(), imap::kKeys,
                      reinterpret_cast<uint64_t>(
                          I64Array::make(static_cast<uint64_t>(cap)).raw()));
  runtime::init_write(m.raw(), imap::kVals,
                      reinterpret_cast<uint64_t>(
                          RefArray<AnyRef>::make(static_cast<uint64_t>(cap)).raw()));
  runtime::init_write(m.raw(), imap::kUsed,
                      reinterpret_cast<uint64_t>(
                          I64Array::make(static_cast<uint64_t>(cap)).raw()));
  runtime::init_write(m.raw(), imap::kSize, 0);
  runtime::init_write(m.raw(), imap::kCap, static_cast<uint64_t>(cap));
  return m;
}

int64_t MIntMap::size() const {
  return static_cast<int64_t>(runtime::tx_read(o_, imap::kSize));
}

int64_t MIntMap::find_slot(core::ThreadContext& tc, int64_t key, bool& present) const {
  const auto cap = static_cast<int64_t>(runtime::tx_read(tc, o_, imap::kCap));
  auto* keys = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, imap::kKeys));
  auto* used = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, imap::kUsed));
  int64_t i = static_cast<int64_t>(mix64(static_cast<uint64_t>(key))) & (cap - 1);
  for (;;) {
    const bool u = runtime::tx_read_elem(tc, used, static_cast<uint64_t>(i)) != 0;
    if (!u) {
      present = false;
      return i;
    }
    if (static_cast<int64_t>(
            runtime::tx_read_elem(tc, keys, static_cast<uint64_t>(i))) == key) {
      present = true;
      return i;
    }
    i = (i + 1) & (cap - 1);
  }
}

bool MIntMap::contains(int64_t key) const {
  bool present;
  find_slot(core::tls_context(), key, present);
  return present;
}

ManagedObject* MIntMap::get(int64_t key) const {
  auto& tc = core::tls_context();
  bool present;
  const int64_t slot = find_slot(tc, key, present);
  if (!present) return nullptr;
  auto* vals = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, imap::kVals));
  return reinterpret_cast<ManagedObject*>(
      runtime::tx_read_elem(tc, vals, static_cast<uint64_t>(slot)));
}

void MIntMap::put(int64_t key, ManagedObject* value) {
  auto& tc = core::tls_context();
  bool present;
  int64_t slot = find_slot(tc, key, present);
  const auto cap = static_cast<int64_t>(runtime::tx_read(tc, o_, imap::kCap));
  const auto sz = static_cast<int64_t>(runtime::tx_read(tc, o_, imap::kSize));
  if (!present && (sz + 1) * 10 >= cap * 7) {
    rehash(tc);
    slot = find_slot(tc, key, present);
  }
  auto* keys = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, imap::kKeys));
  auto* vals = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, imap::kVals));
  auto* used = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, imap::kUsed));
  runtime::tx_write_elem(tc, keys, static_cast<uint64_t>(slot),
                         static_cast<uint64_t>(key));
  runtime::tx_write_elem(tc, vals, static_cast<uint64_t>(slot),
                         reinterpret_cast<uint64_t>(value));
  if (!present) {
    runtime::tx_write_elem(tc, used, static_cast<uint64_t>(slot), 1);
    const auto sz2 = static_cast<int64_t>(runtime::tx_read(tc, o_, imap::kSize));
    runtime::tx_write(tc, o_, imap::kSize, static_cast<uint64_t>(sz2 + 1));
  }
}

void MIntMap::rehash(core::ThreadContext& tc) {
  const auto cap = static_cast<int64_t>(runtime::tx_read(tc, o_, imap::kCap));
  auto* keys = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, imap::kKeys));
  auto* vals = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, imap::kVals));
  auto* used = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, imap::kUsed));
  const int64_t newCap = cap * 2;
  auto nk = I64Array::make(static_cast<uint64_t>(newCap));
  auto nv = RefArray<AnyRef>::make(static_cast<uint64_t>(newCap));
  auto nu = I64Array::make(static_cast<uint64_t>(newCap));
  for (int64_t i = 0; i < cap; i++) {
    if (runtime::tx_read_elem(tc, used, static_cast<uint64_t>(i)) == 0) continue;
    const auto key =
        static_cast<int64_t>(runtime::tx_read_elem(tc, keys, static_cast<uint64_t>(i)));
    int64_t j = static_cast<int64_t>(mix64(static_cast<uint64_t>(key))) & (newCap - 1);
    while (nu.get(tc, static_cast<uint64_t>(j)) != 0) j = (j + 1) & (newCap - 1);
    nk.init_set(static_cast<uint64_t>(j), key);
    nv.init_set(static_cast<uint64_t>(j),
                AnyRef(reinterpret_cast<ManagedObject*>(
                    runtime::tx_read_elem(tc, vals, static_cast<uint64_t>(i)))));
    nu.init_set(static_cast<uint64_t>(j), 1);
  }
  runtime::tx_write(tc, o_, imap::kKeys, reinterpret_cast<uint64_t>(nk.raw()));
  runtime::tx_write(tc, o_, imap::kVals, reinterpret_cast<uint64_t>(nv.raw()));
  runtime::tx_write(tc, o_, imap::kUsed, reinterpret_cast<uint64_t>(nu.raw()));
  runtime::tx_write(tc, o_, imap::kCap, static_cast<uint64_t>(newCap));
}

// ---------------------------------------------------------------------------
// MStrMap
// ---------------------------------------------------------------------------

namespace smap {
constexpr uint32_t kHashes = 0, kKeys = 1, kVals = 2, kSize = 3, kCap = 4;
}

MStrMap MStrMap::make(int64_t capacity) {
  // Same shape as MIntMap: header slots are always co-accessed.
  static const bool kHinted =
      (hint_lock_granularity(klass(), LockGranularity::kObject), true);
  (void)kHinted;
  MStrMap m = alloc();
  if (capacity < 8) capacity = 8;
  int64_t cap = 8;
  while (cap < capacity) cap *= 2;
  runtime::init_write(m.raw(), smap::kHashes,
                      reinterpret_cast<uint64_t>(
                          I64Array::make(static_cast<uint64_t>(cap)).raw()));
  runtime::init_write(m.raw(), smap::kKeys,
                      reinterpret_cast<uint64_t>(
                          RefArray<MString>::make(static_cast<uint64_t>(cap)).raw()));
  runtime::init_write(m.raw(), smap::kVals,
                      reinterpret_cast<uint64_t>(
                          RefArray<AnyRef>::make(static_cast<uint64_t>(cap)).raw()));
  runtime::init_write(m.raw(), smap::kSize, 0);
  runtime::init_write(m.raw(), smap::kCap, static_cast<uint64_t>(cap));
  return m;
}

int64_t MStrMap::size() const {
  return static_cast<int64_t>(runtime::tx_read(o_, smap::kSize));
}

ManagedObject* MStrMap::get(std::string_view key) const {
  auto& tc = core::tls_context();
  const auto cap = static_cast<int64_t>(runtime::tx_read(tc, o_, smap::kCap));
  auto* keys = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, smap::kKeys));
  auto* vals = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, smap::kVals));
  const uint64_t h = fnv1a(key) | 1;  // 0 marks an empty slot
  auto* hashes =
      reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, smap::kHashes));
  int64_t i = static_cast<int64_t>(h) & (cap - 1);
  for (;;) {
    const uint64_t sh = runtime::tx_read_elem(tc, hashes, static_cast<uint64_t>(i));
    if (sh == 0) return nullptr;
    if (sh == h) {
      MString k(reinterpret_cast<ManagedObject*>(
          runtime::tx_read_elem(tc, keys, static_cast<uint64_t>(i))));
      if (k.equals(key))
        return reinterpret_cast<ManagedObject*>(
            runtime::tx_read_elem(tc, vals, static_cast<uint64_t>(i)));
    }
    i = (i + 1) & (cap - 1);
  }
}

void MStrMap::put(MString key, ManagedObject* value) {
  auto& tc = core::tls_context();
  const auto cap = static_cast<int64_t>(runtime::tx_read(tc, o_, smap::kCap));
  const auto sz = static_cast<int64_t>(runtime::tx_read(tc, o_, smap::kSize));
  if ((sz + 1) * 10 >= cap * 7) rehash(tc);
  const auto cap2 = static_cast<int64_t>(runtime::tx_read(tc, o_, smap::kCap));
  auto* hashes =
      reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, smap::kHashes));
  auto* keys = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, smap::kKeys));
  auto* vals = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, smap::kVals));
  const uint64_t h = fnv1a(key.view()) | 1;
  int64_t i = static_cast<int64_t>(h) & (cap2 - 1);
  for (;;) {
    const uint64_t sh = runtime::tx_read_elem(tc, hashes, static_cast<uint64_t>(i));
    if (sh == 0) {
      runtime::tx_write_elem(tc, hashes, static_cast<uint64_t>(i), h);
      runtime::tx_write_elem(tc, keys, static_cast<uint64_t>(i),
                             reinterpret_cast<uint64_t>(key.raw()));
      runtime::tx_write_elem(tc, vals, static_cast<uint64_t>(i),
                             reinterpret_cast<uint64_t>(value));
      const auto sz2 = static_cast<int64_t>(runtime::tx_read(tc, o_, smap::kSize));
      runtime::tx_write(tc, o_, smap::kSize, static_cast<uint64_t>(sz2 + 1));
      return;
    }
    if (sh == h) {
      MString k(reinterpret_cast<ManagedObject*>(
          runtime::tx_read_elem(tc, keys, static_cast<uint64_t>(i))));
      if (k.equals(key.view())) {
        runtime::tx_write_elem(tc, vals, static_cast<uint64_t>(i),
                               reinterpret_cast<uint64_t>(value));
        return;
      }
    }
    i = (i + 1) & (cap2 - 1);
  }
}

void MStrMap::rehash(core::ThreadContext& tc) {
  const auto cap = static_cast<int64_t>(runtime::tx_read(tc, o_, smap::kCap));
  auto* hashes =
      reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, smap::kHashes));
  auto* keys = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, smap::kKeys));
  auto* vals = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, smap::kVals));
  const int64_t newCap = cap * 2;
  auto nh = I64Array::make(static_cast<uint64_t>(newCap));
  auto nk = RefArray<MString>::make(static_cast<uint64_t>(newCap));
  auto nv = RefArray<AnyRef>::make(static_cast<uint64_t>(newCap));
  for (int64_t i = 0; i < cap; i++) {
    const uint64_t h = runtime::tx_read_elem(tc, hashes, static_cast<uint64_t>(i));
    if (h == 0) continue;
    int64_t j = static_cast<int64_t>(h) & (newCap - 1);
    while (nh.get(tc, static_cast<uint64_t>(j)) != 0) j = (j + 1) & (newCap - 1);
    nh.init_set(static_cast<uint64_t>(j), static_cast<int64_t>(h));
    nk.init_set(static_cast<uint64_t>(j),
                MString(reinterpret_cast<ManagedObject*>(
                    runtime::tx_read_elem(tc, keys, static_cast<uint64_t>(i)))));
    nv.init_set(static_cast<uint64_t>(j),
                AnyRef(reinterpret_cast<ManagedObject*>(
                    runtime::tx_read_elem(tc, vals, static_cast<uint64_t>(i)))));
  }
  runtime::tx_write(tc, o_, smap::kHashes, reinterpret_cast<uint64_t>(nh.raw()));
  runtime::tx_write(tc, o_, smap::kKeys, reinterpret_cast<uint64_t>(nk.raw()));
  runtime::tx_write(tc, o_, smap::kVals, reinterpret_cast<uint64_t>(nv.raw()));
  runtime::tx_write(tc, o_, smap::kCap, static_cast<uint64_t>(newCap));
}

// ---------------------------------------------------------------------------
// MTaskQueue
// ---------------------------------------------------------------------------

namespace tq {
constexpr uint32_t kItems = 0, kHead = 1, kTail = 2, kSize = 3, kIsEmpty = 4,
                   kUseFlag = 5, kCap = 6;
}

MTaskQueue MTaskQueue::make(int64_t capacity, bool useEmptyFlag) {
  // put touches {items,tail,size,isEmpty}, take touches {items,head,
  // size,isEmpty}: two stripes keep head and tail on separate words
  // while still merging the bookkeeping slots each side shares.
  static const bool kHinted =
      (hint_lock_granularity(klass(), LockGranularity::kStriped, 2), true);
  (void)kHinted;
  MTaskQueue q = alloc();
  runtime::init_write(q.raw(), tq::kItems,
                      reinterpret_cast<uint64_t>(
                          RefArray<AnyRef>::make(static_cast<uint64_t>(capacity)).raw()));
  runtime::init_write(q.raw(), tq::kHead, 0);
  runtime::init_write(q.raw(), tq::kTail, 0);
  runtime::init_write(q.raw(), tq::kSize, 0);
  runtime::init_write(q.raw(), tq::kIsEmpty, 1);
  runtime::init_write(q.raw(), tq::kUseFlag, useEmptyFlag ? 1 : 0);
  runtime::init_write(q.raw(), tq::kCap, static_cast<uint64_t>(capacity));
  return q;
}

int64_t MTaskQueue::size() const {
  return static_cast<int64_t>(runtime::tx_read(o_, tq::kSize));
}

bool MTaskQueue::empty_check() const {
  if (runtime::read_final(o_, tq::kUseFlag) != 0)
    return runtime::tx_read(o_, tq::kIsEmpty) != 0;  // low-churn flag
  return size() == 0;  // hot counter: conflicts with every put/take
}

bool MTaskQueue::put(ManagedObject* v) {
  auto& tc = core::tls_context();
  const auto cap = static_cast<int64_t>(runtime::read_final(o_, tq::kCap));
  const auto n = static_cast<int64_t>(runtime::tx_read(tc, o_, tq::kSize));
  if (n == cap) return false;
  auto* items = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, tq::kItems));
  const auto tail = static_cast<int64_t>(runtime::tx_read(tc, o_, tq::kTail));
  runtime::tx_write_elem(tc, items, static_cast<uint64_t>(tail % cap),
                         reinterpret_cast<uint64_t>(v));
  runtime::tx_write(tc, o_, tq::kTail, static_cast<uint64_t>(tail + 1));
  runtime::tx_write(tc, o_, tq::kSize, static_cast<uint64_t>(n + 1));
  if (runtime::read_final(o_, tq::kUseFlag) != 0 && n == 0)
    runtime::tx_write(tc, o_, tq::kIsEmpty, 0);  // only on the 0 -> 1 transition
  return true;
}

ManagedObject* MTaskQueue::take() {
  if (empty_check()) return nullptr;
  auto& tc = core::tls_context();
  const auto n = static_cast<int64_t>(runtime::tx_read(tc, o_, tq::kSize));
  if (n == 0) return nullptr;  // flag said non-empty, but we raced a taker
  const auto cap = static_cast<int64_t>(runtime::read_final(o_, tq::kCap));
  auto* items = reinterpret_cast<ManagedObject*>(runtime::tx_read(tc, o_, tq::kItems));
  const auto head = static_cast<int64_t>(runtime::tx_read(tc, o_, tq::kHead));
  auto* v = reinterpret_cast<ManagedObject*>(
      runtime::tx_read_elem(tc, items, static_cast<uint64_t>(head % cap)));
  runtime::tx_write(tc, o_, tq::kHead, static_cast<uint64_t>(head + 1));
  runtime::tx_write(tc, o_, tq::kSize, static_cast<uint64_t>(n - 1));
  if (runtime::read_final(o_, tq::kUseFlag) != 0 && n == 1)
    runtime::tx_write(tc, o_, tq::kIsEmpty, 1);  // only on the 1 -> 0 transition
  return v;
}

}  // namespace sbd::jcl
