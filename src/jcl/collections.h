// Adapted class library (the paper's §4.3): collection classes built on
// the managed object model so every access goes through field-level
// locking. These are the SBD equivalents of the JCL classes the paper
// rewrites — including the Table 4 contention fixes:
//
//   MTaskQueue — optional separate isEmpty flag: take() checks the flag
//                (which only changes on empty<->non-empty transitions)
//                instead of `size` (which changes on every operation),
//                removing the hottest read-write conflict.
//
// All collections are type-erased over ManagedObject* elements; typed
// convenience wrappers live at the call sites.
#pragma once

#include "api/sbd.h"

namespace sbd::jcl {

// Growable vector of managed references (java.util.ArrayList).
class MVector : public runtime::TypedRef<MVector> {
 public:
  SBD_CLASS(MVector, SBD_SLOT_REF("data"), SBD_SLOT("size"))

  static MVector make(int64_t capacity = 8);

  int64_t size() const;
  bool empty() const { return size() == 0; }
  runtime::ManagedObject* get(int64_t i) const;
  void set(int64_t i, runtime::ManagedObject* v);
  void push(runtime::ManagedObject* v);
  runtime::ManagedObject* pop();  // returns null if empty
  void clear();

  template <typename T>
  T at(int64_t i) const {
    return T(get(i));
  }
};

// Hash map from 64-bit keys to managed references (java.util.HashMap
// for integral keys). Open addressing, no removal (the benchmarks never
// remove), resize at 70% load.
class MIntMap : public runtime::TypedRef<MIntMap> {
 public:
  SBD_CLASS(MIntMap, SBD_SLOT_REF("keys"), SBD_SLOT_REF("vals"), SBD_SLOT_REF("used"),
            SBD_SLOT("size"), SBD_SLOT("capacity"))

  static MIntMap make(int64_t capacity = 16);

  int64_t size() const;
  bool contains(int64_t key) const;
  runtime::ManagedObject* get(int64_t key) const;  // null if absent
  void put(int64_t key, runtime::ManagedObject* value);

  template <typename T>
  T at(int64_t key) const {
    return T(get(key));
  }

 private:
  void rehash(core::ThreadContext& tc);
  int64_t find_slot(core::ThreadContext& tc, int64_t key, bool& present) const;
};

// Hash map from managed strings to managed references.
class MStrMap : public runtime::TypedRef<MStrMap> {
 public:
  SBD_CLASS(MStrMap, SBD_SLOT_REF("hashes"), SBD_SLOT_REF("keys"), SBD_SLOT_REF("vals"),
            SBD_SLOT("size"), SBD_SLOT("capacity"))

  static MStrMap make(int64_t capacity = 16);

  int64_t size() const;
  runtime::ManagedObject* get(std::string_view key) const;
  void put(runtime::MString key, runtime::ManagedObject* value);
  // Inserts via `make` if absent; returns the present or fresh value.
  template <typename MakeFn>
  runtime::ManagedObject* get_or_put(std::string_view key, MakeFn&& make) {
    runtime::ManagedObject* v = get(key);
    if (v) return v;
    runtime::ManagedObject* fresh = make();
    put(runtime::MString::make(key), fresh);
    return fresh;
  }

 private:
  void rehash(core::ThreadContext& tc);
};

// Bounded MPMC task queue (ring buffer). `useEmptyFlag` enables the
// paper's Table 4 JCL fix; with it off, take() reads `size` and
// conflicts with every put().
class MTaskQueue : public runtime::TypedRef<MTaskQueue> {
 public:
  SBD_CLASS(MTaskQueue, SBD_SLOT_REF("items"), SBD_SLOT("head"), SBD_SLOT("tail"),
            SBD_SLOT("size"), SBD_SLOT("isEmpty"), SBD_SLOT_FINAL("useEmptyFlag"),
            SBD_SLOT_FINAL("capacity"))

  static MTaskQueue make(int64_t capacity, bool useEmptyFlag);

  // Adds an element; returns false if full.
  bool put(runtime::ManagedObject* v);
  // Removes the head, or returns null if (observed) empty.
  runtime::ManagedObject* take();
  bool empty_check() const;  // the contended read the flag optimizes
  int64_t size() const;
};

}  // namespace sbd::jcl
