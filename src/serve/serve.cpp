#include "serve/serve.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include "api/sbd.h"
#include "core/fault.h"
#include "core/obs.h"
#include "core/queue.h"
#include "core/transaction.h"
#include "db/txwrapper.h"
#include "threads/sbd_thread.h"

namespace sbd::serve {

namespace {

// Parses a non-negative decimal integer; rejects junk and overflow
// (request inputs are hostile by assumption).
bool parse_i64(std::string_view s, int64_t& out) {
  if (s.empty() || s.size() > 18) return false;
  int64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  out = v;
  return true;
}

// Pulls `key` out of a "a=1&b=2" form body.
bool form_field(const std::string& body, std::string_view key, int64_t& out) {
  size_t pos = 0;
  while (pos < body.size()) {
    size_t amp = body.find('&', pos);
    if (amp == std::string::npos) amp = body.size();
    const std::string_view pair(body.data() + pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key)
      return parse_i64(pair.substr(eq + 1), out);
    pos = amp + 1;
  }
  return false;
}

}  // namespace

Counters& counters() {
  // Intentionally leaked: the obs metrics provider reads these from
  // atexit paths, after any static destruction order.
  static Counters* c = new Counters();
  return *c;
}

std::string metrics_section() {
  Counters& k = counters();
  const uint64_t reqs = k.requests_total();
  const uint64_t abortsNow = core::TxnManager::instance().snapshot_stats().aborts;
  const uint64_t base = k.txnAbortsAtStart.load(std::memory_order_relaxed);
  const uint64_t aborts = abortsNow >= base ? abortsNow - base : 0;
  std::ostringstream os;
  os << "{\"accepted\": " << k.accepted.load(std::memory_order_relaxed)
     << ", \"acceptFailed\": " << k.acceptFailed.load(std::memory_order_relaxed)
     << ", \"activeConnections\": " << k.activeConnections.load(std::memory_order_relaxed)
     << ", \"closedConnections\": " << k.closedConnections.load(std::memory_order_relaxed)
     << ", \"requests\": {\"get\": " << k.getRequests.load(std::memory_order_relaxed)
     << ", \"put\": " << k.putRequests.load(std::memory_order_relaxed)
     << ", \"txfer\": " << k.txferRequests.load(std::memory_order_relaxed)
     << ", \"other\": " << k.otherRequests.load(std::memory_order_relaxed)
     << ", \"bad\": " << k.badRequests.load(std::memory_order_relaxed) << "}"
     << ", \"responses\": {\"2xx\": " << k.responses2xx.load(std::memory_order_relaxed)
     << ", \"4xx\": " << k.responses4xx.load(std::memory_order_relaxed)
     << ", \"5xx\": " << k.responses5xx.load(std::memory_order_relaxed) << "}"
     << ", \"keepAliveReuses\": " << k.keepAliveReuses.load(std::memory_order_relaxed)
     << ", \"shortWrites\": " << k.shortWrites.load(std::memory_order_relaxed)
     << ", \"drainedInFlight\": " << k.drainedInFlight.load(std::memory_order_relaxed)
     << ", \"txnAborts\": " << aborts
     << ", \"abortPerRequest\": "
     << (reqs ? static_cast<double>(aborts) / static_cast<double>(reqs) : 0.0)
     << ", \"parkedWaiterDepth\": " << core::ParkingLot::approx_waiters() << "}";
  return os.str();
}

void ensure_tables(db::Database& db) {
  auto c = db.connect();
  if (!db.has_table("KV")) c->execute("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)");
  if (!db.has_table("ACCOUNTS"))
    c->execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)");
}

void seed_accounts(db::Database& db, int n, int64_t balance) {
  ensure_tables(db);
  auto c = db.connect();
  for (int i = 0; i < n; i++)
    c->execute("INSERT INTO accounts VALUES (?, ?)",
               {static_cast<int64_t>(i), balance});
}

int64_t total_balance(db::Database& db) {
  auto c = db.connect();
  auto rs = c->execute("SELECT SUM(balance) FROM accounts");
  return rs.size() ? rs.int_at(0, 0) : 0;
}

// ---------------------------------------------------------------------------
// Server internals
// ---------------------------------------------------------------------------

namespace {

// One accepted connection. Heap-allocated and owned by the server for
// its whole life (armed edge callbacks hold raw pointers; the TxSocket
// placement rule requires off-stack buffers anyway).
struct Conn {
  explicit Conn(net::Socket s) : sock(s) {}
  net::TxSocket sock;
  std::unique_ptr<db::TxDbConnection> dbc;  // lazy; one at a time by design
  uint64_t requestsServed = 0;              // touched only in finish()
  std::atomic<bool> retired{false};
};

// The multiplex point: edge callbacks push, workers pop. Held by
// shared_ptr so a late callback (a client writing just as the server
// dies) still lands on live memory.
struct ReadyQueue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Conn*> q;
  bool stopping = false;

  void push(Conn* c) {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (stopping) return;  // drained server: drop, the conn gets closed
      q.push_back(c);
    }
    cv.notify_one();
  }

  // Blocks for the next ready connection; keeps draining queued work
  // after stop() and returns nullptr once stopping AND empty.
  Conn* pop_blocking() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return !q.empty() || stopping; });
    if (q.empty()) return nullptr;
    Conn* c = q.front();
    q.pop_front();
    return c;
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lk(mu);
      stopping = true;
    }
    cv.notify_all();
  }

  bool empty() {
    std::lock_guard<std::mutex> lk(mu);
    return q.empty();
  }
};

// Per-request outcome, gathered inside the (abortable) section and
// applied to the global counters exactly once, via the commit-deferred
// finish. Trivially copyable on purpose: it crosses the commit boundary
// inside a std::function capture.
struct Tally {
  uint8_t endpoint = 0;  // 0 none (EOF), 'g' get, 'p' put, 't' txfer, 'o' other, 'b' bad
  uint8_t statusClass = 0;
  bool shortWrite = false;
};

}  // namespace

struct Server::Impl {
  db::Database& db;
  Config cfg;
  net::Listener listener;
  std::shared_ptr<ReadyQueue> ready = std::make_shared<ReadyQueue>();
  std::thread dispatcher;
  std::vector<threads::SbdThread> workers;

  std::mutex connsMu;
  std::vector<std::unique_ptr<Conn>> conns;

  std::atomic<uint64_t> inFlight{0};
  std::atomic<bool> stopping{false};
  std::mutex drainMu;
  std::condition_variable drainCv;

  Impl(db::Database& d, Config c) : db(d), cfg(c) {}

  // --- dispatcher ----------------------------------------------------------

  void dispatch_loop() {
    for (;;) {
      net::Socket s = listener.accept();
      if (!s.valid()) return;  // listener closed: shutdown
      if (fault::should_fire(fault::Site::kServeAcceptFail)) {
        // ECONNABORTED: the connection dies in the backlog. The client
        // sees EOF and must retry; the server keeps serving.
        counters().acceptFailed.fetch_add(1, std::memory_order_relaxed);
        s.shutdown_read();
        s.close();
        continue;
      }
      Conn* pc;
      {
        std::lock_guard<std::mutex> lk(connsMu);
        conns.push_back(std::make_unique<Conn>(s));
        pc = conns.back().get();
      }
      counters().accepted.fetch_add(1, std::memory_order_relaxed);
      counters().activeConnections.fetch_add(1, std::memory_order_relaxed);
      arm(*pc);
    }
  }

  void arm(Conn& c) {
    // One-shot: fires (immediately if data is already buffered) and
    // disarms; the connection is then queued until a worker owns it.
    c.sock.raw().arm_read_notify([rq = ready, pc = &c] { rq->push(pc); });
  }

  // --- workers -------------------------------------------------------------

  void worker_body() {
    auto& tc = core::tls_context();
    for (;;) {
      Conn* conn = nullptr;
      // The pop runs between sections (id released): an idle worker
      // must not pin a transaction id the serving load needs (§3.5).
      // inFlight is bumped INSIDE the pop so an abort-retry of the next
      // section cannot double-count it (the checkpoint is taken after).
      core::split_section_releasing_id(tc, [&] {
        core::Safepoint::SafeScope safe(tc);
        conn = ready->pop_blocking();
        if (conn) inFlight.fetch_add(1, std::memory_order_relaxed);
      });
      if (!conn) break;
      handle_one(tc, *conn);
      // Commit: the response (TxSocket B_W) and the row updates become
      // visible atomically; then the deferred finish() below re-arms or
      // retires the connection and balances inFlight.
      split(tc);
    }
  }

  // Reads and serves exactly one request inside the current section.
  // Every path registers exactly one commit-deferred finish().
  void handle_one(core::ThreadContext& tc, Conn& c) {
    net::HttpRequest req;
    auto readFn = [&](void* out, size_t n) { return c.sock.read(out, n); };
    const net::ReadStatus rs = net::read_request_status(readFn, req, cfg.maxBodyBytes);
    if (rs == net::ReadStatus::kEof) {
      defer_finish(tc, c, /*keep=*/false, Tally{});
      return;
    }
    Tally t;
    net::HttpResponse resp;
    bool keep = true;
    if (rs != net::ReadStatus::kOk) {
      // Unframeable request: answer 4xx and drop the connection — its
      // byte stream can no longer be trusted (the acceptance criterion
      // for the old stoul crash).
      resp.status = rs == net::ReadStatus::kTooLarge ? 413 : 400;
      resp.body = "unframeable request";
      t.endpoint = 'b';
      keep = false;
    } else {
      route(c, req, resp, t);
      auto cc = req.headers.find("Connection");
      if (cc != req.headers.end() && cc->second == "close") keep = false;
    }
    t.statusClass = static_cast<uint8_t>(resp.status / 100);
    const std::string wire = net::serialize(resp);
    if (fault::should_fire(fault::Site::kServeWriteShort)) {
      // Mid-flight short write: half the response reaches the wire and
      // the connection dies. The db transaction still commits — same as
      // a real TCP connection lost after the server's commit point; the
      // client must treat the truncated response as unknown-outcome.
      t.shortWrite = true;
      keep = false;
      c.sock.write(std::string_view(wire).substr(0, wire.size() / 2));
    } else {
      c.sock.write(wire);
    }
    defer_finish(tc, c, keep, t);
  }

  void route(Conn& c, const net::HttpRequest& req, net::HttpResponse& resp, Tally& t) {
    if (!c.dbc) c.dbc = std::make_unique<db::TxDbConnection>(db);
    db::TxDbConnection& dbc = *c.dbc;
    try {
      int64_t key = 0;
      if (req.method == "GET" && req.path.rfind("/kv/", 0) == 0 &&
          parse_i64(std::string_view(req.path).substr(4), key)) {
        t.endpoint = 'g';
        auto rows = dbc.execute("SELECT v FROM kv WHERE k = ?", {key});
        if (rows.size() == 0) {
          resp.status = 404;
        } else {
          resp.body = rows.str_at(0, 0);
        }
      } else if (req.method == "PUT" && req.path.rfind("/kv/", 0) == 0 &&
                 parse_i64(std::string_view(req.path).substr(4), key)) {
        t.endpoint = 'p';
        auto upd = dbc.execute("UPDATE kv SET v = ? WHERE k = ?", {req.body, key});
        if (upd.updateCount == 0) {
          dbc.execute("INSERT INTO kv VALUES (?, ?)", {key, req.body});
          resp.status = 201;
        }
      } else if (req.method == "POST" && req.path == "/txfer") {
        t.endpoint = 't';
        int64_t from = 0, to = 0, amount = 0;
        if (!form_field(req.body, "from", from) || !form_field(req.body, "to", to) ||
            !form_field(req.body, "amount", amount)) {
          resp.status = 400;
          resp.body = "need from=&to=&amount=";
          return;
        }
        // Point SELECTs take exclusive row locks (strict 2PL), so both
        // rows are pinned for the rest of the section — the two
        // UPDATEs below cannot fail independently, and conservation
        // holds under any interleaving, abort, or injected fault.
        auto fromRs = dbc.execute("SELECT balance FROM accounts WHERE id = ?", {from});
        auto toRs = dbc.execute("SELECT balance FROM accounts WHERE id = ?", {to});
        if (fromRs.size() == 0 || toRs.size() == 0) {
          resp.status = 404;
          resp.body = "no such account";
          return;
        }
        const int64_t fromBal = fromRs.int_at(0, 0);
        const int64_t toBal = toRs.int_at(0, 0);
        if (from != to && fromBal < amount) {
          resp.status = 409;
          resp.body = "insufficient balance";
          return;
        }
        if (from != to) {
          dbc.execute("UPDATE accounts SET balance = ? WHERE id = ?",
                      {fromBal - amount, from});
          dbc.execute("UPDATE accounts SET balance = ? WHERE id = ?",
                      {toBal + amount, to});
        }
        resp.body = "ok";
      } else {
        t.endpoint = 'o';
        resp.status = 404;
        resp.body = "no such endpoint";
      }
    } catch (const db::DbDeadlock&) {
      throw;  // never reaches us: TxDbConnection aborts the section
    } catch (const db::DbError&) {
      // Defensive: no statement above can half-apply (see the 2PL note),
      // so a DbError here leaves the db transaction consistent; it rolls
      // back with the section only if the caller aborts. Answer 500 and
      // drop the connection.
      resp.status = 500;
      resp.body = "db error";
    }
  }

  void defer_finish(core::ThreadContext& tc, Conn& c, bool keep, Tally t) {
    // Runs exactly once, after the commit that flushed the response: an
    // aborted section discards (and the retry re-registers) it. Re-arm
    // MUST wait for the commit — re-queueing the connection while its
    // response is still buffered would let another worker interleave.
    (void)tc;
    sbd::on_commit([this, pc = &c, keep, t] { finish(*pc, keep, t); });
  }

  void finish(Conn& c, bool keep, Tally t) {
    Counters& k = counters();
    switch (t.endpoint) {
      case 'g': k.getRequests.fetch_add(1, std::memory_order_relaxed); break;
      case 'p': k.putRequests.fetch_add(1, std::memory_order_relaxed); break;
      case 't': k.txferRequests.fetch_add(1, std::memory_order_relaxed); break;
      case 'o': k.otherRequests.fetch_add(1, std::memory_order_relaxed); break;
      case 'b': k.badRequests.fetch_add(1, std::memory_order_relaxed); break;
      default: break;  // EOF pseudo-request
    }
    if (t.statusClass == 2) k.responses2xx.fetch_add(1, std::memory_order_relaxed);
    if (t.statusClass == 4) k.responses4xx.fetch_add(1, std::memory_order_relaxed);
    if (t.statusClass == 5) k.responses5xx.fetch_add(1, std::memory_order_relaxed);
    if (t.shortWrite) k.shortWrites.fetch_add(1, std::memory_order_relaxed);
    if (t.endpoint != 0) {
      c.requestsServed++;
      if (c.requestsServed > 1)
        k.keepAliveReuses.fetch_add(1, std::memory_order_relaxed);
      if (stopping.load(std::memory_order_relaxed))
        k.drainedInFlight.fetch_add(1, std::memory_order_relaxed);
    }
    if (keep && !stopping.load(std::memory_order_relaxed)) {
      arm(c);  // fires immediately if the next request already arrived
    } else {
      retire(c);
    }
    inFlight.fetch_sub(1, std::memory_order_relaxed);
    drainCv.notify_all();
  }

  void retire(Conn& c) {
    if (c.retired.exchange(true)) return;
    c.sock.raw().disarm_read_notify();
    c.sock.raw().shutdown_read();
    c.sock.close();
    counters().activeConnections.fetch_sub(1, std::memory_order_relaxed);
    counters().closedConnections.fetch_add(1, std::memory_order_relaxed);
  }
};

Server::Server(db::Database& db, Config cfg)
    : impl_(std::make_unique<Impl>(db, cfg)) {}

Server::~Server() { shutdown(); }

int Server::port() const { return impl_->cfg.port; }

void Server::start() {
  if (running_.exchange(true)) return;
  ensure_tables(impl_->db);
  counters().txnAbortsAtStart.store(
      core::TxnManager::instance().snapshot_stats().aborts,
      std::memory_order_relaxed);
  obs::register_metrics_section("serve", &metrics_section);
  impl_->listener = net::Network::instance().listen(impl_->cfg.port);
  impl_->dispatcher = std::thread([this] { impl_->dispatch_loop(); });
  impl_->workers.reserve(static_cast<size_t>(impl_->cfg.workers));
  for (int i = 0; i < impl_->cfg.workers; i++) {
    impl_->workers.emplace_back([this] { impl_->worker_body(); });
    impl_->workers.back().start();
  }
}

void Server::shutdown() {
  if (!running_.exchange(false)) return;
  Impl& s = *impl_;
  s.stopping.store(true, std::memory_order_release);
  s.listener.close();  // dispatcher unblocks and exits
  s.ready->stop();     // workers drain the queue, then see nullptr
  {
    // Drain: give in-flight (and already-queued) requests their grace.
    std::unique_lock<std::mutex> lk(s.drainMu);
    s.drainCv.wait_for(lk, std::chrono::milliseconds(s.cfg.drainTimeoutMs), [&] {
      return s.inFlight.load(std::memory_order_relaxed) == 0 && s.ready->empty();
    });
  }
  {
    // Force phase: EOF every connection. A worker still blocked on a
    // half-arrived request wakes, answers EOF, and exits cleanly.
    std::lock_guard<std::mutex> lk(s.connsMu);
    for (auto& c : s.conns) s.retire(*c);
  }
  for (auto& w : s.workers) w.join();
  s.workers.clear();
  if (s.dispatcher.joinable()) s.dispatcher.join();
}

}  // namespace sbd::serve
