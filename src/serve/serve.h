// sbd::serve — the sustained-load serving scenario (ROADMAP "millions
// of users"): an event-driven HTTP front end over the sbd::db store.
//
// Architecture (one server):
//
//   dispatcher thread ── accept()s connections, arms a one-shot
//        │               readiness edge on each (Pipe::arm_notify)
//        ▼
//   ready queue  ◄────── edge callbacks push connections that became
//        │               readable (or hit EOF); EPOLLONESHOT-style:
//        │               a connection is armed XOR queued XOR running
//        ▼
//   worker pool ───────  N SbdThreads; each pops a ready connection,
//                        reads ONE request, runs the handler inside the
//                        current atomic section (db statements join the
//                        section's DB transaction via TxDbConnection,
//                        the response is buffered in the TxSocket), and
//                        splits — response and row updates become
//                        visible atomically at the commit. On abort
//                        (deadlock, chaos injection) the section
//                        retries: consumed request bytes replay from
//                        B_R, the DB transaction rolled back, the
//                        response buffer discarded. A request is
//                        exactly the paper's unit of atomicity.
//
// This multiplexes N keep-alive connections onto W workers without a
// thread per connection — the regime where synchronized-by-default
// must earn its keep (many small independent transactions over shared
// rows) and where the deferred-update sandboxing of TxSocket/TxDb
// wrappers is load-bearing rather than decorative.
//
// Endpoints over the store:
//   GET  /kv/<k>    read one row            (200 value | 404)
//   PUT  /kv/<k>    upsert (body = value)   (200 updated | 201 created)
//   POST /txfer     body "from=A&to=B&amount=N": moves N between two
//                   account rows in ONE atomic section (409 when the
//                   source balance is insufficient; total balance is
//                   conserved under any schedule, abort, or fault)
//
// Fault model: kSocketReset (client handed a dead connection),
// kServeAcceptFail (connection torn down before the server sees it,
// ECONNABORTED-style), kServeWriteShort (response cut off mid-write,
// connection dropped). All three must leave the conservation invariant
// and the latency SLO gate intact — bench/bench_serve.cpp measures
// exactly that.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "db/db.h"
#include "net/http.h"
#include "net/loopback.h"

namespace sbd::serve {

struct Config {
  int port = 8090;
  int workers = 4;
  // Per-request body cap forwarded to the HTTP parser (413 beyond it).
  size_t maxBodyBytes = net::kMaxBodyBytes;
  // Graceful-shutdown grace: how long to wait for in-flight requests
  // before force-closing connections (which EOFs blocked readers).
  uint64_t drainTimeoutMs = 2000;
};

// Process-wide serving counters (monotonic except activeConnections).
// Global, not per-Server: the obs metrics provider must stay valid for
// the life of the process, and tests/benches read them after the
// server is gone.
struct Counters {
  std::atomic<uint64_t> accepted{0};        // connections handed to the dispatcher
  std::atomic<uint64_t> acceptFailed{0};    // kServeAcceptFail tear-downs
  std::atomic<uint64_t> activeConnections{0};
  std::atomic<uint64_t> closedConnections{0};
  std::atomic<uint64_t> getRequests{0};
  std::atomic<uint64_t> putRequests{0};
  std::atomic<uint64_t> txferRequests{0};
  std::atomic<uint64_t> otherRequests{0};   // routed but unknown endpoint
  std::atomic<uint64_t> badRequests{0};     // unframeable (400/413)
  std::atomic<uint64_t> responses2xx{0};
  std::atomic<uint64_t> responses4xx{0};
  std::atomic<uint64_t> responses5xx{0};
  std::atomic<uint64_t> keepAliveReuses{0}; // request #2+ on one connection
  std::atomic<uint64_t> shortWrites{0};     // kServeWriteShort firings
  std::atomic<uint64_t> drainedInFlight{0}; // requests completed during drain
  // TxnManager aborts at the last Server::start(): the metrics section
  // reports aborts-per-request over the serving window.
  std::atomic<uint64_t> txnAbortsAtStart{0};

  uint64_t requests_total() const {
    return getRequests.load(std::memory_order_relaxed) +
           putRequests.load(std::memory_order_relaxed) +
           txferRequests.load(std::memory_order_relaxed) +
           otherRequests.load(std::memory_order_relaxed) +
           badRequests.load(std::memory_order_relaxed);
  }
};
Counters& counters();

// The obs metrics provider: a JSON object with the counters above,
// the aborts-per-request rate over the serving window, and the live
// parked-waiter depth. Registered under "serve" by Server::start();
// callable directly.
std::string metrics_section();

// Creates the KV and ACCOUNTS tables if missing (idempotent).
void ensure_tables(db::Database& db);
// Inserts accounts 0..n-1 with `balance` each (fresh table expected).
void seed_accounts(db::Database& db, int n, int64_t balance);
// SUM(balance) over all accounts — the conservation invariant.
int64_t total_balance(db::Database& db);

class Server {
 public:
  // `db` must outlive the server. Tables are created on start().
  Server(db::Database& db, Config cfg);
  ~Server();  // calls shutdown() if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the port and launches the dispatcher + worker pool. The
  // calling thread must be SBD-attached (SBD_ATTACH_THREAD or a test
  // main); it is NOT blocked — serving runs on internal threads.
  void start();

  // Graceful shutdown: stop accepting, let in-flight (and already
  // ready) requests finish within drainTimeoutMs, then force-EOF the
  // stragglers, and join every thread. Idempotent.
  void shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }
  int port() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::atomic<bool> running_{false};
};

}  // namespace sbd::serve
