// Public SBD API facade — the language constructs of Table 2, rendered
// as a C++ library:
//
//   sbd::split()            the split keyword: ends the current atomic
//                           section, starts the next one
//   sbd::CanSplitScope      the canSplit method modifier (dynamic check)
//   sbd::allow_split(fn)    the allowSplit call-site modifier
//   sbd::NoSplitScope       the noSplit { } composability block (§3.7):
//                           splits inside are ignored
//   sbd::threads::SbdThread thread start/join with SBD semantics
//   sbd::threads::wait_on / notify_all   condition signalling
//
// Static checking of the canSplit/allowSplit rules — which Java gets
// from the bytecode transformer — is reproduced faithfully in the
// SBD-IL verifier (src/il); the native API enforces the same rules
// dynamically.
#pragma once

#include "common/check.h"
#include "core/obs.h"
#include "core/transaction.h"
#include "runtime/field_access.h"
#include "runtime/heap.h"
#include "runtime/lockplan.h"
#include "runtime/mstring.h"
#include "runtime/ref.h"
#include "runtime/statics.h"
#include "threads/monitor.h"
#include "threads/sbd_thread.h"

namespace sbd {

// The calling thread's SBD context. Hot loops should resolve this once
// and pass it to the tc-taking accessor/split overloads instead of
// paying a TLS lookup per operation.
inline core::ThreadContext& context() { return core::tls_context(); }

// Ends the current atomic section and begins a new one, releasing all
// locks and making all effects (memory and buffered I/O) visible.
// Ignored inside a noSplit block; otherwise requires a canSplit scope.
inline void split(core::ThreadContext& tc) {
  SBD_CHECK_MSG(tc.txn.active(), "split outside an atomic section");
  if (tc.noSplitDepth > 0) return;  // §3.7: composition suppresses splits
  SBD_CHECK_MSG(tc.canSplitDepth > 0, "split in a method without canSplit");
  core::split_section(tc);
}

inline void split() { split(core::tls_context()); }

// Marks the dynamic extent of a canSplit method. Constructors must not
// open one (uninitialized instances must not escape a section, §2.2).
class CanSplitScope {
 public:
  CanSplitScope() : tc_(core::tls_context()) {
    SBD_CHECK_MSG(tc_.canSplitDepth > 0 || tc_.allowSplitArmed,
                  "canSplit method invoked without allowSplit at the call site");
    tc_.allowSplitArmed = false;
    tc_.canSplitDepth++;
  }
  ~CanSplitScope() { tc_.canSplitDepth--; }
  CanSplitScope(const CanSplitScope&) = delete;
  CanSplitScope& operator=(const CanSplitScope&) = delete;

 private:
  core::ThreadContext& tc_;
};

// Marks a call site that permits the callee to split (allowSplit). The
// tc-taking overload is for code that already holds the cached context
// (the pattern the IL backends compile to: one tls_context() per
// section, cached through every handler and call site).
template <typename Fn>
auto allow_split(core::ThreadContext& tc, Fn&& fn) {
  SBD_CHECK_MSG(tc.canSplitDepth > 0, "allowSplit in a method without canSplit");
  tc.allowSplitArmed = true;
  struct Disarm {
    core::ThreadContext& tc;
    ~Disarm() { tc.allowSplitArmed = false; }
  } disarm{tc};
  return fn();
}

template <typename Fn>
auto allow_split(Fn&& fn) {
  return allow_split(core::tls_context(), std::forward<Fn>(fn));
}

// noSplit { ... } — composes canSplit operations into one atomic
// section by suppressing their splits (§3.7).
class NoSplitScope {
 public:
  NoSplitScope() : tc_(core::tls_context()) { tc_.noSplitDepth++; }
  ~NoSplitScope() { tc_.noSplitDepth--; }
  NoSplitScope(const NoSplitScope&) = delete;
  NoSplitScope& operator=(const NoSplitScope&) = delete;

 private:
  core::ThreadContext& tc_;
};

// Defers a foreign (non-transactional) action to the current section's
// commit — the Table 2 "foreign code execution" wrapper for effects
// that have no dedicated transactional adapter. The action runs exactly
// once, after the section's locks are released; if the section aborts,
// it never runs. Outside a section the action runs immediately.
template <typename Fn>
void on_commit(Fn&& action) {
  auto* tc = core::tls_context_if_present();
  if (tc && tc->txn.active())
    tc->txn.defer(std::function<void()>(std::forward<Fn>(action)));
  else
    action();
}

// --- Lock granularity (runtime/lockplan) ------------------------------------

using runtime::LockGranularity;

// Pins `cls` (a T::klass() pointer) to a granularity and applies it,
// stopping the world if instances already exist. Returns false if the
// switch was vetoed by live lock state (locks held right now); the pin
// sticks, and under SBD_LOCK_GRANULARITY=adaptive the controller keeps
// retrying it. Process-wide defaults come from SBD_LOCK_GRANULARITY.
// LockGranularity::kVersioned runs the class on the invisible-reader
// protocol: reads load the value plus a per-word version stamp and
// re-validate at split/commit instead of taking locks; writes still
// lock exclusively. Best for read-mostly hot classes (stale reads cost
// an abort-and-retry); `stripes` is ignored for it.
inline bool set_lock_granularity(runtime::ClassInfo* cls, LockGranularity g,
                                 uint32_t stripes = 4) {
  return runtime::lockplan::set_class_map(cls, runtime::lockplan::make_map(g, stripes));
}

// Soft preference: when the adaptive controller finds `cls` cold, it
// coarsens to this map instead of the default single-object lock. Has
// no effect under fixed modes, so annotated code stays bit-for-bit
// faithful when SBD_LOCK_GRANULARITY is unset.
inline void hint_lock_granularity(runtime::ClassInfo* cls, LockGranularity g,
                                  uint32_t stripes = 4) {
  runtime::lockplan::hint_class_map(cls, runtime::lockplan::make_map(g, stripes));
}

// --- Tracing / oracle controls (core/obs) -----------------------------------
namespace trace {

// Contention + lifecycle tracing (kBlocked/kGranted/kDeadlock/...).
inline void set_enabled(bool on) { obs::set_enabled(on); }

// Full lock trace (kAcquire/kRelease/kCommitOrder) — the input of the
// sbd::oracle happens-before checker (tools/sbd_oracle). Implies
// set_enabled(true).
inline void set_full(bool on) { obs::set_full_trace(on); }

// Block-on-overflow recording for complete traces; requires a
// concurrent obs::drain() loop on a non-SBD thread.
inline void set_lossless(bool on) { obs::set_lossless(on); }

}  // namespace trace

// Re-exports for user code.
using runtime::ByteArray;
using runtime::F64Array;
using runtime::GlobalRoot;
using runtime::I64Array;
using runtime::MString;
using runtime::RefArray;
using runtime::TypedRef;
using threads::in_sbd;
using threads::notify_all;
using threads::notify_one;
using threads::run_sbd;
using threads::SbdThread;
using threads::wait_on;

}  // namespace sbd
