#include "dacapo/harness.h"

#include "core/transaction.h"

namespace sbd::dacapo {

RunResult measure_sbd_run(const std::function<uint64_t()>& run) {
  auto& mgr = core::TxnManager::instance();
  const auto statsBefore = mgr.snapshot_stats();
  const auto vtmBefore = vtm::snapshot_all_threads();
  const uint64_t locksBefore = core::gauges().lockStructBytes.load();
  const uint64_t stampsBefore = core::gauges().versionWordBytes.load();
  Stopwatch sw;
  const uint64_t checksum = run();
  RunResult r;
  r.seconds = sw.seconds();
  r.checksum = checksum;
  r.stm = mgr.snapshot_stats().diff(statsBefore);
  r.vtm = vtm::diff(vtm::snapshot_all_threads(), vtmBefore);
  const uint64_t locksAfter = core::gauges().lockStructBytes.load();
  r.lockStructBytes = locksAfter > locksBefore ? locksAfter - locksBefore : 0;
  const uint64_t stampsAfter = core::gauges().versionWordBytes.load();
  r.versionWordBytes = stampsAfter > stampsBefore ? stampsAfter - stampsBefore : 0;
  return r;
}

RunResult measure_baseline_run(const std::function<uint64_t()>& run) {
  Stopwatch sw;
  const uint64_t checksum = run();
  RunResult r;
  r.seconds = sw.seconds();
  r.checksum = checksum;
  return r;
}

std::vector<Benchmark> all_benchmarks() {
  std::vector<Benchmark> out;
  out.push_back(luindex_benchmark());
  out.push_back(lusearch_benchmark());
  out.push_back(pmd_benchmark());
  out.push_back(sunflow_benchmark());
  out.push_back(h2_benchmark());
  out.push_back(tomcat_benchmark());
  return out;
}

}  // namespace sbd::dacapo
