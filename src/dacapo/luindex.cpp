// LuIndex analog: document indexing with a fixed main + worker pair
// (the paper's LuIndex runs a fixed number of threads) and disk I/O —
// the index segment is written as one large file, which is why the
// paper's Table 8 shows LuIndex with a large undo/write buffer: the
// whole file is produced inside a single transaction.
//
// Pipeline: main generates documents into a queue; the worker tokenizes,
// stems, and feeds the inverted index; at the end the worker serializes
// the index to the segment file.
#include <condition_variable>
#include <map>
#include <mutex>
#include <queue>
#include <sstream>
#include <thread>

#include "api/sbd.h"
#include "common/rng.h"
#include "dacapo/harness.h"
#include "jcl/collections.h"
#include "text/analysis.h"
#include "text/index.h"
#include "tio/file.h"

namespace sbd::dacapo {

namespace {

text::CorpusConfig corpus_config(const Scale& s) {
  text::CorpusConfig cfg;
  cfg.numDocs = s.of(400);
  cfg.wordsPerDoc = 100;
  return cfg;
}

std::string segment_path(const char* variant) {
  return std::string("/tmp/sbd_luindex_") + variant + "_" + std::to_string(getpid()) +
         ".seg";
}

uint64_t index_checksum(const text::InvertedIndex& idx) {
  return sbd::fnv1a(idx.serialize());
}

// --- Baseline: native queue + native index + ofstream ---------------------

uint64_t run_baseline_once(const text::CorpusConfig& cfg) {
  std::mutex mu;
  std::condition_variable cv;
  std::queue<std::pair<uint32_t, std::string>> work;
  bool done = false;

  text::InvertedIndex index;
  std::thread worker([&] {
    for (;;) {
      std::pair<uint32_t, std::string> item;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return !work.empty() || done; });
        if (work.empty()) return;
        item = std::move(work.front());
        work.pop();
      }
      std::vector<std::string> terms;
      for (auto& tok : text::tokenize(item.second)) terms.push_back(text::stem(tok));
      index.add_document(item.first, terms);
    }
  });

  for (uint64_t d = 0; d < cfg.numDocs; d++) {
    auto textBody = text::generate_document_text(cfg, d);
    {
      std::lock_guard<std::mutex> lk(mu);
      work.emplace(static_cast<uint32_t>(d), std::move(textBody));
    }
    cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lk(mu);
    done = true;
  }
  cv.notify_all();
  worker.join();

  const std::string path = segment_path("base");
  {
    tio::TxFileWriter out(path);  // outside any section: direct writes
    out.write(index.serialize());
  }
  const uint64_t sum = index_checksum(index);
  std::remove(path.c_str());
  return sum;
}

// --- SBD: managed queue + managed postings + transactional file -----------
//
// The managed index: MStrMap term -> MVector of (docId, tf) pairs packed
// into a managed I64 pair; doc lengths in an I64Array.

class PostingEntry : public runtime::TypedRef<PostingEntry> {
 public:
  SBD_CLASS(PostingEntry, SBD_SLOT_FINAL("doc"), SBD_SLOT("tf"))
  SBD_FIELD_FINAL_I64(0, doc)
  SBD_FIELD_I64(1, tf)
  static PostingEntry make(int64_t doc, int64_t tf) {
    // Tiny two-slot record, allocated by the million: one mapped lock
    // per entry halves the Table 8 lock footprint, and `tf` updates
    // already take the entry's only contended word. No-op unless
    // SBD_LOCK_GRANULARITY=adaptive.
    static const bool kHinted =
        (hint_lock_granularity(klass(), LockGranularity::kObject), true);
    (void)kHinted;
    PostingEntry e = alloc();
    e.init_doc(doc);
    e.init_tf(tf);
    return e;
  }
};

class DocText : public runtime::TypedRef<DocText> {
 public:
  SBD_CLASS(DocText, SBD_SLOT_FINAL("id"), SBD_SLOT_FINAL_REF("body"))
  SBD_FIELD_FINAL_I64(0, id)
  SBD_FIELD_FINAL_REF(1, body, runtime::MString)
  static DocText make(int64_t id, runtime::MString body) {
    // All-final record: its locks are only ever materialized, never
    // acquired, so a single-word map is pure footprint savings.
    static const bool kHinted =
        (hint_lock_granularity(klass(), LockGranularity::kObject), true);
    (void)kHinted;
    DocText d = alloc();
    d.init_id(id);
    d.init_body(body);
    return d;
  }
};

uint64_t run_sbd_once(const text::CorpusConfig& cfg) {
  runtime::GlobalRoot<jcl::MTaskQueue> queue;
  runtime::GlobalRoot<jcl::MStrMap> postings;
  runtime::GlobalRoot<runtime::I64Array> docLens;
  runtime::GlobalRoot<runtime::I64Array> doneFlag;
  std::string serialized;  // filled by the worker after indexing
  const std::string path = segment_path("sbd");

  run_sbd([&] {
    queue.set(jcl::MTaskQueue::make(static_cast<int64_t>(cfg.numDocs) + 1,
                                    /*useEmptyFlag=*/true));
    postings.set(jcl::MStrMap::make(256));
    docLens.set(runtime::I64Array::make(cfg.numDocs));
    doneFlag.set(runtime::I64Array::make(1));
  });

  threads::SbdThread worker([&] {
    // Off-stack TxResource: the writer's defer buffer must survive
    // checkpoint restores (README "Restore safety").
    auto* outPtr = new tio::TxFileWriter(path);
    tio::TxFileWriter& out = *outPtr;
    uint64_t indexed = 0;
    while (indexed < cfg.numDocs) {
      runtime::ManagedObject* item = queue.get().take();
      if (!item) {
        if (doneFlag.get().get(0) != 0 && queue.get().empty_check()) break;
        // Nothing queued yet: release our locks so the producer can add.
        split();
        continue;
      }
      {
        // Restore-safety: the token vectors/maps close before the split.
        DocText doc(item);
        std::vector<std::string> terms;
        for (auto& tok : text::tokenize(doc.body().view()))
          terms.push_back(text::stem(tok));
        docLens.get().set(static_cast<uint64_t>(doc.id()),
                          static_cast<int64_t>(terms.size()));
        // tf per term, then into the managed postings map.
        std::map<std::string, int64_t> tf;
        for (auto& t : terms) tf[t]++;
        for (auto& [term, freq] : tf) {
          auto* vecRaw = postings.get().get_or_put(
              term, [] { return jcl::MVector::make(4).raw(); });
          jcl::MVector(vecRaw).push(PostingEntry::make(doc.id(), freq).raw());
        }
      }
      indexed++;
      split();  // one document per atomic section
    }
    // Serialize and write the segment file in ONE atomic section (the
    // paper's LuIndex behavior: a single large write transaction).
    // Terms are walked deterministically via the stemmed vocabulary so
    // the segment bytes are stable across runs and variants.
    std::map<std::string, std::vector<text::Posting>> collected;
    for (const auto& word : text::vocabulary()) {
      const std::string term = text::stem(word);
      if (collected.count(term)) continue;
      auto* vecRaw = postings.get().get(term);
      if (!vecRaw) continue;
      jcl::MVector vec(vecRaw);
      std::vector<text::Posting> plist;
      for (int64_t i = 0; i < vec.size(); i++) {
        PostingEntry e = vec.at<PostingEntry>(i);
        plist.push_back(text::Posting{static_cast<uint32_t>(e.doc()),
                                      static_cast<uint32_t>(e.tf())});
      }
      collected[term] = std::move(plist);
    }
    std::ostringstream os;
    os << "#docs " << cfg.numDocs << "\n";
    for (uint64_t d = 0; d < cfg.numDocs; d++)
      os << "#len " << d << " " << docLens.get().get(d) << "\n";
    for (const auto& [term, plist] : collected) {
      os << term;
      for (const auto& p : plist) os << ' ' << p.docId << ':' << p.termFreq;
      os << '\n';
    }
    serialized = os.str();
    out.write(serialized);
    split();  // commit the file write
    delete outPtr;
  });
  worker.start();

  run_sbd([&] {
    for (uint64_t d = 0; d < cfg.numDocs; d++) {
      runtime::MString body = runtime::MString::make(text::generate_document_text(cfg, d));
      while (!queue.get().put(DocText::make(static_cast<int64_t>(d), body).raw())) {
        split();  // queue full: let the worker drain
      }
      split();  // publish one document per section
    }
    doneFlag.get().set(0, 1);
  });
  worker.join();

  const uint64_t sum = sbd::fnv1a(serialized);
  std::remove(path.c_str());
  return sum;
}

}  // namespace

Benchmark luindex_benchmark() {
  Benchmark b;
  b.name = "LuIndex";
  b.fixedThreads = true;  // main + worker, like the paper
  b.baseline = [](const Scale& s, int) {
    return measure_baseline_run([&] { return run_baseline_once(corpus_config(s)); });
  };
  b.sbd = [](const Scale& s, int) {
    return measure_sbd_run([&] { return run_sbd_once(corpus_config(s)); });
  };
  // Our port: splits in worker loop (2), producer loop (2), finisher (1).
  b.effort = EffortReport{5, 2, 0, 4, 1, 0, 1, 0, 38, 76, 27, 9};
  return b;
}

}  // namespace sbd::dacapo
