// PMD analog: a pool of worker threads pulls source files from a task
// queue, analyzes them against the rule set, and records violations in
// a shared report plus per-rule statistics counters.
//
// Table 4 fix reproduced: the statistic counters are updated
// thread-locally and aggregated on read (two counters, as the paper
// lists "2" custom modifications for PMD).
#include <atomic>
#include <mutex>
#include <thread>

#include "analyzer/analyzer.h"
#include "api/sbd.h"
#include "common/rng.h"
#include "dacapo/harness.h"
#include "jcl/collections.h"
#include "threads/tx_local.h"

namespace sbd::dacapo {

namespace {

struct PmdConfig {
  analyzer::SourceGenConfig gen;
  uint64_t numFiles;
};

PmdConfig make_config(const Scale& s) {
  PmdConfig cfg;
  cfg.numFiles = s.of(60);
  cfg.gen.functionsPerFile = 8;
  return cfg;
}

// --- Baseline ---------------------------------------------------------------

uint64_t run_baseline_once(const PmdConfig& cfg, int threads) {
  const auto rules = analyzer::default_rules();
  std::atomic<uint64_t> nextFile{0};
  std::mutex reportMu;
  std::vector<analyzer::Violation> report;
  std::atomic<uint64_t> filesDone{0}, violationsTotal{0};

  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&] {
      for (;;) {
        const uint64_t f = nextFile.fetch_add(1, std::memory_order_relaxed);
        if (f >= cfg.numFiles) return;
        const std::string src = analyzer::generate_source(cfg.gen, f);
        auto violations = analyzer::analyze(src, rules);
        violationsTotal.fetch_add(violations.size(), std::memory_order_relaxed);
        filesDone.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(reportMu);
        for (auto& v : violations) report.push_back(std::move(v));
      }
    });
  }
  for (auto& t : ts) t.join();
  uint64_t sum = violationsTotal.load() * 1000 + filesDone.load();
  for (const auto& v : report) sum += sbd::fnv1a(v.rule);
  return sum;
}

// --- SBD ---------------------------------------------------------------------

class ViolationRec : public runtime::TypedRef<ViolationRec> {
 public:
  SBD_CLASS(ViolationRec, SBD_SLOT_FINAL_REF("rule"), SBD_SLOT_FINAL("line"))
  SBD_FIELD_FINAL_REF(0, rule, runtime::MString)
  SBD_FIELD_FINAL_I64(1, line)
  static ViolationRec make(const analyzer::Violation& v) {
    // Immutable report rows: one mapped lock per record is enough.
    static const bool kHinted =
        (hint_lock_granularity(klass(), LockGranularity::kObject), true);
    (void)kHinted;
    ViolationRec r = alloc();
    r.init_rule(runtime::MString::make(v.rule));
    r.init_line(v.line);
    return r;
  }
};

uint64_t run_sbd_once(const PmdConfig& cfg, int threads) {
  const auto rules = analyzer::default_rules();
  // Thread-local counters, aggregated on read (Table 4 / PMD "2").
  static threads::TxLocalI64 localFilesDone, localViolations;
  runtime::GlobalRoot<jcl::MVector> report;
  runtime::GlobalRoot<runtime::I64Array> nextFile;
  runtime::GlobalRoot<runtime::I64Array> totals;  // aggregated at the end
  run_sbd([&] {
    report.set(jcl::MVector::make(64));
    nextFile.set(runtime::I64Array::make(1));
    totals.set(runtime::I64Array::make(2));
  });
  {
    std::vector<threads::SbdThread> ts;
    for (int t = 0; t < threads; t++) {
      ts.emplace_back([&] {
        localFilesDone.set(0);
        localViolations.set(0);
        for (;;) {
          // Claim the next file id (hot counter), split right after
          // (§5.2 solution 1).
          const int64_t f = nextFile.get().get(0);
          if (f >= static_cast<int64_t>(cfg.numFiles)) break;
          nextFile.get().set(0, f + 1);
          split();
          // Restore-safety: the strings/vectors live in an inner scope
          // that closes BEFORE the split, so a later abort never
          // re-unwinds live non-trivial locals (DESIGN.md caveat).
          {
            // Analysis works on locals: no synchronization (Table 1).
            const std::string src =
                analyzer::generate_source(cfg.gen, static_cast<uint64_t>(f));
            auto violations = analyzer::analyze(src, rules);
            // Thread-local statistics (Table 4).
            localFilesDone.add(1);
            localViolations.add(static_cast<int64_t>(violations.size()));
            // Shared report append.
            for (const auto& v : violations)
              report.get().push(ViolationRec::make(v).raw());
          }
          split();
        }
        // Aggregate once.
        totals.get().set(0, totals.get().get(0) + localFilesDone.get());
        totals.get().set(1, totals.get().get(1) + localViolations.get());
        split();
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  uint64_t sum = 0;
  run_sbd([&] {
    sum = static_cast<uint64_t>(totals.get().get(1)) * 1000 +
          static_cast<uint64_t>(totals.get().get(0));
    for (int64_t i = 0; i < report.get().size(); i++)
      sum += sbd::fnv1a(report.get().at<ViolationRec>(i).rule().view());
  });
  return sum;
}

}  // namespace

Benchmark pmd_benchmark() {
  Benchmark b;
  b.name = "PMD";
  b.baseline = [](const Scale& s, int threads) {
    const auto cfg = make_config(s);
    return measure_baseline_run([&] { return run_baseline_once(cfg, threads); });
  };
  b.sbd = [](const Scale& s, int threads) {
    const auto cfg = make_config(s);
    return measure_sbd_run([&] { return run_sbd_once(cfg, threads); });
  };
  b.effort = EffortReport{3, 1, 2, 2, 1, 3, 2, 2, 4, 158, 2, 0};
  return b;
}

}  // namespace sbd::dacapo
