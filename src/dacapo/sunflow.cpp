// Sunflow analog: CPU-bound ray tracing with no I/O. Worker threads
// claim image tiles from a shared counter, read the scene, and write
// pixels into the shared framebuffer.
//
// In the paper this benchmark has the highest SBD overhead (~100%):
// almost every instruction is a memory access, so lock initialization
// and owned-checks dominate (Table 7: Sunflow has the largest Init and
// Check-Owned counts). The SBD variant reproduces that profile by
// keeping the scene geometry and the framebuffer in managed arrays:
// per-tile rendering first read-locks the scene arrays (lock init +
// acquire the first time, owned checks after) and writes every pixel
// through an element-level write lock.
#include <algorithm>
#include <cmath>
#include <atomic>
#include <memory>
#include <thread>

#include "api/sbd.h"
#include "dacapo/harness.h"
#include "raytrace/raytrace.h"

namespace sbd::dacapo {

namespace {

struct SunflowConfig {
  int width, height;
  int tileRows;  // rows per tile
  uint64_t seed = 424242;
};

SunflowConfig make_config(const Scale& s) {
  SunflowConfig cfg;
  cfg.width = static_cast<int>(s.of(96));
  cfg.height = static_cast<int>(s.of(72));
  // Narrow tiles keep the tile count well above the thread count even
  // at CI scales, so the speedup curves measure synchronization rather
  // than work granularity.
  cfg.tileRows = 2;
  return cfg;
}

// --- Baseline ---------------------------------------------------------------

uint64_t run_baseline_once(const SunflowConfig& cfg, int threads) {
  const raytrace::Scene scene = raytrace::demo_scene(cfg.seed);
  std::vector<uint32_t> image(static_cast<size_t>(cfg.width) * cfg.height);
  std::atomic<int> nextTile{0};
  const int numTiles = (cfg.height + cfg.tileRows - 1) / cfg.tileRows;

  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&] {
      for (;;) {
        const int tile = nextTile.fetch_add(1, std::memory_order_relaxed);
        if (tile >= numTiles) return;
        const int y0 = tile * cfg.tileRows;
        const int y1 = std::min(cfg.height, y0 + cfg.tileRows);
        raytrace::render_rows(scene, cfg.width, cfg.height, y0, y1, image.data());
      }
    });
  }
  for (auto& t : ts) t.join();
  return raytrace::image_checksum(image.data(), image.size());
}

// --- SBD ---------------------------------------------------------------------
//
// Scene geometry lives in managed F64Arrays (struct-of-arrays); the
// renderer re-reads it through the synchronized access path per tile,
// and writes every pixel through tx element writes.

struct SbdScene {
  runtime::GlobalRoot<runtime::F64Array> sphereData;  // 10 doubles per sphere
  runtime::GlobalRoot<runtime::F64Array> lightData;   // 6 doubles per light
  int numSpheres = 0;
  int numLights = 0;
  raytrace::Scene proto;  // planes/camera stay native (constant config)
};

void build_sbd_scene(SbdScene& out, uint64_t seed) {
  out.proto = raytrace::demo_scene(seed);
  // Scene data (spheres, lights) is written once during setup and then
  // only read by the render workers: read locks on a double[] never
  // conflict, so one lock word per array beats one per element. The
  // hint rides on the shared double[] class and only applies when the
  // adaptive planner finds it cold (read-mostly), so other F64Array
  // users are unaffected in fixed modes.
  hint_lock_granularity(runtime::array_class(runtime::ElemKind::kF64),
                        LockGranularity::kObject);
  out.numSpheres = static_cast<int>(out.proto.spheres.size());
  out.numLights = static_cast<int>(out.proto.lights.size());
  run_sbd([&] {
    auto sd = runtime::F64Array::make(static_cast<uint64_t>(out.numSpheres) * 10);
    for (int i = 0; i < out.numSpheres; i++) {
      const auto& sp = out.proto.spheres[static_cast<size_t>(i)];
      const double vals[10] = {sp.center.x,    sp.center.y,     sp.center.z,
                               sp.radius,      sp.mat.color.x,  sp.mat.color.y,
                               sp.mat.color.z, sp.mat.diffuse,  sp.mat.specular,
                               sp.mat.reflect};
      for (int k = 0; k < 10; k++)
        sd.set(static_cast<uint64_t>(i) * 10 + static_cast<uint64_t>(k), vals[k]);
    }
    out.sphereData.set(sd);
    auto ld = runtime::F64Array::make(static_cast<uint64_t>(out.numLights) * 6);
    for (int i = 0; i < out.numLights; i++) {
      const auto& l = out.proto.lights[static_cast<size_t>(i)];
      const double vals[6] = {l.pos.x, l.pos.y, l.pos.z,
                              l.color.x, l.color.y, l.color.z};
      for (int k = 0; k < 6; k++)
        ld.set(static_cast<uint64_t>(i) * 6 + static_cast<uint64_t>(k), vals[k]);
    }
    out.lightData.set(ld);
  });
}

// The managed-scene tracer: the bytecode-transformed equivalent of
// raytrace::trace(). Every sphere/light read goes through the
// synchronized element path PER RAY — within a tile's section the first
// ray acquires the read locks, every later ray pays owned-checks, which
// is exactly the paper's Sunflow profile (Table 7: Check-Owned >> Acq).
// The math mirrors raytrace.cpp operation-for-operation so images are
// bit-identical to the baseline.
struct TxTracer {
  const SbdScene& s;
  core::ThreadContext& tc;  // cached once per worker: scene reads are per-ray

  raytrace::HitInfo intersect_tx(const raytrace::Ray& ray) const {
    raytrace::HitInfo best;
    double bestT = 1e30;
    auto sd = s.sphereData.get();
    for (int i = 0; i < s.numSpheres; i++) {
      const auto base = static_cast<uint64_t>(i) * 10;
      raytrace::Sphere sp;
      sp.center = {sd.get(tc, base), sd.get(tc, base + 1), sd.get(tc, base + 2)};
      sp.radius = sd.get(tc, base + 3);
      double t;
      if (raytrace::hit_sphere(sp, ray, t) && t < bestT) {
        bestT = t;
        best.hit = true;
        best.t = t;
        best.point = ray.origin + ray.dir * t;
        best.normal = (best.point - sp.center).normalized();
        best.mat.color = {sd.get(tc, base + 4), sd.get(tc, base + 5),
                          sd.get(tc, base + 6)};
        best.mat.diffuse = sd.get(tc, base + 7);
        best.mat.specular = sd.get(tc, base + 8);
        best.mat.reflect = sd.get(tc, base + 9);
      }
    }
    for (const raytrace::Plane& pl : s.proto.planes) {
      double t;
      if (raytrace::hit_plane(pl, ray, t) && t < bestT) {
        bestT = t;
        best.hit = true;
        best.t = t;
        best.point = ray.origin + ray.dir * t;
        best.normal = pl.normal.normalized();
        best.mat = pl.mat;
        raytrace::apply_plane_pattern(best);
      }
    }
    return best;
  }

  raytrace::Vec3 trace_tx(const raytrace::Ray& ray, int depth) const {
    const raytrace::HitInfo hit = intersect_tx(ray);
    if (!hit.hit) return s.proto.background;
    raytrace::Vec3 color{0, 0, 0};
    auto ld = s.lightData.get();
    for (int i = 0; i < s.numLights; i++) {
      const auto base = static_cast<uint64_t>(i) * 6;
      const raytrace::Vec3 lightPos{ld.get(tc, base), ld.get(tc, base + 1),
                                    ld.get(tc, base + 2)};
      const raytrace::Vec3 lightColor{ld.get(tc, base + 3), ld.get(tc, base + 4),
                                      ld.get(tc, base + 5)};
      const raytrace::Vec3 toLight = lightPos - hit.point;
      const double dist = toLight.norm();
      const raytrace::Vec3 l = toLight.normalized();
      raytrace::Ray shadow{hit.point + hit.normal * 1e-3, l};
      const raytrace::HitInfo sh = intersect_tx(shadow);
      if (sh.hit && sh.t < dist) continue;
      const double nDotL = hit.normal.dot(l);
      if (nDotL > 0)
        color = color + hit.mat.color.mul(lightColor) * (hit.mat.diffuse * nDotL);
      const raytrace::Vec3 h = (l - ray.dir).normalized();
      const double nDotH = hit.normal.dot(h);
      if (nDotH > 0)
        color = color + lightColor * (hit.mat.specular * std::pow(nDotH, 32.0));
    }
    if (hit.mat.reflect > 0 && depth > 0) {
      const raytrace::Vec3 r = ray.dir - hit.normal * (2.0 * ray.dir.dot(hit.normal));
      raytrace::Ray refl{hit.point + hit.normal * 1e-3, r.normalized()};
      color = color + trace_tx(refl, depth - 1) * hit.mat.reflect;
    }
    return color;
  }
};

uint64_t run_sbd_once(const SbdScene& sbdScene, const SunflowConfig& cfg, int threads) {
  runtime::GlobalRoot<runtime::I64Array> framebuffer;
  runtime::GlobalRoot<runtime::I64Array> nextTile;
  const int numTiles = (cfg.height + cfg.tileRows - 1) / cfg.tileRows;
  run_sbd([&] {
    framebuffer.set(
        runtime::I64Array::make(static_cast<uint64_t>(cfg.width) * cfg.height));
    nextTile.set(runtime::I64Array::make(1));
  });
  {
    std::vector<threads::SbdThread> ts;
    for (int t = 0; t < threads; t++) {
      ts.emplace_back([&] {
        auto& tc = sbd::context();  // one TLS lookup for the whole worker
        for (;;) {
          // Claim a tile; split right after the contended counter.
          const int64_t tile = nextTile.get().get(tc, 0);
          if (tile >= numTiles) break;
          nextTile.get().set(tc, 0, tile + 1);
          split(tc);
          // Every scene read per ray goes through the synchronized path.
          const TxTracer tracer{sbdScene, tc};
          const int y0 = static_cast<int>(tile) * cfg.tileRows;
          const int y1 = std::min(cfg.height, y0 + cfg.tileRows);
          auto fb = framebuffer.get();
          for (int y = y0; y < y1; y++) {
            for (int x = 0; x < cfg.width; x++) {
              const auto px = raytrace::pack_color(tracer.trace_tx(
                  raytrace::camera_ray(sbdScene.proto, x, y, cfg.width, cfg.height),
                  2));
              fb.set(tc,
                     static_cast<uint64_t>(y) * static_cast<uint64_t>(cfg.width) +
                         static_cast<uint64_t>(x),
                     px);
            }
          }
          split(tc);  // release the tile's pixel and scene locks
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  uint64_t sum = 0;
  run_sbd([&] {
    auto& tc = sbd::context();
    std::vector<uint32_t> image(static_cast<size_t>(cfg.width) * cfg.height);
    auto fb = framebuffer.get();
    for (size_t i = 0; i < image.size(); i++)
      image[i] = static_cast<uint32_t>(fb.get(tc, i));
    sum = raytrace::image_checksum(image.data(), image.size());
  });
  return sum;
}

}  // namespace

Benchmark sunflow_benchmark() {
  Benchmark b;
  b.name = "Sunflow";
  b.baseline = [](const Scale& s, int threads) {
    const auto cfg = make_config(s);
    return measure_baseline_run([&] { return run_baseline_once(cfg, threads); });
  };
  b.sbd = [](const Scale& s, int threads) {
    const auto cfg = make_config(s);
    auto scene = std::make_shared<SbdScene>();
    build_sbd_scene(*scene, cfg.seed);
    return measure_sbd_run([&] { return run_sbd_once(*scene, cfg, threads); });
  };
  b.effort = EffortReport{2, 1, 0, 2, 0, 1, 3, 0, 9, 50, 3, 0};
  return b;
}

}  // namespace sbd::dacapo
