// H2 analog: a TPC-C-lite workload against the embedded database.
// Client threads run a mix of new-order and payment transactions via
// the (JDBC-like) connection API.
//
// Both variants drive the SAME database engine — the difference is the
// synchronization model above it: the baseline uses explicit
// begin/commit per business transaction; the SBD variant maps each
// atomic section onto a DB transaction through the transactional
// wrapper (§5.3: the paper integrates JDBC via transactional wrappers,
// which is why H2 shows the lowest SBD overhead — the program spends
// most time inside the database, not in managed memory accesses).
#include <atomic>
#include <memory>
#include <thread>

#include "api/sbd.h"
#include "common/rng.h"
#include "dacapo/harness.h"
#include "db/db.h"
#include "db/txwrapper.h"

namespace sbd::dacapo {

namespace {

struct H2Config {
  int64_t warehouses = 2;
  int64_t districtsPerWh = 4;
  int64_t customersPerDistrict = 20;
  int64_t items = 100;
  uint64_t txnsPerThread;
};

H2Config make_config(const Scale& s) {
  H2Config cfg;
  cfg.txnsPerThread = s.of(80);
  return cfg;
}

std::unique_ptr<db::Database> build_database(const H2Config& cfg) {
  auto database = std::make_unique<db::Database>();
  auto c = database->connect();
  c->execute("CREATE TABLE warehouse (id INT PRIMARY KEY, ytd INT)");
  c->execute("CREATE TABLE district (id INT PRIMARY KEY, wid INT, ytd INT, next_oid INT)");
  c->execute("CREATE TABLE customer (id INT PRIMARY KEY, did INT, balance INT)");
  c->execute("CREATE TABLE stock (id INT PRIMARY KEY, qty INT)");
  c->execute("CREATE TABLE orders (id INT PRIMARY KEY, cid INT, amount INT)");
  for (int64_t w = 0; w < cfg.warehouses; w++)
    c->execute("INSERT INTO warehouse VALUES (?, 0)", {w});
  for (int64_t w = 0; w < cfg.warehouses; w++)
    for (int64_t d = 0; d < cfg.districtsPerWh; d++) {
      const int64_t did = w * cfg.districtsPerWh + d;
      c->execute("INSERT INTO district VALUES (?, ?, 0, ?)", {did, w, did * 1000000});
      for (int64_t cu = 0; cu < cfg.customersPerDistrict; cu++)
        c->execute("INSERT INTO customer VALUES (?, ?, 100)",
                   {did * 1000 + cu, did});
    }
  for (int64_t i = 0; i < cfg.items; i++)
    c->execute("INSERT INTO stock VALUES (?, 1000)", {i});
  return database;
}

// One new-order business transaction: claim an order id from the
// district, decrement the stock of 3 items, insert the order row.
template <typename Exec>
int64_t new_order(Exec&& exec, const H2Config& cfg, Rng& rng) {
  const int64_t did =
      rng.below(static_cast<uint64_t>(cfg.warehouses * cfg.districtsPerWh));
  auto rs = exec("SELECT next_oid FROM district WHERE id = ?", {db::Value{did}});
  const int64_t oid = rs.int_at(0, 0);
  exec("UPDATE district SET next_oid = ? WHERE id = ?", {db::Value{oid + 1}, db::Value{did}});
  int64_t amount = 0;
  for (int k = 0; k < 3; k++) {
    const int64_t item = rng.below(static_cast<uint64_t>(cfg.items));
    auto q = exec("SELECT qty FROM stock WHERE id = ?", {db::Value{item}});
    const int64_t qty = q.int_at(0, 0);
    exec("UPDATE stock SET qty = ? WHERE id = ?",
         {db::Value{qty > 10 ? qty - 1 : qty + 90}, db::Value{item}});
    amount += item + 1;
  }
  const int64_t cid = did * 1000 + rng.below(static_cast<uint64_t>(cfg.customersPerDistrict));
  exec("INSERT INTO orders VALUES (?, ?, ?)",
       {db::Value{oid}, db::Value{cid}, db::Value{amount}});
  return amount;
}

// One payment transaction: move money through warehouse/district/customer.
template <typename Exec>
int64_t payment(Exec&& exec, const H2Config& cfg, Rng& rng) {
  const int64_t w = rng.below(static_cast<uint64_t>(cfg.warehouses));
  const int64_t did =
      rng.below(static_cast<uint64_t>(cfg.warehouses * cfg.districtsPerWh));
  const int64_t cid = did * 1000 + rng.below(static_cast<uint64_t>(cfg.customersPerDistrict));
  const int64_t amount = 1 + static_cast<int64_t>(rng.below(50));
  auto wy = exec("SELECT ytd FROM warehouse WHERE id = ?", {db::Value{w}});
  exec("UPDATE warehouse SET ytd = ? WHERE id = ?",
       {db::Value{wy.int_at(0, 0) + amount}, db::Value{w}});
  auto dy = exec("SELECT ytd FROM district WHERE id = ?", {db::Value{did}});
  exec("UPDATE district SET ytd = ? WHERE id = ?",
       {db::Value{dy.int_at(0, 0) + amount}, db::Value{did}});
  auto cb = exec("SELECT balance FROM customer WHERE id = ?", {db::Value{cid}});
  exec("UPDATE customer SET balance = ? WHERE id = ?",
       {db::Value{cb.int_at(0, 0) - amount}, db::Value{cid}});
  return amount;
}

uint64_t final_checksum(db::Database& database) {
  auto c = database.connect();
  uint64_t sum = 0;
  sum += static_cast<uint64_t>(c->execute("SELECT SUM(ytd) FROM warehouse").int_at(0, 0));
  sum = sum * 31 +
        static_cast<uint64_t>(c->execute("SELECT SUM(ytd) FROM district").int_at(0, 0));
  sum = sum * 31 +
        static_cast<uint64_t>(c->execute("SELECT COUNT(*) FROM orders").int_at(0, 0));
  return sum;
}

uint64_t run_baseline_once(const H2Config& cfg, int threads) {
  auto database = build_database(cfg);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&, t] {
      auto conn = database->connect();
      Rng rng(mix64(1000 + static_cast<uint64_t>(t)));
      for (uint64_t i = 0; i < cfg.txnsPerThread; i++) {
        auto exec = [&](const std::string& sql, const std::vector<db::Value>& p) {
          return conn->execute(sql, p);
        };
        for (;;) {
          try {
            conn->begin();
            if (rng.chance(0.5))
              new_order(exec, cfg, rng);
            else
              payment(exec, cfg, rng);
            conn->commit();
            break;
          } catch (const db::DbDeadlock&) {
            conn->rollback();  // retry the business transaction
          }
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  return final_checksum(*database);
}

uint64_t run_sbd_once(const H2Config& cfg, int threads) {
  auto database = build_database(cfg);
  // A little managed bookkeeping around the DB work (the original
  // benchmark's harness state): per-thread txn counters in a managed
  // array — this is what produces H2's small but nonzero lock-operation
  // counts in Table 7.
  runtime::GlobalRoot<runtime::I64Array> perThread;
  // Each worker bumps its own counter slot, so per-field locks never
  // conflict — which is exactly what makes long[] look cold to the
  // adaptive planner. Striping (instead of a single object lock) keeps
  // distinct threads on distinct words after coarsening; if collapsing
  // ever induces real contention, the planner scorches the class back
  // to field granularity.
  hint_lock_granularity(runtime::array_class(runtime::ElemKind::kI64),
                        LockGranularity::kStriped, 8);
  run_sbd([&] { perThread.set(runtime::I64Array::make(static_cast<uint64_t>(threads))); });
  {
    std::vector<threads::SbdThread> ts;
    for (int t = 0; t < threads; t++) {
      ts.emplace_back([&, t] {
        db::TxDbConnection conn(*database);
        Rng rng(mix64(1000 + static_cast<uint64_t>(t)));
        for (uint64_t i = 0; i < cfg.txnsPerThread; i++) {
          perThread.get().set(static_cast<uint64_t>(t),
                              perThread.get().get(static_cast<uint64_t>(t)) + 1);
          auto exec = [&](const std::string& sql, const std::vector<db::Value>& p) {
            return conn.execute(sql, p);
          };
          // One business transaction per atomic section; a DB deadlock
          // aborts and retries the section inside conn.execute.
          if (rng.chance(0.5))
            new_order(exec, cfg, rng);
          else
            payment(exec, cfg, rng);
          split();  // section end = DB commit
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  return final_checksum(*database);
}

}  // namespace

Benchmark h2_benchmark() {
  Benchmark b;
  b.name = "H2";
  b.baseline = [](const Scale& s, int threads) {
    const auto cfg = make_config(s);
    return measure_baseline_run([&] { return run_baseline_once(cfg, threads); });
  };
  b.sbd = [](const Scale& s, int threads) {
    const auto cfg = make_config(s);
    return measure_sbd_run([&] { return run_sbd_once(cfg, threads); });
  };
  b.effort = EffortReport{1, 1, 0, 0, 0, 0, 1, 0, 39, 14, 1, 0};
  return b;
}

}  // namespace sbd::dacapo
