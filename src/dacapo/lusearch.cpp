// LuSearch analog: N threads execute TF-IDF queries over a pre-built
// index (disk-read workload in the paper; here the index is pre-built
// in memory and each thread reads shared index structures).
//
// Table 4 fixes reproduced in the SBD variant:
//   - the shared message-digest instance becomes thread-local
//     (TxLocalI64 digest accumulator)
//   - the frequently updated directory-cache read/write conflict is
//     resolved by reordering (we read the per-thread digest before the
//     shared counter, so the read lock on the hot counter is acquired
//     last and held briefly)
#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "api/sbd.h"
#include "common/rng.h"
#include "dacapo/harness.h"
#include "jcl/collections.h"
#include "text/analysis.h"
#include "text/index.h"
#include "threads/tx_local.h"

namespace sbd::dacapo {

namespace {

struct LuSearchConfig {
  text::CorpusConfig corpus;
  uint64_t queriesPerThread;
};

LuSearchConfig make_config(const Scale& s) {
  LuSearchConfig cfg;
  cfg.corpus.numDocs = s.of(300);
  cfg.corpus.wordsPerDoc = 80;
  cfg.queriesPerThread = s.of(150);
  return cfg;
}

text::InvertedIndex build_native_index(const text::CorpusConfig& cfg) {
  text::InvertedIndex idx;
  for (uint64_t d = 0; d < cfg.numDocs; d++) {
    std::vector<std::string> terms;
    for (auto& tok : text::generate_document(cfg, d)) terms.push_back(text::stem(tok));
    idx.add_document(static_cast<uint32_t>(d), terms);
  }
  return idx;
}

uint64_t query_checksum(const std::vector<text::SearchHit>& hits) {
  uint64_t h = 0;
  for (const auto& hit : hits) h = h * 31 + hit.docId + 1;
  return h;
}

// --- Baseline ---------------------------------------------------------------

// Same flat-array accumulation algorithm as the SBD variant (only the
// storage differs: native doubles vs managed F64Array), so the Table 9
// overhead measures synchronization, not algorithmic differences.
uint64_t native_query(const text::InvertedIndex& idx,
                      const std::vector<std::string>& terms) {
  std::vector<double> acc(idx.doc_count(), 0.0);
  for (const auto& term : terms) {
    const auto* plist = idx.postings(term);
    if (!plist) continue;
    const auto df = static_cast<uint32_t>(plist->size());
    for (const text::Posting& p : *plist)
      acc[p.docId] +=
          text::tfidf_score(p.termFreq, df, idx.doc_count(), idx.doc_length(p.docId));
  }
  std::vector<text::SearchHit> hits;
  for (uint32_t d = 0; d < idx.doc_count(); d++)
    if (acc[d] != 0) hits.push_back(text::SearchHit{d, acc[d]});
  std::sort(hits.begin(), hits.end(), [](const text::SearchHit& a, const text::SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.docId < b.docId;
  });
  if (hits.size() > 10) hits.resize(10);
  return query_checksum(hits);
}

uint64_t run_baseline_once(const LuSearchConfig& cfg, int threads) {
  const text::InvertedIndex idx = build_native_index(cfg.corpus);
  std::atomic<uint64_t> checksum{0};
  std::atomic<uint64_t> queriesDone{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; t++) {
    ts.emplace_back([&, t] {
      uint64_t localSum = 0;
      for (uint64_t q = 0; q < cfg.queriesPerThread; q++) {
        std::vector<std::string> terms;
        for (auto& w : text::generate_query(cfg.corpus,
                                            static_cast<uint64_t>(t) * 100000 + q))
          terms.push_back(text::stem(w));
        localSum += native_query(idx, terms);
        queriesDone.fetch_add(1, std::memory_order_relaxed);
      }
      checksum.fetch_add(localSum, std::memory_order_relaxed);
    });
  }
  for (auto& t : ts) t.join();
  return checksum.load() + queriesDone.load();
}

// --- SBD ---------------------------------------------------------------------
//
// The managed index mirrors luindex's layout: MStrMap term -> MVector of
// packed postings (doc, tf), built once before the measured region.

class Posting2 : public runtime::TypedRef<Posting2> {
 public:
  SBD_CLASS(Posting2, SBD_SLOT_FINAL("doc"), SBD_SLOT_FINAL("tf"))
  SBD_FIELD_FINAL_I64(0, doc)
  SBD_FIELD_FINAL_I64(1, tf)
  static Posting2 make(int64_t doc, int64_t tf) {
    // Read-only after construction (both slots final): coarsening to
    // one lock word shrinks the index's lock arrays with no acquire
    // cost. No-op unless SBD_LOCK_GRANULARITY=adaptive.
    static const bool kHinted =
        (hint_lock_granularity(klass(), LockGranularity::kObject), true);
    (void)kHinted;
    Posting2 p = alloc();
    p.init_doc(doc);
    p.init_tf(tf);
    return p;
  }
};

struct SbdIndex {
  runtime::GlobalRoot<jcl::MStrMap> postings;
  runtime::GlobalRoot<runtime::I64Array> docLens;
  uint32_t numDocs = 0;
};

void build_sbd_index(SbdIndex& out, const text::CorpusConfig& cfg) {
  out.numDocs = static_cast<uint32_t>(cfg.numDocs);
  run_sbd([&] {
    out.postings.set(jcl::MStrMap::make(256));
    out.docLens.set(runtime::I64Array::make(cfg.numDocs));
    for (uint64_t d = 0; d < cfg.numDocs; d++) {
      {
        // Restore-safety: token containers close before the split.
        std::vector<std::string> terms;
        for (auto& tok : text::generate_document(cfg, d))
          terms.push_back(text::stem(tok));
        out.docLens.get().set(d, static_cast<int64_t>(terms.size()));
        std::map<std::string, int64_t> tf;
        for (auto& t : terms) tf[t]++;
        for (auto& [term, freq] : tf) {
          auto* vecRaw = out.postings.get().get_or_put(
              term, [] { return jcl::MVector::make(4).raw(); });
          jcl::MVector(vecRaw).push(Posting2::make(static_cast<int64_t>(d), freq).raw());
        }
      }
      if (d % 16 == 0) split();
    }
  });
}

uint64_t sbd_query(const SbdIndex& idx, const std::vector<std::string>& terms) {
  // The per-query score accumulator is a fresh managed array, as it
  // would be in Java — which is why the Lucene pair dominates the
  // Check-New column of Table 7: scratch state allocated inside the
  // section needs only the null check (Table 1 "new instance" row).
  auto acc = runtime::F64Array::make(idx.numDocs);
  for (const auto& term : terms) {
    auto* vecRaw = idx.postings.get().get(term);
    if (!vecRaw) continue;
    jcl::MVector vec(vecRaw);
    const auto df = static_cast<uint32_t>(vec.size());
    for (int64_t i = 0; i < static_cast<int64_t>(df); i++) {
      Posting2 p = vec.at<Posting2>(i);
      const auto doc = static_cast<uint32_t>(p.doc());
      acc.set(doc, acc.get(doc) + text::tfidf_score(
                                       static_cast<uint32_t>(p.tf()), df, idx.numDocs,
                                       static_cast<uint64_t>(idx.docLens.get().get(doc))));
    }
  }
  // Same selection semantics as text::top_k over the map-based baseline:
  // untouched docs (score 0) are "absent".
  std::vector<text::SearchHit> hits;
  for (uint32_t d = 0; d < idx.numDocs; d++) {
    const double s = acc.get(d);
    if (s != 0) hits.push_back(text::SearchHit{d, s});
  }
  std::sort(hits.begin(), hits.end(), [](const text::SearchHit& a, const text::SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.docId < b.docId;
  });
  if (hits.size() > 10) hits.resize(10);
  return query_checksum(hits);
}

uint64_t run_sbd_once(const SbdIndex& idx, const LuSearchConfig& cfg, int threads) {
  static threads::TxLocalI64 digest;  // Table 4: thread-local message digest
  runtime::GlobalRoot<runtime::I64Array> shared;
  run_sbd([&] {
    shared.set(runtime::I64Array::make(2));  // [0] queriesDone, [1] checksum
  });
  {
    std::vector<threads::SbdThread> ts;
    for (int t = 0; t < threads; t++) {
      ts.emplace_back([&, t] {
        digest.set(0);
        for (uint64_t q = 0; q < cfg.queriesPerThread; q++) {
          uint64_t sum;
          {
            // Restore-safety: term strings die before the split below.
            std::vector<std::string> terms;
            for (auto& w : text::generate_query(cfg.corpus,
                                                static_cast<uint64_t>(t) * 100000 + q))
              terms.push_back(text::stem(w));
            sum = sbd_query(idx, terms);
          }
          // Thread-local digest instead of a shared instance (Table 4).
          digest.add(static_cast<int64_t>(sum));
          // Hot shared counter last, then split immediately (fix #1 in
          // §5.2: split as soon as possible after the contended access).
          shared.get().set(0, shared.get().get(0) + 1);
          split();
        }
        // Aggregate once at the end.
        shared.get().set(1, shared.get().get(1) + digest.get());
        split();
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  uint64_t result = 0;
  run_sbd([&] {
    result = static_cast<uint64_t>(shared.get().get(1)) +
             static_cast<uint64_t>(shared.get().get(0));
  });
  return result;
}

}  // namespace

Benchmark lusearch_benchmark() {
  Benchmark b;
  b.name = "LuSearch";
  b.baseline = [](const Scale& s, int threads) {
    const auto cfg = make_config(s);
    return measure_baseline_run([&] { return run_baseline_once(cfg, threads); });
  };
  b.sbd = [](const Scale& s, int threads) {
    const auto cfg = make_config(s);
    // Index construction is setup, not the measured workload.
    auto idx = std::make_shared<SbdIndex>();
    build_sbd_index(*idx, cfg.corpus);
    return measure_sbd_run([&] { return run_sbd_once(*idx, cfg, threads); });
  };
  b.effort = EffortReport{4, 1, 2, 2, 0, 2, 4, 2, 2, 46, 9, 4};
  return b;
}

}  // namespace sbd::dacapo
