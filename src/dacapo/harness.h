// The benchmark harness for the six DaCapo analogs (§5.1).
//
// Each benchmark comes in two variants over identical deterministic
// workloads:
//   baseline — explicit synchronization (std::mutex / std::atomic),
//              plain native data structures
//   sbd      — everything inside atomic sections on the managed
//              runtime, concurrency via splits
// Both variants return a workload checksum so tests can assert they
// computed the same result.
//
// The harness measures steady-state time (Georges et al., as in the
// paper's §5.1), collects the STM per-effect counters (Table 7), the
// transaction-footprint gauges (Table 8), conflict counters (Table 9),
// and the virtual-time model inputs (Figure 7 on a small host).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/timing.h"
#include "core/stats.h"
#include "vtm/vtm.h"

namespace sbd::dacapo {

// Workload scale: 1.0 reproduces the default sizes; benches pass
// smaller values for quick runs.
struct Scale {
  double factor = 1.0;

  uint64_t of(uint64_t base) const {
    const auto v = static_cast<uint64_t>(static_cast<double>(base) * factor);
    return v < 1 ? 1 : v;
  }
};

struct RunResult {
  double seconds = 0;
  uint64_t checksum = 0;
  core::StatsCounters stm;      // SBD variant only (diff over the run)
  vtm::ModelInput vtm;          // SBD variant only
  uint64_t lockStructBytes = 0;  // gauge delta (Table 8 "Locks")
  uint64_t versionWordBytes = 0; // gauge delta (Table 8 "VersionWords")
};

// The Table 5 effort accounting of our ports, alongside the paper's
// numbers for the original Java benchmarks.
struct EffortReport {
  int splits = 0;       // split operations in the SBD variant
  int canSplits = 0;    // canSplit-scoped functions
  int customMods = 0;   // Table 4-style custom changes
  int finals = 0;       // final-marked fields
  int baselineMutexes = 0;   // synchronized analog in the baseline
  int baselineAtomics = 0;   // volatile analog in the baseline
  // The paper's numbers for the original benchmark (for the table).
  int paperSplits = 0, paperCustom = 0, paperCanSplit = 0, paperFinal = 0;
  int paperSync = 0, paperVolatile = 0;
};

struct Benchmark {
  std::string name;
  bool fixedThreads = false;  // LuIndex: fixed main + worker
  std::function<RunResult(const Scale&, int threads)> baseline;
  std::function<RunResult(const Scale&, int threads)> sbd;
  EffortReport effort;
};

// All six benchmarks in the paper's order.
std::vector<Benchmark> all_benchmarks();
Benchmark luindex_benchmark();
Benchmark lusearch_benchmark();
Benchmark pmd_benchmark();
Benchmark sunflow_benchmark();
Benchmark h2_benchmark();
Benchmark tomcat_benchmark();

// Runs `run` with STM/vtm accounting wrapped around it.
RunResult measure_sbd_run(const std::function<uint64_t()>& run);
RunResult measure_baseline_run(const std::function<uint64_t()>& run);

}  // namespace sbd::dacapo
