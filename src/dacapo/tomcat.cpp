// Tomcat analog: an HTTP server over the in-memory network. N server
// workers accept and serve requests; N client threads issue GETs with
// session cookies. Each request bumps its session counter, consults the
// string manager, updates request statistics, and returns a page.
//
// Paper behaviors reproduced:
//   - 2*N threads total: at N=32 the 56-transaction-id ceiling of the
//     STM is exceeded, which is exactly why the paper's Tomcat stops
//     scaling at 32 threads (§5.4)
//   - Table 4 fixes: per-thread statistics counters aggregated on read,
//     one connection per client thread, string-manager cache DISABLED
//     in the SBD variant, initialization flag set only once
//   - the response is only visible to the client after the serving
//     section splits (transactional socket, §4.4)
#include <atomic>
#include <memory>
#include <thread>

#include "api/sbd.h"
#include "common/rng.h"
#include "dacapo/harness.h"
#include "jcl/collections.h"
#include "net/http.h"
#include "net/loopback.h"
#include "threads/tx_local.h"

namespace sbd::dacapo {

namespace {

struct TomcatConfig {
  uint64_t requestsPerClient;
  int basePort;
};

TomcatConfig make_config(const Scale& s, int basePort) {
  TomcatConfig cfg;
  cfg.requestsPerClient = s.of(60);
  cfg.basePort = basePort;
  return cfg;
}

// "JSP rendering": the per-request computation of the original
// benchmark (statically compiled pages, per the paper's Table 3 mod) —
// template expansion over locals, identical in both variants.
std::string make_page(const std::string& sid, int64_t count, const std::string& status) {
  std::string page = "<html><body><h1>session " + sid + "</h1>";
  uint64_t style = 0;
  for (int row = 0; row < 24; row++) {
    page += "<tr class=c" + std::to_string(row % 4) + "><td>item-" +
            std::to_string(row) + "</td><td>" + std::to_string(count * row) +
            "</td></tr>";
    style = style * 131 + static_cast<uint64_t>(page.size());
  }
  page += "<p>visits=" + std::to_string(count) + " " + status + " s" +
          std::to_string(style % 97) + "</p></body></html>";
  return page;
}

// --- Baseline ---------------------------------------------------------------

uint64_t run_baseline_once(const TomcatConfig& cfg, int threads) {
  auto listener = net::Network::instance().listen(cfg.basePort);
  net::SessionStore sessions;
  net::StringManager strings(/*enableCache=*/true);
  std::mutex stateMu;
  std::atomic<uint64_t> requestsServed{0};
  std::atomic<bool> initialized{false};

  std::vector<std::thread> servers;
  for (int t = 0; t < threads; t++) {
    servers.emplace_back([&] {
      for (;;) {
        net::Socket sock = listener.accept();
        if (!sock.valid()) return;
        for (;;) {
          net::HttpRequest req;
          auto readFn = [&](void* out, size_t n) { return sock.read(out, n); };
          if (!net::read_request(readFn, req)) break;
          if (!initialized.exchange(true)) { /* one-time init flag */
          }
          std::string page;
          {
            std::lock_guard<std::mutex> lk(stateMu);
            const std::string sid = req.headers.count("Cookie")
                                        ? req.headers["Cookie"]
                                        : "anon";
            const int64_t count = sessions.bump(sid);
            page = make_page(sid, count, strings.status_message(200, "ok"));
          }
          requestsServed.fetch_add(1, std::memory_order_relaxed);
          net::HttpResponse resp;
          resp.body = page;
          sock.write(net::serialize(resp));
        }
        sock.close();
      }
    });
  }

  std::atomic<uint64_t> checksum{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; t++) {
    clients.emplace_back([&, t] {
      net::Socket sock = net::Network::instance().connect(cfg.basePort);
      uint64_t sum = 0;
      for (uint64_t r = 0; r < cfg.requestsPerClient; r++) {
        net::HttpRequest req;
        req.method = "GET";
        req.path = "/visit";
        req.headers["Cookie"] = "sid-" + std::to_string(t);
        sock.write(net::serialize(req));
        net::HttpResponse resp;
        auto readFn = [&](void* out, size_t n) { return sock.read(out, n); };
        if (!net::read_response(readFn, resp)) break;
        sum += sbd::fnv1a(resp.body);
      }
      sock.close();
      checksum.fetch_add(sum, std::memory_order_relaxed);
    });
  }
  for (auto& c : clients) c.join();
  listener.close();
  for (auto& s : servers) s.join();
  return checksum.load() + requestsServed.load();
}

// --- SBD ---------------------------------------------------------------------

uint64_t run_sbd_once(const TomcatConfig& cfg, int threads) {
  const int port = cfg.basePort + 1;
  auto listener = net::Network::instance().listen(port);
  // Managed session store (string -> counter cell).
  runtime::GlobalRoot<jcl::MStrMap> sessions;
  runtime::GlobalRoot<runtime::I64Array> initFlag;
  runtime::GlobalRoot<runtime::I64Array> totals;
  static threads::TxLocalI64 localServed;  // Table 4: thread-local statistics
  run_sbd([&] {
    sessions.set(jcl::MStrMap::make(64));
    initFlag.set(runtime::I64Array::make(1));
    totals.set(runtime::I64Array::make(1));
  });
  // String manager without cache (Table 4 "Remove": the cache is a
  // shared-map write on every request and kills scalability under SBD).
  net::StringManager strings(/*enableCache=*/false);

  class Counter : public runtime::TypedRef<Counter> {
   public:
    SBD_CLASS(TomcatCounter, SBD_SLOT("n"))
    SBD_FIELD_I64(0, n)
  };
  // Session counters are single-slot, so object == field here; the
  // explicit hint pins that down against future slot additions and
  // exercises the per-benchmark annotation path. No-op unless
  // SBD_LOCK_GRANULARITY=adaptive.
  hint_lock_granularity(Counter::klass(), LockGranularity::kObject);

  std::vector<threads::SbdThread> servers;
  for (int t = 0; t < threads; t++) {
    servers.emplace_back([&] {
      for (;;) {
        net::TxSocket* sockPtr = nullptr;
        // Accepting is waiting for a peer: release the transaction id
        // while blocked (same §3.5 rule as condition waits). The
        // wrapper is created INSIDE the blocked callback — before the
        // new section's checkpoint — so an abort-retry of the first
        // request finds the SAME wrapper (whose rearmed replay buffer
        // holds the consumed request bytes), never a fresh one.
        auto& tc = core::tls_context();
        core::split_section_releasing_id(tc, [&] {
          core::Safepoint::SafeScope safe(tc);
          net::Socket raw = listener.accept();
          if (raw.valid()) sockPtr = new net::TxSocket(raw);
        });
        if (!sockPtr) {
          // Push the thread-local statistics into the shared total
          // before exiting (aggregate-on-read, Table 4).
          totals.get().set(0, totals.get().get(0) + localServed.get());
          return;
        }
        net::TxSocket& sock = *sockPtr;
        for (;;) {
          bool served = false;
          // Restore-safety: all heap-owning locals close before the
          // split, so an abort of the next section (a session-map duel,
          // say) never re-unwinds live strings. An abort DURING the
          // scope rolls back to the previous split and re-reads the
          // same request bytes from the socket's replay buffer (§4.4).
          {
            net::HttpRequest req;
            auto readFn = [&](void* out, size_t n) { return sock.read(out, n); };
            if (net::read_request(readFn, req)) {
              // One-time initialization flag, set only once (Table 4
              // "Frequency": test-then-set avoids a write conflict on
              // every request).
              if (initFlag.get().get(0) == 0) initFlag.get().set(0, 1);
              const std::string sid =
                  req.headers.count("Cookie") ? req.headers["Cookie"] : "anon";
              auto* cellRaw = sessions.get().get_or_put(sid, [] {
                Counter c = Counter::alloc();
                c.init_n(0);
                return c.raw();
              });
              Counter cell(cellRaw);
              cell.set_n(cell.n() + 1);
              net::HttpResponse resp;
              resp.body = make_page(sid, cell.n(), strings.status_message(200, "ok"));
              localServed.add(1);  // thread-local statistics (Table 4)
              sock.write(net::serialize(resp));
              served = true;
            }
          }
          if (!served) break;
          // The response reaches the wire only now — and the session
          // locks release — when the section splits (§3.4).
          split();
        }
        sock.close();
        split();
        delete sockPtr;  // no abort can target the window after this split
      }
    });
  }

  std::atomic<uint64_t> checksum{0};
  std::vector<threads::SbdThread> clients;
  for (int t = 0; t < threads; t++) {
    clients.emplace_back([&, t] {
      // Heap-hosted wrapper + deferred connect: the retry of an aborted
      // first section must not open a second connection.
      auto* sockPtr = new net::TxSocket();
      net::TxSocket& sock = *sockPtr;
      sock.connect(port);
      split();  // connection established at this commit
      uint64_t sum = 0;
      for (uint64_t r = 0; r < cfg.requestsPerClient; r++) {
        {
          // Restore-safety: request strings die before the split.
          net::HttpRequest req;
          req.method = "GET";
          req.path = "/visit";
          req.headers["Cookie"] = "sid-" + std::to_string(t);
          sock.write(net::serialize(req));
        }
        split();  // the request must reach the wire before we block on
                  // the response (transactional output, §3.4)
        bool got;
        {
          net::HttpResponse resp;
          auto readFn = [&](void* out, size_t n) { return sock.read(out, n); };
          got = net::read_response(readFn, resp);
          if (got) sum += sbd::fnv1a(resp.body);
        }
        if (!got) break;
        split();
      }
      sock.close();
      split();
      delete sockPtr;
      checksum.fetch_add(sum, std::memory_order_relaxed);
    });
  }

  for (auto& s : servers) s.start();
  for (auto& c : clients) c.start();
  for (auto& c : clients) c.join();
  listener.close();
  for (auto& s : servers) s.join();

  uint64_t served = 0;
  run_sbd([&] { served = static_cast<uint64_t>(totals.get().get(0)); });
  return checksum.load() + served;
}

}  // namespace

Benchmark tomcat_benchmark() {
  Benchmark b;
  b.name = "Tomcat";
  b.baseline = [](const Scale& s, int threads) {
    const auto cfg = make_config(s, 9100);
    return measure_baseline_run([&] { return run_baseline_once(cfg, threads); });
  };
  b.sbd = [](const Scale& s, int threads) {
    const auto cfg = make_config(s, 9300);
    return measure_sbd_run([&] { return run_sbd_once(cfg, threads); });
  };
  b.effort = EffortReport{6, 2, 4, 1, 1, 3, 15, 11, 50, 333, 140, 6};
  return b;
}

}  // namespace sbd::dacapo
