// Building blocks for transactional wrappers (§3.4, §4.4).
//
// The wrapper scheme the paper prescribes:
//   1. adapter with the same interface, forwarding each call;
//   2. a buffer B saving state before modification;
//   3. irreversible modifications are deferred to section end;
//   4. commit applies deferred operations and clears B, rollback
//      restores from B.
//
// Output devices use a deferral buffer B_W (writes apply at commit);
// input devices use a replay buffer B_R (consumed input is re-served
// after an abort until exhausted).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/resource.h"
#include "core/transaction.h"

namespace sbd::tio {

// Registers `r` with the calling thread's active transaction (no-op if
// none is active: bootstrap code performs effects directly).
inline bool register_with_txn(core::TxResource* r) {
  auto* tc = core::tls_context_if_present();
  if (!tc || !tc->txn.active()) return false;
  tc->txn.add_resource(r);
  return true;
}

// A write-deferral buffer (B_W): bytes appended during the section,
// flushed to the sink at commit, discarded at abort.
class DeferBuffer {
 public:
  void append(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  void append(std::string_view s) { append(s.data(), s.size()); }
  bool empty() const { return buf_.empty(); }
  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  void clear() { buf_.clear(); }

 private:
  std::vector<uint8_t> buf_;
};

// A read-replay buffer (B_R): input consumed during a section is kept;
// on abort it is rearmed so the retry reads the same bytes; on commit
// it is discarded (paper §4.4 network-read example).
class ReplayBuffer {
 public:
  // Records freshly consumed input. The bytes were already delivered to
  // the caller, so the serve position advances past them: they are only
  // re-served after on_abort() rewinds.
  void consumed(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
    pos_ = buf_.size();
  }

  // Serves up to n replayed bytes into out; returns bytes served.
  size_t serve(void* out, size_t n) {
    const size_t avail = buf_.size() - pos_;
    const size_t take = n < avail ? n : avail;
    if (take) {
      __builtin_memcpy(out, buf_.data() + pos_, take);
      pos_ += take;
    }
    return take;
  }

  bool exhausted() const { return pos_ >= buf_.size(); }
  size_t size() const { return buf_.size(); }

  void on_commit() {
    buf_.clear();
    pos_ = 0;
  }
  void on_abort() { pos_ = 0; }  // rearm: replay from the start

 private:
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
};

}  // namespace sbd::tio
