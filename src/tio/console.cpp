#include "tio/console.h"

#include <cstdio>
#include <mutex>

#include "tio/deferred.h"

namespace sbd::tio {

namespace {

std::mutex gSinkMu;
bool gCapture = false;
std::string gCaptured;

void sink_write(const char* data, size_t n) {
  std::lock_guard<std::mutex> lk(gSinkMu);
  if (gCapture)
    gCaptured.append(data, n);
  else
    std::fwrite(data, 1, n, stdout);
}

// Per-thread console section buffer, registered with the active
// transaction on first use in each section.
class ConsoleSection final : public core::TxResource {
 public:
  void print(std::string_view s) {
    if (register_with_txn(this)) {
      buf_.append(s);
    } else {
      sink_write(s.data(), s.size());  // outside any section: direct
    }
  }

  void on_commit() override {
    if (!buf_.empty()) {
      sink_write(reinterpret_cast<const char*>(buf_.bytes().data()), buf_.size());
      buf_.clear();
    }
  }

  void on_abort() override { buf_.clear(); }

  size_t buffered_bytes() const override { return buf_.size(); }

 private:
  DeferBuffer buf_;
};

ConsoleSection& tls_console() {
  thread_local ConsoleSection cs;
  return cs;
}

}  // namespace

void TxConsole::print(std::string_view s) { tls_console().print(s); }

void TxConsole::println(std::string_view s) {
  tls_console().print(s);
  tls_console().print("\n");
}

void TxConsole::capture_to_string(bool enable) {
  std::lock_guard<std::mutex> lk(gSinkMu);
  gCapture = enable;
}

std::string TxConsole::captured() {
  std::lock_guard<std::mutex> lk(gSinkMu);
  return gCaptured;
}

void TxConsole::clear_captured() {
  std::lock_guard<std::mutex> lk(gSinkMu);
  gCaptured.clear();
}

size_t TxConsole::pending_bytes() { return tls_console().buffered_bytes(); }

}  // namespace sbd::tio
