#include "tio/file.h"

#include "common/check.h"
#include "core/fault.h"

namespace sbd::tio {

namespace {
// Bound on injected transient (EINTR-style) errors per operation, so a
// fault plan with rate 1.0 still terminates: real kernels also don't
// return EINTR forever.
constexpr int kMaxTransientErrors = 3;
}  // namespace

// ---------------------------------------------------------------------------
// TxFileWriter
// ---------------------------------------------------------------------------

TxFileWriter::TxFileWriter(std::string path) : path_(std::move(path)) {
  fp_ = std::fopen(path_.c_str(), "wb");
  SBD_CHECK_MSG(fp_ != nullptr, "TxFileWriter: cannot open file");
}

TxFileWriter::~TxFileWriter() {
  if (fp_) std::fclose(fp_);
}

void TxFileWriter::write(std::string_view data) { write(data.data(), data.size()); }

void TxFileWriter::write(const void* data, size_t n) {
  if (register_with_txn(this)) {
    buf_.append(data, n);  // deferred: applied at commit
  } else {
    std::lock_guard<std::mutex> lk(fileMu_);
    std::fwrite(data, 1, n, fp_);
    committed_ += n;
  }
}

void TxFileWriter::on_commit() {
  if (buf_.empty()) return;
  std::lock_guard<std::mutex> lk(fileMu_);
  // Commit must not fail (the STM has already decided to commit), so
  // injected faults here are the *recoverable* kinds a real write loop
  // faces: transient errors (retried) and short writes (continued).
  size_t off = 0;
  size_t left = buf_.size();
  int transient = 0;
  while (left > 0) {
    if (transient < kMaxTransientErrors &&
        fault::should_fire(fault::Site::kFileError)) {
      transient++;
      continue;  // EINTR: nothing written, try again
    }
    size_t chunk = left;
    if (left > 1 && fault::should_fire(fault::Site::kFileShortWrite))
      chunk = 1 + left / 2;  // the kernel took only part of the buffer
    const size_t wrote = std::fwrite(buf_.bytes().data() + off, 1, chunk, fp_);
    SBD_CHECK_MSG(wrote == chunk, "TxFileWriter: write failed at commit");
    off += wrote;
    left -= wrote;
  }
  std::fflush(fp_);
  committed_ += buf_.size();
  buf_.clear();
}

void TxFileWriter::on_abort() { buf_.clear(); }

// ---------------------------------------------------------------------------
// TxFileReader
// ---------------------------------------------------------------------------

TxFileReader::TxFileReader(std::string path) : path_(std::move(path)) {
  fp_ = std::fopen(path_.c_str(), "rb");
}

TxFileReader::~TxFileReader() {
  if (fp_) std::fclose(fp_);
}

size_t TxFileReader::read(void* out, size_t n) {
  SBD_CHECK_MSG(fp_ != nullptr, "TxFileReader: file not open");
  const bool inTxn = register_with_txn(this);
  size_t got = 0;
  if (inTxn) got = replay_.serve(out, n);  // replayed bytes first
  if (got < n) {
    // Fault plan: transient read errors, retried like EINTR.
    for (int transient = 0; transient < kMaxTransientErrors &&
                            fault::should_fire(fault::Site::kFileError);)
      transient++;
    const size_t fresh =
        std::fread(static_cast<uint8_t*>(out) + got, 1, n - got, fp_);
    if (inTxn && fresh)
      replay_.consumed(static_cast<uint8_t*>(out) + got, fresh);
    got += fresh;
  }
  return got;
}

bool TxFileReader::read_line(std::string& out) {
  out.clear();
  char c;
  while (read(&c, 1) == 1) {
    if (c == '\n') return true;
    out.push_back(c);
  }
  return !out.empty();
}

void TxFileReader::on_commit() { replay_.on_commit(); }

void TxFileReader::on_abort() { replay_.on_abort(); }

}  // namespace sbd::tio
