#include "tio/file.h"

#include "common/check.h"

namespace sbd::tio {

// ---------------------------------------------------------------------------
// TxFileWriter
// ---------------------------------------------------------------------------

TxFileWriter::TxFileWriter(std::string path) : path_(std::move(path)) {
  fp_ = std::fopen(path_.c_str(), "wb");
  SBD_CHECK_MSG(fp_ != nullptr, "TxFileWriter: cannot open file");
}

TxFileWriter::~TxFileWriter() {
  if (fp_) std::fclose(fp_);
}

void TxFileWriter::write(std::string_view data) { write(data.data(), data.size()); }

void TxFileWriter::write(const void* data, size_t n) {
  if (register_with_txn(this)) {
    buf_.append(data, n);  // deferred: applied at commit
  } else {
    std::lock_guard<std::mutex> lk(fileMu_);
    std::fwrite(data, 1, n, fp_);
    committed_ += n;
  }
}

void TxFileWriter::on_commit() {
  if (buf_.empty()) return;
  std::lock_guard<std::mutex> lk(fileMu_);
  std::fwrite(buf_.bytes().data(), 1, buf_.size(), fp_);
  std::fflush(fp_);
  committed_ += buf_.size();
  buf_.clear();
}

void TxFileWriter::on_abort() { buf_.clear(); }

// ---------------------------------------------------------------------------
// TxFileReader
// ---------------------------------------------------------------------------

TxFileReader::TxFileReader(std::string path) : path_(std::move(path)) {
  fp_ = std::fopen(path_.c_str(), "rb");
}

TxFileReader::~TxFileReader() {
  if (fp_) std::fclose(fp_);
}

size_t TxFileReader::read(void* out, size_t n) {
  SBD_CHECK_MSG(fp_ != nullptr, "TxFileReader: file not open");
  const bool inTxn = register_with_txn(this);
  size_t got = 0;
  if (inTxn) got = replay_.serve(out, n);  // replayed bytes first
  if (got < n) {
    const size_t fresh =
        std::fread(static_cast<uint8_t*>(out) + got, 1, n - got, fp_);
    if (inTxn && fresh)
      replay_.consumed(static_cast<uint8_t*>(out) + got, fresh);
    got += fresh;
  }
  return got;
}

bool TxFileReader::read_line(std::string& out) {
  out.clear();
  char c;
  while (read(&c, 1) == 1) {
    if (c == '\n') return true;
    out.push_back(c);
  }
  return !out.empty();
}

void TxFileReader::on_commit() { replay_.on_commit(); }

void TxFileReader::on_abort() { replay_.on_abort(); }

}  // namespace sbd::tio
