// Transactional console output.
//
// Output printed inside an atomic section becomes visible only when the
// section ends (§3.4 consequence 1). Each thread aggregates output in a
// per-section buffer and flushes it atomically at commit — the paper's
// reusable thread-local OutputStream aggregation (Table 4, JCL row).
#pragma once

#include <string>
#include <string_view>

#include "core/resource.h"

namespace sbd::tio {

class TxConsole {
 public:
  // Prints transactionally: buffered until the section commits, or
  // immediately when called outside a section.
  static void print(std::string_view s);
  static void println(std::string_view s);

  // Redirects committed output into a string (for tests); returns the
  // previously captured content when disabling.
  static void capture_to_string(bool enable);
  static std::string captured();
  static void clear_captured();

  // Bytes currently buffered by the calling thread's section.
  static size_t pending_bytes();
};

}  // namespace sbd::tio
