// Transactional file I/O wrappers (§4.4).
//
//   TxFileWriter — writes are deferred in B_W and applied (appended) at
//                  commit; an abort discards the buffer, so a rolled-
//                  back section leaves no trace in the file.
//   TxFileReader — reads consume the real stream but are recorded in
//                  B_R; an abort rearms B_R so the retry reads the same
//                  bytes; commit discards the consumed prefix.
//
// The wrappers hand-implement the four-step scheme of §4.4: adapter,
// save-before-modify buffer, deferral of irreversible actions,
// commit/rollback hooks.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>

#include "core/resource.h"
#include "tio/deferred.h"

namespace sbd::tio {

class TxFileWriter final : public core::TxResource {
 public:
  // Opens (creates/truncates) `path` for appending committed sections.
  explicit TxFileWriter(std::string path);
  ~TxFileWriter() override;
  TxFileWriter(const TxFileWriter&) = delete;
  TxFileWriter& operator=(const TxFileWriter&) = delete;

  // Transactional append (deferred to commit inside a section).
  void write(std::string_view data);
  void write(const void* data, size_t n);

  void on_commit() override;
  void on_abort() override;
  size_t buffered_bytes() const override { return buf_.size(); }

  // Committed file size so far (bytes actually on disk).
  uint64_t committed_bytes() const { return committed_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* fp_;
  std::mutex fileMu_;
  DeferBuffer buf_;
  uint64_t committed_ = 0;
};

class TxFileReader final : public core::TxResource {
 public:
  explicit TxFileReader(std::string path);
  ~TxFileReader() override;
  TxFileReader(const TxFileReader&) = delete;
  TxFileReader& operator=(const TxFileReader&) = delete;

  bool ok() const { return fp_ != nullptr; }

  // Transactional read: serves replayed bytes first, then the stream.
  // Returns bytes read (0 at EOF).
  size_t read(void* out, size_t n);

  // Reads one '\n'-terminated line (without the terminator); returns
  // false at EOF.
  bool read_line(std::string& out);

  void on_commit() override;
  void on_abort() override;
  size_t buffered_bytes() const override { return replay_.size(); }

 private:
  std::string path_;
  std::FILE* fp_;
  ReplayBuffer replay_;
};

}  // namespace sbd::tio
