// il_demo — the compiler-pipeline walkthrough: assemble an SBD-IL
// program from text, verify the canSplit rules, insert the STM
// interface, run the paper's §3.3 optimizations, and execute both
// versions against the real STM, printing the lock-operation savings.
#include <cstdio>

#include "api/sbd.h"
#include "il/asm.h"
#include "il/interp.h"
#include "il/opt.h"
#include "il/transform.h"
#include "il/verify.h"

using namespace sbd;

namespace {

const char* kProgram = R"(
  # Accumulate a scaled array into an object's field.
  fn scale(x) {
    three = 3
    r = mul x three
    ret r
  }

  fn accumulate(p, arr, n) canSplit {
  entry:
    i = 0
    one = 1
    br loop
  loop:
    sum = getf p.0          # invariant base: lock is hoistable
    setf p.1 = sum
    e = gete arr[i]
    s = call scale (e)
    sum = add sum s
    setf p.0 = sum
    i = add i one
    c = lt i n
    cbr c loop done
  done:
    r = getf p.0
    ret r
  }
)";

uint64_t run_and_count(const il::Module& m, runtime::ManagedObject* obj,
                       runtime::ManagedObject* arr, int64_t n, int64_t* result) {
  uint64_t ops = 0;
  run_sbd([&] {
    auto& tc = core::tls_context();
    const auto before = tc.stats;
    *result = il::execute(m, "accumulate",
                          {reinterpret_cast<int64_t>(obj),
                           reinterpret_cast<int64_t>(arr), n});
    const auto after = tc.stats;
    ops = (after.acqRls - before.acqRls) + (after.checkOwned - before.checkOwned) +
          (after.checkNew - before.checkNew) + (after.lockInit - before.lockInit);
  });
  return ops;
}

}  // namespace

int main() {
  SBD_ATTACH_THREAD();
  constexpr int64_t kN = 1000;

  il::Module plain, optimized;
  il::assemble(plain, kProgram);
  il::assemble(optimized, kProgram);

  const auto diags = il::verify(plain);
  if (!diags.empty()) {
    for (const auto& d : diags) std::printf("verify: %s\n", d.c_str());
    return 1;
  }

  il::insert_locks(plain);
  il::insert_locks(optimized);
  const auto stats = il::optimize(optimized);
  std::printf("optimizer: %d locks eliminated, %d hoisted, %d calls inlined\n",
              stats.locksEliminated, stats.locksHoisted, stats.callsInlined);

  auto* cls = runtime::register_class("IlDemoAcc", {{"sum", false, false},
                                                    {"aux", false, false}});
  runtime::ManagedObject* obj = nullptr;
  runtime::ManagedObject* arr = nullptr;
  runtime::GlobalRoot<runtime::I64Array> arrRoot;
  run_sbd([&] {
    obj = runtime::Heap::instance().alloc_object(cls);
    auto a = runtime::I64Array::make(kN);
    for (int64_t i = 0; i < kN; i++) a.init_set(static_cast<uint64_t>(i), i % 10);
    arrRoot.set(a);
    arr = a.raw();
  });

  int64_t r1 = 0, r2 = 0;
  const uint64_t opsPlain = run_and_count(plain, obj, arr, kN, &r1);
  // Reset the accumulator between runs.
  run_sbd([&] {
    runtime::tx_write(obj, 0, 0);
    runtime::tx_write(obj, 1, 0);
  });
  const uint64_t opsOpt = run_and_count(optimized, obj, arr, kN, &r2);

  std::printf("plain:     result=%lld, dynamic lock ops=%llu\n",
              static_cast<long long>(r1), static_cast<unsigned long long>(opsPlain));
  std::printf("optimized: result=%lld, dynamic lock ops=%llu\n",
              static_cast<long long>(r2), static_cast<unsigned long long>(opsOpt));
  std::printf("identical results: %s, ops saved: %.0f%%\n", r1 == r2 ? "yes" : "NO",
              opsPlain ? 100.0 * (1.0 - static_cast<double>(opsOpt) /
                                            static_cast<double>(opsPlain))
                       : 0.0);
  return r1 == r2 ? 0 : 1;
}
