// Bank transfers — atomicity, deadlock resolution, and the incremental
// concurrency story in one example.
//
// Threads transfer money between random account pairs. Each transfer
// reads two balances and writes two balances in one atomic section.
// Opposite-order acquisitions deadlock occasionally; the STM detects
// the cycle (Dreadlocks) and aborts the youngest section, which retries
// from its split point. The invariant — total money is constant — holds
// throughout, with zero explicit synchronization in the program.
#include <cstdio>

#include "api/sbd.h"
#include "common/rng.h"
#include "core/transaction.h"

using namespace sbd;

class Account : public runtime::TypedRef<Account> {
 public:
  SBD_CLASS(BankAccount, SBD_SLOT("balance"))
  SBD_FIELD_I64(0, balance)
};

int main() {
  SBD_ATTACH_THREAD();
  constexpr int kAccounts = 12;
  constexpr int kThreads = 4;
  constexpr int kTransfers = 400;
  constexpr int64_t kInitial = 1000;

  runtime::GlobalRoot<runtime::RefArray<Account>> accounts;
  run_sbd([&] {
    auto arr = runtime::RefArray<Account>::make(kAccounts);
    for (int i = 0; i < kAccounts; i++) {
      Account a = Account::alloc();
      a.init_balance(kInitial);
      arr.init_set(static_cast<uint64_t>(i), a);
    }
    accounts.set(arr);
  });

  const auto statsBefore = core::TxnManager::instance().snapshot_stats();
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < kThreads; t++) {
      ts.emplace_back([&, t] {
        Rng rng(static_cast<uint64_t>(t) + 7);
        for (int i = 0; i < kTransfers; i++) {
          const auto from = rng.below(kAccounts);
          uint64_t to = rng.below(kAccounts);
          if (to == from) to = (to + 1) % kAccounts;
          const int64_t amount = 1 + static_cast<int64_t>(rng.below(20));
          Account a = accounts.get().get(from);
          Account b = accounts.get().get(to);
          if (a.balance() >= amount) {
            a.set_balance(a.balance() - amount);
            b.set_balance(b.balance() + amount);
          }
          split();  // one transfer per atomic section
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  const auto stats =
      core::TxnManager::instance().snapshot_stats().diff(statsBefore);

  run_sbd([&] {
    int64_t totalMoney = 0;
    for (int i = 0; i < kAccounts; i++)
      totalMoney += accounts.get().get(static_cast<uint64_t>(i)).balance();
    std::printf("total money: %lld (expected %lld)\n",
                static_cast<long long>(totalMoney),
                static_cast<long long>(kAccounts * kInitial));
    std::printf("sections committed: %llu, aborted+retried: %llu, deadlocks resolved: %llu\n",
                static_cast<unsigned long long>(stats.commits),
                static_cast<unsigned long long>(stats.aborts),
                static_cast<unsigned long long>(stats.deadlocksResolved));
  });
  return 0;
}
