// Web server demo — transactional I/O end to end: an HTTP server whose
// request handling runs inside atomic sections, with responses reaching
// the wire only at the section's split (§3.4), sessions in managed
// state, and reads replayed after any abort (§4.4).
#include <cstdio>

#include "api/sbd.h"
#include "jcl/collections.h"
#include "net/http.h"
#include "net/loopback.h"

using namespace sbd;

class Hits : public runtime::TypedRef<Hits> {
 public:
  SBD_CLASS(WebHits, SBD_SLOT("n"))
  SBD_FIELD_I64(0, n)
};

int main() {
  SBD_ATTACH_THREAD();
  constexpr int kPort = 8088;
  constexpr int kClients = 3;
  constexpr int kRequestsEach = 5;

  runtime::GlobalRoot<jcl::MStrMap> sessions;
  run_sbd([&] { sessions.set(jcl::MStrMap::make(16)); });
  auto listener = net::Network::instance().listen(kPort);

  SbdThread server([&] {
    int served = 0;
    while (served < kClients * kRequestsEach) {
      net::TxSocket* sockPtr = nullptr;
      auto& tc = core::tls_context();
      // The wrapper is created inside the accept callback, before the
      // checkpoint, so an abort-retry reuses the same replay buffers
      // (see README "Restore safety").
      core::split_section_releasing_id(tc, [&] {
        core::Safepoint::SafeScope safe(tc);
        net::Socket raw = listener.accept();
        if (raw.valid()) sockPtr = new net::TxSocket(raw);
      });
      if (!sockPtr) break;
      net::TxSocket& sock = *sockPtr;
      for (;;) {
        bool handled = false;
        // Heap-owning locals close before each split (restore-safety).
        {
          net::HttpRequest req;
          auto readFn = [&](void* out, size_t n) { return sock.read(out, n); };
          if (net::read_request(readFn, req)) {
            const std::string sid =
                req.headers.count("Cookie") ? req.headers["Cookie"] : "anon";
            auto* cellRaw = sessions.get().get_or_put(sid, [] {
              Hits h = Hits::alloc();
              h.init_n(0);
              return h.raw();
            });
            Hits hits(cellRaw);
            hits.set_n(hits.n() + 1);
            net::HttpResponse resp;
            resp.body = "hello " + sid + ", visit #" + std::to_string(hits.n());
            sock.write(net::serialize(resp));
            served++;
            handled = true;
          }
        }
        if (!handled) break;
        split();  // response becomes visible here
      }
      sock.close();
      split();
      delete sockPtr;
    }
  });
  server.start();

  std::vector<SbdThread> clients;
  for (int c = 0; c < kClients; c++) {
    clients.emplace_back([&, c] {
      auto* sockPtr = new net::TxSocket();
      net::TxSocket& sock = *sockPtr;
      sock.connect(kPort);  // deferred to the commit below
      split();
      for (int r = 0; r < kRequestsEach; r++) {
        {
          net::HttpRequest req;
          req.method = "GET";
          req.path = "/hello";
          req.headers["Cookie"] = "client-" + std::to_string(c);
          sock.write(net::serialize(req));
        }
        split();  // flush the request to the wire
        bool got;
        {
          net::HttpResponse resp;
          auto readFn = [&](void* out, size_t n) { return sock.read(out, n); };
          got = net::read_response(readFn, resp);
          if (got && r == kRequestsEach - 1)
            std::printf("client %d last response: %s\n", c, resp.body.c_str());
        }
        if (!got) break;
        split();
      }
      sock.close();
      split();
      delete sockPtr;
    });
  }
  for (auto& c : clients) c.start();
  for (auto& c : clients) c.join();
  listener.close();
  server.join();

  run_sbd([&] {
    std::printf("distinct sessions: %lld\n",
                static_cast<long long>(sessions.get().size()));
  });
  return 0;
}
