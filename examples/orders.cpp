// Orders — the paper's Figure 2/3: incrementally adding concurrency.
//
// processRequest() iterates over the items of a request and books each
// against an article's stock. In the coarse version each request is one
// atomic section; articles touched by concurrent requests serialize the
// workers. Uncommenting the paper's canSplit/allowSplit/split turns
// every item booking into its own section (Figure 3, timeline (b)) and
// the workers interleave at article granularity.
//
// This example runs BOTH versions and prints how lock contention drops.
#include <cstdio>

#include "api/sbd.h"
#include "common/rng.h"
#include "common/table.h"

using namespace sbd;

class Article : public runtime::TypedRef<Article> {
 public:
  SBD_CLASS(OrderArticle, SBD_SLOT("available"), SBD_SLOT("booked"))
  SBD_FIELD_I64(0, available)
  SBD_FIELD_I64(1, booked)
};

namespace {

runtime::GlobalRoot<runtime::RefArray<Article>> gArticles;
runtime::GlobalRoot<runtime::I64Array> gProcessed;

constexpr int kArticles = 16;
constexpr int kRequests = 60;
constexpr int kItemsPerRequest = 5;

void process_position(Article a, int64_t num) {
  if (a.available() > num) {
    a.set_available(a.available() - num);
    a.set_booked(a.booked() + num);
  }
}

// Figure 2, with the comments "uncommented": canSplit + per-item split.
void process_request_fine(uint64_t seed) {
  CanSplitScope canSplit;
  Rng rng(seed);
  for (int i = 0; i < kItemsPerRequest; i++) {
    Article a = gArticles.get().get(rng.below(kArticles));
    process_position(a, 1 + static_cast<int64_t>(rng.below(3)));
    split();  // each position in its own atomic section (Fig. 3b)
  }
}

// Figure 2 as printed (modifiers commented out): one section per request.
void process_request_coarse(uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < kItemsPerRequest; i++) {
    Article a = gArticles.get().get(rng.below(kArticles));
    process_position(a, 1 + static_cast<int64_t>(rng.below(3)));
  }
}

template <bool Fine>
void run_workers(int numWorkers) {
  std::vector<SbdThread> ts;
  for (int w = 0; w < numWorkers; w++) {
    ts.emplace_back([w] {
      for (int req = 0; req < kRequests; req++) {
        const uint64_t seed = static_cast<uint64_t>(w) * 10000 + static_cast<uint64_t>(req);
        if constexpr (Fine)
          allow_split([&] { process_request_fine(seed); });
        else
          process_request_coarse(seed);
        gProcessed.get().set(0, gProcessed.get().get(0) + 1);
        split();  // Figure 1's per-request split
      }
    });
  }
  for (auto& t : ts) t.start();
  for (auto& t : ts) t.join();
}

core::StatsCounters measure(void (*fn)(int), int workers) {
  const auto before = core::TxnManager::instance().snapshot_stats();
  fn(workers);
  return core::TxnManager::instance().snapshot_stats().diff(before);
}

}  // namespace

int main() {
  SBD_ATTACH_THREAD();
  run_sbd([&] {
    auto arts = runtime::RefArray<Article>::make(kArticles);
    for (int i = 0; i < kArticles; i++) {
      Article a = Article::alloc();
      a.init_available(100000);
      a.init_booked(0);
      arts.init_set(static_cast<uint64_t>(i), a);
    }
    gArticles.set(arts);
    gProcessed.set(runtime::I64Array::make(1));
  });

  const auto coarse = measure([](int w) { run_workers<false>(w); }, 4);
  const auto fine = measure([](int w) { run_workers<true>(w); }, 4);

  TextTable t({"Variant", "Sections", "Contended acq.", "Aborts"});
  t.add_row({"coarse (Fig. 3a)", std::to_string(coarse.commits),
             std::to_string(coarse.contendedAcquires), std::to_string(coarse.aborts)});
  t.add_row({"fine   (Fig. 3b)", std::to_string(fine.commits),
             std::to_string(fine.contendedAcquires), std::to_string(fine.aborts)});
  t.print();

  run_sbd([&] {
    int64_t booked = 0;
    for (int i = 0; i < kArticles; i++) booked += gArticles.get().get(i).booked();
    std::printf("\ntotal booked: %lld, requests processed: %lld\n",
                static_cast<long long>(booked),
                static_cast<long long>(gProcessed.get().get(0)));
  });
  return 0;
}
