// Quickstart — the paper's Figure 1: two worker threads process
// requests and count them in a shared field. Without the split the
// shared counter would serialize the workers; with it, each request is
// its own atomic section and the workers overlap.
//
//   class Worker extends Thread {
//     static int processed;
//     void canSplit run() {
//       for (Request req : getRequests()) {
//         processRequest(req);
//         ++processed;
//         split;
//       }
//     }
//   }
#include <cstdio>

#include "api/sbd.h"
#include "tio/console.h"

using namespace sbd;

// The shared state: a "static field" modeled as a managed cell.
class Stats : public runtime::TypedRef<Stats> {
 public:
  SBD_CLASS(QuickstartStats, SBD_SLOT("processed"))
  SBD_FIELD_I64(0, processed)
};

namespace {

runtime::GlobalRoot<Stats> gStats;

// A stand-in for processRequest: some local computation.
int64_t process_request(int64_t req) {
  int64_t acc = req;
  for (int i = 0; i < 2000; i++) acc = acc * 31 + i;
  return acc;
}

void worker(int id, int requests) {
  // Thread entry points are canSplit by default (paper §2.2).
  for (int req = 0; req < requests; req++) {
    const int64_t result = process_request(req);
    (void)result;
    Stats s = gStats.get();
    s.set_processed(s.processed() + 1);  // shared field: write-locked
    split();  // end the section: release the lock, make the count visible
  }
  tio::TxConsole::println("worker " + std::to_string(id) + " done");
  split();  // make the console output visible
}

}  // namespace

int main() {
  SBD_ATTACH_THREAD();
  constexpr int kRequests = 200;

  run_sbd([&] {
    Stats s = Stats::alloc();
    s.init_processed(0);
    gStats.set(s);
  });

  SbdThread a([&] { worker(1, kRequests); });
  SbdThread b([&] { worker(2, kRequests); });
  a.start();
  b.start();
  a.join();
  b.join();

  run_sbd([&] {
    std::printf("processed = %lld (expected %d)\n",
                static_cast<long long>(gStats.get().processed()), 2 * kRequests);
  });
  return 0;
}
