// Barrier demo — the paper's Figure 6: signalling via wait/notifyAll.
//
// Four workers compute a partial sum, synchronize on the barrier, then
// read the combined result. The barrier's sync() is a canSplit method:
// waiters split (releasing the lock on `arrived` and their transaction
// id), the last arriver notifies and splits to deliver the signal.
#include <cstdio>

#include "api/sbd.h"
#include "threads/barrier.h"

using namespace sbd;

class Partial : public runtime::TypedRef<Partial> {
 public:
  SBD_CLASS(BarrierPartial, SBD_SLOT("sum"))
  SBD_FIELD_I64(0, sum)
};

int main() {
  SBD_ATTACH_THREAD();
  constexpr int kWorkers = 4;

  runtime::GlobalRoot<threads::Barrier> barrier;
  runtime::GlobalRoot<Partial> total;
  run_sbd([&] {
    barrier.set(threads::Barrier::make(kWorkers));
    Partial p = Partial::alloc();
    p.init_sum(0);
    total.set(p);
  });

  std::vector<SbdThread> workers;
  for (int w = 0; w < kWorkers; w++) {
    workers.emplace_back([&, w] {
      // Phase 1: contribute a partial result.
      int64_t mine = 0;
      for (int i = 1; i <= 1000; i++) mine += (w + 1) * i;
      Partial p = total.get();
      p.set_sum(p.sum() + mine);
      split();  // publish before waiting at the barrier

      // Phase 2: everyone meets (Figure 6).
      allow_split([&] { barrier.get().sync(); });

      // Phase 3: all contributions are visible to every worker.
      const int64_t combined = total.get().sum();
      if (combined != (1 + 2 + 3 + 4) * 500500) {
        std::printf("worker %d saw inconsistent sum %lld!\n", w,
                    static_cast<long long>(combined));
      }
      split();
    });
  }
  for (auto& t : workers) t.start();
  for (auto& t : workers) t.join();

  run_sbd([&] {
    std::printf("combined sum after barrier: %lld (expected %lld)\n",
                static_cast<long long>(total.get().sum()),
                static_cast<long long>((1 + 2 + 3 + 4) * 500500LL));
  });
  return 0;
}
