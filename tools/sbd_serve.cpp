// sbd_serve — run the sbd::serve HTTP front end standalone.
//
// Binds the in-process loopback network, seeds the store, serves until
// --duration-ms expires (or forever with 0 — useful only under a test
// harness since the loopback net is process-local), then drains and
// prints the "serve" metrics section. This is the operational face of
// the serving scenario; bench/bench_serve drives it under load from
// inside the same process.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>

#include "api/sbd.h"
#include "core/obs.h"
#include "db/db.h"
#include "runtime/heap.h"
#include "serve/serve.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--workers N] [--accounts N]\n"
               "          [--balance N] [--duration-ms N] [--drain-ms N]\n"
               "Serves GET/PUT /kv/<k> and POST /txfer on the in-process\n"
               "loopback network for --duration-ms, then drains and prints\n"
               "the serve metrics section.\n",
               argv0);
}

long long arg_ll(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    usage(argv[0]);
    std::exit(2);
  }
  return std::atoll(argv[++i]);
}

}  // namespace

int main(int argc, char** argv) {
  sbd::serve::Config cfg;
  int accounts = 64;
  long long balance = 1000;
  long long durationMs = 2000;
  for (int i = 1; i < argc; i++) {
    if (!std::strcmp(argv[i], "--port")) cfg.port = static_cast<int>(arg_ll(argc, argv, i));
    else if (!std::strcmp(argv[i], "--workers")) cfg.workers = static_cast<int>(arg_ll(argc, argv, i));
    else if (!std::strcmp(argv[i], "--accounts")) accounts = static_cast<int>(arg_ll(argc, argv, i));
    else if (!std::strcmp(argv[i], "--balance")) balance = arg_ll(argc, argv, i);
    else if (!std::strcmp(argv[i], "--duration-ms")) durationMs = arg_ll(argc, argv, i);
    else if (!std::strcmp(argv[i], "--drain-ms")) cfg.drainTimeoutMs = static_cast<uint64_t>(arg_ll(argc, argv, i));
    else {
      usage(argv[0]);
      return 2;
    }
  }

  SBD_ATTACH_THREAD();
  sbd::db::Database db;
  sbd::serve::ensure_tables(db);
  if (accounts > 0) sbd::serve::seed_accounts(db, accounts, balance);
  const int64_t before = sbd::serve::total_balance(db);

  sbd::serve::Server server(db, cfg);
  server.start();
  std::printf("sbd_serve: port %d, %d workers, %d accounts x %lld\n",
              server.port(), cfg.workers, accounts, balance);
  if (durationMs > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(durationMs));
  } else {
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
  }
  server.shutdown();

  const int64_t after = sbd::serve::total_balance(db);
  std::printf("serve metrics: %s\n", sbd::serve::metrics_section().c_str());
  std::printf("balance: before=%lld after=%lld %s\n",
              static_cast<long long>(before), static_cast<long long>(after),
              before == after ? "CONSERVED" : "VIOLATED");
  sbd::obs::export_metrics_if_requested();
  return before == after ? 0 : 1;
}
