// sbdil — the SBD-IL driver tool: assemble, verify, transform,
// optimize, compile, dump, and execute textual IL programs against the
// real STM.
//
//   sbdil prog.sbdil                      # run fn `main` (no args)
//   sbdil prog.sbdil --entry f --args 3,4 # run `f(3, 4)`
//   sbdil prog.sbdil --optimize --stats   # full pipeline + lock-op counts
//   sbdil prog.sbdil --backend=compiled   # threaded-code backend
//   sbdil prog.sbdil --dump               # print the (transformed) IL
//   sbdil prog.sbdil --dump-summaries     # print per-function LockSummaries
//   sbdil prog.sbdil --verify-only
#include <cstdio>
#include <fstream>
#include <sstream>

#include "api/sbd.h"
#include "common/options.h"
#include "il/asm.h"
#include "il/compile.h"
#include "il/interp.h"
#include "il/opt.h"
#include "il/summary.h"
#include "il/transform.h"
#include "il/verify.h"

namespace {

std::vector<int64_t> parse_args(const std::string& csv) {
  std::vector<int64_t> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(std::stoll(item));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  SBD_ATTACH_THREAD();
  sbd::Options opts(argc, argv);
  if (argc < 2 || argv[1][0] == '-') {
    std::fprintf(stderr,
                 "usage: sbdil <file.sbdil> [--entry NAME] [--args a,b,...]\n"
                 "             [--optimize] [--no-locks] [--backend=interp|compiled]\n"
                 "             [--dump] [--dump-summaries] [--verify-only] [--stats]\n");
    return 2;
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "sbdil: cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  sbd::il::Module m;
  try {
    sbd::il::assemble(m, buf.str());
  } catch (const sbd::il::AsmError& e) {
    std::fprintf(stderr, "sbdil: %s\n", e.what());
    return 1;
  }

  const auto diags = sbd::il::verify(m);
  for (const auto& d : diags) std::fprintf(stderr, "verify: %s\n", d.c_str());
  if (!diags.empty()) return 1;
  if (opts.get_bool("verify-only", false)) {
    std::printf("ok: %zu function(s) verified\n", m.functions.size());
    return 0;
  }

  if (!opts.get_bool("no-locks", false)) sbd::il::insert_locks(m);
  if (opts.get_bool("optimize", false)) {
    const auto s = sbd::il::optimize(m);
    std::fprintf(stderr,
                 "optimize: %d eliminated (%d via call summaries), %d hoisted, "
                 "%d inlined, %d rounds\n",
                 s.locksEliminated, s.crossCallEliminated, s.locksHoisted,
                 s.callsInlined, s.rounds);
    // The transformed module must still pass the coverage verifier
    // (V6): every no-lock access covered by a must-held lock. Running
    // it here makes the tool a soundness oracle for the optimizer.
    const auto sums = sbd::il::compute_summaries(m);
    const auto vdiags = sbd::il::verify(m, sums);
    for (const auto& d : vdiags) std::fprintf(stderr, "verify: %s\n", d.c_str());
    if (!vdiags.empty()) return 1;
  }

  if (opts.get_bool("dump-summaries", false)) {
    const auto sums = sbd::il::compute_summaries(m);
    std::fputs(sbd::il::dump_summaries(m, sums).c_str(), stdout);
    return 0;
  }

  if (opts.get_bool("dump", false)) {
    for (const auto& [name, fn] : m.functions)
      std::fputs(sbd::il::to_string(*fn).c_str(), stdout);
    return 0;
  }

  const std::string entry = opts.get_str("entry", "main");
  const auto args = parse_args(opts.get_str("args", ""));
  if (!m.get(entry)) {
    std::fprintf(stderr, "sbdil: no function '%s'\n", entry.c_str());
    return 1;
  }

  const std::string backend = opts.get_str("backend", "interp");
  if (backend != "interp" && backend != "compiled") {
    std::fprintf(stderr, "sbdil: unknown backend '%s'\n", backend.c_str());
    return 2;
  }

  int64_t result = 0;
  uint64_t lockOps = 0;
  sbd::run_sbd([&] {
    auto& tc = sbd::core::tls_context();
    const auto before = tc.stats;
    if (backend == "compiled") {
      const auto cm = sbd::il::compile(m);
      result = sbd::il::execute(cm, entry, args);
    } else {
      result = sbd::il::execute(m, entry, args);
    }
    const auto after = tc.stats;
    lockOps = (after.acqRls - before.acqRls) + (after.checkOwned - before.checkOwned) +
              (after.checkNew - before.checkNew) + (after.lockInit - before.lockInit);
  });
  std::printf("%lld\n", static_cast<long long>(result));
  if (opts.get_bool("stats", false))
    std::fprintf(stderr, "lock operations: %llu\n",
                 static_cast<unsigned long long>(lockOps));
  return 0;
}
