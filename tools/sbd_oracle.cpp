// sbd_oracle — offline happens-before serializability checker CLI.
//
// Reads one or more "# sbd-trace v1" files (written by sbd_chaos
// --trace-out, or any program calling obs::write_trace after a drain)
// and replays them through sbd::oracle::check. Prints the one-line
// summary per file; on violations, prints the offending event windows
// and exits 1. I/O or parse failure exits 2.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analyzer/oracle.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--context N] [--quiet] <trace-file> [more...]\n"
               "  checks sbd-trace files for happens-before/serializability "
               "violations\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  size_t context = 6;
  bool quiet = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; i++) {
    const std::string a = argv[i];
    if (a == "--context") {
      if (i + 1 >= argc) return usage(argv[0]);
      context = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (a == "--quiet") {
      quiet = true;
    } else if (!a.empty() && a[0] == '-') {
      return usage(argv[0]);
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) return usage(argv[0]);

  bool anyViolation = false;
  for (const std::string& path : files) {
    std::vector<sbd::oracle::Rec> trace;
    uint64_t dropped = 0;
    if (!sbd::oracle::read_trace(path, trace, dropped)) {
      std::fprintf(stderr, "sbd_oracle: cannot read %s\n", path.c_str());
      return 2;
    }
    const sbd::oracle::Report rep = sbd::oracle::check(trace, dropped);
    std::printf("%s: %s\n", path.c_str(), sbd::oracle::summary_line(rep).c_str());
    if (!rep.ok()) {
      anyViolation = true;
      if (!quiet)
        std::fputs(sbd::oracle::format_windows(trace, rep, context).c_str(),
                   stdout);
    }
  }
  return anyViolation ? 1 : 0;
}
