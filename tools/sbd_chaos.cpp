// sbd_chaos — randomized robustness driver for the SBD runtime.
//
// Each seeded run installs a fault plan with EVERY injection site armed
// (CAS failures, queue delays, forced GCs, transient I/O errors, short
// writes, socket resets, DB commit faults, spurious DB lock timeouts,
// split-aborts) and then hammers three substrates with multi-threaded
// workloads:
//
//   bank  — random transfers over a managed account array, with a
//           per-thread transactional audit file (tio::TxFileWriter):
//           invariants are conservation of money AND one audit line per
//           committed transfer (aborted sections must leave no trace).
//   queue — producers/consumers over jcl::MTaskQueue with managed
//           boxed values: invariant is produced == consumed + drained.
//   db    — row-to-row transfers through db::TxDbConnection: invariant
//           is SELECT SUM(balance) unchanged.
//
// The liveness watchdog runs throughout. On any invariant violation the
// driver prints the exact reproducing command line and exits nonzero;
// otherwise it prints per-site fired/evaluated counts per seed.
//
// Two oracle-backed modes ride on top:
//
//   --oracle        records the full lock trace (obs::set_full_trace +
//                   lossless rings, drained concurrently by a non-SBD
//                   collector thread) and replays it through the
//                   sbd::oracle happens-before checker after each seed.
//                   Violations print the offending event windows, write
//                   artifacts to $SBD_ORACLE_ARTIFACT_DIR when set, and
//                   fail the run.
//   --differential  re-executes the SAME seed as five child processes,
//                   one per lock-granularity mode (field, striped:4,
//                   object, adaptive, versioned — granularity is parsed
//                   once per process, hence processes), each with
//                   --oracle, and requires every child to pass its
//                   oracle AND all five invariant checksums to match.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "analyzer/oracle.h"
#include "api/sbd.h"
#include "common/rng.h"
#include "core/degrade.h"
#include "core/fault.h"
#include "core/obs.h"
#include "core/transaction.h"
#include "core/watchdog.h"
#include "db/db.h"
#include "db/txwrapper.h"
#include "jcl/collections.h"
#include "tio/file.h"

using namespace sbd;

namespace {

struct Config {
  int seeds = 10;           // number of consecutive seeds to run
  uint64_t firstSeed = 1;   // --seed S runs exactly seed S
  bool oneSeed = false;
  int threads = 4;
  int transfers = 120;      // bank transfers per thread
  int queueOps = 120;       // items produced per producer
  int dbTxns = 50;          // DB transactions per thread
  double rate = 0.05;       // per-site fire probability
  int onlySite = -1;        // --site N arms just one site (debugging aid)
  uint64_t delayNanos = 20'000;
  bool small = false;
  bool oracle = false;        // full-trace + happens-before check per seed
  bool differential = false;  // 5 granularity modes as child processes
  std::string emitPath;       // child->parent result file (--differential)
  std::string traceOut;       // also dump the raw trace here (--oracle)
};

// The per-seed invariant quantities every granularity mode must agree
// on. Only interleaving-INDEPENDENT values qualify: conserved totals,
// not per-account balances (those legitimately differ run to run).
struct Sums {
  int64_t bankTotal = 0;   // sum of all account balances after the run
  int64_t auditLines = 0;  // total committed audit lines across threads
  int64_t queueDelta = 0;  // produced - consumed - drained (must be 0)
  int64_t dbSum = 0;       // SELECT SUM(balance)
  uint64_t checksum() const {
    uint64_t h = 0x5bd0c4a05ull;
    h = mix64(h ^ static_cast<uint64_t>(bankTotal));
    h = mix64(h ^ static_cast<uint64_t>(auditLines));
    h = mix64(h ^ static_cast<uint64_t>(queueDelta));
    h = mix64(h ^ static_cast<uint64_t>(dbSum));
    return h;
  }
};

// Drains the obs rings concurrently with the workload on a plain
// (non-SBD) thread — the progress guarantee lossless mode depends on.
class TraceCollector {
 public:
  void start() {
    droppedBefore_ = obs::dropped();
    stop_.store(false, std::memory_order_relaxed);
    th_ = std::thread([this] {
      while (!stop_.load(std::memory_order_acquire)) {
        drain_once();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      drain_once();  // workers have joined: this sweep is complete
    });
  }
  void finish() {
    stop_.store(true, std::memory_order_release);
    th_.join();
  }
  uint64_t dropped_delta() const { return obs::dropped() - droppedBefore_; }

  std::vector<obs::Event> events;

 private:
  void drain_once() {
    std::vector<obs::Event> batch = obs::drain();
    events.insert(events.end(), batch.begin(), batch.end());
  }
  std::thread th_;
  std::atomic<bool> stop_{false};
  uint64_t droppedBefore_ = 0;
};

class Account : public runtime::TypedRef<Account> {
 public:
  SBD_CLASS(ChaosAccount, SBD_SLOT("balance"))
  SBD_FIELD_I64(0, balance)
};

std::string tmp_path(uint64_t seed, int tid) {
  return "/tmp/sbd_chaos_" + std::to_string(getpid()) + "_" +
         std::to_string(seed) + "_" + std::to_string(tid) + ".audit";
}

int count_lines(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return -1;
  int lines = 0;
  int c;
  while ((c = std::fgetc(f)) != EOF)
    if (c == '\n') lines++;
  std::fclose(f);
  return lines;
}

// --------------------------------------------------------------------------
// bank: conservation of money + exactly one audit line per transfer.
// --------------------------------------------------------------------------
bool run_bank(const Config& cfg, uint64_t seed, Sums& sums) {
  constexpr int kAccounts = 16;
  constexpr int64_t kInitial = 1000;

  runtime::GlobalRoot<runtime::RefArray<Account>> accounts;
  run_sbd([&] {
    auto arr = runtime::RefArray<Account>::make(kAccounts);
    for (int i = 0; i < kAccounts; i++) {
      Account a = Account::alloc();
      a.init_balance(kInitial);
      arr.init_set(static_cast<uint64_t>(i), a);
    }
    accounts.set(arr);
  });

  // One transactional audit writer per thread, off-stack: the defer
  // buffer must survive checkpoint restores, and a writer shared across
  // threads would interleave (and abort-clear) a common buffer. Opened
  // HERE, outside any section: an open inside the worker's first
  // section would be re-executed on every injected abort, leaking one
  // fd per retry (restore-leak semantics) until EMFILE at high rates.
  std::vector<tio::TxFileWriter*> writers(static_cast<size_t>(cfg.threads), nullptr);
  for (int t = 0; t < cfg.threads; t++)
    writers[static_cast<size_t>(t)] = new tio::TxFileWriter(tmp_path(seed, t));
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < cfg.threads; t++) {
      ts.emplace_back([&, t] {
        tio::TxFileWriter* audit = writers[static_cast<size_t>(t)];
        Rng rng(mix64(seed ^ (0xba9c0ull + static_cast<uint64_t>(t))));
        for (int i = 0; i < cfg.transfers; i++) {
          const auto from = rng.below(kAccounts);
          uint64_t to = rng.below(kAccounts);
          if (to == from) to = (to + 1) % kAccounts;
          const int64_t amount = 1 + static_cast<int64_t>(rng.below(20));
          Account a = accounts.get().get(from);
          Account b = accounts.get().get(to);
          if (a.balance() >= amount) {
            a.set_balance(a.balance() - amount);
            b.set_balance(b.balance() + amount);
          }
          char line[64];
          const int n = std::snprintf(line, sizeof line, "%d %" PRIu64 " %" PRIu64 "\n",
                                      i, from, to);
          audit->write(line, static_cast<size_t>(n));
          split();  // one transfer (and one audit line) per section
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }

  bool ok = true;
  run_sbd([&] {
    int64_t total = 0;
    for (int i = 0; i < kAccounts; i++)
      total += accounts.get().get(static_cast<uint64_t>(i)).balance();
    sums.bankTotal = total;
    if (total != kAccounts * kInitial) {
      std::fprintf(stderr, "bank: money not conserved: %lld != %lld\n",
                   static_cast<long long>(total),
                   static_cast<long long>(kAccounts * kInitial));
      ok = false;
    }
  });
  for (int t = 0; t < cfg.threads; t++) {
    delete writers[static_cast<size_t>(t)];  // flush + close
    const std::string path = tmp_path(seed, t);
    const int lines = count_lines(path);
    sums.auditLines += lines;
    if (lines != cfg.transfers) {
      std::fprintf(stderr,
                   "bank: audit file %s has %d lines, expected %d "
                   "(aborted sections leaked or commits lost writes)\n",
                   path.c_str(), lines, cfg.transfers);
      ok = false;
    }
    ::unlink(path.c_str());
  }
  return ok;
}

// --------------------------------------------------------------------------
// queue: produced == consumed + drained over jcl::MTaskQueue.
// --------------------------------------------------------------------------
bool run_queue(const Config& cfg, uint64_t seed, Sums& sums) {
  const int producers = cfg.threads / 2 > 0 ? cfg.threads / 2 : 1;
  const int consumers = producers;

  runtime::GlobalRoot<jcl::MTaskQueue> queue;
  runtime::GlobalRoot<runtime::I64Array> produced;  // one slot per producer
  runtime::GlobalRoot<runtime::I64Array> consumed;  // one slot per consumer
  runtime::GlobalRoot<runtime::I64Array> done;      // [0] = producers finished
  run_sbd([&] {
    queue.set(jcl::MTaskQueue::make(32, /*useEmptyFlag=*/true));
    produced.set(runtime::I64Array::make(static_cast<uint64_t>(producers)));
    consumed.set(runtime::I64Array::make(static_cast<uint64_t>(consumers)));
    done.set(runtime::I64Array::make(1));
  });

  std::vector<SbdThread> pts;
  std::vector<SbdThread> cts;
  for (int t = 0; t < producers; t++) {
    pts.emplace_back([&, t] {
      Rng rng(mix64(seed ^ (0x90d0ull + static_cast<uint64_t>(t))));
      int sent = 0;
      while (sent < cfg.queueOps) {
        const int64_t v = 1 + static_cast<int64_t>(rng.below(100));
        auto item = runtime::I64Array::make(1);
        item.set(0, v);
        if (queue.get().put(item.raw())) {
          const auto slot = static_cast<uint64_t>(t);
          produced.get().set(slot, produced.get().get(slot) + v);
          sent++;
        }
        split();  // full queue: commit and retry in a fresh section
      }
    });
  }
  for (int t = 0; t < consumers; t++) {
    cts.emplace_back([&, t] {
      for (;;) {
        runtime::ManagedObject* raw = queue.get().take();
        if (!raw) {
          const bool finished = done.get().get(0) != 0 && queue.get().empty_check();
          split();
          if (finished) break;
          continue;
        }
        const int64_t v = runtime::I64Array(raw).get(0);
        const auto slot = static_cast<uint64_t>(t);
        consumed.get().set(slot, consumed.get().get(slot) + v);
        split();
      }
    });
  }
  for (auto& t : pts) t.start();
  for (auto& t : cts) t.start();
  for (auto& t : pts) t.join();
  run_sbd([&] { done.get().set(0, 1); });
  for (auto& t : cts) t.join();

  bool ok = true;
  run_sbd([&] {
    int64_t in = 0, out = 0, left = 0;
    for (int t = 0; t < producers; t++) in += produced.get().get(static_cast<uint64_t>(t));
    for (int t = 0; t < consumers; t++) out += consumed.get().get(static_cast<uint64_t>(t));
    while (runtime::ManagedObject* raw = queue.get().take())
      left += runtime::I64Array(raw).get(0);
    sums.queueDelta = in - out - left;
    if (in != out + left) {
      std::fprintf(stderr, "queue: produced %lld != consumed %lld + drained %lld\n",
                   static_cast<long long>(in), static_cast<long long>(out),
                   static_cast<long long>(left));
      ok = false;
    }
  });
  return ok;
}

// --------------------------------------------------------------------------
// db: SELECT SUM(balance) unchanged by concurrent row-to-row transfers.
// --------------------------------------------------------------------------

// One transfer in a helper so the ResultSet locals (non-trivially
// destructible) are gone before split() takes the next checkpoint —
// restore safety demands that nothing owning heap memory crosses a
// split on the stack.
void db_transfer(db::TxDbConnection& conn, int64_t from, int64_t to, int64_t amount) {
  auto rs = conn.execute("SELECT balance FROM accounts WHERE id = ?", {db::Value{from}});
  const int64_t bal = rs.int_at(0, 0);
  if (bal < amount) return;
  conn.execute("UPDATE accounts SET balance = ? WHERE id = ?",
               {db::Value{bal - amount}, db::Value{from}});
  auto rt = conn.execute("SELECT balance FROM accounts WHERE id = ?", {db::Value{to}});
  conn.execute("UPDATE accounts SET balance = ? WHERE id = ?",
               {db::Value{rt.int_at(0, 0) + amount}, db::Value{to}});
}

bool run_db(const Config& cfg, uint64_t seed, Sums& sums) {
  constexpr int64_t kRows = 16;
  constexpr int64_t kInitial = 100;

  db::Database database;
  {
    // Setup runs on a raw auto-commit connection with no section to
    // retry into, so spurious lock timeouts must stay off here.
    fault::PlanScope quiet{fault::FaultPlan{}};
    auto c = database.connect();
    c->execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)");
    for (int64_t i = 0; i < kRows; i++)
      c->execute("INSERT INTO accounts VALUES (?, ?)", {i, kInitial});
  }

  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < cfg.threads; t++) {
      ts.emplace_back([&, t] {
        db::TxDbConnection conn(database);
        Rng rng(mix64(seed ^ (0xdb00ull + static_cast<uint64_t>(t))));
        for (int i = 0; i < cfg.dbTxns; i++) {
          const auto from = static_cast<int64_t>(rng.below(kRows));
          int64_t to = static_cast<int64_t>(rng.below(kRows));
          if (to == from) to = (to + 1) % kRows;
          const int64_t amount = 1 + static_cast<int64_t>(rng.below(10));
          db_transfer(conn, from, to, amount);
          split();  // section end = DB commit
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }

  fault::PlanScope quiet{fault::FaultPlan{}};
  auto c = database.connect();
  const int64_t sum = c->execute("SELECT SUM(balance) FROM accounts").int_at(0, 0);
  sums.dbSum = sum;
  if (sum != kRows * kInitial) {
    std::fprintf(stderr, "db: balance not conserved: %lld != %lld\n",
                 static_cast<long long>(sum),
                 static_cast<long long>(kRows * kInitial));
    return false;
  }
  return true;
}

// --------------------------------------------------------------------------

// Dumps the evidence of an oracle red: the raw trace plus the rendered
// violation windows, under $SBD_ORACLE_ARTIFACT_DIR (CI uploads it).
void write_oracle_artifacts(uint64_t seed, const std::vector<obs::Event>& events,
                            uint64_t dropped, const std::vector<oracle::Rec>& recs,
                            const oracle::Report& rep) {
  const char* dir = std::getenv("SBD_ORACLE_ARTIFACT_DIR");
  if (!dir || !*dir) return;
  ::mkdir(dir, 0777);  // best effort; may already exist
  const char* mode = std::getenv("SBD_LOCK_GRANULARITY");
  std::string tag = mode ? mode : "default";
  for (char& c : tag)
    if (c == ':' || c == '/') c = '_';
  const std::string base =
      std::string(dir) + "/seed" + std::to_string(seed) + "_" + tag;
  obs::write_trace(base + ".trace", events, dropped);
  if (std::FILE* f = std::fopen((base + ".violations.txt").c_str(), "w")) {
    std::fputs(oracle::summary_line(rep).c_str(), f);
    std::fputs("\n", f);
    std::fputs(oracle::format_windows(recs, rep).c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "oracle: artifacts written to %s.{trace,violations.txt}\n",
                 base.c_str());
  }
}

bool run_one_seed(const Config& cfg, uint64_t seed, Sums& sums,
                  uint64_t& oracleViolations, uint64_t& traceDropped) {
  fault::FaultPlan plan;
  plan.seed = mix64(0xc4a05ull ^ seed);
  plan.delayNanos = cfg.delayNanos;
  for (int i = 0; i < fault::kNumSites; i++)
    if (cfg.onlySite < 0 || cfg.onlySite == i) plan.rate[i] = cfg.rate;
  fault::set_plan(plan);

  TraceCollector collector;
  if (cfg.oracle) {
    // Lossless full trace: the oracle's verdict is only meaningful on a
    // complete event stream, so overflowing producers block (briefly —
    // the collector drains every millisecond) instead of dropping.
    obs::set_full_trace(true);
    obs::set_lossless(true);
    collector.start();
  }

  const auto before = core::TxnManager::instance().snapshot_stats();
  bool ok = run_bank(cfg, seed, sums) && run_queue(cfg, seed, sums) &&
            run_db(cfg, seed, sums);
  const auto stats = core::TxnManager::instance().snapshot_stats().diff(before);

  if (cfg.oracle) {
    collector.finish();
    obs::set_lossless(false);
    obs::set_full_trace(false);
    traceDropped = collector.dropped_delta();
    const std::vector<oracle::Rec> recs = oracle::from_obs(collector.events);
    const oracle::Report rep = oracle::check(recs, traceDropped);
    oracleViolations = rep.violations.size();
    std::printf("  %s\n", oracle::summary_line(rep).c_str());
    if (!cfg.traceOut.empty() &&
        !obs::write_trace(cfg.traceOut, collector.events, traceDropped))
      std::fprintf(stderr, "oracle: cannot write trace to %s\n",
                   cfg.traceOut.c_str());
    if (!rep.ok()) {
      std::fputs(oracle::format_windows(recs, rep).c_str(), stderr);
      write_oracle_artifacts(seed, collector.events, traceDropped, recs, rep);
      ok = false;
    }
  }

  std::printf("seed %" PRIu64 ": %s  commits=%llu aborts=%llu deadlocks=%llu escalations=%llu\n",
              seed, ok ? "OK" : "FAIL",
              static_cast<unsigned long long>(stats.commits),
              static_cast<unsigned long long>(stats.aborts),
              static_cast<unsigned long long>(stats.deadlocksResolved),
              static_cast<unsigned long long>(stats.escalations));
  std::printf("  sites:");
  for (int i = 0; i < fault::kNumSites; i++) {
    const auto s = static_cast<fault::Site>(i);
    std::printf(" %s=%" PRIu64 "/%" PRIu64, fault::site_name(s), fault::fired(s),
                fault::evaluated(s));
  }
  std::printf("\n");
  fault::clear_plan();
  return ok;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--seed S] [--rate R(0..1)] [--threads T]\n"
               "          [--site I(0..%d)] [--delay-ns D] [--small]\n"
               "          [--oracle] [--trace-out FILE] [--emit FILE]\n"
               "          [--differential]\n",
               argv0, fault::kNumSites - 1);
  return 2;
}

// ---------------------------------------------------------------------------
// Differential mode (parent): one child process per granularity mode —
// SBD_LOCK_GRANULARITY is parsed once per process, so differing modes
// require differing processes. Each child runs the same seed with
// --oracle and reports its invariant checksum through --emit.
// ---------------------------------------------------------------------------

const char* kDiffModes[] = {"field", "striped:4", "object", "adaptive", "versioned"};

std::string self_exe(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return argv0;
  buf[n] = '\0';
  return buf;
}

bool run_differential_seed(const Config& cfg, const char* argv0, uint64_t seed) {
  const std::string self = self_exe(argv0);
  struct ChildResult {
    std::string mode;
    std::string cmd;
    int rc = -1;
    bool parsed = false;
    uint64_t checksum = 0, violations = 0, recorded = 0, dropped = 0;
  };
  std::vector<ChildResult> results;
  for (size_t m = 0; m < sizeof kDiffModes / sizeof kDiffModes[0]; m++) {
    ChildResult r;
    r.mode = kDiffModes[m];
    const std::string emit = "/tmp/sbd_diff_" + std::to_string(getpid()) + "_" +
                             std::to_string(seed) + "_" + std::to_string(m) + ".emit";
    ::unlink(emit.c_str());
    // A 2ms lockplan interval keeps the adaptive controller actually
    // re-planning (stop-the-world map swaps) inside the short run.
    r.cmd = "SBD_LOCK_GRANULARITY=" + r.mode + " SBD_LOCKPLAN_INTERVAL_MS=2 '" +
            self + "' --seed " + std::to_string(seed) +
            (cfg.small ? " --small" : "") + " --threads " +
            std::to_string(cfg.threads) + " --rate " + std::to_string(cfg.rate) +
            " --delay-ns " + std::to_string(cfg.delayNanos) +
            " --oracle --emit '" + emit + "'";
    std::printf("differential seed %" PRIu64 " mode %-10s ...\n", seed,
                r.mode.c_str());
    std::fflush(stdout);
    r.rc = std::system(r.cmd.c_str());
    if (std::FILE* f = std::fopen(emit.c_str(), "r")) {
      unsigned long long ck = 0, vi = 0, re = 0, dr = 0;
      r.parsed = std::fscanf(f, "checksum=%llx violations=%llu recorded=%llu dropped=%llu",
                             &ck, &vi, &re, &dr) == 4;
      r.checksum = ck;
      r.violations = vi;
      r.recorded = re;
      r.dropped = dr;
      std::fclose(f);
    }
    ::unlink(emit.c_str());
    results.push_back(std::move(r));
  }

  bool ok = true;
  for (const ChildResult& r : results) {
    std::printf("  mode %-10s rc=%-3d checksum=%016llx violations=%llu "
                "recorded=%llu dropped=%llu\n",
                r.mode.c_str(), r.rc,
                static_cast<unsigned long long>(r.checksum),
                static_cast<unsigned long long>(r.violations),
                static_cast<unsigned long long>(r.recorded),
                static_cast<unsigned long long>(r.dropped));
    if (r.rc != 0 || !r.parsed || r.violations != 0) ok = false;
    if (r.checksum != results[0].checksum) ok = false;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "differential: seed %" PRIu64 " DIVERGED — reproduce each mode with:\n",
                 seed);
    for (const ChildResult& r : results)
      std::fprintf(stderr, "  %s\n", r.cmd.c_str());
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; i++) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--seeds") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cfg.seeds = std::atoi(v);
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cfg.firstSeed = std::strtoull(v, nullptr, 10);
      cfg.oneSeed = true;
    } else if (a == "--rate") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      char* end = nullptr;
      cfg.rate = std::strtod(v, &end);
      if (end == v || *end != '\0') return usage(argv[0]);
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cfg.threads = std::atoi(v);
    } else if (a == "--site") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cfg.onlySite = std::atoi(v);
    } else if (a == "--delay-ns") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cfg.delayNanos = std::strtoull(v, nullptr, 10);
    } else if (a == "--small") {
      cfg.small = true;
      cfg.threads = 2;
      cfg.transfers = 40;
      cfg.queueOps = 40;
      cfg.dbTxns = 20;
    } else if (a == "--oracle") {
      cfg.oracle = true;
    } else if (a == "--differential") {
      cfg.differential = true;
    } else if (a == "--emit") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cfg.emitPath = v;
    } else if (a == "--trace-out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cfg.traceOut = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (cfg.seeds < 1 || cfg.threads < 1 || cfg.rate < 0 || cfg.rate > 1 ||
      cfg.onlySite < -1 || cfg.onlySite >= fault::kNumSites)
    return usage(argv[0]);

  if (cfg.differential) {
    // Pure parent: the workloads run in the children (one process per
    // granularity mode); no SBD attach here.
    const int n = cfg.oneSeed ? 1 : cfg.seeds;
    for (int k = 0; k < n; k++) {
      const uint64_t seed =
          cfg.oneSeed ? cfg.firstSeed : cfg.firstSeed + static_cast<uint64_t>(k);
      if (!run_differential_seed(cfg, argv[0], seed)) return 1;
    }
    std::printf("differential: %d seed(s) x %zu mode(s) OK\n", n,
                sizeof kDiffModes / sizeof kDiffModes[0]);
    return 0;
  }

  SBD_ATTACH_THREAD();
  // Tracing stays on for the whole run: chaos doubles as the proof that
  // the lock-free record path survives every injected fault.
  obs::set_enabled(true);
  core::Watchdog::Options wo;
  wo.stallThresholdNanos = 2'000'000'000;
  wo.abortVictimAfterNanos = 8'000'000'000;
  core::Watchdog::start(wo);

  const uint64_t recordedBefore = obs::recorded();
  Sums sums;
  uint64_t oracleViolations = 0, traceDropped = 0;
  const int n = cfg.oneSeed ? 1 : cfg.seeds;
  bool failed = false;
  for (int k = 0; k < n; k++) {
    const uint64_t seed = cfg.oneSeed ? cfg.firstSeed : cfg.firstSeed + static_cast<uint64_t>(k);
    sums = Sums{};
    if (!run_one_seed(cfg, seed, sums, oracleViolations, traceDropped)) {
      std::fprintf(stderr, "chaos: FAILED — reproduce with: %s --seed %" PRIu64
                           " --rate %g --threads %d%s%s\n",
                   argv[0], seed, cfg.rate, cfg.threads,
                   cfg.small ? " --small" : "", cfg.oracle ? " --oracle" : "");
      failed = true;
      break;
    }
  }
  // The emit file reports the LAST seed run (children run exactly one),
  // success or failure — the differential parent reads it either way.
  if (!cfg.emitPath.empty()) {
    if (std::FILE* f = std::fopen(cfg.emitPath.c_str(), "w")) {
      std::fprintf(f, "checksum=%016llx violations=%llu recorded=%llu dropped=%llu\n",
                   static_cast<unsigned long long>(sums.checksum()),
                   static_cast<unsigned long long>(oracleViolations),
                   static_cast<unsigned long long>(obs::recorded() - recordedBefore),
                   static_cast<unsigned long long>(traceDropped));
      std::fclose(f);
    } else {
      std::fprintf(stderr, "chaos: cannot write emit file %s\n", cfg.emitPath.c_str());
      failed = true;
    }
  }
  if (failed) {
    core::Watchdog::stop();
    return 1;
  }
  std::printf("chaos: %d seed(s) OK (rate %g, %d threads; watchdog stalls=%" PRIu64
              " victims=%" PRIu64 ")\n",
              n, cfg.rate, cfg.threads, core::Watchdog::stalls_detected(),
              core::Watchdog::victims_aborted());
  std::printf("trace: recorded=%" PRIu64 " dropped=%" PRIu64 "\n", obs::recorded(),
              obs::dropped());
  const std::string hot = obs::hot_report(5);
  if (!hot.empty()) std::printf("%s\n", hot.c_str());
  obs::export_metrics_if_requested();  // honors SBD_METRICS_JSON
  core::Watchdog::stop();
  return 0;
}
