// DaCapo analogs — one-shot harness run with machine-readable output.
//
// Runs the SBD variant of each of the six analogs once (LuIndex with its
// fixed thread pair, everything else at --threads) and reports, per
// benchmark: wall seconds, the virtual-time makespan at --threads ideal
// cores (the makespan is the host-independent number CI trends against
// BENCH_dacapo.json), the Table 7 lock-operation counters, and the
// Table 8 "Locks" gauge delta. The lock counters are what the lock
// granularity ablation (docs/EXPERIMENTS.md) compares across
// SBD_LOCK_GRANULARITY modes: coarser maps shrink acqRls because one
// mapped word covers several slots.
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "core/obs.h"
#include "dacapo/harness.h"
#include "runtime/heap.h"
#include "runtime/lockplan.h"
#include "vtm/vtm.h"

int main(int argc, char** argv) {
  SBD_ATTACH_THREAD();
  using namespace sbd;
  Options opts(argc, argv);
  dacapo::Scale scale{opts.get_double("scale", 0.25)};
  const int threads = static_cast<int>(opts.get_int("threads", 2));
  const std::string jsonPath = opts.get_str("json", "");
  const std::string only = opts.get_str("only", "");

  std::printf("=== DaCapo analogs (sbd variant, scale %.2f, %d threads, %s) ===\n\n",
              scale.factor, threads, runtime::lockplan::mode_name());
  TextTable t({"Benchmark", "Wall[s]", "Model[s]", "AcqRls", "Owned", "New",
               "LockBytes"});

  struct Row {
    std::string name;
    dacapo::RunResult r;
    double makespan = 0;
  };
  std::vector<Row> rows;
  for (auto& b : dacapo::all_benchmarks()) {
    if (!only.empty() && b.name != only) continue;
    const int thr = b.fixedThreads ? 2 : threads;
    Row row;
    row.name = b.name;
    row.r = b.sbd(scale, thr);
    row.makespan = vtm::estimate(row.r.vtm, thr).makespanSeconds;
    t.add_row({row.name, TextTable::fmt(row.r.seconds, 3),
               TextTable::fmt(row.makespan, 3),
               std::to_string(row.r.stm.acqRls),
               std::to_string(row.r.stm.checkOwned),
               std::to_string(row.r.stm.checkNew),
               std::to_string(row.r.lockStructBytes)});
    rows.push_back(std::move(row));
  }
  t.print();

  if (!jsonPath.empty()) {
    std::FILE* f = std::fopen(jsonPath.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"scale\": %.3f,\n  \"threads\": %d,\n", scale.factor,
                 threads);
    std::fprintf(f, "  \"lock_granularity\": \"%s\",\n",
                 sbd::runtime::lockplan::mode_name());
    std::fprintf(f, "  \"benchmarks\": {\n");
    for (size_t i = 0; i < rows.size(); i++) {
      const auto& row = rows[i];
      std::fprintf(
          f,
          "    \"%s\": {\"wall_s\": %.4f, \"vtm_makespan_s\": %.4f, "
          "\"checksum\": %llu, \"acq_rls\": %llu, \"check_owned\": %llu, "
          "\"check_new\": %llu, \"lock_init\": %llu, \"commits\": %llu, "
          "\"aborts\": %llu, \"versioned_reads\": %llu, "
          "\"validations\": %llu, \"version_aborts\": %llu, "
          "\"lock_struct_bytes\": %llu, \"version_word_bytes\": %llu}%s\n",
          row.name.c_str(), row.r.seconds, row.makespan,
          static_cast<unsigned long long>(row.r.checksum),
          static_cast<unsigned long long>(row.r.stm.acqRls),
          static_cast<unsigned long long>(row.r.stm.checkOwned),
          static_cast<unsigned long long>(row.r.stm.checkNew),
          static_cast<unsigned long long>(row.r.stm.lockInit),
          static_cast<unsigned long long>(row.r.stm.commits),
          static_cast<unsigned long long>(row.r.stm.aborts),
          static_cast<unsigned long long>(row.r.stm.versionedReads),
          static_cast<unsigned long long>(row.r.stm.validations),
          static_cast<unsigned long long>(row.r.stm.versionAborts),
          static_cast<unsigned long long>(row.r.lockStructBytes),
          static_cast<unsigned long long>(row.r.versionWordBytes),
          i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", jsonPath.c_str());
  }
  sbd::obs::export_metrics_if_requested();  // honors SBD_METRICS_JSON
  return 0;
}
