// bench_serve — open-loop load generator for the sbd::serve scenario.
//
// Methodology: OPEN-LOOP arrivals. Request j of the run is scheduled at
// T0 + j/rate, independent of whether earlier responses came back, and
// its latency is measured from that SCHEDULED time — so queueing delay
// inside the server (and a generator that fell behind) is charged to
// the request instead of silently vanishing (the coordinated-omission
// trap of closed-loop "send, wait, send" load generation). The global
// arrival sequence is partitioned round-robin across C client
// connections, each a plain (non-SBD) thread driving one keep-alive
// connection; a connection that dies (fault injection, churn) is
// re-dialed and counted.
//
// Workload: --mix GET/PUT/txfer percentages; GET/PUT keys drawn from a
// Zipf(theta) distribution over --keys (hot-key skew — the contended
// regime the SBD runtime exists for); txfer moves 1 unit between two
// uniform accounts, so SUM(balance) is invariant. After the run the
// bench re-checks conservation and fails loudly if serving broke it.
//
// Output: human-readable or --json (the committed BENCH_serve.json
// baseline shape); --slo-p99-ms makes the exit code a latency gate for
// CI. Faults: --fault-site/--fault-rate installs a single-site plan
// (7 = socket-reset, 13 = serve-accept-fail, 14 = serve-write-short).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/fault.h"
#include "core/obs.h"
#include "db/db.h"
#include "net/http.h"
#include "net/loopback.h"
#include "runtime/heap.h"
#include "serve/serve.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  double rate = 2000;        // total target req/s across all clients
  long long durationMs = 2000;
  int clients = 8;
  int workers = 4;
  int keys = 256;
  double zipfTheta = 0.9;
  double churn = 0.01;       // per-request reconnect probability
  int mixGet = 70, mixPut = 20, mixTxfer = 10;
  int accounts = 64;
  long long balance = 1000;
  uint64_t seed = 42;
  int faultSite = -1;
  double faultRate = 0.0;
  bool json = false;
  double sloP99Ms = -1;      // <0: no gate
};

// Zipf(theta) sampler over [0, n): inverse-CDF via binary search on a
// precomputed table (n is small; setup cost is irrelevant).
class Zipf {
 public:
  Zipf(int n, double theta) : cdf_(static_cast<size_t>(n)) {
    double sum = 0;
    for (int i = 0; i < n; i++) sum += 1.0 / std::pow(i + 1, theta);
    double acc = 0;
    for (int i = 0; i < n; i++) {
      acc += 1.0 / std::pow(i + 1, theta) / sum;
      cdf_[static_cast<size_t>(i)] = acc;
    }
    cdf_.back() = 1.0;
  }
  int sample(double u) const {
    return static_cast<int>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct ClientStats {
  std::vector<double> latenciesMs;  // successful requests only
  uint64_t completed = 0;
  uint64_t errors = 0;      // EOF/unparseable response (resets, short writes)
  uint64_t reconnects = 0;  // re-dials after a dead connection or churn
  uint64_t status4xx = 0;
  uint64_t status5xx = 0;
};

// One request over an (auto-redialing) keep-alive connection. Returns
// false when the connection died mid-request; the socket is left closed
// so the next call re-dials.
bool issue(sbd::net::Socket& sock, int port, const sbd::net::HttpRequest& req,
           ClientStats& st) {
  if (!sock.valid()) {
    sock = sbd::net::Network::instance().connect(port, /*timeoutMs=*/1000);
    st.reconnects++;
  }
  sock.write(sbd::net::serialize(req));
  sbd::net::HttpResponse resp;
  auto readFn = [&](void* out, size_t n) { return sock.read(out, n); };
  if (sbd::net::read_response_status(readFn, resp) != sbd::net::ReadStatus::kOk) {
    // Reset / short write / server gone: unknown outcome for the client.
    st.errors++;
    sock.close();
    sock = sbd::net::Socket();
    return false;
  }
  if (resp.status >= 500) st.status5xx++;
  else if (resp.status >= 400) st.status4xx++;
  auto cc = resp.headers.find("Connection");
  if (cc != resp.headers.end() && cc->second == "close") {
    sock.close();
    sock = sbd::net::Socket();
  }
  return true;
}

void client_loop(int id, const Options& opt, const Zipf& zipf, uint64_t total,
                 Clock::time_point t0, ClientStats& st) {
  sbd::Rng rng(sbd::mix64(opt.seed ^ static_cast<uint64_t>(id) ^ 0xc11e47ULL));
  sbd::net::Socket sock;
  const double perReqNs = 1e9 / opt.rate;
  for (uint64_t j = static_cast<uint64_t>(id); j < total;
       j += static_cast<uint64_t>(opt.clients)) {
    const auto scheduled =
        t0 + std::chrono::nanoseconds(static_cast<int64_t>(perReqNs * static_cast<double>(j)));
    std::this_thread::sleep_until(scheduled);

    sbd::net::HttpRequest req;
    const int pick = static_cast<int>(rng.below(100));
    if (pick < opt.mixGet) {
      req.method = "GET";
      req.path = "/kv/" + std::to_string(zipf.sample(rng.unit()));
    } else if (pick < opt.mixGet + opt.mixPut) {
      req.method = "PUT";
      req.path = "/kv/" + std::to_string(zipf.sample(rng.unit()));
      req.body = "v" + std::to_string(j);
    } else {
      const int64_t from = rng.range(0, opt.accounts - 1);
      const int64_t to = rng.range(0, opt.accounts - 1);
      req.method = "POST";
      req.path = "/txfer";
      req.body = "from=" + std::to_string(from) + "&to=" + std::to_string(to) +
                 "&amount=1";
    }
    if (issue(sock, 8090 + 1, req, st)) {
      st.completed++;
      st.latenciesMs.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - scheduled).count());
    }
    if (rng.chance(opt.churn)) {
      if (sock.valid()) sock.close();
      sock = sbd::net::Socket();
    }
  }
  if (sock.valid()) sock.close();
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--rate R] [--duration-ms N] [--clients N] [--workers N]\n"
               "          [--keys N] [--zipf THETA] [--churn P] [--mix G:P:T]\n"
               "          [--accounts N] [--seed N] [--fault-site N] [--fault-rate R]\n"
               "          [--slo-p99-ms MS] [--json]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; i++) {
    auto num = [&](double& out) {
      if (i + 1 >= argc) { usage(argv[0]); std::exit(2); }
      out = std::atof(argv[++i]);
    };
    double v;
    if (!std::strcmp(argv[i], "--rate")) { num(v); opt.rate = v; }
    else if (!std::strcmp(argv[i], "--duration-ms")) { num(v); opt.durationMs = static_cast<long long>(v); }
    else if (!std::strcmp(argv[i], "--clients")) { num(v); opt.clients = static_cast<int>(v); }
    else if (!std::strcmp(argv[i], "--workers")) { num(v); opt.workers = static_cast<int>(v); }
    else if (!std::strcmp(argv[i], "--keys")) { num(v); opt.keys = static_cast<int>(v); }
    else if (!std::strcmp(argv[i], "--zipf")) { num(v); opt.zipfTheta = v; }
    else if (!std::strcmp(argv[i], "--churn")) { num(v); opt.churn = v; }
    else if (!std::strcmp(argv[i], "--accounts")) { num(v); opt.accounts = static_cast<int>(v); }
    else if (!std::strcmp(argv[i], "--seed")) { num(v); opt.seed = static_cast<uint64_t>(v); }
    else if (!std::strcmp(argv[i], "--fault-site")) { num(v); opt.faultSite = static_cast<int>(v); }
    else if (!std::strcmp(argv[i], "--fault-rate")) { num(v); opt.faultRate = v; }
    else if (!std::strcmp(argv[i], "--slo-p99-ms")) { num(v); opt.sloP99Ms = v; }
    else if (!std::strcmp(argv[i], "--mix")) {
      if (i + 1 >= argc ||
          std::sscanf(argv[++i], "%d:%d:%d", &opt.mixGet, &opt.mixPut, &opt.mixTxfer) != 3 ||
          opt.mixGet + opt.mixPut + opt.mixTxfer != 100) {
        std::fprintf(stderr, "--mix wants G:P:T summing to 100\n");
        return 2;
      }
    }
    else if (!std::strcmp(argv[i], "--json")) opt.json = true;
    else { usage(argv[0]); return 2; }
  }

  SBD_ATTACH_THREAD();
  sbd::db::Database db;
  sbd::serve::ensure_tables(db);
  sbd::serve::seed_accounts(db, opt.accounts, opt.balance);
  const int64_t before = sbd::serve::total_balance(db);

  sbd::serve::Config scfg;
  scfg.port = 8090 + 1;  // off the default so a stray sbd_serve can coexist
  scfg.workers = opt.workers;
  sbd::serve::Server server(db, scfg);

  sbd::fault::FaultPlan plan;
  if (opt.faultSite >= 0 && opt.faultSite < sbd::fault::kNumSites)
    plan = sbd::fault::single_site(static_cast<sbd::fault::Site>(opt.faultSite),
                                   opt.faultRate, opt.seed);
  sbd::fault::PlanScope scope(plan);

  server.start();

  const uint64_t total =
      static_cast<uint64_t>(opt.rate * static_cast<double>(opt.durationMs) / 1000.0);
  const Zipf zipf(opt.keys, opt.zipfTheta);
  std::vector<ClientStats> stats(static_cast<size_t>(opt.clients));
  std::vector<std::thread> clients;
  const auto t0 = Clock::now();
  for (int c = 0; c < opt.clients; c++)
    clients.emplace_back(client_loop, c, std::cref(opt), std::cref(zipf), total, t0,
                         std::ref(stats[static_cast<size_t>(c)]));
  for (auto& t : clients) t.join();
  const double elapsedS = std::chrono::duration<double>(Clock::now() - t0).count();

  server.shutdown();
  const int64_t after = sbd::serve::total_balance(db);

  std::vector<double> lat;
  ClientStats sum;
  for (auto& s : stats) {
    lat.insert(lat.end(), s.latenciesMs.begin(), s.latenciesMs.end());
    sum.completed += s.completed;
    sum.errors += s.errors;
    sum.reconnects += s.reconnects;
    sum.status4xx += s.status4xx;
    sum.status5xx += s.status5xx;
  }
  std::sort(lat.begin(), lat.end());
  const double p50 = percentile(lat, 0.50);
  const double p99 = percentile(lat, 0.99);
  const double p999 = percentile(lat, 0.999);
  const double rps = elapsedS > 0 ? static_cast<double>(sum.completed) / elapsedS : 0;
  const bool conserved = before == after;
  const bool sloOk = opt.sloP99Ms < 0 || p99 <= opt.sloP99Ms;

  if (opt.json) {
    std::printf(
        "{\n"
        "  \"config\": {\"rate\": %.0f, \"duration_ms\": %lld, \"clients\": %d, "
        "\"workers\": %d, \"keys\": %d, \"zipf\": %.2f, \"churn\": %.3f, "
        "\"mix\": \"%d:%d:%d\", \"accounts\": %d, \"seed\": %llu, "
        "\"fault_site\": %d, \"fault_rate\": %.3f},\n"
        "  \"results\": {\"scheduled\": %llu, \"completed\": %llu, \"errors\": %llu, "
        "\"reconnects\": %llu, \"status_4xx\": %llu, \"status_5xx\": %llu, "
        "\"throughput_rps\": %.0f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"p999_ms\": %.3f, \"balance_conserved\": %s},\n"
        "  \"serve\": %s\n"
        "}\n",
        opt.rate, opt.durationMs, opt.clients, opt.workers, opt.keys, opt.zipfTheta,
        opt.churn, opt.mixGet, opt.mixPut, opt.mixTxfer, opt.accounts,
        static_cast<unsigned long long>(opt.seed), opt.faultSite, opt.faultRate,
        static_cast<unsigned long long>(total),
        static_cast<unsigned long long>(sum.completed),
        static_cast<unsigned long long>(sum.errors),
        static_cast<unsigned long long>(sum.reconnects),
        static_cast<unsigned long long>(sum.status4xx),
        static_cast<unsigned long long>(sum.status5xx), rps, p50, p99, p999,
        conserved ? "true" : "false", sbd::serve::metrics_section().c_str());
  } else {
    std::printf("bench_serve: %llu scheduled @ %.0f req/s, %d clients -> %d workers\n",
                static_cast<unsigned long long>(total), opt.rate, opt.clients,
                opt.workers);
    std::printf("  completed %llu (%.0f req/s), errors %llu, reconnects %llu, "
                "4xx %llu, 5xx %llu\n",
                static_cast<unsigned long long>(sum.completed), rps,
                static_cast<unsigned long long>(sum.errors),
                static_cast<unsigned long long>(sum.reconnects),
                static_cast<unsigned long long>(sum.status4xx),
                static_cast<unsigned long long>(sum.status5xx));
    std::printf("  latency (from scheduled arrival): p50 %.3f ms, p99 %.3f ms, "
                "p999 %.3f ms\n", p50, p99, p999);
    std::printf("  balance: %s; p99 SLO %s\n", conserved ? "conserved" : "VIOLATED",
                opt.sloP99Ms < 0 ? "not gated" : (sloOk ? "met" : "MISSED"));
    std::printf("  serve: %s\n", sbd::serve::metrics_section().c_str());
  }
  sbd::obs::export_metrics_if_requested();
  if (!conserved) return 1;
  if (!sloOk) return 3;
  return 0;
}
