// Figure 7 — scalability of SBD vs explicit synchronization.
//
// The paper plots speedup over the single-threaded baseline for 1..32
// threads on a 32-core machine (LuIndex excluded: fixed threads). On a
// small host real wall-clock speedup is bounded by the core count, so
// this bench reports BOTH:
//   wall   — measured speedup (flat at ~1x on a 1-core host)
//   model  — the virtual-time estimate: per-thread busy/aborted/blocked
//            accounting mapped onto P ideal cores (src/vtm). The model
//            reproduces the paper's *shape*: Sunflow/PMD/H2 scale
//            similarly in both variants; contention and aborts flatten
//            the SBD curves first.
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "dacapo/harness.h"
#include "runtime/heap.h"
#include "vtm/vtm.h"

int main(int argc, char** argv) {
  SBD_ATTACH_THREAD();
  using namespace sbd;
  Options opts(argc, argv);
  dacapo::Scale scale{opts.get_double("scale", 0.4)};
  const int maxThreads = static_cast<int>(opts.get_int("max-threads", 8));

  std::printf("=== Figure 7: speedup vs single-threaded baseline ===\n\n");
  TextTable t({"Benchmark", "Thr.", "Base wall x", "Sbd wall x", "Sbd model x",
               "Util.[%]"});
  for (auto& b : dacapo::all_benchmarks()) {
    if (b.fixedThreads) continue;  // LuIndex excluded, as in the paper
    const double base1 = b.baseline(scale, 1).seconds;
    const double sbd1 = b.sbd(scale, 1).seconds;
    for (int threads = 1; threads <= maxThreads; threads *= 2) {
      const auto baseR = b.baseline(scale, threads);
      const auto sbdR = b.sbd(scale, threads);
      const auto model = vtm::estimate(sbdR.vtm, threads);
      const auto model1 = vtm::estimate(sbdR.vtm, 1);
      const double modelSpeedup =
          model.makespanSeconds > 0 ? model1.makespanSeconds / model.makespanSeconds : 0;
      t.add_row({b.name, std::to_string(threads),
                 TextTable::fmt(base1 / baseR.seconds, 2),
                 TextTable::fmt(sbd1 / sbdR.seconds, 2),
                 TextTable::fmt(modelSpeedup, 2),
                 TextTable::fmt(model.utilization * 100, 0)});
    }
    t.add_row({"", "", "", "", "", ""});
  }
  t.print();
  std::printf(
      "\nShape check (paper Fig. 7): on a many-core host the wall columns match\n"
      "the model columns; Sunflow/PMD/H2 curves are similar in both variants,\n"
      "LuSearch and Tomcat fall behind at high thread counts (GC pressure and\n"
      "the 56-transaction-id ceiling respectively).\n");
  return 0;
}
