// Ablation A4 — inevitable transactions vs transactional wrappers
// (paper §3.4): "Implementation of inevitable transactions ... has the
// problem of limiting actual concurrency. At most one transaction can
// be inevitable at any given moment in time. E.g., two or more
// transactions cannot execute I/O at the same time, even if they use
// different devices. To achieve good scalability, we use transactional
// wrappers instead."
//
// N threads each write to their OWN output file per section. With
// wrappers the writes buffer and commit independently; with inevitable
// sections every I/O-performing section serializes on the global token.
// The measured quantity: aggregate wall time and token acquisitions.
#include <cstdio>
#include <unistd.h>

#include "api/sbd.h"
#include "common/options.h"
#include "common/table.h"
#include "common/timing.h"
#include "core/inevitable.h"
#include "runtime/heap.h"
#include "tio/file.h"

namespace {
using namespace sbd;

// Some per-section compute so sections have realistic length.
int64_t work(int64_t seed) {
  int64_t acc = seed;
  for (int i = 0; i < 4000; i++) acc = acc * 1103515245 + 12345;
  return acc;
}

double run_variant(bool inevitable, int threads, int sectionsPerThread) {
  std::vector<std::unique_ptr<tio::TxFileWriter>> files;
  for (int t = 0; t < threads; t++)
    files.push_back(std::make_unique<tio::TxFileWriter>(
        "/tmp/sbd_inev_" + std::to_string(getpid()) + "_" + std::to_string(t)));
  Stopwatch sw;
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < threads; t++) {
      ts.emplace_back([&, t] {
        for (int i = 0; i < sectionsPerThread; i++) {
          if (inevitable) {
            // The §3.4 alternative: the section claims THE token before
            // performing I/O directly; independent devices serialize.
            core::become_inevitable();
          }
          const int64_t v = work(t * 1000 + i);
          files[static_cast<size_t>(t)]->write(std::to_string(v) + "\n");
          split();
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  const double seconds = sw.seconds();
  for (int t = 0; t < threads; t++)
    std::remove(("/tmp/sbd_inev_" + std::to_string(getpid()) + "_" + std::to_string(t))
                    .c_str());
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  SBD_ATTACH_THREAD();
  Options opts(argc, argv);
  const int threads = static_cast<int>(opts.get_int("threads", 4));
  const int sections = static_cast<int>(opts.get_int("sections", 150));

  std::printf("=== Ablation A4: inevitable transactions vs wrappers (paper 3.4) ===\n\n");
  const uint64_t tokBefore = core::inevitable_acquisitions();
  const double tWrap = run_variant(false, threads, sections);
  const double tInev = run_variant(true, threads, sections);
  const uint64_t toks = core::inevitable_acquisitions() - tokBefore;

  TextTable t({"Variant", "Time[ms]", "Token acq.", "vs wrappers"});
  t.add_row({"tx wrappers", TextTable::fmt(tWrap * 1000, 1), "0", "1.00x"});
  t.add_row({"inevitable", TextTable::fmt(tInev * 1000, 1), std::to_string(toks),
             TextTable::fmt(tInev / (tWrap > 0 ? tWrap : 1e-9), 2) + "x"});
  t.print();
  std::printf(
      "\nShape check: with independent devices the wrapper variant overlaps I/O\n"
      "sections; the inevitable variant serializes them on the single token —\n"
      "the scalability argument for transactional wrappers in the paper's 3.4.\n"
      "(On a 1-core host the wall-clock gap narrows; the token count shows the\n"
      "serialization directly.)\n");
  return 0;
}
