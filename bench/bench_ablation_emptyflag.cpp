// Ablation A3 — the Table 4 JCL queue fix: the get path checks a
// separate isEmpty flag instead of the size counter.
//
// What the fix buys (and what this bench measures): threads that *poll*
// the queue's emptiness — workers looking for work, monitors — read a
// field that only changes on empty<->non-empty transitions, so at a
// non-empty steady state they never conflict with the producers and
// consumers mutating the queue. With the size counter, every poll
// read-locks the very field every put/take write-locks: a guaranteed
// conflict per operation.
#include <cstdio>
#include <thread>

#include "api/sbd.h"
#include "common/options.h"
#include "common/table.h"
#include "common/timing.h"
#include "jcl/collections.h"
#include "runtime/heap.h"

namespace {
using namespace sbd;

class Job : public runtime::TypedRef<Job> {
 public:
  SBD_CLASS(AblJob, SBD_SLOT("v"))
  SBD_FIELD_I64(0, v)
};

struct Result {
  double seconds;
  uint64_t contended;
  uint64_t aborts;
};

Result run_variant(bool useFlag, int polls) {
  runtime::GlobalRoot<jcl::MTaskQueue> queue;
  run_sbd([&] {
    queue.set(jcl::MTaskQueue::make(1 << 14, useFlag));
    // Pre-fill so the queue never transitions to empty: the flag stays
    // constant for the whole measurement.
    for (int i = 0; i < 256; i++) queue.get().put(Job::alloc().raw());
  });
  auto& mgr = core::TxnManager::instance();
  const auto before = mgr.snapshot_stats();
  std::atomic<bool> stop{false};
  Stopwatch sw;
  {
    // The producer churns the queue continuously...
    threads::SbdThread producer([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        queue.get().put(Job::alloc().raw());
        queue.get().take();
        split();
      }
    });
    // ...while the poller repeatedly checks for work, holding its
    // section — and hence the read lock on the checked field — until it
    // either observes the producer blocked on that lock (the conflict
    // the paper's fix removes) or a short timeout passes (what happens
    // in the flag variant, where the producer never blocks).
    threads::SbdThread poller([&] {
      for (int i = 0; i < polls; i++) {
        const uint64_t contendedBefore =
            core::TxnManager::instance().snapshot_stats().contendedAcquires;
        (void)queue.get().empty_check();
        Stopwatch hold;
        while (core::TxnManager::instance().snapshot_stats().contendedAcquires ==
                   contendedBefore &&
               hold.seconds() < 400e-6) {
          std::this_thread::yield();
        }
        split();
      }
      stop.store(true, std::memory_order_relaxed);
    });
    producer.start();
    poller.start();
    poller.join();
    producer.join();
  }
  Result r;
  r.seconds = sw.seconds();
  const auto after = mgr.snapshot_stats().diff(before);
  r.contended = after.contendedAcquires;
  r.aborts = after.aborts;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  SBD_ATTACH_THREAD();
  Options opts(argc, argv);
  const int polls = static_cast<int>(opts.get_int("polls", 150));

  std::printf("=== Ablation A3: task-queue isEmpty flag (paper Table 4, JCL) ===\n\n");
  const Result with = run_variant(true, polls);
  const Result without = run_variant(false, polls);
  TextTable t({"Variant", "Time[ms]", "Contended acq.", "Aborts"});
  t.add_row({"isEmpty flag", TextTable::fmt(with.seconds * 1000, 1),
             std::to_string(with.contended), std::to_string(with.aborts)});
  t.add_row({"size counter", TextTable::fmt(without.seconds * 1000, 1),
             std::to_string(without.contended), std::to_string(without.aborts)});
  t.print();
  std::printf(
      "\nShape check: in the size-counter variant the producer blocks on the\n"
      "poller's read lock once per poll (contended acquires ~= polls); in the\n"
      "flag variant the poller's field never changes at a non-empty steady\n"
      "state and the producer never blocks on it.\n");
  return 0;
}
