// Table 5 — programming effort: number of modifications per benchmark.
//
// Left block: the counts for OUR C++ ports (split operations, canSplit
// scopes, Table 4-style custom modifications, final-marked fields in
// the SBD variant; mutexes and atomics in the baseline variant).
// Right block: the paper's numbers for the original Java benchmarks,
// for side-by-side comparison of the shape: SBD needs few splits, and
// the combined split+custom count is comparable to the baseline's
// synchronized+volatile count.
#include <cstdio>

#include "common/table.h"
#include "dacapo/harness.h"
#include "runtime/heap.h"

int main() {
  SBD_ATTACH_THREAD();
  using sbd::TextTable;
  std::printf("=== Table 5: programming effort (ours vs paper) ===\n\n");
  TextTable t({"Benchmark", "Split", "Custom", "CanSplit", "Final", "Mutex/Sync",
               "Atomic/Vol", "|", "P.Split", "P.Custom", "P.CanSplit", "P.Final",
               "P.Sync", "P.Vol"});
  for (const auto& b : sbd::dacapo::all_benchmarks()) {
    const auto& e = b.effort;
    t.add_row({b.name, std::to_string(e.splits), std::to_string(e.customMods),
               std::to_string(e.canSplits), std::to_string(e.finals),
               std::to_string(e.baselineMutexes), std::to_string(e.baselineAtomics), "|",
               std::to_string(e.paperSplits), std::to_string(e.paperCustom),
               std::to_string(e.paperCanSplit), std::to_string(e.paperFinal),
               std::to_string(e.paperSync), std::to_string(e.paperVolatile)});
  }
  t.print();
  std::printf(
      "\nShape check (paper 5.2): splits+custom stays comparable to sync+volatile;\n"
      "LuSearch/Tomcat trade synchronization code for custom modifications\n"
      "(the asymmetry of SBD, paper 2.1).\n");
  return 0;
}
