// Ablation A2 — final-field elision (paper §5.3: the automatically
// added final modifiers cut Sunflow's sequential overhead by 19.4%).
//
// Two structurally identical classes, one with its read-mostly fields
// declared final. A hot loop reads the fields of escaped instances; the
// final version performs zero lock operations for those reads.
#include <cstdio>

#include "api/sbd.h"
#include "common/options.h"
#include "common/table.h"
#include "common/timing.h"
#include "runtime/heap.h"

namespace {
using namespace sbd;

class WithFinals : public runtime::TypedRef<WithFinals> {
 public:
  SBD_CLASS(AblWithFinals, SBD_SLOT_FINAL("a"), SBD_SLOT_FINAL("b"), SBD_SLOT("acc"))
  SBD_FIELD_FINAL_I64(0, a)
  SBD_FIELD_FINAL_I64(1, b)
  SBD_FIELD_I64(2, acc)
};

class NoFinals : public runtime::TypedRef<NoFinals> {
 public:
  SBD_CLASS(AblNoFinals, SBD_SLOT("a"), SBD_SLOT("b"), SBD_SLOT("acc"))
  SBD_FIELD_I64(0, a)
  SBD_FIELD_I64(1, b)
  SBD_FIELD_I64(2, acc)
};

template <typename T>
double run_variant(uint64_t numObjs, uint64_t rounds, uint64_t* lockOps) {
  double seconds = 0;
  run_sbd([&] {
    std::vector<runtime::ManagedObject*> objs(numObjs);
    for (uint64_t i = 0; i < numObjs; i++) {
      T o = T::alloc();
      o.init_a(static_cast<int64_t>(i));
      o.init_b(static_cast<int64_t>(i * 3));
      objs[i] = o.raw();
    }
    split();  // escape
    auto& tc = core::tls_context();
    const auto before = tc.stats;
    Stopwatch sw;
    int64_t sink = 0;
    for (uint64_t r = 0; r < rounds; r++) {
      for (uint64_t i = 0; i < numObjs; i++) {
        T o(objs[i]);
        sink += o.a() + o.b();
      }
      split();  // fresh section: re-check every lock next round
    }
    seconds = sw.seconds();
    const auto after = tc.stats;
    *lockOps = (after.acqRls - before.acqRls) + (after.checkOwned - before.checkOwned) +
               (after.lockInit - before.lockInit);
    T last(objs[0]);
    last.set_acc(sink);  // keep the loop observable
  });
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  SBD_ATTACH_THREAD();
  Options opts(argc, argv);
  const auto objs = static_cast<uint64_t>(opts.get_int("objects", 20000));
  const auto rounds = static_cast<uint64_t>(opts.get_int("rounds", 30));

  std::printf("=== Ablation A2: final-field elision (paper 5.3) ===\n\n");
  uint64_t opsFinal = 0, opsPlain = 0;
  const double tFinal = run_variant<WithFinals>(objs, rounds, &opsFinal);
  const double tPlain = run_variant<NoFinals>(objs, rounds, &opsPlain);
  TextTable t({"Variant", "Time[ms]", "Lock ops", "vs final"});
  t.add_row({"final fields", TextTable::fmt(tFinal * 1000, 1), std::to_string(opsFinal),
             "1.00x"});
  t.add_row({"plain fields", TextTable::fmt(tPlain * 1000, 1), std::to_string(opsPlain),
             TextTable::fmt(tPlain / (tFinal > 0 ? tFinal : 1e-9), 2) + "x"});
  t.print();
  std::printf(
      "\nShape check: the final variant executes (near) zero lock operations on\n"
      "the hot reads and runs measurably faster — the effect behind the paper's\n"
      "-19.4%% on Sunflow.\n");
  return 0;
}
