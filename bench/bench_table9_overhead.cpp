// Table 9 — SBD overhead vs explicit locking across thread counts,
// plus the conflict counters (abort rate, contended acquires, CAS
// failures).
//
// Host note: this machine may have far fewer cores than the paper's
// 32-core Xeon; wall-clock times then time-share one core and the
// OVERHEAD column (SBD time / baseline time at the same thread count)
// remains the meaningful, reproducible quantity. Scalability proper is
// bench_fig7_scalability.
#include <cmath>
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "common/timing.h"
#include "dacapo/harness.h"
#include "runtime/heap.h"

int main(int argc, char** argv) {
  SBD_ATTACH_THREAD();
  using namespace sbd;
  Options opts(argc, argv);
  dacapo::Scale scale{opts.get_double("scale", 0.6)};
  const int maxThreads = static_cast<int>(opts.get_int("max-threads", 8));
  const int reps = static_cast<int>(opts.get_int("reps", 2));
  // --steady switches to the paper's Georges-style methodology (§5.1):
  // iterate until the trailing window's coefficient of variation drops
  // below the limit, then report the window mean. Slower; off by default.
  const bool steady = opts.get_bool("steady", false);
  SteadyStateConfig ssCfg;
  ssCfg.window = static_cast<int>(opts.get_int("ss-window", 5));
  ssCfg.maxIters = static_cast<int>(opts.get_int("ss-max-iters", 15));
  ssCfg.covLimit = opts.get_double("ss-cov", 0.05);

  std::printf("=== Table 9: overhead of SBD vs explicit locking ===\n\n");
  TextTable t({"Benchm.", "Thr.", "Base[s]", "Sbd[s]", "Ovr.[%]", "Abr.[%]", "Con.",
               "Fail."});
  std::vector<double> overheads;
  for (auto& b : dacapo::all_benchmarks()) {
    std::vector<int> threadCounts;
    if (b.fixedThreads) {
      threadCounts = {1};
    } else {
      for (int n = 1; n <= maxThreads; n *= 2) threadCounts.push_back(n);
    }
    for (int threads : threadCounts) {
      double baseBest = 1e30, sbdBest = 1e30;
      dacapo::RunResult sbdLast;
      if (steady) {
        baseBest =
            measure_steady_state(ssCfg, [&] { (void)b.baseline(scale, threads); }).mean;
        sbdBest = measure_steady_state(ssCfg, [&] { sbdLast = b.sbd(scale, threads); }).mean;
      } else {
        for (int rep = 0; rep < reps; rep++) {
          baseBest = std::min(baseBest, b.baseline(scale, threads).seconds);
          sbdLast = b.sbd(scale, threads);
          sbdBest = std::min(sbdBest, sbdLast.seconds);
        }
      }
      const double ovr = baseBest > 0 ? (sbdBest / baseBest - 1) * 100 : 0;
      overheads.push_back(sbdBest / (baseBest > 0 ? baseBest : 1));
      const double abr = sbdLast.stm.commits
                             ? 100.0 * static_cast<double>(sbdLast.stm.aborts) /
                                   static_cast<double>(sbdLast.stm.commits)
                             : 0;
      t.add_row({b.name, std::to_string(threads), TextTable::fmt(baseBest, 3),
                 TextTable::fmt(sbdBest, 3), TextTable::fmt(ovr, 1),
                 TextTable::fmt(abr, 1), std::to_string(sbdLast.stm.contendedAcquires),
                 std::to_string(sbdLast.stm.casFailures)});
    }
  }
  t.print();
  double geo = 1;
  for (double o : overheads) geo *= o;
  geo = std::pow(geo, 1.0 / static_cast<double>(overheads.size()));
  std::printf("\nGeometric-mean SBD/baseline ratio: %.3f (paper: 1.239, i.e. 23.9%%)\n",
              geo);
  std::printf(
      "Shape check (paper Table 9): H2 lowest overhead (DB-bound), Sunflow\n"
      "highest (~2x, memory-bound), the rest in between; conflict counters\n"
      "grow with threads but abort rates stay near zero except Sunflow.\n");
  return 0;
}
