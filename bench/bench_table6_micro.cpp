// Table 6 — microbenchmark: read/write operations over single-field
// instances, random and sequential access, by lock-operation effect:
//
//   Baseline    — access with no locking operation at all
//   New         — instance is new in the current transaction (null check)
//   Owned       — lock already held (membership check)
//   Acq & Rls   — acquire + release incl. undo logging
//   Versioned   — invisible-reader granularity: reads validate a stamp
//                 instead of locking (same split-per-access pattern as
//                 Acq&Rls, so the two rows compare directly)
//
// The paper runs 100 M ops over 100 M instances; the default here is
// scaled to the host (flags: --ops, --instances) — the *ratios* are the
// reproduced result: New is nearly free, Owned costs one check, and
// Acq&Rls dominates, with sequential access amplifying the relative
// overhead because the baseline is cache-friendly.
#include <cstdio>

#include "api/sbd.h"
#include "common/options.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timing.h"
#include "core/obs.h"

namespace {

using namespace sbd;

class Field1 : public runtime::TypedRef<Field1> {
 public:
  SBD_CLASS(MicroField1, SBD_SLOT("value"))
  SBD_FIELD_I64(0, value)
};

struct MicroResult {
  double baseline, checkNew, owned, acqRls;
};

// One measurement: `ops` accesses over `numInstances` objects.
// `effect` selects how each access behaves; `write` and `random` select
// the pattern.
double run_pattern(uint64_t ops, uint64_t numInstances, bool write, bool random,
                   int effect) {
  std::vector<runtime::ManagedObject*> objs(numInstances);
  double seconds = 0;
  run_sbd([&] {
    auto& tc = sbd::context();  // one TLS lookup for the whole measurement
    for (uint64_t i = 0; i < numInstances; i++) {
      Field1 f = Field1::alloc();
      f.init_value(static_cast<int64_t>(i));
      objs[i] = f.raw();
    }
    if (effect != 1) split(tc);  // effect 1 ("new") keeps instances new

    Rng rng(99);
    Stopwatch sw;
    switch (effect) {
      case 0: {  // baseline: direct slot access, no lock operation
        volatile int64_t sink = 0;
        for (uint64_t i = 0; i < ops; i++) {
          const uint64_t k = random ? rng.below(numInstances) : i % numInstances;
          if (write)
            objs[k]->slots()[0] = static_cast<uint64_t>(i);
          else
            sink += static_cast<int64_t>(objs[k]->slots()[0]);
        }
        break;
      }
      case 1: {  // new: instances created in this transaction
        volatile int64_t sink = 0;
        for (uint64_t i = 0; i < ops; i++) {
          const uint64_t k = random ? rng.below(numInstances) : i % numInstances;
          Field1 f(objs[k]);
          if (write)
            f.set_value(tc, static_cast<int64_t>(i));
          else
            sink += f.value(tc);
        }
        break;
      }
      case 2: {  // owned: acquire every lock once, then re-access
        for (uint64_t k = 0; k < numInstances; k++) {
          Field1 f(objs[k]);
          if (write)
            f.set_value(tc, 1);
          else
            (void)f.value(tc);
        }
        sw.reset();
        volatile int64_t sink = 0;
        for (uint64_t i = 0; i < ops; i++) {
          const uint64_t k = random ? rng.below(numInstances) : i % numInstances;
          Field1 f(objs[k]);
          if (write)
            f.set_value(tc, static_cast<int64_t>(i));
          else
            sink += f.value(tc);
        }
        break;
      }
      case 3: {  // acq & rls: split between accesses so every access locks
        volatile int64_t sink = 0;
        for (uint64_t i = 0; i < ops; i++) {
          const uint64_t k = random ? rng.below(numInstances) : i % numInstances;
          Field1 f(objs[k]);
          if (write)
            f.set_value(tc, static_cast<int64_t>(i));
          else
            sink += f.value(tc);
          split(tc);  // release, so the next access acquires again
        }
        break;
      }
      case 4: {  // versioned: the class is pinned to the stamp map.
        // A versioned READ is stateless per access — stamp check plus
        // read-set append, with nothing held across accesses — so no
        // split is needed to force "re-acquisition"; every iteration
        // already pays the full protocol. Like the Owned row, the read
        // patterns first touch every instance (materializing the lazy
        // stamp arrays, a one-time init every effect shares) and then
        // time the steady state; the commit-time validation of the
        // accumulated read set IS timed (the split before
        // sw.seconds()). WRITES do lock exclusively, so they split per
        // access exactly like Acq&Rls.
        volatile int64_t sink = 0;
        if (!write) {
          for (uint64_t k = 0; k < numInstances; k++)
            sink += Field1(objs[k]).value(tc);
          split(tc);
          sw.reset();
        }
        for (uint64_t i = 0; i < ops; i++) {
          const uint64_t k = random ? rng.below(numInstances) : i % numInstances;
          Field1 f(objs[k]);
          if (write) {
            f.set_value(tc, static_cast<int64_t>(i));
            split(tc);
          } else {
            sink += f.value(tc);
          }
        }
        if (!write) split(tc);
        break;
      }
    }
    seconds = sw.seconds();
  });
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  SBD_ATTACH_THREAD();
  Options opts(argc, argv);
  const auto ops = static_cast<uint64_t>(opts.get_int("ops", 400000));
  const auto instances = static_cast<uint64_t>(opts.get_int("instances", 100000));
  const std::string jsonPath = opts.get_str("json", "");
  // --trace measures WITH the obs tracer recording (the perf-smoke
  // acceptance gate: Acq&Rls must stay within 5% of the untraced run).
  const bool trace = opts.get_int("trace", 0) != 0 || sbd::obs::enabled();
  if (trace) sbd::obs::set_enabled(true);

  std::printf("=== Table 6: microbenchmark, %llu ops over %llu instances ===\n\n",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(instances));
  TextTable t({"Effect", "Read/Rnd", "Read/Seq", "Write/Rnd", "Write/Seq"});
  const char* names[5] = {"Baseline", "New", "Owned", "Acq&Rls", "Versioned"};
  const char* patterns[4] = {"read_rnd", "read_seq", "write_rnd", "write_seq"};
  double base[4] = {0, 0, 0, 0};
  double all[5][4];
  for (int effect = 0; effect < 5; effect++) {
    if (effect == 4 &&
        !set_lock_granularity(Field1::klass(), LockGranularity::kVersioned)) {
      std::fprintf(stderr, "cannot pin the bench class to versioned\n");
      return 1;
    }
    double cells[4];
    int c = 0;
    for (bool write : {false, true}) {
      for (bool random : {true, false}) {
        cells[c++] = run_pattern(ops, instances, write, random, effect);
      }
    }
    if (effect == 0)
      for (int i = 0; i < 4; i++) base[i] = cells[i];
    for (int i = 0; i < 4; i++) all[effect][i] = cells[i];
    auto fmt = [&](int i) {
      std::string s = TextTable::fmt(cells[i] * 1000, 1) + "ms";
      if (effect > 0 && base[i] > 0)
        s += " (+" + TextTable::fmt((cells[i] / base[i] - 1) * 100, 0) + "%)";
      return s;
    };
    t.add_row({names[effect], fmt(0), fmt(1), fmt(2), fmt(3)});
  }
  t.print();
  std::printf(
      "\nShape check (paper Table 6): New adds ~1%%, Owned adds a check\n"
      "(tens of %%), Acq&Rls costs multiples of the baseline; Versioned\n"
      "reads skip the lock word and land near Owned.\n");

  if (!jsonPath.empty()) {
    // Machine-readable results for CI perf-smoke trending: milliseconds
    // and throughput per effect x pattern cell.
    std::FILE* f = std::fopen(jsonPath.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"ops\": %llu,\n  \"instances\": %llu,\n  \"effects\": {\n",
                 static_cast<unsigned long long>(ops),
                 static_cast<unsigned long long>(instances));
    for (int effect = 0; effect < 5; effect++) {
      std::fprintf(f, "    \"%s\": {", names[effect]);
      for (int i = 0; i < 4; i++) {
        const double ms = all[effect][i] * 1000;
        const double opsPerSec = all[effect][i] > 0
                                     ? static_cast<double>(ops) / all[effect][i]
                                     : 0;
        std::fprintf(f, "%s\"%s_ms\": %.3f, \"%s_ops_per_sec\": %.0f",
                     i == 0 ? "" : ", ", patterns[i], ms, patterns[i], opsPerSec);
      }
      std::fprintf(f, "}%s\n", effect == 4 ? "" : ",");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", jsonPath.c_str());
  }
  if (trace) {
    std::printf("trace: recorded=%llu dropped=%llu\n",
                static_cast<unsigned long long>(sbd::obs::recorded()),
                static_cast<unsigned long long>(sbd::obs::dropped()));
  }
  sbd::obs::export_metrics_if_requested();  // honors SBD_METRICS_JSON
  return 0;
}
