// Table 6 — microbenchmark: read/write operations over single-field
// instances, random and sequential access, by lock-operation effect:
//
//   Baseline    — access with no locking operation at all
//   New         — instance is new in the current transaction (null check)
//   Owned       — lock already held (membership check)
//   Acq & Rls   — acquire + release incl. undo logging
//   Versioned   — invisible-reader granularity: reads validate a stamp
//                 instead of locking (same split-per-access pattern as
//                 Acq&Rls, so the two rows compare directly)
//
// The paper runs 100 M ops over 100 M instances; the default here is
// scaled to the host (flags: --ops, --instances) — the *ratios* are the
// reproduced result: New is nearly free, Owned costs one check, and
// Acq&Rls dominates, with sequential access amplifying the relative
// overhead because the baseline is cache-friendly.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "api/sbd.h"
#include "common/options.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timing.h"
#include "core/obs.h"
#include "threads/sbd_thread.h"

namespace {

using namespace sbd;

class Field1 : public runtime::TypedRef<Field1> {
 public:
  SBD_CLASS(MicroField1, SBD_SLOT("value"))
  SBD_FIELD_I64(0, value)
};

// The contended-queue row: every thread write-locks the same striped
// word, so the wait/park subsystem — not the lock fast path — is what
// gets measured.
class HotCell : public runtime::TypedRef<HotCell> {
 public:
  SBD_CLASS(MicroHotCell, SBD_SLOT("n"))
  SBD_FIELD_I64(0, n)
};

struct ContendedResult {
  double seconds = 0;
  uint64_t grants = 0;     // kGranted events captured (wait latencies)
  double p50WaitMs = 0;
  double p99WaitMs = 0;
};

// N threads hammering one striped word: increment-and-split in a tight
// loop, so every operation re-acquires the write lock through the
// contended path. Wait latencies come from the obs kGranted events.
ContendedResult run_contended(int threads, uint64_t opsPerThread) {
  runtime::GlobalRoot<HotCell> cell;
  run_sbd([&] {
    HotCell c = HotCell::alloc();
    c.init_n(0);
    cell.set(c);
  });
  const bool wasEnabled = obs::enabled();
  obs::set_enabled(true);
  (void)obs::drain();  // start from a clean ring

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  ContendedResult res;
  {
    std::vector<SbdThread> ts;
    ts.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; t++) {
      ts.emplace_back([&] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        auto& tc = sbd::context();
        for (uint64_t i = 0; i < opsPerThread; i++) {
          HotCell c = cell.get();
          c.set_n(tc, c.n(tc) + 1);
          // Yield while the write lock is held: on few-core hosts this
          // is what makes lock ownership overlap scheduling quanta, so
          // every other thread actually queues (otherwise each thread
          // runs its whole slice uncontended and the wait subsystem is
          // never exercised).
          std::this_thread::yield();
          split(tc);
        }
      });
    }
    for (auto& t : ts) t.start();
    while (ready.load() != threads) std::this_thread::yield();
    Stopwatch sw;
    go.store(true, std::memory_order_release);
    for (auto& t : ts) t.join();
    res.seconds = sw.seconds();
  }
  run_sbd([&] {
    if (cell.get().n() != static_cast<int64_t>(opsPerThread) * threads)
      std::fprintf(stderr, "contended: BAD SUM %lld\n",
                   static_cast<long long>(cell.get().n()));
  });

  std::vector<uint64_t> waits;
  for (const obs::Event& e : obs::drain())
    if (e.kind == obs::EventKind::kGranted) waits.push_back(e.durationNanos);
  obs::set_enabled(wasEnabled);
  res.grants = waits.size();
  if (!waits.empty()) {
    std::sort(waits.begin(), waits.end());
    res.p50WaitMs = static_cast<double>(waits[waits.size() / 2]) / 1e6;
    res.p99WaitMs =
        static_cast<double>(waits[(waits.size() * 99) / 100]) / 1e6;
  }
  return res;
}

struct MicroResult {
  double baseline, checkNew, owned, acqRls;
};

// One measurement: `ops` accesses over `numInstances` objects.
// `effect` selects how each access behaves; `write` and `random` select
// the pattern.
double run_pattern(uint64_t ops, uint64_t numInstances, bool write, bool random,
                   int effect) {
  std::vector<runtime::ManagedObject*> objs(numInstances);
  double seconds = 0;
  run_sbd([&] {
    auto& tc = sbd::context();  // one TLS lookup for the whole measurement
    for (uint64_t i = 0; i < numInstances; i++) {
      Field1 f = Field1::alloc();
      f.init_value(static_cast<int64_t>(i));
      objs[i] = f.raw();
    }
    if (effect != 1) split(tc);  // effect 1 ("new") keeps instances new

    Rng rng(99);
    Stopwatch sw;
    switch (effect) {
      case 0: {  // baseline: direct slot access, no lock operation
        volatile int64_t sink = 0;
        for (uint64_t i = 0; i < ops; i++) {
          const uint64_t k = random ? rng.below(numInstances) : i % numInstances;
          if (write)
            objs[k]->slots()[0] = static_cast<uint64_t>(i);
          else
            sink += static_cast<int64_t>(objs[k]->slots()[0]);
        }
        break;
      }
      case 1: {  // new: instances created in this transaction
        volatile int64_t sink = 0;
        for (uint64_t i = 0; i < ops; i++) {
          const uint64_t k = random ? rng.below(numInstances) : i % numInstances;
          Field1 f(objs[k]);
          if (write)
            f.set_value(tc, static_cast<int64_t>(i));
          else
            sink += f.value(tc);
        }
        break;
      }
      case 2: {  // owned: acquire every lock once, then re-access
        for (uint64_t k = 0; k < numInstances; k++) {
          Field1 f(objs[k]);
          if (write)
            f.set_value(tc, 1);
          else
            (void)f.value(tc);
        }
        sw.reset();
        volatile int64_t sink = 0;
        for (uint64_t i = 0; i < ops; i++) {
          const uint64_t k = random ? rng.below(numInstances) : i % numInstances;
          Field1 f(objs[k]);
          if (write)
            f.set_value(tc, static_cast<int64_t>(i));
          else
            sink += f.value(tc);
        }
        break;
      }
      case 3: {  // acq & rls: split between accesses so every access locks
        volatile int64_t sink = 0;
        for (uint64_t i = 0; i < ops; i++) {
          const uint64_t k = random ? rng.below(numInstances) : i % numInstances;
          Field1 f(objs[k]);
          if (write)
            f.set_value(tc, static_cast<int64_t>(i));
          else
            sink += f.value(tc);
          split(tc);  // release, so the next access acquires again
        }
        break;
      }
      case 4: {  // versioned: the class is pinned to the stamp map.
        // A versioned READ is stateless per access — stamp check plus
        // read-set append, with nothing held across accesses — so no
        // split is needed to force "re-acquisition"; every iteration
        // already pays the full protocol. Like the Owned row, the read
        // patterns first touch every instance (materializing the lazy
        // stamp arrays, a one-time init every effect shares) and then
        // time the steady state; the commit-time validation of the
        // accumulated read set IS timed (the split before
        // sw.seconds()). WRITES do lock exclusively, so they split per
        // access exactly like Acq&Rls.
        volatile int64_t sink = 0;
        if (!write) {
          for (uint64_t k = 0; k < numInstances; k++)
            sink += Field1(objs[k]).value(tc);
          split(tc);
          sw.reset();
        }
        for (uint64_t i = 0; i < ops; i++) {
          const uint64_t k = random ? rng.below(numInstances) : i % numInstances;
          Field1 f(objs[k]);
          if (write) {
            f.set_value(tc, static_cast<int64_t>(i));
            split(tc);
          } else {
            sink += f.value(tc);
          }
        }
        if (!write) split(tc);
        break;
      }
    }
    seconds = sw.seconds();
  });
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  SBD_ATTACH_THREAD();
  Options opts(argc, argv);
  const auto ops = static_cast<uint64_t>(opts.get_int("ops", 400000));
  const auto instances = static_cast<uint64_t>(opts.get_int("instances", 100000));
  const std::string jsonPath = opts.get_str("json", "");
  // --trace measures WITH the obs tracer recording (the perf-smoke
  // acceptance gate: Acq&Rls must stay within 5% of the untraced run).
  const bool trace = opts.get_int("trace", 0) != 0 || sbd::obs::enabled();
  if (trace) sbd::obs::set_enabled(true);

  std::printf("=== Table 6: microbenchmark, %llu ops over %llu instances ===\n\n",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(instances));
  TextTable t({"Effect", "Read/Rnd", "Read/Seq", "Write/Rnd", "Write/Seq"});
  const char* names[5] = {"Baseline", "New", "Owned", "Acq&Rls", "Versioned"};
  const char* patterns[4] = {"read_rnd", "read_seq", "write_rnd", "write_seq"};
  double base[4] = {0, 0, 0, 0};
  double all[5][4];
  for (int effect = 0; effect < 5; effect++) {
    if (effect == 4 &&
        !set_lock_granularity(Field1::klass(), LockGranularity::kVersioned)) {
      std::fprintf(stderr, "cannot pin the bench class to versioned\n");
      return 1;
    }
    double cells[4];
    int c = 0;
    for (bool write : {false, true}) {
      for (bool random : {true, false}) {
        cells[c++] = run_pattern(ops, instances, write, random, effect);
      }
    }
    if (effect == 0)
      for (int i = 0; i < 4; i++) base[i] = cells[i];
    for (int i = 0; i < 4; i++) all[effect][i] = cells[i];
    auto fmt = [&](int i) {
      std::string s = TextTable::fmt(cells[i] * 1000, 1) + "ms";
      if (effect > 0 && base[i] > 0)
        s += " (+" + TextTable::fmt((cells[i] / base[i] - 1) * 100, 0) + "%)";
      return s;
    };
    t.add_row({names[effect], fmt(0), fmt(1), fmt(2), fmt(3)});
  }
  t.print();
  std::printf(
      "\nShape check (paper Table 6): New adds ~1%%, Owned adds a check\n"
      "(tens of %%), Acq&Rls costs multiples of the baseline; Versioned\n"
      "reads skip the lock word and land near Owned.\n");

  // Contended-queue row (§3.2 wait subsystem): N threads hammering one
  // striped word. Throughput measures the park/unpark round trip; the
  // p99 wait latency comes from the obs kGranted events.
  const int cThreads = static_cast<int>(opts.get_int("contended-threads", 16));
  const auto cOps = static_cast<uint64_t>(opts.get_int("contended-ops", 500));
  ContendedResult cr;
  if (cThreads > 0) {
    if (!set_lock_granularity(HotCell::klass(), LockGranularity::kStriped, 1)) {
      std::fprintf(stderr, "cannot pin the contended class to striped:1\n");
      return 1;
    }
    cr = run_contended(cThreads, cOps);
    const double tput =
        cr.seconds > 0 ? static_cast<double>(cOps) * cThreads / cr.seconds : 0;
    std::printf(
        "\n=== Contended queue: %d threads x %llu ops on one striped word ===\n"
        "throughput %.0f ops/s, wait latency p50 %.3fms / p99 %.3fms "
        "(%llu grants)\n",
        cThreads, static_cast<unsigned long long>(cOps), tput, cr.p50WaitMs,
        cr.p99WaitMs, static_cast<unsigned long long>(cr.grants));
  }

  if (!jsonPath.empty()) {
    // Machine-readable results for CI perf-smoke trending: milliseconds
    // and throughput per effect x pattern cell.
    std::FILE* f = std::fopen(jsonPath.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"ops\": %llu,\n  \"instances\": %llu,\n  \"effects\": {\n",
                 static_cast<unsigned long long>(ops),
                 static_cast<unsigned long long>(instances));
    for (int effect = 0; effect < 5; effect++) {
      std::fprintf(f, "    \"%s\": {", names[effect]);
      for (int i = 0; i < 4; i++) {
        const double ms = all[effect][i] * 1000;
        const double opsPerSec = all[effect][i] > 0
                                     ? static_cast<double>(ops) / all[effect][i]
                                     : 0;
        std::fprintf(f, "%s\"%s_ms\": %.3f, \"%s_ops_per_sec\": %.0f",
                     i == 0 ? "" : ", ", patterns[i], ms, patterns[i], opsPerSec);
      }
      std::fprintf(f, "}%s\n", effect == 4 ? "" : ",");
    }
    std::fprintf(f, "  }%s\n", cThreads > 0 ? "," : "");
    if (cThreads > 0) {
      const double tput =
          cr.seconds > 0 ? static_cast<double>(cOps) * cThreads / cr.seconds : 0;
      std::fprintf(f,
                   "  \"contended\": {\"threads\": %d, \"ops_per_thread\": %llu, "
                   "\"seconds\": %.4f, \"throughput_ops_per_sec\": %.0f, "
                   "\"grants\": %llu, \"p50_wait_ms\": %.3f, \"p99_wait_ms\": %.3f}\n",
                   cThreads, static_cast<unsigned long long>(cOps), cr.seconds,
                   tput, static_cast<unsigned long long>(cr.grants), cr.p50WaitMs,
                   cr.p99WaitMs);
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", jsonPath.c_str());
  }
  if (trace) {
    std::printf("trace: recorded=%llu dropped=%llu\n",
                static_cast<unsigned long long>(sbd::obs::recorded()),
                static_cast<unsigned long long>(sbd::obs::dropped()));
  }
  sbd::obs::export_metrics_if_requested();  // honors SBD_METRICS_JSON
  return 0;
}
