// Table 7 — locking operations per second, by effect, per benchmark.
//
// Single-threaded SBD runs; the STM's per-effect counters divided by
// the run's wall time. The reproduced shape: Sunflow leads in Init and
// Check-Owned (pure memory workload); LuIndex/LuSearch lead in
// Check-New (they build large object graphs per section); H2 is tiny in
// everything but relatively Acq-heavy (its work is in the DB); Tomcat
// has the highest Acq&Rls share (many small write-locked sections).
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "dacapo/harness.h"
#include "runtime/heap.h"

int main(int argc, char** argv) {
  SBD_ATTACH_THREAD();
  using namespace sbd;
  Options opts(argc, argv);
  dacapo::Scale scale{opts.get_double("scale", 0.3)};

  std::printf("=== Table 7: locking operations per second (avg, 1 thread) ===\n\n");
  TextTable t({"Benchmark", "Init", "Check New", "Check Owned", "Acq."});
  for (auto& b : dacapo::all_benchmarks()) {
    const auto r = b.sbd(scale, 1);
    const double s = r.seconds > 0 ? r.seconds : 1e-9;
    auto per_sec = [&](uint64_t n) {
      return TextTable::fmt_count(static_cast<uint64_t>(static_cast<double>(n) / s));
    };
    t.add_row({b.name, per_sec(r.stm.lockInit), per_sec(r.stm.checkNew),
               per_sec(r.stm.checkOwned), per_sec(r.stm.acqRls)});
  }
  t.print();
  std::printf(
      "\nShape check (paper Table 7): Sunflow dominates Init+Owned, the Lucene\n"
      "pair dominates Check-New, H2 is small everywhere, Tomcat is Acq-heavy.\n");
  return 0;
}
