// Table 7 — locking operations per second, by effect, per benchmark.
//
// Single-threaded SBD runs; the STM's per-effect counters divided by
// the run's wall time. The reproduced shape: Sunflow leads in Init and
// Check-Owned (pure memory workload); LuIndex/LuSearch lead in
// Check-New (they build large object graphs per section); H2 is tiny in
// everything but relatively Acq-heavy (its work is in the DB); Tomcat
// has the highest Acq&Rls share (many small write-locked sections).
//
// The IL section measures the same counters on an SBD-IL workload
// across the execution matrix of §4: {interp, compiled threaded code}
// × {O1 off, O1, O1+interprocedural summaries}. Both backends must
// report identical lock-op counts per optimization level (bit-identity
// contract, tests/il/il_backend_diff_test.cpp); the compiled backend is
// the same work in less time, and the interprocedural column shows the
// summary pass dropping covered re-locks across the call boundary.
//
//   --json PATH   write the machine-readable results (BENCH_table7.json)
//   --check       exit nonzero unless compiled >= 3x interp on the IL
//                 workload and the interprocedural pass eliminated at
//                 least one lock op per covered call site (CI smoke)
//   --il-only     skip the DaCapo section (CI smoke keeps runtime small)
#include <cstdio>
#include <string>
#include <vector>

#include "api/sbd.h"
#include "common/options.h"
#include "common/table.h"
#include "common/timing.h"
#include "dacapo/harness.h"
#include "il/compile.h"
#include "il/interp.h"
#include "il/opt.h"
#include "il/transform.h"
#include "runtime/heap.h"

namespace {

using namespace sbd;

runtime::ClassInfo* acc_class() {
  static runtime::ClassInfo* ci = runtime::register_class(
      "T7Accum", {{"sum", false, false}, {"aux", false, false}});
  return ci;
}

// A call-dense object workload — the shape the interprocedural pass is
// for: small helpers behind call boundaries, shared state threaded
// through them.
//   leaf(p): read-locks p.sum on every path to its return — the exit
//     fact the summary exports.
//   step(a, b, n) -> wrap(a + b, n): a tiny pure combinator chain,
//     (a + b) mod n behind two call boundaries. Small callees are the
//     worst case for the interpreter (per-call name lookup and frame
//     zeroing dwarf the one-instruction bodies) and the best case for
//     the compiled tier's inline frame stack.
//   hot(p, arr, n): per iteration calls leaf, re-reads p.sum (that
//     lock is droppable only with summaries), folds arr[i] and the
//     call results through step, writes p.sum.
void build_workload(il::Module& m) {
  {
    il::FnBuilder fb(m, "leaf", 1, 4);
    fb.getf(1, 0, 0, acc_class());
    fb.ret(1);
  }
  {
    il::FnBuilder fb(m, "wrap", 2, 3);
    fb.bin(2, il::BinOp::kMod, 0, 1);
    fb.ret(2);
  }
  {
    il::FnBuilder fb(m, "step", 3, 5);
    fb.bin(3, il::BinOp::kAdd, 0, 1);
    fb.call(4, "wrap", {3, 2});
    fb.ret(4);
  }
  il::FnBuilder fb(m, "hot", 3, 12);
  const int p = 0, arr = 1, n = 2, i = 3, one = 4, cond = 5, elem = 6, sum = 7,
            r = 8, acc = 9;
  fb.cst(i, 0);
  fb.cst(one, 1);
  const int head = fb.block();
  const int done = fb.block();
  fb.br(head);
  fb.at(head);
  fb.call(r, "leaf", {p});
  fb.getf(sum, p, 0, acc_class());
  fb.gete(elem, arr, i);
  fb.call(acc, "step", {elem, i, n});
  fb.call(acc, "step", {acc, r, n});
  fb.call(acc, "step", {acc, elem, n});
  fb.call(sum, "step", {sum, acc, n});
  fb.call(sum, "step", {sum, r, n});
  fb.call(sum, "step", {sum, i, n});
  fb.setf(p, 0, sum, acc_class());
  fb.bin(i, il::BinOp::kAdd, i, one);
  fb.bin(cond, il::BinOp::kLt, i, n);
  fb.cbr(cond, head, done);
  fb.at(done);
  fb.getf(sum, p, 0, acc_class());
  fb.ret(sum);
}

struct IlRow {
  std::string opt;      // "none" | "O1" | "O1+interproc"
  std::string backend;  // "interp" | "compiled"
  double ms = 0;
  uint64_t lockOps = 0;
  int64_t result = 0;
};

// One measured run; the module is prepared (locks inserted + optimized)
// by the caller. Returns the best of five for stable CI.
IlRow run_il(const il::Module& m, const il::CompiledModule& cm, bool compiled,
             int64_t iters, const char* opt) {
  IlRow row;
  row.opt = opt;
  row.backend = compiled ? "compiled" : "interp";
  row.ms = 1e100;
  for (int rep = 0; rep < 5; rep++) {
    run_sbd([&] {
      auto* p = runtime::Heap::instance().alloc_object(acc_class());
      auto* arr = runtime::Heap::instance().alloc_array(runtime::ElemKind::kI64,
                                                        static_cast<uint64_t>(iters));
      for (int64_t i = 0; i < iters; i++)
        runtime::init_write_elem(arr, static_cast<uint64_t>(i),
                                 static_cast<uint64_t>(i % 7));
      split();  // escape: the hot loop pays real lock operations
      auto& tc = core::tls_context();
      const auto before = tc.stats;
      Stopwatch sw;
      const std::vector<int64_t> args{reinterpret_cast<int64_t>(p),
                                      reinterpret_cast<int64_t>(arr), iters};
      row.result = compiled ? il::execute(cm, "hot", args) : il::execute(m, "hot", args);
      const double ms = sw.seconds() * 1000;
      if (ms < row.ms) row.ms = ms;
      const auto d = tc.stats.diff(before);
      row.lockOps = d.lockInit + d.checkNew + d.checkOwned + d.acqRls;
    });
  }
  return row;
}

void json_escape_free_rows(std::FILE* f, const std::vector<IlRow>& rows) {
  for (size_t i = 0; i < rows.size(); i++) {
    std::fprintf(f,
                 "    {\"opt\": \"%s\", \"backend\": \"%s\", \"time_ms\": %.3f, "
                 "\"lock_ops\": %llu, \"result\": %lld}%s\n",
                 rows[i].opt.c_str(), rows[i].backend.c_str(), rows[i].ms,
                 static_cast<unsigned long long>(rows[i].lockOps),
                 static_cast<long long>(rows[i].result), i + 1 < rows.size() ? "," : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  SBD_ATTACH_THREAD();
  Options opts(argc, argv);
  dacapo::Scale scale{opts.get_double("scale", 0.3)};
  const bool ilOnly = opts.get_bool("il-only", false);
  const bool check = opts.get_bool("check", false);
  const std::string jsonPath = opts.get_str("json", "");
  const int64_t kIters = opts.get_int("iters", 60000);

  struct DacapoRow {
    std::string name;
    double perSec[4];
  };
  std::vector<DacapoRow> dacapoRows;
  if (!ilOnly) {
    std::printf("=== Table 7: locking operations per second (avg, 1 thread) ===\n\n");
    TextTable t({"Benchmark", "Init", "Check New", "Check Owned", "Acq."});
    for (auto& b : dacapo::all_benchmarks()) {
      const auto r = b.sbd(scale, 1);
      const double s = r.seconds > 0 ? r.seconds : 1e-9;
      auto rate = [&](uint64_t n) { return static_cast<double>(n) / s; };
      auto per_sec = [&](uint64_t n) {
        return TextTable::fmt_count(static_cast<uint64_t>(rate(n)));
      };
      t.add_row({b.name, per_sec(r.stm.lockInit), per_sec(r.stm.checkNew),
                 per_sec(r.stm.checkOwned), per_sec(r.stm.acqRls)});
      dacapoRows.push_back({b.name,
                            {rate(r.stm.lockInit), rate(r.stm.checkNew),
                             rate(r.stm.checkOwned), rate(r.stm.acqRls)}});
    }
    t.print();
    std::printf(
        "\nShape check (paper Table 7): Sunflow dominates Init+Owned, the Lucene\n"
        "pair dominates Check-New, H2 is small everywhere, Tomcat is Acq-heavy.\n");
  }

  // --- IL execution matrix --------------------------------------------------
  struct Level {
    const char* name;
    il::OptStats stats;
    il::Module m;
    il::CompiledModule cm;
  };
  std::vector<Level> levels(3);
  levels[0].name = "none";
  levels[1].name = "O1";
  levels[2].name = "O1+interproc";
  for (auto& lv : levels) {
    build_workload(lv.m);
    il::insert_locks(lv.m);
  }
  // O3 inlining is off for every level: the matrix attributes time
  // deltas to backend dispatch and lock-op deltas to O1/interproc, and
  // inlining the helpers would fold cross-call eliminations into
  // intraprocedural ones while also removing the calls being measured.
  levels[1].stats = il::optimize(levels[1].m, /*interproc=*/false, /*inlineSmall=*/false);
  levels[2].stats = il::optimize(levels[2].m, /*interproc=*/true, /*inlineSmall=*/false);
  for (auto& lv : levels) lv.cm = il::compile(lv.m);

  std::vector<IlRow> rows;
  for (auto& lv : levels) {
    rows.push_back(run_il(lv.m, lv.cm, false, kIters, lv.name));
    rows.push_back(run_il(lv.m, lv.cm, true, kIters, lv.name));
  }

  std::printf("\n=== Table 7b: SBD-IL backends x lock optimization (%lld iters) ===\n\n",
              static_cast<long long>(kIters));
  TextTable t2({"Optimization", "Backend", "Time[ms]", "Dyn lock ops", "Result"});
  for (auto& r : rows)
    t2.add_row({r.opt, r.backend, TextTable::fmt(r.ms, 2),
                TextTable::fmt_count(r.lockOps), std::to_string(r.result)});
  t2.print();

  // Derived quantities the CI smoke asserts on.
  const IlRow& interpBest = rows[4];    // O1+interproc, interp
  const IlRow& compiledBest = rows[5];  // O1+interproc, compiled
  const double speedup = interpBest.ms / (compiledBest.ms > 0 ? compiledBest.ms : 1e-9);
  const uint64_t interprocSaved = rows[2].lockOps - rows[4].lockOps;  // O1 -> +interproc
  const int crossCall = levels[2].stats.crossCallEliminated;
  std::printf(
      "\ncompiled speedup over interp (O1+interproc): %.2fx\n"
      "lock ops eliminated by the interprocedural pass: %llu dynamic "
      "(%d static sites)\n",
      speedup, static_cast<unsigned long long>(interprocSaved), crossCall);

  bool ok = true;
  for (size_t i = 0; i + 1 < rows.size(); i += 2) {
    if (rows[i].result != rows[i + 1].result || rows[i].lockOps != rows[i + 1].lockOps) {
      std::fprintf(stderr, "FAIL: backends disagree at opt=%s\n", rows[i].opt.c_str());
      ok = false;
    }
  }

  if (!jsonPath.empty()) {
    std::FILE* f = std::fopen(jsonPath.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"workload_iters\": %lld,\n",
                 static_cast<long long>(kIters));
    std::fprintf(f, "  \"il_matrix\": [\n");
    json_escape_free_rows(f, rows);
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"eliminated_lockops\": {\"o1_static\": %d, "
                 "\"interproc_static_sites\": %d, \"interproc_dynamic\": %llu},\n",
                 levels[2].stats.locksEliminated, crossCall,
                 static_cast<unsigned long long>(interprocSaved));
    std::fprintf(f, "  \"compiled_speedup\": %.2f", speedup);
    if (!dacapoRows.empty()) {
      std::fprintf(f, ",\n  \"dacapo_ops_per_sec\": [\n");
      for (size_t i = 0; i < dacapoRows.size(); i++) {
        const auto& d = dacapoRows[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"init\": %.0f, \"check_new\": %.0f, "
                     "\"check_owned\": %.0f, \"acq_rls\": %.0f}%s\n",
                     d.name.c_str(), d.perSec[0], d.perSec[1], d.perSec[2], d.perSec[3],
                     i + 1 < dacapoRows.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n");
    } else {
      std::fprintf(f, "\n");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", jsonPath.c_str());
  }

  if (check) {
    if (speedup < 3.0) {
      std::fprintf(stderr, "FAIL: compiled backend only %.2fx over interp (need 3x)\n",
                   speedup);
      ok = false;
    }
    if (crossCall < 1 || interprocSaved == 0) {
      std::fprintf(stderr,
                   "FAIL: interprocedural pass eliminated nothing "
                   "(%d sites, %llu dynamic ops)\n",
                   crossCall, static_cast<unsigned long long>(interprocSaved));
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
