// Table 8 — memory overhead (single-threaded execution): the live
// baseline heap vs the SBD-specific allocations, split as in the paper:
//
//   Locks     — field/element lock structures (lazily allocated)
//   VWords    — versioned stamp arrays (invisible-reader granularity);
//               zero unless classes run on LockMap::kVersioned
//   R-W set   — lock records + undo entries (old values), avg per txn
//   Buffers   — transactional I/O buffers (deferred writes, replay)
//   Init      — the new-instance log
//
// Reproduced shape: lazy allocation keeps Locks low except for the
// workloads that touch many instances (LuSearch, Sunflow); LuIndex's
// Buffers dominate (one large file written in a single transaction);
// H2 has almost nothing (its state lives in the database).
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "core/stats.h"
#include "dacapo/harness.h"
#include "runtime/heap.h"
#include "runtime/sampler.h"

int main(int argc, char** argv) {
  SBD_ATTACH_THREAD();
  using namespace sbd;
  Options opts(argc, argv);
  dacapo::Scale scale{opts.get_double("scale", 0.3)};
  // --sampler uses the paper's exact methodology (§5.5): a separate
  // thread forces a GC every --interval ms and averages the samples.
  const bool useSampler = opts.get_bool("sampler", false);
  const int intervalMs = static_cast<int>(opts.get_int("interval", 50));

  std::printf("=== Table 8: memory overhead (avg, single-threaded) ===\n\n");
  TextTable t({"Benchmark", "Heap(live)", "Locks", "VWords", "R-W set/txn",
               "Buffers/txn", "Init/txn"});
  for (auto& b : dacapo::all_benchmarks()) {
    runtime::Heap::instance().collect();
    const auto heapBefore = runtime::Heap::instance().stats().liveBytes;
    runtime::MemorySampler sampler(intervalMs);
    if (useSampler) sampler.start();
    const auto r = b.sbd(scale, 1);
    uint64_t heapDelta, lockBytes, stampBytes;
    if (useSampler) {
      const auto avg = sampler.stop();
      heapDelta = avg.liveHeapBytes > static_cast<double>(heapBefore)
                      ? static_cast<uint64_t>(avg.liveHeapBytes) - heapBefore
                      : 0;
      lockBytes = static_cast<uint64_t>(avg.lockStructBytes);
      stampBytes = static_cast<uint64_t>(avg.versionWordBytes);
    } else {
      runtime::Heap::instance().collect();
      const auto heapAfter = runtime::Heap::instance().stats().liveBytes;
      heapDelta = heapAfter > heapBefore ? heapAfter - heapBefore : heapAfter;
      lockBytes = r.lockStructBytes;
      stampBytes = r.versionWordBytes;
    }
    const uint64_t txns = r.stm.txnFootprints ? r.stm.txnFootprints : 1;
    t.add_row({b.name, TextTable::fmt_bytes_k(heapDelta),
               TextTable::fmt_bytes_k(lockBytes),
               TextTable::fmt_bytes_k(stampBytes),
               std::to_string(r.stm.rwSetBytesSum / txns) + "B",
               std::to_string(r.stm.bufferBytesSum / txns) + "B",
               std::to_string(r.stm.initLogBytesSum / txns) + "B"});
  }
  t.print();
  std::printf(
      "\nShape check (paper Table 8): LuIndex has the largest buffers (single\n"
      "large file transaction); Sunflow/LuSearch have the largest lock\n"
      "structures; H2 adds almost nothing.\n");
  return 0;
}
