// Ablation A1 — the paper's §3.3 compile-time optimizations, measured
// on SBD-IL: the same program is executed unoptimized, with each pass
// alone, and with the full pipeline; the table reports dynamic
// lock-operation counts (the quantity the optimizations exist to cut)
// and wall time.
#include <cstdio>

#include "api/sbd.h"
#include "common/table.h"
#include "common/timing.h"
#include "il/interp.h"
#include "il/opt.h"
#include "il/transform.h"
#include "runtime/heap.h"

namespace {

using namespace sbd;

runtime::ClassInfo* acc_class() {
  static runtime::ClassInfo* ci =
      runtime::register_class("AblAccum", {{"sum", false, false}, {"aux", false, false}});
  return ci;
}

// The hot function: for i in 0..n { p.sum += arr[i]; p.aux = p.sum; }
// plus a helper call (inlining fodder).
void build_workload(il::Module& m) {
  {
    il::FnBuilder fb(m, "scale", 1, 3);
    fb.cst(1, 2);
    fb.bin(2, il::BinOp::kMul, 0, 1);
    fb.ret(2);
  }
  // Loop body (accumulator accesses lead, so their locks are loop-
  // invariant and hoistable; the element access is per-iteration):
  //   sum = p.sum; p.aux = sum; e = arr[i]; s = scale(e); p.sum = sum + s
  il::FnBuilder fb(m, "hot", 3, 12);
  const int p = 0, arr = 1, n = 2, i = 3, one = 4, cond = 5, elem = 6, sum = 7,
            scaled = 8;
  fb.cst(i, 0);
  fb.cst(one, 1);
  const int pre = fb.block();
  const int head = fb.block();
  const int done = fb.block();
  fb.br(pre);
  fb.at(pre);
  fb.br(head);
  fb.at(head);
  fb.getf(sum, p, 0);
  fb.setf(p, 1, sum);
  fb.gete(elem, arr, i);
  fb.call(scaled, "scale", {elem});
  fb.bin(sum, il::BinOp::kAdd, sum, scaled);
  fb.setf(p, 0, sum);
  fb.bin(i, il::BinOp::kAdd, i, one);
  fb.bin(cond, il::BinOp::kLt, i, n);
  fb.cbr(cond, head, done);
  fb.at(done);
  fb.getf(sum, p, 0);
  fb.ret(sum);
}

struct Variant {
  const char* name;
  std::function<void(il::Module&)> prepare;
};

}  // namespace

int main() {
  SBD_ATTACH_THREAD();
  const int64_t kIters = 20000;

  std::vector<Variant> variants = {
      {"unoptimized", [](il::Module&) {}},
      {"O1 eliminate", [](il::Module& m) { il::eliminate_redundant_locks(m); }},
      {"O2 hoist", [](il::Module& m) { il::hoist_loop_locks(m); }},
      {"O3 inline+O1",
       [](il::Module& m) {
         il::inline_small(m);
         il::eliminate_redundant_locks(m);
       }},
      {"full pipeline", [](il::Module& m) { il::optimize(m); }},
  };

  std::printf("=== Ablation A1: IL compile-time optimizations (paper 3.3) ===\n\n");
  TextTable t({"Variant", "Static locks", "Dyn lock ops", "Time[ms]", "Result"});
  for (auto& v : variants) {
    il::Module m;
    build_workload(m);
    il::insert_locks(m);
    v.prepare(m);
    const int staticLocks = il::count_ops(*m.get("hot"), il::Op::kLock);
    uint64_t dynOps = 0;
    int64_t result = 0;
    double ms = 0;
    run_sbd([&] {
      auto* p = runtime::Heap::instance().alloc_object(acc_class());
      auto* arr = runtime::Heap::instance().alloc_array(runtime::ElemKind::kI64,
                                                        static_cast<uint64_t>(kIters));
      for (int64_t i = 0; i < kIters; i++)
        runtime::init_write_elem(arr, static_cast<uint64_t>(i), static_cast<uint64_t>(i % 7));
      split();
      auto& tc = core::tls_context();
      const auto before = tc.stats;
      Stopwatch sw;
      result = il::execute(m, "hot",
                           {reinterpret_cast<int64_t>(p), reinterpret_cast<int64_t>(arr),
                            kIters});
      ms = sw.seconds() * 1000;
      const auto after = tc.stats;
      dynOps = (after.checkNew - before.checkNew) + (after.checkOwned - before.checkOwned) +
               (after.acqRls - before.acqRls) + (after.lockInit - before.lockInit);
    });
    t.add_row({v.name, std::to_string(staticLocks), std::to_string(dynOps),
               TextTable::fmt(ms, 1), std::to_string(result)});
  }
  t.print();
  std::printf(
      "\nShape check: every variant computes the same result; the full pipeline\n"
      "removes most dynamic lock operations (the paper's Table 7 counts are\n"
      "post-optimization numbers).\n");
  return 0;
}
