// Ablation A1 — the paper's §3.3 compile-time optimizations, measured
// on SBD-IL: the same program is executed unoptimized, with each pass
// alone, and with the full pipeline; the table reports dynamic
// lock-operation counts (the quantity the optimizations exist to cut)
// and wall time.
// Each variant runs on both execution backends; the bit-identity
// contract (tests/il/il_backend_diff_test.cpp) means the two must
// report the same result and dynamic lock-op count, so the table
// shows one pair of time columns per variant.
#include <cstdio>

#include "api/sbd.h"
#include "common/table.h"
#include "common/timing.h"
#include "il/compile.h"
#include "il/interp.h"
#include "il/opt.h"
#include "il/summary.h"
#include "il/transform.h"
#include "runtime/heap.h"

namespace {

using namespace sbd;

runtime::ClassInfo* acc_class() {
  static runtime::ClassInfo* ci =
      runtime::register_class("AblAccum", {{"sum", false, false}, {"aux", false, false}});
  return ci;
}

// The hot function: for i in 0..n { p.sum += arr[i]; p.aux = p.sum; }
// plus a helper call (inlining fodder).
void build_workload(il::Module& m) {
  {
    il::FnBuilder fb(m, "scale", 1, 3);
    fb.cst(1, 2);
    fb.bin(2, il::BinOp::kMul, 0, 1);
    fb.ret(2);
  }
  // Loop body (accumulator accesses lead, so their locks are loop-
  // invariant and hoistable; the element access is per-iteration):
  //   sum = p.sum; p.aux = sum; e = arr[i]; s = scale(e); p.sum = sum + s
  il::FnBuilder fb(m, "hot", 3, 12);
  const int p = 0, arr = 1, n = 2, i = 3, one = 4, cond = 5, elem = 6, sum = 7,
            scaled = 8;
  fb.cst(i, 0);
  fb.cst(one, 1);
  const int pre = fb.block();
  const int head = fb.block();
  const int done = fb.block();
  fb.br(pre);
  fb.at(pre);
  fb.br(head);
  fb.at(head);
  fb.getf(sum, p, 0);
  fb.setf(p, 1, sum);
  fb.gete(elem, arr, i);
  fb.call(scaled, "scale", {elem});
  fb.bin(sum, il::BinOp::kAdd, sum, scaled);
  fb.setf(p, 0, sum);
  fb.bin(i, il::BinOp::kAdd, i, one);
  fb.bin(cond, il::BinOp::kLt, i, n);
  fb.cbr(cond, head, done);
  fb.at(done);
  fb.getf(sum, p, 0);
  fb.ret(sum);
}

struct Variant {
  const char* name;
  std::function<void(il::Module&)> prepare;
};

}  // namespace

int main() {
  SBD_ATTACH_THREAD();
  const int64_t kIters = 20000;

  std::vector<Variant> variants = {
      {"unoptimized", [](il::Module&) {}},
      {"O1 eliminate", [](il::Module& m) { il::eliminate_redundant_locks(m); }},
      // O1 with call-graph summaries. The `scale` callee is pure, so the
      // summary's contribution here is keeping facts alive across the
      // call rather than exporting exit locks (bench_table7_lockops
      // measures the exported-coverage case).
      {"O1+interproc",
       [](il::Module& m) {
         const il::Summaries sums = il::compute_summaries(m);
         il::eliminate_redundant_locks(m, &sums);
       }},
      {"O2 hoist", [](il::Module& m) { il::hoist_loop_locks(m); }},
      {"O3 inline+O1",
       [](il::Module& m) {
         il::inline_small(m);
         il::eliminate_redundant_locks(m);
       }},
      {"full pipeline", [](il::Module& m) { il::optimize(m); }},
  };

  std::printf("=== Ablation A1: IL compile-time optimizations (paper 3.3) ===\n\n");
  TextTable t({"Variant", "Static locks", "Dyn lock ops", "Interp[ms]", "Compiled[ms]",
               "Result"});
  bool agree = true;
  for (auto& v : variants) {
    il::Module m;
    build_workload(m);
    il::insert_locks(m);
    v.prepare(m);
    const il::CompiledModule cm = il::compile(m);
    const int staticLocks = il::count_ops(*m.get("hot"), il::Op::kLock);
    uint64_t dynOps[2] = {0, 0};
    int64_t result[2] = {0, 0};
    double ms[2] = {0, 0};
    for (int be = 0; be < 2; be++) {
      run_sbd([&] {
        auto* p = runtime::Heap::instance().alloc_object(acc_class());
        auto* arr = runtime::Heap::instance().alloc_array(runtime::ElemKind::kI64,
                                                          static_cast<uint64_t>(kIters));
        for (int64_t i = 0; i < kIters; i++)
          runtime::init_write_elem(arr, static_cast<uint64_t>(i),
                                   static_cast<uint64_t>(i % 7));
        split();
        auto& tc = core::tls_context();
        const auto before = tc.stats;
        Stopwatch sw;
        const std::vector<int64_t> args{reinterpret_cast<int64_t>(p),
                                        reinterpret_cast<int64_t>(arr), kIters};
        result[be] = be ? il::execute(cm, "hot", args) : il::execute(m, "hot", args);
        ms[be] = sw.seconds() * 1000;
        const auto d = tc.stats.diff(before);
        dynOps[be] = d.checkNew + d.checkOwned + d.acqRls + d.lockInit;
      });
    }
    if (result[0] != result[1] || dynOps[0] != dynOps[1]) {
      std::fprintf(stderr, "FAIL: backends disagree at variant %s\n", v.name);
      agree = false;
    }
    t.add_row({v.name, std::to_string(staticLocks), std::to_string(dynOps[0]),
               TextTable::fmt(ms[0], 1), TextTable::fmt(ms[1], 1),
               std::to_string(result[0])});
  }
  t.print();
  std::printf(
      "\nShape check: every variant computes the same result on both backends;\n"
      "the full pipeline removes most dynamic lock operations (the paper's\n"
      "Table 7 counts are post-optimization numbers).\n");
  return agree ? 0 : 1;
}
