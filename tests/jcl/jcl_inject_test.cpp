// Failure injection over the managed collections: concurrent producers
// and consumers with forced aborts at every split must neither lose nor
// duplicate elements.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "core/inject.h"
#include "jcl/collections.h"

namespace sbd::jcl {
namespace {

class Token : public runtime::TypedRef<Token> {
 public:
  SBD_CLASS(InjToken, SBD_SLOT("v"))
  SBD_FIELD_I64(0, v)
  static Token make(int64_t v) {
    Token t = alloc();
    t.init_v(v);
    return t;
  }
};

TEST(JclInject, QueueTransfersExactlyOnce) {
  constexpr int kItems = 150;
  runtime::GlobalRoot<MTaskQueue> queue;
  runtime::GlobalRoot<runtime::I64Array> seen;  // per-item delivery count
  run_sbd([&] {
    queue.set(MTaskQueue::make(kItems + 1, true));
    seen.set(runtime::I64Array::make(kItems));
  });
  core::AbortInjectionScope inject(0.15, 99);
  {
    threads::SbdThread producer([&] {
      for (int i = 0; i < kItems; i++) {
        queue.get().put(Token::make(i).raw());
        split();
      }
    });
    threads::SbdThread consumer([&] {
      int got = 0;
      while (got < kItems) {
        runtime::ManagedObject* item = queue.get().take();
        if (item) {
          Token t(item);
          seen.get().set(static_cast<uint64_t>(t.v()),
                         seen.get().get(static_cast<uint64_t>(t.v())) + 1);
          got++;
        }
        split();
      }
    });
    producer.start();
    consumer.start();
    producer.join();
    consumer.join();
  }
  EXPECT_GT(core::injected_aborts(), 0u);
  run_sbd([&] {
    for (int i = 0; i < kItems; i++)
      EXPECT_EQ(seen.get().get(static_cast<uint64_t>(i)), 1)
          << "item " << i << " delivered a wrong number of times";
  });
}

TEST(JclInject, MapInsertsSurviveRetryStorm) {
  runtime::GlobalRoot<MStrMap> map;
  run_sbd([&] { map.set(MStrMap::make(8)); });
  core::AbortInjectionScope inject(0.2, 4242);
  {
    std::vector<threads::SbdThread> ts;
    for (int t = 0; t < 2; t++) {
      ts.emplace_back([&, t] {
        for (int i = 0; i < 80; i++) {
          const int key = t * 1000 + i;
          // Restore-safety: the key string dies before the split.
          {
            map.get().put(runtime::MString::make("k" + std::to_string(key)),
                          Token::make(key).raw());
          }
          split();
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  EXPECT_GT(core::injected_aborts(), 0u);
  run_sbd([&] {
    EXPECT_EQ(map.get().size(), 160);
    for (int t = 0; t < 2; t++)
      for (int i = 0; i < 80; i += 13) {
        const int key = t * 1000 + i;
        Token tok(map.get().get("k" + std::to_string(key)));
        ASSERT_FALSE(tok.is_null());
        EXPECT_EQ(tok.v(), key);
      }
  });
}

TEST(JclInject, VectorPushesAtomicUnderAborts) {
  runtime::GlobalRoot<MVector> vec;
  run_sbd([&] { vec.set(MVector::make(4)); });
  core::AbortInjectionScope inject(0.2, 777);
  {
    std::vector<threads::SbdThread> ts;
    for (int t = 0; t < 3; t++) {
      ts.emplace_back([&, t] {
        for (int i = 0; i < 60; i++) {
          vec.get().push(Token::make(t * 100 + i).raw());
          split();
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  run_sbd([&] {
    ASSERT_EQ(vec.get().size(), 180);
    // Every element present exactly once.
    std::set<int64_t> values;
    for (int64_t i = 0; i < 180; i++)
      EXPECT_TRUE(values.insert(vec.get().at<Token>(i).v()).second);
  });
}

}  // namespace
}  // namespace sbd::jcl
