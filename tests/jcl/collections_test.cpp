// Adapted class library: managed collections under SBD semantics.
#include "jcl/collections.h"

#include <gtest/gtest.h>

#include "core/transaction.h"

namespace sbd::jcl {
namespace {

using runtime::ManagedObject;

class Item : public runtime::TypedRef<Item> {
 public:
  SBD_CLASS(Item, SBD_SLOT("v"))
  SBD_FIELD_I64(0, v)
  static Item make(int64_t v) {
    Item it = alloc();
    it.init_v(v);
    return it;
  }
};

TEST(MVectorT, PushGrowPopRoundTrip) {
  run_sbd([&] {
    MVector v = MVector::make(2);
    for (int i = 0; i < 50; i++) v.push(Item::make(i).raw());
    EXPECT_EQ(v.size(), 50);
    for (int i = 0; i < 50; i++) EXPECT_EQ(v.at<Item>(i).v(), i);
    for (int i = 49; i >= 0; i--) EXPECT_EQ(Item(v.pop()).v(), i);
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.pop(), nullptr);
  });
}

TEST(MVectorT, SetOverwrites) {
  run_sbd([&] {
    MVector v = MVector::make();
    v.push(Item::make(1).raw());
    v.set(0, Item::make(9).raw());
    EXPECT_EQ(v.at<Item>(0).v(), 9);
  });
}

TEST(MVectorT, RolledBackByAbort) {
  runtime::GlobalRoot<MVector> root;
  run_sbd([&] {
    static bool aborted;
    aborted = false;
    root.set(MVector::make());
    root.get().push(Item::make(1).raw());
    split();
    root.get().push(Item::make(2).raw());
    if (!aborted) {
      aborted = true;
      core::abort_and_restart(core::tls_context());
    }
    split();
  });
  run_sbd([&] {
    // one push before the split + exactly one committed retry push
    EXPECT_EQ(root.get().size(), 2);
    EXPECT_EQ(root.get().at<Item>(1).v(), 2);
  });
}

TEST(MIntMapT, PutGetContains) {
  run_sbd([&] {
    MIntMap m = MIntMap::make();
    for (int64_t k = 0; k < 200; k++) m.put(k * 7, Item::make(k).raw());
    EXPECT_EQ(m.size(), 200);
    for (int64_t k = 0; k < 200; k++) {
      EXPECT_TRUE(m.contains(k * 7));
      EXPECT_EQ(m.at<Item>(k * 7).v(), k);
    }
    EXPECT_FALSE(m.contains(3));
    EXPECT_EQ(m.get(3), nullptr);
  });
}

TEST(MIntMapT, OverwriteKeepsSize) {
  run_sbd([&] {
    MIntMap m = MIntMap::make();
    m.put(5, Item::make(1).raw());
    m.put(5, Item::make(2).raw());
    EXPECT_EQ(m.size(), 1);
    EXPECT_EQ(m.at<Item>(5).v(), 2);
  });
}

TEST(MIntMapT, SurvivesRehashAndGc) {
  runtime::GlobalRoot<MIntMap> root;
  run_sbd([&] {
    MIntMap m = MIntMap::make(8);
    for (int64_t k = 0; k < 500; k++) m.put(k, Item::make(k * k).raw());
    root.set(m);
  });
  runtime::Heap::instance().collect();
  run_sbd([&] {
    for (int64_t k = 0; k < 500; k += 37) EXPECT_EQ(root.get().at<Item>(k).v(), k * k);
  });
}

TEST(MStrMapT, StringKeys) {
  run_sbd([&] {
    MStrMap m = MStrMap::make();
    m.put(runtime::MString::make("alpha"), Item::make(1).raw());
    m.put(runtime::MString::make("beta"), Item::make(2).raw());
    EXPECT_EQ(Item(m.get("alpha")).v(), 1);
    EXPECT_EQ(Item(m.get("beta")).v(), 2);
    EXPECT_EQ(m.get("gamma"), nullptr);
    EXPECT_EQ(m.size(), 2);
  });
}

TEST(MStrMapT, GetOrPutIdempotent) {
  run_sbd([&] {
    MStrMap m = MStrMap::make();
    int makes = 0;
    auto mk = [&] {
      makes++;
      return Item::make(7).raw();
    };
    ManagedObject* a = m.get_or_put("key", mk);
    ManagedObject* b = m.get_or_put("key", mk);
    EXPECT_EQ(a, b);
    EXPECT_EQ(makes, 1);
  });
}

TEST(MStrMapT, ManyKeysWithRehash) {
  run_sbd([&] {
    MStrMap m = MStrMap::make(8);
    for (int i = 0; i < 300; i++)
      m.put(runtime::MString::make("key" + std::to_string(i)), Item::make(i).raw());
    EXPECT_EQ(m.size(), 300);
    for (int i = 0; i < 300; i += 17)
      EXPECT_EQ(Item(m.get("key" + std::to_string(i))).v(), i);
  });
}

TEST(MTaskQueueT, FifoOrder) {
  run_sbd([&] {
    MTaskQueue q = MTaskQueue::make(16, /*useEmptyFlag=*/true);
    EXPECT_TRUE(q.empty_check());
    for (int i = 0; i < 10; i++) EXPECT_TRUE(q.put(Item::make(i).raw()));
    EXPECT_FALSE(q.empty_check());
    for (int i = 0; i < 10; i++) EXPECT_EQ(Item(q.take()).v(), i);
    EXPECT_TRUE(q.empty_check());
    EXPECT_EQ(q.take(), nullptr);
  });
}

TEST(MTaskQueueT, RespectsCapacity) {
  run_sbd([&] {
    MTaskQueue q = MTaskQueue::make(2, true);
    EXPECT_TRUE(q.put(Item::make(1).raw()));
    EXPECT_TRUE(q.put(Item::make(2).raw()));
    EXPECT_FALSE(q.put(Item::make(3).raw()));
  });
}

TEST(MTaskQueueT, WrapsAroundRing) {
  run_sbd([&] {
    MTaskQueue q = MTaskQueue::make(4, false);
    for (int round = 0; round < 5; round++) {
      for (int i = 0; i < 4; i++) ASSERT_TRUE(q.put(Item::make(round * 10 + i).raw()));
      for (int i = 0; i < 4; i++) ASSERT_EQ(Item(q.take()).v(), round * 10 + i);
    }
  });
}

// The Table 4 JCL claim, measured: with the isEmpty flag, a taker that
// finds the queue populated and a putter adding to a non-empty queue do
// NOT conflict on the same field; without it, both touch `size`.
TEST(MTaskQueueT, EmptyFlagReducesConflictSurface) {
  std::atomic<uint64_t> withFlagConflicts{0}, withoutFlagConflicts{0};
  auto measure = [&](bool useFlag) {
    runtime::GlobalRoot<MTaskQueue> q;
    run_sbd([&] {
      q.set(MTaskQueue::make(1024, useFlag));
      // Pre-fill so the queue never transitions to empty.
      for (int i = 0; i < 64; i++) q.get().put(Item::make(i).raw());
    });
    const auto before = core::TxnManager::instance().snapshot_stats();
    {
      threads::SbdThread producer([&] {
        for (int i = 0; i < 300; i++) {
          q.get().put(Item::make(i).raw());
          split();
        }
      });
      threads::SbdThread consumer([&] {
        for (int i = 0; i < 300; i++) {
          q.get().take();
          split();
        }
      });
      producer.start();
      consumer.start();
      producer.join();
      consumer.join();
    }
    const auto after = core::TxnManager::instance().snapshot_stats();
    return after.contendedAcquires - before.contendedAcquires;
  };
  withFlagConflicts = measure(true);
  withoutFlagConflicts = measure(false);
  // Both variants conflict on head/tail/size sometimes; the flag variant
  // must not be *worse*. (The strong separation shows up in the
  // dedicated ablation bench with more threads.)
  EXPECT_LE(withFlagConflicts.load(), withoutFlagConflicts.load() + 50);
}

}  // namespace
}  // namespace sbd::jcl
