#include "vtm/vtm.h"

#include <gtest/gtest.h>

namespace sbd::vtm {
namespace {

ModelInput balanced(int threads, uint64_t busyEach) {
  ModelInput in;
  for (int i = 0; i < threads; i++)
    in.threads.push_back(ThreadWork{static_cast<uint64_t>(i + 1), busyEach, 0, 0});
  return in;
}

TEST(Vtm, PerfectlyParallelWorkScalesLinearly) {
  const auto in = balanced(8, 1'000'000'000);
  const auto r1 = estimate(in, 1);
  const auto r8 = estimate(in, 8);
  EXPECT_NEAR(r1.makespanSeconds / r8.makespanSeconds, 8.0, 1e-9);
  EXPECT_NEAR(r8.utilization, 1.0, 1e-9);
}

TEST(Vtm, CriticalPathLimitsSpeedup) {
  // One long thread dominates: more cores cannot help beyond its length.
  ModelInput in;
  in.threads.push_back(ThreadWork{100, 8'000'000'000, 0, 0});
  for (int i = 0; i < 7; i++)
    in.threads.push_back(ThreadWork{static_cast<uint64_t>(i + 1), 1'000'000'000, 0, 0});
  const auto r = estimate(in, 32);
  EXPECT_NEAR(r.makespanSeconds, 8.0, 1e-9);
}

TEST(Vtm, AbortedWorkCountsAsWork) {
  ModelInput clean = balanced(4, 1'000'000'000);
  ModelInput churny = clean;
  for (auto& t : churny.threads) t.abortedNanos = 1'000'000'000;
  EXPECT_GT(estimate(churny, 4).makespanSeconds, estimate(clean, 4).makespanSeconds);
}

TEST(Vtm, BlockedTimeCreatesSerialFloor) {
  ModelInput in = balanced(4, 1'000'000'000);
  for (auto& t : in.threads) t.blockedNanos = 9'000'000'000;
  const auto r = estimate(in, 4);
  EXPECT_GT(r.serialSeconds, 1.0);
  EXPECT_GE(r.makespanSeconds, r.serialSeconds);
}

TEST(Vtm, SpeedupCurveMonotoneForParallelWork) {
  const auto in = balanced(16, 500'000'000);
  const auto curve = speedup_curve(in, {1, 2, 4, 8, 16});
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_NEAR(curve[0], 1.0, 1e-9);
  for (size_t i = 1; i < curve.size(); i++) EXPECT_GE(curve[i], curve[i - 1]);
  EXPECT_NEAR(curve[4], 16.0, 1e-9);
}

TEST(Vtm, ContendedCurveFlattens) {
  // Heavy blocking -> the curve should flatten well below core count.
  ModelInput in = balanced(16, 500'000'000);
  for (auto& t : in.threads) t.blockedNanos = 30'000'000'000ULL;
  const auto curve = speedup_curve(in, {1, 16});
  EXPECT_LT(curve[1], 8.0);
}

TEST(Vtm, DiffSubtractsBaseline) {
  ModelInput before = balanced(2, 100), after = balanced(2, 300);
  const auto d = diff(after, before);
  EXPECT_EQ(d.threads[0].busyNanos, 200u);
}

TEST(Vtm, EmptyInputYieldsZero) {
  const auto r = estimate(ModelInput{}, 4);
  EXPECT_EQ(r.makespanSeconds, 0);
}

}  // namespace
}  // namespace sbd::vtm
