// Thread operations: signalling, barrier (Fig. 6), thread locals.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "api/sbd.h"
#include "threads/barrier.h"
#include "threads/tx_local.h"

namespace sbd::threads {
namespace {

class Box : public runtime::TypedRef<Box> {
 public:
  SBD_CLASS(Box, SBD_SLOT("v"))
  SBD_FIELD_I64(0, v)
};

TEST(Monitor, WaitNotifyHandshake) {
  runtime::GlobalRoot<Box> cond;
  run_sbd([&] {
    Box b = Box::alloc();
    b.init_v(0);
    cond.set(b);
  });
  std::atomic<bool> sawUpdate{false};
  {
    SbdThread waiter([&] {
      Box b = cond.get();
      while (b.v() == 0) {
        wait_on(b.raw());
      }
      sawUpdate = b.v() == 1;
    });
    SbdThread setter([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      Box b = cond.get();
      b.set_v(1);
      notify_all(b.raw());
      split();  // deliver the (deferred) signal
    });
    waiter.start();
    setter.start();
    waiter.join();
    setter.join();
  }
  EXPECT_TRUE(sawUpdate.load());
}

TEST(Monitor, AbortedSectionNeverSignals) {
  runtime::GlobalRoot<Box> cond;
  run_sbd([&] {
    Box b = Box::alloc();
    b.init_v(0);
    cond.set(b);
  });
  std::atomic<int> wakeups{0};
  {
    SbdThread waiter([&] {
      Box b = cond.get();
      while (b.v() == 0) {
        wait_on(b.raw());
        wakeups++;
      }
    });
    SbdThread setter([&] {
      static bool aborted;
      aborted = false;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      split();
      Box b = cond.get();
      b.set_v(1);
      notify_all(b.raw());
      if (!aborted) {
        aborted = true;
        // Abort: the notify must NOT be delivered, the write rolls back.
        core::abort_and_restart(core::tls_context());
      }
      // Retry delivers for real at the final commit.
    });
    waiter.start();
    setter.start();
    waiter.join();
    setter.join();
  }
  // The waiter saw exactly the committed update (1 wakeup; a spurious
  // replay would have been re-checked against v()==1 anyway).
  EXPECT_GE(wakeups.load(), 1);
  run_sbd([&] { EXPECT_EQ(cond.get().v(), 1); });
}

TEST(Monitor, NotifyOneWakesAtLeastOne) {
  runtime::GlobalRoot<Box> cond;
  run_sbd([&] {
    Box b = Box::alloc();
    b.init_v(0);
    cond.set(b);
  });
  std::atomic<int> done{0};
  {
    std::vector<SbdThread> waiters;
    for (int i = 0; i < 2; i++) {
      waiters.emplace_back([&] {
        Box b = cond.get();
        while (b.v() < 1) wait_on(b.raw());
        done++;
      });
    }
    for (auto& w : waiters) w.start();
    SbdThread setter([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      Box b = cond.get();
      b.set_v(2);  // both waiters' conditions become true
      notify_all(b.raw());
      split();
    });
    setter.start();
    for (auto& w : waiters) w.join();
    setter.join();
  }
  EXPECT_EQ(done.load(), 2);
}

TEST(Barrier, AllThreadsMeet) {
  runtime::GlobalRoot<Barrier> bar;
  run_sbd([&] { bar.set(Barrier::make(4)); });
  std::atomic<int> beforeCount{0}, afterMax{0};
  {
    std::vector<SbdThread> ts;
    for (int i = 0; i < 4; i++) {
      ts.emplace_back([&] {
        beforeCount++;
        allow_split([&] { bar.get().sync(); });
        // Everyone passed the barrier only after all 4 arrived.
        afterMax = std::max(afterMax.load(), beforeCount.load());
        EXPECT_EQ(beforeCount.load(), 4);
        split();
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  EXPECT_EQ(afterMax.load(), 4);
}

TEST(Barrier, FigureSixCountsMatch) {
  run_sbd([&] {
    Barrier b = Barrier::make(3);
    EXPECT_EQ(b.expected(), 3);
    EXPECT_EQ(b.arrived(), 0);
  });
}

TEST(TxLocal, IndependentPerThread) {
  static TxLocalI64 cell;
  std::atomic<int64_t> observed{0};
  {
    std::vector<SbdThread> ts;
    for (int t = 1; t <= 3; t++) {
      ts.emplace_back([&, t] {
        cell.set(t * 100);
        split();
        observed += cell.get();  // each thread sees its own value
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  EXPECT_EQ(observed.load(), 600);
}

TEST(TxLocal, UndoneOnAbort) {
  static TxLocalI64 cell;
  run_sbd([&] {
    static bool aborted;
    aborted = false;
    cell.set(10);
    split();
    cell.set(20);
    if (!aborted) {
      aborted = true;
      EXPECT_EQ(cell.get(), 20);
      core::abort_and_restart(core::tls_context());
    }
    // The retry runs cell.set(20) again; in between the abort must have
    // restored 10 (verified implicitly: the undo slot was valid).
    EXPECT_EQ(cell.get(), 20);
  });
}

TEST(TxLocal, AggregateSumsThreads) {
  static TxLocalI64 counter;
  std::atomic<int64_t> agg{-1};
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < 4; t++) {
      ts.emplace_back([&] {
        for (int i = 0; i < 25; i++) counter.add(1);
        split();
        // Keep the thread alive until all finished, so aggregate() sees
        // every thread's cell.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (agg.load() == -1) agg = counter.aggregate();
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  EXPECT_EQ(agg.load(), 100);
}

TEST(TxLocalRefT, CachesPerThreadInstance) {
  static TxLocalRef<Box> cache;
  run_sbd([&] {
    Box a = cache.get_or_create([] {
      Box b = Box::alloc();
      b.init_v(11);
      return b;
    });
    Box b = cache.get_or_create([] { return Box::alloc(); });
    EXPECT_EQ(a.raw(), b.raw()) << "second call must reuse the cached instance";
    EXPECT_EQ(b.v(), 11);
  });
}

TEST(Split, NoSplitScopeSuppressesSplits) {
  run_sbd([&] {
    auto& tc = core::tls_context();
    const uint64_t commitsBefore = tc.stats.commits;
    {
      NoSplitScope noSplit;
      split();  // ignored (§3.7)
      split();
    }
    EXPECT_EQ(tc.stats.commits, commitsBefore);
    split();  // real
    EXPECT_EQ(tc.stats.commits, commitsBefore + 1);
  });
}

TEST(Split, CanSplitScopeAllowsNestedSplit) {
  run_sbd([&] {
    auto helper = [] {
      CanSplitScope scope;
      split();
    };
    allow_split(helper);
    SUCCEED();
  });
}

}  // namespace
}  // namespace sbd::threads
