// Thread-operation edge cases (§3.5) and the foreign-action wrapper.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "api/sbd.h"

namespace sbd::threads {
namespace {

TEST(ThreadOps, AbortedStarterNeverLaunchesThenRetryDoes) {
  std::atomic<int> launches{0};
  run_sbd([&] {
    static bool aborted;
    aborted = false;
    split();
    SbdThread child([&] { launches++; });
    child.start();  // deferred to this section's commit
    if (!aborted) {
      aborted = true;
      // The abort discards the deferred start: the child never ran for
      // this attempt.
      core::abort_and_restart(core::tls_context());
    }
    // Retry: start deferred again; the split commits and launches once.
    child.join();
  });
  EXPECT_EQ(launches.load(), 1);
}

TEST(ThreadOps, DeferredSignalDiscardedOnAbortFiresOnRetry) {
  class Flag : public runtime::TypedRef<Flag> {
   public:
    SBD_CLASS(OpsFlag, SBD_SLOT("v"))
    SBD_FIELD_I64(0, v)
  };
  runtime::GlobalRoot<Flag> cond;
  run_sbd([&] {
    Flag f = Flag::alloc();
    f.init_v(0);
    cond.set(f);
  });
  std::atomic<int> wakeFalse{0};
  {
    SbdThread waiter([&] {
      Flag f = cond.get();
      while (f.v() == 0) {
        wait_on(f.raw());
        if (f.v() == 0) wakeFalse++;  // woken without the condition: bug
      }
    });
    SbdThread signaller([&] {
      static bool aborted;
      aborted = false;
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      split();
      Flag f = cond.get();
      f.set_v(1);
      notify_all(f.raw());
      if (!aborted) {
        aborted = true;
        core::abort_and_restart(core::tls_context());
      }
    });
    waiter.start();
    signaller.start();
    waiter.join();
    signaller.join();
  }
  // A discarded (aborted) signal must not have woken the waiter into a
  // false condition (the re-check loop would catch it, but the deferred
  // delivery means it should not even fire).
  EXPECT_EQ(wakeFalse.load(), 0);
}

TEST(ThreadOps, NestedStartsFromChildThreads) {
  std::atomic<int> leafRuns{0};
  {
    SbdThread parent([&] {
      std::vector<SbdThread> kids;
      for (int i = 0; i < 3; i++) {
        kids.emplace_back([&] { leafRuns++; });
      }
      for (auto& k : kids) k.start();
      for (auto& k : kids) k.join();
    });
    parent.start();
    parent.join();
  }
  EXPECT_EQ(leafRuns.load(), 3);
}

TEST(ThreadOps, DestructorReapsUnjoinedThread) {
  std::atomic<bool> ran{false};
  {
    SbdThread t([&] { ran = true; });
    t.start();
    // No join: the destructor must reap the OS thread.
  }
  EXPECT_TRUE(ran.load());
}

TEST(OnCommit, RunsAtCommitOnly) {
  std::atomic<int> fired{0};
  run_sbd([&] {
    static bool aborted;
    aborted = false;
    split();
    on_commit([&] { fired++; });
    EXPECT_EQ(fired.load(), 0) << "must not run before the section ends";
    if (!aborted) {
      aborted = true;
      core::abort_and_restart(core::tls_context());
    }
    split();  // the retry's registration commits here
    EXPECT_EQ(fired.load(), 1);
  });
  EXPECT_EQ(fired.load(), 1) << "the aborted attempt's action must be discarded";
}

TEST(OnCommit, ImmediateOutsideSections) {
  int fired = 0;
  on_commit([&] { fired++; });
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace sbd::threads
