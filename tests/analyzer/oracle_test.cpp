// sbd::oracle unit tests over hand-built traces: a clean run passes,
// and each corrupted fixture — reordered grant, phantom release,
// recycled-txn-id aliasing, a deadlock victim that never blocked, a
// commit order contradicting happens-before — is rejected with the
// offending rule named.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "analyzer/oracle.h"

namespace sbd {
namespace {

using obs::EventKind;

// Builds traces with monotonically increasing (ts, ord) so fixture
// order IS trace order.
struct TraceBuilder {
  std::vector<oracle::Rec> recs;
  uint64_t ord = 0;

  oracle::Rec& add(EventKind kind, int txn, uint64_t epoch) {
    oracle::Rec r;
    r.kind = kind;
    r.txn = txn;
    r.epoch = epoch;
    r.ord = ++ord;
    r.ts = ord * 10;
    recs.push_back(std::move(r));
    return recs.back();
  }
  void acquire(int txn, uint64_t epoch, uint64_t lock, bool write,
               bool upgrade = false) {
    oracle::Rec& r = add(EventKind::kAcquire, txn, epoch);
    r.lockKey = lock;
    r.lockName = "L" + std::to_string(lock);
    r.write = write;
    r.other = upgrade ? 1 : 0;
  }
  void release(int txn, uint64_t epoch, uint64_t lock, bool write,
               bool commit = true) {
    oracle::Rec& r = add(EventKind::kRelease, txn, epoch);
    r.lockKey = lock;
    r.lockName = "L" + std::to_string(lock);
    r.write = write;
    r.other = commit ? 1 : 0;
  }
  void commit(int txn, uint64_t epoch, uint64_t seq) {
    add(EventKind::kCommitOrder, txn, epoch).seq = seq;
  }
  void blocked(int txn, uint64_t epoch) { add(EventKind::kBlocked, txn, epoch); }
  void deadlock(int detector, uint64_t detectorEpoch, int victim,
                uint64_t victimEpoch) {
    oracle::Rec& r = add(EventKind::kDeadlock, detector, detectorEpoch);
    r.other = victim;
    r.seq = victimEpoch;
  }
};

bool has_rule(const oracle::Report& rep, const std::string& rule) {
  for (const auto& v : rep.violations)
    if (v.rule == rule) return true;
  return false;
}

std::string rules(const oracle::Report& rep) {
  std::string out;
  for (const auto& v : rep.violations) out += v.rule + ": " + v.detail + "\n";
  return out;
}

TEST(Oracle, GoodTraceClean) {
  TraceBuilder b;
  // txn0@1 and txn1@2 serialize on L7; commit seqs follow the lock order.
  b.acquire(0, 1, 7, /*write=*/true);
  b.commit(0, 1, 1);
  b.release(0, 1, 7, /*write=*/true);
  b.acquire(1, 2, 7, /*write=*/true);
  b.commit(1, 2, 2);
  b.release(1, 2, 7, /*write=*/true);
  const oracle::Report rep = oracle::check(b.recs);
  EXPECT_TRUE(rep.ok()) << rules(rep);
  EXPECT_EQ(rep.txns, 2u);
  EXPECT_EQ(rep.acquires, 2u);
  EXPECT_EQ(rep.releases, 2u);
  EXPECT_EQ(rep.commits, 2u);
}

TEST(Oracle, ConcurrentReadersClean) {
  TraceBuilder b;
  b.acquire(0, 1, 7, /*write=*/false);
  b.acquire(1, 2, 7, /*write=*/false);  // read-read: no conflict
  b.commit(0, 1, 1);
  b.release(0, 1, 7, false);
  b.commit(1, 2, 2);
  b.release(1, 2, 7, false);
  const oracle::Report rep = oracle::check(b.recs);
  EXPECT_TRUE(rep.ok()) << rules(rep);
}

TEST(Oracle, UpgradeFromSoleReaderClean) {
  TraceBuilder b;
  b.acquire(0, 1, 7, /*write=*/false);
  b.acquire(0, 1, 7, /*write=*/true, /*upgrade=*/true);
  b.commit(0, 1, 1);
  b.release(0, 1, 7, /*write=*/true);
  const oracle::Report rep = oracle::check(b.recs);
  EXPECT_TRUE(rep.ok()) << rules(rep);
}

TEST(Oracle, ReorderedGrantDetected) {
  TraceBuilder b;
  // txn1's write grant lands BEFORE txn0's release — the word was held.
  b.acquire(0, 1, 7, /*write=*/true);
  b.acquire(1, 2, 7, /*write=*/true);
  b.release(0, 1, 7, true);
  b.commit(0, 1, 1);
  b.release(1, 2, 7, true);
  b.commit(1, 2, 2);
  const oracle::Report rep = oracle::check(b.recs);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_rule(rep, "conflicting-grant")) << rules(rep);
}

TEST(Oracle, ReadUnderWriterDetected) {
  TraceBuilder b;
  b.acquire(0, 1, 7, /*write=*/true);
  b.acquire(1, 2, 7, /*write=*/false);
  b.release(0, 1, 7, true);
  b.release(1, 2, 7, false);
  const oracle::Report rep = oracle::check(b.recs);
  EXPECT_TRUE(has_rule(rep, "conflicting-grant")) << rules(rep);
}

TEST(Oracle, PhantomReleaseDetected) {
  TraceBuilder b;
  b.acquire(0, 1, 7, true);
  b.release(0, 1, 8, true);  // lock 8 was never granted
  b.release(0, 1, 7, true);
  const oracle::Report rep = oracle::check(b.recs);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_rule(rep, "phantom-release")) << rules(rep);
}

TEST(Oracle, ReleaseModeMismatchDetected) {
  TraceBuilder b;
  b.acquire(0, 1, 7, /*write=*/false);
  b.release(0, 1, 7, /*write=*/true);  // granted read, released write
  const oracle::Report rep = oracle::check(b.recs);
  EXPECT_TRUE(has_rule(rep, "release-mode-mismatch")) << rules(rep);
}

TEST(Oracle, DoubleGrantDetected) {
  TraceBuilder b;
  b.acquire(0, 1, 7, false);
  b.acquire(0, 1, 7, false);  // same txn granted the same word twice
  b.release(0, 1, 7, false);
  const oracle::Report rep = oracle::check(b.recs);
  EXPECT_TRUE(has_rule(rep, "double-grant")) << rules(rep);
}

TEST(Oracle, UpgradeWithoutReadDetected) {
  TraceBuilder b;
  b.acquire(0, 1, 7, true, /*upgrade=*/true);
  b.release(0, 1, 7, true);
  const oracle::Report rep = oracle::check(b.recs);
  EXPECT_TRUE(has_rule(rep, "upgrade-without-read-hold")) << rules(rep);
}

TEST(Oracle, RecycledTxnIdAliasDetected) {
  // Same id, two epochs. The CLEAN run releases before the id is
  // recycled; the BAD run leaks the grant into the next incarnation.
  TraceBuilder good;
  good.acquire(0, 7, 3, true);
  good.release(0, 7, 3, true);
  good.acquire(0, 9, 3, true);  // next incarnation of id 0
  good.release(0, 9, 3, true);
  EXPECT_TRUE(oracle::check(good.recs).ok()) << rules(oracle::check(good.recs));

  TraceBuilder bad;
  bad.acquire(0, 7, 3, true);
  bad.acquire(0, 9, 5, true);   // epoch 9 begins; epoch 7 still holds L3
  bad.release(0, 9, 3, true);   // ...and its grant aliases onto epoch 9
  bad.release(0, 9, 5, true);
  const oracle::Report rep = oracle::check(bad.recs);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_rule(rep, "locks-held-at-txn-end")) << rules(rep);
}

TEST(Oracle, EpochRegressionDetected) {
  TraceBuilder b;
  b.acquire(0, 9, 3, true);
  b.release(0, 9, 3, true);
  b.blocked(0, 7);  // an event from the PAST incarnation of id 0
  const oracle::Report rep = oracle::check(b.recs);
  EXPECT_TRUE(has_rule(rep, "txn-epoch-alias")) << rules(rep);
}

TEST(Oracle, DeadlockVictimChecked) {
  // Clean: the named victim (id 1, epoch 2) really blocked.
  TraceBuilder good;
  good.blocked(1, 2);
  good.deadlock(/*detector=*/0, /*detectorEpoch=*/1, /*victim=*/1, /*victimEpoch=*/2);
  EXPECT_TRUE(oracle::check(good.recs).ok()) << rules(oracle::check(good.recs));

  // Bad: victim id 2 never appears in any kBlocked.
  TraceBuilder bad;
  bad.blocked(1, 2);
  bad.deadlock(0, 1, /*victim=*/2, /*victimEpoch=*/4);
  const oracle::Report rep = oracle::check(bad.recs);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_rule(rep, "deadlock-victim-not-in-cycle")) << rules(rep);
}

TEST(Oracle, CommitOrderInversionDetected) {
  TraceBuilder b;
  // txn0 commits (seq 2) and releases L7; txn1 acquires L7 AFTER that
  // release — so txn0's commit happens-before txn1's — yet txn1 draws
  // the SMALLER commit seq. The total order contradicts happens-before.
  b.acquire(0, 1, 7, true);
  b.commit(0, 1, 2);
  b.release(0, 1, 7, true);
  b.acquire(1, 2, 7, true);
  b.commit(1, 2, 1);
  b.release(1, 2, 7, true);
  const oracle::Report rep = oracle::check(b.recs);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_rule(rep, "commit-order-inversion")) << rules(rep);
}

TEST(Oracle, DuplicateCommitSeqDetected) {
  TraceBuilder b;
  b.acquire(0, 1, 7, true);
  b.commit(0, 1, 5);
  b.release(0, 1, 7, true);
  b.acquire(1, 2, 8, true);
  b.commit(1, 2, 5);  // same global sequence number twice
  b.release(1, 2, 8, true);
  const oracle::Report rep = oracle::check(b.recs);
  EXPECT_TRUE(has_rule(rep, "duplicate-commit-seq")) << rules(rep);
}

TEST(Oracle, GrantAfterCommitDetected) {
  TraceBuilder b;
  b.acquire(0, 1, 7, true);
  b.commit(0, 1, 1);
  b.acquire(0, 1, 8, true);  // growing the lock set after commit
  b.release(0, 1, 7, true);
  b.release(0, 1, 8, true);
  const oracle::Report rep = oracle::check(b.recs);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_rule(rep, "grant-after-commit")) << rules(rep);
}

TEST(Oracle, AbortAfterCommitDetected) {
  TraceBuilder b;
  b.acquire(0, 1, 7, true);
  b.commit(0, 1, 1);
  b.release(0, 1, 7, true);
  b.add(EventKind::kAborted, 0, 1);
  const oracle::Report rep = oracle::check(b.recs);
  EXPECT_TRUE(has_rule(rep, "abort-after-commit")) << rules(rep);
}

TEST(Oracle, IncompleteTraceSkipsEndChecks) {
  TraceBuilder b;
  b.acquire(0, 1, 7, true);  // never released
  const oracle::Report complete = oracle::check(b.recs, /*droppedEvents=*/0);
  EXPECT_TRUE(has_rule(complete, "unreleased-lock")) << rules(complete);
  // With drops the release may simply be missing from the trace: the
  // balance checks must not cry wolf.
  const oracle::Report lossy = oracle::check(b.recs, /*droppedEvents=*/3);
  EXPECT_FALSE(has_rule(lossy, "unreleased-lock")) << rules(lossy);
  EXPECT_FALSE(lossy.complete);
}

TEST(Oracle, UnsortedInputIsReorderedBeforeChecking) {
  TraceBuilder b;
  b.acquire(0, 1, 7, true);
  b.release(0, 1, 7, true);
  b.acquire(1, 2, 7, true);
  b.release(1, 2, 7, true);
  std::swap(b.recs[0], b.recs[3]);  // shuffle; (ts, ord) still encode order
  const oracle::Report rep = oracle::check(b.recs);
  EXPECT_TRUE(rep.ok()) << rules(rep);
}

TEST(Oracle, FormatWindowsNamesOffendingEvents) {
  TraceBuilder b;
  b.acquire(0, 1, 7, true);
  b.acquire(1, 2, 7, true);
  b.release(0, 1, 7, true);
  b.release(1, 2, 7, true);
  const oracle::Report rep = oracle::check(b.recs);
  ASSERT_FALSE(rep.ok());
  const std::string win = oracle::format_windows(b.recs, rep);
  EXPECT_NE(win.find("conflicting-grant"), std::string::npos) << win;
  EXPECT_NE(win.find(">>"), std::string::npos) << win;
  EXPECT_NE(win.find("L7"), std::string::npos) << win;
}

TEST(Oracle, TraceFileRoundTrip) {
  // A file in the exact obs::write_trace format parses back and checks.
  const std::string path = ::testing::TempDir() + "oracle_fixture.trace";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# sbd-trace v1\n# dropped=0 recorded=4\n", f);
  std::fputs("acquire txn=0 epoch=1 other=0 seq=0 w=1 ord=1 ts=10 dur=0 addr=0x10 name=A.x\n", f);
  std::fputs("commit-order txn=0 epoch=1 other=-1 seq=1 w=0 ord=2 ts=20 dur=0 addr=0x0 name=-\n", f);
  std::fputs("release txn=0 epoch=1 other=1 seq=0 w=1 ord=3 ts=30 dur=0 addr=0x10 name=A.x\n", f);
  std::fputs("thread-exit txn=-1 epoch=0 other=-1 seq=0 w=0 ord=4 ts=40 dur=0 addr=0x0 name=-\n", f);
  ASSERT_EQ(std::fclose(f), 0);
  std::vector<oracle::Rec> recs;
  uint64_t dropped = 99;
  ASSERT_TRUE(oracle::read_trace(path, recs, dropped));
  std::remove(path.c_str());
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs[0].kind, EventKind::kAcquire);
  EXPECT_EQ(recs[0].lockKey, 0x10u);
  EXPECT_EQ(recs[0].lockName, "A.x");
  EXPECT_TRUE(recs[0].write);
  const oracle::Report rep = oracle::check(recs, dropped);
  EXPECT_TRUE(rep.ok()) << rules(rep);
  EXPECT_EQ(rep.threadExits, 1u);
}

}  // namespace
}  // namespace sbd
