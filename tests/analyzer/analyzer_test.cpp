#include "analyzer/analyzer.h"

#include <gtest/gtest.h>

namespace sbd::analyzer {
namespace {

TEST(Lex, BasicTokens) {
  auto toks = lex("int foo(int a) { return a + 42; }");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, TokKind::kKeyword);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[1].kind, TokKind::kIdent);
  EXPECT_EQ(toks[1].text, "foo");
}

TEST(Lex, SkipsLineComments) {
  auto toks = lex("int x; // comment with goto keyword\nint y;");
  for (const auto& t : toks) EXPECT_NE(t.text, "goto");
}

TEST(Lex, SkipsBlockComments) {
  auto toks = lex("a /* goto \n goto */ b");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[1].line, 2) << "block comments must advance line numbers";
}

TEST(Lex, StringsAreOpaque) {
  auto toks = lex("x = \"goto 99 {\";");
  int strings = 0;
  for (const auto& t : toks)
    if (t.kind == TokKind::kString) strings++;
  EXPECT_EQ(strings, 1);
  for (const auto& t : toks) {
    EXPECT_NE(t.text, "goto");
    if (t.kind == TokKind::kNumber) FAIL() << "number inside string leaked";
  }
}

TEST(Lex, TracksLines) {
  auto toks = lex("a\nb\n\nc");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 4);
}

std::vector<Violation> run_rule(const char* src, const char* rule) {
  auto rules = default_rules();
  auto all = analyze(src, rules);
  std::vector<Violation> out;
  for (auto& v : all)
    if (v.rule == rule) out.push_back(v);
  return out;
}

TEST(Rules, NoGotoFires) {
  EXPECT_EQ(run_rule("void f() { goto end; }", "NoGoto").size(), 1u);
  EXPECT_EQ(run_rule("void f() { return; }", "NoGoto").size(), 0u);
}

TEST(Rules, MagicNumberAllowsSmallConstants) {
  EXPECT_EQ(run_rule("int x = 0; int y = 1; int z = 2;", "MagicNumber").size(), 0u);
  EXPECT_EQ(run_rule("int x = 37;", "MagicNumber").size(), 1u);
}

TEST(Rules, UpperCamelType) {
  EXPECT_EQ(run_rule("struct widget { };", "UpperCamelType").size(), 1u);
  EXPECT_EQ(run_rule("struct Widget { };", "UpperCamelType").size(), 0u);
  EXPECT_EQ(run_rule("class engine { };", "UpperCamelType").size(), 1u);
}

TEST(Rules, TooManyParams) {
  EXPECT_EQ(
      run_rule("int f(int a, int b, int c, int d, int e, int g) { return 0; }",
               "TooManyParams")
          .size(),
      1u);
  EXPECT_EQ(run_rule("int f(int a, int b) { return 0; }", "TooManyParams").size(), 0u);
}

TEST(Rules, DeepNesting) {
  EXPECT_EQ(run_rule("void f() { if (1) { if (1) { if (1) { if (1) { int x; } } } } }",
                     "DeepNesting")
                .size(),
            1u);
  EXPECT_EQ(run_rule("void f() { if (1) { int x; } }", "DeepNesting").size(), 0u);
}

TEST(Rules, LongFunction) {
  std::string body = "void f() {\n";
  for (int i = 0; i < 45; i++) body += "int v" + std::to_string(i) + ";\n";
  body += "}\n";
  EXPECT_EQ(run_rule(body.c_str(), "LongFunction").size(), 1u);
}

TEST(SourceGen, DeterministicAndAnalyzable) {
  SourceGenConfig cfg;
  const std::string a = generate_source(cfg, 3);
  const std::string b = generate_source(cfg, 3);
  EXPECT_EQ(a, b);
  auto rules = default_rules();
  auto violations = analyze(a, rules);
  EXPECT_GT(violations.size(), 0u) << "generated sources should trigger some rules";
}

TEST(SourceGen, DifferentFilesDiffer) {
  SourceGenConfig cfg;
  EXPECT_NE(generate_source(cfg, 1), generate_source(cfg, 2));
}

TEST(Analyze, FullPipelineCounts) {
  SourceGenConfig cfg;
  auto rules = default_rules();
  size_t total = 0;
  for (uint64_t f = 0; f < 10; f++) total += analyze(generate_source(cfg, f), rules).size();
  EXPECT_GT(total, 10u);
}

}  // namespace
}  // namespace sbd::analyzer
