// Custom gtest main: attaches the driver thread's stack to the
// conservative GC (managed references held in test-body locals must be
// visible as roots) before running the suite.
#include <gtest/gtest.h>

#include "runtime/heap.h"

int main(int argc, char** argv) {
  SBD_ATTACH_THREAD();
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
