// The invisible-reader (versioned) lock granularity. This binary runs
// with SBD_LOCK_GRANULARITY=versioned (ctest ENVIRONMENT — the mode is
// parsed once per process): every class starts on the versioned map, so
// reads go through the load + stamp-check + read-set protocol and
// writes lock exclusively via CAS on the stamp word.
#include <gtest/gtest.h>

#include <atomic>

#include "api/sbd.h"
#include "core/stats.h"
#include "core/transaction.h"
#include "runtime/lockplan.h"
#include "runtime/object.h"

namespace sbd {
namespace {

using core::tls_context;
using core::TxnManager;
using runtime::LockMap;

class Cell : public runtime::TypedRef<Cell> {
 public:
  SBD_CLASS(VerCell, SBD_SLOT("value"), SBD_SLOT("pad"))
  SBD_FIELD_I64(0, value)

  static Cell make(int64_t v) {
    Cell c = alloc();
    c.init_value(v);
    return c;
  }
};

TEST(LockPlanVersioned, MapAlgebra) {
  const LockMap m = LockMap::versioned_map();
  EXPECT_EQ(m.kind, LockMap::kVersioned);
  EXPECT_TRUE(m.versioned());
  EXPECT_FALSE(LockMap::field_map().versioned());
  // Identity width/index: conflict detection stays per-field (one stamp
  // word per natural index), only the word's MEANING changes.
  EXPECT_EQ(m.width(6), 6u);
  EXPECT_EQ(m.index(4), 4u);
  EXPECT_EQ(m.to_string(), "versioned");
  EXPECT_EQ(LockMap::from_bits(m.bits()), m);
  EXPECT_NE(m, LockMap::field_map());
}

TEST(LockPlanVersioned, ModeIsVersioned) {
  ASSERT_EQ(runtime::lockplan::mode(), runtime::lockplan::Mode::kVersioned);
  EXPECT_STREQ(runtime::lockplan::mode_name(), "versioned");
  EXPECT_EQ(runtime::lockplan::initial_map(), LockMap::versioned_map());
  EXPECT_EQ(Cell::klass()->lock_map(), LockMap::versioned_map());
}

TEST(LockPlanVersioned, InvisibleReadsTakeNoLocks) {
  runtime::GlobalRoot<Cell> root;
  run_sbd([&] {
    root.set(Cell::make(7));
    split();  // escape: reads below hit the versioned fast path
    Cell c = root.get();
    auto& tc = tls_context();
    const auto before = tc.stats;
    for (int i = 0; i < 50; i++) EXPECT_EQ(c.value(), 7);
    const auto after = tc.stats;
    // No lock word was touched: the reads appended to the read set.
    EXPECT_EQ(after.acqRls - before.acqRls, 0u);
    EXPECT_EQ(after.versionedReads - before.versionedReads, 50u);
  });
}

TEST(LockPlanVersioned, CommitValidatesTheReadSet) {
  runtime::GlobalRoot<Cell> root;
  run_sbd([&] {
    root.set(Cell::make(1));
    split();
    Cell c = root.get();
    for (int i = 0; i < 10; i++) (void)c.value();
    auto& tc = tls_context();
    const auto before = tc.stats;
    split();  // commits the section: every read-set entry re-checked
    const auto after = tc.stats;
    EXPECT_GE(after.validations - before.validations, 10u);
  });
}

TEST(LockPlanVersioned, WritesAdvanceTheCommitClockReadsDoNot) {
  runtime::GlobalRoot<Cell> root;
  run_sbd([&] { root.set(Cell::make(0)); });
  const uint64_t c0 = core::version_clock();
  run_sbd([&] { root.get().set_value(9); });
  const uint64_t c1 = core::version_clock();
  EXPECT_GT(c1, c0) << "a committing versioned write must stamp a new version";
  run_sbd([&] { EXPECT_EQ(root.get().value(), 9); });
  const uint64_t c2 = core::version_clock();
  EXPECT_EQ(c2, c1) << "read-only sections must not advance the clock";
  run_sbd([&] { root.get().set_value(10); });
  EXPECT_GT(core::version_clock(), c1);
}

TEST(LockPlanVersioned, StaleReadAbortsAndRetries) {
  runtime::GlobalRoot<Cell> root;
  run_sbd([&] { root.set(Cell::make(1)); });
  std::atomic<int> phase{0};
  const auto before = TxnManager::instance().snapshot_stats();
  {
    SbdThread reader([&] {
      Cell c = root.get();
      const int64_t v1 = c.value();
      int expected = 0;
      if (phase.compare_exchange_strong(expected, 1)) {
        // First attempt: park until the writer has committed. The wait
        // holds NO locks (the read above was invisible).
        while (phase.load() != 2) {
        }
      }
      // First attempt: the stamp moved past our snapshot -> the read
      // aborts BEFORE returning a value (sandboxing); the retry sees the
      // new value for both reads.
      const int64_t v2 = c.value();
      EXPECT_EQ(v1, v2) << "a section must never observe a torn snapshot";
    });
    SbdThread writer([&] {
      while (phase.load() != 1) {
      }
      root.get().set_value(2);
      split();  // commit the write (stamps published by the release)
      phase.store(2);
    });
    reader.start();
    writer.start();
    reader.join();
    writer.join();
  }
  const auto after = TxnManager::instance().snapshot_stats();
  EXPECT_GE(after.versionAborts - before.versionAborts, 1u);
  run_sbd([&] { EXPECT_EQ(root.get().value(), 2); });
}

// The zombie fixture: writer keeps a+b == kTotal invariant across two
// objects; the reader asserts it INSIDE the section. Without per-read
// validation an invisible reader could pair a stale `a` with a fresh
// `b` and act on the broken invariant before commit-time validation
// catches it — the assert below is exactly that control-flow use.
TEST(LockPlanVersioned, SandboxPreservesSnapshotConsistency) {
  runtime::GlobalRoot<Cell> a, b;
  constexpr int64_t kTotal = 1000;
  run_sbd([&] {
    a.set(Cell::make(kTotal));
    b.set(Cell::make(0));
  });
  std::atomic<bool> stop{false};
  std::atomic<int> inconsistent{0};
  {
    SbdThread writer([&] {
      for (int i = 0; i < 2000; i++) {
        Cell x = a.get();
        Cell y = b.get();
        x.set_value(x.value() - 1);
        y.set_value(y.value() + 1);
        split();
      }
      stop = true;
    });
    SbdThread reader([&] {
      while (!stop.load()) {
        const int64_t av = a.get().value();
        const int64_t bv = b.get().value();
        if (av + bv != kTotal) inconsistent++;
        split();
      }
    });
    writer.start();
    reader.start();
    writer.join();
    reader.join();
  }
  EXPECT_EQ(inconsistent.load(), 0);
  const auto stats = TxnManager::instance().snapshot_stats();
  EXPECT_GT(stats.versionedReads, 0u);
}

class Gauged : public runtime::TypedRef<Gauged> {
 public:
  SBD_CLASS(VerGauged, SBD_SLOT("s0"), SBD_SLOT("s1"), SBD_SLOT("s2"))
  SBD_FIELD_I64(0, s0)
};

TEST(LockPlanVersioned, StampWordsHaveTheirOwnGauge) {
  auto& g = core::gauges();
  const uint64_t locksBefore = g.lockStructBytes.load();
  const uint64_t stampsBefore = g.versionWordBytes.load();
  runtime::GlobalRoot<Gauged> root;
  run_sbd([&] {
    Gauged x = Gauged::alloc();
    x.init_s0(1);
    root.set(x);
    split();               // escape
    (void)root.get().s0();  // materializes the stamp array
  });
  // Three slots -> three stamp words, counted in the versioned column
  // (Table 8 "Locks" stays byte-exact for the queue-bearing words).
  EXPECT_EQ(g.versionWordBytes.load() - stampsBefore,
            3 * sizeof(core::LockWord));
  EXPECT_EQ(g.lockStructBytes.load(), locksBefore);
}

class VetoCell : public runtime::TypedRef<VetoCell> {
 public:
  SBD_CLASS(VerVeto, SBD_SLOT("v"))
  SBD_FIELD_I64(0, v)
};

TEST(LockPlanVersioned, StampsDoNotVetoReplanButLiveReadSetsDo) {
  runtime::GlobalRoot<VetoCell> root;
  run_sbd([&] {
    VetoCell c = VetoCell::alloc();
    c.init_v(5);
    root.set(c);
  });
  run_sbd([&] { root.get().set_v(6); });  // stamps now nonzero
  std::atomic<int> ph{0};
  {
    SbdThread t([&] {
      (void)root.get().v();  // live read-set entry on VetoCell
      ph.store(1);
      auto& tc = tls_context();
      while (ph.load() != 2) core::Safepoint::poll(tc);
    });
    t.start();
    while (ph.load() != 1) {
    }
    // The parked reader's read set points into VetoCell's stamp array:
    // swapping the map would free it under the validation's feet.
    EXPECT_FALSE(set_lock_granularity(VetoCell::klass(), LockGranularity::kField));
    EXPECT_EQ(VetoCell::klass()->lock_map(), LockMap::versioned_map());
    ph.store(2);
    t.join();
  }
  // With the reader gone, nonzero STAMPS alone must not veto — only a
  // write-locked word (LSB set) is live state on a versioned map.
  EXPECT_TRUE(set_lock_granularity(VetoCell::klass(), LockGranularity::kField));
  EXPECT_EQ(VetoCell::klass()->lock_map(), LockMap::field_map());
  // And the round trip back.
  EXPECT_TRUE(set_lock_granularity(VetoCell::klass(), LockGranularity::kVersioned));
  EXPECT_EQ(VetoCell::klass()->lock_map(), LockMap::versioned_map());
  run_sbd([&] { EXPECT_EQ(root.get().v(), 6); });
}

}  // namespace
}  // namespace sbd
