// GC stress: allocation churn under concurrent mutators, collections
// racing checkpoints and aborts, safepoint cooperation.
#include <gtest/gtest.h>

#include <atomic>

#include "api/sbd.h"
#include "common/rng.h"

namespace sbd::runtime {
namespace {

class Node : public TypedRef<Node> {
 public:
  SBD_CLASS(GcsNode, SBD_SLOT("v"), SBD_SLOT_REF("next"))
  SBD_FIELD_I64(0, v)
  SBD_FIELD_REF(1, next, Node)
};

struct ThresholdGuard {
  explicit ThresholdGuard(uint64_t bytes) { Heap::instance().set_gc_threshold(bytes); }
  ~ThresholdGuard() { Heap::instance().set_gc_threshold(48ULL << 20); }
};

TEST(GcStress, ChurnWithLiveListUnderLowThreshold) {
  ThresholdGuard guard(256 * 1024);
  GlobalRoot<Node> keep;
  const auto collectionsBefore = Heap::instance().stats().collections;
  run_sbd([&] {
    // A live list that must survive every collection...
    Node head = Node::alloc();
    head.init_v(0);
    Node cur = head;
    for (int i = 1; i <= 100; i++) {
      Node n = Node::alloc();
      n.init_v(i);
      cur.set_next(n);
      cur = n;
    }
    keep.set(head);
    split();
    // ...while garbage churns through the heap (~2 MB of junk, several
    // collections at a 256 KiB threshold).
    for (int round = 0; round < 200; round++) {
      for (int i = 0; i < 200; i++) {
        Node junk = Node::alloc();
        junk.init_v(-i);
      }
      split();
    }
  });
  EXPECT_GT(Heap::instance().stats().collections, collectionsBefore);
  run_sbd([&] {
    Node cur = keep.get();
    for (int i = 0; i <= 100; i++) {
      ASSERT_FALSE(cur.is_null());
      EXPECT_EQ(cur.v(), i);
      cur = cur.next();
    }
  });
}

TEST(GcStress, ConcurrentAllocatorsAndCollectors) {
  ThresholdGuard guard(1 << 20);
  GlobalRoot<RefArray<Node>> shared;
  run_sbd([&] {
    auto arr = RefArray<Node>::make(8);
    for (int i = 0; i < 8; i++) {
      Node n = Node::alloc();
      n.init_v(i * 1000);
      arr.init_set(static_cast<uint64_t>(i), n);
    }
    shared.set(arr);
  });
  std::atomic<int> errors{0};
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < 3; t++) {
      ts.emplace_back([&, t] {
        Rng rng(static_cast<uint64_t>(t) + 99);
        for (int i = 0; i < 400; i++) {
          // Replace a random slot with a fresh chain; old chain becomes
          // garbage for the next collection.
          Node fresh = Node::alloc();
          fresh.init_v(static_cast<int64_t>(rng.below(1000)));
          Node tail = Node::alloc();
          tail.init_v(fresh.v() + 1);
          fresh.set_next(tail);
          auto arr = shared.get();
          arr.set(rng.below(8), fresh);
          split();
          // Validate a random slot's invariant (next.v == v + 1).
          auto arr2 = shared.get();
          Node probe = arr2.get(rng.below(8));
          if (!probe.next().is_null() && probe.next().v() != probe.v() + 1) {
            // slots seeded initially have no next; only chains checked
            errors++;
          }
          split();
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  EXPECT_EQ(errors.load(), 0);
}

TEST(GcStress, CollectionDuringAbortRetryWindow) {
  ThresholdGuard guard(48ULL << 20);  // manual collections only
  GlobalRoot<Node> root;
  run_sbd([&] {
    static int tries;
    tries = 0;
    Node n = Node::alloc();
    n.init_v(1);
    root.set(n);
    split();
    // Build garbage, then force a collection, then abort: the undo log
    // and the checkpoint must both survive the collection.
    Node scratch = Node::alloc();
    scratch.init_v(7);
    root.get().set_next(scratch);
    Heap::instance().collect();
    if (tries++ < 3) {
      core::abort_and_restart(core::tls_context());
    }
    split();
  });
  run_sbd([&] {
    EXPECT_EQ(root.get().v(), 1);
    EXPECT_EQ(root.get().next().v(), 7);
  });
}

TEST(GcStress, CheckpointBuffersAreRoots) {
  ThresholdGuard guard(48ULL << 20);
  run_sbd([&] {
    static bool aborted;
    aborted = false;
    // `only` is the sole reference to its node at checkpoint time.
    Node only = Node::alloc();
    only.init_v(777);
    split();  // checkpoint snapshots the stack (including `only`)
    // Clobber the live stack slot via heavy native work, then collect:
    // the checkpoint's saved copy must still pin the node, because an
    // abort would resurrect the reference.
    Heap::instance().collect();
    if (!aborted) {
      aborted = true;
      core::abort_and_restart(core::tls_context());
    }
    // After the retry the restored `only` must still be intact.
    EXPECT_EQ(only.v(), 777);
  });
}

TEST(GcStress, LargeObjectsCollectAndSurvive) {
  ThresholdGuard guard(48ULL << 20);
  GlobalRoot<I64Array> keep;
  const auto liveBefore = Heap::instance().stats().liveBytes;
  run_sbd([&] {
    keep.set(I64Array::make(400000));  // ~3 MiB, survives
    for (int i = 0; i < 6; i++) {
      I64Array junk = I64Array::make(300000);  // garbage
      junk.init_set(0, i);
      split();
    }
  });
  Heap::instance().collect();
  Heap::instance().collect();
  const auto liveAfter = Heap::instance().stats().liveBytes;
  EXPECT_GT(liveAfter, liveBefore);                      // the kept array
  EXPECT_LT(liveAfter, liveBefore + 2 * 400000 * 8 + (1 << 20))
      << "large garbage arrays must be unmapped";
  run_sbd([&] {
    keep.get().set(399999, 5);
    EXPECT_EQ(keep.get().get(399999), 5);
  });
}

}  // namespace
}  // namespace sbd::runtime
