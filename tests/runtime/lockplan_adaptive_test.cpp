// Adaptive lock-granularity controller. This binary runs with
// SBD_LOCK_GRANULARITY=adaptive and a short re-plan interval (set via
// the ctest ENVIRONMENT property — the mode is parsed once per
// process), so the background controller is live: cold classes coarsen
// (to their hint, else to one object lock), contended classes revert to
// field granularity and stay there (scorched hysteresis).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "api/sbd.h"
#include "core/obs.h"
#include "core/transaction.h"
#include "runtime/lockplan.h"
#include "runtime/object.h"

namespace sbd {
namespace {

using runtime::LockMap;

// Waits until `pred` holds. The sleep sits in a safe region — the
// controller stops the world each cycle and would otherwise wait
// forever for this (attached, "running") thread to reach a safepoint.
template <typename Pred>
bool wait_for(Pred&& pred, int ms = 5000) {
  auto& tc = core::tls_context();
  for (int i = 0; i < ms; i++) {
    if (pred()) return true;
    core::Safepoint::SafeScope safe(tc);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

class ColdSix : public runtime::TypedRef<ColdSix> {
 public:
  SBD_CLASS(AdaptCold, SBD_SLOT("s0"), SBD_SLOT("s1"), SBD_SLOT("s2"),
            SBD_SLOT("s3"), SBD_SLOT("s4"), SBD_SLOT("s5"))
  SBD_FIELD_I64(0, s0)
};

TEST(LockPlanAdaptive, ModeIsAdaptive) {
  ASSERT_EQ(runtime::lockplan::mode(), runtime::lockplan::Mode::kAdaptive);
  // Adaptive starts faithful and coarsens from data.
  EXPECT_EQ(runtime::lockplan::initial_map(), LockMap::field_map());
}

TEST(LockPlanAdaptive, ColdClassCoarsensToObject) {
  runtime::GlobalRoot<ColdSix> root;
  run_sbd([&] {
    ColdSix x = ColdSix::alloc();
    x.init_s0(1);
    root.set(x);
  });
  EXPECT_TRUE(wait_for([] {
    return ColdSix::klass()->lock_map() == LockMap::object_map();
  })) << "controller never coarsened a cold class; map is "
      << ColdSix::klass()->lock_map().to_string();
  // The coarse map is live on the instance.
  EXPECT_EQ(runtime::lock_count(root.get().raw()), 1u);
  // And the counters show actual re-plan work.
  const auto c = runtime::lockplan::counters();
  EXPECT_GT(c.cycles, 0u);
  EXPECT_GT(c.replans, 0u);
  EXPECT_GT(c.stops, 0u);
}

class HintedPair : public runtime::TypedRef<HintedPair> {
 public:
  SBD_CLASS(AdaptHinted, SBD_SLOT("a"), SBD_SLOT("b"), SBD_SLOT("c"),
            SBD_SLOT("d"))
};

TEST(LockPlanAdaptive, ColdClassHonorsTheHint) {
  hint_lock_granularity(HintedPair::klass(), LockGranularity::kStriped, 2);
  EXPECT_TRUE(wait_for([] {
    return HintedPair::klass()->lock_map() == LockMap::striped_map(2);
  })) << HintedPair::klass()->lock_map().to_string();
}

class HotCell : public runtime::TypedRef<HotCell> {
 public:
  SBD_CLASS(AdaptHot, SBD_SLOT("x"), SBD_SLOT("y"))
  SBD_FIELD_I64(0, x)
};

TEST(LockPlanAdaptive, ContendedClassScorchesBackToField) {
  runtime::GlobalRoot<HotCell> root;
  run_sbd([&] {
    HotCell h = HotCell::alloc();
    h.init_x(0);
    root.set(h);
  });
  ASSERT_TRUE(wait_for([] {
    return HotCell::klass()->lock_map() == LockMap::object_map();
  }));
  // Contention arrives (the slow-acquire path reports it); the next
  // cycle must revert the class to field granularity...
  runtime::lockplan::note_contention(root.get().raw());
  EXPECT_TRUE(wait_for([] {
    return HotCell::klass()->lock_map() == LockMap::field_map();
  })) << HotCell::klass()->lock_map().to_string();
  // ...and scorching is sticky: with the signal quiet again the class
  // still must not re-coarsen (hysteresis against flapping).
  {
    auto& tc = core::tls_context();
    core::Safepoint::SafeScope safe(tc);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_EQ(HotCell::klass()->lock_map(), LockMap::field_map());
}

class PinnedSix : public runtime::TypedRef<PinnedSix> {
 public:
  SBD_CLASS(AdaptPinned, SBD_SLOT("s0"), SBD_SLOT("s1"), SBD_SLOT("s2"),
            SBD_SLOT("s3"), SBD_SLOT("s4"), SBD_SLOT("s5"))
  SBD_FIELD_I64(0, s0)
};

TEST(LockPlanAdaptive, PinOverridesThePolicyBothWays) {
  ASSERT_TRUE(set_lock_granularity(PinnedSix::klass(), LockGranularity::kStriped, 3));
  EXPECT_EQ(PinnedSix::klass()->lock_map(), LockMap::striped_map(3));
  // Contention on a pinned class must NOT revert it: the user's pin
  // outranks the controller.
  runtime::GlobalRoot<PinnedSix> root;
  run_sbd([&] {
    PinnedSix p = PinnedSix::alloc();
    p.init_s0(0);
    root.set(p);
  });
  runtime::lockplan::note_contention(root.get().raw());
  {
    auto& tc = core::tls_context();
    core::Safepoint::SafeScope safe(tc);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_EQ(PinnedSix::klass()->lock_map(), LockMap::striped_map(3));
}

class ReadMostly : public runtime::TypedRef<ReadMostly> {
 public:
  SBD_CLASS(AdaptReadMostly, SBD_SLOT("r0"), SBD_SLOT("r1"))
  SBD_FIELD_I64(0, r0)
};

TEST(LockPlanAdaptive, ReadMostlyContentionPromotesToVersionedThenStormScorches) {
  runtime::GlobalRoot<ReadMostly> root;
  run_sbd([&] {
    ReadMostly r = ReadMostly::alloc();
    r.init_r0(0);
    root.set(r);
  });
  // Contended READS with no writes and no deadlocks: instead of
  // scorching back to field, the policy prefers the invisible-reader
  // map — readers stop queueing on lock words entirely.
  for (int i = 0; i < 20; i++)
    runtime::lockplan::note_contention(root.get().raw(), /*wantWrite=*/false);
  EXPECT_TRUE(wait_for([] {
    return ReadMostly::klass()->lock_map() == LockMap::versioned_map();
  })) << ReadMostly::klass()->lock_map().to_string();
  // A validation-abort storm (stale-read churn) scorches versioned...
  ReadMostly::klass()->versionAborts.fetch_add(500);
  EXPECT_TRUE(wait_for([] {
    return ReadMostly::klass()->lock_map() == LockMap::field_map();
  })) << ReadMostly::klass()->lock_map().to_string();
  // ...permanently: the read signal is still present, but the class
  // must not flap back to versioned.
  runtime::lockplan::note_contention(root.get().raw(), /*wantWrite=*/false);
  {
    auto& tc = core::tls_context();
    core::Safepoint::SafeScope safe(tc);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_EQ(ReadMostly::klass()->lock_map(), LockMap::field_map());
}

TEST(LockPlanAdaptive, MetricsJsonExposesTheLockplanBlock) {
  const std::string j = obs::metrics_json();
  EXPECT_NE(j.find("\"lockplan\""), std::string::npos);
  EXPECT_NE(j.find("\"mode\": \"adaptive\""), std::string::npos);
  EXPECT_NE(j.find("\"replans\""), std::string::npos);
}

}  // namespace
}  // namespace sbd
