#include "runtime/sampler.h"

#include <gtest/gtest.h>

#include <thread>

#include "api/sbd.h"

namespace sbd::runtime {
namespace {

class Blob : public TypedRef<Blob> {
 public:
  SBD_CLASS(SamplerBlob, SBD_SLOT("v"))
  SBD_FIELD_I64(0, v)
};

TEST(MemorySampler, CollectsAndAverages) {
  MemorySampler sampler(5);
  sampler.start();
  EXPECT_TRUE(sampler.running());
  GlobalRoot<I64Array> keep;
  run_sbd([&] {
    keep.set(I64Array::make(50000));  // ~400 KB live
    for (int i = 0; i < 2000; i++) {
      Blob b = Blob::alloc();
      b.init_v(i);
      if (i % 64 == 0) split();
    }
  });
  // Give the sampler cooperative windows: a non-SBD thread sleeping
  // never reaches a safepoint, so tick inside sections instead.
  for (int i = 0; i < 8; i++) {
    run_sbd([&] { split(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(6));
  }
  const auto avg = sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(avg.samples, 1u);
  EXPECT_EQ(avg.collections, avg.samples);
  // The kept array dominates the live average.
  EXPECT_GT(avg.liveHeapBytes, 300000.0);
}

TEST(MemorySampler, StopWithoutStartIsHarmless) {
  MemorySampler sampler;
  const auto avg = sampler.stop();
  EXPECT_EQ(avg.samples, 0u);
}

TEST(MemorySampler, SamplesWhileMutatorsRun) {
  MemorySampler sampler(5);
  sampler.start();
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < 2; t++) {
      ts.emplace_back([&] {
        for (int i = 0; i < 500; i++) {
          Blob b = Blob::alloc();
          b.init_v(i);
          split();
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  const auto avg = sampler.stop();
  EXPECT_GT(avg.samples, 0u);
}

}  // namespace
}  // namespace sbd::runtime
