// Managed heap + conservative GC tests.
#include "runtime/heap.h"

#include <gtest/gtest.h>

#include "api/sbd.h"

namespace sbd::runtime {
namespace {

class Node : public TypedRef<Node> {
 public:
  SBD_CLASS(Node, SBD_SLOT("v"), SBD_SLOT_REF("next"))
  SBD_FIELD_I64(0, v)
  SBD_FIELD_REF(1, next, Node)
};

TEST(Heap, ObjectSizeIncludesHeaderAndSlots) {
  EXPECT_EQ(Heap::object_size(Node::klass()), 48u);  // 24 header + 2*8, padded to 16
}

TEST(Heap, ArraySizes) {
  EXPECT_EQ(Heap::array_size(ElemKind::kI64, 0), 32u);   // header + length word
  EXPECT_GE(Heap::array_size(ElemKind::kI64, 4), 64u);
  EXPECT_LT(Heap::array_size(ElemKind::kI8, 7), Heap::array_size(ElemKind::kI64, 7));
}

TEST(Heap, AllocZeroInitializesSlots) {
  run_sbd([&] {
    Node n = Node::alloc();
    EXPECT_EQ(n.v(), 0);
    EXPECT_TRUE(n.next().is_null());
  });
}

TEST(Heap, FindObjectResolvesInteriorPointers) {
  run_sbd([&] {
    Node n = Node::alloc();
    auto* o = n.raw();
    EXPECT_EQ(Heap::instance().find_object(o), o);
    // Pointer into the middle of the object resolves to its start.
    EXPECT_EQ(Heap::instance().find_object(reinterpret_cast<char*>(o) + 17), o);
  });
}

TEST(Heap, FindObjectRejectsForeignPointers) {
  int stackVar = 0;
  EXPECT_EQ(Heap::instance().find_object(&stackVar), nullptr);
  EXPECT_EQ(Heap::instance().find_object(nullptr), nullptr);
  static int globalVar = 0;
  EXPECT_EQ(Heap::instance().find_object(&globalVar), nullptr);
}

TEST(Heap, LargeAllocation) {
  run_sbd([&] {
    I64Array big = I64Array::make(300000);  // > 1 MiB payload
    EXPECT_EQ(big.length(), 300000u);
    big.set(0, 1);
    big.set(299999, 2);
    EXPECT_EQ(big.get(0), 1);
    EXPECT_EQ(big.get(299999), 2);
    EXPECT_EQ(Heap::instance().find_object(big.raw()), big.raw());
    // Interior pointer into the later megabytes of the large object.
    EXPECT_EQ(Heap::instance().find_object(
                  reinterpret_cast<char*>(big.raw()) + (2 << 20) + 123),
              big.raw());
  });
}

TEST(Gc, CollectsUnreachableObjects) {
  const auto before = Heap::instance().stats();
  run_sbd([&] {
    for (int i = 0; i < 1000; i++) {
      Node n = Node::alloc();
      n.init_v(i);
    }
    split();  // publish (and drop) them
  });
  Heap::instance().collect();
  Heap::instance().collect();  // anything stale on the first scan's stack
  const auto after = Heap::instance().stats();
  EXPECT_GT(after.collections, before.collections);
  // The 1000 nodes are garbage; live bytes should not have grown by
  // anywhere near 1000 * 40 bytes.
  EXPECT_LT(after.liveBytes, before.liveBytes + 20000);
}

TEST(Gc, RootedObjectsSurvive) {
  GlobalRoot<Node> root;
  run_sbd([&] {
    Node head = Node::alloc();
    head.init_v(1);
    Node tail = Node::alloc();
    tail.init_v(2);
    head.set_next(tail);
    root.set(head);
  });
  Heap::instance().collect();
  run_sbd([&] {
    EXPECT_EQ(root.get().v(), 1);
    EXPECT_EQ(root.get().next().v(), 2);  // reachable through the chain
  });
}

TEST(Gc, StackReferencesSurvive) {
  run_sbd([&] {
    Node n = Node::alloc();
    n.init_v(77);
    Heap::instance().collect();  // conservative scan must see `n`
    EXPECT_EQ(n.v(), 77);
  });
}

TEST(Gc, LinkedListFullyTraced) {
  GlobalRoot<Node> root;
  run_sbd([&] {
    Node head = Node::alloc();
    head.init_v(0);
    Node cur = head;
    for (int i = 1; i < 200; i++) {
      Node n = Node::alloc();
      n.init_v(i);
      cur.set_next(n);
      cur = n;
    }
    root.set(head);
  });
  Heap::instance().collect();
  run_sbd([&] {
    Node cur = root.get();
    for (int i = 0; i < 200; i++) {
      EXPECT_EQ(cur.v(), i);
      cur = cur.next();
    }
    EXPECT_TRUE(cur.is_null());
  });
}

TEST(Gc, UndoLogOldValuesKeptAlive) {
  GlobalRoot<Node> root;
  run_sbd([&] {
    Node a = Node::alloc();
    a.init_v(1);
    Node keep = Node::alloc();
    keep.init_v(42);
    a.set_next(keep);
    root.set(a);
    split();
    // Overwrite the only reference to `keep`; its old value now lives
    // only in the undo log. A GC here must not reclaim it, because an
    // abort would resurrect the reference.
    root.get().set_next(Node());
    Heap::instance().collect();
    static bool aborted;
    if (!aborted) {
      aborted = true;
      core::abort_and_restart(core::tls_context());
    }
    split();
  });
  run_sbd([&] {
    // The retry overwrote next again (with null), so just verify the
    // heap did not corrupt: the root still works.
    EXPECT_EQ(root.get().v(), 1);
  });
}

TEST(Gc, LockStructuresFreedWithObjects) {
  const uint64_t before = core::gauges().lockStructBytes.load();
  run_sbd([&] {
    for (int i = 0; i < 100; i++) {
      Node n = Node::alloc();
      root_touch:;
      n.init_v(i);
      split();  // escape
      (void)n.v();  // materialize lock structures
      split();      // drop the stack ref next iteration
    }
  });
  Heap::instance().collect();
  Heap::instance().collect();
  const uint64_t after = core::gauges().lockStructBytes.load();
  EXPECT_LE(after, before + 1024) << "lock structures of dead objects must be freed";
}

TEST(Gc, AdaptiveThresholdTriggersAutomatically) {
  Heap::instance().set_gc_threshold(1 << 20);  // 1 MiB
  const auto before = Heap::instance().stats();
  run_sbd([&] {
    for (int i = 0; i < 2000; i++) {
      I64Array a = I64Array::make(128);  // ~1 KiB each -> ~2 MiB total
      a.init_set(0, i);
      if (i % 64 == 0) split();
    }
  });
  const auto after = Heap::instance().stats();
  EXPECT_GT(after.collections, before.collections)
      << "allocation pressure should have triggered a collection";
  Heap::instance().set_gc_threshold(48ULL << 20);
}

TEST(Gc, SurvivesConcurrentMutators) {
  GlobalRoot<Node> shared;
  run_sbd([&] {
    Node n = Node::alloc();
    n.init_v(0);
    shared.set(n);
  });
  Heap::instance().set_gc_threshold(1 << 20);
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < 3; t++) {
      ts.emplace_back([&] {
        for (int i = 0; i < 300; i++) {
          Node mine = Node::alloc();
          mine.init_v(i);
          Node s = shared.get();
          s.set_v(s.v() + 1);
          mine.set_next(s);
          split();
          EXPECT_EQ(mine.next().raw(), shared.get().raw());
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  Heap::instance().set_gc_threshold(48ULL << 20);
  run_sbd([&] { EXPECT_EQ(shared.get().v(), 900); });
}

TEST(Statics, TransactionalStaticSlots) {
  static ClassInfo* cls = register_class(
      "WithStatics", {SBD_SLOT("x")}, {SBD_SLOT("counter"), SBD_SLOT_REF("cache")});
  run_sbd([&] {
    static_write_i64(cls, 0, 5);
    EXPECT_EQ(static_read_i64(cls, 0), 5);
    split();
    EXPECT_EQ(static_read_i64(cls, 0), 5);
  });
}

TEST(Statics, InitGuardRunsOnce) {
  static ClassInfo* cls =
      register_class("GuardedInit", {}, {SBD_SLOT("guard"), SBD_SLOT("data")});
  static int initRuns;
  initRuns = 0;
  run_sbd([&] {
    for (int i = 0; i < 5; i++) {
      ensure_static_init(cls, 0, [&] {
        initRuns++;
        static_write_i64(cls, 1, 99);
      });
    }
    EXPECT_EQ(initRuns, 1);
    EXPECT_EQ(static_read_i64(cls, 1), 99);
  });
}

TEST(Statics, InitGuardRerunsAfterAbort) {
  static ClassInfo* cls =
      register_class("GuardedAbort", {}, {SBD_SLOT("guard"), SBD_SLOT("data")});
  static int initRuns;
  initRuns = 0;
  run_sbd([&] {
    static bool aborted;
    aborted = false;
    split();
    ensure_static_init(cls, 0, [&] {
      initRuns++;
      static_write_i64(cls, 1, 7);
    });
    if (!aborted) {
      aborted = true;
      core::abort_and_restart(core::tls_context());
    }
    split();
  });
  run_sbd([&] {
    // The abort rolled the guard back; the retry re-ran the initializer.
    EXPECT_EQ(initRuns, 2);
    EXPECT_EQ(static_read_i64(cls, 1), 7);
  });
}

TEST(MStringT, RoundTrip) {
  run_sbd([&] {
    MString s = MString::make("hello world");
    EXPECT_EQ(s.length(), 11u);
    EXPECT_EQ(s.str(), "hello world");
    EXPECT_TRUE(s.equals("hello world"));
    EXPECT_FALSE(s.equals("hello"));
    EXPECT_EQ(s.at(4), 'o');
  });
}

TEST(MStringT, HashStableAndDiscriminating) {
  run_sbd([&] {
    MString a = MString::make("abc");
    MString b = MString::make("abc");
    MString c = MString::make("abd");
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_NE(a.hash(), c.hash());
    EXPECT_TRUE(a.equals(b));
  });
}

TEST(RefArrayT, StoresAndTracesRefs) {
  GlobalRoot<RefArray<Node>> root;
  run_sbd([&] {
    auto arr = RefArray<Node>::make(10);
    for (int i = 0; i < 10; i++) {
      Node n = Node::alloc();
      n.init_v(i * 3);
      arr.init_set(i, n);
    }
    root.set(arr);
  });
  Heap::instance().collect();
  run_sbd([&] {
    for (int i = 0; i < 10; i++) EXPECT_EQ(root.get().get(i).v(), i * 3);
  });
}

}  // namespace
}  // namespace sbd::runtime
