// Re-plan wedge recovery: a mutator that never reaches a safepoint must
// not hang a stop-the-world re-plan forever. Covered here: the bounded
// stop budget gives up and counts a wedge, repeated wedges quarantine
// the controller (core/degrade), and with an unlimited budget the
// watchdog's lockplan heartbeat cancels the stuck episode.
#include <gtest/gtest.h>

#include <atomic>

#include "api/sbd.h"
#include "core/degrade.h"
#include "core/watchdog.h"
#include "runtime/class_info.h"
#include "runtime/lockplan.h"

namespace sbd {
namespace {

// A registered class to re-plan. Each test uses its own so a vetoed or
// cancelled earlier change cannot leak into the next assertion.
runtime::ClassInfo* fresh_class(const char* name) {
  return runtime::register_class(name, {SBD_SLOT("a"), SBD_SLOT("b")}, {});
}

// An SBD-attached thread that spins on a plain atomic: it performs no
// SBD access, so it never polls a safepoint — the deterministic wedge.
// The constructor waits until the thread is attached AND inside the
// spin loop; a stop-the-world begun before registration would not see
// the thread and succeed vacuously.
struct WedgedMutator {
  std::atomic<bool> spin{true};
  std::atomic<bool> started{false};
  SbdThread thread;
  WedgedMutator()
      : thread([this] {
          started.store(true, std::memory_order_release);
          while (spin.load(std::memory_order_acquire)) {
          }
        }) {
    thread.start();
    while (!started.load(std::memory_order_acquire)) {
    }
  }
  ~WedgedMutator() {
    spin.store(false, std::memory_order_release);
    thread.join();
  }
};

TEST(LockplanWedge, BoundedBudgetGivesUpAndCountsWedge) {
  runtime::lockplan::set_replan_budget_nanos(100'000'000);  // 100ms
  const auto before = runtime::lockplan::counters();
  const uint64_t wedgesBefore = core::degrade::replans_wedged();
  {
    WedgedMutator wedge;
    runtime::ClassInfo* ci = fresh_class("WedgeBudgetCls");
    const bool applied = runtime::lockplan::set_class_map(
        ci, runtime::lockplan::make_map(runtime::LockGranularity::kObject, 0));
    EXPECT_FALSE(applied) << "stop-the-world cannot succeed with a wedged mutator";
  }
  const auto after = runtime::lockplan::counters();
  EXPECT_GT(after.wedged, before.wedged);
  EXPECT_GT(core::degrade::replans_wedged(), wedgesBefore);
  runtime::lockplan::set_replan_budget_nanos(2'000'000'000);  // restore default
}

TEST(LockplanWedge, RepeatedWedgesQuarantineTheController) {
  // The previous test recorded at least one wedge; a budget of 1 puts
  // the controller into quarantine immediately.
  core::degrade::note_replan_wedged();
  core::degrade::set_replan_wedge_budget(1);
  EXPECT_TRUE(core::degrade::replan_quarantined());
  EXPECT_EQ(runtime::lockplan::replan_now(), 0u)
      << "a quarantined controller must skip re-plan cycles";
  // Raising the budget lifts the quarantine (the counter stands).
  core::degrade::set_replan_wedge_budget(1u << 20);
  EXPECT_FALSE(core::degrade::replan_quarantined());
}

TEST(LockplanWedge, WatchdogHeartbeatCancelsUnboundedReplan) {
  runtime::lockplan::set_replan_budget_nanos(0);  // unlimited: only a cancel helps
  core::Watchdog::Options wo;
  wo.stallThresholdNanos = 60'000'000'000ull;  // keep txn-stall reports quiet
  wo.abortVictimAfterNanos = 0;
  wo.pollIntervalNanos = 10'000'000;          // 10ms scan
  wo.replanStallThresholdNanos = 50'000'000;  // 50ms heartbeat budget
  core::Watchdog::start(wo);
  const uint64_t stallsBefore = core::Watchdog::stalls_detected();
  {
    WedgedMutator wedge;
    runtime::ClassInfo* ci = fresh_class("WedgeWatchdogCls");
    // Blocks until the watchdog notices the stuck heartbeat and raises
    // the cancel flag; without the heartbeat this would hang forever.
    const bool applied = runtime::lockplan::set_class_map(
        ci, runtime::lockplan::make_map(runtime::LockGranularity::kObject, 0));
    EXPECT_FALSE(applied);
  }
  EXPECT_GT(core::Watchdog::stalls_detected(), stallsBefore)
      << "the cancelled episode must be reported as a stall";
  core::Watchdog::stop();
  runtime::lockplan::set_replan_budget_nanos(2'000'000'000);  // restore default
}

}  // namespace
}  // namespace sbd
