// LockMap + lockplan, fixed modes (SBD_LOCK_GRANULARITY unset → field).
//
// Covers: the LockMap width/index/bits algebra, lock_count/lock_index
// following the class map, stop-the-world re-planning with the live-
// lock-state veto, pinned-map retry via replan_now(), and the Table 8
// "Locks" gauge reporting semantic *mapped* bytes — not pooled
// capacity — under all three granularities (the MemorySampler reads
// the same gauge). The adaptive controller has its own binary
// (lockplan_adaptive_test) because the mode is parsed once per process.
#include <gtest/gtest.h>

#include "api/sbd.h"
#include "core/stats.h"
#include "runtime/lockplan.h"
#include "runtime/object.h"

namespace sbd {
namespace {

using runtime::LockMap;

TEST(LockMap, WidthAndIndexPerKind) {
  const LockMap f = LockMap::field_map();
  EXPECT_TRUE(f.identity());
  EXPECT_EQ(f.width(6), 6u);
  EXPECT_EQ(f.index(5), 5u);

  const LockMap s = LockMap::striped_map(4);
  EXPECT_FALSE(s.identity());
  EXPECT_EQ(s.width(6), 4u);
  EXPECT_EQ(s.width(3), 3u);  // never wider than the natural count
  EXPECT_EQ(s.index(5), 1u);
  EXPECT_EQ(s.index(4), 0u);

  const LockMap o = LockMap::object_map();
  EXPECT_EQ(o.width(6), 1u);
  EXPECT_EQ(o.width(0), 0u);  // lock-free stays lock-free
  EXPECT_EQ(o.index(5), 0u);
}

TEST(LockMap, BitsRoundTripAndFieldPacksToZero) {
  // Zero-initialized ClassInfo::lockMapBits must mean "field".
  EXPECT_EQ(LockMap::field_map().bits(), 0u);
  for (const LockMap m : {LockMap::field_map(), LockMap::striped_map(7),
                          LockMap::object_map()}) {
    EXPECT_EQ(LockMap::from_bits(m.bits()), m) << m.to_string();
  }
  // Degenerate stripe counts clamp instead of dividing by zero.
  EXPECT_EQ(LockMap::striped_map(0).stripes, 1u);
}

class Six : public runtime::TypedRef<Six> {
 public:
  SBD_CLASS(LockPlanSix, SBD_SLOT("s0"), SBD_SLOT("s1"), SBD_SLOT("s2"),
            SBD_SLOT("s3"), SBD_SLOT("s4"), SBD_SLOT("s5"))
  SBD_FIELD_I64(0, s0)
  SBD_FIELD_I64(5, s5)
};

TEST(LockPlan, InstanceWidthFollowsTheClassMap) {
  runtime::GlobalRoot<Six> root;
  run_sbd([&] {
    Six x = Six::alloc();
    x.init_s0(1);
    root.set(x);
  });
  runtime::ManagedObject* o = root.get().raw();
  EXPECT_EQ(runtime::lock_count(o), 6u);
  EXPECT_EQ(runtime::lock_index(o, 5), 5u);

  EXPECT_TRUE(set_lock_granularity(Six::klass(), LockGranularity::kObject));
  EXPECT_EQ(runtime::lock_count(o), 1u);
  EXPECT_EQ(runtime::lock_index(o, 5), 0u);

  EXPECT_TRUE(set_lock_granularity(Six::klass(), LockGranularity::kStriped, 4));
  EXPECT_EQ(runtime::lock_count(o), 4u);
  EXPECT_EQ(runtime::lock_index(o, 5), 1u);

  // And back to the faithful default.
  EXPECT_TRUE(set_lock_granularity(Six::klass(), LockGranularity::kField));
  EXPECT_EQ(runtime::lock_count(o), 6u);
}

class VetoCell : public runtime::TypedRef<VetoCell> {
 public:
  SBD_CLASS(LockPlanVeto, SBD_SLOT("v"))
  SBD_FIELD_I64(0, v)
};

TEST(LockPlan, LiveLockStateVetoesThenReplanRetries) {
  runtime::GlobalRoot<VetoCell> root;
  const auto before = runtime::lockplan::counters();
  run_sbd([&] {
    VetoCell c = VetoCell::alloc();
    c.init_v(0);
    root.set(c);
    split();             // commit allocation; locks go lazy
    c.set_v(1);          // acquire the write lock -> live lock state
    // The word is held by this very transaction, so the switch must be
    // refused (a migration would drop the held lock on the floor).
    EXPECT_FALSE(set_lock_granularity(VetoCell::klass(), LockGranularity::kObject));
    EXPECT_TRUE(VetoCell::klass()->lock_map().identity());  // map unchanged
  });
  const auto mid = runtime::lockplan::counters();
  EXPECT_GT(mid.vetoed, before.vetoed);
  // The pin stuck: a later replan cycle (what the adaptive controller
  // runs periodically) applies it once the lock state is gone.
  EXPECT_GE(runtime::lockplan::replan_now(), 1u);
  EXPECT_EQ(VetoCell::klass()->lock_map(), LockMap::object_map());
  const auto after = runtime::lockplan::counters();
  EXPECT_GT(after.replans, mid.replans);
  EXPECT_GT(after.cycles, mid.cycles);
}

// One 6-slot class per granularity — granularity pins are per-class
// state, so each case needs a fresh ClassInfo.
class GaugeF : public runtime::TypedRef<GaugeF> {
 public:
  SBD_CLASS(LockPlanGaugeF, SBD_SLOT("s0"), SBD_SLOT("s1"), SBD_SLOT("s2"),
            SBD_SLOT("s3"), SBD_SLOT("s4"), SBD_SLOT("s5"))
  SBD_FIELD_I64(0, s0)
};
class GaugeS : public runtime::TypedRef<GaugeS> {
 public:
  SBD_CLASS(LockPlanGaugeS, SBD_SLOT("s0"), SBD_SLOT("s1"), SBD_SLOT("s2"),
            SBD_SLOT("s3"), SBD_SLOT("s4"), SBD_SLOT("s5"))
  SBD_FIELD_I64(0, s0)
};
class GaugeO : public runtime::TypedRef<GaugeO> {
 public:
  SBD_CLASS(LockPlanGaugeO, SBD_SLOT("s0"), SBD_SLOT("s1"), SBD_SLOT("s2"),
            SBD_SLOT("s3"), SBD_SLOT("s4"), SBD_SLOT("s5"))
  SBD_FIELD_I64(0, s0)
};

// Materializes root's lock array (first synchronized access after the
// creating section committed) and returns the gauge growth in bytes.
template <typename T>
uint64_t materialized_bytes(runtime::GlobalRoot<T>& root) {
  const uint64_t before = core::gauges().lockStructBytes.load();
  run_sbd([&] { (void)root.get().s0(); });
  return core::gauges().lockStructBytes.load() - before;
}

// Table 8 "Locks" audit: the gauge reports one word per MAPPED lock —
// the semantic footprint the paper's table counts — not the pool's
// rounded capacity, under all three granularities.
TEST(LockPlan, Table8GaugeCountsMappedBytes) {
  runtime::GlobalRoot<GaugeF> f;
  runtime::GlobalRoot<GaugeS> s;
  runtime::GlobalRoot<GaugeO> o;
  ASSERT_TRUE(set_lock_granularity(GaugeS::klass(), LockGranularity::kStriped, 4));
  ASSERT_TRUE(set_lock_granularity(GaugeO::klass(), LockGranularity::kObject));
  run_sbd([&] {
    GaugeF a = GaugeF::alloc();
    a.init_s0(0);
    f.set(a);
    GaugeS b = GaugeS::alloc();
    b.init_s0(0);
    s.set(b);
    GaugeO c = GaugeO::alloc();
    c.init_s0(0);
    o.set(c);
  });
  EXPECT_EQ(materialized_bytes(f), 6 * sizeof(core::LockWord));
  EXPECT_EQ(materialized_bytes(s), 4 * sizeof(core::LockWord));
  EXPECT_EQ(materialized_bytes(o), 1 * sizeof(core::LockWord));

  // A re-plan releases the survivors' arrays under the OLD map, so the
  // gauge stays byte-exact across the swap: the field-width bytes come
  // off now and the object-width bytes go on at next materialization.
  const uint64_t before = core::gauges().lockStructBytes.load();
  ASSERT_TRUE(set_lock_granularity(GaugeF::klass(), LockGranularity::kObject));
  EXPECT_EQ(before - core::gauges().lockStructBytes.load(),
            6 * sizeof(core::LockWord));
  EXPECT_EQ(materialized_bytes(f), 1 * sizeof(core::LockWord));
}

TEST(LockPlan, ContentionSignalBumpsTheClassCounter) {
  runtime::GlobalRoot<Six> root;
  run_sbd([&] {
    Six x = Six::alloc();
    x.init_s0(1);
    root.set(x);
  });
  const uint64_t before = Six::klass()->contentionEvents.load();
  runtime::lockplan::note_contention(root.get().raw());
  EXPECT_EQ(Six::klass()->contentionEvents.load(), before + 1);
}

TEST(LockPlan, FixedModeDefaultsAreFaithful) {
  // This binary runs with SBD_LOCK_GRANULARITY unset: field mode, no
  // controller, and hints must be inert (annotated library code stays
  // bit-for-bit identical to the pre-LockMap runtime).
  EXPECT_EQ(runtime::lockplan::mode(), runtime::lockplan::Mode::kField);
  EXPECT_STREQ(runtime::lockplan::mode_name(), "field");
  EXPECT_EQ(runtime::lockplan::initial_map(), LockMap::field_map());
  class Hinted : public runtime::TypedRef<Hinted> {
   public:
    SBD_CLASS(LockPlanHinted, SBD_SLOT("a"), SBD_SLOT("b"))
  };
  hint_lock_granularity(Hinted::klass(), LockGranularity::kObject);
  EXPECT_TRUE(Hinted::klass()->lock_map().identity());
  runtime::lockplan::replan_now();  // fixed mode: hints still inert
  EXPECT_TRUE(Hinted::klass()->lock_map().identity());
}

}  // namespace
}  // namespace sbd
