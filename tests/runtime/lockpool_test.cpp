// Lock-structure pool: recycling through the GC sweep, exact Table 8
// "Locks" gauge accounting (semantic bytes of live structures only —
// class rounding and pooled-free arrays must be invisible), and the
// pool-bypass path for huge arrays.
#include <gtest/gtest.h>

#include <cstdint>

#include "api/sbd.h"
#include "core/stats.h"
#include "runtime/heap.h"
#include "runtime/lockpool.h"
#include "runtime/object.h"
#include "runtime/ref.h"

namespace sbd::runtime {
namespace {

uint64_t locks_gauge() { return core::gauges().lockStructBytes.load(); }

TEST(LockPool, AcquireZeroesReusedArrays) {
  auto& pool = LockPool::instance();
  core::LockWord* a = pool.acquire(5);
  for (int i = 0; i < 5; i++) {
    EXPECT_EQ(a[i], 0u);
    a[i] = 0xdeadbeefULL + static_cast<uint64_t>(i);  // dirty it
  }
  pool.release(a, 5);
  // Same size class (5 -> 8 words): the freelist hands the array back,
  // and every requested word must be zero again.
  core::LockWord* b = pool.acquire(5);
  for (int i = 0; i < 5; i++) EXPECT_EQ(b[i], 0u);
  pool.release(b, 5);
}

TEST(LockPool, ReusesArraysAcrossReleaseAcquire) {
  auto& pool = LockPool::instance();
  const auto before = pool.stats();
  core::LockWord* a = pool.acquire(16);
  pool.release(a, 16);
  core::LockWord* b = pool.acquire(16);  // exact class: must come from the list
  pool.release(b, 16);
  const auto after = pool.stats();
  EXPECT_GT(after.reuses, before.reuses);
}

TEST(LockPool, GaugeCountsSemanticBytesNotClassRounding) {
  // A 5-slot object occupies the 8-word size class, but Table 8 must
  // see exactly 5 * 8 = 40 bytes while it is live.
  static ClassInfo* cls = register_class(
      "FiveSlots", {SBD_SLOT("a"), SBD_SLOT("b"), SBD_SLOT("c"), SBD_SLOT("d"),
                    SBD_SLOT("e")}, {});
  const uint64_t before = locks_gauge();
  run_sbd([&] {
    ManagedObject* o = Heap::instance().alloc_object(cls);
    split();  // escape: the next access materializes the lock array
    (void)tx_read(o, 0);
    EXPECT_EQ(locks_gauge(), before + 5 * sizeof(core::LockWord));
  });
  Heap::instance().collect();  // the object is garbage: sweep frees its locks
  Heap::instance().collect();
  // Conservative stack slack may retain a stray object, but pooled-free
  // arrays must not count as live (seed tolerance idiom).
  EXPECT_LE(locks_gauge(), before + 1024);
}

TEST(LockPool, SweepReturnsArraysToPoolForReuse) {
  static ClassInfo* cls = register_class("PoolNode", {SBD_SLOT("x")}, {});
  auto& pool = LockPool::instance();
  const uint64_t gaugeBefore = locks_gauge();

  // Round 1: materialize locks on short-lived objects, then let the GC
  // sweep them — their arrays land on the pool freelists.
  run_sbd([&] {
    for (int i = 0; i < 32; i++) {
      ManagedObject* o = Heap::instance().alloc_object(cls);
      split();
      (void)tx_read(o, 0);
      split();
    }
  });
  Heap::instance().collect();
  Heap::instance().collect();
  EXPECT_LE(locks_gauge(), gaugeBefore + 1024);
  const auto parked = pool.stats();
  EXPECT_GT(parked.pooledArrays, 0u) << "sweep should park dead objects' arrays";

  // Round 2: the same shape allocates again; acquires are served from
  // the freelist instead of the allocator.
  const auto statsBefore = pool.stats();
  run_sbd([&] {
    ManagedObject* o = Heap::instance().alloc_object(cls);
    split();
    (void)tx_read(o, 0);
  });
  const auto statsAfter = pool.stats();
  EXPECT_GT(statsAfter.reuses, statsBefore.reuses);
  Heap::instance().collect();
  Heap::instance().collect();
  EXPECT_LE(locks_gauge(), gaugeBefore + 1024);
}

TEST(LockPool, HugeArraysBypassThePoolButKeepTheGaugeExact) {
  // 300k elements -> 300k lock words, far over the 1024-word pool cap.
  const uint64_t before = locks_gauge();
  run_sbd([&] {
    I64Array big = I64Array::make(300000);
    split();
    big.set(0, 1);  // materializes the element lock array
    EXPECT_EQ(locks_gauge(), before + 300000ull * sizeof(core::LockWord));
  });
  Heap::instance().collect();
  Heap::instance().collect();
  EXPECT_EQ(locks_gauge(), before);
}

TEST(LockPool, TrimFreesParkedArrays) {
  auto& pool = LockPool::instance();
  core::LockWord* a = pool.acquire(8);
  pool.release(a, 8);
  EXPECT_GT(pool.stats().pooledArrays, 0u);
  pool.trim();
  EXPECT_EQ(pool.stats().pooledArrays, 0u);
  EXPECT_EQ(pool.stats().pooledBytes, 0u);
}

}  // namespace
}  // namespace sbd::runtime
